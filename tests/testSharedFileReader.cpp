/**
 * SharedFileReader: the clone()/pread() contract that the parallel chunk
 * fetcher is built on — concurrent strided preads from many threads must
 * reassemble the exact file, clones keep independent cursors, and the
 * serialized fallback path works for readers without parallel pread.
 */

#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "io/MemoryFileReader.hpp"
#include "io/SharedFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

/** Wrapper hiding the underlying reader's parallel-pread support. */
class SequentialOnlyReader final : public FileReader
{
public:
    explicit SequentialOnlyReader( std::vector<std::uint8_t> data ) :
        m_inner( std::move( data ) )
    {}

    [[nodiscard]] std::size_t
    read( void* buffer, std::size_t size ) override { return m_inner.read( buffer, size ); }

    [[nodiscard]] std::size_t
    pread( void* buffer, std::size_t size, std::size_t offset ) const override
    {
        return m_inner.pread( buffer, size, offset );
    }

    void seek( std::size_t offset ) override { m_inner.seek( offset ); }
    [[nodiscard]] std::size_t tell() const override { return m_inner.tell(); }
    [[nodiscard]] std::size_t size() const override { return m_inner.size(); }

    [[nodiscard]] std::unique_ptr<FileReader>
    clone() const override { throw FileIoError( "not cloneable" ); }

private:
    MemoryFileReader m_inner;
};

void
checkStridedParallelRead( const SharedFileReader& shared, const std::vector<std::uint8_t>& expected )
{
    constexpr std::size_t CHUNK = 4096;
    const std::size_t threadCount = 4;

    std::vector<std::future<std::vector<std::pair<std::size_t, std::vector<std::uint8_t> > > > > futures;
    for ( std::size_t t = 0; t < threadCount; ++t ) {
        auto view = shared.clone();
        futures.push_back( std::async( std::launch::async, [t, threadCount, CHUNK,
                                                            view = std::move( view ),
                                                            size = expected.size()] () {
            std::vector<std::pair<std::size_t, std::vector<std::uint8_t> > > pieces;
            for ( std::size_t offset = t * CHUNK; offset < size; offset += threadCount * CHUNK ) {
                std::vector<std::uint8_t> buffer( CHUNK );
                const auto got = view->pread( buffer.data(), buffer.size(), offset );
                buffer.resize( got );
                pieces.emplace_back( offset, std::move( buffer ) );
            }
            return pieces;
        } ) );
    }

    std::vector<std::uint8_t> reassembled( expected.size() );
    std::size_t totalRead = 0;
    for ( auto& future : futures ) {
        for ( auto& [offset, piece] : future.get() ) {
            std::memcpy( reassembled.data() + offset, piece.data(), piece.size() );
            totalRead += piece.size();
        }
    }
    REQUIRE( totalRead == expected.size() );
    REQUIRE( reassembled == expected );
}

}  // namespace

int
main()
{
    const auto expected = workloads::randomData( 1 * MiB + 12345, 0x5EED );

    /* Fast path: underlying reader supports parallel pread. */
    {
        const SharedFileReader shared(
            std::unique_ptr<FileReader>( std::make_unique<MemoryFileReader>( expected ) ) );
        REQUIRE( shared.size() == expected.size() );
        REQUIRE( shared.supportsParallelPread() );
        checkStridedParallelRead( shared, expected );
    }

    /* Serialized fallback path: underlying reader claims no parallel pread. */
    {
        const SharedFileReader shared(
            std::unique_ptr<FileReader>( std::make_unique<SequentialOnlyReader>( expected ) ) );
        checkStridedParallelRead( shared, expected );
    }

    /* Clones keep independent cursors; read() follows the cursor. */
    {
        SharedFileReader shared(
            std::unique_ptr<FileReader>( std::make_unique<MemoryFileReader>( expected ) ) );
        auto a = shared.clone();
        auto b = shared.clone();
        std::uint8_t bufferA[100];
        std::uint8_t bufferB[50];
        REQUIRE( a->read( bufferA, sizeof( bufferA ) ) == sizeof( bufferA ) );
        REQUIRE( b->read( bufferB, sizeof( bufferB ) ) == sizeof( bufferB ) );
        REQUIRE( a->tell() == 100 );
        REQUIRE( b->tell() == 50 );
        REQUIRE( std::memcmp( bufferA, expected.data(), sizeof( bufferA ) ) == 0 );
        REQUIRE( std::memcmp( bufferB, expected.data(), sizeof( bufferB ) ) == 0 );

        /* Cloning a SharedFileReader through ensureSharedFileReader must not
         * re-wrap it into a second mutex layer. */
        auto rewrapped = ensureSharedFileReader( shared.clone() );
        REQUIRE( rewrapped->size() == expected.size() );
        std::uint8_t byte = 0;
        REQUIRE( rewrapped->pread( &byte, 1, 7 ) == 1 );
        REQUIRE( byte == expected[7] );
    }

    return rapidgzip::test::finish( "testSharedFileReader" );
}
