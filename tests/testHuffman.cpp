/**
 * Huffman layer: canonical code construction, decode correctness for both
 * LUT layouts against a reference encoder, Kraft validation, EOF and
 * invalid-code behavior — including the 15-bit pathological shape whose
 * construction cost motivates the two-level layout.
 */

#include <cstdint>
#include <vector>

#include "bits/BitReader.hpp"
#include "deflate/DeflateDecoder.hpp"
#include "deflate/definitions.hpp"
#include "huffman/HuffmanCoding.hpp"
#include "huffman/HuffmanCodingDoubleLUT.hpp"
#include "huffman/HuffmanCodingMultiCached.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

/** Reference encoder: canonical codes, written LSB-first (Deflate order). */
class BitWriter
{
public:
    void
    write( std::uint32_t bits, unsigned count )
    {
        for ( unsigned i = 0; i < count; ++i ) {
            /* Canonical codes are written MSB-first into the stream. */
            const auto bit = ( bits >> ( count - 1 - i ) ) & 1U;
            m_current |= bit << m_bitCount;
            if ( ++m_bitCount == 8 ) {
                m_bytes.push_back( static_cast<std::uint8_t>( m_current ) );
                m_current = 0;
                m_bitCount = 0;
            }
        }
    }

    [[nodiscard]] std::vector<std::uint8_t>
    finish()
    {
        if ( m_bitCount > 0 ) {
            m_bytes.push_back( static_cast<std::uint8_t>( m_current ) );
        }
        return m_bytes;
    }

private:
    std::vector<std::uint8_t> m_bytes;
    std::uint32_t m_current{ 0 };
    unsigned m_bitCount{ 0 };
};

struct CanonicalCodes
{
    std::vector<std::uint32_t> code;
    std::vector<std::uint8_t> length;
};

CanonicalCodes
assignCanonicalCodes( const std::vector<std::uint8_t>& lengths )
{
    CanonicalCodes result;
    result.length = lengths;
    result.code.resize( lengths.size(), 0 );

    std::uint32_t countPerLength[16] = {};
    for ( const auto length : lengths ) {
        ++countPerLength[length];
    }
    countPerLength[0] = 0;
    std::uint32_t nextCode[17] = {};
    std::uint32_t code = 0;
    for ( unsigned length = 1; length <= 15; ++length ) {
        code = ( code + countPerLength[length - 1] ) << 1U;
        nextCode[length] = code;
    }
    for ( std::size_t symbol = 0; symbol < lengths.size(); ++symbol ) {
        if ( lengths[symbol] > 0 ) {
            result.code[symbol] = nextCode[lengths[symbol]]++;
        }
    }
    return result;
}

/** Split-then-extend generator like the benchmark's makeCode. */
std::vector<std::uint8_t>
makeCompleteCode( std::size_t symbolCount, unsigned maxLength, std::uint64_t seed )
{
    Xorshift64 random( seed );
    std::vector<std::uint8_t> lengths( symbolCount, 0 );
    lengths[0] = 1;
    lengths[1] = 1;
    std::size_t used = 2;
    while ( used < symbolCount ) {
        const auto victim = random.below( used );
        if ( lengths[victim] >= maxLength ) {
            continue;
        }
        ++lengths[victim];
        lengths[used] = lengths[victim];
        ++used;
    }
    return lengths;
}

template<typename Coding>
void
checkRoundTrip( const std::vector<std::uint8_t>& lengths, std::uint64_t seed )
{
    const auto canonical = assignCanonicalCodes( lengths );

    /* Encode a pseudo-random symbol stream of the usable symbols. */
    std::vector<std::uint16_t> usable;
    for ( std::size_t symbol = 0; symbol < lengths.size(); ++symbol ) {
        if ( lengths[symbol] > 0 ) {
            usable.push_back( static_cast<std::uint16_t>( symbol ) );
        }
    }
    Xorshift64 random( seed );
    std::vector<std::uint16_t> symbols( 5000 );
    BitWriter writer;
    for ( auto& symbol : symbols ) {
        symbol = usable[random.below( usable.size() )];
        writer.write( canonical.code[symbol], canonical.length[symbol] );
    }
    const auto encoded = writer.finish();

    Coding coding;
    REQUIRE( coding.initializeFromLengths( { lengths.data(), lengths.size() } ) );
    REQUIRE( coding.maxCodeLength() >= 1 );

    BitReader reader( encoded.data(), encoded.size() );
    for ( std::size_t i = 0; i < symbols.size(); ++i ) {
        const auto decoded = coding.decode( reader );
        REQUIRE( decoded == static_cast<int>( symbols[i] ) );
    }
    /* Trailing padding decodes to at most a few bogus symbols, then EOF. */
    while ( true ) {
        const auto decoded = coding.decode( reader );
        if ( decoded < 0 ) {
            REQUIRE( decoded == Coding::DECODE_EOF || decoded == Coding::DECODE_INVALID );
            break;
        }
    }
}

/**
 * Decode @p data's bit stream to an EVENT stream over a Deflate-style
 * literal/length alphabet: literal bytes as 0..255, end-of-block as 256,
 * length symbols as 1000 + final length (base + extra bits read from the
 * stream). Events are the right granularity for cross-implementation
 * equivalence because the multi-symbol LUT may resolve two literals or a
 * length INCLUDING its extra bits in one step — symbol-by-symbol streams
 * would not be comparable.
 */
template<typename Coding>
std::vector<int>
decodeEventsReference( const Coding& coding, const std::vector<std::uint8_t>& data,
                       std::size_t maxEvents )
{
    std::vector<int> events;
    BitReader reader( data.data(), data.size() );
    while ( events.size() < maxEvents ) {
        const auto symbol = coding.decode( reader );
        if ( symbol < 0 ) {
            events.push_back( symbol );  /* DECODE_EOF / DECODE_INVALID terminator */
            break;
        }
        if ( symbol < 256 ) {
            events.push_back( symbol );
        } else if ( symbol == 256 ) {
            events.push_back( 256 );
            break;
        } else if ( symbol <= 285 ) {
            const auto lengthIndex = static_cast<std::size_t>( symbol - 257 );
            const auto extra = deflate::LENGTH_EXTRA_BITS[lengthIndex];
            if ( reader.bitsLeft() < extra ) {
                events.push_back( HuffmanCodingDoubleLUT::DECODE_EOF );
                break;
            }
            const auto length = deflate::LENGTH_BASE[lengthIndex]
                                + ( extra > 0 ? reader.read( extra ) : 0 );
            events.push_back( 1000 + static_cast<int>( length ) );
        } else {
            events.push_back( HuffmanCodingDoubleLUT::DECODE_INVALID );
            break;
        }
    }
    return events;
}

/** The same event stream decoded through the multi-symbol LUT with the
 * Decoder's fast-loop discipline (guaranteed-bits lookups, safe tail). */
std::vector<int>
decodeEventsMulti( const HuffmanCodingMultiCached& coding,
                   const std::vector<std::uint8_t>& data, std::size_t maxEvents )
{
    std::vector<int> events;
    BitReader reader( data.data(), data.size() );
    constexpr unsigned GUARANTEED_BITS = 15 + 5;  /* max code + max length extra */
    while ( events.size() < maxEvents ) {
        if ( !reader.ensureBits( GUARANTEED_BITS ) ) {
            /* Safe tail near EOF: the delegate path, symbol by symbol. */
            const auto symbol = coding.decode( reader );
            if ( symbol < 0 ) {
                events.push_back( symbol );
                break;
            }
            if ( symbol < 256 ) {
                events.push_back( symbol );
                continue;
            }
            if ( symbol == 256 ) {
                events.push_back( 256 );
                break;
            }
            if ( symbol > 285 ) {
                events.push_back( HuffmanCodingDoubleLUT::DECODE_INVALID );
                break;
            }
            const auto lengthIndex = static_cast<std::size_t>( symbol - 257 );
            const auto extra = deflate::LENGTH_EXTRA_BITS[lengthIndex];
            if ( reader.bitsLeft() < extra ) {
                events.push_back( HuffmanCodingDoubleLUT::DECODE_EOF );
                break;
            }
            events.push_back( 1000 + static_cast<int>(
                deflate::LENGTH_BASE[lengthIndex]
                + ( extra > 0 ? reader.read( extra ) : 0 ) ) );
            continue;
        }

        const auto& entry = coding.lookup( reader.peekUnsafe( coding.cacheBits() ) );
        reader.consumeUnsafe( entry.bitsConsumed );  /* 0 for FALLBACK */
        const auto kind = entry.kind();
        if ( kind == HuffmanCodingMultiCached::LITERALS ) {
            events.push_back( entry.payload & 0xFFU );
            if ( entry.count() == 2 ) {
                events.push_back( entry.payload >> 8U );
            }
        } else if ( kind == HuffmanCodingMultiCached::LENGTH ) {
            events.push_back( 1000 + static_cast<int>(
                entry.payload + reader.readUnsafe( entry.extraBits() ) ) );
        } else if ( kind == HuffmanCodingMultiCached::END_OF_BLOCK ) {
            events.push_back( 256 );
            break;
        } else {
            const auto symbol = coding.fallback().decodeUnsafe( reader );
            if ( symbol < 0 ) {
                events.push_back( symbol );
                break;
            }
            if ( symbol < 256 ) {
                events.push_back( symbol );
            } else if ( symbol == 256 ) {
                events.push_back( 256 );
                break;
            } else if ( symbol <= 285 ) {
                const auto lengthIndex = static_cast<std::size_t>( symbol - 257 );
                const auto extra = deflate::LENGTH_EXTRA_BITS[lengthIndex];
                events.push_back( 1000 + static_cast<int>(
                    deflate::LENGTH_BASE[lengthIndex] + reader.readUnsafe( extra ) ) );
            } else {
                events.push_back( HuffmanCodingDoubleLUT::DECODE_INVALID );
                break;
            }
        }
    }
    return events;
}

/**
 * The multi-symbol-LUT equivalence sweep: on the same coding and the same
 * bits, the event streams of the naive single-level LUT, the two-level LUT,
 * and the multi-symbol cached LUT must agree exactly — including the
 * terminal EOF/INVALID event at a truncated (EOF-at-boundary) stream.
 */
void
checkEventEquivalence( const std::vector<std::uint8_t>& lengths,
                       const std::vector<std::uint8_t>& bits )
{
    HuffmanCoding naive;
    HuffmanCodingDoubleLUT twoLevel;
    HuffmanCodingMultiCached multi;
    REQUIRE( naive.initializeFromLengths( { lengths.data(), lengths.size() } ) );
    REQUIRE( twoLevel.initializeFromLengths( { lengths.data(), lengths.size() } ) );
    REQUIRE( multi.initializeFromLengths( { lengths.data(), lengths.size() } ) );

    constexpr std::size_t MAX_EVENTS = 20000;
    const auto naiveEvents = decodeEventsReference( naive, bits, MAX_EVENTS );
    const auto twoLevelEvents = decodeEventsReference( twoLevel, bits, MAX_EVENTS );
    const auto multiEvents = decodeEventsMulti( multi, bits, MAX_EVENTS );
    REQUIRE( naiveEvents == twoLevelEvents );
    REQUIRE( twoLevelEvents == multiEvents );

    /* EOF at every boundary near the end: all three must agree bit-exactly
     * on the truncated streams too. */
    for ( std::size_t cut = 1; ( cut <= 8 ) && ( cut < bits.size() ); ++cut ) {
        const std::vector<std::uint8_t> truncated( bits.begin(), bits.end() - cut );
        const auto a = decodeEventsReference( naive, truncated, MAX_EVENTS );
        const auto b = decodeEventsReference( twoLevel, truncated, MAX_EVENTS );
        const auto c = decodeEventsMulti( multi, truncated, MAX_EVENTS );
        REQUIRE( a == b );
        REQUIRE( b == c );
    }
}

}  // namespace

int
main()
{
    /* Hand-checkable code: lengths {1,2,3,3} over symbols {a,b,c,d}. */
    {
        const std::vector<std::uint8_t> lengths{ 1, 2, 3, 3 };
        checkRoundTrip<HuffmanCoding>( lengths, 1 );
        checkRoundTrip<HuffmanCodingDoubleLUT>( lengths, 1 );
    }

    /* Deflate-typical and pathological shapes; two-level layout must agree. */
    checkRoundTrip<HuffmanCoding>( makeCompleteCode( 286, 12, 0xCAFE ), 2 );
    checkRoundTrip<HuffmanCodingDoubleLUT>( makeCompleteCode( 286, 12, 0xCAFE ), 2 );
    checkRoundTrip<HuffmanCoding>( makeCompleteCode( 286, 15, 0xBEEF ), 3 );
    checkRoundTrip<HuffmanCodingDoubleLUT>( makeCompleteCode( 286, 15, 0xBEEF ), 3 );
    checkRoundTrip<HuffmanCoding>( makeCompleteCode( 19, 7, 0x1234 ), 4 );
    checkRoundTrip<HuffmanCodingDoubleLUT>( makeCompleteCode( 19, 7, 0x1234 ), 4 );

    /* Both decoders produce identical symbol streams on identical input. */
    {
        const auto lengths = makeCompleteCode( 286, 15, 0x77 );
        HuffmanCoding single;
        HuffmanCodingDoubleLUT twoLevel;
        REQUIRE( single.initializeFromLengths( { lengths.data(), lengths.size() } ) );
        REQUIRE( twoLevel.initializeFromLengths( { lengths.data(), lengths.size() } ) );

        const auto bits = workloads::randomData( 64 * KiB, 0x99 );
        BitReader readerA( bits.data(), bits.size() );
        BitReader readerB( bits.data(), bits.size() );
        while ( true ) {
            const auto a = single.decode( readerA );
            const auto b = twoLevel.decode( readerB );
            REQUIRE( a == b );
            if ( a < 0 ) {
                break;
            }
        }
    }

    /* Over-subscribed codes are rejected (Kraft violation). */
    {
        const std::vector<std::uint8_t> bad{ 1, 1, 1 };
        HuffmanCoding single;
        HuffmanCodingDoubleLUT twoLevel;
        REQUIRE( !single.initializeFromLengths( { bad.data(), bad.size() } ) );
        REQUIRE( !twoLevel.initializeFromLengths( { bad.data(), bad.size() } ) );
    }

    /* Incomplete codes: unmapped patterns decode as DECODE_INVALID. */
    {
        const std::vector<std::uint8_t> incomplete{ 2, 2, 2 };  /* codes 00,01,10; 11 unmapped */
        HuffmanCoding coding;
        REQUIRE( coding.initializeFromLengths( { incomplete.data(), incomplete.size() } ) );
        const std::uint8_t allOnes[] = { 0xFF };
        BitReader reader( allOnes, sizeof( allOnes ) );
        REQUIRE( coding.decode( reader ) == HuffmanCoding::DECODE_INVALID );

        HuffmanCodingDoubleLUT twoLevel;
        REQUIRE( twoLevel.initializeFromLengths( { incomplete.data(), incomplete.size() } ) );
        BitReader reader2( allOnes, sizeof( allOnes ) );
        REQUIRE( twoLevel.decode( reader2 ) == HuffmanCodingDoubleLUT::DECODE_INVALID );
    }

    /* All-zero lengths are rejected; EOF on an empty reader. */
    {
        const std::vector<std::uint8_t> zeros( 10, 0 );
        HuffmanCoding coding;
        REQUIRE( !coding.initializeFromLengths( { zeros.data(), zeros.size() } ) );

        const auto lengths = makeCompleteCode( 19, 7, 0x1 );
        REQUIRE( coding.initializeFromLengths( { lengths.data(), lengths.size() } ) );
        BitReader empty( static_cast<const std::uint8_t*>( nullptr ), 0 );
        REQUIRE( coding.decode( empty ) == HuffmanCoding::DECODE_EOF );
    }

    /* Multi-symbol LUT equivalence sweep (PR 4): naive vs two-level vs
     * multi-symbol cached event streams on randomized dynamic codings over
     * the full literal/length alphabet — including pathological 15-bit
     * codes — plus the fixed coding, on random bits and on truncated
     * streams (EOF at every boundary near the end). */
    {
        for ( const unsigned maxLength : { 9U, 10U, 12U, 15U } ) {
            for ( std::uint64_t seed = 1; seed <= 3; ++seed ) {
                const auto lengths =
                    makeCompleteCode( 286, maxLength, 0x5EED0 + seed * 17 + maxLength );
                const auto bits = workloads::randomData( 16 * KiB, seed * 31 + maxLength );
                checkEventEquivalence( lengths, bits );
            }
        }
        /* Small alphabets exercise deep multi-literal packing. */
        checkEventEquivalence( makeCompleteCode( 64, 7, 0xAB1E ),
                               workloads::randomData( 16 * KiB, 0xAB1F ) );

        /* The fixed (BTYPE 01) literal coding. */
        std::vector<std::uint8_t> fixedLengths( 288 );
        for ( std::size_t i = 0; i < 144; ++i ) { fixedLengths[i] = 8; }
        for ( std::size_t i = 144; i < 256; ++i ) { fixedLengths[i] = 9; }
        for ( std::size_t i = 256; i < 280; ++i ) { fixedLengths[i] = 7; }
        for ( std::size_t i = 280; i < 288; ++i ) { fixedLengths[i] = 8; }
        checkEventEquivalence( fixedLengths, workloads::randomData( 16 * KiB, 0xF1E0 ) );
    }

    return rapidgzip::test::finish( "testHuffman" );
}
