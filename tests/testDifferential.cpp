/**
 * Differential decompression suite: every backend's writer feeds every
 * corpus through OUR reader and through the VENDOR decoder, byte-exact.
 * This is the randomized cross-check the PR 2-4 spot tests lacked — the
 * corpus generator is seeded-PRNG (base64, long runs, incompressible
 * random, boundary-heavy LZ windows), so failures reproduce from the seed
 * printed by the harness.
 *
 * Per format:
 *   gzip  — ParallelGzipReader (two-stage pipeline) vs zlib inflate;
 *   zstd  — frame-parallel dispatch reader vs ZSTD_decompressStream;
 *   lz4   — from-scratch frame+block decoder vs LZ4_decompress_safe per
 *           block (both directions: our writer → vendor, vendor → ours);
 *   bzip2 — block-scan parallel reader vs libbz2 whole-stream streaming.
 *
 * Plus, per the acceptance criteria: multi-frame/member/stream inputs and
 * truncated-input rejection (every truncation must throw RapidgzipError —
 * never crash, never return success with wrong bytes).
 *
 * RAPIDGZIP_DIFF_SCALE scales the corpus sizes (default 0.01 for quick
 * ctest runs; the nightly CI job runs 0.05).
 */

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ParallelGzipReader.hpp"
#include "formats/Formats.hpp"
#include "formats/Lz4Codec.hpp"
#include "formats/Lz4Writer.hpp"
#include "formats/VendorLz4.hpp"
#include "formats/VendorZstd.hpp"
#include "formats/VendorBzip2.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
#include "formats/ZstdWriter.hpp"
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
#include "formats/Bzip2Writer.hpp"
#endif

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

[[nodiscard]] double
diffScale()
{
    if ( const auto* value = std::getenv( "RAPIDGZIP_DIFF_SCALE" ) ) {
        const auto parsed = std::atof( value );
        if ( parsed > 0.0 ) {
            return parsed;
        }
    }
    return 0.01;
}

[[nodiscard]] std::size_t
scaled( std::size_t bytes )
{
    const auto result = static_cast<std::size_t>( static_cast<double>( bytes ) * diffScale() );
    return std::max<std::size_t>( result, 16 * KiB );
}

struct Corpus
{
    std::string name;
    std::vector<std::uint8_t> data;
};

[[nodiscard]] std::vector<Corpus>
buildCorpora( std::uint64_t seed )
{
    const auto size = scaled( 32 * MiB );
    return {
        { "base64", workloads::base64Data( size, seed ) },
        { "runs", workloads::runsData( size, seed + 1 ) },
        { "random", workloads::randomData( size, seed + 2 ) },
        { "lz-boundary", workloads::lzBoundaryData( size, seed + 3 ) },
    };
}

[[nodiscard]] ChunkFetcherConfiguration
config()
{
    ChunkFetcherConfiguration result;
    result.parallelism = 4;
    result.chunkSizeBytes = 256 * KiB;
    return result;
}

/** Decompress @p file through the dispatch layer, collecting all bytes. */
[[nodiscard]] std::vector<std::uint8_t>
decompressOurs( const std::vector<std::uint8_t>& file )
{
    auto decompressor = formats::makeDecompressor(
        std::make_unique<MemoryFileReader>( file ), config() );
    std::vector<std::uint8_t> result;
    const auto total = decompressor->decompress( [&result] ( BufferView span ) {
        result.insert( result.end(), span.begin(), span.end() );
    } );
    REQUIRE( total == result.size() );
    return result;
}

/** Every strict prefix of @p file must be REJECTED (throw), never crash and
 * never decode "successfully". Sampled stride keeps the quadratic cost down;
 * boundaries (±1 byte) are always included. */
void
requireTruncationsRejected( const std::vector<std::uint8_t>& file,
                            const std::vector<std::uint8_t>& original )
{
    std::vector<std::size_t> cuts;
    for ( std::size_t cut = 1; cut < file.size();
          cut += std::max<std::size_t>( 1, file.size() / 37 ) ) {
        cuts.push_back( cut );
    }
    cuts.push_back( file.size() - 1 );
    cuts.push_back( file.size() / 2 );

    for ( const auto cut : cuts ) {
        const std::vector<std::uint8_t> truncated( file.begin(),
                                                   file.begin()
                                                   + static_cast<std::ptrdiff_t>( cut ) );
        bool rejected = false;
        try {
            const auto decoded = decompressOurs( truncated );
            /* A truncated multi-frame container can decode VALIDLY to a
             * prefix (e.g. cut exactly between gzip members/zstd frames) —
             * then the bytes must be a clean prefix of the original, never
             * garbage. */
            rejected = true;
            REQUIRE( decoded.size() <= original.size() );
            REQUIRE( std::equal( decoded.begin(), decoded.end(), original.begin() ) );
        } catch ( const RapidgzipError& ) {
            rejected = true;
        }
        REQUIRE( rejected );
    }
}

void
testGzipDifferential( const Corpus& corpus )
{
    /* Our parallel reader vs the vendor (zlib) oracle, single member. */
    const auto file = compressGzipLike( { corpus.data.data(), corpus.data.size() }, 6 );
    REQUIRE( formats::detectFormat( { file.data(), file.size() } ) == formats::Format::GZIP );
    REQUIRE( decompressOurs( file ) == corpus.data );
    REQUIRE( decompressWithZlib( { file.data(), file.size() } ) == corpus.data );

    /* Multi-member (concatenated gzip). */
    auto concatenated = file;
    const auto second = compressGzipLike( { corpus.data.data(), corpus.data.size() / 2 }, 1 );
    concatenated.insert( concatenated.end(), second.begin(), second.end() );
    std::vector<std::uint8_t> expected = corpus.data;
    expected.insert( expected.end(), corpus.data.begin(),
                     corpus.data.begin() + static_cast<std::ptrdiff_t>( corpus.data.size() / 2 ) );
    REQUIRE( decompressOurs( concatenated ) == expected );

    requireTruncationsRejected( file, corpus.data );
}

#if defined( RAPIDGZIP_HAVE_VENDOR_LZ4 )
/** Frame walk mirroring the spec (not our reader), bytes via vendor
 * blocks: replays the file as liblz4 would see each block. Only the
 * profile our writer emits needs supporting here. */
class Lz4BlockOracle
{
public:
    explicit Lz4BlockOracle( std::vector<std::uint8_t> file ) :
        m_file( std::move( file ) )
    {}

    [[nodiscard]] std::vector<std::uint8_t>
    decodeAll()
    {
        std::vector<std::uint8_t> result;
        std::size_t offset = 0;
        const auto le32 = [this] ( std::size_t at ) {
            return formats::readLE32( m_file.data() + at );
        };
        while ( offset < m_file.size() ) {
            const auto magic = le32( offset );
            if ( ( magic & formats::ZSTD_SKIPPABLE_MAGIC_MASK )
                 == formats::ZSTD_SKIPPABLE_MAGIC_BASE ) {
                offset += 8 + le32( offset + 4 );
                continue;
            }
            REQUIRE( magic == formats::LZ4_FRAME_MAGIC );
            const auto flg = m_file[offset + 4];
            const auto bd = m_file[offset + 5];
            const bool blockChecksums = ( flg & 0x10U ) != 0;
            const bool contentSize = ( flg & 0x08U ) != 0;
            const bool contentChecksum = ( flg & 0x04U ) != 0;
            const auto blockMaxSize = formats::Lz4Writer::blockMaxSizeBytes(
                static_cast<formats::Lz4Writer::BlockMaxSize>( ( bd >> 4U ) & 0x7U ) );
            offset += 4 + 2 + ( contentSize ? 8 : 0 ) + 1;

            while ( true ) {
                const auto header = le32( offset );
                offset += 4;
                if ( header == 0 ) {
                    break;
                }
                const bool stored = ( header & 0x80000000U ) != 0;
                const auto dataSize = header & 0x7FFFFFFFU;
                if ( stored ) {
                    result.insert( result.end(),
                                   m_file.begin() + static_cast<std::ptrdiff_t>( offset ),
                                   m_file.begin()
                                   + static_cast<std::ptrdiff_t>( offset + dataSize ) );
                } else {
                    std::vector<std::uint8_t> decoded( blockMaxSize );
                    const auto size = formats::vendorLz4DecompressBlock(
                        { m_file.data() + offset, dataSize }, decoded.data(), decoded.size() );
                    result.insert( result.end(), decoded.begin(),
                                   decoded.begin() + static_cast<std::ptrdiff_t>( size ) );
                }
                offset += dataSize + ( blockChecksums ? 4 : 0 );
            }
            offset += contentChecksum ? 4 : 0;
        }
        return result;
    }

private:
    std::vector<std::uint8_t> m_file;
};
#endif

void
testLz4Differential( const Corpus& corpus )
{
    const BufferView span{ corpus.data.data(), corpus.data.size() };

    /* Block-level differential, both directions, before any framing. */
#if defined( RAPIDGZIP_HAVE_VENDOR_LZ4 )
    {
        const auto blockInput = span.subView( 0, 64 * KiB );
        const auto ourBlock = formats::lz4CompressBlock( blockInput );
        std::vector<std::uint8_t> vendorDecoded( blockInput.size() );
        const auto vendorSize = formats::vendorLz4DecompressBlock(
            { ourBlock.data(), ourBlock.size() }, vendorDecoded.data(), vendorDecoded.size() );
        REQUIRE( vendorSize == blockInput.size() );
        REQUIRE( std::equal( vendorDecoded.begin(), vendorDecoded.end(), blockInput.begin() ) );

        const auto vendorBlock = formats::vendorLz4CompressBlock( blockInput );
        std::vector<std::uint8_t> ourDecoded;
        formats::lz4DecompressBlock( { vendorBlock.data(), vendorBlock.size() }, ourDecoded,
                                     0, blockInput.size() );
        REQUIRE( ourDecoded.size() == blockInput.size() );
        REQUIRE( std::equal( ourDecoded.begin(), ourDecoded.end(), blockInput.begin() ) );
    }
#endif

    /* Frame level: our writer → our parallel reader, both block sizes. */
    for ( const auto blockSize : { formats::Lz4Writer::BlockMaxSize::KIB64,
                                   formats::Lz4Writer::BlockMaxSize::KIB256 } ) {
        const auto file = formats::writeLz4( span, blockSize );
        REQUIRE( formats::detectFormat( { file.data(), file.size() } ) == formats::Format::LZ4 );
        REQUIRE( decompressOurs( file ) == corpus.data );

#if defined( RAPIDGZIP_HAVE_VENDOR_LZ4 )
        /* Vendor oracle on every framed block our writer produced: parse
         * with the frame walk (shared), decode blocks with liblz4. */
        Lz4BlockOracle oracle( file );
        REQUIRE( oracle.decodeAll() == corpus.data );
#endif
    }

    /* Multi-frame: two frames back to back plus a skippable frame. */
    {
        std::vector<std::uint8_t> file;
        formats::Lz4Writer::writeFrame( file, span, formats::Lz4Writer::BlockMaxSize::KIB64 );
        const std::vector<std::uint8_t> metadata{ 'm', 'e', 't', 'a' };
        formats::Lz4Writer::writeSkippableFrame( file, { metadata.data(), metadata.size() } );
        formats::Lz4Writer::writeFrame( file, span.subView( 0, corpus.data.size() / 2 ),
                                        formats::Lz4Writer::BlockMaxSize::KIB64 );
        std::vector<std::uint8_t> expected = corpus.data;
        expected.insert( expected.end(), corpus.data.begin(),
                         corpus.data.begin()
                         + static_cast<std::ptrdiff_t>( corpus.data.size() / 2 ) );
        REQUIRE( decompressOurs( file ) == expected );
        requireTruncationsRejected( file, expected );
    }
}

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
void
testZstdDifferential( const Corpus& corpus )
{
    const BufferView span{ corpus.data.data(), corpus.data.size() };

    /* Seekable (frame-parallel) and plain multi-frame layouts. */
    for ( const bool seekable : { true, false } ) {
        const auto file = seekable ? formats::writeZstdSeekable( span, 3, 256 * KiB )
                                   : formats::writeZstdFrames( span, 3, 256 * KiB );
        REQUIRE( formats::detectFormat( { file.data(), file.size() } ) == formats::Format::ZSTD );

        /* Ours vs vendor streaming oracle vs ground truth. */
        REQUIRE( decompressOurs( file ) == corpus.data );
        REQUIRE( formats::vendorZstdDecompressAll( { file.data(), file.size() } )
                 == corpus.data );

        auto decompressor = formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( file ), config() );
        REQUIRE( decompressor->parallelizable() );
        REQUIRE( decompressor->size() == corpus.data.size() );
    }

    const auto file = formats::writeZstdSeekable( span, 3, 256 * KiB );
    requireTruncationsRejected( file, corpus.data );
}
#endif

#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
void
testBzip2Differential( const Corpus& corpus )
{
    const BufferView span{ corpus.data.data(), corpus.data.size() };

    for ( const int level : { 1, 9 } ) {
        const auto file = formats::writeBzip2( span, level );
        REQUIRE( formats::detectFormat( { file.data(), file.size() } )
                 == formats::Format::BZIP2 );
        REQUIRE( decompressOurs( file ) == corpus.data );
        REQUIRE( formats::vendorBzip2DecompressAll( { file.data(), file.size() } )
                 == corpus.data );
    }

    /* Multi-stream (bzip2 -c a >> out; bzip2 -c b >> out). */
    {
        auto file = formats::writeBzip2( span, 1 );
        const auto second = formats::writeBzip2( span.subView( 0, corpus.data.size() / 2 ), 1 );
        file.insert( file.end(), second.begin(), second.end() );
        std::vector<std::uint8_t> expected = corpus.data;
        expected.insert( expected.end(), corpus.data.begin(),
                         corpus.data.begin()
                         + static_cast<std::ptrdiff_t>( corpus.data.size() / 2 ) );

        auto decompressor = formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( file ), config() );
        REQUIRE( decompressor->parallelizable() );  /* scan follows both streams */
        std::vector<std::uint8_t> decoded;
        (void)decompressor->decompress( [&decoded] ( BufferView view ) {
            decoded.insert( decoded.end(), view.begin(), view.end() );
        } );
        REQUIRE( decoded == expected );
    }

    const auto file = formats::writeBzip2( span, 1 );
    requireTruncationsRejected( file, corpus.data );
}
#endif

}  // namespace

int
main()
{
    const std::uint64_t seed = 0xD1FFE2E47ULL;
    std::printf( "differential scale %.3f, seed %llu\n", diffScale(),
                 static_cast<unsigned long long>( seed ) );

    for ( const auto& corpus : buildCorpora( seed ) ) {
        std::printf( "  corpus %-12s (%zu bytes)\n", corpus.name.c_str(), corpus.data.size() );
        std::fflush( stdout );
        testGzipDifferential( corpus );
        testLz4Differential( corpus );
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
        testZstdDifferential( corpus );
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
        testBzip2Differential( corpus );
#endif
    }
    return rapidgzip::test::finish( "testDifferential" );
}
