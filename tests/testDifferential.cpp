/**
 * Differential decompression suite: every backend's writer feeds every
 * corpus through OUR reader and through the VENDOR decoder, byte-exact.
 * This is the randomized cross-check the PR 2-4 spot tests lacked — the
 * corpus generator is seeded-PRNG (base64, long runs, incompressible
 * random, boundary-heavy LZ windows), so failures reproduce from the seed
 * printed by the harness.
 *
 * Per format:
 *   gzip  — ParallelGzipReader (two-stage pipeline) vs zlib inflate;
 *   zstd  — frame-parallel dispatch reader vs ZSTD_decompressStream;
 *   lz4   — from-scratch frame+block decoder vs LZ4_decompress_safe per
 *           block (both directions: our writer → vendor, vendor → ours);
 *   bzip2 — block-scan parallel reader vs libbz2 whole-stream streaming.
 *
 * Plus, per the acceptance criteria: multi-frame/member/stream inputs and
 * truncated-input rejection (every truncation must throw RapidgzipError —
 * never crash, never return success with wrong bytes).
 *
 * RAPIDGZIP_DIFF_SCALE scales the corpus sizes (default 0.01 for quick
 * ctest runs; the nightly CI job runs 0.05).
 */

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ParallelGzipReader.hpp"
#include "formats/Formats.hpp"
#include "formats/Lz4Codec.hpp"
#include "formats/Salvage.hpp"
#include "formats/Lz4Writer.hpp"
#include "formats/VendorLz4.hpp"
#include "formats/VendorZstd.hpp"
#include "formats/VendorBzip2.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
#include "formats/ZstdWriter.hpp"
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
#include "formats/Bzip2Writer.hpp"
#endif

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

[[nodiscard]] double
diffScale()
{
    if ( const auto* value = std::getenv( "RAPIDGZIP_DIFF_SCALE" ) ) {
        const auto parsed = std::atof( value );
        if ( parsed > 0.0 ) {
            return parsed;
        }
    }
    return 0.01;
}

[[nodiscard]] std::size_t
scaled( std::size_t bytes )
{
    const auto result = static_cast<std::size_t>( static_cast<double>( bytes ) * diffScale() );
    return std::max<std::size_t>( result, 16 * KiB );
}

struct Corpus
{
    std::string name;
    std::vector<std::uint8_t> data;
};

[[nodiscard]] std::vector<Corpus>
buildCorpora( std::uint64_t seed )
{
    const auto size = scaled( 32 * MiB );
    return {
        { "base64", workloads::base64Data( size, seed ) },
        { "runs", workloads::runsData( size, seed + 1 ) },
        { "random", workloads::randomData( size, seed + 2 ) },
        { "lz-boundary", workloads::lzBoundaryData( size, seed + 3 ) },
    };
}

[[nodiscard]] ChunkFetcherConfiguration
config()
{
    ChunkFetcherConfiguration result;
    result.parallelism = 4;
    result.chunkSizeBytes = 256 * KiB;
    return result;
}

/** Decompress @p file through the dispatch layer, collecting all bytes. */
[[nodiscard]] std::vector<std::uint8_t>
decompressOurs( const std::vector<std::uint8_t>& file )
{
    auto decompressor = formats::makeDecompressor(
        std::make_unique<MemoryFileReader>( file ), config() );
    std::vector<std::uint8_t> result;
    const auto total = decompressor->decompress( [&result] ( BufferView span ) {
        result.insert( result.end(), span.begin(), span.end() );
    } );
    REQUIRE( total == result.size() );
    return result;
}

/** Every strict prefix of @p file must be REJECTED (throw), never crash and
 * never decode "successfully". Sampled stride keeps the quadratic cost down;
 * boundaries (±1 byte) are always included. */
void
requireTruncationsRejected( const std::vector<std::uint8_t>& file,
                            const std::vector<std::uint8_t>& original )
{
    std::vector<std::size_t> cuts;
    for ( std::size_t cut = 1; cut < file.size();
          cut += std::max<std::size_t>( 1, file.size() / 37 ) ) {
        cuts.push_back( cut );
    }
    cuts.push_back( file.size() - 1 );
    cuts.push_back( file.size() / 2 );

    for ( const auto cut : cuts ) {
        const std::vector<std::uint8_t> truncated( file.begin(),
                                                   file.begin()
                                                   + static_cast<std::ptrdiff_t>( cut ) );
        bool rejected = false;
        try {
            const auto decoded = decompressOurs( truncated );
            /* A truncated multi-frame container can decode VALIDLY to a
             * prefix (e.g. cut exactly between gzip members/zstd frames) —
             * then the bytes must be a clean prefix of the original, never
             * garbage. */
            rejected = true;
            REQUIRE( decoded.size() <= original.size() );
            REQUIRE( std::equal( decoded.begin(), decoded.end(), original.begin() ) );
        } catch ( const RapidgzipError& ) {
            rejected = true;
        }
        REQUIRE( rejected );
    }
}

void
testGzipDifferential( const Corpus& corpus )
{
    /* Our parallel reader vs the vendor (zlib) oracle, single member. */
    const auto file = compressGzipLike( { corpus.data.data(), corpus.data.size() }, 6 );
    REQUIRE( formats::detectFormat( { file.data(), file.size() } ) == formats::Format::GZIP );
    REQUIRE( decompressOurs( file ) == corpus.data );
    REQUIRE( decompressWithZlib( { file.data(), file.size() } ) == corpus.data );

    /* Multi-member (concatenated gzip). */
    auto concatenated = file;
    const auto second = compressGzipLike( { corpus.data.data(), corpus.data.size() / 2 }, 1 );
    concatenated.insert( concatenated.end(), second.begin(), second.end() );
    std::vector<std::uint8_t> expected = corpus.data;
    expected.insert( expected.end(), corpus.data.begin(),
                     corpus.data.begin() + static_cast<std::ptrdiff_t>( corpus.data.size() / 2 ) );
    REQUIRE( decompressOurs( concatenated ) == expected );

    requireTruncationsRejected( file, corpus.data );
}

#if defined( RAPIDGZIP_HAVE_VENDOR_LZ4 )
/** Frame walk mirroring the spec (not our reader), bytes via vendor
 * blocks: replays the file as liblz4 would see each block. Only the
 * profile our writer emits needs supporting here. */
class Lz4BlockOracle
{
public:
    explicit Lz4BlockOracle( std::vector<std::uint8_t> file ) :
        m_file( std::move( file ) )
    {}

    [[nodiscard]] std::vector<std::uint8_t>
    decodeAll()
    {
        std::vector<std::uint8_t> result;
        std::size_t offset = 0;
        const auto le32 = [this] ( std::size_t at ) {
            return formats::readLE32( m_file.data() + at );
        };
        while ( offset < m_file.size() ) {
            const auto magic = le32( offset );
            if ( ( magic & formats::ZSTD_SKIPPABLE_MAGIC_MASK )
                 == formats::ZSTD_SKIPPABLE_MAGIC_BASE ) {
                offset += 8 + le32( offset + 4 );
                continue;
            }
            REQUIRE( magic == formats::LZ4_FRAME_MAGIC );
            const auto flg = m_file[offset + 4];
            const auto bd = m_file[offset + 5];
            const bool blockChecksums = ( flg & 0x10U ) != 0;
            const bool contentSize = ( flg & 0x08U ) != 0;
            const bool contentChecksum = ( flg & 0x04U ) != 0;
            const auto blockMaxSize = formats::Lz4Writer::blockMaxSizeBytes(
                static_cast<formats::Lz4Writer::BlockMaxSize>( ( bd >> 4U ) & 0x7U ) );
            offset += 4 + 2 + ( contentSize ? 8 : 0 ) + 1;

            while ( true ) {
                const auto header = le32( offset );
                offset += 4;
                if ( header == 0 ) {
                    break;
                }
                const bool stored = ( header & 0x80000000U ) != 0;
                const auto dataSize = header & 0x7FFFFFFFU;
                if ( stored ) {
                    result.insert( result.end(),
                                   m_file.begin() + static_cast<std::ptrdiff_t>( offset ),
                                   m_file.begin()
                                   + static_cast<std::ptrdiff_t>( offset + dataSize ) );
                } else {
                    std::vector<std::uint8_t> decoded( blockMaxSize );
                    const auto size = formats::vendorLz4DecompressBlock(
                        { m_file.data() + offset, dataSize }, decoded.data(), decoded.size() );
                    result.insert( result.end(), decoded.begin(),
                                   decoded.begin() + static_cast<std::ptrdiff_t>( size ) );
                }
                offset += dataSize + ( blockChecksums ? 4 : 0 );
            }
            offset += contentChecksum ? 4 : 0;
        }
        return result;
    }

private:
    std::vector<std::uint8_t> m_file;
};
#endif

void
testLz4Differential( const Corpus& corpus )
{
    const BufferView span{ corpus.data.data(), corpus.data.size() };

    /* Block-level differential, both directions, before any framing. */
#if defined( RAPIDGZIP_HAVE_VENDOR_LZ4 )
    {
        const auto blockInput = span.subView( 0, 64 * KiB );
        const auto ourBlock = formats::lz4CompressBlock( blockInput );
        std::vector<std::uint8_t> vendorDecoded( blockInput.size() );
        const auto vendorSize = formats::vendorLz4DecompressBlock(
            { ourBlock.data(), ourBlock.size() }, vendorDecoded.data(), vendorDecoded.size() );
        REQUIRE( vendorSize == blockInput.size() );
        REQUIRE( std::equal( vendorDecoded.begin(), vendorDecoded.end(), blockInput.begin() ) );

        const auto vendorBlock = formats::vendorLz4CompressBlock( blockInput );
        std::vector<std::uint8_t> ourDecoded;
        formats::lz4DecompressBlock( { vendorBlock.data(), vendorBlock.size() }, ourDecoded,
                                     0, blockInput.size() );
        REQUIRE( ourDecoded.size() == blockInput.size() );
        REQUIRE( std::equal( ourDecoded.begin(), ourDecoded.end(), blockInput.begin() ) );
    }
#endif

    /* Frame level: our writer → our parallel reader, both block sizes. */
    for ( const auto blockSize : { formats::Lz4Writer::BlockMaxSize::KIB64,
                                   formats::Lz4Writer::BlockMaxSize::KIB256 } ) {
        const auto file = formats::writeLz4( span, blockSize );
        REQUIRE( formats::detectFormat( { file.data(), file.size() } ) == formats::Format::LZ4 );
        REQUIRE( decompressOurs( file ) == corpus.data );

#if defined( RAPIDGZIP_HAVE_VENDOR_LZ4 )
        /* Vendor oracle on every framed block our writer produced: parse
         * with the frame walk (shared), decode blocks with liblz4. */
        Lz4BlockOracle oracle( file );
        REQUIRE( oracle.decodeAll() == corpus.data );
#endif
    }

    /* Multi-frame: two frames back to back plus a skippable frame. */
    {
        std::vector<std::uint8_t> file;
        formats::Lz4Writer::writeFrame( file, span, formats::Lz4Writer::BlockMaxSize::KIB64 );
        const std::vector<std::uint8_t> metadata{ 'm', 'e', 't', 'a' };
        formats::Lz4Writer::writeSkippableFrame( file, { metadata.data(), metadata.size() } );
        formats::Lz4Writer::writeFrame( file, span.subView( 0, corpus.data.size() / 2 ),
                                        formats::Lz4Writer::BlockMaxSize::KIB64 );
        std::vector<std::uint8_t> expected = corpus.data;
        expected.insert( expected.end(), corpus.data.begin(),
                         corpus.data.begin()
                         + static_cast<std::ptrdiff_t>( corpus.data.size() / 2 ) );
        REQUIRE( decompressOurs( file ) == expected );
        requireTruncationsRejected( file, expected );
    }
}

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
void
testZstdDifferential( const Corpus& corpus )
{
    const BufferView span{ corpus.data.data(), corpus.data.size() };

    /* Seekable (frame-parallel) and plain multi-frame layouts. */
    for ( const bool seekable : { true, false } ) {
        const auto file = seekable ? formats::writeZstdSeekable( span, 3, 256 * KiB )
                                   : formats::writeZstdFrames( span, 3, 256 * KiB );
        REQUIRE( formats::detectFormat( { file.data(), file.size() } ) == formats::Format::ZSTD );

        /* Ours vs vendor streaming oracle vs ground truth. */
        REQUIRE( decompressOurs( file ) == corpus.data );
        REQUIRE( formats::vendorZstdDecompressAll( { file.data(), file.size() } )
                 == corpus.data );

        auto decompressor = formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( file ), config() );
        REQUIRE( decompressor->parallelizable() );
        REQUIRE( decompressor->size() == corpus.data.size() );
    }

    const auto file = formats::writeZstdSeekable( span, 3, 256 * KiB );
    requireTruncationsRejected( file, corpus.data );
}
#endif

#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
void
testBzip2Differential( const Corpus& corpus )
{
    const BufferView span{ corpus.data.data(), corpus.data.size() };

    for ( const int level : { 1, 9 } ) {
        const auto file = formats::writeBzip2( span, level );
        REQUIRE( formats::detectFormat( { file.data(), file.size() } )
                 == formats::Format::BZIP2 );
        REQUIRE( decompressOurs( file ) == corpus.data );
        REQUIRE( formats::vendorBzip2DecompressAll( { file.data(), file.size() } )
                 == corpus.data );
    }

    /* Multi-stream (bzip2 -c a >> out; bzip2 -c b >> out). */
    {
        auto file = formats::writeBzip2( span, 1 );
        const auto second = formats::writeBzip2( span.subView( 0, corpus.data.size() / 2 ), 1 );
        file.insert( file.end(), second.begin(), second.end() );
        std::vector<std::uint8_t> expected = corpus.data;
        expected.insert( expected.end(), corpus.data.begin(),
                         corpus.data.begin()
                         + static_cast<std::ptrdiff_t>( corpus.data.size() / 2 ) );

        auto decompressor = formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( file ), config() );
        REQUIRE( decompressor->parallelizable() );  /* scan follows both streams */
        std::vector<std::uint8_t> decoded;
        (void)decompressor->decompress( [&decoded] ( BufferView view ) {
            decoded.insert( decoded.end(), view.begin(), view.end() );
        } );
        REQUIRE( decoded == expected );
    }

    const auto file = formats::writeBzip2( span, 1 );
    requireTruncationsRejected( file, corpus.data );
}
#endif

/* --- corruption matrix -------------------------------------------------- */

/** @p output must be exactly the in-order concatenation of a subset of
 * @p blocks; returns which blocks made it. Block contents are distinct
 * (different seeds), so the greedy match is unambiguous. */
[[nodiscard]] std::vector<bool>
matchConcatSubset( const std::vector<std::uint8_t>& output,
                   const std::vector<std::vector<std::uint8_t>>& blocks )
{
    std::vector<bool> included( blocks.size(), false );
    std::size_t position = 0;
    for ( std::size_t i = 0; i < blocks.size(); ++i ) {
        const auto& block = blocks[i];
        if ( ( position + block.size() <= output.size() )
             && ( std::memcmp( output.data() + position, block.data(), block.size() ) == 0 ) ) {
            included[i] = true;
            position += block.size();
        }
    }
    REQUIRE( position == output.size() );
    return included;
}

/** Strict (non-salvage) decode of damaged input: must throw RapidgzipError
 * or produce a clean prefix of @p original — never crash, hang, or emit
 * bytes that differ from the original. */
void
requireStrictContainment( const std::vector<std::uint8_t>& corrupted,
                          const std::vector<std::uint8_t>& original )
{
    try {
        const auto decoded = decompressOurs( corrupted );
        REQUIRE( decoded.size() <= original.size() );
        REQUIRE( std::equal( decoded.begin(), decoded.end(), original.begin() ) );
    } catch ( const RapidgzipError& ) {
        /* typed rejection is the expected common outcome */
    }
}

/** Run @p salvage over @p file collecting output; no throw allowed. */
[[nodiscard]] std::pair<formats::SalvageReport, std::vector<std::uint8_t>>
salvageAll( const std::vector<std::uint8_t>& file )
{
    std::vector<std::uint8_t> output;
    const auto report = formats::salvageDecompress(
        BufferView{ file.data(), file.size() },
        [&output] ( BufferView view ) {
            output.insert( output.end(), view.begin(), view.end() );
        } );
    REQUIRE( report.recoveredBytes == output.size() );
    return { report, output };
}

/**
 * The corruption matrix the robustness acceptance asks for: per backend,
 * an archive of four independent units (members / frames / streams) is
 * damaged by single-byte flips (unit magic, and mid-unit for the formats
 * whose units carry checksums) and by mid-unit truncation. Without
 * salvage every damaged variant must throw or yield a clean prefix; with
 * salvage the undamaged units must come back byte-exact with the damage
 * reported as byte-ranged holes.
 */
void
testCorruptionMatrix()
{
    constexpr std::size_t BLOCK_SIZE = 24 * KiB;
    constexpr std::size_t BLOCK_COUNT = 4;

    struct Layout
    {
        std::string name;
        std::vector<std::uint8_t> file;
        std::vector<std::size_t> unitOffsets;
        /** Units carry their own integrity check, so mid-unit flips are
         * guaranteed to be detected (zstd frames here carry none). */
        bool checksummedUnits{ true };
    };

    std::vector<std::vector<std::uint8_t>> blocks;
    for ( std::size_t i = 0; i < BLOCK_COUNT; ++i ) {
        blocks.push_back( workloads::base64Data( BLOCK_SIZE, 900 + i ) );
    }
    std::vector<std::uint8_t> reference;
    for ( const auto& block : blocks ) {
        reference.insert( reference.end(), block.begin(), block.end() );
    }

    const auto concatenate = [&blocks] ( const std::string& name,
                                         const auto& writeUnit,
                                         bool checksummedUnits ) {
        Layout layout;
        layout.name = name;
        layout.checksummedUnits = checksummedUnits;
        for ( const auto& block : blocks ) {
            layout.unitOffsets.push_back( layout.file.size() );
            const auto unit = writeUnit( BufferView{ block.data(), block.size() } );
            layout.file.insert( layout.file.end(), unit.begin(), unit.end() );
        }
        return layout;
    };

    std::vector<Layout> layouts;
    layouts.push_back( concatenate( "gzip", [] ( BufferView span ) {
        return compressGzipLike( span, 6 );
    }, true ) );
    layouts.push_back( concatenate( "lz4", [] ( BufferView span ) {
        return formats::writeLz4( span, formats::Lz4Writer::BlockMaxSize::KIB64 );
    }, true ) );
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
    layouts.push_back( concatenate( "zstd", [] ( BufferView span ) {
        return formats::writeZstdFrames( span, 3, 256 * KiB );
    }, false ) );
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
    layouts.push_back( concatenate( "bzip2", [] ( BufferView span ) {
        return formats::writeBzip2( span, 1 );
    }, true ) );
#endif

    for ( const auto& layout : layouts ) {
        std::printf( "  corruption matrix: %s (%zu bytes)\n",
                     layout.name.c_str(), layout.file.size() );
        std::fflush( stdout );

        /* Intact archive: salvage is a no-op recovery — clean report, all
         * units, byte-exact against the strict decode. */
        {
            const auto [report, output] = salvageAll( layout.file );
            REQUIRE( report.clean() );
            REQUIRE( report.recoveredUnits == BLOCK_COUNT );
            REQUIRE( output == reference );
            REQUIRE( decompressOurs( layout.file ) == reference );
        }

        const auto unitEnd = [&layout] ( std::size_t i ) {
            return i + 1 < layout.unitOffsets.size() ? layout.unitOffsets[i + 1]
                                                     : layout.file.size();
        };

        /* Single-byte flips. Magic-byte flips hide a unit from any
         * scanner; mid-unit flips must trip the unit's own checksum. */
        std::vector<std::pair<std::size_t, std::size_t>> flips;  /* unit, offset */
        for ( const std::size_t unit : { std::size_t( 0 ), std::size_t( 1 ),
                                         BLOCK_COUNT - 1 } ) {
            flips.emplace_back( unit, layout.unitOffsets[unit] );
        }
        if ( layout.checksummedUnits ) {
            flips.emplace_back( 2, ( layout.unitOffsets[2] + unitEnd( 2 ) ) / 2 );
        }

        for ( const auto& [unit, flipOffset] : flips ) {
            auto corrupted = layout.file;
            corrupted[flipOffset] ^= 0x40U;

            std::printf( "    flip unit %zu offset %zu\n", unit, flipOffset );
            std::fflush( stdout );
            requireStrictContainment( corrupted, reference );

            const auto [report, output] = salvageAll( corrupted );
            const auto included = matchConcatSubset( output, blocks );
            for ( std::size_t i = 0; i < BLOCK_COUNT; ++i ) {
                if ( i != unit ) {
                    REQUIRE( included[i] );  /* undamaged units always recover */
                }
            }
            if ( !included[unit] ) {
                /* The damaged unit was lost: its bytes must be accounted
                 * for as holes inside the file. */
                REQUIRE( !report.clean() );
                REQUIRE( report.missingCompressedBytes() > 0 );
                for ( const auto& hole : report.holes ) {
                    REQUIRE( hole.compressedBegin < hole.compressedEnd );
                    REQUIRE( hole.compressedEnd <= corrupted.size() );
                }
            }
        }

        /* Mid-unit truncation: everything before the cut recovers, the
         * tail is reported as a hole reaching the (truncated) EOF. */
        {
            const auto cut = ( layout.unitOffsets[2] + unitEnd( 2 ) ) / 2;
            const std::vector<std::uint8_t> truncated( layout.file.begin(),
                                                       layout.file.begin()
                                                       + static_cast<std::ptrdiff_t>( cut ) );

            requireStrictContainment( truncated, reference );

            const auto [report, output] = salvageAll( truncated );
            const auto included = matchConcatSubset( output, blocks );
            REQUIRE( included[0] );
            REQUIRE( included[1] );
            REQUIRE( !included[3] );  /* entirely beyond the cut */
            REQUIRE( !report.clean() );
            REQUIRE( !report.holes.empty() );
            REQUIRE( report.holes.back().compressedEnd == truncated.size() );
        }
    }
}

}  // namespace

int
main()
{
    const std::uint64_t seed = 0xD1FFE2E47ULL;
    std::printf( "differential scale %.3f, seed %llu\n", diffScale(),
                 static_cast<unsigned long long>( seed ) );

    for ( const auto& corpus : buildCorpora( seed ) ) {
        std::printf( "  corpus %-12s (%zu bytes)\n", corpus.name.c_str(), corpus.data.size() );
        std::fflush( stdout );
        testGzipDifferential( corpus );
        testLz4Differential( corpus );
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
        testZstdDifferential( corpus );
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
        testBzip2Differential( corpus );
#endif
    }
    testCorruptionMatrix();
    return rapidgzip::test::finish( "testDifferential" );
}
