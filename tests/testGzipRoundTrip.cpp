/**
 * gzip layer: GzipWriter -> GzipReader round trips on generated data,
 * pigz-style streams, multi-member files, incremental reads, and error
 * behavior on garbage input.
 */

#include <cstring>
#include <memory>
#include <vector>

#include "gzip/GzipHeader.hpp"
#include "gzip/GzipReader.hpp"
#include "gzip/GzipWriter.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

void
checkRoundTrip( const std::vector<std::uint8_t>& original,
                const std::vector<std::uint8_t>& compressed )
{
    /* Via the serial reader. */
    GzipReader reader( std::make_unique<MemoryFileReader>( compressed ) );
    const auto decompressed = reader.decompressToVector();
    REQUIRE( decompressed == original );
    REQUIRE( reader.eof() );
    REQUIRE( reader.tell() == original.size() );

    /* Via the one-shot helper. */
    REQUIRE( decompressWithZlib( { compressed.data(), compressed.size() } ) == original );

    /* Header parses and points into the stream. */
    const auto deflateStart = parseGzipHeader( { compressed.data(), compressed.size() } );
    REQUIRE( deflateStart >= 10 );
    REQUIRE( deflateStart < compressed.size() );

    /* Footer carries the modulo-32 size. */
    const auto footer = parseGzipFooter( { compressed.data(), compressed.size() },
                                         compressed.size() );
    REQUIRE( footer.uncompressedSizeModulo32 == static_cast<std::uint32_t>( original.size() ) );
}

}  // namespace

int
main()
{
    const auto text = workloads::base64Data( 3 * MiB + 17, 0x60D );
    const auto binary = workloads::silesiaLikeData( 2 * MiB + 333, 0xB1B );

    /* GzipWriter round trip, including chunked writes and flush(). */
    for ( const auto* original : { &text, &binary } ) {
        std::vector<std::uint8_t> compressed;
        {
            GzipWriter writer( compressed, 6 );
            std::size_t offset = 0;
            while ( offset < original->size() ) {
                const auto chunk = std::min<std::size_t>( 700 * 1024, original->size() - offset );
                writer.write( original->data() + offset, chunk );
                offset += chunk;
                writer.flush();  /* pigz-style restart point */
            }
            writer.finish();
        }
        REQUIRE( !compressed.empty() );
        checkRoundTrip( *original, compressed );
    }

    /* compressGzipLike and compressPigzLike round trip. */
    checkRoundTrip( text, compressGzipLike( { text.data(), text.size() }, 6 ) );
    checkRoundTrip( text, compressPigzLike( { text.data(), text.size() }, 6, 256 * 1024 ) );
    checkRoundTrip( binary, compressPigzLike( { binary.data(), binary.size() }, 1, 128 * 1024 ) );

    /* Empty input round trips. */
    {
        const std::vector<std::uint8_t> empty;
        checkRoundTrip( empty, compressGzipLike( { empty.data(), empty.size() } ) );
        checkRoundTrip( empty, compressPigzLike( { empty.data(), empty.size() } ) );
    }

    /* Multi-member stream (cat a.gz b.gz) decodes to the concatenation. */
    {
        auto compressed = compressGzipLike( { text.data(), text.size() } );
        const auto second = compressGzipLike( { binary.data(), binary.size() } );
        compressed.insert( compressed.end(), second.begin(), second.end() );

        auto expected = text;
        expected.insert( expected.end(), binary.begin(), binary.end() );

        GzipReader reader( std::make_unique<MemoryFileReader>( compressed ) );
        REQUIRE( reader.decompressToVector() == expected );
    }

    /* Trailing padding after the footer is ignored, like `gzip -d` —
     * consistently by the streaming reader and the one-shot helper. */
    {
        auto padded = compressGzipLike( { text.data(), text.size() } );
        padded.insert( padded.end(), 512, 0 );
        GzipReader reader( std::make_unique<MemoryFileReader>( padded ) );
        REQUIRE( reader.decompressToVector() == text );
        REQUIRE( decompressWithZlib( { padded.data(), padded.size() } ) == text );
    }

    /* Incremental reads return exactly the requested bytes. */
    {
        const auto compressed = compressPigzLike( { text.data(), text.size() }, 6, 512 * 1024 );
        GzipReader reader( std::make_unique<MemoryFileReader>( compressed ) );
        std::vector<std::uint8_t> reassembled;
        std::uint8_t buffer[12345];
        while ( true ) {
            const auto got = reader.read( buffer, sizeof( buffer ) );
            if ( got == 0 ) {
                break;
            }
            reassembled.insert( reassembled.end(), buffer, buffer + got );
        }
        REQUIRE( reassembled == text );
    }

    /* Garbage input and truncation raise InvalidGzipStreamError. */
    {
        const std::vector<std::uint8_t> garbage( 1000, 0xAB );
        GzipReader reader( std::make_unique<MemoryFileReader>( garbage ) );
        std::uint8_t buffer[64];
        REQUIRE_THROWS_AS( (void)reader.read( buffer, sizeof( buffer ) ),
                           InvalidGzipStreamError );

        auto truncated = compressGzipLike( { text.data(), text.size() } );
        truncated.resize( truncated.size() / 2 );
        GzipReader truncatedReader( std::make_unique<MemoryFileReader>( truncated ) );
        REQUIRE_THROWS_AS( (void)truncatedReader.decompressAll(), InvalidGzipStreamError );

        REQUIRE_THROWS_AS( (void)parseGzipHeader( { garbage.data(), garbage.size() } ),
                           InvalidGzipStreamError );
    }

    return rapidgzip::test::finish( "testGzipRoundTrip" );
}
