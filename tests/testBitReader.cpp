/**
 * BitReader edge cases demanded by the issue: reads straddling the 64-bit
 * refill boundary, a full 32-bit single read, seek-then-read, and reading
 * past EOF, plus LSB-first bit-order and peek/skip semantics.
 */

#include <cstdint>
#include <vector>

#include "bits/BitReader.hpp"
#include "common/Util.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

int
main()
{
    /* LSB-first semantics: 0xA5 = 0b10100101 yields bits 1,0,1,0,0,1,0,1. */
    {
        const std::uint8_t data[] = { 0xA5 };
        BitReader reader( data, sizeof( data ) );
        REQUIRE( reader.read( 1 ) == 1 );
        REQUIRE( reader.read( 1 ) == 0 );
        REQUIRE( reader.read( 1 ) == 1 );
        REQUIRE( reader.read( 2 ) == 0 );   /* bits 0,0 */
        REQUIRE( reader.read( 3 ) == 0b101 );
        REQUIRE( reader.tell() == 8 );
        REQUIRE( reader.eof() );
    }

    /* Multi-byte values assemble little-endian in bit order. */
    {
        const std::uint8_t data[] = { 0x34, 0x12 };
        BitReader reader( data, sizeof( data ) );
        REQUIRE( reader.read( 16 ) == 0x1234 );
    }

    /* 32-bit single read and reads straddling the 64-bit refill boundary. */
    {
        std::vector<std::uint8_t> data( 32 );
        for ( std::size_t i = 0; i < data.size(); ++i ) {
            data[i] = static_cast<std::uint8_t>( i + 1 );
        }
        BitReader reader( data.data(), data.size() );
        REQUIRE( reader.read( 32 ) == 0x04030201ULL );

        /* Cursor at bit 32 of a 64-bit refill; the next 32-bit read pulls
         * 24 bits from the current refill word and 8 from the next. */
        REQUIRE( reader.read( 32 ) == 0x08070605ULL );

        /* Odd offsets: 7-bit reads never align with the refill boundary. */
        BitReader odd( data.data(), data.size() );
        std::uint64_t expectedBits = 0;
        for ( unsigned i = 0; i < 64 / 8; ++i ) {
            expectedBits |= std::uint64_t( data[i] ) << ( i * 8 );
        }
        std::uint64_t collected = 0;
        for ( unsigned position = 0; position < 63; position += 7 ) {
            collected |= odd.read( 7 ) << position;
        }
        collected |= odd.read( 1 ) << 63U;
        REQUIRE( collected == expectedBits );
    }

    /* seek/tell at bit granularity, including mid-byte. */
    {
        const std::uint8_t data[] = { 0xFF, 0x00, 0xF0, 0x0F };
        BitReader reader( data, sizeof( data ) );
        reader.seek( 12 );
        REQUIRE( reader.tell() == 12 );
        REQUIRE( reader.read( 8 ) == 0x00 );  /* high nibble of 0x00, low nibble of 0xF0 */
        REQUIRE( reader.tell() == 20 );
        reader.seek( 4 );
        REQUIRE( reader.read( 8 ) == 0x0F );  /* high nibble of 0xFF, low nibble of 0x00 */

        reader.seek( 17 );
        reader.alignToByte();
        REQUIRE( reader.tell() == 24 );
        reader.alignToByte();
        REQUIRE( reader.tell() == 24 );
    }

    /* Reads past EOF zero-pad and set eof(); they never throw or loop. */
    {
        const std::uint8_t data[] = { 0xFF };
        BitReader reader( data, sizeof( data ) );
        REQUIRE( reader.read( 6 ) == 0x3F );
        REQUIRE( !reader.eof() );
        REQUIRE( reader.read( 6 ) == 0x03 );  /* 2 real bits + 4 zero-padded */
        REQUIRE( reader.eof() );
        REQUIRE( reader.read( 32 ) == 0 );
        REQUIRE( reader.eof() );
        REQUIRE( reader.bitsLeft() == 0 );
    }

    /* peek() does not consume and zero-pads at EOF. */
    {
        const std::uint8_t data[] = { 0x5A };
        BitReader reader( data, sizeof( data ) );
        REQUIRE( reader.peek( 8 ) == 0x5A );
        REQUIRE( reader.peek( 8 ) == 0x5A );
        REQUIRE( reader.tell() == 0 );
        REQUIRE( reader.peek( 16 ) == 0x5A );  /* zero-padded high bits */
        reader.skip( 4 );
        REQUIRE( reader.peek( 4 ) == 0x5 );
        REQUIRE( reader.tell() == 4 );
    }

    /* Seek to the exact end is valid; further reads return zero. */
    {
        const std::uint8_t data[] = { 0x11, 0x22 };
        BitReader reader( data, sizeof( data ) );
        reader.seek( 16 );
        REQUIRE( reader.eof() );
        REQUIRE( reader.read( 8 ) == 0 );
        reader.seek( 1000 );  /* clamped */
        REQUIRE( reader.tell() == 16 );
    }

    /* seekAfterPeek: the sliding-probe fast path must agree bit-for-bit
     * with a full seek — forward within the buffer (cheap path), backward,
     * and far jumps (both fall back to seek). */
    {
        std::vector<std::uint8_t> data( 64 );
        for ( std::size_t i = 0; i < data.size(); ++i ) {
            data[i] = static_cast<std::uint8_t>( i * 37 + 11 );
        }
        BitReader probing( data.data(), data.size() );
        BitReader seeking( data.data(), data.size() );

        /* The block-finder pattern: peek at pos, advance one bit, repeat. */
        for ( std::size_t position = 0; position + 13 <= data.size() * 8; ++position ) {
            probing.seekAfterPeek( position );
            seeking.seek( position );
            REQUIRE( probing.peek( 13 ) == seeking.peek( 13 ) );
            REQUIRE( probing.tell() == position );
        }

        /* Backward and far-forward targets take the full-seek fallback. */
        probing.seekAfterPeek( 5 );
        REQUIRE( probing.tell() == 5 );
        REQUIRE( probing.peek( 8 ) == [&] { seeking.seek( 5 ); return seeking.peek( 8 ); }() );
        probing.seekAfterPeek( 400 );
        REQUIRE( probing.tell() == 400 );
        REQUIRE( probing.peek( 8 ) == [&] { seeking.seek( 400 ); return seeking.peek( 8 ); }() );

        /* Mixed with consuming reads: repositioning stays exact. */
        probing.seekAfterPeek( 100 );
        REQUIRE( probing.read( 9 ) == [&] { seeking.seek( 100 ); return seeking.read( 9 ); }() );
        probing.seekAfterPeek( 101 );
        REQUIRE( probing.tell() == 101 );
        REQUIRE( probing.peek( 13 ) == [&] { seeking.seek( 101 ); return seeking.peek( 13 ); }() );

        /* Clamped past-the-end target, like seek(). */
        probing.seekAfterPeek( data.size() * 8 + 123 );
        REQUIRE( probing.tell() == data.size() * 8 );

        /* Delta of exactly 64 bits — one full refill buffer — must not
         * shift by 64 (undefined behavior) and must land exactly. */
        BitReader full( data.data(), data.size() );
        REQUIRE( full.peek( 1 ) == ( data[0] & 1U ) );  /* refills 64 bits */
        full.seekAfterPeek( 64 );
        REQUIRE( full.tell() == 64 );
        seeking.seek( 64 );
        REQUIRE( full.peek( 13 ) == seeking.peek( 13 ) );
    }

    /* Owning constructor keeps the data alive. */
    {
        std::vector<std::uint8_t> data{ 0xDE, 0xAD, 0xBE, 0xEF };
        BitReader reader( std::move( data ) );
        REQUIRE( reader.read( 32 ) == 0xEFBEADDEULL );
    }

    /* Guaranteed-bits contract (PR 4): an ensureBits/readUnsafe loop must
     * reproduce a checked read() loop bit for bit, leave exactly the
     * unguaranteeable tail, and agree through a RegisterCursor as well. */
    {
        const auto data = rapidgzip::workloads::randomData( 64 * KiB + 3, 0xFA57 );

        BitReader checked( data.data(), data.size() );
        BitReader unchecked( data.data(), data.size() );
        while ( unchecked.ensureBits( 48 ) ) {
            REQUIRE( unchecked.peekUnsafe( 11 ) == checked.peek( 11 ) );
            REQUIRE( unchecked.readUnsafe( 11 ) == checked.read( 11 ) );
            unchecked.consumeUnsafe( 7 );
            (void)checked.read( 7 );
            REQUIRE( checked.tell() == unchecked.tell() );  /* lockstep */
        }
        /* The tail is readable with the checked API and zero-padded. */
        REQUIRE( unchecked.bufferedBits() < 48 );
        while ( !unchecked.eof() ) {
            REQUIRE( unchecked.read( 1 ) == checked.read( 1 ) );
        }

        BitReader cursorReader( data.data(), data.size() );
        BitReader plainReader( data.data(), data.size() );
        {
            BitReader::RegisterCursor cursor( cursorReader );
            for ( int i = 0; i < 1000 && cursor.ensureBits( 57 ); ++i ) {
                REQUIRE( cursor.readUnsafe( 13 ) == plainReader.read( 13 ) );
                REQUIRE( ( cursor.peekBufferUnsafe()
                           & ( ( std::uint64_t( 1 ) << 5U ) - 1 ) ) == plainReader.peek( 5 ) );
                cursor.consumeUnsafe( 5 );
                (void)plainReader.read( 5 );
            }
        }  /* destructor syncs the cursor back */
        REQUIRE( cursorReader.tell() == plainReader.tell() );
        REQUIRE( cursorReader.read( 17 ) == plainReader.read( 17 ) );
    }

    /* peek64 and peekAt agree with seek + checked reads at any offset. */
    {
        const auto data = rapidgzip::workloads::randomData( 4 * KiB, 0xFA58 );
        BitReader reader( data.data(), data.size() );
        BitReader reference( data.data(), data.size() );
        rapidgzip::Xorshift64 random( 0xFA59 );
        for ( int i = 0; i < 2000; ++i ) {
            const auto offset = random.below( data.size() * 8 + 64 );
            const auto bits = 1 + static_cast<unsigned>( random.below( 56 ) );
            reference.seek( offset );
            std::uint64_t expected = 0;
            for ( unsigned bit = 0; bit < bits; ++bit ) {
                expected |= reference.read( 1 ) << bit;
            }
            REQUIRE( reader.peekAt( offset, bits ) == expected );
            if ( bits <= BitReader::MAX_ENSURE_BITS ) {
                reader.seek( offset );
                REQUIRE( reader.peek64( bits ) == expected );
            }
        }
    }

    return rapidgzip::test::finish( "testBitReader" );
}
