/**
 * Unit tests for the serve subsystem (src/serve/): the incremental HTTP
 * request parser (arbitrary splits, pipelining, malformed and oversized
 * input), the RFC 9110 Range algebra, the byte-bounded LRU chunk cache
 * (budget invariant, eviction order, single-flight decode dedup), the
 * shared cache tier across independent readers, sidecar-index adoption,
 * and an end-to-end loopback run of the daemon: concurrent ranged GETs
 * against gzip (and zstd when the vendor library is present) archives,
 * byte-compared with the reference data.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ChunkCache.hpp"
#include "failsafe/FaultInjection.hpp"
#include "formats/Formats.hpp"
#include "formats/Lz4Writer.hpp"
#include "formats/Sidecar.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "serve/Http.hpp"
#include "serve/Server.hpp"
#include "workloads/DataGenerators.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
#include "formats/ZstdWriter.hpp"
#endif

#include "TestHelpers.hpp"

using namespace rapidgzip;
using namespace rapidgzip::serve;

namespace {

/* --- request parser ---------------------------------------------------- */

void
testRequestParserBasics()
{
    RequestParser parser;
    const std::string raw = "GET /data.gz HTTP/1.1\r\n"
                            "Host: localhost\r\n"
                            "Range: bytes=0-99\r\n"
                            "\r\n";
    parser.feed( raw.data(), raw.size() );

    HttpRequest request;
    REQUIRE( parser.next( request ) );
    REQUIRE( request.method == "GET" );
    REQUIRE( request.target == "/data.gz" );
    REQUIRE( request.versionMinor == 1 );
    REQUIRE( request.header( "host" ) == "localhost" );
    REQUIRE( request.header( "range" ) == "bytes=0-99" );
    REQUIRE( request.header( "absent" ).empty() );
    REQUIRE( request.keepAlive() );
    REQUIRE( parser.bufferedBytes() == 0 );
    REQUIRE( !parser.next( request ) );  /* nothing further buffered */
    REQUIRE( !parser.failed() );

    /* Keep-alive defaults and overrides. */
    const auto parseOne = [] ( const std::string& text ) {
        RequestParser p;
        p.feed( text.data(), text.size() );
        HttpRequest r;
        REQUIRE( p.next( r ) );
        return r;
    };
    REQUIRE( !parseOne( "GET / HTTP/1.0\r\n\r\n" ).keepAlive() );
    REQUIRE( parseOne( "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n" ).keepAlive() );
    REQUIRE( !parseOne( "GET / HTTP/1.1\r\nConnection: close\r\n\r\n" ).keepAlive() );
    REQUIRE( parseOne( "HEAD /x HTTP/1.1\r\n\r\n" ).method == "HEAD" );

    /* Bare-LF tolerance and header value trimming. */
    const auto lenient = parseOne( "GET /y HTTP/1.1\nRange:   bytes=1-2  \n\n" );
    REQUIRE( lenient.target == "/y" );
    REQUIRE( lenient.header( "range" ) == "bytes=1-2" );
}

void
testRequestParserIncrementalAndPipelined()
{
    /* Byte-by-byte arrival must produce exactly one request at the end. */
    RequestParser parser;
    const std::string raw = "GET /a HTTP/1.1\r\nHost: h\r\n\r\n";
    HttpRequest request;
    for ( std::size_t i = 0; i + 1 < raw.size(); ++i ) {
        parser.feed( raw.data() + i, 1 );
        REQUIRE( !parser.next( request ) );
        REQUIRE( !parser.failed() );
    }
    parser.feed( raw.data() + raw.size() - 1, 1 );
    REQUIRE( parser.next( request ) );
    REQUIRE( request.target == "/a" );

    /* Two pipelined requests in one buffer come out one at a time, in
     * order, with the surplus staying buffered in between. */
    RequestParser pipelined;
    const std::string two = "GET /first HTTP/1.1\r\n\r\nGET /second HTTP/1.1\r\n\r\n";
    pipelined.feed( two.data(), two.size() );
    REQUIRE( pipelined.next( request ) );
    REQUIRE( request.target == "/first" );
    REQUIRE( pipelined.bufferedBytes() > 0 );
    REQUIRE( pipelined.next( request ) );
    REQUIRE( request.target == "/second" );
    REQUIRE( pipelined.bufferedBytes() == 0 );
}

void
testRequestParserFailures()
{
    const auto failureFor = [] ( const std::string& text ) {
        RequestParser parser;
        parser.feed( text.data(), text.size() );
        HttpRequest request;
        REQUIRE( !parser.next( request ) );
        REQUIRE( parser.failed() );
        return parser.failureStatus();
    };
    REQUIRE( failureFor( "GARBAGE\r\n\r\n" ) == 400 );
    REQUIRE( failureFor( "GET /\r\n\r\n" ) == 400 );              /* no version */
    REQUIRE( failureFor( "GET / HTTP/2.0\r\n\r\n" ) == 400 );     /* unsupported version */
    REQUIRE( failureFor( "GET  HTTP/1.1\r\n\r\n" ) == 400 );      /* empty target */
    REQUIRE( failureFor( "GET / HTTP/1.1\r\nBad Header : x\r\n\r\n" ) == 400 );
    REQUIRE( failureFor( "GET / HTTP/1.1\r\n: novalue\r\n\r\n" ) == 400 );

    /* Oversized header block: with and without a terminator in sight. */
    RequestParser oversized;
    const std::string filler( RequestParser::MAX_HEADER_BYTES + 1024, 'x' );
    oversized.feed( filler.data(), filler.size() );
    HttpRequest request;
    REQUIRE( !oversized.next( request ) );
    REQUIRE( oversized.failed() );
    REQUIRE( oversized.failureStatus() == 431 );

    RequestParser terminated;
    std::string huge = "GET / HTTP/1.1\r\n";
    while ( huge.size() <= RequestParser::MAX_HEADER_BYTES ) {
        huge += "X-Padding: ";
        huge += std::string( 120, 'p' );
        huge += "\r\n";
    }
    huge += "\r\n";
    terminated.feed( huge.data(), huge.size() );
    REQUIRE( !terminated.next( request ) );
    REQUIRE( terminated.failureStatus() == 431 );

    /* Failure is sticky: further feeds never produce requests. */
    const std::string good = "GET /ok HTTP/1.1\r\n\r\n";
    terminated.feed( good.data(), good.size() );
    REQUIRE( !terminated.next( request ) );
    REQUIRE( terminated.failed() );
}

/* --- Range algebra ----------------------------------------------------- */

void
testRangeResolution()
{
    const auto resolve = [] ( const std::string& header, std::size_t size ) {
        return resolveRange( header, size );
    };

    REQUIRE( resolve( "", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "items=0-4", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=abc-", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=0-499,600-700", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=5-2", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=-", 1000 ).outcome == RangeOutcome::NO_RANGE );

    const auto plain = resolve( "bytes=0-99", 1000 );
    REQUIRE( plain.outcome == RangeOutcome::RANGE );
    REQUIRE( ( plain.first == 0 ) && ( plain.length == 100 ) );

    const auto open = resolve( "bytes=900-", 1000 );
    REQUIRE( open.outcome == RangeOutcome::RANGE );
    REQUIRE( ( open.first == 900 ) && ( open.length == 100 ) );

    const auto clamped = resolve( "bytes=500-99999", 1000 );
    REQUIRE( clamped.outcome == RangeOutcome::RANGE );
    REQUIRE( ( clamped.first == 500 ) && ( clamped.length == 500 ) );

    const auto suffix = resolve( "bytes=-100", 1000 );
    REQUIRE( suffix.outcome == RangeOutcome::RANGE );
    REQUIRE( ( suffix.first == 900 ) && ( suffix.length == 100 ) );

    const auto hugeSuffix = resolve( "bytes=-2000", 1000 );
    REQUIRE( hugeSuffix.outcome == RangeOutcome::RANGE );
    REQUIRE( ( hugeSuffix.first == 0 ) && ( hugeSuffix.length == 1000 ) );

    const auto single = resolve( "bytes=7-7", 1000 );
    REQUIRE( single.outcome == RangeOutcome::RANGE );
    REQUIRE( ( single.first == 7 ) && ( single.length == 1 ) );

    /* Unsigned-overflow hardening: a first-byte position just past
     * 2^64 − 1 must be IGNORED per RFC 9110 (→ full 200 response), not
     * wrapped modulo 2^64 and served as a bogus "bytes=1-" 206. Same for
     * overflowing last-byte positions, suffix lengths, and anything longer
     * than SIZE_MAX's 20 digits. */
    REQUIRE( resolve( "bytes=18446744073709551617-", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=0-18446744073709551617", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=-18446744073709551617", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=99999999999999999999-", 1000 ).outcome == RangeOutcome::NO_RANGE );
    REQUIRE( resolve( "bytes=111111111111111111111-", 1000 ).outcome == RangeOutcome::NO_RANGE );

    /* SIZE_MAX itself still parses — it is merely beyond the file. */
    REQUIRE( resolve( "bytes=18446744073709551615-", 1000 ).outcome
             == RangeOutcome::UNSATISFIABLE );

    REQUIRE( resolve( "bytes=1000-1010", 1000 ).outcome == RangeOutcome::UNSATISFIABLE );
    REQUIRE( resolve( "bytes=1000-", 1000 ).outcome == RangeOutcome::UNSATISFIABLE );
    REQUIRE( resolve( "bytes=-0", 1000 ).outcome == RangeOutcome::UNSATISFIABLE );
    REQUIRE( resolve( "bytes=0-", 0 ).outcome == RangeOutcome::UNSATISFIABLE );
    REQUIRE( resolve( "bytes=-5", 0 ).outcome == RangeOutcome::UNSATISFIABLE );
}

/* --- LRU chunk cache --------------------------------------------------- */

[[nodiscard]] std::shared_ptr<const DecodedChunk>
makeChunk( std::size_t size, std::uint8_t fill = 0 )
{
    auto chunk = std::make_shared<DecodedChunk>();
    chunk->data.assign( size, fill );
    return chunk;
}

void
testLruCacheBudgetInvariant()
{
    constexpr std::size_t ENTRY = 1024 + LruChunkCache::PER_ENTRY_OVERHEAD;
    LruChunkCache cache( 8 * ENTRY );
    Xorshift64 rng( 1234 );
    for ( int i = 0; i < 2000; ++i ) {
        const ChunkCacheKey key{ /* token */ 7, rng.below( 64 ) };
        if ( rng.below( 3 ) == 0 ) {
            (void)cache.get( key );
        } else {
            cache.insert( key, makeChunk( rng.below( 4096 ) ) );
        }
        const auto stats = cache.statistics();
        REQUIRE( stats.currentBytes <= stats.capacityBytes );
    }
    const auto stats = cache.statistics();
    REQUIRE( stats.insertions > 0 );
    REQUIRE( stats.evictions > 0 );
    REQUIRE( stats.hits + stats.misses > 0 );
}

void
testLruCacheEvictionOrder()
{
    constexpr std::size_t SIZE = 100;
    constexpr std::size_t ENTRY = SIZE + LruChunkCache::PER_ENTRY_OVERHEAD;
    LruChunkCache cache( 3 * ENTRY );
    const auto key = [] ( std::size_t i ) { return ChunkCacheKey{ 1, i }; };

    cache.insert( key( 1 ), makeChunk( SIZE, 1 ) );
    cache.insert( key( 2 ), makeChunk( SIZE, 2 ) );
    cache.insert( key( 3 ), makeChunk( SIZE, 3 ) );
    REQUIRE( cache.get( key( 1 ) ) != nullptr );  /* refresh: 2 becomes LRU */
    cache.insert( key( 4 ), makeChunk( SIZE, 4 ) );

    REQUIRE( cache.get( key( 2 ) ) == nullptr );
    REQUIRE( cache.get( key( 1 ) ) != nullptr );
    REQUIRE( cache.get( key( 3 ) ) != nullptr );
    REQUIRE( cache.get( key( 4 ) ) != nullptr );
    REQUIRE( cache.statistics().evictions == 1 );

    /* A chunk larger than the whole budget is rejected, not cached. */
    cache.insert( key( 9 ), makeChunk( 10 * ENTRY ) );
    REQUIRE( cache.get( key( 9 ) ) == nullptr );
    REQUIRE( cache.statistics().oversizedRejections == 1 );
}

void
testLruCacheSingleFlight()
{
    LruChunkCache cache( 64 * MiB );
    const ChunkCacheKey key{ 42, 7 };
    std::atomic<int> decodes{ 0 };

    std::vector<std::thread> threads;
    std::vector<ChunkCache::ChunkDataPtr> results( 16 );
    for ( std::size_t i = 0; i < results.size(); ++i ) {
        threads.emplace_back( [&cache, &decodes, &results, key, i] () {
            results[i] = cache.getOrDecode( key, [&decodes] () {
                ++decodes;
                std::this_thread::sleep_for( std::chrono::milliseconds( 20 ) );
                return makeChunk( 512 );
            } );
        } );
    }
    for ( auto& thread : threads ) {
        thread.join();
    }

    REQUIRE( decodes.load() == 1 );
    for ( const auto& result : results ) {
        REQUIRE( result != nullptr );
        REQUIRE( result == results.front() );  /* everyone got THE decode */
    }
    REQUIRE( cache.statistics().insertions == 1 );

    /* A throwing decode reaches every waiter and leaves the cache usable. */
    const ChunkCacheKey failing{ 42, 8 };
    std::atomic<int> failures{ 0 };
    std::vector<std::thread> fallible;
    for ( int i = 0; i < 4; ++i ) {
        fallible.emplace_back( [&cache, &failures, failing] () {
            try {
                (void)cache.getOrDecode( failing, [] () -> ChunkCache::ChunkDataPtr {
                    std::this_thread::sleep_for( std::chrono::milliseconds( 10 ) );
                    throw RapidgzipError( "synthetic decode failure" );
                } );
            } catch ( const std::exception& ) {
                ++failures;
            }
        } );
    }
    for ( auto& thread : fallible ) {
        thread.join();
    }
    REQUIRE( failures.load() >= 1 );  /* the decoder always; waiters that raced it too */
    const auto recovered = cache.getOrDecode( failing, [] () { return makeChunk( 64 ); } );
    REQUIRE( recovered != nullptr );
    REQUIRE( cache.get( failing ) != nullptr );
}

void
testSpanLifetimeAcrossEviction()
{
    constexpr std::size_t SIZE = 4096;
    constexpr std::size_t ENTRY = SIZE + LruChunkCache::PER_ENTRY_OVERHEAD;
    LruChunkCache cache( 2 * ENTRY );
    const auto key = [] ( std::size_t i ) { return ChunkCacheKey{ 3, i }; };

    auto victim = std::make_shared<DecodedChunk>();
    victim->data.resize( SIZE );
    for ( std::size_t i = 0; i < SIZE; ++i ) {
        victim->data[i] = static_cast<std::uint8_t>( i * 31 + 7 );
    }
    const std::vector<std::uint8_t> reference( victim->data );
    cache.insert( key( 1 ), victim );

    /* Borrow a span of the cached chunk — exactly what a queued response
     * body holds while sendmsg() drains it. */
    auto span = lendChunkSpan( cache.get( key( 1 ) ), 100, 1000 );
    REQUIRE( span.borrowed );
    REQUIRE( span.size == 1000 );
    victim.reset();  /* the cache and the span are now the only owners */

    /* Evict it: two more inserts blow the two-entry budget. */
    cache.insert( key( 2 ), makeChunk( SIZE ) );
    cache.insert( key( 3 ), makeChunk( SIZE ) );
    REQUIRE( cache.get( key( 1 ) ) == nullptr );  /* gone from the cache */
    REQUIRE( cache.statistics().evictions >= 1 );

    /* ...but the span still owns the bytes: eviction only dropped the
     * cache's reference, so an in-flight write finishes byte-exact. */
    REQUIRE( std::memcmp( span.data, reference.data() + 100, span.size ) == 0 );
    span.owner.reset();  /* the write finished; only now does the chunk die */
}

/* --- shared tier across readers ---------------------------------------- */

void
testSharedCacheAcrossReaders()
{
    const auto data = workloads::base64Data( 1 * MiB, 99 );
    const auto file = compressPigzLike( data, 6, 128 * KiB );

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 128 * KiB;
    configuration.sharedCache = std::make_shared<LruChunkCache>( 64 * MiB );
    configuration.cacheIdentity = 0xA5A5;

    std::vector<std::uint8_t> decoded( data.size() );
    auto first = formats::makeDecompressor(
        std::make_unique<MemoryFileReader>( file ), configuration );
    REQUIRE( first->readAt( 0, decoded.data(), decoded.size() ) == data.size() );
    REQUIRE( decoded == data );

    const auto afterFirst = configuration.sharedCache->statistics();
    REQUIRE( afterFirst.insertions > 0 );

    /* A second reader over the same archive + identity never decodes: every
     * chunk comes out of the shared tier. */
    std::fill( decoded.begin(), decoded.end(), 0 );
    auto second = formats::makeDecompressor(
        std::make_unique<MemoryFileReader>( file ), configuration );
    REQUIRE( second->readAt( 0, decoded.data(), decoded.size() ) == data.size() );
    REQUIRE( decoded == data );

    const auto afterSecond = configuration.sharedCache->statistics();
    REQUIRE( afterSecond.hits > afterFirst.hits );
    REQUIRE( afterSecond.insertions == afterFirst.insertions );

    /* A different identity must NOT share entries. */
    auto foreign = configuration;
    foreign.cacheIdentity = 0x5A5A;
    std::fill( decoded.begin(), decoded.end(), 0 );
    auto third = formats::makeDecompressor(
        std::make_unique<MemoryFileReader>( file ), foreign );
    REQUIRE( third->readAt( 0, decoded.data(), decoded.size() ) == data.size() );
    REQUIRE( decoded == data );
    REQUIRE( configuration.sharedCache->statistics().insertions > afterSecond.insertions );
}

/* --- sidecar adoption -------------------------------------------------- */

[[nodiscard]] std::string
makeTempDirectory()
{
    char templatePath[] = "/tmp/rapidgzip-serve-test-XXXXXX";
    const char* path = ::mkdtemp( templatePath );
    REQUIRE( path != nullptr );
    return path;
}

void
writeFile( const std::string& path, const std::vector<std::uint8_t>& bytes )
{
    std::FILE* file = std::fopen( path.c_str(), "wb" );
    REQUIRE( file != nullptr );
    REQUIRE( std::fwrite( bytes.data(), 1, bytes.size(), file ) == bytes.size() );
    REQUIRE( std::fclose( file ) == 0 );
}

void
testSidecarAdoption()
{
    const auto directory = makeTempDirectory();
    const auto data = workloads::silesiaLikeData( 768 * KiB, 7 );

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 128 * KiB;

    /* gzip: the sidecar carries the full bit-granular index with windows,
     * so adoption replaces the two-stage discovery sweep. */
    const auto gzipPath = directory + "/data.gz";
    writeFile( gzipPath, compressGzipLike( data ) );
    {
        auto cold = formats::openArchive( gzipPath, configuration );
        REQUIRE( cold->size() == data.size() );  /* forces discovery */
        formats::writeSidecarIndex( *cold, gzipPath );
    }
    {
        auto fresh = formats::openArchive( gzipPath, configuration, /* adoptSidecar */ false );
        REQUIRE( formats::trySidecarAdoption( *fresh, gzipPath ) );
        REQUIRE( fresh->size() == data.size() );
        std::vector<std::uint8_t> slice( 4096 );
        REQUIRE( fresh->readAt( 300 * KiB, slice.data(), slice.size() ) == slice.size() );
        REQUIRE( std::memcmp( slice.data(), data.data() + 300 * KiB, slice.size() ) == 0 );
    }

    /* lz4: the sidecar's seek points replace the measuring decode sweep. */
    const auto lz4Path = directory + "/data.lz4";
    writeFile( lz4Path, formats::writeLz4( data, formats::Lz4Writer::BlockMaxSize::KIB64 ) );
    {
        auto cold = formats::openArchive( lz4Path, configuration );
        REQUIRE( cold->size() == data.size() );
        formats::writeSidecarIndex( *cold, lz4Path );
    }
    {
        auto fresh = formats::openArchive( lz4Path, configuration, /* adoptSidecar */ false );
        REQUIRE( formats::trySidecarAdoption( *fresh, lz4Path ) );
        REQUIRE( fresh->size() == data.size() );
        std::vector<std::uint8_t> slice( 4096 );
        REQUIRE( fresh->readAt( 500 * KiB, slice.data(), slice.size() ) == slice.size() );
        REQUIRE( std::memcmp( slice.data(), data.data() + 500 * KiB, slice.size() ) == 0 );
    }

    /* Stale sidecar (older than the archive) is ignored. */
    {
        struct stat archiveStat{};
        REQUIRE( ::stat( gzipPath.c_str(), &archiveStat ) == 0 );
        struct utimbuf oldTimes{};
        oldTimes.actime = archiveStat.st_mtime - 100;
        oldTimes.modtime = archiveStat.st_mtime - 100;
        REQUIRE( ::utime( formats::sidecarPathFor( gzipPath ).c_str(), &oldTimes ) == 0 );
        auto fresh = formats::openArchive( gzipPath, configuration, /* adoptSidecar */ false );
        REQUIRE( !formats::trySidecarAdoption( *fresh, gzipPath ) );
    }

    /* A sidecar recorded for a DIFFERENT archive (size mismatch) is
     * rejected even when it parses cleanly. */
    {
        const auto otherPath = directory + "/other.lz4";
        const auto otherData = workloads::base64Data( 100 * KiB, 8 );
        writeFile( otherPath, formats::writeLz4( otherData ) );
        const auto lz4Sidecar = formats::sidecarPathFor( lz4Path );
        std::FILE* in = std::fopen( lz4Sidecar.c_str(), "rb" );
        REQUIRE( in != nullptr );
        std::vector<std::uint8_t> sidecarBytes( 1 * MiB );
        sidecarBytes.resize( std::fread( sidecarBytes.data(), 1, sidecarBytes.size(), in ) );
        std::fclose( in );
        writeFile( formats::sidecarPathFor( otherPath ), sidecarBytes );
        auto fresh = formats::openArchive( otherPath, configuration, /* adoptSidecar */ false );
        REQUIRE( !formats::trySidecarAdoption( *fresh, otherPath ) );

        /* Corrupt sidecar (bit flip) fails the checksum and is ignored. */
        auto corrupt = sidecarBytes;
        corrupt[corrupt.size() / 2] ^= 0x40U;
        writeFile( lz4Sidecar, corrupt );
        auto lz4Fresh = formats::openArchive( lz4Path, configuration, /* adoptSidecar */ false );
        REQUIRE( !formats::trySidecarAdoption( *lz4Fresh, lz4Path ) );
    }
}

/* --- end-to-end over loopback ------------------------------------------ */

struct ClientResponse
{
    int status{ 0 };
    std::map<std::string, std::string> headers;
    std::string body;
};

/** Minimal blocking HTTP/1.1 client good for keep-alive and pipelining. */
class HttpClient
{
public:
    explicit HttpClient( std::uint16_t port )
    {
        m_fd = ::socket( AF_INET, SOCK_STREAM, 0 );
        REQUIRE( m_fd >= 0 );
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons( port );
        REQUIRE( ::inet_pton( AF_INET, "127.0.0.1", &address.sin_addr ) == 1 );
        REQUIRE( ::connect( m_fd, reinterpret_cast<sockaddr*>( &address ),
                            sizeof( address ) ) == 0 );
    }

    ~HttpClient()
    {
        if ( m_fd >= 0 ) {
            ::close( m_fd );
        }
    }

    HttpClient( const HttpClient& ) = delete;
    HttpClient& operator=( const HttpClient& ) = delete;

    void
    send( const std::string& raw ) const
    {
        std::size_t sent = 0;
        while ( sent < raw.size() ) {
            const auto got = ::send( m_fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL );
            REQUIRE( got > 0 );
            sent += static_cast<std::size_t>( got );
        }
    }

    /** False when the peer closed before a complete response arrived. */
    [[nodiscard]] bool
    readResponse( ClientResponse& response, bool expectBody = true )
    {
        std::size_t headerEnd = std::string::npos;
        while ( ( headerEnd = m_buffer.find( "\r\n\r\n" ) ) == std::string::npos ) {
            if ( !fill() ) {
                return false;
            }
        }
        response = ClientResponse{};
        const auto head = m_buffer.substr( 0, headerEnd );
        const auto statusBegin = head.find( ' ' );
        REQUIRE( statusBegin != std::string::npos );
        response.status = std::atoi( head.c_str() + statusBegin + 1 );
        std::size_t lineBegin = head.find( "\r\n" );
        while ( ( lineBegin != std::string::npos ) && ( lineBegin + 2 < head.size() ) ) {
            lineBegin += 2;
            auto lineEnd = head.find( "\r\n", lineBegin );
            if ( lineEnd == std::string::npos ) {
                lineEnd = head.size();
            }
            const auto line = head.substr( lineBegin, lineEnd - lineBegin );
            const auto colon = line.find( ':' );
            if ( colon != std::string::npos ) {
                auto name = line.substr( 0, colon );
                std::transform( name.begin(), name.end(), name.begin(),
                                [] ( unsigned char c ) { return std::tolower( c ); } );
                auto value = line.substr( colon + 1 );
                const auto valueBegin = value.find_first_not_of( ' ' );
                response.headers[name] = valueBegin == std::string::npos
                                         ? std::string{} : value.substr( valueBegin );
            }
            lineBegin = lineEnd;
        }

        std::size_t contentLength = 0;
        if ( const auto match = response.headers.find( "content-length" );
             match != response.headers.end() ) {
            contentLength = static_cast<std::size_t>( std::atoll( match->second.c_str() ) );
        }
        const auto bodyLength = expectBody ? contentLength : 0;
        while ( m_buffer.size() < headerEnd + 4 + bodyLength ) {
            if ( !fill() ) {
                return false;
            }
        }
        response.body = m_buffer.substr( headerEnd + 4, bodyLength );
        m_buffer.erase( 0, headerEnd + 4 + bodyLength );
        return true;
    }

private:
    [[nodiscard]] bool
    fill()
    {
        char chunk[16 * 1024];
        const auto got = ::recv( m_fd, chunk, sizeof( chunk ), 0 );
        if ( got <= 0 ) {
            return false;
        }
        m_buffer.append( chunk, static_cast<std::size_t>( got ) );
        return true;
    }

    int m_fd{ -1 };
    std::string m_buffer;
};

[[nodiscard]] ClientResponse
simpleRequest( std::uint16_t port,
               const std::string& method,
               const std::string& target,
               const std::string& extraHeaders = {} )
{
    HttpClient client( port );
    client.send( method + " " + target + " HTTP/1.1\r\nHost: t\r\n" + extraHeaders
                 + "Connection: close\r\n\r\n" );
    ClientResponse response;
    REQUIRE( client.readResponse( response, /* expectBody */ method != "HEAD" ) );
    return response;
}

void
testServeEndToEnd()
{
    std::signal( SIGPIPE, SIG_IGN );

    const auto directory = makeTempDirectory();
    const auto gzipData = workloads::base64Data( 1 * MiB, 11 );
    writeFile( directory + "/corpus.gz", compressPigzLike( gzipData, 6, 128 * KiB ) );
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
    const auto zstdData = workloads::silesiaLikeData( 1 * MiB, 12 );
    writeFile( directory + "/corpus.zst", formats::writeZstdSeekable( zstdData, 3, 128 * KiB ) );
#endif

    ServerConfiguration configuration;
    configuration.port = 0;  /* ephemeral */
    configuration.rootDirectory = directory;
    configuration.workerCount = 4;
    configuration.cacheBytes = 64 * MiB;
    configuration.readerConfiguration.parallelism = 2;
    configuration.readerConfiguration.chunkSizeBytes = 128 * KiB;

    Server server( std::move( configuration ) );
    server.start();
    const auto port = server.port();
    REQUIRE( port != 0 );
    std::thread loop( [&server] () { server.run(); } );

    /* Full body. */
    const auto full = simpleRequest( port, "GET", "/corpus.gz" );
    REQUIRE( full.status == 200 );
    REQUIRE( full.body.size() == gzipData.size() );
    REQUIRE( std::memcmp( full.body.data(), gzipData.data(), gzipData.size() ) == 0 );

    /* Exact ranges, RFC response metadata included. */
    const auto ranged = simpleRequest( port, "GET", "/corpus.gz", "Range: bytes=100000-100063\r\n" );
    REQUIRE( ranged.status == 206 );
    REQUIRE( ranged.body.size() == 64 );
    REQUIRE( std::memcmp( ranged.body.data(), gzipData.data() + 100000, 64 ) == 0 );
    REQUIRE( ranged.headers.at( "content-range" )
             == "bytes 100000-100063/" + std::to_string( gzipData.size() ) );

    const auto suffix = simpleRequest( port, "GET", "/corpus.gz", "Range: bytes=-50\r\n" );
    REQUIRE( suffix.status == 206 );
    REQUIRE( suffix.body.size() == 50 );
    REQUIRE( std::memcmp( suffix.body.data(),
                          gzipData.data() + gzipData.size() - 50, 50 ) == 0 );

    /* Multi-range falls back to the full representation per the RFC. */
    const auto multi = simpleRequest( port, "GET", "/corpus.gz", "Range: bytes=0-1,10-11\r\n" );
    REQUIRE( multi.status == 200 );
    REQUIRE( multi.body.size() == gzipData.size() );

    /* An overflowing first-byte position (2^64 + 1) is IGNORED, not wrapped
     * to "bytes=1-": the daemon must answer 200 with the FULL file. The
     * pre-fix parser wrapped it and served a bogus off-by-one 206. */
    const auto overflow = simpleRequest( port, "GET", "/corpus.gz",
                                         "Range: bytes=18446744073709551617-\r\n" );
    REQUIRE( overflow.status == 200 );
    REQUIRE( overflow.body.size() == gzipData.size() );
    REQUIRE( std::memcmp( overflow.body.data(), gzipData.data(), gzipData.size() ) == 0 );

    /* HEAD announces the decompressed size without a body. */
    const auto head = simpleRequest( port, "HEAD", "/corpus.gz" );
    REQUIRE( head.status == 200 );
    REQUIRE( head.headers.at( "content-length" ) == std::to_string( gzipData.size() ) );
    REQUIRE( head.body.empty() );

    /* Error paths. */
    REQUIRE( simpleRequest( port, "GET", "/missing.gz" ).status == 404 );
    REQUIRE( simpleRequest( port, "GET", "/../testServe" ).status == 404 );
    REQUIRE( simpleRequest( port, "POST", "/corpus.gz" ).status == 405 );
    const auto unsatisfiable =
        simpleRequest( port, "GET", "/corpus.gz", "Range: bytes=99999999-\r\n" );
    REQUIRE( unsatisfiable.status == 416 );
    REQUIRE( unsatisfiable.headers.at( "content-range" )
             == "bytes */" + std::to_string( gzipData.size() ) );
    {
        HttpClient bad( port );
        bad.send( "GARBAGE\r\n\r\n" );
        ClientResponse response;
        REQUIRE( bad.readResponse( response ) );
        REQUIRE( response.status == 400 );
        REQUIRE( response.headers.at( "connection" ) == "close" );
    }

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
    const auto zstdRanged =
        simpleRequest( port, "GET", "/corpus.zst", "Range: bytes=400000-400999\r\n" );
    REQUIRE( zstdRanged.status == 206 );
    REQUIRE( zstdRanged.body.size() == 1000 );
    REQUIRE( std::memcmp( zstdRanged.body.data(), zstdData.data() + 400000, 1000 ) == 0 );
#endif

    /* Keep-alive: several requests over ONE connection. */
    {
        HttpClient client( port );
        for ( int i = 0; i < 3; ++i ) {
            const std::size_t offset = 1000 + 777 * static_cast<std::size_t>( i );
            client.send( "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes="
                         + std::to_string( offset ) + "-" + std::to_string( offset + 99 )
                         + "\r\n\r\n" );
            ClientResponse response;
            REQUIRE( client.readResponse( response ) );
            REQUIRE( response.status == 206 );
            REQUIRE( response.headers.at( "connection" ) == "keep-alive" );
            REQUIRE( std::memcmp( response.body.data(), gzipData.data() + offset, 100 ) == 0 );
        }
    }

    /* Pipelining: two requests in one write, two in-order responses. */
    {
        HttpClient client( port );
        client.send( "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes=0-9\r\n\r\n"
                     "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes=10-19\r\n\r\n" );
        ClientResponse first;
        ClientResponse second;
        REQUIRE( client.readResponse( first ) );
        REQUIRE( client.readResponse( second ) );
        REQUIRE( ( first.status == 206 ) && ( second.status == 206 ) );
        REQUIRE( std::memcmp( first.body.data(), gzipData.data(), 10 ) == 0 );
        REQUIRE( std::memcmp( second.body.data(), gzipData.data() + 10, 10 ) == 0 );
    }

    /* Concurrent ranged reads from many clients, byte-compared. */
    {
        std::atomic<int> mismatches{ 0 };
        std::vector<std::thread> clients;
        for ( std::size_t t = 0; t < 8; ++t ) {
            clients.emplace_back( [&, t] () {
                Xorshift64 rng( 100 + t );
                HttpClient client( port );
                for ( int i = 0; i < 16; ++i ) {
                    const auto offset = rng.below( gzipData.size() - 256 );
                    const auto length = 1 + rng.below( 256 );
                    client.send( "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes="
                                 + std::to_string( offset ) + "-"
                                 + std::to_string( offset + length - 1 ) + "\r\n\r\n" );
                    ClientResponse response;
                    if ( !client.readResponse( response )
                         || ( response.status != 206 )
                         || ( response.body.size() != length )
                         || ( std::memcmp( response.body.data(), gzipData.data() + offset,
                                           length ) != 0 ) ) {
                        ++mismatches;
                        return;
                    }
                }
            } );
        }
        for ( auto& client : clients ) {
            client.join();
        }
        REQUIRE( mismatches.load() == 0 );
    }

    /* Peers that close mid-write (request a large body, then vanish without
     * reading) must not wedge or kill the server: the flush sees the reset,
     * the connection is reaped, and unrelated requests keep working. */
    {
        for ( int i = 0; i < 4; ++i ) {
            HttpClient goner( port );
            goner.send( "GET /corpus.gz HTTP/1.1\r\nHost: t\r\n\r\n" );
            /* Destructor closes with ~1 MiB of unread response in flight:
             * the kernel turns that into an RST for the server's send. */
        }
        std::this_thread::sleep_for( std::chrono::milliseconds( 50 ) );
        const auto survivor = simpleRequest( port, "GET", "/corpus.gz",
                                             "Range: bytes=5000-5099\r\n" );
        REQUIRE( survivor.status == 206 );
        REQUIRE( std::memcmp( survivor.body.data(), gzipData.data() + 5000, 100 ) == 0 );
    }

    /* The shared tier absorbed the repeat traffic. */
    const auto cacheStats = server.sharedCache().statistics();
    REQUIRE( cacheStats.insertions > 0 );
    REQUIRE( cacheStats.hits > 0 );

    const auto metrics = simpleRequest( port, "GET", "/metrics" );
    REQUIRE( metrics.status == 200 );
    REQUIRE( metrics.body.find( "rapidgzip_serve_requests_total" ) != std::string::npos );
    REQUIRE( metrics.body.find( "rapidgzip_serve_cache_hits" ) != std::string::npos );
    REQUIRE( metrics.body.find( "rapidgzip_serve_responses_2xx" ) != std::string::npos );

    server.stop();
    loop.join();
}

/* --- multi-shard: SO_REUSEPORT event loops, eviction churn, drain ------- */

void
testServeMultiShard()
{
    std::signal( SIGPIPE, SIG_IGN );

    const auto directory = makeTempDirectory();
    const auto data = workloads::base64Data( 1 * MiB, 31 );
    writeFile( directory + "/corpus.gz", compressPigzLike( data, 6, 128 * KiB ) );

    ServerConfiguration configuration;
    configuration.port = 0;
    configuration.rootDirectory = directory;
    configuration.workerCount = 4;
    configuration.shardCount = 4;
    /* A budget of ~3 chunks over an 8-chunk archive: eviction churns
     * CONSTANTLY while responses are in flight. Byte-exact bodies under
     * this regime prove the refcounted spans pin their chunks across
     * eviction — the zero-copy lifetime argument, exercised end to end. */
    configuration.cacheBytes = 3 * ( 128 * KiB + LruChunkCache::PER_ENTRY_OVERHEAD );
    configuration.readerConfiguration.parallelism = 2;
    configuration.readerConfiguration.chunkSizeBytes = 128 * KiB;

    Server server( std::move( configuration ) );
    server.start();
    const auto port = server.port();
    REQUIRE( port != 0 );
    REQUIRE( server.shardCount() == 4 );
    std::thread loop( [&server] () { server.run(); } );

    const auto zeroCopyBefore = server.metrics().zeroCopyBytes.total();

    /* Concurrent ranged GETs from many keep-alive clients, byte-compared.
     * With SO_REUSEPORT the kernel spreads these across all four shards. */
    std::atomic<int> mismatches{ 0 };
    std::vector<std::thread> clients;
    for ( std::size_t t = 0; t < 8; ++t ) {
        clients.emplace_back( [&, t] () {
            Xorshift64 rng( 500 + t );
            HttpClient client( port );
            for ( int i = 0; i < 24; ++i ) {
                const auto offset = rng.below( data.size() - 4096 );
                const auto length = 1 + rng.below( 4096 );
                client.send( "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes="
                             + std::to_string( offset ) + "-"
                             + std::to_string( offset + length - 1 ) + "\r\n\r\n" );
                ClientResponse response;
                if ( !client.readResponse( response )
                     || ( response.status != 206 )
                     || ( response.body.size() != length )
                     || ( std::memcmp( response.body.data(), data.data() + offset,
                                       length ) != 0 ) ) {
                    ++mismatches;
                    return;
                }
            }
        } );
    }
    for ( auto& client : clients ) {
        client.join();
    }
    REQUIRE( mismatches.load() == 0 );

    /* The tiny budget really did churn while writes were in flight. */
    REQUIRE( server.sharedCache().statistics().evictions > 0 );

    /* Keep-alive + pipelining against whichever shard accepted. */
    {
        HttpClient client( port );
        client.send( "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes=0-9\r\n\r\n"
                     "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes=10-19\r\n\r\n" );
        ClientResponse first;
        ClientResponse second;
        REQUIRE( client.readResponse( first ) );
        REQUIRE( client.readResponse( second ) );
        REQUIRE( ( first.status == 206 ) && ( second.status == 206 ) );
        REQUIRE( first.headers.at( "connection" ) == "keep-alive" );
        REQUIRE( std::memcmp( first.body.data(), data.data(), 10 ) == 0 );
        REQUIRE( std::memcmp( second.body.data(), data.data() + 10, 10 ) == 0 );

        /* The same connection still serves a third, separate request. */
        client.send( "GET /corpus.gz HTTP/1.1\r\nHost: t\r\nRange: bytes=20-29\r\n\r\n" );
        ClientResponse third;
        REQUIRE( client.readResponse( third ) );
        REQUIRE( third.status == 206 );
        REQUIRE( std::memcmp( third.body.data(), data.data() + 20, 10 ) == 0 );
    }

    /* Bodies were lent out of cached chunks, not copied. */
    REQUIRE( server.metrics().zeroCopyBytes.total() > zeroCopyBefore );

    server.stop();
    loop.join();
}

void
testServeMultiShardDrain()
{
    std::signal( SIGPIPE, SIG_IGN );
    failsafe::disarmAll();

    const auto directory = makeTempDirectory();
    const auto data = workloads::base64Data( 256 * KiB, 41 );
    writeFile( directory + "/small.gz", compressPigzLike( data, 6, 64 * KiB ) );

    ServerConfiguration configuration;
    configuration.port = 0;
    configuration.rootDirectory = directory;
    configuration.workerCount = 2;
    configuration.shardCount = 3;
    configuration.cacheBytes = 32 * MiB;
    configuration.drainTimeoutMs = 5'000;
    configuration.readerConfiguration.parallelism = 2;
    configuration.readerConfiguration.chunkSizeBytes = 64 * KiB;

    Server server( std::move( configuration ) );
    server.start();
    const auto port = server.port();
    REQUIRE( port != 0 );
    REQUIRE( server.shardCount() == 3 );
    std::thread loop( [&server] () { server.run(); } );

    /* Park every request in the worker pool for 200 ms so drain begins
     * while they are in flight. With connections spread over three shards,
     * this proves the drain transition reaches EVERY shard: each parked
     * request still completes byte-exact, every readiness probe answers
     * 503 process-wide, and run() returns once the LAST shard's
     * connection table empties. */
    failsafe::configure( failsafe::FaultPoint::POOL_TASK, 1.0, /* seed */ 62,
                         /* latency */ 200'000 );

    std::vector<std::unique_ptr<HttpClient> > probes;
    std::vector<std::unique_ptr<HttpClient> > inflight;
    for ( std::size_t i = 0; i < 6; ++i ) {
        probes.emplace_back( std::make_unique<HttpClient>( port ) );
        probes.back()->send( "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n" );
        inflight.emplace_back( std::make_unique<HttpClient>( port ) );
        inflight.back()->send( "GET /small.gz HTTP/1.1\r\nHost: t\r\nRange: bytes="
                               + std::to_string( 1000 * ( i + 1 ) ) + "-"
                               + std::to_string( 1000 * ( i + 1 ) + 63 ) + "\r\n\r\n" );
    }

    std::this_thread::sleep_for( std::chrono::milliseconds( 60 ) );
    server.beginDrain();
    REQUIRE( server.draining() );

    for ( auto& probe : probes ) {
        ClientResponse ready;
        REQUIRE( probe->readResponse( ready ) );
        REQUIRE( ready.status == 503 );
        REQUIRE( ready.body == "draining\n" );
    }
    for ( std::size_t i = 0; i < inflight.size(); ++i ) {
        ClientResponse ranged;
        REQUIRE( inflight[i]->readResponse( ranged ) );
        REQUIRE( ranged.status == 206 );
        REQUIRE( ranged.body.size() == 64 );
        REQUIRE( std::memcmp( ranged.body.data(), data.data() + 1000 * ( i + 1 ), 64 ) == 0 );
    }

    /* Every shard wound its connections down: run() returns on its own. */
    loop.join();
    failsafe::disarmAll();
}

/* --- hardening: health endpoints, deadlines, admission, negative cache -- */

void
testServeHardening()
{
    std::signal( SIGPIPE, SIG_IGN );

    const auto directory = makeTempDirectory();
    const auto data = workloads::base64Data( 256 * KiB, 21 );
    writeFile( directory + "/small.gz", compressPigzLike( data, 6, 64 * KiB ) );
    /* No known magic: openArchive fails, feeding the negative open cache. */
    writeFile( directory + "/garbage.bin",
               std::vector<std::uint8_t>( 1024, std::uint8_t( 0x55 ) ) );

    ServerConfiguration configuration;
    configuration.port = 0;
    configuration.rootDirectory = directory;
    configuration.workerCount = 2;
    configuration.cacheBytes = 16 * MiB;
    configuration.readerConfiguration.parallelism = 2;
    configuration.readerConfiguration.chunkSizeBytes = 64 * KiB;
    configuration.maxConnections = 3;
    configuration.headerReadTimeoutMs = 200;
    configuration.idleTimeoutMs = 400;
    configuration.writeTimeoutMs = 2000;
    configuration.drainTimeoutMs = 2000;
    configuration.failedOpenBackoffMs = 60'000;  /* second request surely inside the window */

    Server server( std::move( configuration ) );
    server.start();
    const auto port = server.port();
    std::thread loop( [&server] () { server.run(); } );

    /* Health endpoints. */
    REQUIRE( simpleRequest( port, "GET", "/healthz" ).status == 200 );
    REQUIRE( simpleRequest( port, "HEAD", "/healthz" ).status == 200 );
    const auto ready = simpleRequest( port, "GET", "/readyz" );
    REQUIRE( ready.status == 200 );
    REQUIRE( ready.body == "ready\n" );

    /* Slow loris: half a request line, then silence — the header-read
     * deadline answers 408 and closes instead of pinning the slot open. */
    {
        HttpClient slow( port );
        slow.send( "GET /small.gz HTTP/1.1\r\nHost:" );
        ClientResponse response;
        REQUIRE( slow.readResponse( response ) );
        REQUIRE( response.status == 408 );
        REQUIRE( response.headers.at( "connection" ) == "close" );
    }

    /* Admission: with every slot held, the next connection is told 503 with
     * Retry-After instead of hanging. */
    {
        HttpClient first( port );
        HttpClient second( port );
        HttpClient third( port );
        /* Prove the held connections are really established server-side. */
        first.send( "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n" );
        ClientResponse ok;
        REQUIRE( first.readResponse( ok ) );
        REQUIRE( ok.status == 200 );

        HttpClient rejected( port );
        rejected.send( "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n" );
        ClientResponse refusal;
        REQUIRE( rejected.readResponse( refusal ) );
        REQUIRE( refusal.status == 503 );
        REQUIRE( refusal.headers.at( "retry-after" ) == "1" );
    }

    /* The held clients just closed; the loop reaps them on its next wake.
     * Retry until a slot frees, then check the hardening counters. */
    {
        ClientResponse metrics;
        for ( int attempt = 0; attempt < 100; ++attempt ) {
            HttpClient client( port );
            client.send( "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n" );
            if ( client.readResponse( metrics ) && ( metrics.status == 200 ) ) {
                break;
            }
            metrics = ClientResponse{};
            std::this_thread::sleep_for( std::chrono::milliseconds( 20 ) );
        }
        REQUIRE( metrics.status == 200 );
        REQUIRE( metrics.body.find( "rapidgzip_serve_timeouts_total" ) != std::string::npos );
        REQUIRE( metrics.body.find( "rapidgzip_serve_rejected_total{reason=\"max_connections\"}" )
                 != std::string::npos );
    }

    /* Failed opens are negative-cached: the retry inside the backoff window
     * is refused from the cache without re-probing the file. */
    REQUIRE( simpleRequest( port, "GET", "/garbage.bin" ).status == 500 );
    const auto cached = simpleRequest( port, "GET", "/garbage.bin" );
    REQUIRE( cached.status == 500 );
    REQUIRE( cached.body.find( "cached failure" ) != std::string::npos );

    /* Idle keep-alive connections are reaped by the idle deadline. */
    {
        HttpClient idle( port );
        idle.send( "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n" );
        ClientResponse response;
        REQUIRE( idle.readResponse( response ) );
        REQUIRE( response.status == 200 );
        ClientResponse none;
        REQUIRE( !idle.readResponse( none ) );  /* server closes, no response */
    }

    /* Graceful drain: beginDrain() stops accepting and run() returns once
     * the remaining connections finish (all are closed by now). */
    server.beginDrain();
    REQUIRE( server.draining() );
    loop.join();
}

}  // namespace

int
main()
{
    testRequestParserBasics();
    testRequestParserIncrementalAndPipelined();
    testRequestParserFailures();
    testRangeResolution();
    testLruCacheBudgetInvariant();
    testLruCacheEvictionOrder();
    testLruCacheSingleFlight();
    testSpanLifetimeAcrossEviction();
    testSharedCacheAcrossReaders();
    testSidecarAdoption();
    testServeEndToEnd();
    testServeMultiShard();
    testServeMultiShardDrain();
    testServeHardening();
    return rapidgzip::test::finish( "testServe" );
}
