/**
 * baselines layer: the pugz-like decompressor handles ASCII workloads at any
 * thread count and rejects non-ASCII data with UnsupportedDataError, exactly
 * the behavior Fig. 10 relies on.
 */

#include <memory>

#include "baselines/PugzLikeDecompressor.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

int
main()
{
    const auto text = workloads::base64Data( 6 * MiB, 0xB64 );
    const auto compressedText = compressPigzLike( { text.data(), text.size() }, 6, 256 * 1024 );

    /* Correct size at various thread counts and chunk sizes. */
    for ( const std::size_t threads : { std::size_t( 1 ), std::size_t( 3 ), std::size_t( 8 ) } ) {
        PugzLikeDecompressor::Options options;
        options.threadCount = threads;
        options.chunkSizeBytes = 512 * KiB;
        PugzLikeDecompressor decompressor( std::make_unique<MemoryFileReader>( compressedText ),
                                           options );
        REQUIRE( decompressor.decompressAllSize() == text.size() );
    }

    /* fastq is ASCII too. */
    {
        const auto fastq = workloads::fastqData( 3 * MiB, 0xFA );
        const auto compressed = compressPigzLike( { fastq.data(), fastq.size() }, 6, 256 * 1024 );
        PugzLikeDecompressor decompressor( std::make_unique<MemoryFileReader>( compressed ),
                                           { /* threadCount */ 4 } );
        REQUIRE( decompressor.decompressAllSize() == fastq.size() );
    }

    /* Binary data aborts with UnsupportedDataError (a RapidgzipError). */
    {
        const auto binary = workloads::silesiaLikeData( 2 * MiB, 0x51E );
        const auto compressed = compressPigzLike( { binary.data(), binary.size() }, 6,
                                                  256 * 1024 );
        PugzLikeDecompressor decompressor( std::make_unique<MemoryFileReader>( compressed ),
                                           { /* threadCount */ 4 } );
        REQUIRE_THROWS_AS( (void)decompressor.decompressAllSize(), UnsupportedDataError );

        PugzLikeDecompressor asBase( std::make_unique<MemoryFileReader>( compressed ),
                                     { /* threadCount */ 2 } );
        REQUIRE_THROWS_AS( (void)asBase.decompressAllSize(), RapidgzipError );
    }

    /* Truncated input raises instead of returning a short count. */
    {
        auto truncated = compressedText;
        truncated.resize( truncated.size() / 2 );
        PugzLikeDecompressor decompressor( std::make_unique<MemoryFileReader>( truncated ),
                                           { /* threadCount */ 2 } );
        REQUIRE_THROWS_AS( (void)decompressor.decompressAllSize(), InvalidGzipStreamError );
    }

    /* enforceAsciiRange=false decodes binary data fine (plumbing check). */
    {
        const auto binary = workloads::silesiaLikeData( 2 * MiB, 0x51E );
        const auto compressed = compressPigzLike( { binary.data(), binary.size() }, 6,
                                                  256 * 1024 );
        PugzLikeDecompressor::Options options;
        options.threadCount = 4;
        options.enforceAsciiRange = false;
        PugzLikeDecompressor decompressor( std::make_unique<MemoryFileReader>( compressed ),
                                           options );
        REQUIRE( decompressor.decompressAllSize() == binary.size() );
    }

    return rapidgzip::test::finish( "testPugzLike" );
}
