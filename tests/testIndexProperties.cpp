/**
 * Property tests for index/IndexSerializer: round-trip arbitrary
 * checkpoint/window sets through both on-disk formats, and pin down the
 * rejection paths — EVERY truncation and EVERY single-byte flip of a
 * native index file must throw (the RGZIDX02 trailing CRC32 makes the
 * flip property total; before it, flips inside offset fields loaded
 * silently). Legacy RGZIDX01 files must keep importing, as gzip.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "index/GzipIndex.hpp"
#include "index/IndexSerializer.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

/** Arbitrary-but-valid index: strictly increasing checkpoints, windows of
 * random sizes (0 = none) at checkpoint offsets, random format tag. */
[[nodiscard]] GzipIndex
randomIndex( Xorshift64& random )
{
    GzipIndex index;
    index.formatTag = static_cast<std::uint8_t>( 1 + random.below( 4 ) );
    const auto checkpointCount = random.below( 12 );
    std::size_t compressedBits = 8;
    std::size_t uncompressedOffset = 0;
    for ( std::size_t i = 0; i < checkpointCount; ++i ) {
        index.checkpoints.push_back( { compressedBits, uncompressedOffset } );
        if ( random.below( 3 ) != 0 ) {
            const auto windowSize = 1 + random.below( deflate::WINDOW_SIZE );
            const auto window = workloads::randomData( windowSize, random() );
            index.windows.insert( compressedBits, { window.data(), window.size() } );
        }
        compressedBits += 1 + random.below( 100000 );
        uncompressedOffset += random.below( 200000 );
    }
    index.compressedSizeBytes = ceilDiv<std::size_t>( compressedBits, 8 ) + random.below( 1000 );
    index.uncompressedSizeBytes = uncompressedOffset + random.below( 100000 );
    return index;
}

void
testNativeRoundTrip()
{
    Xorshift64 random( 0x1DBEEFULL );
    for ( int iteration = 0; iteration < 50; ++iteration ) {
        const auto index = randomIndex( random );
        const auto serialized = index::serializeIndex( index );
        const auto loaded = index::deserializeIndex( { serialized.data(), serialized.size() } );
        REQUIRE( loaded == index );
        REQUIRE( loaded.formatTag == index.formatTag );
    }
}

void
testGztoolRoundTrip()
{
    Xorshift64 random( 0x677AA11ULL );
    for ( int iteration = 0; iteration < 25; ++iteration ) {
        auto index = randomIndex( random );
        /* gztool's format predates the tag — only gzip indexes export. */
        index.formatTag = index::FORMAT_TAG_GZIP;
        const auto exported = index::exportGztoolIndex( index );
        const auto imported = index::importGztoolIndex( { exported.data(), exported.size() } );
        REQUIRE( imported.checkpoints == index.checkpoints );
        REQUIRE( imported.windows == index.windows );
        REQUIRE( imported.uncompressedSizeBytes == index.uncompressedSizeBytes );
        REQUIRE( imported.compressedSizeBytes == 0 );  /* not recorded by the format */
        REQUIRE( imported.formatTag == index::FORMAT_TAG_GZIP );
    }
}

void
testTruncationRejection()
{
    Xorshift64 random( 0x7A7A7ULL );
    const auto index = randomIndex( random );
    const auto serialized = index::serializeIndex( index );
    REQUIRE( serialized.size() > 32 );

    /* EVERY strict prefix must throw — walk all of them for a small index,
     * since this is the property, not a sample. */
    for ( std::size_t cut = 0; cut < serialized.size(); ++cut ) {
        REQUIRE_THROWS_AS(
            (void)index::deserializeIndex( { serialized.data(), cut } ),
            RapidgzipError );
    }
}

void
testFlippedByteRejection()
{
    Xorshift64 random( 0xF11ED );
    const auto index = randomIndex( random );
    const auto serialized = index::serializeIndex( index );

    /* The trailing CRC32 catches EVERY single-byte flip, wherever it
     * lands: magic, format tag, offsets, window bytes, or the CRC itself. */
    for ( std::size_t position = 0; position < serialized.size(); ++position ) {
        auto corrupt = serialized;
        corrupt[position] ^= static_cast<std::uint8_t>( 1 + random.below( 255 ) );
        REQUIRE_THROWS_AS(
            (void)index::deserializeIndex( { corrupt.data(), corrupt.size() } ),
            RapidgzipError );
    }
}

void
testLegacyV1Import()
{
    Xorshift64 random( 0x01D );
    auto index = randomIndex( random );
    index.formatTag = index::FORMAT_TAG_GZIP;  /* v1 files can only mean gzip */

    /* A v1 file is the v2 payload without tag/reserved/CRC, under the old
     * magic: reconstruct one byte-exactly from the v2 serialization. */
    const auto v2 = index::serializeIndex( index );
    std::vector<std::uint8_t> v1( index::NATIVE_INDEX_MAGIC_V1.begin(),
                                  index::NATIVE_INDEX_MAGIC_V1.end() );
    v1.insert( v1.end(),
               v2.begin() + static_cast<std::ptrdiff_t>( index::NATIVE_INDEX_MAGIC.size() + 4 ),
               v2.end() - 4 );

    const auto loaded = index::deserializeIndex( { v1.data(), v1.size() } );
    REQUIRE( loaded == index );
    REQUIRE( loaded.formatTag == index::FORMAT_TAG_GZIP );
}

void
testFormatTagValidation()
{
    Xorshift64 random( 0x7A6 );
    auto index = randomIndex( random );
    index.formatTag = 99;  /* out of range */
    const auto serialized = index::serializeIndex( index );
    REQUIRE_THROWS_AS(
        (void)index::deserializeIndex( { serialized.data(), serialized.size() } ),
        RapidgzipError );
}

}  // namespace

int
main()
{
    testNativeRoundTrip();
    testGztoolRoundTrip();
    testTruncationRejection();
    testFlippedByteRejection();
    testLegacyV1Import();
    testFormatTagValidation();
    return rapidgzip::test::finish( "testIndexProperties" );
}
