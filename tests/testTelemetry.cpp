/**
 * Telemetry layer tests: sharded counter merge under contention, histogram
 * bucket math and quantiles, trace-ring wraparound, the JSON drain
 * round-tripped through the independent TraceCheck parser, Prometheus
 * exposition shape, and the disabled-mode zero-allocation guarantee (the
 * structural half of the "one relaxed load per disabled hook" invariant —
 * the perf half lives in bench/components_hotpath.cpp).
 */

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "failsafe/FaultInjection.hpp"
#include "formats/Formats.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "telemetry/Registry.hpp"
#include "telemetry/Trace.hpp"
#include "telemetry/TraceCheck.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

/* Count every global allocation in this binary so the disabled-mode test can
 * assert that hooks allocate NOTHING. Counting is the only change: the
 * replacements forward to malloc/free per the usual replacement recipe. */
namespace {
std::atomic<std::size_t> g_allocationCount{ 0 };
}  // namespace

void*
operator new( std::size_t size )
{
    g_allocationCount.fetch_add( 1, std::memory_order_relaxed );
    if ( void* pointer = std::malloc( size > 0 ? size : 1 ) ) {
        return pointer;
    }
    throw std::bad_alloc();
}

void*
operator new[]( std::size_t size )
{
    return ::operator new( size );
}

void operator delete( void* pointer ) noexcept { std::free( pointer ); }
void operator delete( void* pointer, std::size_t ) noexcept { std::free( pointer ); }
void operator delete[]( void* pointer ) noexcept { std::free( pointer ); }
void operator delete[]( void* pointer, std::size_t ) noexcept { std::free( pointer ); }

using namespace rapidgzip;

namespace {

void
testCounterConcurrentMerge()
{
    telemetry::setMetricsEnabled( true );
    auto& counter = telemetry::Registry::instance().counter(
        "test_concurrent_total", "Concurrency test counter." );

    constexpr std::size_t THREADS = 8;
    constexpr std::size_t INCREMENTS = 100'000;
    std::vector<std::thread> threads;
    threads.reserve( THREADS );
    for ( std::size_t t = 0; t < THREADS; ++t ) {
        threads.emplace_back( [&counter] () {
            for ( std::size_t i = 0; i < INCREMENTS; ++i ) {
                counter.addUnchecked( 1 );
            }
        } );
    }
    for ( auto& thread : threads ) {
        thread.join();
    }

    REQUIRE( counter.total() == THREADS * INCREMENTS );
    REQUIRE( telemetry::Registry::instance().counterTotal( "test_concurrent_total" )
             == THREADS * INCREMENTS );

    /* Labeled series of one family sum in counterTotal. */
    auto& labeled = telemetry::Registry::instance().counter(
        "test_labeled_total", "Labeled series.", "kind=\"a\"" );
    labeled.addUnchecked( 5 );
    auto& labeledB = telemetry::Registry::instance().counter(
        "test_labeled_total", "Labeled series.", "kind=\"b\"" );
    labeledB.addUnchecked( 7 );
    REQUIRE( telemetry::Registry::instance().counterTotal( "test_labeled_total" ) == 12 );

    telemetry::setMetricsEnabled( false );
}

void
testHistogramBuckets()
{
    using Histogram = telemetry::Histogram;

    /* bucketLowerBound must be the left inverse of bucketIndex on every
     * bucket boundary, and bucketIndex must be monotone with bounded
     * relative error (one sub-bucket width = 12.5%). */
    for ( std::size_t index = 0; index < Histogram::BUCKET_COUNT; ++index ) {
        const auto lower = Histogram::bucketLowerBound( index );
        REQUIRE( Histogram::bucketIndex( lower ) == index );
        if ( lower > 0 ) {
            REQUIRE( Histogram::bucketIndex( lower - 1 ) == index - 1 );
        }
    }
    for ( const std::uint64_t value : { std::uint64_t( 0 ), std::uint64_t( 7 ), std::uint64_t( 8 ),
                                        std::uint64_t( 1000 ), std::uint64_t( 123'456'789 ),
                                        ~std::uint64_t( 0 ) } ) {
        const auto index = Histogram::bucketIndex( value );
        REQUIRE( index < Histogram::BUCKET_COUNT );
        REQUIRE( Histogram::bucketLowerBound( index ) <= value );
        if ( index + 1 < Histogram::BUCKET_COUNT ) {
            REQUIRE( value < Histogram::bucketLowerBound( index + 1 ) );
        }
    }

    /* Quantiles: 1..1000 recorded once each — p50 must land within one
     * bucket width (12.5%) of 500, p99 within one width of 990. */
    telemetry::setMetricsEnabled( true );
    auto& histogram = telemetry::Registry::instance().histogram(
        "test_latency_seconds", "Quantile test histogram.", 1.0 );
    for ( std::uint64_t value = 1; value <= 1000; ++value ) {
        histogram.recordUnchecked( value );
    }
    const auto snapshot = histogram.snapshot();
    REQUIRE( snapshot.count == 1000 );
    REQUIRE( snapshot.sum == 1000 * 1001 / 2 );
    const auto p50 = snapshot.quantile( 0.5 );
    const auto p99 = snapshot.quantile( 0.99 );
    REQUIRE( ( p50 >= 500 * 7 / 8 ) && ( p50 <= 500 * 9 / 8 ) );
    REQUIRE( ( p99 >= 990 * 7 / 8 ) && ( p99 <= 990 * 9 / 8 ) );
    REQUIRE( snapshot.quantile( 0.0 ) <= 2 );
    telemetry::setMetricsEnabled( false );

    /* Empty histogram: quantile is 0, not a crash or garbage. */
    REQUIRE( Histogram::Snapshot{}.quantile( 0.5 ) == 0 );
}

void
testTraceRingWraparound()
{
    telemetry::TraceRing ring{ 42 };
    constexpr std::size_t OVERFLOW_COUNT = 100;
    const auto total = telemetry::TraceRing::CAPACITY + OVERFLOW_COUNT;
    for ( std::size_t i = 0; i < total; ++i ) {
        ring.push( { "span", "test", /* beginNs */ i, /* endNs */ i + 1 } );
    }

    REQUIRE( ring.written() == total );
    REQUIRE( ring.dropped() == OVERFLOW_COUNT );

    const auto spans = ring.snapshot();
    REQUIRE( spans.size() == telemetry::TraceRing::CAPACITY );
    /* Most-recent-window semantics: the oldest retained span is the one
     * right after the dropped prefix, and order is preserved. */
    REQUIRE( spans.front().beginNs == OVERFLOW_COUNT );
    REQUIRE( spans.back().beginNs == total - 1 );
    for ( std::size_t i = 1; i < spans.size(); ++i ) {
        REQUIRE( spans[i].beginNs == spans[i - 1].beginNs + 1 );
    }
}

void
testTraceJsonRoundTrip()
{
    telemetry::setTraceEnabled( true );

    /* Nested spans on this thread plus spans on a second thread: the drain
     * must produce valid trace-event JSON whose inner span nests inside the
     * outer one (children complete first, but intervals must contain). */
    {
        telemetry::Span outer{ "test", "outer.span" };
        {
            telemetry::Span inner{ "test", "inner.span" };
        }
    }
    std::thread( [] () {
        telemetry::Span span{ "test", "worker.span" };
    } ).join();

    telemetry::setTraceEnabled( false );

    std::ostringstream stream;
    telemetry::TraceCollector::instance().drainJson( stream );
    const auto json = stream.str();

    telemetry::JsonParser parser( json );
    const auto document = parser.parse();
    const auto eventCount = telemetry::validateTraceDocument( document );
    REQUIRE( eventCount >= 3 );
    REQUIRE( telemetry::countTraceEvents( document, "outer.span" ) == 1 );
    REQUIRE( telemetry::countTraceEvents( document, "inner.span" ) == 1 );
    REQUIRE( telemetry::countTraceEvents( document, "worker.span" ) == 1 );

    const auto* const events = document.find( "traceEvents" );
    const telemetry::JsonValue* outerEvent = nullptr;
    const telemetry::JsonValue* innerEvent = nullptr;
    const telemetry::JsonValue* workerEvent = nullptr;
    for ( const auto& event : events->array ) {
        const auto& name = event.find( "name" )->string;
        if ( name == "outer.span" ) { outerEvent = &event; }
        if ( name == "inner.span" ) { innerEvent = &event; }
        if ( name == "worker.span" ) { workerEvent = &event; }
    }
    REQUIRE( ( outerEvent != nullptr ) && ( innerEvent != nullptr ) && ( workerEvent != nullptr ) );

    const auto begin = [] ( const telemetry::JsonValue* event ) {
        return event->find( "ts" )->number;
    };
    const auto end = [] ( const telemetry::JsonValue* event ) {
        return event->find( "ts" )->number + event->find( "dur" )->number;
    };
    REQUIRE( begin( outerEvent ) <= begin( innerEvent ) );
    REQUIRE( end( innerEvent ) <= end( outerEvent ) );
    /* Same thread -> same tid; the worker ran on its own ring. */
    REQUIRE( outerEvent->find( "tid" )->number == innerEvent->find( "tid" )->number );
    REQUIRE( workerEvent->find( "tid" )->number != outerEvent->find( "tid" )->number );

    REQUIRE( document.find( "otherData" )->find( "droppedSpans" )->isNumber() );
}

void
testDisabledModeAllocatesNothing()
{
    REQUIRE( !telemetry::metricsEnabled() );
    REQUIRE( !telemetry::traceEnabled() );

    /* Warm the thread-shard index outside the measured window (first call
     * bumps a thread_local, which is not heap allocation, but keep the
     * window strictly about the hooks). */
    (void)telemetry::threadShardIndex();

    const auto allocationsBefore = g_allocationCount.load( std::memory_order_relaxed );
    for ( std::size_t i = 0; i < 10'000; ++i ) {
        RAPIDGZIP_TELEMETRY_COUNT( "test_disabled_total", "Never registered.", 1 );
        telemetry::Span span{ "test", "disabled.span" };
    }
    const auto allocationsAfter = g_allocationCount.load( std::memory_order_relaxed );
    REQUIRE( allocationsAfter == allocationsBefore );

    /* The disabled counter must never have reached the registry. */
    REQUIRE( telemetry::Registry::instance().counterTotal( "test_disabled_total" ) == 0 );
}

void
testPrometheusExposition()
{
    telemetry::setMetricsEnabled( true );
    auto& counter = telemetry::Registry::instance().counter(
        "test_expo_total", "Exposition test counter." );
    counter.addUnchecked( 3 );
    auto& gauge = telemetry::Registry::instance().gauge( "test_expo_gauge", "Exposition test gauge." );
    gauge.set( -4 );
    auto& histogram = telemetry::Registry::instance().histogram(
        "test_expo_seconds", "Exposition test histogram.", 1e-9 );
    histogram.recordUnchecked( 1'000'000 );  /* 1 ms */
    telemetry::setMetricsEnabled( false );

    const auto text = telemetry::Registry::instance().renderPrometheus();
    REQUIRE( text.find( "# HELP test_expo_total Exposition test counter.\n" ) != std::string::npos );
    REQUIRE( text.find( "# TYPE test_expo_total counter\n" ) != std::string::npos );
    REQUIRE( text.find( "test_expo_total 3\n" ) != std::string::npos );
    REQUIRE( text.find( "# TYPE test_expo_gauge gauge\n" ) != std::string::npos );
    REQUIRE( text.find( "test_expo_gauge -4\n" ) != std::string::npos );
    REQUIRE( text.find( "# TYPE test_expo_seconds summary\n" ) != std::string::npos );
    REQUIRE( text.find( "test_expo_seconds{quantile=\"0.50\"} 0.001" ) != std::string::npos );
    REQUIRE( text.find( "test_expo_seconds_count 1\n" ) != std::string::npos );
    /* Labeled series from the concurrency test render with their labels. */
    REQUIRE( text.find( "test_labeled_total{kind=\"a\"} 5\n" ) != std::string::npos );
    REQUIRE( text.find( "test_labeled_total{kind=\"b\"} 7\n" ) != std::string::npos );

    /* formatDouble is fixed-precision and locale-independent. */
    REQUIRE( telemetry::formatDouble( 0.5, 2 ) == "0.50" );
    REQUIRE( telemetry::formatDouble( 1.0 / 3.0 ) == "0.333333" );

    REQUIRE( telemetry::escapeLabelValue( "a\"b\\c\nd" ) == "a\\\"b\\\\c\\nd" );
}

/** Unlabeled counter value from a Prometheus rendering; -1 if absent. */
[[nodiscard]] long long
counterValue( const std::string& rendered, const std::string& name )
{
    const auto position = rendered.find( "\n" + name + " " );
    if ( position == std::string::npos ) {
        return -1;
    }
    return std::atoll( rendered.c_str() + position + 1 + name.size() + 1 );
}

/** The decode-pipeline resilience counters register lazily and move when
 * chunk decodes retry and fail — exercised with a real (injected-fault)
 * decode, not by poking the registry directly. */
void
testChunkDecodeFaultCounters()
{
    failsafe::disarmAll();

    const auto data = workloads::base64Data( 256 * KiB, 77 );
    const auto file = compressPigzLike( { data.data(), data.size() }, 6, 64 * KiB );

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 64 * KiB;

    const auto before = telemetry::Registry::instance().renderPrometheus();
    const auto retriesBefore =
        std::max( 0LL, counterValue( before, "rapidgzip_chunk_decode_retries_total" ) );
    const auto failuresBefore =
        std::max( 0LL, counterValue( before, "rapidgzip_chunk_decode_failures_total" ) );

    telemetry::setMetricsEnabled( true );
    failsafe::configure( failsafe::FaultPoint::CHUNK_DECODE, 1.0, /* seed */ 13 );
    bool threw = false;
    try {
        auto reader = formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( file ), configuration );
        std::vector<std::uint8_t> decoded( data.size() );
        (void)reader->readAt( 0, decoded.data(), decoded.size() );
    } catch ( const std::exception& ) {
        threw = true;
    }
    failsafe::disarmAll();
    telemetry::setMetricsEnabled( false );
    REQUIRE( threw );

    const auto after = telemetry::Registry::instance().renderPrometheus();
    const auto retriesAfter = counterValue( after, "rapidgzip_chunk_decode_retries_total" );
    const auto failuresAfter = counterValue( after, "rapidgzip_chunk_decode_failures_total" );
    /* Every failed decode burned its full retry budget first. */
    REQUIRE( retriesAfter >= retriesBefore + 2 );
    REQUIRE( failuresAfter >= failuresBefore + 1 );
}

void
testTraceCheckRejectsMalformed()
{
    const auto parse = [] ( const std::string& text ) {
        telemetry::JsonParser parser( text );
        return parser.parse();
    };
    REQUIRE_THROWS_AS( (void)parse( "{\"truncated\":" ), std::runtime_error );
    REQUIRE_THROWS_AS( (void)parse( "{} trailing" ), std::runtime_error );
    REQUIRE_THROWS_AS( (void)telemetry::validateTraceDocument( parse( "[]" ) ), std::runtime_error );
    REQUIRE_THROWS_AS( (void)telemetry::validateTraceDocument( parse( "{\"traceEvents\":[{}]}" ) ),
                       std::runtime_error );
    /* A complete event without "dur" must be rejected. */
    REQUIRE_THROWS_AS(
        (void)telemetry::validateTraceDocument( parse(
            "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"b\",\"ph\":\"X\",\"ts\":0,"
            "\"pid\":1,\"tid\":1}]}" ) ),
        std::runtime_error );
}

}  // namespace

int
main()
{
    /* The suite toggles the gates itself; a stray RAPIDGZIP_TRACE would
     * both pre-enable them and atexit-drain, confusing the assertions. */
    if ( std::getenv( "RAPIDGZIP_TRACE" ) != nullptr ) {
        std::fprintf( stderr, "testTelemetry must run without RAPIDGZIP_TRACE set\n" );
        return 1;
    }
    telemetry::setMetricsEnabled( false );
    telemetry::setTraceEnabled( false );

    testCounterConcurrentMerge();
    testHistogramBuckets();
    testTraceRingWraparound();
    testTraceJsonRoundTrip();
    testDisabledModeAllocatesNothing();
    testPrometheusExposition();
    testChunkDecodeFaultCounters();
    testTraceCheckRejectsMalformed();

    return rapidgzip::test::finish( "testTelemetry" );
}
