/**
 * index subsystem: WindowMap compression and sparse windows, native and
 * gztool on-disk formats (incl. a golden-file byte layout check), and the
 * end-to-end acceptance property — build an index on a NO-flush-point gzip
 * file, serialize, reload, and seek()/read() must return bytes identical to
 * the serial decoder while dispatching parallel chunk decodes from
 * checkpoints (never the serial single-chunk fallback).
 */

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "core/ParallelGzipReader.hpp"
#include "gzip/BgzfWriter.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "index/BgzfIndex.hpp"
#include "index/GzipIndex.hpp"
#include "index/IndexBuilder.hpp"
#include "index/IndexSerializer.hpp"
#include "index/WindowMap.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

ChunkFetcherConfiguration
config( std::size_t parallelism = 4, std::size_t chunkSize = 256 * KiB )
{
    ChunkFetcherConfiguration result;
    result.parallelism = parallelism;
    result.chunkSizeBytes = chunkSize;
    return result;
}

void
testWindowMap()
{
    index::WindowMap windows;
    REQUIRE( windows.get( 123 ).empty() );
    REQUIRE( !windows.contains( 123 ) );

    /* Compressible window: round-trips and actually shrinks. */
    std::vector<std::uint8_t> window( deflate::WINDOW_SIZE );
    for ( std::size_t i = 0; i < window.size(); ++i ) {
        window[i] = static_cast<std::uint8_t>( ( i / 64 ) & 0xFFU );
    }
    windows.insert( 1001, { window.data(), window.size() } );
    REQUIRE( windows.contains( 1001 ) );
    REQUIRE( windows.get( 1001 ) == window );
    REQUIRE( windows.compressedBytes() < window.size() / 4 );

    /* Short window (near stream start). */
    std::vector<std::uint8_t> shortWindow( 100, 0x42 );
    windows.insert( 2002, { shortWindow.data(), shortWindow.size() } );
    REQUIRE( windows.get( 2002 ) == shortWindow );
    REQUIRE( windows.size() == 2 );

    /* Empty insert erases. */
    windows.insert( 1001, {} );
    REQUIRE( !windows.contains( 1001 ) );

    /* Sparse insert: unreferenced bytes come back zeroed, referenced ones
     * intact. Marker offset 0 = oldest window byte. */
    std::vector<bool> referenced( deflate::WINDOW_SIZE, false );
    referenced[0] = true;
    referenced[deflate::WINDOW_SIZE - 1] = true;
    referenced[777] = true;
    std::vector<std::uint8_t> full( deflate::WINDOW_SIZE, 0xAB );
    windows.insertSparse( 3003, { full.data(), full.size() }, referenced );
    const auto sparse = windows.get( 3003 );
    REQUIRE( sparse.size() == full.size() );
    REQUIRE( sparse[0] == 0xAB );
    REQUIRE( sparse[777] == 0xAB );
    REQUIRE( sparse[deflate::WINDOW_SIZE - 1] == 0xAB );
    REQUIRE( sparse[1] == 0 );
    REQUIRE( sparse[778] == 0 );

    /* Sparse with a SHORT window: its first byte is marker offset
     * WINDOW_SIZE - size. */
    std::vector<bool> shortReferenced( deflate::WINDOW_SIZE, false );
    shortReferenced[deflate::WINDOW_SIZE - 100] = true;  /* first byte of the window */
    windows.insertSparse( 4004, { shortWindow.data(), shortWindow.size() }, shortReferenced );
    const auto sparseShort = windows.get( 4004 );
    REQUIRE( sparseShort.size() == shortWindow.size() );
    REQUIRE( sparseShort[0] == 0x42 );
    REQUIRE( sparseShort[1] == 0 );

    /* --- sparse-insert NEGATIVE cases: marker-referenced bytes must NOT
     * be zeroed, whatever the referenced-set shape -------------------- */

    /* Every byte referenced → insertSparse must be byte-identical to a
     * plain insert: zeroing anything here would corrupt later decodes. */
    {
        const auto pattern = [] ( std::size_t i ) {
            return static_cast<std::uint8_t>( ( i * 131 + 7 ) & 0xFFU );
        };
        std::vector<std::uint8_t> full( deflate::WINDOW_SIZE );
        for ( std::size_t i = 0; i < full.size(); ++i ) {
            full[i] = pattern( i );
        }
        const std::vector<bool> allReferenced( deflate::WINDOW_SIZE, true );
        windows.insertSparse( 5005, { full.data(), full.size() }, allReferenced );
        REQUIRE( windows.get( 5005 ) == full );
    }

    /* Nothing referenced (empty vector AND all-false vector) → everything
     * zeroed, but the SIZE must stay intact (a resume point's window length
     * is load-bearing even when its bytes are not). */
    {
        std::vector<std::uint8_t> full( deflate::WINDOW_SIZE, 0xCD );
        windows.insertSparse( 6006, { full.data(), full.size() }, {} );
        const auto zeroed = windows.get( 6006 );
        REQUIRE( zeroed.size() == full.size() );
        REQUIRE( std::count( zeroed.begin(), zeroed.end(), 0 )
                 == static_cast<std::ptrdiff_t>( zeroed.size() ) );
        windows.insertSparse( 6006, { full.data(), full.size() },
                              std::vector<bool>( deflate::WINDOW_SIZE, false ) );
        REQUIRE( windows.get( 6006 ).size() == full.size() );
    }

    /* Short-window offset mapping boundaries: for a 100-byte window the
     * valid marker offsets are [WINDOW_SIZE - 100, WINDOW_SIZE); a mark
     * JUST BELOW the window start must not bleed into window[0], and the
     * last byte maps to WINDOW_SIZE - 1 exactly. Off-by-one in `missing`
     * would zero a referenced byte — the corruption class this pins. */
    {
        std::vector<std::uint8_t> window100( 100, 0x42 );
        std::vector<bool> marks( deflate::WINDOW_SIZE, false );
        marks[deflate::WINDOW_SIZE - 101] = true;  /* before the window: no effect */
        marks[deflate::WINDOW_SIZE - 1] = true;    /* last byte: preserved */
        windows.insertSparse( 7007, { window100.data(), window100.size() }, marks );
        const auto mapped = windows.get( 7007 );
        REQUIRE( mapped.size() == 100 );
        REQUIRE( mapped[0] == 0 );     /* only the out-of-window mark pointed near it */
        REQUIRE( mapped[99] == 0x42 ); /* referenced — must NOT be zeroed */
        for ( std::size_t i = 1; i < 99; ++i ) {
            REQUIRE( mapped[i] == 0 );
        }
    }

    /* Re-inserting sparsely over an existing full window must OVERWRITE:
     * stale bytes from the previous insert may not resurface. */
    {
        std::vector<std::uint8_t> full( deflate::WINDOW_SIZE, 0x11 );
        windows.insert( 8008, { full.data(), full.size() } );
        std::vector<bool> one( deflate::WINDOW_SIZE, false );
        one[0] = true;
        std::vector<std::uint8_t> replacement( deflate::WINDOW_SIZE, 0x22 );
        windows.insertSparse( 8008, { replacement.data(), replacement.size() }, one );
        const auto overwritten = windows.get( 8008 );
        REQUIRE( overwritten[0] == 0x22 );
        REQUIRE( overwritten[1] == 0 );  /* NOT 0x11 from the stale window */
    }
}

[[nodiscard]] GzipIndex
makeHandmadeIndex()
{
    GzipIndex index;
    index.compressedSizeBytes = 1 * MiB;
    index.uncompressedSizeBytes = 2000;
    index.checkpoints.push_back( { 80, 0 } );      /* byte 10, aligned, no window */
    index.checkpoints.push_back( { 163, 1000 } );  /* bit-granular, window */
    std::vector<std::uint8_t> window( 512 );
    for ( std::size_t i = 0; i < window.size(); ++i ) {
        window[i] = static_cast<std::uint8_t>( i & 0xFFU );
    }
    index.windows.insert( 163, { window.data(), window.size() } );
    return index;
}

void
testNativeSerialization()
{
    const auto index = makeHandmadeIndex();
    const auto serialized = index::serializeIndex( index );
    const auto loaded = index::deserializeIndex( { serialized.data(), serialized.size() } );
    REQUIRE( loaded == index );

    /* Also loadable through the io layer. */
    MemoryFileReader file( serialized );
    REQUIRE( index::deserializeIndex( file ) == index );

    /* Corruption must be rejected, not crash or round down. */
    auto badMagic = serialized;
    badMagic[0] ^= 0xFFU;
    REQUIRE_THROWS_AS( (void)index::deserializeIndex( { badMagic.data(), badMagic.size() } ),
                       RapidgzipError );

    auto truncated = serialized;
    truncated.resize( truncated.size() - 7 );
    REQUIRE_THROWS_AS( (void)index::deserializeIndex( { truncated.data(), truncated.size() } ),
                       RapidgzipError );

    auto corruptWindow = serialized;
    corruptWindow[corruptWindow.size() - 4] ^= 0xFFU;  /* inside the zlib window data */
    REQUIRE_THROWS_AS(
        (void)index::deserializeIndex( { corruptWindow.data(), corruptWindow.size() } ),
        RapidgzipError );
}

void
testGztoolFormat()
{
    /* Round trip: gztool does not record the compressed size (becomes 0 =
     * unknown) but must preserve everything else, windows included. */
    const auto index = makeHandmadeIndex();
    const auto exported = index::exportGztoolIndex( index );
    const auto imported = index::importGztoolIndex( { exported.data(), exported.size() } );
    REQUIRE( imported.compressedSizeBytes == 0 );
    REQUIRE( imported.uncompressedSizeBytes == index.uncompressedSizeBytes );
    REQUIRE( imported.checkpoints == index.checkpoints );
    REQUIRE( imported.windows.get( 163 ) == index.windows.get( 163 ) );
    REQUIRE( !imported.windows.contains( 80 ) );

    /* Golden file: the exact byte layout of a windowless index, locking the
     * gztool-compatible format (big-endian; bits counted from the byte end;
     * have and size both written; trailing uncompressed size). */
    GzipIndex windowless;
    windowless.compressedSizeBytes = 4096;
    windowless.uncompressedSizeBytes = 2000;            /* 0x7D0 */
    windowless.checkpoints.push_back( { 80, 0 } );      /* in = 10, bits = 0 */
    windowless.checkpoints.push_back( { 163, 1000 } );  /* in = 21, bits = 5; out = 0x3E8 */
    const std::vector<std::uint8_t> golden = {
        /* leading zero u64 */   0, 0, 0, 0, 0, 0, 0, 0,
        /* magic */              'g', 'z', 'i', 'p', 'i', 'n', 'd', 'x',
        /* have */               0, 0, 0, 0, 0, 0, 0, 2,
        /* size */               0, 0, 0, 0, 0, 0, 0, 2,
        /* point 1: out */       0, 0, 0, 0, 0, 0, 0, 0,
        /*          in */        0, 0, 0, 0, 0, 0, 0, 10,
        /*          bits */      0, 0, 0, 0,
        /*          winsize */   0, 0, 0, 0,
        /* point 2: out */       0, 0, 0, 0, 0, 0, 0x03, 0xE8,
        /*          in */        0, 0, 0, 0, 0, 0, 0, 21,
        /*          bits */      0, 0, 0, 5,
        /*          winsize */   0, 0, 0, 0,
        /* uncompressed size */  0, 0, 0, 0, 0, 0, 0x07, 0xD0,
    };
    REQUIRE( index::exportGztoolIndex( windowless ) == golden );
    const auto goldenImported = index::importGztoolIndex( { golden.data(), golden.size() } );
    REQUIRE( goldenImported.checkpoints == windowless.checkpoints );
    REQUIRE( goldenImported.uncompressedSizeBytes == windowless.uncompressedSizeBytes );

    /* Rejects non-gztool data. */
    auto bad = golden;
    bad[8] = 'G';
    REQUIRE_THROWS_AS( (void)index::importGztoolIndex( { bad.data(), bad.size() } ),
                       RapidgzipError );
}

/** Import @p index into a fresh reader over @p compressed and verify
 * seek()/read() reproduce @p original byte-identically, with chunked
 * (indexed) dispatch rather than a serial single chunk. */
void
checkIndexedRandomAccess( const std::vector<std::uint8_t>& original,
                          const std::vector<std::uint8_t>& compressed,
                          const GzipIndex& index,
                          std::uint64_t seed )
{
    ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ), config() );
    reader.importIndex( index );
    REQUIRE( reader.usesIndex() );
    REQUIRE( reader.chunkCount() == index.checkpoints.size() );
    REQUIRE( reader.size() == original.size() );

    /* Full sequential read: byte-identical to the original. */
    std::vector<std::uint8_t> full( original.size() + 16 );
    const auto got = reader.read( full.data(), full.size() );
    full.resize( got );
    REQUIRE( full == original );

    /* Random seeks. */
    Xorshift64 random( seed );
    std::vector<std::uint8_t> buffer( 80000 );
    for ( int i = 0; i < 15; ++i ) {
        const auto offset = random.below( original.size() );
        const auto length = 1 + random.below( buffer.size() );
        reader.seek( offset );
        const auto count = reader.read( buffer.data(), length );
        REQUIRE( count == std::min( length, original.size() - offset ) );
        REQUIRE( std::memcmp( buffer.data(), original.data() + offset, count ) == 0 );
    }
}

void
testNoFlushEndToEnd( const std::vector<std::uint8_t>& data,
                     std::uint64_t seed,
                     bool expectBitGranular = true )
{
    const auto plain = compressGzipLike( { data.data(), data.size() }, 6 );
    const auto serial = decompressWithZlib( { plain.data(), plain.size() } );
    REQUIRE( serial == data );

    /* Build: the first reader's sweep harvests the index as a byproduct. */
    GzipIndex index;
    {
        ParallelGzipReader builder( std::make_unique<MemoryFileReader>( plain ), config() );
        index = builder.exportIndex();
        REQUIRE( builder.usesIndex() );
    }
    REQUIRE( index.checkpoints.size() > 1 );
    REQUIRE( index.compressedSizeBytes == plain.size() );
    REQUIRE( index.uncompressedSizeBytes == data.size() );
    /* The whole point: checkpoints land on arbitrary BIT offsets, which the
     * old byte-offset index could not express. (Incompressible data is the
     * exception — stored blocks are byte-aligned by construction.) */
    if ( expectBitGranular ) {
        bool anyBitGranular = false;
        for ( const auto& checkpoint : index.checkpoints ) {
            anyBitGranular = anyBitGranular || ( checkpoint.compressedOffsetBits % 8 != 0 );
        }
        REQUIRE( anyBitGranular );
    }
    /* Every mid-stream checkpoint carries its window. */
    REQUIRE( index.windows.size() >= index.checkpoints.size() - 1 );

    /* Serialize → load → random access, through both on-disk formats. */
    const auto native = index::serializeIndex( index );
    checkIndexedRandomAccess( data, plain,
                              index::deserializeIndex( { native.data(), native.size() } ),
                              seed );

    const auto gztool = index::exportGztoolIndex( index );
    checkIndexedRandomAccess( data, plain,
                              index::importGztoolIndex( { gztool.data(), gztool.size() } ),
                              seed + 1 );
}

}  // namespace

int
main()
{
    testWindowMap();
    testNativeSerialization();
    testGztoolFormat();

    /* The acceptance workloads: no-flush-point gzip across data shapes —
     * quickly-dying backward pointers (base64), long-lived markers
     * (silesia-like, which exercises sparse windows and marker
     * replacement), records (FASTQ), and stored blocks (incompressible). */
    testNoFlushEndToEnd( workloads::base64Data( 4 * MiB + 333, 0xBA5E ), 0x51 );
    testNoFlushEndToEnd( workloads::silesiaLikeData( 4 * MiB + 77, 0x51E5 ), 0x52 );
    testNoFlushEndToEnd( workloads::fastqData( 3 * MiB + 11, 0xFA57 ), 0x53 );
    testNoFlushEndToEnd( workloads::randomData( 2 * MiB + 7, 0x707 ), 0x54,
                         /* stored blocks are byte-aligned */ false );

    /* Multi-member no-flush stream: the index spans members. */
    {
        const auto first = workloads::base64Data( 2 * MiB, 0xAA );
        const auto second = workloads::fastqData( 1 * MiB + 99, 0xBB );
        auto data = first;
        data.insert( data.end(), second.begin(), second.end() );
        auto compressed = compressGzipLike( { first.data(), first.size() }, 6 );
        const auto tail = compressGzipLike( { second.data(), second.size() }, 6 );
        compressed.insert( compressed.end(), tail.begin(), tail.end() );

        ParallelGzipReader builder( std::make_unique<MemoryFileReader>( compressed ),
                                    config() );
        const auto index = builder.exportIndex();
        REQUIRE( index.uncompressedSizeBytes == data.size() );
        checkIndexedRandomAccess( data, compressed, index, 0x55 );
    }

    /* Full-flush (pigz) streams: byte-aligned windowless checkpoints ride
     * the same serialize/import path. */
    {
        const auto data = workloads::base64Data( 3 * MiB, 0xCC );
        const auto compressed = compressPigzLike( { data.data(), data.size() }, 6,
                                                  128 * KiB );
        ParallelGzipReader builder( std::make_unique<MemoryFileReader>( compressed ),
                                    config() );
        const auto index = builder.exportIndex();
        REQUIRE( index.checkpoints.size() > 1 );
        REQUIRE( index.windows.size() == 0 );
        const auto serialized = index::serializeIndex( index );
        checkIndexedRandomAccess(
            data, compressed,
            index::deserializeIndex( { serialized.data(), serialized.size() } ), 0x56 );
    }

    /* BGZF: the BC-field scan yields the index without any decoding. */
    {
        const auto data = workloads::silesiaLikeData( 3 * MiB + 123, 0xDD );
        const auto compressed = writeBgzf( { data.data(), data.size() }, 6 );
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ),
                                   config() );
        REQUIRE( reader.chunkCount() >= 1 );
        REQUIRE( reader.usesIndex() );
        REQUIRE( reader.decompressAll() == data.size() );
        const auto index = reader.exportIndex();
        REQUIRE( index.windows.size() == 0 );
        checkIndexedRandomAccess( data, compressed, index, 0x57 );
    }

    /* A stale index (built for different data) must surface as an error on
     * access, never as silently wrong bytes. */
    {
        const auto data = workloads::base64Data( 2 * MiB, 0xEE );
        const auto plain = compressGzipLike( { data.data(), data.size() }, 6 );
        ParallelGzipReader builder( std::make_unique<MemoryFileReader>( plain ), config() );
        auto index = builder.exportIndex();
        REQUIRE( index.checkpoints.size() > 1 );
        /* Skew a mid-stream checkpoint onto a non-boundary bit. */
        auto& victim = index.checkpoints[index.checkpoints.size() / 2];
        const auto window = index.windows.get( victim.compressedOffsetBits );
        victim.compressedOffsetBits += 1;
        index.windows.insert( victim.compressedOffsetBits, { window.data(), window.size() } );

        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( plain ), config() );
        reader.importIndex( index );
        std::vector<std::uint8_t> buffer( 4096 );
        reader.seek( index.checkpoints[index.checkpoints.size() / 2].uncompressedOffset );
        REQUIRE_THROWS_AS( (void)reader.read( buffer.data(), buffer.size() ),
                           RapidgzipError );
    }

    return rapidgzip::test::finish( "testGzipIndex" );
}
