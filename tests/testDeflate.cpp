/**
 * deflate layer: the from-scratch two-stage decoder must reproduce zlib's
 * output exactly on every synthetic workload — from the stream start with an
 * empty window, and from arbitrary mid-stream block offsets with marker
 * replacement. The §3.3 fallback must trigger where back-references die out
 * (base64) and must NOT trigger where markers persist (FASTQ's long-range
 * header repeats), and marker replacement itself must honor the window
 * indexing convention end to end.
 */

#include <algorithm>
#include <cstring>
#include <vector>

#include "blockfinder/DynamicBlockFinderNaive.hpp"
#include "deflate/DecodedData.hpp"
#include "deflate/DeflateDecoder.hpp"
#include "gzip/GzipHeader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

[[nodiscard]] BufferView
deflateStream( const std::vector<std::uint8_t>& gz )
{
    const auto start = parseGzipHeader( { gz.data(), gz.size() } );
    return { gz.data() + start, gz.size() - start };
}

/** Serial decode with the custom decoder (known empty window) vs reference. */
void
checkSerialRoundTrip( const std::vector<std::uint8_t>& data, int level )
{
    const auto gz = compressGzipLike( { data.data(), data.size() }, level );
    const auto stream = deflateStream( gz );

    BitReader reader( stream.data(), stream.size() );
    deflate::Decoder decoder;
    decoder.setInitialWindow( {} );
    deflate::DecodedData decoded;
    const auto result = decoder.decode( reader, decoded );

    REQUIRE( result.error == Error::NONE );
    REQUIRE( result.reachedFinalBlock );
    REQUIRE( result.blockCount > 0 );
    REQUIRE( decoded.marked.empty() );  /* known window => no 16-bit stage */

    std::vector<std::uint8_t> resolved;
    deflate::resolveInto( decoded, {}, resolved );
    REQUIRE( resolved == data );

    /* The reported end boundary must point at the footer. */
    const auto footerByte = ceilDiv<std::size_t>( result.endBitOffset, 8 );
    REQUIRE( footerByte + GZIP_FOOTER_SIZE <= stream.size() );
    const auto footer = parseGzipFooter( stream, footerByte + GZIP_FOOTER_SIZE );
    REQUIRE( footer.uncompressedSizeModulo32 == static_cast<std::uint32_t>( data.size() ) );
}

/**
 * Windowless decode from a mid-stream block offset; after replaceMarkers
 * with the true window the bytes must equal the serial decode's tail.
 * Returns the decoded data for fallback-behavior assertions.
 */
[[nodiscard]] deflate::DecodedData
checkMidStreamStart( const std::vector<std::uint8_t>& data )
{
    const auto gz = compressGzipLike( { data.data(), data.size() }, 6 );
    const auto stream = deflateStream( gz );

    const blockfinder::DynamicBlockFinderNaive finder;
    const auto blockBit = finder.find( stream, stream.size() / 2 * 8 );
    REQUIRE( blockBit != blockfinder::NOT_FOUND );

    BitReader reader( stream.data(), stream.size() );
    reader.seek( blockBit );
    deflate::Decoder decoder;
    deflate::DecodedData decoded;
    const auto result = decoder.decode( reader, decoded );
    REQUIRE( result.error == Error::NONE );
    REQUIRE( result.reachedFinalBlock );

    const auto total = decoded.totalSize();
    REQUIRE( total > 0 );
    REQUIRE( total < data.size() );
    const auto tailStart = data.size() - total;
    REQUIRE( tailStart >= deflate::WINDOW_SIZE );

    const BufferView window( data.data() + tailStart - deflate::WINDOW_SIZE,
                             deflate::WINDOW_SIZE );
    std::vector<std::uint8_t> resolved;
    deflate::resolveInto( decoded, window, resolved );
    REQUIRE( std::equal( resolved.begin(), resolved.end(), data.begin() + tailStart ) );
    return decoded;
}

}  // namespace

int
main()
{
    constexpr std::size_t SIZE = 4 * MiB;
    const auto base64 = workloads::base64Data( SIZE, 0xDEF1 );
    const auto fastq = workloads::fastqData( SIZE, 0xDEF2 );
    const auto silesia = workloads::silesiaLikeData( SIZE, 0xDEF3 );
    const auto random = workloads::randomData( SIZE, 0xDEF4 );

    /* Round trip vs zlib on all four synthetic workloads, several levels.
     * Level 1 favors Fixed blocks, level 9 Dynamic; random data produces
     * Stored blocks — all three block types are exercised. */
    for ( const auto* workload : { &base64, &fastq, &silesia, &random } ) {
        for ( const int level : { 1, 6, 9 } ) {
            checkSerialRoundTrip( *workload, level );
        }
    }
    checkSerialRoundTrip( std::vector<std::uint8_t>{}, 6 );  /* empty stream */

    /* Mid-stream start with marker replacement equals the serial decode. */
    {
        const auto decodedBase64 = checkMidStreamStart( base64 );
        const auto decodedFastq = checkMidStreamStart( fastq );
        (void)checkMidStreamStart( silesia );

        /* Fallback triggers on base64 (back-references die out: the marked
         * prefix stays small and plain segments follow) ... */
        REQUIRE( !decodedBase64.plain.empty() );
        REQUIRE( decodedBase64.marked.size() < 256 * KiB );
        REQUIRE( decodedBase64.totalSize() > 1 * MiB );

        /* ... but NOT on the marker-persistent workload: FASTQ's repeating
         * headers keep copying pre-chunk history forward, so the trailing
         * window never becomes marker-free and everything stays 16-bit. */
        REQUIRE( decodedFastq.plain.empty() );
        REQUIRE( decodedFastq.marked.size() == decodedFastq.totalSize() );
        const auto markerCount = std::count_if(
            decodedFastq.marked.begin(), decodedFastq.marked.end(),
            [] ( std::uint16_t symbol ) { return symbol >= deflate::MARKER_BASE; } );
        REQUIRE( markerCount > 0 );
    }

    /* replaceMarkers indexing convention: marker k resolves to window[k]
     * for a full window, and offsets shift for short windows. */
    {
        std::vector<std::uint8_t> window( deflate::WINDOW_SIZE );
        for ( std::size_t i = 0; i < window.size(); ++i ) {
            window[i] = static_cast<std::uint8_t>( i * 31 + 7 );
        }
        const std::vector<std::uint16_t> symbols = {
            'a',
            static_cast<std::uint16_t>( deflate::MARKER_BASE + 0 ),
            static_cast<std::uint16_t>( deflate::MARKER_BASE + deflate::WINDOW_SIZE - 1 ),
            'z',
            static_cast<std::uint16_t>( deflate::MARKER_BASE + 1234 ),
        };
        std::vector<std::uint8_t> output( symbols.size() );
        deflate::replaceMarkers( { symbols.data(), symbols.size() },
                                 { window.data(), window.size() }, output.data() );
        REQUIRE( output[0] == 'a' );
        REQUIRE( output[1] == window.front() );
        REQUIRE( output[2] == window.back() );
        REQUIRE( output[3] == 'z' );
        REQUIRE( output[4] == window[1234] );

        /* Short window: the missing (oldest) part is unaddressable. */
        const BufferView shortWindow( window.data() + window.size() - 2000, 2000 );
        deflate::replaceMarkers( { symbols.data(), symbols.size() }, shortWindow, output.data() );
        REQUIRE( output[1] == 0 );  /* marker 0 reaches before the short window */
        REQUIRE( output[2] == window.back() );
    }

    /* Truncated input surfaces as TRUNCATED_STREAM, not as wrong bytes. */
    {
        const auto gz = compressGzipLike( { base64.data(), base64.size() }, 6 );
        const auto stream = deflateStream( gz );
        BitReader reader( stream.data(), stream.size() / 2 );
        deflate::Decoder decoder;
        decoder.setInitialWindow( {} );
        deflate::DecodedData decoded;
        const auto result = decoder.decode( reader, decoded );
        REQUIRE( result.error == Error::TRUNCATED_STREAM );
        REQUIRE( !result.reachedFinalBlock );
    }

    /* untilBitOffset stops exactly at a block boundary, and resuming from
     * that boundary yields the identical remainder. */
    {
        const auto gz = compressGzipLike( { silesia.data(), silesia.size() }, 6 );
        const auto stream = deflateStream( gz );

        BitReader reader( stream.data(), stream.size() );
        deflate::Decoder first;
        first.setInitialWindow( {} );
        deflate::DecodedData head;
        const auto headResult = first.decode( reader, head, stream.size() * 8 / 2 );
        REQUIRE( headResult.error == Error::NONE );
        REQUIRE( !headResult.reachedFinalBlock );
        REQUIRE( headResult.endBitOffset >= stream.size() * 8 / 2 );

        std::vector<std::uint8_t> headBytes;
        deflate::resolveInto( head, {}, headBytes );

        BitReader tailReader( stream.data(), stream.size() );
        tailReader.seek( headResult.endBitOffset );
        deflate::Decoder second;
        second.setInitialWindow( { headBytes.data(), headBytes.size() } );
        deflate::DecodedData tail;
        const auto tailResult = second.decode( tailReader, tail );
        REQUIRE( tailResult.error == Error::NONE );
        REQUIRE( tailResult.reachedFinalBlock );

        deflate::resolveInto( tail, {}, headBytes );  /* append remainder */
        REQUIRE( headBytes == silesia );
    }

    /* Fast loop vs reference loop (PR 4): bit-exact output equivalence on
     * every workload, in both marker and plain mode, including the marker
     * symbols themselves — the multi-symbol LUT, the unsafe BitReader path,
     * the bulk LZ77 copies, and the cached distance table must be invisible. */
    {
        const auto decodeBoth = [] ( BufferView stream, std::size_t fromBit, bool windowKnown ) {
            std::vector<deflate::DecodedData> results;
            for ( const bool reference : { false, true } ) {
                BitReader reader( stream.data(), stream.size() );
                reader.seek( fromBit );
                deflate::Decoder decoder;
                decoder.setReferenceHuffmanDecoding( reference );
                if ( windowKnown ) {
                    decoder.setInitialWindow( {} );
                }
                deflate::DecodedData decoded;
                const auto result = decoder.decode( reader, decoded );
                REQUIRE( result.error == Error::NONE );
                results.push_back( std::move( decoded ) );
            }
            REQUIRE( results[0].marked.size() == results[1].marked.size() );
            REQUIRE( std::equal( results[0].marked.begin(), results[0].marked.end(),
                                 results[1].marked.begin() ) );
            REQUIRE( results[0].plain.size() == results[1].plain.size() );
            for ( std::size_t i = 0; i < results[0].plain.size(); ++i ) {
                REQUIRE( results[0].plain[i].data.size() == results[1].plain[i].data.size() );
                REQUIRE( std::equal( results[0].plain[i].data.begin(),
                                     results[0].plain[i].data.end(),
                                     results[1].plain[i].data.begin() ) );
            }
        };

        for ( const auto* workload : { &base64, &fastq, &silesia, &random } ) {
            for ( const int level : { 1, 9 } ) {
                const auto gz = compressGzipLike( { workload->data(), workload->size() }, level );
                const auto stream = deflateStream( gz );
                decodeBoth( stream, 0, /* windowKnown */ true );

                const blockfinder::DynamicBlockFinderNaive finder;
                const auto blockBit = finder.find( stream, stream.size() / 2 * 8 );
                if ( blockBit != blockfinder::NOT_FOUND ) {
                    decodeBoth( stream, blockBit, /* windowKnown */ false );
                }
            }
        }
    }

    /* Unchecked-append path at exact capacity boundaries (PR 4): the fast
     * sinks jump to the buffer's existing capacity and grow in slabs; seed
     * the output buffers with adversarial capacities around the exact
     * decoded size and around the sink's growth granularity, and require
     * byte-identical output every time. */
    {
        const auto gz = compressGzipLike( { silesia.data(), silesia.size() }, 6 );
        const auto stream = deflateStream( gz );

        std::vector<std::uint8_t> expected;
        {
            BitReader reader( stream.data(), stream.size() );
            deflate::Decoder decoder;
            decoder.setInitialWindow( {} );
            deflate::DecodedData decoded;
            REQUIRE( decoder.decode( reader, decoded ).error == Error::NONE );
            deflate::resolveInto( decoded, {}, expected );
            REQUIRE( expected == silesia );
        }

        for ( const std::size_t capacity :
              { std::size_t( 1 ), std::size_t( 2 ), std::size_t( 4095 ), std::size_t( 4096 ),
                expected.size() - 1, expected.size(), expected.size() + 1,
                expected.size() + deflate::MAX_MATCH_LENGTH } ) {
            deflate::DecodedData decoded;
            decoded.plain.emplace_back();
            decoded.plain.front().data.reserve( capacity );
            BitReader reader( stream.data(), stream.size() );
            deflate::Decoder decoder;
            decoder.setInitialWindow( {} );
            REQUIRE( decoder.decode( reader, decoded ).error == Error::NONE );
            std::vector<std::uint8_t> resolved;
            deflate::resolveInto( decoded, {}, resolved );
            REQUIRE( resolved == expected );
        }

        /* Same discipline for the 16-bit marker buffer. */
        const blockfinder::DynamicBlockFinderNaive finder;
        const auto blockBit = finder.find( stream, stream.size() / 2 * 8 );
        REQUIRE( blockBit != blockfinder::NOT_FOUND );
        deflate::DecodedData baseline;
        {
            BitReader reader( stream.data(), stream.size() );
            reader.seek( blockBit );
            deflate::Decoder decoder;
            REQUIRE( decoder.decode( reader, baseline ).error == Error::NONE );
            REQUIRE( baseline.totalSize() > 0 );
        }
        for ( const std::size_t capacity :
              { std::size_t( 3 ), std::size_t( 8191 ), baseline.marked.size(),
                baseline.marked.size() + 1 } ) {
            deflate::DecodedData decoded;
            decoded.marked.reserve( capacity );
            BitReader reader( stream.data(), stream.size() );
            reader.seek( blockBit );
            deflate::Decoder decoder;
            REQUIRE( decoder.decode( reader, decoded ).error == Error::NONE );
            REQUIRE( decoded.marked.size() == baseline.marked.size() );
            REQUIRE( std::equal( decoded.marked.begin(), decoded.marked.end(),
                                 baseline.marked.begin() ) );
        }
    }

    return rapidgzip::test::finish( "testDeflate" );
}
