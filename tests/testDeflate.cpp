/**
 * deflate layer: the from-scratch two-stage decoder must reproduce zlib's
 * output exactly on every synthetic workload — from the stream start with an
 * empty window, and from arbitrary mid-stream block offsets with marker
 * replacement. The §3.3 fallback must trigger where back-references die out
 * (base64) and must NOT trigger where markers persist (FASTQ's long-range
 * header repeats), and marker replacement itself must honor the window
 * indexing convention end to end.
 */

#include <algorithm>
#include <cstring>
#include <vector>

#include "blockfinder/DynamicBlockFinderNaive.hpp"
#include "deflate/DecodedData.hpp"
#include "deflate/DeflateDecoder.hpp"
#include "gzip/GzipHeader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

[[nodiscard]] BufferView
deflateStream( const std::vector<std::uint8_t>& gz )
{
    const auto start = parseGzipHeader( { gz.data(), gz.size() } );
    return { gz.data() + start, gz.size() - start };
}

/** Serial decode with the custom decoder (known empty window) vs reference. */
void
checkSerialRoundTrip( const std::vector<std::uint8_t>& data, int level )
{
    const auto gz = compressGzipLike( { data.data(), data.size() }, level );
    const auto stream = deflateStream( gz );

    BitReader reader( stream.data(), stream.size() );
    deflate::Decoder decoder;
    decoder.setInitialWindow( {} );
    deflate::DecodedData decoded;
    const auto result = decoder.decode( reader, decoded );

    REQUIRE( result.error == Error::NONE );
    REQUIRE( result.reachedFinalBlock );
    REQUIRE( result.blockCount > 0 );
    REQUIRE( decoded.marked.empty() );  /* known window => no 16-bit stage */

    std::vector<std::uint8_t> resolved;
    deflate::resolveInto( decoded, {}, resolved );
    REQUIRE( resolved == data );

    /* The reported end boundary must point at the footer. */
    const auto footerByte = ceilDiv<std::size_t>( result.endBitOffset, 8 );
    REQUIRE( footerByte + GZIP_FOOTER_SIZE <= stream.size() );
    const auto footer = parseGzipFooter( stream, footerByte + GZIP_FOOTER_SIZE );
    REQUIRE( footer.uncompressedSizeModulo32 == static_cast<std::uint32_t>( data.size() ) );
}

/**
 * Windowless decode from a mid-stream block offset; after replaceMarkers
 * with the true window the bytes must equal the serial decode's tail.
 * Returns the decoded data for fallback-behavior assertions.
 */
[[nodiscard]] deflate::DecodedData
checkMidStreamStart( const std::vector<std::uint8_t>& data )
{
    const auto gz = compressGzipLike( { data.data(), data.size() }, 6 );
    const auto stream = deflateStream( gz );

    const blockfinder::DynamicBlockFinderNaive finder;
    const auto blockBit = finder.find( stream, stream.size() / 2 * 8 );
    REQUIRE( blockBit != blockfinder::NOT_FOUND );

    BitReader reader( stream.data(), stream.size() );
    reader.seek( blockBit );
    deflate::Decoder decoder;
    deflate::DecodedData decoded;
    const auto result = decoder.decode( reader, decoded );
    REQUIRE( result.error == Error::NONE );
    REQUIRE( result.reachedFinalBlock );

    const auto total = decoded.totalSize();
    REQUIRE( total > 0 );
    REQUIRE( total < data.size() );
    const auto tailStart = data.size() - total;
    REQUIRE( tailStart >= deflate::WINDOW_SIZE );

    const BufferView window( data.data() + tailStart - deflate::WINDOW_SIZE,
                             deflate::WINDOW_SIZE );
    std::vector<std::uint8_t> resolved;
    deflate::resolveInto( decoded, window, resolved );
    REQUIRE( std::equal( resolved.begin(), resolved.end(), data.begin() + tailStart ) );
    return decoded;
}

}  // namespace

int
main()
{
    constexpr std::size_t SIZE = 4 * MiB;
    const auto base64 = workloads::base64Data( SIZE, 0xDEF1 );
    const auto fastq = workloads::fastqData( SIZE, 0xDEF2 );
    const auto silesia = workloads::silesiaLikeData( SIZE, 0xDEF3 );
    const auto random = workloads::randomData( SIZE, 0xDEF4 );

    /* Round trip vs zlib on all four synthetic workloads, several levels.
     * Level 1 favors Fixed blocks, level 9 Dynamic; random data produces
     * Stored blocks — all three block types are exercised. */
    for ( const auto* workload : { &base64, &fastq, &silesia, &random } ) {
        for ( const int level : { 1, 6, 9 } ) {
            checkSerialRoundTrip( *workload, level );
        }
    }
    checkSerialRoundTrip( std::vector<std::uint8_t>{}, 6 );  /* empty stream */

    /* Mid-stream start with marker replacement equals the serial decode. */
    {
        const auto decodedBase64 = checkMidStreamStart( base64 );
        const auto decodedFastq = checkMidStreamStart( fastq );
        (void)checkMidStreamStart( silesia );

        /* Fallback triggers on base64 (back-references die out: the marked
         * prefix stays small and plain segments follow) ... */
        REQUIRE( !decodedBase64.plain.empty() );
        REQUIRE( decodedBase64.marked.size() < 256 * KiB );
        REQUIRE( decodedBase64.totalSize() > 1 * MiB );

        /* ... but NOT on the marker-persistent workload: FASTQ's repeating
         * headers keep copying pre-chunk history forward, so the trailing
         * window never becomes marker-free and everything stays 16-bit. */
        REQUIRE( decodedFastq.plain.empty() );
        REQUIRE( decodedFastq.marked.size() == decodedFastq.totalSize() );
        const auto markerCount = std::count_if(
            decodedFastq.marked.begin(), decodedFastq.marked.end(),
            [] ( std::uint16_t symbol ) { return symbol >= deflate::MARKER_BASE; } );
        REQUIRE( markerCount > 0 );
    }

    /* replaceMarkers indexing convention: marker k resolves to window[k]
     * for a full window, and offsets shift for short windows. */
    {
        std::vector<std::uint8_t> window( deflate::WINDOW_SIZE );
        for ( std::size_t i = 0; i < window.size(); ++i ) {
            window[i] = static_cast<std::uint8_t>( i * 31 + 7 );
        }
        const std::vector<std::uint16_t> symbols = {
            'a',
            static_cast<std::uint16_t>( deflate::MARKER_BASE + 0 ),
            static_cast<std::uint16_t>( deflate::MARKER_BASE + deflate::WINDOW_SIZE - 1 ),
            'z',
            static_cast<std::uint16_t>( deflate::MARKER_BASE + 1234 ),
        };
        std::vector<std::uint8_t> output( symbols.size() );
        deflate::replaceMarkers( { symbols.data(), symbols.size() },
                                 { window.data(), window.size() }, output.data() );
        REQUIRE( output[0] == 'a' );
        REQUIRE( output[1] == window.front() );
        REQUIRE( output[2] == window.back() );
        REQUIRE( output[3] == 'z' );
        REQUIRE( output[4] == window[1234] );

        /* Short window: the missing (oldest) part is unaddressable. */
        const BufferView shortWindow( window.data() + window.size() - 2000, 2000 );
        deflate::replaceMarkers( { symbols.data(), symbols.size() }, shortWindow, output.data() );
        REQUIRE( output[1] == 0 );  /* marker 0 reaches before the short window */
        REQUIRE( output[2] == window.back() );
    }

    /* Truncated input surfaces as TRUNCATED_STREAM, not as wrong bytes. */
    {
        const auto gz = compressGzipLike( { base64.data(), base64.size() }, 6 );
        const auto stream = deflateStream( gz );
        BitReader reader( stream.data(), stream.size() / 2 );
        deflate::Decoder decoder;
        decoder.setInitialWindow( {} );
        deflate::DecodedData decoded;
        const auto result = decoder.decode( reader, decoded );
        REQUIRE( result.error == Error::TRUNCATED_STREAM );
        REQUIRE( !result.reachedFinalBlock );
    }

    /* untilBitOffset stops exactly at a block boundary, and resuming from
     * that boundary yields the identical remainder. */
    {
        const auto gz = compressGzipLike( { silesia.data(), silesia.size() }, 6 );
        const auto stream = deflateStream( gz );

        BitReader reader( stream.data(), stream.size() );
        deflate::Decoder first;
        first.setInitialWindow( {} );
        deflate::DecodedData head;
        const auto headResult = first.decode( reader, head, stream.size() * 8 / 2 );
        REQUIRE( headResult.error == Error::NONE );
        REQUIRE( !headResult.reachedFinalBlock );
        REQUIRE( headResult.endBitOffset >= stream.size() * 8 / 2 );

        std::vector<std::uint8_t> headBytes;
        deflate::resolveInto( head, {}, headBytes );

        BitReader tailReader( stream.data(), stream.size() );
        tailReader.seek( headResult.endBitOffset );
        deflate::Decoder second;
        second.setInitialWindow( { headBytes.data(), headBytes.size() } );
        deflate::DecodedData tail;
        const auto tailResult = second.decode( tailReader, tail );
        REQUIRE( tailResult.error == Error::NONE );
        REQUIRE( tailResult.reachedFinalBlock );

        deflate::resolveInto( tail, {}, headBytes );  /* append remainder */
        REQUIRE( headBytes == silesia );
    }

    return rapidgzip::test::finish( "testDeflate" );
}
