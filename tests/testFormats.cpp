/**
 * Unit tests for the format-dispatch layer (src/formats/): magic-byte
 * detection, the XXH32 implementation against the specification vectors,
 * the from-scratch LZ4 block codec's edge cases, frame walking and seek
 * tables, bzip2 synthetic single-block streams, and the Decompressor
 * interface (decompress/size/readAt/seekPoints) per backend. The
 * randomized cross-format differential lives in testDifferential.cpp.
 */

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "core/FrameParallelReader.hpp"
#include "formats/Decompressor.hpp"
#include "formats/Format.hpp"
#include "formats/Formats.hpp"
#include "formats/Lz4Codec.hpp"
#include "formats/Lz4Writer.hpp"
#include "formats/XxHash32.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
#include "formats/ZstdDecompressor.hpp"
#include "formats/ZstdWriter.hpp"
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
#include "formats/Bzip2Decompressor.hpp"
#include "formats/Bzip2Writer.hpp"
#endif

#include "TestHelpers.hpp"

using namespace rapidgzip;
using formats::Format;

namespace {

void
testDetectFormat()
{
    const auto detect = [] ( std::vector<std::uint8_t> bytes ) {
        return formats::detectFormat( { bytes.data(), bytes.size() } );
    };
    REQUIRE( detect( { 0x1F, 0x8B, 0x08, 0x00 } ) == Format::GZIP );
    REQUIRE( detect( { 0x1F, 0x8B } ) == Format::GZIP );
    REQUIRE( detect( { 0x28, 0xB5, 0x2F, 0xFD } ) == Format::ZSTD );
    REQUIRE( detect( { 0x5E, 0x2A, 0x4D, 0x18 } ) == Format::ZSTD );  /* skippable */
    REQUIRE( detect( { 0x04, 0x22, 0x4D, 0x18 } ) == Format::LZ4 );
    REQUIRE( detect( { 'B', 'Z', 'h', '9' } ) == Format::BZIP2 );
    REQUIRE( detect( { 'B', 'Z', 'h', '1' } ) == Format::BZIP2 );
    REQUIRE( detect( { 'B', 'Z', 'h', '0' } ) == Format::UNKNOWN );
    REQUIRE( detect( { 'B', 'Z', 'x', '9' } ) == Format::UNKNOWN );
    REQUIRE( detect( {} ) == Format::UNKNOWN );
    REQUIRE( detect( { 0x1F } ) == Format::UNKNOWN );
    REQUIRE( detect( { 0x00, 0x00, 0x00, 0x00 } ) == Format::UNKNOWN );

    /* Dispatch on unknown magic throws, distinguishably. */
    REQUIRE_THROWS_AS(
        (void)formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( std::vector<std::uint8_t>( 64, 0x42 ) ) ),
        RapidgzipError );

    /* Leading SKIPPABLE frames are shared by the zstd and lz4 frame
     * formats: file-level detection must walk past them and let the first
     * DATA frame decide (an lz4 file opening with skippable metadata must
     * NOT route to zstd). */
    {
        const auto payload = workloads::base64Data( 4 * KiB, 0x51C1 );
        std::vector<std::uint8_t> lz4File;
        const std::vector<std::uint8_t> metadata{ 'm', 'e', 't', 'a' };
        formats::Lz4Writer::writeSkippableFrame( lz4File, { metadata.data(), metadata.size() } );
        formats::Lz4Writer::writeFrame( lz4File, { payload.data(), payload.size() } );
        {
            MemoryFileReader reader( lz4File );
            REQUIRE( formats::detectFormat( reader ) == Format::LZ4 );
        }
        /* ...and the routed backend actually decodes it. */
        auto decompressor = formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( lz4File ) );
        REQUIRE( decompressor->format() == Format::LZ4 );
        std::vector<std::uint8_t> decoded;
        (void)decompressor->decompress( [&decoded] ( BufferView view ) {
            decoded.insert( decoded.end(), view.begin(), view.end() );
        } );
        REQUIRE( decoded == payload );

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
        std::vector<std::uint8_t> zstdFile;
        formats::Lz4Writer::writeSkippableFrame( zstdFile, { metadata.data(), metadata.size() } );
        const auto zstdFrames = formats::writeZstdFrames( { payload.data(), payload.size() } );
        zstdFile.insert( zstdFile.end(), zstdFrames.begin(), zstdFrames.end() );
        MemoryFileReader zstdReader( zstdFile );
        REQUIRE( formats::detectFormat( zstdReader ) == Format::ZSTD );
#endif
    }
}

void
testXxHash32()
{
    /* Specification test vectors. */
    REQUIRE( formats::xxhash32( "", 0 ) == 0x02CC5D05U );
    REQUIRE( formats::xxhash32( "a", 1 ) == 0x550D7456U );
    REQUIRE( formats::xxhash32( "abc", 3 ) == 0x32D153FFU );

    /* Streamer ≡ one-shot for every split of a 4 KiB buffer sample. */
    const auto data = workloads::randomData( 4 * KiB, 0x77AA );
    const auto oneShot = formats::xxhash32( data.data(), data.size() );
    for ( const std::size_t split : { std::size_t( 0 ), std::size_t( 1 ), std::size_t( 15 ),
                                      std::size_t( 16 ), std::size_t( 17 ),
                                      std::size_t( 1000 ), data.size() } ) {
        formats::Xxh32Streamer streamer;
        streamer.update( data.data(), split );
        streamer.update( data.data() + split, data.size() - split );
        REQUIRE( streamer.digest() == oneShot );
    }
    /* Byte-by-byte feed. */
    formats::Xxh32Streamer streamer;
    for ( const auto byte : data ) {
        streamer.update( &byte, 1 );
    }
    REQUIRE( streamer.digest() == oneShot );
}

void
testLz4BlockCodec()
{
    /* Round trips across shapes: empty, tiny, runs, incompressible. */
    for ( const auto& input : { std::vector<std::uint8_t>{},
                                std::vector<std::uint8_t>{ 'x' },
                                std::vector<std::uint8_t>( 12, 'a' ),
                                std::vector<std::uint8_t>( 13, 'a' ),
                                std::vector<std::uint8_t>( 1000, 'r' ),
                                workloads::randomData( 70 * KiB, 1 ),
                                workloads::runsData( 70 * KiB, 2 ),
                                workloads::lzBoundaryData( 70 * KiB, 3 ) } ) {
        const auto block = formats::lz4CompressBlock( { input.data(), input.size() } );
        std::vector<std::uint8_t> decoded;
        formats::lz4DecompressBlock( { block.data(), block.size() }, decoded, 0, input.size() );
        REQUIRE( decoded == input );
    }

    /* Malformed blocks must throw, never crash or read out of bounds. */
    std::vector<std::uint8_t> out;
    /* Zero offset. */
    const std::vector<std::uint8_t> zeroOffset = { 0x10, 'a', 0x00, 0x00, 0x00 };
    REQUIRE_THROWS_AS( formats::lz4DecompressBlock( { zeroOffset.data(), zeroOffset.size() },
                                                    out, 0, 1024 ),
                       RapidgzipError );
    /* Offset beyond history. */
    out.clear();
    const std::vector<std::uint8_t> farOffset = { 0x10, 'a', 0xFF, 0x00, 0x00 };
    REQUIRE_THROWS_AS( formats::lz4DecompressBlock( { farOffset.data(), farOffset.size() },
                                                    out, 0, 1024 ),
                       RapidgzipError );
    /* Literal run past the end of the block. */
    out.clear();
    const std::vector<std::uint8_t> shortLiterals = { 0xF0, 0xFF };
    REQUIRE_THROWS_AS( formats::lz4DecompressBlock( { shortLiterals.data(),
                                                      shortLiterals.size() },
                                                    out, 0, 1024 ),
                       RapidgzipError );
    /* Output bound enforced (match expanding past maxOutput). */
    out.clear();
    const std::vector<std::uint8_t> expander = { 0x1F, 'a', 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0x00 };
    REQUIRE_THROWS_AS( formats::lz4DecompressBlock( { expander.data(), expander.size() },
                                                    out, 0, 64 ),
                       RapidgzipError );
    /* Empty input. */
    out.clear();
    REQUIRE_THROWS_AS( formats::lz4DecompressBlock( {}, out, 0, 64 ), RapidgzipError );

    /* History (linked-block) decoding: a match reaching into prior output. */
    out.assign( { 'h', 'i', 's', 't' } );
    /* token: 0 literals, matchlen 4; offset 4 → copies "hist". */
    const std::vector<std::uint8_t> linked = { 0x00, 0x04, 0x00, 0x00 };
    formats::lz4DecompressBlock( { linked.data(), linked.size() }, out, 4, 1024 );
    REQUIRE( ( out == std::vector<std::uint8_t>{ 'h', 'i', 's', 't', 'h', 'i', 's', 't' } ) );
}

void
testLz4FrameReader()
{
    const auto data = workloads::lzBoundaryData( 300 * KiB, 0xF00D );
    const BufferView span{ data.data(), data.size() };
    const auto file = formats::writeLz4( span, formats::Lz4Writer::BlockMaxSize::KIB64 );

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 64 * KiB;
    formats::Lz4Decompressor decompressor( std::make_unique<MemoryFileReader>( file ),
                                           configuration );
    REQUIRE( decompressor.format() == Format::LZ4 );
    REQUIRE( decompressor.parallelizable() );
    REQUIRE( decompressor.size() == data.size() );
    REQUIRE( !decompressor.seekPoints().empty() );

    /* readAt against ground truth at scattered offsets incl. boundaries. */
    std::uint8_t probe[512];
    for ( const std::size_t offset : { std::size_t( 0 ), std::size_t( 64 * KiB - 3 ),
                                       std::size_t( 64 * KiB ), data.size() / 2,
                                       data.size() - 100 } ) {
        const auto got = decompressor.readAt( offset, probe, sizeof( probe ) );
        REQUIRE( got == std::min<std::size_t>( sizeof( probe ), data.size() - offset ) );
        REQUIRE( std::equal( probe, probe + got, data.begin()
                             + static_cast<std::ptrdiff_t>( offset ) ) );
    }
    REQUIRE( decompressor.readAt( data.size(), probe, sizeof( probe ) ) == 0 );

    /* A flipped payload byte must be caught by the block checksum. */
    auto corrupt = file;
    corrupt[corrupt.size() / 2] ^= 0x01U;
    formats::Lz4Decompressor corruptReader( std::make_unique<MemoryFileReader>( corrupt ),
                                            configuration );
    REQUIRE_THROWS_AS( (void)corruptReader.decompress( {} ), RapidgzipError );

    /* A flipped header-descriptor byte must be caught by HC. */
    auto corruptHeader = file;
    corruptHeader[4] ^= 0x04U;  /* toggle C.Checksum flag in FLG */
    REQUIRE_THROWS_AS( formats::Lz4Decompressor( std::make_unique<MemoryFileReader>(
                                                     corruptHeader ), configuration ),
                       RapidgzipError );
}

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
void
testZstdFrameReader()
{
    const auto data = workloads::base64Data( 300 * KiB, 0x5EED );
    const BufferView span{ data.data(), data.size() };

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 64 * KiB;

    /* Seekable layout: table adopted, O(1) offsets (no decode for size). */
    {
        const auto file = formats::writeZstdSeekable( span, 3, 64 * KiB );
        formats::ZstdDecompressor decompressor( std::make_unique<MemoryFileReader>( file ),
                                                configuration );
        REQUIRE( decompressor.hasSeekTable() );
        REQUIRE( decompressor.parallelizable() );
        REQUIRE( decompressor.size() == data.size() );
        REQUIRE( decompressor.seekPoints().size() >= 2 );

        std::uint8_t probe[512];
        const auto got = decompressor.readAt( 123457, probe, sizeof( probe ) );
        REQUIRE( got == sizeof( probe ) );
        REQUIRE( std::equal( probe, probe + got, data.begin() + 123457 ) );
    }

    /* Plain multi-frame: sizes from frame headers, still parallel. */
    {
        const auto file = formats::writeZstdFrames( span, 3, 64 * KiB );
        formats::ZstdDecompressor decompressor( std::make_unique<MemoryFileReader>( file ),
                                                configuration );
        REQUIRE( !decompressor.hasSeekTable() );
        REQUIRE( decompressor.parallelizable() );
        REQUIRE( decompressor.size() == data.size() );
    }

    /* A flipped byte inside a frame: zstd's internal block structure (and
     * the exact-size check) must reject it on decode. */
    {
        auto corrupt = formats::writeZstdSeekable( span, 3, 64 * KiB );
        corrupt[100] ^= 0xFFU;
        formats::ZstdDecompressor decompressor( std::make_unique<MemoryFileReader>( corrupt ),
                                                configuration );
        REQUIRE_THROWS_AS( (void)decompressor.decompress( {} ), RapidgzipError );
    }
}
#endif

#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
void
testBzip2Reader()
{
    const auto data = workloads::fastqData( 300 * KiB, 0xB217 );
    const BufferView span{ data.data(), data.size() };
    const auto file = formats::writeBzip2( span, 1 );

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 64 * KiB;
    formats::Bzip2Decompressor decompressor( std::make_unique<MemoryFileReader>( file ),
                                             configuration );
    REQUIRE( decompressor.parallelizable() );
    REQUIRE( decompressor.blockCount() >= 2 );  /* level 1 → ~100 kB blocks */
    REQUIRE( decompressor.size() == data.size() );

    std::uint8_t probe[512];
    const auto offset = data.size() / 2;
    const auto got = decompressor.readAt( offset, probe, sizeof( probe ) );
    REQUIRE( got == sizeof( probe ) );
    REQUIRE( std::equal( probe, probe + got,
                         data.begin() + static_cast<std::ptrdiff_t>( offset ) ) );

    /* Seek points start at the first block magic, right after "BZh1". */
    {
        const auto points = decompressor.seekPoints();
        REQUIRE( !points.empty() );
        REQUIRE( points.front().compressedOffsetBits == 32 );
    }

    /* Damaged block payload: the parallel path's vendor decode or the CRC
     * chain must reject it, and the serial authority also throws — either
     * way decompress() must NOT return wrong bytes. */
    {
        auto corrupt = file;
        corrupt[corrupt.size() / 2] ^= 0x10U;
        formats::Bzip2Decompressor corruptReader(
            std::make_unique<MemoryFileReader>( corrupt ), configuration );
        try {
            std::vector<std::uint8_t> decoded;
            (void)corruptReader.decompress( [&decoded] ( BufferView view ) {
                decoded.insert( decoded.end(), view.begin(), view.end() );
            } );
            /* No exception is only acceptable if the flip landed in dead
             * padding bits and the output is still byte-exact. */
            REQUIRE( decoded == data );
        } catch ( const RapidgzipError& ) {
            /* expected: rejection */
        }
    }
}
#endif

void
testFrameParallelReaderGrouping()
{
    /* Synthetic decoder: frame i yields i+1 bytes of value i. Exercises
     * grouping, ordered traversal, offset bookkeeping, and readAt. */
    std::vector<CompressedFrame> frames;
    for ( std::size_t i = 0; i < 10; ++i ) {
        CompressedFrame frame;
        frame.compressedBeginBits = i * 1000 * 8;
        frame.compressedEndBits = ( i + 1 ) * 1000 * 8;
        frames.push_back( frame );
    }
    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 64 * KiB;  /* floor → 64 KiB chunks */

    auto file = std::make_shared<const MemoryFileReader>(
        std::vector<std::uint8_t>( 10 * 1000, 0 ) );
    FrameParallelReader reader(
        file, frames,
        [] ( const FileReader&, const CompressedFrame& frame, std::size_t index,
             std::vector<std::uint8_t>& out ) {
            (void)frame;
            out.insert( out.end(), index + 1, static_cast<std::uint8_t>( index ) );
        },
        configuration );

    std::vector<std::uint8_t> all;
    const auto total = reader.decompress( [&all] ( BufferView span ) {
        all.insert( all.end(), span.begin(), span.end() );
    } );
    REQUIRE( total == 55 );  /* 1 + 2 + ... + 10 */
    REQUIRE( all.size() == 55 );
    std::size_t cursor = 0;
    for ( std::size_t i = 0; i < 10; ++i ) {
        for ( std::size_t j = 0; j < i + 1; ++j ) {
            REQUIRE( all[cursor++] == static_cast<std::uint8_t>( i ) );
        }
    }

    std::uint8_t probe[8];
    REQUIRE( reader.readAt( 0, probe, 1 ) == 1 );
    REQUIRE( probe[0] == 0 );
    REQUIRE( reader.readAt( 54, probe, 8 ) == 1 );  /* last byte only */
    REQUIRE( probe[0] == 9 );
    REQUIRE( reader.readAt( 55, probe, 8 ) == 0 );
}

}  // namespace

int
main()
{
    testDetectFormat();
    testXxHash32();
    testLz4BlockCodec();
    testLz4FrameReader();
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
    testZstdFrameReader();
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
    testBzip2Reader();
#endif
    testFrameParallelReaderGrouping();
    return rapidgzip::test::finish( "testFormats" );
}
