/**
 * Fault-injection framework tests plus the randomized fault campaign the
 * robustness work hangs off (src/failsafe/, and the probe sites it arms
 * across io/, core/, and serve/):
 *
 *  - framework semantics: arming, rates, determinism per seed, latency,
 *    spec/environment parsing, per-point probe and injection counters;
 *  - FaultyFileReader schedules and preadExactly's transparent healing of
 *    short reads;
 *  - chunk-decode isolation: bounded transient retry, telemetry counters,
 *    poisoned-future eviction (a failed read recovers byte-exact on the
 *    SAME reader once the fault clears), and the shared chunk cache never
 *    caching a failure;
 *  - a decode campaign over every available backend at 1-10 % fault rates:
 *    every attempt either returns byte-exact data or throws a typed error,
 *    and a clean re-read after disarming is byte-exact;
 *  - a loopback serve campaign: concurrent ranged GETs under serve.write
 *    and chunk.decode faults (each response 206-byte-exact or 500), a
 *    deterministic archive-busy 503, and a deterministic graceful drain
 *    (in-flight request completes, /readyz flips to 503 "draining").
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/ChunkCache.hpp"
#include "failsafe/FaultInjection.hpp"
#include "formats/Formats.hpp"
#include "formats/Lz4Writer.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/FaultyFileReader.hpp"
#include "io/MemoryFileReader.hpp"
#include "serve/Server.hpp"
#include "telemetry/Registry.hpp"
#include "telemetry/Telemetry.hpp"
#include "workloads/DataGenerators.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
#include "formats/ZstdWriter.hpp"
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
#include "formats/Bzip2Writer.hpp"
#endif

#include "TestHelpers.hpp"

using namespace rapidgzip;
using failsafe::FaultPoint;

namespace {

/* --- framework semantics ------------------------------------------------ */

void
testFrameworkBasics()
{
    failsafe::disarmAll();
    REQUIRE( !failsafe::anyArmed() );

    /* Name table round-trips; garbage does not parse. */
    for ( std::size_t i = 0; i < failsafe::FAULT_POINT_COUNT; ++i ) {
        const auto point = static_cast<FaultPoint>( i );
        const auto parsed = failsafe::parseFaultPoint( failsafe::toString( point ) );
        REQUIRE( parsed.has_value() );
        REQUIRE( *parsed == point );
    }
    REQUIRE( !failsafe::parseFaultPoint( "io.write" ).has_value() );
    REQUIRE( !failsafe::parseFaultPoint( "" ).has_value() );

    /* Disarmed probes are invisible: no fire, no probe accounting (the
     * armed() gate short-circuits before the cold path). */
    const auto coldProbes = failsafe::probeCount( FaultPoint::IO_READ );
    for ( int i = 0; i < 100; ++i ) {
        REQUIRE( !failsafe::shouldInject( FaultPoint::IO_READ ) );
    }
    REQUIRE( failsafe::probeCount( FaultPoint::IO_READ ) == coldProbes );

    /* Rate 1 always fires and counts; disarm stops it again. */
    failsafe::configure( FaultPoint::IO_READ, 1.0 );
    REQUIRE( failsafe::armed( FaultPoint::IO_READ ) );
    REQUIRE( failsafe::anyArmed() );
    const auto firedBefore = failsafe::injectionCount( FaultPoint::IO_READ );
    for ( int i = 0; i < 10; ++i ) {
        REQUIRE( failsafe::shouldInject( FaultPoint::IO_READ ) );
    }
    REQUIRE( failsafe::injectionCount( FaultPoint::IO_READ ) == firedBefore + 10 );
    failsafe::disarm( FaultPoint::IO_READ );
    REQUIRE( !failsafe::armed( FaultPoint::IO_READ ) );
    REQUIRE( !failsafe::shouldInject( FaultPoint::IO_READ ) );

    /* Rate 0 is disarmed, even with a latency configured. */
    failsafe::configure( FaultPoint::POOL_TASK, 0.0, 0, 50'000 );
    REQUIRE( !failsafe::armed( FaultPoint::POOL_TASK ) );

    /* A 10 % rate fires roughly 10 % of the time (20000 draws: the
     * binomial standard deviation is ~42, so ±400 is > 9 sigma). */
    failsafe::configure( FaultPoint::CHUNK_DECODE, 0.1, /* seed */ 42 );
    std::size_t fired = 0;
    for ( int i = 0; i < 20'000; ++i ) {
        if ( failsafe::shouldInject( FaultPoint::CHUNK_DECODE ) ) {
            ++fired;
        }
    }
    REQUIRE( fired > 1'600 );
    REQUIRE( fired < 2'400 );
    failsafe::disarm( FaultPoint::CHUNK_DECODE );

    /* Same seed, same thread: reconfiguring bumps the epoch and replays
     * the identical per-thread decision sequence. */
    const auto record = [] () {
        failsafe::configure( FaultPoint::SERVE_WRITE, 0.5, /* seed */ 7 );
        std::vector<bool> decisions;
        for ( int i = 0; i < 64; ++i ) {
            decisions.push_back( failsafe::shouldInject( FaultPoint::SERVE_WRITE ) );
        }
        return decisions;
    };
    const auto first = record();
    const auto second = record();
    REQUIRE( first == second );
    REQUIRE( std::count( first.begin(), first.end(), true ) > 0 );
    REQUIRE( std::count( first.begin(), first.end(), false ) > 0 );
    failsafe::disarm( FaultPoint::SERVE_WRITE );

    /* drawBelow stays in range and is degenerate for bound <= 1. */
    failsafe::configure( FaultPoint::IO_READ, 1.0, 3 );
    REQUIRE( failsafe::drawBelow( FaultPoint::IO_READ, 1 ) == 0 );
    for ( int i = 0; i < 100; ++i ) {
        REQUIRE( failsafe::drawBelow( FaultPoint::IO_READ, 4 ) < 4 );
    }
    failsafe::disarm( FaultPoint::IO_READ );

    /* The alloc point throws std::bad_alloc, exactly like the real thing. */
    failsafe::maybeFailAllocation();  /* disarmed: no throw */
    failsafe::configure( FaultPoint::ALLOC, 1.0 );
    REQUIRE_THROWS_AS( failsafe::maybeFailAllocation(), std::bad_alloc );
    failsafe::disarm( FaultPoint::ALLOC );

    /* Latency: a firing probe sleeps the configured duration. */
    failsafe::configure( FaultPoint::POOL_TASK, 1.0, 0, 20'000 );
    const auto begin = std::chrono::steady_clock::now();
    REQUIRE( failsafe::shouldInject( FaultPoint::POOL_TASK ) );
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - begin ).count();
    REQUIRE( elapsed >= 15'000 );
    failsafe::disarmAll();
}

void
testSpecParsing()
{
    failsafe::disarmAll();

    REQUIRE( failsafe::configureFromSpec( "io.read:0.5" ) );
    REQUIRE( failsafe::armed( FaultPoint::IO_READ ) );
    failsafe::disarmAll();

    REQUIRE( failsafe::configureFromSpec( "chunk.decode:0.1:42:1000,serve.write:1,pool.task:0.2:9" ) );
    REQUIRE( failsafe::armed( FaultPoint::CHUNK_DECODE ) );
    REQUIRE( failsafe::armed( FaultPoint::SERVE_WRITE ) );
    REQUIRE( failsafe::armed( FaultPoint::POOL_TASK ) );
    REQUIRE( !failsafe::armed( FaultPoint::IO_READ ) );
    failsafe::disarmAll();

    /* Rate 0 in a spec leaves the point disarmed. */
    REQUIRE( failsafe::configureFromSpec( "alloc:0" ) );
    REQUIRE( !failsafe::armed( FaultPoint::ALLOC ) );

    /* Malformed entries are rejected wholesale. */
    REQUIRE( !failsafe::configureFromSpec( "bogus:0.5" ) );
    REQUIRE( !failsafe::configureFromSpec( "io.read" ) );
    REQUIRE( !failsafe::configureFromSpec( "io.read:" ) );
    REQUIRE( !failsafe::configureFromSpec( "io.read:abc" ) );
    REQUIRE( !failsafe::configureFromSpec( "io.read:0.5:seed" ) );
    REQUIRE( !failsafe::configureFromSpec( "io.read:0.5:1:" ) );
    REQUIRE( !failsafe::configureFromSpec( "io.read:0.5junk" ) );

    /* Environment entry point: unset is fine, malformed reports false. */
    ::unsetenv( "RAPIDGZIP_FAULTS" );
    REQUIRE( failsafe::configureFromEnvironment() );
    ::setenv( "RAPIDGZIP_FAULTS", "chunk.decode:notarate", 1 );
    REQUIRE( !failsafe::configureFromEnvironment() );
    ::setenv( "RAPIDGZIP_FAULTS", "io.read:0.25:11", 1 );
    REQUIRE( failsafe::configureFromEnvironment() );
    REQUIRE( failsafe::armed( FaultPoint::IO_READ ) );
    ::unsetenv( "RAPIDGZIP_FAULTS" );
    failsafe::disarmAll();
}

/* --- deterministic FileReader faults ------------------------------------ */

void
testFaultyFileReaderSchedules()
{
    std::vector<std::uint8_t> data( 64 * KiB );
    for ( std::size_t i = 0; i < data.size(); ++i ) {
        data[i] = static_cast<std::uint8_t>( i * 131 );
    }

    /* Every 3rd pread throws on schedule, across clones. */
    {
        FaultyFileReader::Behavior behavior;
        behavior.failEveryN = 3;
        FaultyFileReader reader( std::make_unique<MemoryFileReader>( data ), behavior );
        const auto clone = reader.clone();
        std::vector<std::uint8_t> buffer( 128 );
        std::size_t thrown = 0;
        for ( int call = 1; call <= 12; ++call ) {
            auto& source = ( call % 2 == 0 ) ? *clone : reader;
            try {
                REQUIRE( source.pread( buffer.data(), buffer.size(), 0 ) == buffer.size() );
            } catch ( const FileIoError& ) {
                ++thrown;
            }
        }
        REQUIRE( thrown == 4 );  /* calls 3, 6, 9, 12 */
        REQUIRE( reader.callCount() == 12 );
        REQUIRE( reader.faultCount() == 4 );
    }

    /* Short reads heal through preadExactly: full size, right bytes. */
    {
        FaultyFileReader::Behavior behavior;
        behavior.shortReadEveryN = 2;
        FaultyFileReader reader( std::make_unique<MemoryFileReader>( data ), behavior );
        std::vector<std::uint8_t> buffer( 256 );
        for ( std::size_t offset = 0; offset < 4096; offset += 256 ) {
            preadExactly( reader, buffer.data(), buffer.size(), offset );
            REQUIRE( std::memcmp( buffer.data(), data.data() + offset, buffer.size() ) == 0 );
        }
        REQUIRE( reader.faultCount() > 0 );
    }

    /* The fault budget models a healing device: after maxFaults, clean. */
    {
        FaultyFileReader::Behavior behavior;
        behavior.failEveryN = 1;
        behavior.maxFaults = 2;
        FaultyFileReader reader( std::make_unique<MemoryFileReader>( data ), behavior );
        std::vector<std::uint8_t> buffer( 64 );
        REQUIRE_THROWS_AS( (void)reader.pread( buffer.data(), buffer.size(), 0 ), FileIoError );
        REQUIRE_THROWS_AS( (void)reader.pread( buffer.data(), buffer.size(), 0 ), FileIoError );
        for ( int i = 0; i < 8; ++i ) {
            REQUIRE( reader.pread( buffer.data(), buffer.size(), 0 ) == buffer.size() );
        }
        REQUIRE( reader.faultCount() == 2 );
    }
}

/* --- chunk-decode isolation --------------------------------------------- */

void
testChunkDecodeRetryAndRecovery()
{
    failsafe::disarmAll();
    telemetry::setMetricsEnabled( true );

    const auto data = workloads::base64Data( 1 * MiB, 17 );
    const auto file = compressPigzLike( data, 6, 64 * KiB );

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 64 * KiB;

    std::vector<std::uint8_t> decoded( data.size() );

    /* Every decode fails permanently on a FRESH reader (nothing cached
     * yet, so every chunk really decodes): the read throws instead of
     * hanging or fabricating bytes, and the failure is counted. */
    auto reader = formats::makeDecompressor(
        std::make_unique<MemoryFileReader>( file ), configuration );
    failsafe::configure( FaultPoint::CHUNK_DECODE, 1.0, /* seed */ 5 );
    bool threw = false;
    try {
        (void)reader->readAt( 0, decoded.data(), decoded.size() );
    } catch ( const std::exception& ) {
        threw = true;
    }
    REQUIRE( threw );
    REQUIRE( failsafe::injectionCount( FaultPoint::CHUNK_DECODE ) > 0 );

    /* Retries and permanent failures surfaced through telemetry. */
    const auto rendered = telemetry::Registry::instance().renderPrometheus();
    REQUIRE( rendered.find( "rapidgzip_chunk_decode_retries_total" ) != std::string::npos );
    REQUIRE( rendered.find( "rapidgzip_chunk_decode_failures_total" ) != std::string::npos );

    /* Poisoned futures are evicted: the SAME reader heals once the fault
     * clears — no restart, no stale failed chunk, no cached garbage. */
    failsafe::disarmAll();
    std::fill( decoded.begin(), decoded.end(), 0 );
    REQUIRE( reader->readAt( 0, decoded.data(), decoded.size() ) == data.size() );
    REQUIRE( decoded == data );

    /* Transient faults (one in five attempts) are absorbed by the bounded
     * in-place retry: reads stay byte-exact. Each round opens a fresh
     * reader so the chunks decode again instead of replaying the healthy
     * cache. With three attempts per chunk a hard failure needs three
     * consecutive fires (p = 0.8 %); accept the rare typed error, never
     * wrong bytes. */
    failsafe::configure( FaultPoint::CHUNK_DECODE, 0.2, /* seed */ 23 );
    for ( int round = 0; round < 3; ++round ) {
        auto transientReader = formats::makeDecompressor(
            std::make_unique<MemoryFileReader>( file ), configuration );
        std::fill( decoded.begin(), decoded.end(), 0 );
        try {
            REQUIRE( transientReader->readAt( 0, decoded.data(), decoded.size() ) == data.size() );
            REQUIRE( decoded == data );
        } catch ( const std::exception& ) {
            /* acceptable unlucky streak; recovery is re-proven below */
        }
    }
    failsafe::disarmAll();
    std::fill( decoded.begin(), decoded.end(), 0 );
    REQUIRE( reader->readAt( 0, decoded.data(), decoded.size() ) == data.size() );
    REQUIRE( decoded == data );

    telemetry::setMetricsEnabled( false );
}

void
testCacheNeverStoresFailures()
{
    LruChunkCache cache( 4 * MiB );
    const ChunkCacheKey key{ 77, 3 };

    REQUIRE_THROWS_AS(
        (void)cache.getOrDecode( key, [] () -> ChunkCache::ChunkDataPtr {
            throw failsafe::FaultInjectedError( "decode" );
        } ),
        failsafe::FaultInjectedError );
    REQUIRE( cache.get( key ) == nullptr );

    const auto decoded = cache.getOrDecode( key, [] () {
        auto chunk = std::make_shared<DecodedChunk>();
        chunk->data.assign( 512, 0xAB );
        return chunk;
    } );
    REQUIRE( decoded != nullptr );
    REQUIRE( cache.get( key ) != nullptr );
}

/* --- decode campaign over every backend --------------------------------- */

[[nodiscard]] std::string
makeTempDirectory()
{
    char templatePath[] = "/tmp/rapidgzip-failsafe-test-XXXXXX";
    const char* path = ::mkdtemp( templatePath );
    REQUIRE( path != nullptr );
    return path;
}

void
writeFile( const std::string& path, const std::vector<std::uint8_t>& bytes )
{
    std::FILE* file = std::fopen( path.c_str(), "wb" );
    REQUIRE( file != nullptr );
    REQUIRE( std::fwrite( bytes.data(), 1, bytes.size(), file ) == bytes.size() );
    REQUIRE( std::fclose( file ) == 0 );
}

void
testDecodeCampaign()
{
    failsafe::disarmAll();
    const auto directory = makeTempDirectory();

    struct Corpus
    {
        std::string path;
        std::vector<std::uint8_t> data;
    };
    std::vector<Corpus> corpora;

    {
        const auto data = workloads::base64Data( 768 * KiB, 31 );
        writeFile( directory + "/campaign.gz", compressPigzLike( data, 6, 64 * KiB ) );
        corpora.push_back( { directory + "/campaign.gz", data } );
    }
    {
        const auto data = workloads::silesiaLikeData( 384 * KiB, 32 );
        writeFile( directory + "/campaign.lz4",
                   formats::writeLz4( data, formats::Lz4Writer::BlockMaxSize::KIB64 ) );
        corpora.push_back( { directory + "/campaign.lz4", data } );
    }
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
    {
        const auto data = workloads::base64Data( 384 * KiB, 33 );
        writeFile( directory + "/campaign.zst", formats::writeZstdSeekable( data, 3, 64 * KiB ) );
        corpora.push_back( { directory + "/campaign.zst", data } );
    }
#endif
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
    {
        const auto data = workloads::silesiaLikeData( 384 * KiB, 34 );
        writeFile( directory + "/campaign.bz2", formats::writeBzip2( data, 1 ) );
        corpora.push_back( { directory + "/campaign.bz2", data } );
    }
#endif

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 64 * KiB;

    constexpr double RATES[] = { 0.01, 0.05, 0.10 };
    std::size_t successes = 0;
    std::size_t typedFailures = 0;

    for ( const auto& corpus : corpora ) {
        for ( const auto rate : RATES ) {
            for ( std::uint64_t trial = 0; trial < 3; ++trial ) {
                /* Fresh seeds per trial so the campaign explores distinct
                 * fault schedules while staying reproducible. */
                const auto seed = static_cast<std::uint64_t>( rate * 1000 ) * 1000 + trial;
                failsafe::configure( FaultPoint::IO_READ, rate, seed );
                failsafe::configure( FaultPoint::CHUNK_DECODE, rate, seed + 1 );
                failsafe::configure( FaultPoint::ALLOC, rate / 4, seed + 2 );
                try {
                    auto reader = formats::openArchive( corpus.path, configuration );
                    std::vector<std::uint8_t> decoded( corpus.data.size() );
                    const auto got = reader->readAt( 0, decoded.data(), decoded.size() );
                    /* Success must mean byte-exact success — a fault may
                     * abort a read, never silently corrupt it. */
                    REQUIRE( got == corpus.data.size() );
                    REQUIRE( decoded == corpus.data );
                    ++successes;
                } catch ( const std::exception& ) {
                    ++typedFailures;  /* typed and contained — acceptable */
                }
                failsafe::disarmAll();
            }
        }

        /* After every campaign the archive reads back clean: faults left
         * no persistent damage (no sidecar, no cache, no global state). */
        auto reader = formats::openArchive( corpus.path, configuration );
        std::vector<std::uint8_t> decoded( corpus.data.size() );
        REQUIRE( reader->readAt( 0, decoded.data(), decoded.size() ) == corpus.data.size() );
        REQUIRE( decoded == corpus.data );
    }

    /* The campaign must have actually exercised the probes, and the
     * low-rate runs mostly succeed (transient-retry absorbs 1 % rates). */
    REQUIRE( failsafe::probeCount( FaultPoint::IO_READ ) > 0 );
    REQUIRE( failsafe::probeCount( FaultPoint::CHUNK_DECODE ) > 0 );
    REQUIRE( successes + typedFailures == corpora.size() * 3 * 3 );
    REQUIRE( successes > 0 );
}

/* --- loopback serve campaign -------------------------------------------- */

struct ClientResponse
{
    int status{ 0 };
    std::map<std::string, std::string> headers;
    std::string body;
};

/** Minimal blocking HTTP/1.1 client (EINTR-robust reads). */
class HttpClient
{
public:
    explicit HttpClient( std::uint16_t port )
    {
        m_fd = ::socket( AF_INET, SOCK_STREAM, 0 );
        REQUIRE( m_fd >= 0 );
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons( port );
        REQUIRE( ::inet_pton( AF_INET, "127.0.0.1", &address.sin_addr ) == 1 );
        REQUIRE( ::connect( m_fd, reinterpret_cast<sockaddr*>( &address ),
                            sizeof( address ) ) == 0 );
    }

    ~HttpClient()
    {
        if ( m_fd >= 0 ) {
            ::close( m_fd );
        }
    }

    HttpClient( const HttpClient& ) = delete;
    HttpClient& operator=( const HttpClient& ) = delete;

    void
    send( const std::string& raw ) const
    {
        std::size_t sent = 0;
        while ( sent < raw.size() ) {
            const auto got = ::send( m_fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL );
            if ( ( got < 0 ) && ( errno == EINTR ) ) {
                continue;
            }
            REQUIRE( got > 0 );
            sent += static_cast<std::size_t>( got );
        }
    }

    [[nodiscard]] bool
    readResponse( ClientResponse& response, bool expectBody = true )
    {
        std::size_t headerEnd = std::string::npos;
        while ( ( headerEnd = m_buffer.find( "\r\n\r\n" ) ) == std::string::npos ) {
            if ( !fill() ) {
                return false;
            }
        }
        response = ClientResponse{};
        const auto head = m_buffer.substr( 0, headerEnd );
        const auto statusBegin = head.find( ' ' );
        REQUIRE( statusBegin != std::string::npos );
        response.status = std::atoi( head.c_str() + statusBegin + 1 );
        std::size_t lineBegin = head.find( "\r\n" );
        while ( ( lineBegin != std::string::npos ) && ( lineBegin + 2 < head.size() ) ) {
            lineBegin += 2;
            auto lineEnd = head.find( "\r\n", lineBegin );
            if ( lineEnd == std::string::npos ) {
                lineEnd = head.size();
            }
            const auto line = head.substr( lineBegin, lineEnd - lineBegin );
            const auto colon = line.find( ':' );
            if ( colon != std::string::npos ) {
                auto name = line.substr( 0, colon );
                std::transform( name.begin(), name.end(), name.begin(),
                                [] ( unsigned char c ) { return std::tolower( c ); } );
                auto value = line.substr( colon + 1 );
                const auto valueBegin = value.find_first_not_of( ' ' );
                response.headers[name] = valueBegin == std::string::npos
                                         ? std::string{} : value.substr( valueBegin );
            }
            lineBegin = lineEnd;
        }

        std::size_t contentLength = 0;
        if ( const auto match = response.headers.find( "content-length" );
             match != response.headers.end() ) {
            contentLength = static_cast<std::size_t>( std::atoll( match->second.c_str() ) );
        }
        const auto bodyLength = expectBody ? contentLength : 0;
        while ( m_buffer.size() < headerEnd + 4 + bodyLength ) {
            if ( !fill() ) {
                return false;
            }
        }
        response.body = m_buffer.substr( headerEnd + 4, bodyLength );
        m_buffer.erase( 0, headerEnd + 4 + bodyLength );
        return true;
    }

private:
    [[nodiscard]] bool
    fill()
    {
        while ( true ) {
            char chunk[16 * 1024];
            const auto got = ::recv( m_fd, chunk, sizeof( chunk ), 0 );
            if ( got > 0 ) {
                m_buffer.append( chunk, static_cast<std::size_t>( got ) );
                return true;
            }
            if ( ( got < 0 ) && ( errno == EINTR ) ) {
                continue;
            }
            return false;
        }
    }

    int m_fd{ -1 };
    std::string m_buffer;
};

[[nodiscard]] ClientResponse
simpleRequest( std::uint16_t port,
               const std::string& method,
               const std::string& target,
               const std::string& extraHeaders = {} )
{
    HttpClient client( port );
    client.send( method + " " + target + " HTTP/1.1\r\nHost: t\r\n" + extraHeaders
                 + "Connection: close\r\n\r\n" );
    ClientResponse response;
    REQUIRE( client.readResponse( response, /* expectBody */ method != "HEAD" ) );
    return response;
}

void
testServeFaultCampaign()
{
    std::signal( SIGPIPE, SIG_IGN );
    failsafe::disarmAll();

    const auto directory = makeTempDirectory();
    const auto data = workloads::base64Data( 256 * KiB, 41 );
    writeFile( directory + "/small.gz", compressPigzLike( data, 6, 64 * KiB ) );

    serve::ServerConfiguration configuration;
    configuration.port = 0;
    configuration.rootDirectory = directory;
    configuration.workerCount = 3;
    configuration.cacheBytes = 32 * MiB;
    configuration.readerConfiguration.parallelism = 2;
    configuration.readerConfiguration.chunkSizeBytes = 64 * KiB;

    serve::Server server( std::move( configuration ) );
    server.start();
    const auto port = server.port();
    REQUIRE( port != 0 );
    std::thread loop( [&server] () { server.run(); } );

    /* Flaky socket writes plus occasional decode faults: every response
     * must still be either a byte-exact 206 or a clean 500 — truncated or
     * corrupted bodies and hangs are the failure modes under test. */
    failsafe::configure( FaultPoint::SERVE_WRITE, 0.10, /* seed */ 51 );
    failsafe::configure( FaultPoint::CHUNK_DECODE, 0.02, /* seed */ 52 );

    constexpr std::size_t THREADS = 3;
    constexpr std::size_t REQUESTS = 6;
    constexpr std::size_t SLICE = 4096;
    std::atomic<std::size_t> ok{ 0 };
    std::atomic<std::size_t> failed{ 0 };
    std::atomic<std::size_t> invalid{ 0 };

    std::vector<std::thread> clients;
    for ( std::size_t t = 0; t < THREADS; ++t ) {
        clients.emplace_back( [&, t] () {
            for ( std::size_t i = 0; i < REQUESTS; ++i ) {
                const auto offset = ( ( t * 131 + i * 37 ) * 4099 ) % ( data.size() - SLICE );
                const auto range = "Range: bytes=" + std::to_string( offset ) + "-"
                                   + std::to_string( offset + SLICE - 1 ) + "\r\n";
                const auto response = simpleRequest( port, "GET", "/small.gz", range );
                if ( ( response.status == 206 )
                     && ( response.body.size() == SLICE )
                     && ( std::memcmp( response.body.data(),
                                       data.data() + offset, SLICE ) == 0 ) ) {
                    ++ok;
                } else if ( response.status == 500 ) {
                    ++failed;
                } else {
                    ++invalid;
                }
            }
        } );
    }
    for ( auto& client : clients ) {
        client.join();
    }

    REQUIRE( invalid.load() == 0 );
    REQUIRE( ok.load() + failed.load() == THREADS * REQUESTS );
    REQUIRE( ok.load() > 0 );
    REQUIRE( failsafe::probeCount( FaultPoint::SERVE_WRITE ) > 0 );

    /* Disarmed, the same archive serves byte-exact again. */
    failsafe::disarmAll();
    const auto clean = simpleRequest( port, "GET", "/small.gz", "Range: bytes=0-4095\r\n" );
    REQUIRE( clean.status == 206 );
    REQUIRE( clean.body.size() == 4096 );
    REQUIRE( std::memcmp( clean.body.data(), data.data(), 4096 ) == 0 );

    server.stop();
    loop.join();
}

void
testServeBusyAndGracefulDrain()
{
    std::signal( SIGPIPE, SIG_IGN );
    failsafe::disarmAll();

    const auto directory = makeTempDirectory();
    const auto data = workloads::base64Data( 256 * KiB, 43 );
    writeFile( directory + "/small.gz", compressPigzLike( data, 6, 64 * KiB ) );

    serve::ServerConfiguration configuration;
    configuration.port = 0;
    configuration.rootDirectory = directory;
    configuration.workerCount = 2;
    configuration.cacheBytes = 32 * MiB;
    configuration.maxConsumersPerArchive = 1;
    configuration.drainTimeoutMs = 5'000;
    configuration.readerConfiguration.parallelism = 2;
    configuration.readerConfiguration.chunkSizeBytes = 64 * KiB;

    serve::Server server( std::move( configuration ) );
    server.start();
    const auto port = server.port();
    REQUIRE( port != 0 );
    std::thread loop( [&server] () { server.run(); } );

    /* Per-archive admission: a request that is slowly failing its decode
     * (every attempt injected, 100 ms latency each) holds the archive's
     * single consumer slot, so a concurrent request gets the immediate
     * 503 + Retry-After instead of queueing behind it. */
    failsafe::configure( FaultPoint::CHUNK_DECODE, 1.0, /* seed */ 61, /* latency */ 100'000 );
    std::thread slow( [&] () {
        const auto response = simpleRequest( port, "GET", "/small.gz" );
        REQUIRE( response.status == 500 );
    } );
    std::this_thread::sleep_for( std::chrono::milliseconds( 60 ) );
    const auto busy = simpleRequest( port, "GET", "/small.gz" );
    REQUIRE( busy.status == 503 );
    REQUIRE( busy.headers.count( "retry-after" ) == 1 );
    slow.join();
    failsafe::disarmAll();

    const auto metrics = simpleRequest( port, "GET", "/metrics" );
    REQUIRE( metrics.status == 200 );
    REQUIRE( metrics.body.find( "rapidgzip_serve_rejected_total{reason=\"archive_busy\"}" )
             != std::string::npos );

    /* Graceful drain, deterministically: pool.task latency parks both
     * requests before their handlers run, drain begins in that window, so
     * the readiness probe answers 503 "draining" while the in-flight data
     * request still completes byte-exact. */
    failsafe::configure( FaultPoint::POOL_TASK, 1.0, /* seed */ 62, /* latency */ 200'000 );

    HttpClient readyProbe( port );
    readyProbe.send( "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n" );
    HttpClient inflight( port );
    inflight.send( "GET /small.gz HTTP/1.1\r\nHost: t\r\nRange: bytes=1000-1063\r\n\r\n" );

    std::this_thread::sleep_for( std::chrono::milliseconds( 60 ) );
    server.beginDrain();
    REQUIRE( server.draining() );

    ClientResponse ready;
    REQUIRE( readyProbe.readResponse( ready ) );
    REQUIRE( ready.status == 503 );
    REQUIRE( ready.body == "draining\n" );

    ClientResponse ranged;
    REQUIRE( inflight.readResponse( ranged ) );
    REQUIRE( ranged.status == 206 );
    REQUIRE( ranged.body.size() == 64 );
    REQUIRE( std::memcmp( ranged.body.data(), data.data() + 1000, 64 ) == 0 );

    /* Drain wound every connection down: run() returns on its own. */
    loop.join();
    failsafe::disarmAll();
}

}  // namespace

int
main()
{
    testFrameworkBasics();
    testSpecParsing();
    testFaultyFileReaderSchedules();
    testChunkDecodeRetryAndRecovery();
    testCacheNeverStoresFailures();
    testDecodeCampaign();
    testServeFaultCampaign();
    testServeBusyAndGracefulDrain();
    return rapidgzip::test::finish( "testFailsafe" );
}
