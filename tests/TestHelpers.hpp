#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

/**
 * Minimal assertion harness: no external test framework is available in the
 * build image, and ctest only needs exit codes. REQUIRE prints the failing
 * expression with its location and exits non-zero; the final summary line
 * makes ctest logs readable.
 */

namespace rapidgzip::test {

inline int g_checksRun = 0;

inline void
require( bool condition, const char* expression, const char* file, int line )
{
    ++g_checksRun;
    if ( !condition ) {
        std::fprintf( stderr, "FAILED: %s at %s:%d\n", expression, file, line );
        std::exit( 1 );
    }
}

inline int
finish( const char* testName )
{
    std::printf( "PASSED %s (%d checks)\n", testName, g_checksRun );
    return 0;
}

}  // namespace rapidgzip::test

#define REQUIRE( expression ) \
    ::rapidgzip::test::require( static_cast<bool>( expression ), #expression, __FILE__, __LINE__ )

#define REQUIRE_THROWS_AS( statement, ExceptionType ) \
    do { \
        bool caughtExpected_ = false; \
        try { \
            statement; \
        } catch ( const ExceptionType& ) { \
            caughtExpected_ = true; \
        } catch ( ... ) { \
        } \
        ::rapidgzip::test::require( caughtExpected_, "throws " #ExceptionType ": " #statement, \
                                    __FILE__, __LINE__ ); \
    } while ( false )
