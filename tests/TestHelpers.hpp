#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

/**
 * Minimal assertion harness: no external test framework is available in the
 * build image, and ctest only needs exit codes. REQUIRE prints the failing
 * expression with its location and exits non-zero; the final summary line
 * makes ctest logs readable. The check counter is atomic: several tests
 * REQUIRE from concurrent client threads.
 */

namespace rapidgzip::test {

inline std::atomic<int> g_checksRun{ 0 };

inline void
require( bool condition, const char* expression, const char* file, int line )
{
    g_checksRun.fetch_add( 1, std::memory_order_relaxed );
    if ( !condition ) {
        std::fprintf( stderr, "FAILED: %s at %s:%d\n", expression, file, line );
        std::exit( 1 );
    }
}

inline int
finish( const char* testName )
{
    std::printf( "PASSED %s (%d checks)\n", testName, g_checksRun.load() );
    return 0;
}

}  // namespace rapidgzip::test

#define REQUIRE( expression ) \
    ::rapidgzip::test::require( static_cast<bool>( expression ), #expression, __FILE__, __LINE__ )

#define REQUIRE_THROWS_AS( statement, ExceptionType ) \
    do { \
        bool caughtExpected_ = false; \
        try { \
            statement; \
        } catch ( const ExceptionType& ) { \
            caughtExpected_ = true; \
        } catch ( ... ) { \
        } \
        ::rapidgzip::test::require( caughtExpected_, "throws " #ExceptionType ": " #statement, \
                                    __FILE__, __LINE__ ); \
    } while ( false )
