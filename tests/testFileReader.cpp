/**
 * io layer: MemoryFileReader and StandardFileReader contracts — read/seek/
 * tell/pread/clone, cursor independence of clones, EOF behavior.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/MemoryFileReader.hpp"
#include "io/StandardFileReader.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

std::vector<std::uint8_t>
pattern( std::size_t size )
{
    std::vector<std::uint8_t> data( size );
    for ( std::size_t i = 0; i < size; ++i ) {
        data[i] = static_cast<std::uint8_t>( ( i * 7 + 3 ) & 0xFFU );
    }
    return data;
}

void
exerciseReader( FileReader& reader, const std::vector<std::uint8_t>& expected )
{
    REQUIRE( reader.size() == expected.size() );
    REQUIRE( reader.tell() == 0 );
    REQUIRE( !reader.eof() );

    /* Sequential read in odd-sized steps. */
    std::vector<std::uint8_t> sequential;
    std::uint8_t buffer[77];
    while ( true ) {
        const auto got = reader.read( buffer, sizeof( buffer ) );
        if ( got == 0 ) {
            break;
        }
        sequential.insert( sequential.end(), buffer, buffer + got );
    }
    REQUIRE( sequential == expected );
    REQUIRE( reader.eof() );
    REQUIRE( reader.tell() == expected.size() );

    /* seek + read re-reads the same bytes. */
    reader.seek( 100 );
    REQUIRE( reader.tell() == 100 );
    std::uint8_t byte = 0;
    REQUIRE( reader.read( &byte, 1 ) == 1 );
    REQUIRE( byte == expected[100] );

    /* pread does not move the cursor. */
    const auto cursorBefore = reader.tell();
    std::uint8_t window[10];
    REQUIRE( reader.pread( window, sizeof( window ), 200 ) == sizeof( window ) );
    REQUIRE( std::memcmp( window, expected.data() + 200, sizeof( window ) ) == 0 );
    REQUIRE( reader.tell() == cursorBefore );

    /* pread at and past EOF. */
    REQUIRE( reader.pread( window, sizeof( window ), expected.size() ) == 0 );
    REQUIRE( reader.pread( window, sizeof( window ), expected.size() - 3 ) == 3 );

    /* Clones have independent cursors over the same bytes. */
    auto clone = reader.clone();
    REQUIRE( clone->tell() == 0 );
    reader.seek( 500 );
    REQUIRE( clone->tell() == 0 );
    REQUIRE( clone->read( window, 4 ) == 4 );
    REQUIRE( std::memcmp( window, expected.data(), 4 ) == 0 );
    REQUIRE( reader.tell() == 500 );

    /* Out-of-range seek clamps to the size. */
    reader.seek( expected.size() + 1000 );
    REQUIRE( reader.tell() == expected.size() );
    REQUIRE( reader.read( window, 1 ) == 0 );
}

}  // namespace

int
main()
{
    const auto expected = pattern( 1000 );

    {
        MemoryFileReader reader( expected );
        exerciseReader( reader, expected );
        REQUIRE( reader.view().size() == expected.size() );
    }

    {
        /* Clone outlives the original. */
        std::unique_ptr<FileReader> survivor;
        {
            MemoryFileReader reader( expected );
            survivor = reader.clone();
        }
        std::uint8_t byte = 0;
        REQUIRE( survivor->pread( &byte, 1, 42 ) == 1 );
        REQUIRE( byte == expected[42] );
    }

    {
        const std::string path = "testFileReader.tmp";
        std::FILE* file = std::fopen( path.c_str(), "wb" );
        REQUIRE( file != nullptr );
        REQUIRE( std::fwrite( expected.data(), 1, expected.size(), file ) == expected.size() );
        std::fclose( file );

        StandardFileReader reader( path );
        exerciseReader( reader, expected );
        std::remove( path.c_str() );
    }

    REQUIRE_THROWS_AS( StandardFileReader( "/nonexistent/definitely/missing" ), FileIoError );

    return rapidgzip::test::finish( "testFileReader" );
}
