/**
 * workloads layer: generators are deterministic, exactly sized, and have the
 * byte-range / compressibility properties the figures and the pugz baseline
 * depend on.
 */

#include <algorithm>
#include <cstdint>

#include "gzip/ZlibCompressor.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

bool
allInPugzRange( const std::vector<std::uint8_t>& data )
{
    return std::all_of( data.begin(), data.end(),
                        [] ( std::uint8_t byte ) { return byte >= 9 && byte <= 126; } );
}

double
compressionRatio( const std::vector<std::uint8_t>& data )
{
    const auto compressed = compressGzipLike( { data.data(), data.size() }, 6 );
    return static_cast<double>( data.size() ) / static_cast<double>( compressed.size() );
}

}  // namespace

int
main()
{
    constexpr std::size_t SIZE = 2 * MiB + 777;

    /* Exact sizing and determinism across calls. */
    for ( const auto& generate : { workloads::randomData, workloads::base64Data,
                                   workloads::fastqData, workloads::silesiaLikeData } ) {
        const auto a = generate( SIZE, 0xABCDEF );
        const auto b = generate( SIZE, 0xABCDEF );
        const auto c = generate( SIZE, 0x123456 );
        REQUIRE( a.size() == SIZE );
        REQUIRE( a == b );
        REQUIRE( a != c );
    }
    REQUIRE( workloads::randomData( 0, 1 ).empty() );
    REQUIRE( workloads::randomData( 13, 1 ).size() == 13 );  /* non-word-aligned tail */

    /* base64 and fastq stay in pugz's supported ASCII range; silesia-like
     * and random data must leave it (that is what makes pugz fail Fig. 10). */
    REQUIRE( allInPugzRange( workloads::base64Data( SIZE, 1 ) ) );
    REQUIRE( allInPugzRange( workloads::fastqData( SIZE, 2 ) ) );
    REQUIRE( !allInPugzRange( workloads::silesiaLikeData( SIZE, 3 ) ) );
    REQUIRE( !allInPugzRange( workloads::randomData( SIZE, 4 ) ) );

    /* The first silesia-like chunk already contains unsupported bytes so the
     * pugz baseline fails fast like in the paper. */
    {
        const auto data = workloads::silesiaLikeData( SIZE, 0xF1A );
        const std::vector<std::uint8_t> head( data.begin(), data.begin() + 64 * KiB );
        REQUIRE( !allInPugzRange( head ) );
    }

    /* base64 lines are 76 characters + newline. */
    {
        const auto data = workloads::base64Data( 1000, 7 );
        REQUIRE( data[76] == '\n' );
        REQUIRE( data[2 * 77 - 1] == '\n' );
        REQUIRE( std::count( data.begin(), data.begin() + 76, '\n' ) == 0 );
    }

    /* fastq structure: records start with '@'. */
    {
        const auto data = workloads::fastqData( 100 * KiB, 9 );
        REQUIRE( data[0] == '@' );
        REQUIRE( std::count( data.begin(), data.end(), '@' ) > 100 );
    }

    /* Compressibility ordering: random ~1x, base64 modest, fastq/silesia higher. */
    REQUIRE( compressionRatio( workloads::randomData( SIZE, 11 ) ) < 1.01 );
    REQUIRE( compressionRatio( workloads::base64Data( SIZE, 12 ) ) > 1.2 );
    REQUIRE( compressionRatio( workloads::fastqData( SIZE, 13 ) ) > 1.5 );
    REQUIRE( compressionRatio( workloads::silesiaLikeData( SIZE, 14 ) ) > 1.5 );

    return rapidgzip::test::finish( "testDataGenerators" );
}
