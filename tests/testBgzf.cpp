/**
 * gzip layer: BgzfWriter must produce spec-conformant BGZF — gzip members
 * capped at 64 KiB carrying the BC extra field with the block size, closed
 * by the canonical EOF block — that zlib decompresses byte-identically and
 * index::tryBuildBgzfIndex can map without decoding.
 */

#include <cstring>
#include <memory>
#include <vector>

#include "gzip/BgzfWriter.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "index/BgzfIndex.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

/** Walk the BC chain; returns the number of blocks (incl. EOF block) and
 * checks every block's framing. */
std::size_t
walkBgzfBlocks( const std::vector<std::uint8_t>& file )
{
    std::size_t offset = 0;
    std::size_t blocks = 0;
    while ( offset < file.size() ) {
        REQUIRE( file.size() - offset >= 28 );
        REQUIRE( file[offset] == GZIP_MAGIC_1 );
        REQUIRE( file[offset + 1] == GZIP_MAGIC_2 );
        REQUIRE( file[offset + 2] == GZIP_CM_DEFLATE );
        REQUIRE( file[offset + 3] == gzipflag::FEXTRA );
        const auto xlen = static_cast<std::size_t>( file[offset + 10] )
                          | ( static_cast<std::size_t>( file[offset + 11] ) << 8U );
        REQUIRE( xlen == 6 );
        REQUIRE( file[offset + 12] == 'B' );
        REQUIRE( file[offset + 13] == 'C' );
        const auto blockSize = ( static_cast<std::size_t>( file[offset + 16] )
                                 | ( static_cast<std::size_t>( file[offset + 17] ) << 8U ) ) + 1;
        REQUIRE( blockSize <= 65536 );
        REQUIRE( offset + blockSize <= file.size() );
        offset += blockSize;
        ++blocks;
    }
    REQUIRE( offset == file.size() );
    return blocks;
}

}  // namespace

int
main()
{
    /* Empty input: exactly the canonical 28-byte EOF block, byte for byte
     * as the SAM/BAM specification prints it. */
    {
        const auto empty = writeBgzf( {} );
        const std::vector<std::uint8_t> eofBlock = {
            0x1F, 0x8B, 0x08, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF,
            0x06, 0x00, 0x42, 0x43, 0x02, 0x00, 0x1B, 0x00, 0x03, 0x00,
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        };
        REQUIRE( empty == eofBlock );
        REQUIRE( walkBgzfBlocks( empty ) == 1 );
        REQUIRE( decompressWithZlib( { empty.data(), empty.size() } ).empty() );
    }

    /* Round trip across levels, block framing, and multi-write chunking. */
    const auto data = workloads::silesiaLikeData( 500000, 0xB62F );
    for ( const auto level : { 0, 1, 6, 9 } ) {
        const auto compressed = writeBgzf( { data.data(), data.size() }, level );
        /* ceil(500000 / 65280) data blocks + EOF block */
        REQUIRE( walkBgzfBlocks( compressed ) == 9 );
        REQUIRE( decompressWithZlib( { compressed.data(), compressed.size() } ) == data );
        if ( level == 0 ) {
            /* Stored blocks: slight expansion, never compression. */
            REQUIRE( compressed.size() > data.size() );
        }
    }

    /* Streaming writes in odd slice sizes must produce the same framing. */
    {
        std::vector<std::uint8_t> output;
        BgzfWriter writer( output, 6 );
        std::size_t offset = 0;
        std::size_t slice = 1;
        while ( offset < data.size() ) {
            const auto take = std::min( slice, data.size() - offset );
            writer.write( data.data() + offset, take );
            offset += take;
            slice = slice * 3 + 7;
        }
        writer.finish();
        writer.finish();  /* idempotent */
        REQUIRE( output == writeBgzf( { data.data(), data.size() }, 6 ) );
    }

    /* Incompressible data stays within the 16-bit BSIZE budget. */
    {
        const auto noise = workloads::randomData( 200000, 0x0153 );
        const auto compressed = writeBgzf( { noise.data(), noise.size() }, 9 );
        REQUIRE( walkBgzfBlocks( compressed ) == 5 );
        REQUIRE( decompressWithZlib( { compressed.data(), compressed.size() } ) == noise );
    }

    /* The BC scan builds a full index without decoding. */
    {
        const auto compressed = writeBgzf( { data.data(), data.size() }, 6 );
        MemoryFileReader file( compressed );
        const auto index = index::tryBuildBgzfIndex( file, 64 * KiB );
        REQUIRE( index.has_value() );
        REQUIRE( !index->empty() );
        REQUIRE( index->checkpoints.front().uncompressedOffset == 0 );
        REQUIRE( index->uncompressedSizeBytes == data.size() );
        REQUIRE( index->compressedSizeBytes == compressed.size() );
        REQUIRE( index->windows.size() == 0 );
        for ( const auto& checkpoint : index->checkpoints ) {
            REQUIRE( checkpoint.compressedOffsetBits % 8 == 0 );
        }

        /* Non-BGZF inputs must be rejected by the full-file validation. */
        const auto gzipLike = compressGzipLike( { data.data(), data.size() }, 6 );
        MemoryFileReader gzipFile( gzipLike );
        REQUIRE( !index::tryBuildBgzfIndex( gzipFile, 64 * KiB ).has_value() );

        const auto pigzLike = compressPigzLike( { data.data(), data.size() }, 6, 64 * KiB );
        MemoryFileReader pigzFile( pigzLike );
        REQUIRE( !index::tryBuildBgzfIndex( pigzFile, 64 * KiB ).has_value() );

        auto truncated = compressed;
        truncated.resize( truncated.size() - 40 );
        MemoryFileReader truncatedFile( truncated );
        REQUIRE( !index::tryBuildBgzfIndex( truncatedFile, 64 * KiB ).has_value() );
    }

    return rapidgzip::test::finish( "testBgzf" );
}
