/**
 * core layer: ParallelGzipReader must reproduce the serial decoder's output
 * exactly — decompressAll counts, random access reads, index export/import,
 * every prefetch strategy, multi-member streams, and single-chunk files
 * without any flush markers.
 */

#include <cstring>
#include <memory>
#include <vector>

#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "telemetry/Registry.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

ChunkFetcherConfiguration
config( std::size_t parallelism, std::size_t chunkSize,
        ChunkFetcherConfiguration::Strategy strategy = ChunkFetcherConfiguration::Strategy::ADAPTIVE )
{
    ChunkFetcherConfiguration result;
    result.parallelism = parallelism;
    result.chunkSizeBytes = chunkSize;
    result.strategy = strategy;
    return result;
}

void
checkFullRead( const std::vector<std::uint8_t>& original,
               const std::vector<std::uint8_t>& compressed,
               const ChunkFetcherConfiguration& configuration )
{
    ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ), configuration );
    REQUIRE( reader.decompressAll() == original.size() );

    /* read() must return the exact bytes. */
    ParallelGzipReader byteReader( std::make_unique<MemoryFileReader>( compressed ),
                                   configuration );
    std::vector<std::uint8_t> reassembled( original.size() + 16 );
    const auto got = byteReader.read( reassembled.data(), reassembled.size() );
    reassembled.resize( got );
    REQUIRE( reassembled == original );
}

}  // namespace

int
main()
{
    const auto data = workloads::base64Data( 8 * MiB + 4321, 0xF00D );
    const auto compressed = compressPigzLike( { data.data(), data.size() }, 6, 128 * 1024 );

    /* All strategies, several parallelism/chunk-size combinations. */
    for ( const auto strategy : { ChunkFetcherConfiguration::Strategy::FIXED,
                                  ChunkFetcherConfiguration::Strategy::ADAPTIVE,
                                  ChunkFetcherConfiguration::Strategy::MULTI_STREAM } ) {
        checkFullRead( data, compressed, config( 4, 256 * 1024, strategy ) );
    }
    checkFullRead( data, compressed, config( 1, 64 * 1024 ) );
    checkFullRead( data, compressed, config( 8, 4 * MiB ) );

    /* Gzip-like stream without a single flush marker: the full-flush table
     * degenerates to one chunk, but decompressAll routes through the
     * two-stage pipeline and decodes in parallel anyway. Verify the actual
     * BYTES against the serial zlib decode (the chunk fetcher's CRC check
     * against the footer is cross-validated by the same comparison). */
    {
        const auto plain = compressGzipLike( { data.data(), data.size() }, 6 );
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( plain ),
                                   config( 4, 1 * MiB ) );
        REQUIRE( reader.chunkCount() == 1 );
        REQUIRE( reader.decompressAll() == data.size() );

        const auto serial = decompressWithZlib( { plain.data(), plain.size() } );
        std::vector<std::uint8_t> parallel;
        MemoryFileReader file( plain );
        const auto deflateStart = parseGzipHeader( { plain.data(), plain.size() } );
        telemetry::setMetricsEnabled( true );
        const auto redecodesBefore =
            telemetry::Registry::instance().counterTotal( "rapidgzip_chunk_redecodes_total" );
        const auto member = GzipChunkFetcher::decompressMember( file, deflateStart,
                                                                /* parallelism */ 4,
                                                                /* chunk size */ 1 * MiB,
                                                                &parallel );
        telemetry::setMetricsEnabled( false );
        REQUIRE( member.chunkCount > 1 );
        /* Most chunks must come from the SPECULATIVE guessed-offset decode —
         * if the block finders regressed, every chunk would silently fall
         * back to the sequential re-decode and parallelism would be dead. */
        REQUIRE( member.redecodedChunks < member.chunkCount / 2 );
        /* The mis-stitch telemetry counter must agree with the member's own
         * tally — the live counter is what /metrics and dashboards see. */
        REQUIRE( telemetry::Registry::instance().counterTotal( "rapidgzip_chunk_redecodes_total" )
                 == redecodesBefore + member.redecodedChunks );
        REQUIRE( parallel == serial );
        REQUIRE( parallel == data );

        /* A flipped byte must be caught by the footer verification, not
         * returned as silently corrupt output. */
        auto corrupted = plain;
        corrupted[corrupted.size() / 2] ^= 0x10U;
        ParallelGzipReader corruptedReader( std::make_unique<MemoryFileReader>( corrupted ),
                                            config( 4, 1 * MiB ) );
        REQUIRE_THROWS_AS( (void)corruptedReader.decompressAll(), RapidgzipError );
    }

    /* Full-flush archives decode every chunk at an EXACT known offset, so
     * the mis-stitch re-decode path must never trigger: its telemetry
     * counter has to stay flat across a complete read. A drift here means
     * the chunk table or the stitcher regressed into speculative fallbacks
     * on the easy case. */
    {
        telemetry::setMetricsEnabled( true );
        const auto redecodesBefore =
            telemetry::Registry::instance().counterTotal( "rapidgzip_chunk_redecodes_total" );
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ),
                                   config( 4, 256 * 1024 ) );
        REQUIRE( reader.decompressAll() == data.size() );
        telemetry::setMetricsEnabled( false );
        REQUIRE( telemetry::Registry::instance().counterTotal( "rapidgzip_chunk_redecodes_total" )
                 == redecodesBefore );
    }

    /* Random access: seek + read against the reference data. */
    {
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ),
                                   config( 4, 256 * 1024 ) );
        REQUIRE( reader.size() == data.size() );

        Xorshift64 random( 0xACCE55 );
        std::vector<std::uint8_t> buffer( 70000 );
        for ( int i = 0; i < 25; ++i ) {
            const auto offset = random.below( data.size() );
            const auto length = 1 + random.below( buffer.size() );
            reader.seek( offset );
            REQUIRE( reader.tell() == offset );
            const auto got = reader.read( buffer.data(), length );
            REQUIRE( got == std::min( length, data.size() - offset ) );
            REQUIRE( std::memcmp( buffer.data(), data.data() + offset, got ) == 0 );
        }

        /* Reads at and past the end. */
        reader.seek( data.size() );
        REQUIRE( reader.read( buffer.data(), buffer.size() ) == 0 );
        reader.seek( data.size() + 12345 );
        REQUIRE( reader.read( buffer.data(), buffer.size() ) == 0 );

        /* Sequential reads after a seek continue from tell(). */
        reader.seek( 1000 );
        REQUIRE( reader.read( buffer.data(), 100 ) == 100 );
        REQUIRE( reader.tell() == 1100 );
        REQUIRE( reader.read( buffer.data(), 100 ) == 100 );
        REQUIRE( std::memcmp( buffer.data(), data.data() + 1100, 100 ) == 0 );
    }

    /* Index export/import: same chunking, same bytes, discovery skipped. */
    {
        GzipIndex index;
        {
            ParallelGzipReader builder( std::make_unique<MemoryFileReader>( compressed ),
                                        config( 4, 256 * 1024 ) );
            index = builder.exportIndex();
        }
        REQUIRE( !index.empty() );
        REQUIRE( index.uncompressedSizeBytes == data.size() );
        REQUIRE( index.compressedSizeBytes == compressed.size() );
        REQUIRE( index.checkpoints.front().uncompressedOffset == 0 );
        /* Full-flush checkpoints are restart points: byte-aligned, windowless. */
        for ( const auto& checkpoint : index.checkpoints ) {
            REQUIRE( checkpoint.compressedOffsetBits % 8 == 0 );
        }
        REQUIRE( index.windows.size() == 0 );

        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ),
                                   config( 4, 256 * 1024 ) );
        reader.importIndex( index );
        REQUIRE( reader.decompressAll() == data.size() );

        ParallelGzipReader byteReader( std::make_unique<MemoryFileReader>( compressed ),
                                       config( 4, 256 * 1024 ) );
        byteReader.importIndex( index );
        std::vector<std::uint8_t> buffer( 50000 );
        byteReader.seek( data.size() / 2 );
        const auto got = byteReader.read( buffer.data(), buffer.size() );
        REQUIRE( got == buffer.size() );
        REQUIRE( std::memcmp( buffer.data(), data.data() + data.size() / 2, got ) == 0 );

        /* Importing a mismatched or inconsistent index is rejected. */
        GzipIndex wrong = index;
        wrong.compressedSizeBytes += 1;
        ParallelGzipReader rejecting( std::make_unique<MemoryFileReader>( compressed ),
                                      config( 2, 256 * 1024 ) );
        REQUIRE_THROWS_AS( rejecting.importIndex( wrong ), RapidgzipError );

        GzipIndex skewed = index;
        skewed.checkpoints.front().uncompressedOffset = 1;  /* must start at 0 */
        REQUIRE_THROWS_AS( rejecting.importIndex( skewed ), RapidgzipError );

        if ( index.checkpoints.size() > 1 ) {
            GzipIndex unsorted = index;
            unsorted.checkpoints[1].compressedOffsetBits =
                unsorted.checkpoints[0].compressedOffsetBits;  /* not increasing */
            REQUIRE_THROWS_AS( rejecting.importIndex( unsorted ), RapidgzipError );
        }
    }

    /* Trailing padding after the footer (tar/tape style) must not break
     * verification: the footer sits after the final Deflate byte, not at
     * the file end. */
    {
        auto padded = compressed;
        padded.insert( padded.end(), 512, 0 );
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( padded ),
                                   config( 4, 256 * 1024 ) );
        REQUIRE( reader.decompressAll() == data.size() );
    }

    /* Truncated streams must raise, not silently return a partial count —
     * on both the decompressAll and the read/size (offset discovery) path. */
    {
        auto truncated = compressed;
        truncated.resize( truncated.size() / 2 );
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( truncated ),
                                   config( 4, 256 * 1024 ) );
        REQUIRE_THROWS_AS( (void)reader.decompressAll(), RapidgzipError );

        ParallelGzipReader sizeReader( std::make_unique<MemoryFileReader>( truncated ),
                                       config( 4, 256 * 1024 ) );
        REQUIRE_THROWS_AS( (void)sizeReader.size(), RapidgzipError );
    }

    /* Fetcher statistics: a sequential sweep must mostly hit prefetches. */
    {
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ),
                                   config( 4, 256 * 1024,
                                           ChunkFetcherConfiguration::Strategy::FIXED ) );
        REQUIRE( reader.decompressAll() == data.size() );
        const auto& stats = reader.fetcherStatistics();
        REQUIRE( stats.prefetchDispatched > 0 );
        REQUIRE( stats.prefetchHits > 0 );
        REQUIRE( stats.onDemandDecodes >= 1 );
        REQUIRE( stats.prefetchHits + stats.onDemandDecodes >= reader.chunkCount() );
    }

    /* Multi-member stream (concatenated pigz members). */
    {
        const auto extra = workloads::fastqData( 2 * MiB, 0xFA57 );
        auto concatenated = compressPigzLike( { data.data(), data.size() }, 6, 256 * 1024 );
        const auto second = compressPigzLike( { extra.data(), extra.size() }, 6, 256 * 1024 );
        concatenated.insert( concatenated.end(), second.begin(), second.end() );

        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( concatenated ),
                                   config( 4, 512 * 1024 ) );
        REQUIRE( reader.decompressAll() == data.size() + extra.size() );

        auto expected = data;
        expected.insert( expected.end(), extra.begin(), extra.end() );
        ParallelGzipReader byteReader( std::make_unique<MemoryFileReader>( concatenated ),
                                       config( 4, 512 * 1024 ) );
        std::vector<std::uint8_t> reassembled( expected.size() );
        REQUIRE( byteReader.read( reassembled.data(), reassembled.size() ) == expected.size() );
        REQUIRE( reassembled == expected );
    }

    /* Incompressible data: stored blocks may contain fake sync markers; the
     * probe/merge/verify layers must still produce the exact stream. */
    {
        const auto noise = workloads::randomData( 4 * MiB, 0x707 );
        const auto compressedNoise = compressPigzLike( { noise.data(), noise.size() }, 6,
                                                       128 * 1024 );
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressedNoise ),
                                   config( 4, 256 * 1024 ) );
        REQUIRE( reader.decompressAll() == noise.size() );

        ParallelGzipReader byteReader( std::make_unique<MemoryFileReader>( compressedNoise ),
                                       config( 4, 256 * 1024 ) );
        std::vector<std::uint8_t> reassembled( noise.size() );
        REQUIRE( byteReader.read( reassembled.data(), reassembled.size() ) == noise.size() );
        REQUIRE( reassembled == noise );
    }

    /* setVerifyChecksums(false) still returns the right count. */
    {
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ),
                                   config( 4, 256 * 1024 ) );
        reader.setVerifyChecksums( false );
        REQUIRE( reader.decompressAll() == data.size() );
    }

    return rapidgzip::test::finish( "testParallelGzipReader" );
}
