/**
 * Lockstep equivalence tests for the src/simd/ dispatch layer (PR 7): every
 * vectorized kernel must be bit-identical to the always-built scalar
 * reference at EVERY dispatch level this binary can execute, across
 * randomized lengths, alignments, and sub-vector tails. CRC32 is
 * additionally checked against the zlib oracle, and the cached-LUT precode
 * stage 5 against both the general HuffmanCoding and the pre-PR scalar
 * finder cascade.
 */

#include <zlib.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "bits/BitReader.hpp"
#include "blockfinder/DynamicBlockFinderRapid.hpp"
#include "blockfinder/PrecodeLutCache.hpp"
#include "core/ParallelGzipReader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "huffman/HuffmanCoding.hpp"
#include "simd/Crc32.hpp"
#include "simd/Dispatch.hpp"
#include "simd/ReplaceMarkers.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

/** xorshift64* — deterministic across platforms, no <random> quirks. */
class Xorshift64
{
public:
    explicit Xorshift64( std::uint64_t seed ) :
        m_state( seed == 0 ? 0x9E3779B97F4A7C15ULL : seed )
    {}

    std::uint64_t
    operator()()
    {
        m_state ^= m_state >> 12U;
        m_state ^= m_state << 25U;
        m_state ^= m_state >> 27U;
        return m_state * 0x2545F4914F6CDD1DULL;
    }

private:
    std::uint64_t m_state;
};

void
testDispatchBasics()
{
    using simd::Level;

    /* The ladder must always contain the scalar rung, and every supported
     * level must be executable: forceLevel must return it unclamped. */
    const auto levels = simd::supportedLevels();
    REQUIRE( !levels.empty() );
    REQUIRE( levels.front() == Level::SCALAR );
    for ( const auto level : levels ) {
        REQUIRE( simd::forceLevel( level ) == level );
        REQUIRE( simd::activeLevel() == level );
    }

    /* Requests above the CPU's maximum clamp instead of faulting. */
    REQUIRE( simd::forceLevel( Level::AVX2 ) <= simd::detectedLevel() );

    Level parsed{};
    REQUIRE( simd::parseLevel( "scalar", &parsed ) && ( parsed == Level::SCALAR ) );
    REQUIRE( simd::parseLevel( "0", &parsed ) && ( parsed == Level::SCALAR ) );
    REQUIRE( simd::parseLevel( "sse2", &parsed ) && ( parsed == Level::SSE2 ) );
    REQUIRE( simd::parseLevel( "sse4.1", &parsed ) && ( parsed == Level::SSE41 ) );
    REQUIRE( simd::parseLevel( "sse41", &parsed ) && ( parsed == Level::SSE41 ) );
    REQUIRE( simd::parseLevel( "avx2", &parsed ) && ( parsed == Level::AVX2 ) );
    REQUIRE( simd::parseLevel( "neon", &parsed ) && ( parsed == Level::NEON ) );
    REQUIRE( !simd::parseLevel( "sse9000", &parsed ) );
    REQUIRE( !simd::parseLevel( nullptr, &parsed ) );

    REQUIRE( std::strcmp( simd::toString( Level::SCALAR ), "scalar" ) == 0 );
    REQUIRE( std::strcmp( simd::toString( simd::detectedLevel() ), "unknown" ) != 0 );

    simd::forceLevel( simd::detectedLevel() );
}

void
testReplaceMarkersLockstep()
{
    Xorshift64 rng( 0xC0FFEE );

    std::vector<std::uint8_t> window( 32 * 1024 );
    for ( auto& byte : window ) {
        byte = static_cast<std::uint8_t>( rng() );
    }

    const auto levels = simd::supportedLevels();

    /* Lengths probing every sub-vector tail around the 8/16/32-symbol SSE /
     * AVX strides, plus large blocks; offsets de-align the symbol pointer. */
    const std::size_t lengths[] = { 0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                                    127, 1000, 4096, 65536 + 13 };
    const std::size_t offsets[] = { 0, 1, 3, 7 };

    for ( const auto markerPermille : { std::size_t( 0 ), std::size_t( 50 ),
                                        std::size_t( 500 ), std::size_t( 1000 ) } ) {
        for ( const auto length : lengths ) {
            std::vector<std::uint16_t> symbolStorage( length + 8 );
            for ( auto& symbol : symbolStorage ) {
                /* Full 16-bit range: values 256..32767 exercise the low-byte
                 * truncation contract, bit 15 selects the marker branch. */
                const auto raw = static_cast<std::uint16_t>( rng() );
                if ( ( rng() % 1000 ) < markerPermille ) {
                    symbolStorage[&symbol - symbolStorage.data()] =
                        static_cast<std::uint16_t>( raw | 0x8000U );
                } else {
                    symbolStorage[&symbol - symbolStorage.data()] =
                        static_cast<std::uint16_t>( raw & 0x7FFFU );
                }
            }

            for ( const auto offset : offsets ) {
                if ( offset + length > symbolStorage.size() ) {
                    continue;
                }
                const auto* const symbols = symbolStorage.data() + offset;

                std::vector<std::uint8_t> reference( length, 0xAA );
                simd::replaceMarkersAt( simd::Level::SCALAR, symbols, length,
                                        window.data(), reference.data() );

                /* The scalar path IS the contract — check it directly. */
                for ( std::size_t i = 0; i < length; ++i ) {
                    const auto expected = symbols[i] < 0x8000U
                                          ? static_cast<std::uint8_t>( symbols[i] )
                                          : window[symbols[i] & 0x7FFFU];
                    REQUIRE( reference[i] == expected );
                }

                for ( const auto level : levels ) {
                    std::vector<std::uint8_t> output( length, 0x55 );
                    simd::replaceMarkersAt( level, symbols, length,
                                            window.data(), output.data() );
                    REQUIRE( output == reference );

                    /* The env/force dispatched entry point must agree too. */
                    simd::forceLevel( level );
                    std::fill( output.begin(), output.end(), 0x77 );
                    simd::replaceMarkers( symbols, length, window.data(), output.data() );
                    REQUIRE( output == reference );
                }
            }
        }
    }

    simd::forceLevel( simd::detectedLevel() );
}

void
testCrc32Lockstep()
{
    Xorshift64 rng( 0xBADC0DE );

    std::vector<std::uint8_t> data( 1U << 20U );
    for ( auto& byte : data ) {
        byte = static_cast<std::uint8_t>( rng() );
    }

    const auto levels = simd::supportedLevels();

    /* Lengths crossing the PCLMUL kernel's 64-byte block size, its 16-byte
     * inner loop, and the <64-byte scalar-only branch; odd offsets exercise
     * the unaligned loads. */
    const std::size_t lengths[] = { 0, 1, 3, 15, 16, 17, 63, 64, 65, 127, 128, 129,
                                    255, 1000, 4095, 65536 + 7, data.size() - 8 };
    const std::size_t offsets[] = { 0, 1, 3, 7 };

    for ( const auto length : lengths ) {
        for ( const auto offset : offsets ) {
            if ( offset + length > data.size() ) {
                continue;
            }
            const auto* const begin = data.data() + offset;
            const auto oracle = static_cast<std::uint32_t>(
                ::crc32_z( ::crc32_z( 0UL, nullptr, 0 ), begin, length ) );

            for ( const auto level : levels ) {
                REQUIRE( simd::crc32At( level, 0, begin, length ) == oracle );

                simd::forceLevel( level );
                REQUIRE( simd::crc32( 0, begin, length ) == oracle );

                /* Incremental updates across an uneven split. */
                const auto split = length / 3;
                auto crc = simd::crc32At( level, 0, begin, split );
                crc = simd::crc32At( level, crc, begin + split, length - split );
                REQUIRE( crc == oracle );
            }
        }
    }

    /* crc32Combine vs zlib's crc32_combine, including empty parts. */
    for ( const auto splitNumerator : { std::size_t( 0 ), std::size_t( 1 ),
                                        std::size_t( 3 ), std::size_t( 7 ),
                                        std::size_t( 8 ) } ) {
        const auto size = std::size_t( 300000 );
        const auto split = size * splitNumerator / 8;
        const auto crcA = simd::crc32( 0, data.data(), split );
        const auto crcB = simd::crc32( 0, data.data() + split, size - split );
        const auto whole = simd::crc32( 0, data.data(), size );
        REQUIRE( simd::crc32Combine( crcA, crcB, size - split ) == whole );
        const auto zlibCombined = static_cast<std::uint32_t>(
            ::crc32_combine( crcA, crcB, static_cast<z_off_t>( size - split ) ) );
        REQUIRE( simd::crc32Combine( crcA, crcB, size - split ) == zlibCombined );
    }

    /* Compile-time usability of the combine (constexpr contract). */
    static_assert( simd::crc32Combine( 0, 0, 123456 ) == 0 );

    simd::forceLevel( simd::detectedLevel() );
}

void
testPrecodeLutVsHuffmanCoding()
{
    Xorshift64 rng( 0x5EED );

    /* Random COMPLETE precode length sets: start from a single 1-bit symbol
     * and randomly split leaves until no more splits are wanted — always
     * yields a Kraft-complete code with max length <= 7. */
    for ( int iteration = 0; iteration < 2000; ++iteration ) {
        std::array<std::uint8_t, deflate::PRECODE_SYMBOLS> lengths{};
        std::vector<std::uint8_t> leaves{ 1 };  /* one leaf at depth 1... */
        leaves.push_back( 1 );                  /* ...and its sibling */
        const auto splits = rng() % deflate::PRECODE_SYMBOLS;
        for ( std::uint64_t i = 0; i < splits && leaves.size() < deflate::PRECODE_SYMBOLS; ++i ) {
            const auto pick = rng() % leaves.size();
            if ( leaves[pick] >= 7 ) {
                continue;
            }
            const auto depth = static_cast<std::uint8_t>( leaves[pick] + 1 );
            leaves[pick] = depth;
            leaves.push_back( depth );
        }
        /* Assign leaf depths to random distinct symbols. */
        std::array<std::uint8_t, deflate::PRECODE_SYMBOLS> symbols{};
        for ( std::uint8_t i = 0; i < deflate::PRECODE_SYMBOLS; ++i ) {
            symbols[i] = i;
        }
        for ( std::size_t i = deflate::PRECODE_SYMBOLS - 1; i > 0; --i ) {
            std::swap( symbols[i], symbols[rng() % ( i + 1 )] );
        }
        for ( std::size_t i = 0; i < leaves.size(); ++i ) {
            lengths[symbols[i]] = leaves[i];
        }

        HuffmanCoding general;
        REQUIRE( general.initializeFromLengths( { lengths.data(), lengths.size() } ) );
        const auto& lut = blockfinder::PrecodeLutCache::get( lengths );

        /* Decode the same random bitstream with both decoders. */
        std::array<std::uint8_t, 32> stream{};
        for ( auto& byte : stream ) {
            byte = static_cast<std::uint8_t>( rng() );
        }
        BitReader generalReader( stream.data(), stream.size() );
        BitReader lutReader( stream.data(), stream.size() );
        for ( int step = 0; step < 100; ++step ) {
            const auto symbol = general.decode( generalReader );
            const auto entry = lut.entry( lutReader.peek( blockfinder::PrecodeLut::MAX_PRECODE_LENGTH ) );
            const bool lutRejects = ( entry.length == 0 ) || ( entry.length > lutReader.bitsLeft() );
            if ( symbol < 0 ) {
                REQUIRE( lutRejects );
                break;
            }
            REQUIRE( !lutRejects );
            REQUIRE( static_cast<int>( entry.symbol ) == symbol );
            lutReader.skip( entry.length );
            REQUIRE( generalReader.tell() == lutReader.tell() );
        }
    }
}

void
testBlockFinderEquivalenceAcrossLevels()
{
    /* The finder cascade (with the cached-LUT stage 5) must accept exactly
     * the same bit positions as the pre-PR scalar reference cascade — on
     * real dynamic headers AND on random garbage — at every dispatch level.
     * Stage 5 itself is scalar at all levels; sweeping levels proves the
     * dispatch override cannot perturb the finder. */
    std::vector<std::uint8_t> content;
    {
        Xorshift64 rng( 0xF00D );
        const auto base = workloads::base64Data( 32 * 1024, /* seed */ 7 );
        content = compressGzipLike( { base.data(), base.size() }, 9 );
        for ( int i = 0; i < 2048; ++i ) {
            content.push_back( static_cast<std::uint8_t>( rng() ) );
        }
    }

    for ( const auto level : simd::supportedLevels() ) {
        simd::forceLevel( level );
        blockfinder::FilterStatistics statsRapid;
        blockfinder::FilterStatistics statsScalar;
        std::size_t matches = 0;
        const auto limitBits = content.size() * 8 - deflate::MIN_DYNAMIC_HEADER_BITS;
        for ( std::size_t offset = 0; offset < limitBits; ++offset ) {
            const auto rapid = blockfinder::DynamicBlockFinderRapid::testCandidate(
                { content.data(), content.size() }, offset, &statsRapid );
            const auto scalar = blockfinder::DynamicBlockFinderRapid::testCandidateScalar(
                { content.data(), content.size() }, offset, &statsScalar );
            REQUIRE( rapid == scalar );
            matches += rapid ? 1 : 0;
        }
        /* deflateCompress(level 9) of 32 KiB base64 emits dynamic blocks, so
         * the sweep must find at least the real header(s). */
        REQUIRE( matches > 0 );
        /* The cascades must agree on WHY positions died, not just whether:
         * the stage-5 counter feeding Table 1 must match the reference. */
        REQUIRE( statsRapid.invalidPrecodeEncodedData == statsScalar.invalidPrecodeEncodedData );
        REQUIRE( statsRapid.validHeaders == statsScalar.validHeaders );
    }

    simd::forceLevel( simd::detectedLevel() );
}

void
testDecompressionAtEveryLevel()
{
    /* End-to-end: the SIMD replaceMarkers (two-stage marker decode) and the
     * dispatched CRC32 (member verification) sit inside chunked
     * decompression — a full parallel decode at every forced level must
     * reproduce the input bytes and pass the footer CRC check. */
    const auto original = workloads::base64Data( 1024 * 1024, /* seed */ 21 );
    const auto compressed = compressGzipLike( { original.data(), original.size() }, 6 );

    ChunkFetcherConfiguration configuration;
    configuration.parallelism = 2;
    configuration.chunkSizeBytes = 128 * 1024;

    for ( const auto level : simd::supportedLevels() ) {
        simd::forceLevel( level );
        ParallelGzipReader reader( std::make_unique<MemoryFileReader>( compressed ),
                                   configuration );
        std::vector<std::uint8_t> reassembled( original.size() + 16 );
        const auto got = reader.read( reassembled.data(), reassembled.size() );
        reassembled.resize( got );
        REQUIRE( reassembled == original );
    }

    simd::forceLevel( simd::detectedLevel() );
}

}  // namespace

int
main()
{
    testDispatchBasics();
    testReplaceMarkersLockstep();
    testCrc32Lockstep();
    testPrecodeLutVsHuffmanCoding();
    testBlockFinderEquivalenceAcrossLevels();
    testDecompressionAtEveryLevel();
    return rapidgzip::test::finish( "testSimd" );
}
