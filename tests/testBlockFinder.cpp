/**
 * blockfinder layer: every Dynamic block finder must locate the known block
 * starts of a pigz-produced stream (full-flush restart points are
 * byte-aligned Dynamic block starts, so the ground truth is known without
 * trusting any finder); the rapid finder's cascaded filters must agree with
 * the naive full parse on EVERY bit offset of random data (zero false
 * negatives — and, by equality, zero extra positives); and the
 * non-compressed finder must locate stored-block LEN fields.
 */

#include <vector>

#include "blockfinder/DynamicBlockFinderNaive.hpp"
#include "blockfinder/DynamicBlockFinderRapid.hpp"
#include "blockfinder/DynamicBlockFinderSkipLUT.hpp"
#include "blockfinder/DynamicBlockFinderZlib.hpp"
#include "blockfinder/NonCompressedBlockFinder.hpp"
#include "core/DeflateChunks.hpp"
#include "gzip/GzipHeader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

/* Forwarding reference: the rapid finder's find() mutates its statistics. */
template<typename Finder>
void
checkFindsKnownOffsets( Finder&& finder,
                        BufferView stream,
                        const std::vector<std::size_t>& knownBlockBits )
{
    for ( const auto expected : knownBlockBits ) {
        /* Scan from a few bits before the block: the preceding bits are the
         * 00 00 FF FF sync marker, which no finder may mistake for a start. */
        REQUIRE( finder.find( stream, expected - 10 ) == expected );
        /* Scanning from the block itself returns it immediately. */
        REQUIRE( finder.find( stream, expected ) == expected );
    }
}

}  // namespace

int
main()
{
    /* Ground truth: pigz-style full flushes byte-align the stream and reset
     * the window, so each marker-end offset is a known Dynamic block start
     * (base64 data at level 6 always produces Dynamic blocks). */
    const auto data = workloads::base64Data( 4 * MiB, 0xB10C );
    const auto gz = compressPigzLike( { data.data(), data.size() }, 6, 256 * KiB );
    const auto deflateStart = parseGzipHeader( { gz.data(), gz.size() } );
    const BufferView stream( gz.data() + deflateStart, gz.size() - deflateStart );

    MemoryFileReader file( gz );
    const auto markerEnds = findFullFlushMarkers( file, deflateStart, gz.size() );
    REQUIRE( markerEnds.size() >= 10 );

    std::vector<std::size_t> knownBlockBits;
    for ( std::size_t i = 0; i + 1 < markerEnds.size(); ++i ) {  /* skip the last: may be final */
        knownBlockBits.push_back( ( markerEnds[i] - deflateStart ) * 8 );
    }

    {
        blockfinder::DynamicBlockFinderRapid rapid;
        checkFindsKnownOffsets( rapid, stream, knownBlockBits );
        REQUIRE( rapid.statistics().validHeaders >= 2 * knownBlockBits.size() );
        REQUIRE( rapid.statistics().positionsTested > rapid.statistics().validHeaders );
    }
    checkFindsKnownOffsets( blockfinder::DynamicBlockFinderNaive(), stream, knownBlockBits );
    checkFindsKnownOffsets( blockfinder::DynamicBlockFinderSkipLUT(), stream, knownBlockBits );
    {
        /* The zlib trial-inflate baseline is ~100x slower: spot-check a few. */
        const blockfinder::DynamicBlockFinderZlib zlib;
        const std::vector<std::size_t> sample = {
            knownBlockBits.front(),
            knownBlockBits[knownBlockBits.size() / 2],
            knownBlockBits.back(),
        };
        checkFindsKnownOffsets( zlib, stream, sample );
    }

    /* Zero false negatives (and, symmetrically, zero extra positives) of
     * rapid vs naive: both must accept EXACTLY the same bit offsets over
     * random data — the cascade is a pure acceleration, not an
     * approximation. The skip-LUT must agree as well. */
    {
        const auto noise = workloads::randomData( 256 * KiB, 0xFA15E );
        const BufferView view( noise.data(), noise.size() );
        const blockfinder::DynamicBlockFinderNaive naive;
        blockfinder::DynamicBlockFinderRapid rapid;
        const blockfinder::DynamicBlockFinderSkipLUT skipLut;

        std::vector<std::size_t> naiveFound;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = naive.find( view, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            naiveFound.push_back( offset );
            fromBit = offset + 1;
        }

        std::vector<std::size_t> rapidFound;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = rapid.find( view, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            rapidFound.push_back( offset );
            fromBit = offset + 1;
        }
        REQUIRE( rapidFound == naiveFound );

        std::vector<std::size_t> skipLutFound;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = skipLut.find( view, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            skipLutFound.push_back( offset );
            fromBit = offset + 1;
        }
        REQUIRE( skipLutFound == naiveFound );

        /* Per-position agreement of the static cascade entry point, too. */
        for ( std::size_t position = 0; position < 64 * KiB; ++position ) {
            BitReader reader( view.data(), view.size() );
            reader.seek( position );
            deflate::DynamicHuffmanCodings codings;
            const bool naiveAccepts =
                ( ( reader.peek( 3 ) & 0b111U ) == 0b100U )
                && ( ( reader.skip( 3 ), deflate::readDynamicCodings( reader, codings ) )
                     == Error::NONE );
            REQUIRE( blockfinder::DynamicBlockFinderRapid::testCandidate( view, position, nullptr )
                     == naiveAccepts );
        }
    }

    /* NonCompressedBlockFinder: stored blocks from incompressible data. The
     * LEN field of the first stored block of a chunk is byte-aligned; check
     * the finder reports a position whose LEN/NLEN are complements and that
     * every full-flush sync marker (LEN = 0) is found as well. */
    {
        const auto noise = workloads::randomData( 1 * MiB, 0x57A7 );
        const auto storedGz = compressPigzLike( { noise.data(), noise.size() }, 6, 128 * KiB );
        const auto storedDeflateStart = parseGzipHeader( { storedGz.data(), storedGz.size() } );
        const BufferView storedStream( storedGz.data() + storedDeflateStart,
                                       storedGz.size() - storedDeflateStart );

        const blockfinder::NonCompressedBlockFinder finder;
        std::size_t found = 0;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = finder.find( storedStream, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            REQUIRE( offset % 8 == 0 );
            const auto byte = offset / 8;
            const auto len = static_cast<unsigned>( storedStream[byte] )
                             | ( static_cast<unsigned>( storedStream[byte + 1] ) << 8U );
            const auto nlen = static_cast<unsigned>( storedStream[byte + 2] )
                              | ( static_cast<unsigned>( storedStream[byte + 3] ) << 8U );
            REQUIRE( ( len ^ nlen ) == 0xFFFFU );
            ++found;
            fromBit = offset + 1;
        }
        REQUIRE( found > 0 );

        /* Every sync marker (the empty stored block 00 00 FF FF) must be
         * among the found positions — rescan from just before each. */
        MemoryFileReader storedFile( storedGz );
        const auto syncMarkers = findFullFlushMarkers( storedFile, storedDeflateStart,
                                                       storedGz.size() );
        REQUIRE( !syncMarkers.empty() );
        for ( const auto markerEnd : syncMarkers ) {
            const auto lenBit = ( markerEnd - FULL_FLUSH_MARKER_SIZE - storedDeflateStart ) * 8;
            REQUIRE( finder.find( storedStream, lenBit ) == lenBit );
        }
    }

    return rapidgzip::test::finish( "testBlockFinder" );
}
