/**
 * blockfinder layer: every Dynamic block finder must locate the known block
 * starts of a pigz-produced stream (full-flush restart points are
 * byte-aligned Dynamic block starts, so the ground truth is known without
 * trusting any finder); the rapid finder's cascaded filters must agree with
 * the naive full parse on EVERY bit offset of random data (zero false
 * negatives — and, by equality, zero extra positives); and the
 * non-compressed finder must locate stored-block LEN fields.
 */

#include <vector>

#include "blockfinder/DynamicBlockFinderNaive.hpp"
#include "blockfinder/DynamicBlockFinderRapid.hpp"
#include "blockfinder/DynamicBlockFinderSkipLUT.hpp"
#include "blockfinder/DynamicBlockFinderZlib.hpp"
#include "blockfinder/NonCompressedBlockFinder.hpp"
#include "core/DeflateChunks.hpp"
#include "gzip/GzipHeader.hpp"
#include "gzip/ZlibCompressor.hpp"
#include "io/MemoryFileReader.hpp"
#include "workloads/DataGenerators.hpp"

#include "TestHelpers.hpp"

using namespace rapidgzip;

namespace {

/* Forwarding reference: the rapid finder's find() mutates its statistics. */
template<typename Finder>
void
checkFindsKnownOffsets( Finder&& finder,
                        BufferView stream,
                        const std::vector<std::size_t>& knownBlockBits )
{
    for ( const auto expected : knownBlockBits ) {
        /* Scan from a few bits before the block: the preceding bits are the
         * 00 00 FF FF sync marker, which no finder may mistake for a start. */
        REQUIRE( finder.find( stream, expected - 10 ) == expected );
        /* Scanning from the block itself returns it immediately. */
        REQUIRE( finder.find( stream, expected ) == expected );
    }
}

/** LSB-first bit writer matching Deflate's value bit order; Huffman codes
 * go through putCode (Deflate writes codes MSB-of-code-first). */
class DeflateBitWriter
{
public:
    void
    put( std::uint32_t value, std::size_t count )
    {
        for ( std::size_t i = 0; i < count; ++i ) {
            if ( m_fill == 8 ) {
                m_bytes.push_back( 0 );
                m_fill = 0;
            }
            m_bytes.back() = static_cast<std::uint8_t>(
                m_bytes.back() | ( ( ( value >> i ) & 1U ) << m_fill ) );
            ++m_fill;
        }
    }

    void
    putCode( std::uint32_t code, std::size_t count )
    {
        for ( std::size_t i = count; i > 0; --i ) {
            put( ( code >> ( i - 1 ) ) & 1U, 1 );
        }
    }

    [[nodiscard]] std::vector<std::uint8_t>
    finish( std::size_t padBytes )
    {
        auto result = m_bytes;
        if ( result.empty() ) {
            result.push_back( 0 );
        }
        result.insert( result.end(), padBytes, 0 );
        return result;
    }

    DeflateBitWriter()
    {
        m_bytes.push_back( 0 );
        m_fill = 0;
    }

private:
    std::vector<std::uint8_t> m_bytes;
    std::size_t m_fill{ 0 };
};

/**
 * Crafted Dynamic headers aimed at the rapid finder's SURVIVOR TAIL — the
 * cold out-of-line stages 5-7 that only candidates passing the packed
 * precode filter reach. Each case passes stages 1-4 by construction and is
 * then accepted or rejected by the later stages; all three custom finders
 * must agree with the naive full parse on the exact result, offset for
 * offset. The simple precode has symbols {0, 8} with 1-bit codes
 * (canonical: 0 → code 0, 8 → code 1).
 */
struct CraftedHeader
{
    const char* name;
    bool valid;
    std::vector<std::uint8_t> bytes;
};

[[nodiscard]] CraftedHeader
craftHeader( const char* name,
             bool valid,
             std::size_t lengthEightLiterals,   /* precode sym 8 emissions (literal side) */
             std::size_t zeroLengthLiterals,    /* precode sym 0 emissions (literal side) */
             std::size_t hdist,                 /* HDIST field: hdist + 1 distance entries */
             std::size_t lengthEightDistances ) /* sym 8 emissions on the distance side */
{
    DeflateBitWriter writer;
    writer.put( 0, 1 );   /* BFINAL = 0 */
    writer.put( 2, 2 );   /* BTYPE = Dynamic */
    writer.put( 0, 5 );   /* HLIT = 0 → 257 literal entries */
    writer.put( static_cast<std::uint32_t>( hdist ), 5 );
    writer.put( 1, 4 );   /* HCLEN = 1 → 5 precode lengths: 16 17 18 0 8 */
    writer.put( 0, 3 );   /* length(16) = 0 */
    writer.put( 0, 3 );   /* length(17) = 0 */
    writer.put( 0, 3 );   /* length(18) = 0 */
    writer.put( 1, 3 );   /* length(0)  = 1 → canonical code 0 */
    writer.put( 1, 3 );   /* length(8)  = 1 → canonical code 1 */

    for ( std::size_t i = 0; i < lengthEightLiterals; ++i ) {
        writer.putCode( 1, 1 );  /* literal entry of code length 8 */
    }
    for ( std::size_t i = 0; i < zeroLengthLiterals; ++i ) {
        writer.putCode( 0, 1 );  /* literal entry of code length 0 */
    }
    for ( std::size_t i = 0; i < 1 + hdist; ++i ) {
        writer.putCode( i < lengthEightDistances ? 1 : 0, 1 );
    }
    return { name, valid, writer.finish( 64 ) };
}

/** Stage-5 overflow case: precode {18:1, 0:2, 8:2}; a symbol-18 run of
 * 11 + 127 zeros overruns the 258 total entries. */
[[nodiscard]] CraftedHeader
craftRepeatOverflowHeader()
{
    DeflateBitWriter writer;
    writer.put( 0, 1 );
    writer.put( 2, 2 );
    writer.put( 0, 5 );   /* HLIT = 0 */
    writer.put( 0, 5 );   /* HDIST = 0 */
    writer.put( 1, 4 );   /* HCLEN = 1 → lengths for 16 17 18 0 8 */
    writer.put( 0, 3 );   /* length(16) = 0 */
    writer.put( 0, 3 );   /* length(17) = 0 */
    writer.put( 1, 3 );   /* length(18) = 1 → canonical code 0 */
    writer.put( 2, 3 );   /* length(0)  = 2 → canonical code 10 */
    writer.put( 2, 3 );   /* length(8)  = 2 → canonical code 11 */

    for ( std::size_t i = 0; i < 200; ++i ) {
        writer.putCode( 0b11U, 2 );  /* 200 length-8 literal entries */
    }
    writer.putCode( 0, 1 );          /* symbol 18 ... */
    writer.put( 127, 7 );            /* ... repeat 11 + 127 → 200 + 138 > 258 */
    return { "stage-5 repeat overflow", false, writer.finish( 64 ) };
}

void
testCraftedAlmostValidHeaders()
{
    const std::vector<CraftedHeader> cases = {
        /* 256 length-8 literals + EOB length 0: Kraft sum exactly 1. */
        craftHeader( "valid control", true, 256, 1, 0, 0 ),
        /* 257 length-8 literals: Kraft 257/256 — over-subscribed (stage 7). */
        craftHeader( "over-subscribed literal code", false, 257, 0, 0, 0 ),
        /* 255 length-8 literals: Kraft 255/256 — incomplete (stage 7). */
        craftHeader( "incomplete literal code", false, 255, 2, 0, 0 ),
        /* Valid literals but TWO length-8 distance codes: incomplete with
         * more than one symbol (stage 6; one symbol would be legal). */
        craftHeader( "non-optimal distance code", false, 256, 1, 1, 2 ),
        /* Valid literals and exactly ONE distance code: legal single-code
         * incompleteness — must be ACCEPTED (the stage-6 exemption). */
        craftHeader( "single distance code", true, 256, 1, 0, 1 ),
        craftRepeatOverflowHeader(),
    };

    for ( const auto& crafted : cases ) {
        const BufferView view( crafted.bytes.data(), crafted.bytes.size() );
        const blockfinder::DynamicBlockFinderNaive naive;
        blockfinder::DynamicBlockFinderRapid rapid;
        const blockfinder::DynamicBlockFinderSkipLUT skipLut;

        const auto naiveResult = naive.find( view, 0 );
        const auto rapidResult = rapid.find( view, 0 );
        const auto skipResult = skipLut.find( view, 0 );
        REQUIRE( rapidResult == naiveResult );
        REQUIRE( skipResult == naiveResult );
        if ( crafted.valid ) {
            REQUIRE( naiveResult == 0 );
        } else {
            REQUIRE( naiveResult != 0 );
            REQUIRE( !blockfinder::DynamicBlockFinderRapid::testCandidate( view, 0, nullptr ) );
        }
        if ( naiveResult != 0 ) {
            continue;
        }

        /* The accepted cases must also survive at a non-byte-aligned start:
         * re-emit at bit offset 3. */
        DeflateBitWriter shifted;
        shifted.put( 0b101U, 3 );  /* arbitrary preamble bits */
        for ( const auto byte : crafted.bytes ) {
            shifted.put( byte, 8 );
        }
        const auto shiftedBytes = shifted.finish( 8 );
        const BufferView shiftedView( shiftedBytes.data(), shiftedBytes.size() );
        REQUIRE( rapid.find( shiftedView, 3 ) == 3 );
        REQUIRE( naive.find( shiftedView, 3 ) == 3 );
    }
}

}  // namespace

int
main()
{
    /* Ground truth: pigz-style full flushes byte-align the stream and reset
     * the window, so each marker-end offset is a known Dynamic block start
     * (base64 data at level 6 always produces Dynamic blocks). */
    const auto data = workloads::base64Data( 4 * MiB, 0xB10C );
    const auto gz = compressPigzLike( { data.data(), data.size() }, 6, 256 * KiB );
    const auto deflateStart = parseGzipHeader( { gz.data(), gz.size() } );
    const BufferView stream( gz.data() + deflateStart, gz.size() - deflateStart );

    MemoryFileReader file( gz );
    const auto markerEnds = findFullFlushMarkers( file, deflateStart, gz.size() );
    REQUIRE( markerEnds.size() >= 10 );

    std::vector<std::size_t> knownBlockBits;
    for ( std::size_t i = 0; i + 1 < markerEnds.size(); ++i ) {  /* skip the last: may be final */
        knownBlockBits.push_back( ( markerEnds[i] - deflateStart ) * 8 );
    }

    {
        blockfinder::DynamicBlockFinderRapid rapid;
        checkFindsKnownOffsets( rapid, stream, knownBlockBits );
        REQUIRE( rapid.statistics().validHeaders >= 2 * knownBlockBits.size() );
        REQUIRE( rapid.statistics().positionsTested > rapid.statistics().validHeaders );
    }
    checkFindsKnownOffsets( blockfinder::DynamicBlockFinderNaive(), stream, knownBlockBits );
    checkFindsKnownOffsets( blockfinder::DynamicBlockFinderSkipLUT(), stream, knownBlockBits );
    {
        /* The zlib trial-inflate baseline is ~100x slower: spot-check a few. */
        const blockfinder::DynamicBlockFinderZlib zlib;
        const std::vector<std::size_t> sample = {
            knownBlockBits.front(),
            knownBlockBits[knownBlockBits.size() / 2],
            knownBlockBits.back(),
        };
        checkFindsKnownOffsets( zlib, stream, sample );
    }

    /* Zero false negatives (and, symmetrically, zero extra positives) of
     * rapid vs naive: both must accept EXACTLY the same bit offsets over
     * random data — the cascade is a pure acceleration, not an
     * approximation. The skip-LUT must agree as well. */
    {
        const auto noise = workloads::randomData( 256 * KiB, 0xFA15E );
        const BufferView view( noise.data(), noise.size() );
        const blockfinder::DynamicBlockFinderNaive naive;
        blockfinder::DynamicBlockFinderRapid rapid;
        const blockfinder::DynamicBlockFinderSkipLUT skipLut;

        std::vector<std::size_t> naiveFound;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = naive.find( view, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            naiveFound.push_back( offset );
            fromBit = offset + 1;
        }

        std::vector<std::size_t> rapidFound;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = rapid.find( view, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            rapidFound.push_back( offset );
            fromBit = offset + 1;
        }
        REQUIRE( rapidFound == naiveFound );

        std::vector<std::size_t> skipLutFound;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = skipLut.find( view, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            skipLutFound.push_back( offset );
            fromBit = offset + 1;
        }
        REQUIRE( skipLutFound == naiveFound );

        /* Per-position agreement of the static cascade entry point, too. */
        for ( std::size_t position = 0; position < 64 * KiB; ++position ) {
            BitReader reader( view.data(), view.size() );
            reader.seek( position );
            deflate::DynamicHuffmanCodings codings;
            const bool naiveAccepts =
                ( ( reader.peek( 3 ) & 0b111U ) == 0b100U )
                && ( ( reader.skip( 3 ), deflate::readDynamicCodings( reader, codings ) )
                     == Error::NONE );
            REQUIRE( blockfinder::DynamicBlockFinderRapid::testCandidate( view, position, nullptr )
                     == naiveAccepts );
        }
    }

    /* NonCompressedBlockFinder: stored blocks from incompressible data. The
     * LEN field of the first stored block of a chunk is byte-aligned; check
     * the finder reports a position whose LEN/NLEN are complements and that
     * every full-flush sync marker (LEN = 0) is found as well. */
    {
        const auto noise = workloads::randomData( 1 * MiB, 0x57A7 );
        const auto storedGz = compressPigzLike( { noise.data(), noise.size() }, 6, 128 * KiB );
        const auto storedDeflateStart = parseGzipHeader( { storedGz.data(), storedGz.size() } );
        const BufferView storedStream( storedGz.data() + storedDeflateStart,
                                       storedGz.size() - storedDeflateStart );

        const blockfinder::NonCompressedBlockFinder finder;
        std::size_t found = 0;
        for ( auto fromBit = std::size_t( 0 ); ; ) {
            const auto offset = finder.find( storedStream, fromBit );
            if ( offset == blockfinder::NOT_FOUND ) {
                break;
            }
            REQUIRE( offset % 8 == 0 );
            const auto byte = offset / 8;
            const auto len = static_cast<unsigned>( storedStream[byte] )
                             | ( static_cast<unsigned>( storedStream[byte + 1] ) << 8U );
            const auto nlen = static_cast<unsigned>( storedStream[byte + 2] )
                              | ( static_cast<unsigned>( storedStream[byte + 3] ) << 8U );
            REQUIRE( ( len ^ nlen ) == 0xFFFFU );
            ++found;
            fromBit = offset + 1;
        }
        REQUIRE( found > 0 );

        /* Every sync marker (the empty stored block 00 00 FF FF) must be
         * among the found positions — rescan from just before each. */
        MemoryFileReader storedFile( storedGz );
        const auto syncMarkers = findFullFlushMarkers( storedFile, storedDeflateStart,
                                                       storedGz.size() );
        REQUIRE( !syncMarkers.empty() );
        for ( const auto markerEnd : syncMarkers ) {
            const auto lenBit = ( markerEnd - FULL_FLUSH_MARKER_SIZE - storedDeflateStart ) * 8;
            REQUIRE( finder.find( storedStream, lenBit ) == lenBit );
        }
    }

    /* Survivor-tail negative tests: crafted almost-valid headers that pass
     * the packed stages 1-4 and must be decided — identically across
     * finders — by the cold stages 5-7. */
    testCraftedAlmostValidHeaders();

    return rapidgzip::test::finish( "testBlockFinder" );
}
