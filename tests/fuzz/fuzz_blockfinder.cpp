/**
 * libFuzzer target: DynamicBlockFinderRapid (cascaded packed-histogram
 * filters) vs DynamicBlockFinderNaive (full header parse) must accept
 * EXACTLY the same bit offsets on arbitrary input — the cascade is an
 * acceleration, not an approximation. Any divergence is a finder bug by
 * construction, no oracle needed beyond the naive parse.
 *
 * Build (Clang only): cmake -DRAPIDGZIP_FUZZ=ON, target fuzz_blockfinder.
 * Run: ./fuzz_blockfinder tests/fuzz/corpus/blockfinder -max_total_time=60
 */

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "blockfinder/DynamicBlockFinderNaive.hpp"
#include "blockfinder/DynamicBlockFinderRapid.hpp"
#include "blockfinder/DynamicBlockFinderSkipLUT.hpp"

extern "C" int
LLVMFuzzerTestOneInput( const std::uint8_t* data, std::size_t size )
{
    if ( ( size < 8 ) || ( size > 64 * 1024 ) ) {
        return 0;
    }
    /* First byte steers the start offset so byte-misaligned scans get
     * coverage; the rest is the scanned window. */
    const std::size_t fromBit = data[0] % 8;
    const rapidgzip::BufferView view( data + 1, size - 1 );

    const rapidgzip::blockfinder::DynamicBlockFinderNaive naive;
    rapidgzip::blockfinder::DynamicBlockFinderRapid rapid;
    const rapidgzip::blockfinder::DynamicBlockFinderSkipLUT skipLut;

    auto cursor = fromBit;
    for ( int matches = 0; matches < 16; ++matches ) {
        const auto expected = naive.find( view, cursor );
        const auto fromRapid = rapid.find( view, cursor );
        const auto fromSkipLut = skipLut.find( view, cursor );
        if ( ( fromRapid != expected ) || ( fromSkipLut != expected ) ) {
            std::fprintf( stderr,
                          "finder divergence at fromBit %zu: naive %zu rapid %zu skipLUT %zu\n",
                          cursor, expected, fromRapid, fromSkipLut );
            std::abort();
        }
        if ( expected == rapidgzip::blockfinder::NOT_FOUND ) {
            break;
        }
        cursor = expected + 1;
    }
    return 0;
}
