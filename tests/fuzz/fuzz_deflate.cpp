/**
 * libFuzzer target: deflate::Decoder's FAST loop (multi-symbol cached
 * LUTs, guaranteed-bits reads, wildcopy matches) vs its REFERENCE loop
 * (two-level LUT, checked reads) on arbitrary input from arbitrary bit
 * offsets, in both marker (unknown window) and plain (seeded window)
 * modes. The two paths must agree on error, end offset, block count, AND
 * every output unit — the bit-exactness contract the PR 4 hot paths claim.
 *
 * Build (Clang only): cmake -DRAPIDGZIP_FUZZ=ON, target fuzz_deflate.
 * Run: ./fuzz_deflate tests/fuzz/corpus/deflate -max_total_time=60
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "bits/BitReader.hpp"
#include "deflate/DecodedData.hpp"
#include "deflate/DeflateDecoder.hpp"

namespace {

struct DecodeOutcome
{
    rapidgzip::Error error;
    std::size_t endBitOffset;
    bool reachedFinalBlock;
    std::size_t blockCount;
    rapidgzip::FastVector<std::uint16_t> marked;
    std::vector<std::uint8_t> plain;

    [[nodiscard]] bool
    operator==( const DecodeOutcome& other ) const
    {
        return ( error == other.error ) && ( endBitOffset == other.endBitOffset )
               && ( reachedFinalBlock == other.reachedFinalBlock )
               && ( blockCount == other.blockCount )
               && ( marked.size() == other.marked.size() )
               && std::equal( marked.begin(), marked.end(), other.marked.begin() )
               && ( plain == other.plain );
    }
};

[[nodiscard]] DecodeOutcome
decodeWith( const std::uint8_t* data,
            std::size_t size,
            std::size_t startBit,
            bool seededWindow,
            bool reference )
{
    rapidgzip::BitReader reader( data, size );
    reader.seek( startBit );
    rapidgzip::deflate::Decoder decoder;
    decoder.setReferenceHuffmanDecoding( reference );
    std::vector<std::uint8_t> window;
    if ( seededWindow ) {
        window.assign( 1024, 0x5A );  /* deterministic partial window */
        decoder.setInitialWindow( { window.data(), window.size() } );
    }
    rapidgzip::deflate::DecodedData output;
    const auto result = decoder.decode( reader, output,
                                        std::numeric_limits<std::size_t>::max(),
                                        /* maxBytes */ 4 * rapidgzip::MiB );
    DecodeOutcome outcome;
    outcome.error = result.error;
    outcome.endBitOffset = result.endBitOffset;
    outcome.reachedFinalBlock = result.reachedFinalBlock;
    outcome.blockCount = result.blockCount;
    outcome.marked = output.marked;
    for ( const auto& segment : output.plain ) {
        outcome.plain.insert( outcome.plain.end(), segment.data.begin(), segment.data.end() );
    }
    return outcome;
}

}  // namespace

extern "C" int
LLVMFuzzerTestOneInput( const std::uint8_t* data, std::size_t size )
{
    if ( ( size < 4 ) || ( size > 64 * 1024 ) ) {
        return 0;
    }
    const std::size_t startBit = data[0] % 8;
    const bool seededWindow = ( data[0] & 0x08U ) != 0;

    const auto fast = decodeWith( data + 1, size - 1, startBit, seededWindow, false );
    const auto referenceOutcome = decodeWith( data + 1, size - 1, startBit, seededWindow, true );

    if ( !( fast == referenceOutcome ) ) {
        std::fprintf( stderr,
                      "decoder divergence: startBit %zu seeded %d — "
                      "fast(err %d, end %zu, blocks %zu, %zu marked, %zu plain) vs "
                      "reference(err %d, end %zu, blocks %zu, %zu marked, %zu plain)\n",
                      startBit, int( seededWindow ),
                      int( fast.error ), fast.endBitOffset, fast.blockCount,
                      fast.marked.size(), fast.plain.size(),
                      int( referenceOutcome.error ), referenceOutcome.endBitOffset,
                      referenceOutcome.blockCount, referenceOutcome.marked.size(),
                      referenceOutcome.plain.size() );
        std::abort();
    }
    return 0;
}
