#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace rapidgzip::telemetry {

/**
 * Minimal strict JSON parser, just enough to validate the trace files this
 * library emits (and any well-formed JSON a CI artifact check throws at it).
 * Shared by tools/rapidgzip_trace_check.cpp and tests/testTelemetry.cpp —
 * intentionally not the emitter's code, so round-trip tests cross-check two
 * independent implementations.
 */

struct JsonValue
{
    enum class Type
    {
        Null,
        Boolean,
        Number,
        String,
        Array,
        Object,
    };

    Type type{ Type::Null };
    bool boolean{ false };
    double number{ 0 };
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    [[nodiscard]] bool isObject() const noexcept { return type == Type::Object; }
    [[nodiscard]] bool isArray() const noexcept { return type == Type::Array; }
    [[nodiscard]] bool isString() const noexcept { return type == Type::String; }
    [[nodiscard]] bool isNumber() const noexcept { return type == Type::Number; }

    [[nodiscard]] const JsonValue*
    find( const std::string& key ) const
    {
        if ( type != Type::Object ) {
            return nullptr;
        }
        const auto match = object.find( key );
        return match == object.end() ? nullptr : &match->second;
    }
};


class JsonParser
{
public:
    explicit JsonParser( const std::string& text ) :
        m_text( text )
    {}

    [[nodiscard]] JsonValue
    parse()
    {
        auto value = parseValue();
        skipWhitespace();
        if ( m_position != m_text.size() ) {
            throw std::runtime_error( "Trailing characters after JSON document at offset "
                                      + std::to_string( m_position ) );
        }
        return value;
    }

private:
    void
    skipWhitespace() noexcept
    {
        while ( ( m_position < m_text.size() )
                && ( std::isspace( static_cast<unsigned char>( m_text[m_position] ) ) != 0 ) ) {
            ++m_position;
        }
    }

    [[nodiscard]] char
    peek()
    {
        if ( m_position >= m_text.size() ) {
            throw std::runtime_error( "Unexpected end of JSON input" );
        }
        return m_text[m_position];
    }

    void
    expect( char c )
    {
        if ( peek() != c ) {
            throw std::runtime_error( std::string( "Expected '" ) + c + "' at offset "
                                      + std::to_string( m_position ) + ", got '" + peek() + "'" );
        }
        ++m_position;
    }

    [[nodiscard]] JsonValue
    parseValue()
    {
        skipWhitespace();
        switch ( peek() ) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't':
        case 'f': return parseBoolean();
        case 'n': return parseNull();
        default: return parseNumber();
        }
    }

    [[nodiscard]] JsonValue
    parseObject()
    {
        expect( '{' );
        JsonValue value;
        value.type = JsonValue::Type::Object;
        skipWhitespace();
        if ( peek() == '}' ) {
            ++m_position;
            return value;
        }
        while ( true ) {
            skipWhitespace();
            auto key = parseString();
            skipWhitespace();
            expect( ':' );
            value.object.emplace( std::move( key.string ), parseValue() );
            skipWhitespace();
            if ( peek() == ',' ) {
                ++m_position;
                continue;
            }
            expect( '}' );
            return value;
        }
    }

    [[nodiscard]] JsonValue
    parseArray()
    {
        expect( '[' );
        JsonValue value;
        value.type = JsonValue::Type::Array;
        skipWhitespace();
        if ( peek() == ']' ) {
            ++m_position;
            return value;
        }
        while ( true ) {
            value.array.push_back( parseValue() );
            skipWhitespace();
            if ( peek() == ',' ) {
                ++m_position;
                continue;
            }
            expect( ']' );
            return value;
        }
    }

    [[nodiscard]] JsonValue
    parseString()
    {
        expect( '"' );
        JsonValue value;
        value.type = JsonValue::Type::String;
        while ( true ) {
            const auto c = peek();
            ++m_position;
            if ( c == '"' ) {
                return value;
            }
            if ( c == '\\' ) {
                const auto escaped = peek();
                ++m_position;
                switch ( escaped ) {
                case '"': value.string += '"'; break;
                case '\\': value.string += '\\'; break;
                case '/': value.string += '/'; break;
                case 'b': value.string += '\b'; break;
                case 'f': value.string += '\f'; break;
                case 'n': value.string += '\n'; break;
                case 'r': value.string += '\r'; break;
                case 't': value.string += '\t'; break;
                case 'u': {
                    if ( m_position + 4 > m_text.size() ) {
                        throw std::runtime_error( "Truncated \\u escape" );
                    }
                    /* Validation only — decode to '?' instead of UTF-8; the
                     * emitter never writes \u escapes. */
                    for ( int i = 0; i < 4; ++i ) {
                        if ( std::isxdigit( static_cast<unsigned char>( m_text[m_position] ) ) == 0 ) {
                            throw std::runtime_error( "Invalid \\u escape" );
                        }
                        ++m_position;
                    }
                    value.string += '?';
                    break;
                }
                default:
                    throw std::runtime_error( std::string( "Invalid escape character '" ) + escaped + "'" );
                }
                continue;
            }
            if ( static_cast<unsigned char>( c ) < 0x20 ) {
                throw std::runtime_error( "Unescaped control character in JSON string" );
            }
            value.string += c;
        }
    }

    [[nodiscard]] JsonValue
    parseBoolean()
    {
        JsonValue value;
        value.type = JsonValue::Type::Boolean;
        if ( m_text.compare( m_position, 4, "true" ) == 0 ) {
            value.boolean = true;
            m_position += 4;
        } else if ( m_text.compare( m_position, 5, "false" ) == 0 ) {
            value.boolean = false;
            m_position += 5;
        } else {
            throw std::runtime_error( "Invalid literal at offset " + std::to_string( m_position ) );
        }
        return value;
    }

    [[nodiscard]] JsonValue
    parseNull()
    {
        if ( m_text.compare( m_position, 4, "null" ) != 0 ) {
            throw std::runtime_error( "Invalid literal at offset " + std::to_string( m_position ) );
        }
        m_position += 4;
        return {};
    }

    [[nodiscard]] JsonValue
    parseNumber()
    {
        const auto begin = m_position;
        if ( peek() == '-' ) {
            ++m_position;
        }
        while ( ( m_position < m_text.size() )
                && ( ( std::isdigit( static_cast<unsigned char>( m_text[m_position] ) ) != 0 )
                     || ( m_text[m_position] == '.' ) || ( m_text[m_position] == 'e' )
                     || ( m_text[m_position] == 'E' ) || ( m_text[m_position] == '+' )
                     || ( m_text[m_position] == '-' ) ) ) {
            ++m_position;
        }
        if ( m_position == begin ) {
            throw std::runtime_error( "Invalid JSON value at offset " + std::to_string( begin ) );
        }
        JsonValue value;
        value.type = JsonValue::Type::Number;
        try {
            value.number = std::stod( m_text.substr( begin, m_position - begin ) );
        } catch ( const std::exception& ) {
            throw std::runtime_error( "Invalid number at offset " + std::to_string( begin ) );
        }
        return value;
    }

    const std::string& m_text;
    std::size_t m_position{ 0 };
};


/**
 * Validate a Chrome trace-event document: top-level object with a
 * traceEvents array whose complete events each carry name/cat/ph/ts/dur/
 * pid/tid with sane values. Returns the number of events; throws
 * std::runtime_error with a diagnostic on the first violation.
 */
[[nodiscard]] inline std::size_t
validateTraceDocument( const JsonValue& document )
{
    if ( !document.isObject() ) {
        throw std::runtime_error( "Trace document is not a JSON object" );
    }
    const auto* const events = document.find( "traceEvents" );
    if ( ( events == nullptr ) || !events->isArray() ) {
        throw std::runtime_error( "Trace document has no traceEvents array" );
    }
    std::size_t index{ 0 };
    for ( const auto& event : events->array ) {
        const auto context = "traceEvents[" + std::to_string( index ) + "]";
        if ( !event.isObject() ) {
            throw std::runtime_error( context + " is not an object" );
        }
        for ( const auto* key : { "name", "cat", "ph" } ) {
            const auto* const field = event.find( key );
            if ( ( field == nullptr ) || !field->isString() || field->string.empty() ) {
                throw std::runtime_error( context + " lacks a non-empty string '" + key + "'" );
            }
        }
        for ( const auto* key : { "ts", "pid", "tid" } ) {
            const auto* const field = event.find( key );
            if ( ( field == nullptr ) || !field->isNumber() ) {
                throw std::runtime_error( context + " lacks a numeric '" + key + "'" );
            }
        }
        if ( event.find( "ph" )->string == "X" ) {
            const auto* const duration = event.find( "dur" );
            if ( ( duration == nullptr ) || !duration->isNumber() || ( duration->number < 0 ) ) {
                throw std::runtime_error( context + " is a complete event without a non-negative 'dur'" );
            }
        }
        if ( event.find( "ts" )->number < 0 ) {
            throw std::runtime_error( context + " has a negative timestamp" );
        }
        ++index;
    }
    return index;
}

/** Count events whose "name" equals @p name. */
[[nodiscard]] inline std::size_t
countTraceEvents( const JsonValue& document, const std::string& name )
{
    const auto* const events = document.find( "traceEvents" );
    if ( ( events == nullptr ) || !events->isArray() ) {
        return 0;
    }
    std::size_t count{ 0 };
    for ( const auto& event : events->array ) {
        const auto* const eventName = event.find( "name" );
        if ( ( eventName != nullptr ) && eventName->isString() && ( eventName->string == name ) ) {
            ++count;
        }
    }
    return count;
}

}  // namespace rapidgzip::telemetry
