#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "Telemetry.hpp"

namespace rapidgzip::telemetry {

/**
 * Process-wide metric registry: counters, gauges, and log-bucketed latency
 * histograms, all designed so the write path is wait-free relaxed atomics
 * and aggregation only happens on scrape (the /metrics endpoint or a bench
 * summary).
 *
 * Counters and histograms shard their cells across cache-line-aligned slots
 * indexed by threadShardIndex() so concurrent writers on different cores do
 * not bounce one line. Registration (name -> handle) takes a mutex but is
 * meant to happen once per call site via a function-local static — see
 * RAPIDGZIP_TELEMETRY_COUNT below.
 */

inline constexpr std::size_t METRIC_SHARD_COUNT = 16;

class Counter
{
public:
    Counter( std::string name, std::string labels, std::string help ) :
        m_name( std::move( name ) ),
        m_labels( std::move( labels ) ),
        m_help( std::move( help ) )
    {}

    /** Gated entry point for sporadic call sites that did not check the gate themselves. */
    void
    add( std::uint64_t amount ) noexcept
    {
        if ( metricsEnabled() ) {
            addUnchecked( amount );
        }
    }

    /** Call only inside a metricsEnabled() branch (or when counting unconditionally is intended). */
    void
    addUnchecked( std::uint64_t amount ) noexcept
    {
        m_shards[threadShardIndex() % METRIC_SHARD_COUNT].value.fetch_add( amount, std::memory_order_relaxed );
    }

    [[nodiscard]] std::uint64_t
    total() const noexcept
    {
        std::uint64_t sum{ 0 };
        for ( const auto& shard : m_shards ) {
            sum += shard.value.load( std::memory_order_relaxed );
        }
        return sum;
    }

    [[nodiscard]] const std::string& name() const noexcept { return m_name; }
    [[nodiscard]] const std::string& labels() const noexcept { return m_labels; }
    [[nodiscard]] const std::string& help() const noexcept { return m_help; }

private:
    struct alignas( 64 ) Shard
    {
        std::atomic<std::uint64_t> value{ 0 };
    };

    std::array<Shard, METRIC_SHARD_COUNT> m_shards{};
    std::string m_name;
    std::string m_labels;
    std::string m_help;
};


class Gauge
{
public:
    Gauge( std::string name, std::string help ) :
        m_name( std::move( name ) ),
        m_help( std::move( help ) )
    {}

    void set( std::int64_t value ) noexcept { m_value.store( value, std::memory_order_relaxed ); }
    void add( std::int64_t delta ) noexcept { m_value.fetch_add( delta, std::memory_order_relaxed ); }

    [[nodiscard]] std::int64_t value() const noexcept { return m_value.load( std::memory_order_relaxed ); }

    [[nodiscard]] const std::string& name() const noexcept { return m_name; }
    [[nodiscard]] const std::string& help() const noexcept { return m_help; }

private:
    std::atomic<std::int64_t> m_value{ 0 };
    std::string m_name;
    std::string m_help;
};


/**
 * Log-bucketed histogram in the HDR style: values are binned by their
 * power-of-two octave, each octave subdivided into 2^SUB_BUCKET_BITS linear
 * sub-buckets, giving a worst-case relative error of 1/2^SUB_BUCKET_BITS
 * (12.5%) at any magnitude — enough resolution for p50/p90/p99 over seven
 * decades of latency with 496 buckets total.
 *
 * Samples are raw integers (we record nanoseconds); `renderScale` converts
 * to the exposition unit (1e-9 -> seconds) only when scraped.
 */
class Histogram
{
public:
    static constexpr unsigned SUB_BUCKET_BITS = 3;
    static constexpr std::size_t SUB_BUCKETS = std::size_t( 1 ) << SUB_BUCKET_BITS;
    /* Octaves 0..63 collapse onto (63 - SUB_BUCKET_BITS + 1) + 1 index blocks. */
    static constexpr std::size_t BUCKET_COUNT = ( 64 - SUB_BUCKET_BITS + 1 ) * SUB_BUCKETS;
    static constexpr std::size_t HISTOGRAM_SHARDS = 4;

    Histogram( std::string name, std::string help, double renderScale ) :
        m_name( std::move( name ) ),
        m_help( std::move( help ) ),
        m_renderScale( renderScale )
    {}

    [[nodiscard]] static constexpr std::size_t
    bucketIndex( std::uint64_t value ) noexcept
    {
        if ( value < SUB_BUCKETS ) {
            return static_cast<std::size_t>( value );
        }
        unsigned exponent{ 63 };
        while ( ( value >> exponent ) == 0 ) {
            --exponent;
        }
        const auto mantissa = ( value >> ( exponent - SUB_BUCKET_BITS ) ) & ( SUB_BUCKETS - 1 );
        return ( static_cast<std::size_t>( exponent - SUB_BUCKET_BITS + 1 ) << SUB_BUCKET_BITS )
               | static_cast<std::size_t>( mantissa );
    }

    /** Smallest value mapping to @p index. Inverse of bucketIndex on bucket boundaries. */
    [[nodiscard]] static constexpr std::uint64_t
    bucketLowerBound( std::size_t index ) noexcept
    {
        if ( index < SUB_BUCKETS ) {
            return index;
        }
        const auto block = index >> SUB_BUCKET_BITS;
        const auto mantissa = index & ( SUB_BUCKETS - 1 );
        const auto exponent = static_cast<unsigned>( block + SUB_BUCKET_BITS - 1 );
        return ( std::uint64_t( 1 ) << exponent )
               + ( static_cast<std::uint64_t>( mantissa ) << ( exponent - SUB_BUCKET_BITS ) );
    }

    void
    record( std::uint64_t value ) noexcept
    {
        if ( metricsEnabled() ) {
            recordUnchecked( value );
        }
    }

    void
    recordUnchecked( std::uint64_t value ) noexcept
    {
        auto& shard = m_shards[threadShardIndex() % HISTOGRAM_SHARDS];
        shard.buckets[bucketIndex( value )].fetch_add( 1, std::memory_order_relaxed );
        shard.sum.fetch_add( value, std::memory_order_relaxed );
        shard.count.fetch_add( 1, std::memory_order_relaxed );
    }

    struct Snapshot
    {
        std::array<std::uint64_t, BUCKET_COUNT> buckets{};
        std::uint64_t sum{ 0 };
        std::uint64_t count{ 0 };

        /**
         * Quantile estimate: midpoint of the bucket holding the q-th sample.
         * Exact up to the 12.5% bucket width; returns 0 for an empty histogram.
         */
        [[nodiscard]] std::uint64_t
        quantile( double q ) const noexcept
        {
            if ( count == 0 ) {
                return 0;
            }
            const auto rank = static_cast<std::uint64_t>( q * static_cast<double>( count - 1 ) );
            std::uint64_t cumulative{ 0 };
            for ( std::size_t i = 0; i < BUCKET_COUNT; ++i ) {
                cumulative += buckets[i];
                if ( cumulative > rank ) {
                    const auto lower = bucketLowerBound( i );
                    const auto upper = ( i + 1 < BUCKET_COUNT ) ? bucketLowerBound( i + 1 ) : lower + 1;
                    return lower + ( upper - lower ) / 2;
                }
            }
            return bucketLowerBound( BUCKET_COUNT - 1 );
        }
    };

    [[nodiscard]] Snapshot
    snapshot() const noexcept
    {
        Snapshot merged;
        for ( const auto& shard : m_shards ) {
            for ( std::size_t i = 0; i < BUCKET_COUNT; ++i ) {
                merged.buckets[i] += shard.buckets[i].load( std::memory_order_relaxed );
            }
            merged.sum += shard.sum.load( std::memory_order_relaxed );
            merged.count += shard.count.load( std::memory_order_relaxed );
        }
        return merged;
    }

    [[nodiscard]] const std::string& name() const noexcept { return m_name; }
    [[nodiscard]] const std::string& help() const noexcept { return m_help; }
    [[nodiscard]] double renderScale() const noexcept { return m_renderScale; }

private:
    struct Shard
    {
        std::array<std::atomic<std::uint64_t>, BUCKET_COUNT> buckets{};
        std::atomic<std::uint64_t> sum{ 0 };
        std::atomic<std::uint64_t> count{ 0 };
    };

    std::array<Shard, HISTOGRAM_SHARDS> m_shards{};
    std::string m_name;
    std::string m_help;
    double m_renderScale;
};


/** Fixed-precision double rendering — NOT std::to_string, which is locale-dependent. */
[[nodiscard]] inline std::string
formatDouble( double value, int precision = 6 )
{
    std::array<char, 64> buffer{};
    std::snprintf( buffer.data(), buffer.size(), "%.*f", precision, value );
    return std::string( buffer.data() );
}

/** Escape a Prometheus label value: backslash, double quote, newline. */
[[nodiscard]] inline std::string
escapeLabelValue( const std::string& value )
{
    std::string escaped;
    escaped.reserve( value.size() );
    for ( const auto c : value ) {
        switch ( c ) {
        case '\\': escaped += "\\\\"; break;
        case '"': escaped += "\\\""; break;
        case '\n': escaped += "\\n"; break;
        default: escaped += c; break;
        }
    }
    return escaped;
}


class Registry
{
public:
    [[nodiscard]] static Registry&
    instance()
    {
        static Registry registry;
        return registry;
    }

    /**
     * Get or register the counter with this family @p name and optional
     * @p labels ("key=\"value\"" form, already escaped). Returned references
     * stay valid for the process lifetime — cache them at call sites.
     */
    [[nodiscard]] Counter&
    counter( const std::string& name, const std::string& help = {}, const std::string& labels = {} )
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        const auto key = labels.empty() ? name : name + "{" + labels + "}";
        auto& slot = m_counters[key];
        if ( !slot ) {
            slot = std::make_unique<Counter>( name, labels, help );
        }
        return *slot;
    }

    [[nodiscard]] Gauge&
    gauge( const std::string& name, const std::string& help = {} )
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        auto& slot = m_gauges[name];
        if ( !slot ) {
            slot = std::make_unique<Gauge>( name, help );
        }
        return *slot;
    }

    [[nodiscard]] Histogram&
    histogram( const std::string& name, const std::string& help = {}, double renderScale = 1e-9 )
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        auto& slot = m_histograms[name];
        if ( !slot ) {
            slot = std::make_unique<Histogram>( name, help, renderScale );
        }
        return *slot;
    }

    /**
     * Render everything in Prometheus exposition format: one # HELP / # TYPE
     * pair per metric family, `_total`-suffixed counter names are the
     * caller's responsibility, histograms render as summaries with
     * p50/p90/p99 quantile series plus _sum and _count.
     */
    [[nodiscard]] std::string
    renderPrometheus() const
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        std::string out;
        out.reserve( 4096 );

        std::string lastFamily;
        for ( const auto& [key, counter] : m_counters ) {
            if ( counter->name() != lastFamily ) {
                lastFamily = counter->name();
                if ( !counter->help().empty() ) {
                    out += "# HELP " + counter->name() + " " + counter->help() + "\n";
                }
                out += "# TYPE " + counter->name() + " counter\n";
            }
            out += key + " " + std::to_string( counter->total() ) + "\n";
        }

        for ( const auto& [name, gauge] : m_gauges ) {
            if ( !gauge->help().empty() ) {
                out += "# HELP " + name + " " + gauge->help() + "\n";
            }
            out += "# TYPE " + name + " gauge\n";
            out += name + " " + std::to_string( gauge->value() ) + "\n";
        }

        for ( const auto& [name, histogram] : m_histograms ) {
            const auto snapshot = histogram->snapshot();
            if ( !histogram->help().empty() ) {
                out += "# HELP " + name + " " + histogram->help() + "\n";
            }
            out += "# TYPE " + name + " summary\n";
            for ( const auto quantile : { 0.5, 0.9, 0.99 } ) {
                const auto value = static_cast<double>( snapshot.quantile( quantile ) ) * histogram->renderScale();
                out += name + "{quantile=\"" + formatDouble( quantile, 2 ) + "\"} "
                       + formatDouble( value ) + "\n";
            }
            out += name + "_sum " + formatDouble( static_cast<double>( snapshot.sum ) * histogram->renderScale() )
                   + "\n";
            out += name + "_count " + std::to_string( snapshot.count ) + "\n";
        }

        return out;
    }

    /** Sum over all counter series of a family — for tests and bench summaries. */
    [[nodiscard]] std::uint64_t
    counterTotal( const std::string& name ) const
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        std::uint64_t sum{ 0 };
        for ( const auto& [key, counter] : m_counters ) {
            if ( counter->name() == name ) {
                sum += counter->total();
            }
        }
        return sum;
    }

private:
    Registry() = default;

    mutable std::mutex m_mutex;
    /* Keys sort counters of one family (bare name, then name{labels}...) adjacently. */
    std::map<std::string, std::unique_ptr<Counter>> m_counters;
    std::map<std::string, std::unique_ptr<Gauge>> m_gauges;
    std::map<std::string, std::unique_ptr<Histogram>> m_histograms;
};

}  // namespace rapidgzip::telemetry

/**
 * One-line counter hook: a single relaxed load when telemetry is off, and a
 * per-call-site cached handle (function-local static inside the enabled
 * branch, so the static-init guard is never touched while disabled).
 */
#define RAPIDGZIP_TELEMETRY_COUNT( counterName, helpText, amount )                                  \
    do {                                                                                            \
        if ( ::rapidgzip::telemetry::metricsEnabled() ) {                                           \
            static auto& rapidgzipTelemetryCounter_ =                                               \
                ::rapidgzip::telemetry::Registry::instance().counter( counterName, helpText );      \
            rapidgzipTelemetryCounter_.addUnchecked( amount );                                      \
        }                                                                                           \
    } while ( false )
