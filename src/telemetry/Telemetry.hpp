#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rapidgzip::telemetry {

/**
 * Process-wide runtime gates for the observability layer.
 *
 * Every instrumentation hook in the library is compiled in unconditionally
 * and guarded by ONE relaxed atomic load on this bitmask. The mask is an
 * inline constant-initialized atomic, so the check never pays a
 * static-initialization guard and never takes a lock:
 *
 *     if ( metricsEnabled() ) { ... slow path: resolve handle, count ... }
 *
 * Bit 0 gates metrics (counters / gauges / histograms in the Registry),
 * bit 1 gates tracing (per-thread span rings). Both default to off; the
 * disabled cost budget — one relaxed load plus a predictable branch per
 * hook — is enforced by the `telemetry_overhead` guard in
 * bench/components_hotpath.cpp.
 */

inline constexpr std::uint32_t METRICS_BIT = 1U << 0U;
inline constexpr std::uint32_t TRACE_BIT = 1U << 1U;

inline std::atomic<std::uint32_t> g_activeBits{ 0 };

[[nodiscard]] inline bool
metricsEnabled() noexcept
{
    return ( g_activeBits.load( std::memory_order_relaxed ) & METRICS_BIT ) != 0;
}

[[nodiscard]] inline bool
traceEnabled() noexcept
{
    return ( g_activeBits.load( std::memory_order_relaxed ) & TRACE_BIT ) != 0;
}

inline void
setMetricsEnabled( bool enabled ) noexcept
{
    if ( enabled ) {
        g_activeBits.fetch_or( METRICS_BIT, std::memory_order_relaxed );
    } else {
        g_activeBits.fetch_and( ~METRICS_BIT, std::memory_order_relaxed );
    }
}

inline void
setTraceEnabled( bool enabled ) noexcept
{
    if ( enabled ) {
        g_activeBits.fetch_or( TRACE_BIT, std::memory_order_relaxed );
    } else {
        g_activeBits.fetch_and( ~TRACE_BIT, std::memory_order_relaxed );
    }
}

/** Monotonic nanoseconds. All span timestamps and latency samples use this clock. */
[[nodiscard]] inline std::uint64_t
nowNs() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch() ).count() );
}

/**
 * Stable small integer for the calling thread, used to pick a counter shard.
 * Assigned round-robin on first use per thread; the thread_local is a
 * trivially-destructible unsigned, so after the first call the cost is one
 * TLS load. Hooks only reach this inside an enabled-gate branch.
 */
[[nodiscard]] inline unsigned
threadShardIndex() noexcept
{
    static std::atomic<unsigned> nextShard{ 0 };
    thread_local unsigned shard = nextShard.fetch_add( 1, std::memory_order_relaxed );
    return shard;
}

}  // namespace rapidgzip::telemetry
