#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "Registry.hpp"
#include "Telemetry.hpp"

namespace rapidgzip::telemetry {

/**
 * Per-thread lock-free span tracing with a drain to Chrome trace-event JSON
 * (loadable in Perfetto / chrome://tracing).
 *
 * Each thread owns a fixed-capacity ring of completed spans; pushing is a
 * single-writer store plus a release-publish of the write index, so hooks
 * never lock and never allocate after the ring exists. Rings are created
 * lazily on a thread's first span — a process that never enables tracing
 * never allocates. The collector keeps shared_ptrs to every ring so spans
 * survive thread exit and can be drained at shutdown. When a ring wraps,
 * the oldest spans are overwritten (most-recent-window semantics); the
 * drain reports how many were dropped.
 */

struct TraceSpan
{
    const char* name{ nullptr };      /**< static string — span names are compile-time literals */
    const char* category{ nullptr };  /**< static string — groups spans into Perfetto tracks */
    std::uint64_t beginNs{ 0 };
    std::uint64_t endNs{ 0 };
};


class TraceRing
{
public:
    static constexpr std::size_t CAPACITY = 16384;  /* power of two; 512 KiB per traced thread */

    explicit TraceRing( std::uint32_t tid ) :
        m_tid( tid )
    {}

    /** Single-writer (the owning thread). The release store publishes the span for snapshot(). */
    void
    push( const TraceSpan& span ) noexcept
    {
        const auto index = m_writeIndex.load( std::memory_order_relaxed );
        m_spans[index & ( CAPACITY - 1 )] = span;
        m_writeIndex.store( index + 1, std::memory_order_release );
    }

    [[nodiscard]] std::uint64_t
    written() const noexcept
    {
        return m_writeIndex.load( std::memory_order_acquire );
    }

    [[nodiscard]] std::uint64_t
    dropped() const noexcept
    {
        const auto total = written();
        return total > CAPACITY ? total - CAPACITY : 0;
    }

    /**
     * Copy out the retained window (the last min(written, CAPACITY) spans in
     * push order). Safe to call concurrently with pushes; a span being
     * overwritten during the copy can come out torn, so drains should happen
     * at quiescent points (shutdown, after joins) — the final atexit drain
     * always is.
     */
    [[nodiscard]] std::vector<TraceSpan>
    snapshot() const
    {
        const auto end = written();
        const auto begin = end > CAPACITY ? end - CAPACITY : 0;
        std::vector<TraceSpan> spans;
        spans.reserve( static_cast<std::size_t>( end - begin ) );
        for ( auto i = begin; i < end; ++i ) {
            spans.push_back( m_spans[i & ( CAPACITY - 1 )] );
        }
        return spans;
    }

    [[nodiscard]] std::uint32_t tid() const noexcept { return m_tid; }

private:
    std::array<TraceSpan, CAPACITY> m_spans{};
    std::atomic<std::uint64_t> m_writeIndex{ 0 };
    std::uint32_t m_tid;
};


class TraceCollector
{
public:
    [[nodiscard]] static TraceCollector&
    instance()
    {
        static TraceCollector collector;
        return collector;
    }

    [[nodiscard]] std::shared_ptr<TraceRing>
    createRing()
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        auto ring = std::make_shared<TraceRing>( static_cast<std::uint32_t>( m_rings.size() + 1 ) );
        m_rings.push_back( ring );
        return ring;
    }

    [[nodiscard]] std::uint64_t
    totalDropped() const
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        std::uint64_t dropped{ 0 };
        for ( const auto& ring : m_rings ) {
            dropped += ring->dropped();
        }
        return dropped;
    }

    /**
     * Drain all rings into Chrome trace-event JSON. Timestamps are
     * microseconds relative to the earliest span so Perfetto's viewport
     * starts at zero. Complete events (ph "X") carry ts + dur.
     */
    void
    drainJson( std::ostream& out ) const
    {
        std::vector<std::pair<std::uint32_t, TraceSpan>> all;
        std::uint64_t dropped{ 0 };
        {
            const std::lock_guard<std::mutex> lock{ m_mutex };
            for ( const auto& ring : m_rings ) {
                dropped += ring->dropped();
                for ( const auto& span : ring->snapshot() ) {
                    if ( span.name != nullptr ) {
                        all.emplace_back( ring->tid(), span );
                    }
                }
            }
        }

        std::uint64_t baseNs{ 0 };
        if ( !all.empty() ) {
            baseNs = std::min_element( all.begin(), all.end(),
                                       [] ( const auto& a, const auto& b ) {
                                           return a.second.beginNs < b.second.beginNs;
                                       } )->second.beginNs;
        }

        out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedSpans\":" << dropped
            << "},\"traceEvents\":[";
        bool first{ true };
        std::array<char, 512> line{};
        for ( const auto& [tid, span] : all ) {
            const auto ts = static_cast<double>( span.beginNs - baseNs ) / 1e3;
            const auto dur = static_cast<double>( span.endNs - span.beginNs ) / 1e3;
            std::snprintf( line.data(), line.size(),
                           "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                           "\"pid\":1,\"tid\":%u}",
                           first ? "" : ",", span.name, span.category, ts, dur, tid );
            out << line.data();
            first = false;
        }
        out << "]}";
    }

    [[nodiscard]] std::size_t
    ringCount() const
    {
        const std::lock_guard<std::mutex> lock{ m_mutex };
        return m_rings.size();
    }

private:
    TraceCollector() = default;

    mutable std::mutex m_mutex;
    std::vector<std::shared_ptr<TraceRing>> m_rings;
};


/** The calling thread's ring, created and registered on first use. */
[[nodiscard]] inline TraceRing&
threadTraceRing()
{
    thread_local std::shared_ptr<TraceRing> ring = TraceCollector::instance().createRing();
    return *ring;
}


/**
 * RAII span. Construction samples the clock only when tracing is enabled;
 * destruction pushes iff tracing was enabled at BOTH ends, so a mid-span
 * disable drops the span instead of creating a ring after shutdown started.
 * Name and category must be string literals (stored by pointer).
 */
class Span
{
public:
    Span( const char* category, const char* name ) noexcept
    {
        if ( traceEnabled() ) {
            m_name = name;
            m_category = category;
            m_beginNs = nowNs();
        }
    }

    Span( const Span& ) = delete;
    Span& operator=( const Span& ) = delete;
    Span( Span&& ) = delete;
    Span& operator=( Span&& ) = delete;

    ~Span()
    {
        if ( ( m_name != nullptr ) && traceEnabled() ) {
            threadTraceRing().push( { m_name, m_category, m_beginNs, nowNs() } );
        }
    }

private:
    const char* m_name{ nullptr };
    const char* m_category{ nullptr };
    std::uint64_t m_beginNs{ 0 };
};


/** Where the atexit drain writes, set by traceToFileAtExit. */
[[nodiscard]] inline std::string&
tracePathStorage()
{
    static std::string path;
    return path;
}

/** Serialize all collected spans to @p path. Returns false if the file could not be opened. */
inline bool
writeTraceFile( const std::string& path )
{
    std::FILE* const file = std::fopen( path.c_str(), "wb" );
    if ( file == nullptr ) {
        return false;
    }
    std::ostringstream stream;
    TraceCollector::instance().drainJson( stream );
    const auto json = stream.str();
    const auto written = std::fwrite( json.data(), 1, json.size(), file );
    std::fclose( file );
    return written == json.size();
}

/**
 * Enable tracing now and register an atexit hook that drains to @p path.
 * Used by the RAPIDGZIP_TRACE environment variable and by --trace options
 * whose mainline has no clean shutdown point.
 */
inline void
traceToFileAtExit( const std::string& path )
{
    /* Touch the singletons BEFORE registering the atexit handler: function-local
     * statics are destroyed in reverse construction order, so sequencing their
     * construction first guarantees the drain runs while they are still alive. */
    (void)TraceCollector::instance();
    (void)Registry::instance();
    tracePathStorage() = path;
    setTraceEnabled( true );
    std::atexit( [] () {
        const auto& target = tracePathStorage();
        if ( !target.empty() ) {
            if ( writeTraceFile( target ) ) {
                std::fprintf( stderr, "rapidgzip: wrote trace to %s (%zu thread rings, %llu spans dropped)\n",
                              target.c_str(), TraceCollector::instance().ringCount(),
                              static_cast<unsigned long long>( TraceCollector::instance().totalDropped() ) );
            } else {
                std::fprintf( stderr, "rapidgzip: failed to write trace to %s\n", target.c_str() );
            }
        }
    } );
}

namespace detail {

/**
 * Pre-main hook: RAPIDGZIP_TRACE=<path> turns on tracing (and metrics, so
 * the counters a trace is usually read next to are live) for ANY binary
 * linking the library, with the drain registered via atexit.
 */
struct TraceEnvironmentInit
{
    TraceEnvironmentInit()
    {
        const char* const path = std::getenv( "RAPIDGZIP_TRACE" );
        if ( ( path != nullptr ) && ( path[0] != '\0' ) ) {
            traceToFileAtExit( path );
            setMetricsEnabled( true );
        }
    }
};

inline TraceEnvironmentInit g_traceEnvironmentInit{};

}  // namespace detail

}  // namespace rapidgzip::telemetry
