#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "../common/Error.hpp"

namespace rapidgzip::failsafe {

/**
 * Process-wide runtime-gated fault injection.
 *
 * Mirrors the telemetry gate (src/telemetry/Telemetry.hpp): every probe in
 * the library is compiled in unconditionally and guarded by ONE relaxed
 * atomic load on an armed-points bitmask. The mask is an inline
 * constant-initialized atomic, so a disabled probe pays one load plus a
 * predictable branch — the budget is enforced by the `failsafe_overhead`
 * guard in bench/components_hotpath.cpp, same ≤2% bar as telemetry.
 *
 * Armed points draw from a per-thread xorshift64* stream (deterministic for
 * a fixed seed and single-threaded call order) and fire with the configured
 * probability. What "fire" means is decided at the probe site: the io layer
 * replays syscall errors (EINTR/EAGAIN/EIO/short read), the decode layer
 * throws FaultInjectedError, the serve layer truncates writes or sleeps.
 *
 * Configuration: programmatic (configure()/disarm()) for tests, or
 * RAPIDGZIP_FAULTS for whole-process campaigns:
 *
 *     RAPIDGZIP_FAULTS=io.read:0.05,chunk.decode:0.02:1234,pool.task:0.1:7:500
 *
 * i.e. comma-separated `<point>:<rate>[:<seed>[:<latency-us>]]`. Tools call
 * configureFromEnvironment() from main(); the library itself never reads
 * the environment.
 */

enum class FaultPoint : std::uint8_t
{
    IO_READ = 0,      /**< StandardFileReader::pread — EINTR/EAGAIN/EIO/short reads */
    CHUNK_DECODE,     /**< ChunkFetcher decode task — throws FaultInjectedError */
    POOL_TASK,        /**< ThreadPool task wrapper — injected latency (jitter) */
    SERVE_WRITE,      /**< Server response flush — partial writes + latency */
    ALLOC,            /**< chunk buffer allocation — throws std::bad_alloc */
    COUNT_,
};

inline constexpr std::size_t FAULT_POINT_COUNT = static_cast<std::size_t>( FaultPoint::COUNT_ );

inline constexpr const char* FAULT_POINT_NAMES[FAULT_POINT_COUNT] = {
    "io.read", "chunk.decode", "pool.task", "serve.write", "alloc",
};

/** Thrown by probes that inject a decode/allocation failure, so tests can
 * tell an injected fault from a genuine defect. Transient by construction:
 * each retry re-draws, so bounded retries almost always clear it. */
class FaultInjectedError : public RapidgzipError
{
public:
    explicit FaultInjectedError( const std::string& message ) :
        RapidgzipError( "injected fault: " + message )
    {}
};

[[nodiscard]] inline const char*
toString( FaultPoint point ) noexcept
{
    return FAULT_POINT_NAMES[static_cast<std::size_t>( point )];
}

[[nodiscard]] inline std::optional<FaultPoint>
parseFaultPoint( std::string_view name ) noexcept
{
    for ( std::size_t i = 0; i < FAULT_POINT_COUNT; ++i ) {
        if ( name == FAULT_POINT_NAMES[i] ) {
            return static_cast<FaultPoint>( i );
        }
    }
    return std::nullopt;
}

/** Bit per point; a probe is live iff its bit is set. One relaxed load. */
inline std::atomic<std::uint32_t> g_armedMask{ 0 };

[[nodiscard]] inline bool
armed( FaultPoint point ) noexcept
{
    return ( g_armedMask.load( std::memory_order_relaxed )
             & ( 1U << static_cast<unsigned>( point ) ) ) != 0;
}

[[nodiscard]] inline bool
anyArmed() noexcept
{
    return g_armedMask.load( std::memory_order_relaxed ) != 0;
}

namespace detail {

/** All cold-path state for one failure point. Only touched behind armed(). */
struct PointState
{
    /** P(fire) = threshold / 2^32; UINT32_MAX means "always". */
    std::atomic<std::uint32_t> threshold{ 0 };
    std::atomic<std::uint64_t> seed{ 0 };
    /** Incremented on every (re)configure so per-thread RNG streams restart. */
    std::atomic<std::uint32_t> epoch{ 0 };
    std::atomic<std::uint32_t> latencyMicroseconds{ 0 };
    std::atomic<std::uint64_t> probes{ 0 };
    std::atomic<std::uint64_t> injected{ 0 };
};

inline PointState g_points[FAULT_POINT_COUNT]{};

[[nodiscard]] inline PointState&
state( FaultPoint point ) noexcept
{
    return g_points[static_cast<std::size_t>( point )];
}

[[nodiscard]] inline constexpr std::uint64_t
splitmix64( std::uint64_t x ) noexcept
{
    x += 0x9E3779B97F4A7C15ULL;
    x = ( x ^ ( x >> 30U ) ) * 0xBF58476D1CE4E5B9ULL;
    x = ( x ^ ( x >> 27U ) ) * 0x94D049BB133111EBULL;
    return x ^ ( x >> 31U );
}

/** Per-thread, per-point xorshift64* stream, reseeded when the point's
 * epoch changes so programmatic reconfiguration is deterministic. */
[[nodiscard]] inline std::uint64_t
nextDraw( FaultPoint point ) noexcept
{
    struct Stream
    {
        std::uint64_t state{ 0 };
        std::uint32_t epoch{ 0xFFFFFFFFU };
    };
    thread_local Stream streams[FAULT_POINT_COUNT];
    thread_local const std::uint64_t threadSalt =
        splitmix64( std::hash<std::thread::id>{}( std::this_thread::get_id() ) );

    auto& stream = streams[static_cast<std::size_t>( point )];
    const auto& pointState = state( point );
    const auto epoch = pointState.epoch.load( std::memory_order_relaxed );
    if ( stream.epoch != epoch ) {
        stream.epoch = epoch;
        stream.state = splitmix64( pointState.seed.load( std::memory_order_relaxed ) ^ threadSalt );
        if ( stream.state == 0 ) {
            stream.state = 0x2545F4914F6CDD1DULL;
        }
    }
    auto x = stream.state;
    x ^= x >> 12U;
    x ^= x << 25U;
    x ^= x >> 27U;
    stream.state = x;
    return x * 0x2545F4914F6CDD1DULL;
}

}  // namespace detail

/**
 * Arm @p point: probes fire with probability @p rate (clamped to [0, 1]).
 * @p latencyMicroseconds additionally makes every firing probe sleep that
 * long before applying its effect (the pool.task point uses latency as its
 * only effect). Rate 0 with latency > 0 is disarmed — nothing would fire.
 */
inline void
configure( FaultPoint point,
           double rate,
           std::uint64_t seed = 0,
           std::uint32_t latencyMicroseconds = 0 )
{
    auto& pointState = detail::state( point );
    const auto clamped = rate < 0.0 ? 0.0 : ( rate > 1.0 ? 1.0 : rate );
    const auto threshold = clamped >= 1.0
                           ? std::uint32_t( 0xFFFFFFFFU )
                           : static_cast<std::uint32_t>( clamped * 4294967296.0 );
    pointState.threshold.store( threshold, std::memory_order_relaxed );
    pointState.seed.store( seed, std::memory_order_relaxed );
    pointState.latencyMicroseconds.store( latencyMicroseconds, std::memory_order_relaxed );
    pointState.epoch.fetch_add( 1, std::memory_order_relaxed );
    if ( threshold > 0 ) {
        g_armedMask.fetch_or( 1U << static_cast<unsigned>( point ), std::memory_order_relaxed );
    } else {
        g_armedMask.fetch_and( ~( 1U << static_cast<unsigned>( point ) ), std::memory_order_relaxed );
    }
}

inline void
disarm( FaultPoint point )
{
    auto& pointState = detail::state( point );
    pointState.threshold.store( 0, std::memory_order_relaxed );
    pointState.latencyMicroseconds.store( 0, std::memory_order_relaxed );
    pointState.epoch.fetch_add( 1, std::memory_order_relaxed );
    g_armedMask.fetch_and( ~( 1U << static_cast<unsigned>( point ) ), std::memory_order_relaxed );
}

inline void
disarmAll()
{
    for ( std::size_t i = 0; i < FAULT_POINT_COUNT; ++i ) {
        disarm( static_cast<FaultPoint>( i ) );
    }
}

/** Probes drawn while armed (cold-path bookkeeping; 0 when never armed). */
[[nodiscard]] inline std::uint64_t
probeCount( FaultPoint point ) noexcept
{
    return detail::state( point ).probes.load( std::memory_order_relaxed );
}

/** Probes that actually fired. Tests assert this is > 0 to prove coverage. */
[[nodiscard]] inline std::uint64_t
injectionCount( FaultPoint point ) noexcept
{
    return detail::state( point ).injected.load( std::memory_order_relaxed );
}

/** Cold path: draw, count, and sleep the configured latency when firing. */
[[nodiscard]] inline bool
shouldInjectSlow( FaultPoint point ) noexcept
{
    auto& pointState = detail::state( point );
    pointState.probes.fetch_add( 1, std::memory_order_relaxed );
    const auto threshold = pointState.threshold.load( std::memory_order_relaxed );
    if ( threshold == 0 ) {
        return false;
    }
    const auto draw = static_cast<std::uint32_t>( detail::nextDraw( point ) >> 32U );
    const bool fire = ( threshold == 0xFFFFFFFFU ) || ( draw < threshold );
    if ( !fire ) {
        return false;
    }
    pointState.injected.fetch_add( 1, std::memory_order_relaxed );
    const auto latency = pointState.latencyMicroseconds.load( std::memory_order_relaxed );
    if ( latency > 0 ) {
        std::this_thread::sleep_for( std::chrono::microseconds( latency ) );
    }
    return true;
}

/** THE probe gate: one relaxed load when the point is disarmed. */
[[nodiscard]] inline bool
shouldInject( FaultPoint point ) noexcept
{
    if ( !armed( point ) ) {
        return false;
    }
    return shouldInjectSlow( point );
}

/** Uniform draw in [0, bound) from the point's stream — probe sites use
 * this to pick among effect variants (which errno, how short a read). */
[[nodiscard]] inline std::uint64_t
drawBelow( FaultPoint point, std::uint64_t bound ) noexcept
{
    return bound <= 1 ? 0 : detail::nextDraw( point ) % bound;
}

/** Throw std::bad_alloc with the configured probability. Placed where a
 * chunk-sized buffer is about to be allocated; callers treat it exactly
 * like a real allocation failure (bounded retry, then propagate). */
inline void
maybeFailAllocation()
{
    if ( shouldInject( FaultPoint::ALLOC ) ) {
        throw std::bad_alloc();
    }
}

/**
 * Parse `<point>:<rate>[:<seed>[:<latency-us>]]` comma-separated spec.
 * Returns false (and arms nothing further) on the first malformed entry.
 */
inline bool
configureFromSpec( std::string_view spec )
{
    std::size_t begin = 0;
    while ( begin <= spec.size() ) {
        auto end = spec.find( ',', begin );
        if ( end == std::string_view::npos ) {
            end = spec.size();
        }
        const auto entry = spec.substr( begin, end - begin );
        begin = end + 1;
        if ( entry.empty() ) {
            if ( end == spec.size() ) {
                break;
            }
            continue;
        }

        const auto colon = entry.find( ':' );
        if ( colon == std::string_view::npos ) {
            return false;
        }
        const auto point = parseFaultPoint( entry.substr( 0, colon ) );
        if ( !point ) {
            return false;
        }

        const std::string rest( entry.substr( colon + 1 ) );
        char* cursor = nullptr;
        const auto rate = std::strtod( rest.c_str(), &cursor );
        if ( cursor == rest.c_str() ) {
            return false;
        }
        std::uint64_t seed = 0;
        std::uint32_t latency = 0;
        if ( *cursor == ':' ) {
            const char* seedBegin = cursor + 1;
            seed = std::strtoull( seedBegin, &cursor, 10 );
            if ( cursor == seedBegin ) {
                return false;
            }
            if ( *cursor == ':' ) {
                const char* latencyBegin = cursor + 1;
                latency = static_cast<std::uint32_t>( std::strtoul( latencyBegin, &cursor, 10 ) );
                if ( cursor == latencyBegin ) {
                    return false;
                }
            }
        }
        if ( *cursor != '\0' ) {
            return false;
        }
        configure( *point, rate, seed, latency );
        if ( end == spec.size() ) {
            break;
        }
    }
    return true;
}

/** Tool entry point: arm from RAPIDGZIP_FAULTS if set. Returns false when
 * the variable exists but is malformed (tools should report and exit). */
inline bool
configureFromEnvironment()
{
    const char* spec = std::getenv( "RAPIDGZIP_FAULTS" );
    if ( ( spec == nullptr ) || ( *spec == '\0' ) ) {
        return true;
    }
    return configureFromSpec( spec );
}

}  // namespace rapidgzip::failsafe
