#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "../bits/BitReader.hpp"
#include "../common/Util.hpp"
#include "../deflate/definitions.hpp"
#include "BlockFinder.hpp"
#include "PrecodeLutCache.hpp"

namespace rapidgzip::blockfinder {

namespace detail {

/** One packed-histogram increment (see PRECODE_HISTOGRAM_INCREMENT). */
[[nodiscard]] constexpr std::uint64_t
precodeHistogramIncrement( unsigned length, unsigned laneBits, unsigned kraftShift ) noexcept
{
    return length == 0
           ? 0
           : ( ( std::uint64_t( 1 ) << ( ( length - 1 ) * laneBits ) )
               | ( ( std::uint64_t( 1 ) << ( 7 - length ) ) << kraftShift ) );
}

}  // namespace detail

/**
 * Per-filter rejection counters for paper Table 1. Each counter tallies how
 * many candidate positions the corresponding cascade stage rejected; stages
 * are ordered cheapest-first so the expensive ones run on a sharply shrinking
 * share of positions.
 */
struct FilterStatistics
{
    std::uint64_t positionsTested{ 0 };
    std::uint64_t invalidFinalBlock{ 0 };
    std::uint64_t invalidCompressionType{ 0 };
    std::uint64_t invalidPrecodeSize{ 0 };
    std::uint64_t invalidPrecodeCode{ 0 };
    std::uint64_t nonOptimalPrecodeCode{ 0 };
    std::uint64_t invalidPrecodeEncodedData{ 0 };
    std::uint64_t invalidDistanceCode{ 0 };
    std::uint64_t nonOptimalDistanceCode{ 0 };
    std::uint64_t invalidLiteralCode{ 0 };
    std::uint64_t nonOptimalLiteralCode{ 0 };
    std::uint64_t validHeaders{ 0 };
};

/**
 * "DBF rapidgzip" in paper Table 2 / §3.2: the cascaded-filter Dynamic block
 * finder. It accepts exactly the headers deflate::readDynamicCodings accepts
 * (zero false negatives vs the naive finder — enforced by testBlockFinder)
 * but rejects the overwhelming majority of positions with a few peeked bits
 * and NEVER builds the literal/distance lookup tables: after the precode
 * stage, code validity is decided from Kraft sums over the length counts
 * alone, which is the decisive cost difference vs the naive full parse.
 */
class DynamicBlockFinderRapid
{
public:
    /**
     * Run the full filter cascade on the candidate at @p position. This is
     * the hot entry point and it is POSITIONLESS: stages 1-4 read the
     * candidate's bits with direct (peekAt-style) loads from the underlying
     * memory — no BitReader state machine, no seek, no refill bookkeeping —
     * which is both faster and far less sensitive to surrounding codegen
     * than cursor-based probing. Only the rare stage-5 survivors construct
     * a reader. Returns true when the position holds a valid non-final
     * Dynamic block header. @p statistics may be nullptr.
     */
    [[nodiscard]] static bool
    testCandidate( BufferView data, std::size_t position, FilterStatistics* statistics )
    {
        FilterStatistics scratch;
        auto& stats = statistics != nullptr ? *statistics : scratch;
        ++stats.positionsTested;

        const auto totalBits = data.size() * 8;
        if ( ( position >= totalBits )
             || ( totalBits - position < deflate::MIN_DYNAMIC_HEADER_BITS ) ) {
            ++stats.invalidFinalBlock;  /* position not even probeable */
            return false;
        }
        const auto bitsLeft = totalBits - position;

        /* Stages 1-4 from ONE direct load: BFINAL, BTYPE, HLIT, HDIST,
         * HCLEN, and the first 13 of up to 19 precode lengths all sit in
         * the first 56 bits. The histogram lives in one 64-bit register
         * with a single table-indexed addition per 3-bit length, and the
         * SAME register accumulates the Kraft sum (see
         * PRECODE_HISTOGRAM_INCREMENT): the overwhelmingly common rejection
         * exits having executed one load, a handful of ALU ops, and zero
         * stores. */
        const auto header = loadBits( data.data(), data.size(), position, HEADER_PEEK_BITS );
        if ( ( header & 0b1U ) != 0 ) {
            ++stats.invalidFinalBlock;
            return false;
        }
        if ( ( ( header >> 1U ) & 0b11U ) != deflate::BLOCK_TYPE_DYNAMIC ) {
            ++stats.invalidCompressionType;
            return false;
        }
        const auto hlit = static_cast<unsigned>( ( header >> 3U ) & 0b11111U );
        if ( hlit > 29 ) {
            ++stats.invalidPrecodeSize;
            return false;
        }
        const auto hdist = static_cast<unsigned>( ( header >> 8U ) & 0b11111U );
        const auto precodeCount = 4 + static_cast<unsigned>( ( header >> 13U ) & 0b1111U );
        const auto precodeBits = precodeCount * deflate::PRECODE_BITS;
        if ( bitsLeft < HEADER_PREFIX_BITS + precodeBits ) {
            ++stats.invalidPrecodeCode;
            return false;
        }

        /* Mask away bits past the transmitted lengths and run FIXED-trip
         * accumulation loops with INDEPENDENT per-index shifts: masked-out
         * lengths are 0 and contribute nothing, the constant trip counts
         * unroll completely, and the independent shifts form an
         * ILP-friendly reduction instead of a serial add/shift chain. */
        std::uint64_t histogram = 0;
        const auto firstBatch = std::min( precodeCount, FIRST_LENGTH_BATCH );
        const auto lengthBits = ( header >> HEADER_PREFIX_BITS )
                                & ( ( std::uint64_t( 1 )
                                      << ( firstBatch * deflate::PRECODE_BITS ) ) - 1U );
        for ( unsigned i = 0; i < FIRST_LENGTH_BATCH; ++i ) {
            histogram += PRECODE_HISTOGRAM_INCREMENT[
                ( lengthBits >> ( i * deflate::PRECODE_BITS ) ) & 0b111U];
        }
        if ( precodeCount > FIRST_LENGTH_BATCH ) {
            /* Up to 6 more lengths (~1/3 of candidates): one more load. */
            const auto tailLengthBits = loadBits(
                data.data(), data.size(), position + HEADER_PEEK_BITS,
                ( precodeCount - FIRST_LENGTH_BATCH ) * deflate::PRECODE_BITS );
            for ( unsigned i = 0; i < deflate::PRECODE_SYMBOLS - FIRST_LENGTH_BATCH; ++i ) {
                histogram += PRECODE_HISTOGRAM_INCREMENT[
                    ( tailLengthBits >> ( i * deflate::PRECODE_BITS ) ) & 0b111U];
            }
        }

        /* The whole validity decision from the packed register — no
         * per-length loop, no early-exit branch chain. */
        const auto kraftSum = histogram >> KRAFT_SHIFT;
        if ( ( histogram == 0 ) || ( kraftSum > 128 ) ) {
            ++stats.invalidPrecodeCode;  /* no symbols at all / over-subscribed */
            return false;
        }
        if ( kraftSum != 128 ) {
            ++stats.nonOptimalPrecodeCode;  /* incomplete code */
            return false;
        }

        return testSurvivor( data, position, header, precodeCount, hlit, hdist, stats );
    }

    /**
     * Cascade on an already-positioned reader (API-compatible wrapper over
     * the positionless fast path; the reader is not consumed).
     */
    [[nodiscard]] static bool
    testHeader( BitReader& reader, FilterStatistics* statistics )
    {
        return testCandidate( { reader.data(), reader.sizeInBytes() }, reader.tell(),
                              statistics );
    }

    /** The pre-optimization precode stage (19 checked 3-bit reads into a
     * byte-array histogram), kept bit-exact for the before/after benchmark
     * (bench/components_hotpath.cpp, table1) and the equivalence tests. */
    [[nodiscard]] static bool
    testHeaderScalar( BitReader& reader, FilterStatistics* statistics )
    {
        return testHeaderScalarImpl( reader, statistics );
    }

    [[nodiscard]] static bool
    testCandidateScalar( BufferView data, std::size_t position, FilterStatistics* statistics )
    {
        BitReader reader( data.data(), data.size() );
        reader.seek( position );
        return testHeaderScalar( reader, statistics );
    }

private:
    /**
     * Packed-histogram increments: lengths 1..7 occupy 5-bit frequency
     * lanes of one 64-bit accumulator (length 0 = unused symbol contributes
     * nothing), and the SAME addition accumulates the Kraft sum
     * sum(count[len] * 2^(7-len)) in the bits above KRAFT_SHIFT — so the
     * full frequency histogram AND the validity decision cost exactly ONE
     * table-indexed addition per 3-bit code length, no byte array, no
     * per-symbol stores, no per-length loop afterwards:
     *
     *   over-subscribed  <=> Kraft sum > 128  (partial sums of nonnegative
     *                        terms are monotone, so an intermediate-length
     *                        violation always shows in the total)
     *   complete         <=> Kraft sum == 128 (the sum is automatically a
     *                        multiple of 2^(7-maxLength), so saturation at
     *                        the maximum used length equals exact equality)
     *
     * Overflow guard: at most PRECODE_SYMBOLS = 19 codes exist and
     * 19 < 2^5 - 1, so a frequency lane can never carry into its neighbor;
     * the Kraft field's maximum 19 * 64 = 1216 fits its 11 bits with the
     * lanes ending at bit 35 < KRAFT_SHIFT (static_asserts below).
     */
    static constexpr unsigned HISTOGRAM_LANE_BITS = 5;
    static constexpr unsigned KRAFT_SHIFT = 40;
    static constexpr std::array<std::uint64_t, 8> PRECODE_HISTOGRAM_INCREMENT = {
        detail::precodeHistogramIncrement( 0, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
        detail::precodeHistogramIncrement( 1, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
        detail::precodeHistogramIncrement( 2, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
        detail::precodeHistogramIncrement( 3, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
        detail::precodeHistogramIncrement( 4, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
        detail::precodeHistogramIncrement( 5, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
        detail::precodeHistogramIncrement( 6, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
        detail::precodeHistogramIncrement( 7, HISTOGRAM_LANE_BITS, KRAFT_SHIFT ),
    };
    static_assert( deflate::PRECODE_SYMBOLS < ( 1U << HISTOGRAM_LANE_BITS ) - 1,
                   "a histogram lane must never carry into its neighbor" );
    static_assert( 7 * HISTOGRAM_LANE_BITS <= KRAFT_SHIFT,
                   "frequency lanes must not reach into the Kraft field" );
    static_assert( deflate::PRECODE_SYMBOLS * 64ULL < ( std::uint64_t( 1 ) << ( 64 - KRAFT_SHIFT ) ),
                   "the Kraft field must not overflow" );
    static_assert( deflate::PRECODE_SYMBOLS * deflate::PRECODE_BITS <= BitReader::MAX_ENSURE_BITS,
                   "all precode lengths must fit one wide peek" );

    /** BFINAL + BTYPE + HLIT + HDIST + HCLEN. */
    static constexpr unsigned HEADER_PREFIX_BITS = 3 + 5 + 5 + 4;
    /** One wide peek covers the prefix plus the first 13 precode lengths. */
    static constexpr unsigned HEADER_PEEK_BITS = 56;
    static constexpr unsigned FIRST_LENGTH_BATCH =
        ( HEADER_PEEK_BITS - HEADER_PREFIX_BITS ) / deflate::PRECODE_BITS;

    /** Positionless zero-padded load — one shared implementation lives on
     * the reader. */
    [[nodiscard]] static std::uint64_t
    loadBits( const std::uint8_t* data, std::size_t sizeInBytes,
              std::size_t bitOffset, unsigned bitCount ) noexcept
    {
        return BitReader::peekAt( data, sizeInBytes, bitOffset, bitCount );
    }

    /**
     * Stage-4 survivor (~0.2% of positions entering the precode stage):
     * materialize the per-symbol lengths and hand stages 5-7 a real reader.
     * Out of line and cold so neither its stack traffic nor its size taxes
     * the rejection path.
     */
#if defined( __GNUC__ ) || defined( __clang__ )
    __attribute__(( noinline, cold ))
#endif
    [[nodiscard]] static bool
    testSurvivor( BufferView data, std::size_t position, std::uint64_t header,
                  unsigned precodeCount, unsigned hlit, unsigned hdist,
                  FilterStatistics& stats )
    {
        std::array<std::uint8_t, deflate::PRECODE_SYMBOLS> precodeLengths{};
        const auto firstBatch = std::min( precodeCount, FIRST_LENGTH_BATCH );
        auto fillBits = header >> HEADER_PREFIX_BITS;
        for ( unsigned i = 0; i < firstBatch; ++i ) {
            precodeLengths[deflate::PRECODE_ORDER[i]] =
                static_cast<std::uint8_t>( fillBits & 0b111U );
            fillBits >>= deflate::PRECODE_BITS;
        }
        auto tailLengthBits = loadBits(
            data.data(), data.size(), position + HEADER_PEEK_BITS,
            deflate::PRECODE_SYMBOLS * deflate::PRECODE_BITS
            - FIRST_LENGTH_BATCH * deflate::PRECODE_BITS );
        for ( unsigned i = FIRST_LENGTH_BATCH; i < precodeCount; ++i ) {
            precodeLengths[deflate::PRECODE_ORDER[i]] =
                static_cast<std::uint8_t>( tailLengthBits & 0b111U );
            tailLengthBits >>= deflate::PRECODE_BITS;
        }

        BitReader reader( data.data(), data.size() );
        reader.seek( position + HEADER_PREFIX_BITS
                     + precodeCount * deflate::PRECODE_BITS );
        return testEncodedData( reader, hlit, hdist, precodeLengths, stats );
    }

    /** The pre-optimization implementation (checked reads, per-symbol
     * counting), kept bit-exact for the before/after benchmarks and the
     * equivalence tests. */
    [[nodiscard]] static bool
    testHeaderScalarImpl( BitReader& reader, FilterStatistics* statistics )
    {
        FilterStatistics scratch;
        auto& stats = statistics != nullptr ? *statistics : scratch;
        ++stats.positionsTested;

        if ( reader.bitsLeft() < deflate::MIN_DYNAMIC_HEADER_BITS ) {
            ++stats.invalidFinalBlock;  /* position not even probeable */
            return false;
        }

        /* Stage 1+2+3: one 8-bit peek covers BFINAL, BTYPE, and HLIT. */
        std::array<std::uint8_t, deflate::PRECODE_SYMBOLS> precodeLengths{};
        const auto prefix = reader.peek( 8 );
        if ( ( prefix & 0b1U ) != 0 ) {
            ++stats.invalidFinalBlock;
            return false;
        }
        if ( ( ( prefix >> 1U ) & 0b11U ) != deflate::BLOCK_TYPE_DYNAMIC ) {
            ++stats.invalidCompressionType;
            return false;
        }
        const auto hlit = static_cast<unsigned>( ( prefix >> 3U ) & 0b11111U );
        if ( hlit > 29 ) {
            ++stats.invalidPrecodeSize;
            return false;
        }
        reader.skip( 8 );
        const auto hdist = static_cast<unsigned>( reader.read( 5 ) );
        const auto precodeCount = 4 + static_cast<unsigned>( reader.read( 4 ) );

        /* Stage 4: per-symbol counting into a byte-array histogram. */
        const auto precodeBits = precodeCount * deflate::PRECODE_BITS;
        if ( reader.bitsLeft() < precodeBits ) {
            ++stats.invalidPrecodeCode;
            return false;
        }
        std::array<std::uint8_t, 8> precodeCountPerLength{};
        for ( unsigned i = 0; i < precodeCount; ++i ) {
            const auto length = static_cast<std::uint8_t>( reader.read( deflate::PRECODE_BITS ) );
            precodeLengths[deflate::PRECODE_ORDER[i]] = length;
            ++precodeCountPerLength[length];
        }
        std::int32_t available = 1;
        unsigned maxPrecodeLength = 0;
        for ( unsigned length = 1; length <= 7; ++length ) {
            available <<= 1;
            available -= precodeCountPerLength[length];
            if ( available < 0 ) {
                ++stats.invalidPrecodeCode;
                return false;
            }
            if ( precodeCountPerLength[length] > 0 ) {
                maxPrecodeLength = length;
            }
        }
        if ( maxPrecodeLength == 0 ) {
            ++stats.invalidPrecodeCode;  /* no symbols at all */
            return false;
        }
        /* Complete iff the Kraft remainder at the max used length is 0. */
        if ( ( available >> ( 7 - maxPrecodeLength ) ) != 0 ) {
            ++stats.nonOptimalPrecodeCode;
            return false;
        }
        return testEncodedData( reader, hlit, hdist, precodeLengths, stats );
    }

    /**
     * Stages 5-7, reached by ~0.2% of the positions that enter stage 4:
     * kept out of line (and out of the inliner's budget) so the hot packed
     * prefix + histogram path stays small enough to inline into the probe
     * loops — measurably decisive for the per-position cost.
     */
#if defined( __GNUC__ ) || defined( __clang__ )
    __attribute__(( noinline, cold ))
#endif
    [[nodiscard]] static bool
    testEncodedData( BitReader& reader,
                     unsigned hlit,
                     unsigned hdist,
                     const std::array<std::uint8_t, deflate::PRECODE_SYMBOLS>& precodeLengths,
                     FilterStatistics& stats )
    {
        /* Stage 5: decode the run-length-encoded code lengths. Only length
         * COUNTS are accumulated — no literal/distance table is ever built.
         * The precode is capped at 7-bit codes, so a cached 128-entry LUT
         * replaces the heap-allocating general HuffmanCoding; encoders reuse
         * length assignments across blocks, so most survivors hit a LUT that
         * an earlier position already built (PrecodeLutCache). */
        const auto& precode = PrecodeLutCache::get( precodeLengths );
        const std::size_t literalCount = 257 + hlit;
        const std::size_t totalLengths = literalCount + 1 + hdist;
        std::array<std::uint16_t, 16> literalCountPerLength{};
        std::array<std::uint16_t, 16> distanceCountPerLength{};
        std::size_t position = 0;
        std::uint8_t previousLength = 0;
        const auto record = [&] ( std::uint8_t length, std::size_t repeat ) {
            if ( length > 0 ) {
                /* Count into whichever side(s) of the literal/distance
                 * boundary the run covers. */
                while ( ( repeat > 0 ) && ( position < literalCount ) ) {
                    ++literalCountPerLength[length];
                    ++position;
                    --repeat;
                }
                distanceCountPerLength[length] =
                    static_cast<std::uint16_t>( distanceCountPerLength[length] + repeat );
                position += repeat;
            } else {
                position += repeat;
            }
        };
        while ( position < totalLengths ) {
            /* peek() zero-pads past the end, and a too-long code is caught by
             * the bitsLeft() comparison — same outcomes as HuffmanCoding's
             * decode() (EOF / invalid pattern / truncated code all reject). */
            const auto entry = precode.entry( reader.peek( PrecodeLut::MAX_PRECODE_LENGTH ) );
            if ( ( entry.length == 0 ) || ( entry.length > reader.bitsLeft() ) ) {
                ++stats.invalidPrecodeEncodedData;
                return false;
            }
            reader.skip( entry.length );
            const auto symbol = entry.symbol;
            if ( symbol <= 15 ) {
                record( static_cast<std::uint8_t>( symbol ), 1 );
                previousLength = static_cast<std::uint8_t>( symbol );
                continue;
            }
            std::size_t repeat = 0;
            std::uint8_t value = 0;
            if ( symbol == 16 ) {
                if ( ( position == 0 ) || ( reader.bitsLeft() < 2 ) ) {
                    ++stats.invalidPrecodeEncodedData;
                    return false;
                }
                repeat = 3 + reader.read( 2 );
                value = previousLength;
            } else if ( symbol == 17 ) {
                if ( reader.bitsLeft() < 3 ) {
                    ++stats.invalidPrecodeEncodedData;
                    return false;
                }
                repeat = 3 + reader.read( 3 );
                previousLength = 0;  /* a following symbol 16 repeats the zero */
            } else {
                if ( reader.bitsLeft() < 7 ) {
                    ++stats.invalidPrecodeEncodedData;
                    return false;
                }
                repeat = 11 + reader.read( 7 );
                previousLength = 0;
            }
            if ( position + repeat > totalLengths ) {
                ++stats.invalidPrecodeEncodedData;
                return false;
            }
            record( value, repeat );
        }

        /* Stage 6: distance code from counts (HDIST range folded in here,
         * matching the paper's cascade order). */
        if ( hdist > 29 ) {
            ++stats.invalidDistanceCode;
            return false;
        }
        if ( !checkCode( distanceCountPerLength, /* singleCodeMayBeIncomplete */ true,
                         stats.invalidDistanceCode, stats.nonOptimalDistanceCode ) ) {
            return false;
        }

        /* Stage 7: literal/length code from counts. */
        if ( !checkCode( literalCountPerLength, /* singleCodeMayBeIncomplete */ false,
                         stats.invalidLiteralCode, stats.nonOptimalLiteralCode ) ) {
            return false;
        }

        ++stats.validHeaders;
        return true;
    }

public:
    /** Sliding probe over every bit offset — positionless, so each probe is
     * a direct load with no cursor bookkeeping at all. */
    [[nodiscard]] std::size_t
    find( BufferView data, std::size_t fromBit )
    {
        const auto sizeBits = data.size() * 8;
        for ( auto offset = fromBit; offset + deflate::MIN_DYNAMIC_HEADER_BITS <= sizeBits;
              ++offset ) {
            if ( testCandidate( data, offset, &m_statistics ) ) {
                return offset;
            }
        }
        return NOT_FOUND;
    }

    [[nodiscard]] const FilterStatistics&
    statistics() const noexcept
    {
        return m_statistics;
    }

private:
    /**
     * Kraft-sum validity from per-length symbol counts: over-subscribed is
     * invalid, incomplete is "non-optimal" (rejected — real encoders emit
     * complete codes), except the legal single-symbol distance code.
     */
    [[nodiscard]] static bool
    checkCode( const std::array<std::uint16_t, 16>& countPerLength,
               bool singleCodeMayBeIncomplete,
               std::uint64_t& invalidCounter,
               std::uint64_t& nonOptimalCounter )
    {
        std::int32_t available = 1;
        unsigned maxLength = 0;
        std::size_t codeCount = 0;
        for ( unsigned length = 1; length <= 15; ++length ) {
            available <<= 1;
            available -= countPerLength[length];
            if ( available < 0 ) {
                ++invalidCounter;
                return false;
            }
            if ( countPerLength[length] > 0 ) {
                maxLength = length;
                codeCount += countPerLength[length];
            }
        }
        if ( codeCount == 0 ) {
            if ( singleCodeMayBeIncomplete ) {
                return true;  /* no distance code at all is legal */
            }
            ++nonOptimalCounter;  /* empty literal code can never be complete */
            return false;
        }
        const bool complete = ( available >> ( 15 - maxLength ) ) == 0;
        if ( !complete && !( singleCodeMayBeIncomplete && ( codeCount == 1 ) ) ) {
            ++nonOptimalCounter;
            return false;
        }
        return true;
    }

    FilterStatistics m_statistics;
};

}  // namespace rapidgzip::blockfinder
