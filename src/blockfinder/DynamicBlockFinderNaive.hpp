#pragma once

#include <cstddef>

#include "../bits/BitReader.hpp"
#include "../common/Util.hpp"
#include "../deflate/DynamicHeader.hpp"
#include "../deflate/definitions.hpp"
#include "BlockFinder.hpp"

namespace rapidgzip::blockfinder {

/**
 * "DBF custom deflate" in paper Table 2: the straightforward finder that
 * attempts a FULL Dynamic-header parse — including building both Huffman
 * tables — at every bit offset. It is the acceptance ground truth the
 * cheaper finders are measured against (and tested against for false
 * negatives); its cost is what the rapid finder's cascaded filters avoid.
 */
class DynamicBlockFinderNaive
{
public:
    /** @p buildCachedTables selects which Huffman tables each candidate
     * parse constructs: false (default) builds the cheap validity-only
     * two-level tables — the ground-truth configuration the equivalence
     * tests use — while true builds the decoder's SHIPPED multi-cached LUTs,
     * which is what a naive finder that feeds a real decoder would pay
     * (bench/table2_components measures this configuration). */
    explicit DynamicBlockFinderNaive( bool buildCachedTables = false ) noexcept :
        m_buildCachedTables( buildCachedTables )
    {}

    [[nodiscard]] std::size_t
    find( BufferView data, std::size_t fromBit ) const
    {
        BitReader reader( data.data(), data.size() );
        const auto sizeBits = reader.sizeInBits();
        if ( sizeBits < deflate::MIN_DYNAMIC_HEADER_BITS ) {
            return NOT_FOUND;
        }
        deflate::DynamicHuffmanCodings codings;
        for ( auto offset = fromBit; offset + deflate::MIN_DYNAMIC_HEADER_BITS <= sizeBits;
              ++offset ) {
            reader.seekAfterPeek( offset );
            /* BFINAL == 0 and BTYPE == 10 (LSB-first: bit 1 clear, bit 2 set). */
            if ( ( reader.peek( 3 ) & 0b111U ) != 0b100U ) {
                continue;
            }
            reader.skip( 3 );
            if ( readDynamicCodings( reader, codings, m_buildCachedTables ) == Error::NONE ) {
                return offset;
            }
        }
        return NOT_FOUND;
    }

private:
    bool m_buildCachedTables{ false };
};

}  // namespace rapidgzip::blockfinder
