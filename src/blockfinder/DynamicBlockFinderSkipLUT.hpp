#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "../bits/BitReader.hpp"
#include "../common/Util.hpp"
#include "../deflate/DynamicHeader.hpp"
#include "../deflate/definitions.hpp"
#include "BlockFinder.hpp"

namespace rapidgzip::blockfinder {

/**
 * pugz-style skip-table Dynamic block finder ("DBF skip-LUT" in paper
 * Table 2). A precomputed table over the next 13 peeked bits — BFINAL(1) +
 * BTYPE(2) + HLIT(5) + HDIST(5) — answers two questions in one load: is this
 * position a plausible header start, and if not, how many bits may be
 * skipped before a plausible start could possibly begin? The skip distance
 * is conservative (a suffix of the window whose known bits are consistent
 * stops the skip), so no real header is ever jumped over. Plausible
 * positions then pay for the full shared-parser verification.
 */
class DynamicBlockFinderSkipLUT
{
public:
    static constexpr unsigned WINDOW_BITS = 13;

    [[nodiscard]] std::size_t
    find( BufferView data, std::size_t fromBit ) const
    {
        const auto& skip = skipTable();
        BitReader reader( data.data(), data.size() );
        const auto sizeBits = reader.sizeInBits();
        deflate::DynamicHuffmanCodings codings;
        auto offset = fromBit;
        while ( offset + deflate::MIN_DYNAMIC_HEADER_BITS <= sizeBits ) {
            reader.seekAfterPeek( offset );
            const auto window = reader.peek( WINDOW_BITS );
            const auto skipBits = skip[window];
            if ( skipBits > 0 ) {
                offset += skipBits;
                continue;
            }
            reader.skip( 3 );
            if ( deflate::readDynamicCodings( reader, codings, /* buildCachedTables */ false ) == Error::NONE ) {
                return offset;
            }
            ++offset;
        }
        return NOT_FOUND;
    }

private:
    /**
     * skipTable()[w] = number of bits to skip before the next position whose
     * *known* bits are still consistent with "BFINAL=0, BTYPE=10, HLIT<=29,
     * HDIST<=29"; 0 = this position itself is plausible. Positions whose
     * plausibility cannot be refuted from the remaining window bits stop the
     * skip — conservativeness over filter power.
     */
    [[nodiscard]] static const std::array<std::uint8_t, std::size_t( 1 ) << WINDOW_BITS>&
    skipTable()
    {
        static const auto table = [] {
            std::array<std::uint8_t, std::size_t( 1 ) << WINDOW_BITS> result{};
            for ( std::uint32_t window = 0; window < result.size(); ++window ) {
                std::uint8_t skip = 0;
                while ( skip < WINDOW_BITS ) {
                    if ( plausible( window >> skip, WINDOW_BITS - skip ) ) {
                        break;
                    }
                    ++skip;
                }
                result[window] = skip;
            }
            return result;
        }();
        return table;
    }

    /** Can @p availableBits known bits of @p window start a wanted header? */
    [[nodiscard]] static constexpr bool
    plausible( std::uint32_t window, unsigned availableBits ) noexcept
    {
        if ( ( availableBits >= 1 ) && ( ( window & 0b1U ) != 0 ) ) {
            return false;  /* BFINAL set */
        }
        if ( availableBits >= 3 ) {
            if ( ( ( window >> 1U ) & 0b11U ) != deflate::BLOCK_TYPE_DYNAMIC ) {
                return false;
            }
        } else if ( availableBits == 2 ) {
            /* Only BTYPE's low bit visible; dynamic needs it clear. */
            if ( ( ( window >> 1U ) & 0b1U ) != 0 ) {
                return false;
            }
        }
        if ( ( availableBits >= 8 ) && ( ( ( window >> 3U ) & 0b11111U ) > 29 ) ) {
            return false;  /* HLIT > 29 */
        }
        if ( ( availableBits >= 13 ) && ( ( ( window >> 8U ) & 0b11111U ) > 29 ) ) {
            return false;  /* HDIST > 29 */
        }
        return true;
    }
};

}  // namespace rapidgzip::blockfinder
