#pragma once

#include <cstddef>
#include <cstdint>

#include "../common/Util.hpp"
#include "BlockFinder.hpp"

namespace rapidgzip::blockfinder {

/**
 * "NBF" in paper Table 2: finds non-compressed (stored) Deflate blocks by
 * scanning BYTE offsets for the LEN/NLEN complement pair that begins a
 * stored block's byte-aligned payload header. The 3 BFINAL/BTYPE bits sit at
 * an unknown sub-byte position in the padding before LEN, so the finder
 * reports the bit offset of LEN itself; the decoder enters via
 * setStartAtStoredData() and assumes BFINAL = 0 (a wrong assumption is
 * caught by the chunk fetcher's re-decode/verification layers).
 *
 * A false positive occurs once per 2^16 random byte positions — cheap to
 * validate downstream; a true stored block is never missed.
 */
class NonCompressedBlockFinder
{
public:
    [[nodiscard]] std::size_t
    find( BufferView data, std::size_t fromBit ) const
    {
        if ( data.size() < 4 ) {
            return NOT_FOUND;
        }
        const auto* const bytes = data.data();
        const auto end = data.size() - 4 + 1;
        for ( auto offset = ceilDiv<std::size_t>( fromBit, 8 ); offset < end; ++offset ) {
            if ( ( ( bytes[offset] ^ bytes[offset + 2] ) == 0xFFU )
                 && ( ( bytes[offset + 1] ^ bytes[offset + 3] ) == 0xFFU ) ) {
                return offset * 8;
            }
        }
        return NOT_FOUND;
    }
};

}  // namespace rapidgzip::blockfinder
