#pragma once

#include <zlib.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "../bits/BitReader.hpp"
#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../deflate/definitions.hpp"
#include "BlockFinder.hpp"

namespace rapidgzip::blockfinder {

/**
 * "DBF zlib" in paper Table 2: the trial-inflate baseline. zlib cannot
 * start mid-byte, so each candidate position is primed with the remaining
 * bits of its byte via inflatePrime() and then trial-decoded. A fresh
 * inflate state per candidate (plus a fake all-zero dictionary so mid-stream
 * back-references do not abort the probe with "distance too far back") is
 * exactly why this baseline is orders of magnitude slower than the custom
 * finders — the cost the paper's Table 2 quantifies.
 *
 * A cheap 3-bit prefilter keeps the finder's *semantics* aligned with the
 * other DBFs (non-final Dynamic blocks only); the probe itself is pure zlib.
 */
class DynamicBlockFinderZlib
{
public:
    static constexpr std::size_t PROBE_INPUT_BYTES = 4 * KiB;
    static constexpr std::size_t PROBE_OUTPUT_BYTES = 8 * KiB;

    [[nodiscard]] std::size_t
    find( BufferView data, std::size_t fromBit ) const
    {
        BitReader reader( data.data(), data.size() );
        const auto sizeBits = reader.sizeInBits();
        const std::vector<std::uint8_t> zeroDictionary( deflate::WINDOW_SIZE, 0 );
        std::vector<std::uint8_t> output( PROBE_OUTPUT_BYTES );

        for ( auto offset = fromBit; offset + deflate::MIN_DYNAMIC_HEADER_BITS <= sizeBits;
              ++offset ) {
            reader.seekAfterPeek( offset );
            if ( ( reader.peek( 3 ) & 0b111U ) != 0b100U ) {
                continue;  /* not a non-final Dynamic block */
            }
            if ( probe( data, offset, zeroDictionary, output ) ) {
                return offset;
            }
        }
        return NOT_FOUND;
    }

private:
    [[nodiscard]] static bool
    probe( BufferView data,
           std::size_t bitOffset,
           const std::vector<std::uint8_t>& dictionary,
           std::vector<std::uint8_t>& output )
    {
        const auto byteOffset = bitOffset / 8;
        const auto bitInByte = static_cast<int>( bitOffset % 8 );

        z_stream stream{};
        if ( inflateInit2( &stream, /* raw Deflate, no wrapper */ -15 ) != Z_OK ) {
            throw RapidgzipError( "inflateInit2 failed" );
        }
        /* Raw inflate accepts a dictionary right after init; zeros stand in
         * for the unknown 32 KiB window. */
        (void)inflateSetDictionary( &stream, dictionary.data(),
                                    static_cast<uInt>( dictionary.size() ) );
        if ( bitInByte != 0 ) {
            const auto primedBits = 8 - bitInByte;
            const auto primedValue = data[byteOffset] >> bitInByte;
            if ( inflatePrime( &stream, primedBits, primedValue ) != Z_OK ) {
                inflateEnd( &stream );
                return false;
            }
        }
        const auto inputBegin = byteOffset + ( bitInByte != 0 ? 1 : 0 );
        const auto inputSize = std::min( PROBE_INPUT_BYTES, data.size() - inputBegin );
        stream.next_in = const_cast<Bytef*>( data.data() + inputBegin );
        stream.avail_in = static_cast<uInt>( inputSize );
        stream.next_out = output.data();
        stream.avail_out = static_cast<uInt>( output.size() );
        const auto code = inflate( &stream, Z_NO_FLUSH );
        inflateEnd( &stream );
        return ( code == Z_OK ) || ( code == Z_STREAM_END ) || ( code == Z_BUF_ERROR );
    }
};

}  // namespace rapidgzip::blockfinder
