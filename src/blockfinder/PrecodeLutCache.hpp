#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "../deflate/definitions.hpp"

namespace rapidgzip::blockfinder {

/**
 * Stage-5 precode decoder for the rapid finder's survivor tail: the precode
 * is capped at code length 7 (its lengths are 3-bit fields), so a complete
 * code always fits a 128-entry single-level LUT that lives ON THE STACK —
 * unlike the general HuffmanCoding, whose std::vector table costs a heap
 * allocation per survivor. Stage 5 parses a bit-serial RLE stream, so it is
 * inherently scalar at every SIMD dispatch level; the win here is the
 * allocation-free fixed-size build plus the cross-survivor cache below.
 */
class PrecodeLut
{
public:
    struct Entry
    {
        std::uint8_t symbol{ 0 };
        std::uint8_t length{ 0 };  /* 0 = invalid bit pattern (incomplete code) */
    };

    static constexpr unsigned MAX_PRECODE_LENGTH = 7;
    static constexpr std::size_t SIZE = std::size_t( 1 ) << MAX_PRECODE_LENGTH;

    /**
     * Build from the 19 per-symbol lengths (0 = unused). The caller — stage
     * 4's packed Kraft check — guarantees a valid complete code, but the
     * table is zero-initialized so an incomplete code (tests may build one)
     * yields length-0 entries instead of stale data.
     */
    void
    initializeFromLengths( const std::array<std::uint8_t, deflate::PRECODE_SYMBOLS>& lengths ) noexcept
    {
        m_entries = {};

        /* Canonical code assignment, exactly as HuffmanCodingBase: count per
         * length, first-code per length, assign in symbol order, bit-reverse
         * (Deflate writes codes MSB-first into the LSB-first stream). */
        std::array<std::uint8_t, MAX_PRECODE_LENGTH + 1> countPerLength{};
        for ( const auto length : lengths ) {
            ++countPerLength[length];
        }
        countPerLength[0] = 0;

        std::array<std::uint8_t, MAX_PRECODE_LENGTH + 1> nextCode{};
        std::uint8_t code = 0;
        for ( unsigned length = 1; length <= MAX_PRECODE_LENGTH; ++length ) {
            code = static_cast<std::uint8_t>( ( code + countPerLength[length - 1] ) << 1U );
            nextCode[length] = code;
        }

        for ( std::uint8_t symbol = 0; symbol < deflate::PRECODE_SYMBOLS; ++symbol ) {
            const auto length = lengths[symbol];
            if ( length == 0 ) {
                continue;
            }
            auto assigned = nextCode[length]++;
            std::uint8_t reversed = 0;
            for ( unsigned bit = 0; bit < length; ++bit ) {
                reversed = static_cast<std::uint8_t>( ( reversed << 1U ) | ( assigned & 1U ) );
                assigned >>= 1U;
            }
            const Entry entry{ symbol, length };
            const auto stride = std::size_t( 1 ) << length;
            for ( std::size_t index = reversed; index < SIZE; index += stride ) {
                m_entries[index] = entry;
            }
        }
    }

    /** Entry for 7 peeked (LSB-first) bits. */
    [[nodiscard]] Entry
    entry( std::uint64_t peekedBits ) const noexcept
    {
        return m_entries[peekedBits & ( SIZE - 1 )];
    }

private:
    std::array<Entry, SIZE> m_entries{};
};

/**
 * Thread-local direct-mapped cache of built precode LUTs. Real streams (and
 * the false-positive soup the finder probes) repeat precode length
 * configurations heavily — encoders reuse their length assignment across
 * blocks — so most survivors hit a LUT built for an earlier position and
 * stage 5 skips construction entirely. The key packs all 19 3-bit lengths
 * (57 bits) plus a constant tag bit distinguishing "never filled" slots;
 * collisions just rebuild, correctness never depends on the cache.
 */
class PrecodeLutCache
{
public:
    [[nodiscard]] static const PrecodeLut&
    get( const std::array<std::uint8_t, deflate::PRECODE_SYMBOLS>& lengths ) noexcept
    {
        std::uint64_t key = 1;  /* tag bit: an empty slot's key 0 never matches */
        for ( const auto length : lengths ) {
            key = ( key << deflate::PRECODE_BITS ) | length;
        }

        thread_local std::array<Slot, SLOT_COUNT> slots{};
        auto& slot = slots[( key * 0x9E3779B97F4A7C15ULL ) >> ( 64U - SLOT_BITS )];
        if ( slot.key != key ) {
            slot.lut.initializeFromLengths( lengths );
            slot.key = key;
        }
        return slot.lut;
    }

private:
    static constexpr unsigned SLOT_BITS = 6;
    static constexpr std::size_t SLOT_COUNT = std::size_t( 1 ) << SLOT_BITS;

    struct Slot
    {
        std::uint64_t key{ 0 };
        PrecodeLut lut;
    };
};

}  // namespace rapidgzip::blockfinder
