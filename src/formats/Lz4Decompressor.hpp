#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../core/FrameParallelReader.hpp"
#include "../io/FileReader.hpp"
#include "../io/SharedFileReader.hpp"
#include "Decompressor.hpp"
#include "Format.hpp"
#include "Lz4Codec.hpp"
#include "Lz4Writer.hpp"
#include "XxHash32.hpp"

namespace rapidgzip::formats {

/**
 * LZ4 frame-format reader on the from-scratch block codec. The frame walk
 * is pure header arithmetic (block sizes are explicit), so the whole
 * stream is segmented without decompressing a byte. Frames with the
 * B.Indep flag decode block-parallel through FrameParallelReader — every
 * block is an independent unit, verified against its own block checksum on
 * the worker that decodes it. Linked-block frames (matches reach into the
 * previous block) take the verified serial path. Content checksums, when
 * present, are verified on every full decompress() in either mode.
 */
class Lz4Decompressor final : public Decompressor
{
public:
    explicit Lz4Decompressor( std::unique_ptr<FileReader> file,
                              ChunkFetcherConfiguration configuration = {} ) :
        m_file( ensureSharedFileReader( std::move( file ) ) ),
        m_configuration( configuration )
    {
        parseFrames();
        if ( m_allIndependent ) {
            buildParallelReader();
        }
    }

    [[nodiscard]] Format
    format() const noexcept override
    {
        return Format::LZ4;
    }

    [[nodiscard]] bool
    parallelizable() const noexcept override
    {
        return m_allIndependent;
    }

    std::size_t
    decompress( const Sink& sink ) override
    {
        if ( !m_allIndependent ) {
            return serialDecompress( sink );  /* verifies checksums per frame */
        }

        /* Parallel mode: sink spans are chunk-sized and cut across frames,
         * so each frame's content hash is accumulated streamingly and
         * checked as its last byte passes through. Every frame's content
         * size is known here (parallel mode requires it). */
        std::size_t frameCursor = 0;
        Xxh32Streamer hasher;
        std::size_t hashedInFrame = 0;

        const auto verifyingSink = [&] ( BufferView span ) {
            auto data = span;
            while ( frameCursor < m_frames.size() ) {
                const auto& frame = m_frames[frameCursor];
                const auto take = std::min<std::size_t>( data.size(),
                                                         frame.contentSize - hashedInFrame );
                if ( frame.hasContentChecksum ) {
                    hasher.update( data.data(), take );
                }
                hashedInFrame += take;
                if ( hashedInFrame == frame.contentSize ) {
                    if ( frame.hasContentChecksum
                         && ( hasher.digest() != frame.contentChecksum ) ) {
                        throw ChecksumError( "LZ4 content checksum mismatch" );
                    }
                    hasher = Xxh32Streamer();
                    hashedInFrame = 0;
                    ++frameCursor;
                } else if ( take == data.size() ) {
                    break;  /* span exhausted mid-frame */
                }
                data = data.subView( take, data.size() - take );
            }
            if ( sink ) {
                sink( span );
            }
        };

        const auto total = m_parallel->decompress( verifyingSink );
        std::size_t expectedTotal = 0;
        for ( const auto& frame : m_frames ) {
            expectedTotal += frame.contentSize;
        }
        if ( total != expectedTotal ) {
            throw RapidgzipError( "LZ4 frame content size mismatch" );
        }
        return total;
    }

    [[nodiscard]] std::size_t
    size() override
    {
        if ( m_allIndependent ) {
            return m_parallel->size();
        }
        ensureSerialSizesKnown();
        std::size_t total = 0;
        for ( const auto& frame : m_frames ) {
            total += frame.contentSize;
        }
        return total;
    }

    [[nodiscard]] std::size_t
    readAt( std::size_t uncompressedOffset, std::uint8_t* buffer, std::size_t size ) override
    {
        if ( m_allIndependent ) {
            return m_parallel->readAt( uncompressedOffset, buffer, size );
        }
        /* Linked blocks: no random access without decoding the frame prefix.
         * Stream and window (stopping once filled) — correctness over speed
         * on the fallback path. */
        return readRangeViaStreaming(
            [this] ( const Sink& sink ) { return serialDecompress( sink ); },
            uncompressedOffset, buffer, size );
    }

    [[nodiscard]] std::size_t
    readSpansAt( std::size_t uncompressedOffset,
                 std::size_t size,
                 std::vector<OwnedSpan>& spans ) override
    {
        if ( m_allIndependent ) {
            return m_parallel->readSpansAt( uncompressedOffset, size, spans );
        }
        return Decompressor::readSpansAt( uncompressedOffset, size, spans );
    }

    [[nodiscard]] std::vector<SeekPoint>
    seekPoints() override
    {
        if ( !m_allIndependent ) {
            return {};
        }
        std::vector<SeekPoint> result;
        for ( const auto& [bits, offset] : m_parallel->chunkSeekPoints() ) {
            result.push_back( { bits, offset } );
        }
        return result;
    }

    [[nodiscard]] bool
    importSeekPoints( const std::vector<SeekPoint>& seekPoints,
                      std::size_t uncompressedSizeBytes ) override
    {
        if ( !m_allIndependent ) {
            return false;
        }
        std::vector<std::pair<std::size_t, std::size_t> > points;
        points.reserve( seekPoints.size() );
        for ( const auto& point : seekPoints ) {
            points.emplace_back( point.compressedOffsetBits, point.uncompressedOffset );
        }
        return m_parallel->adoptChunkOffsets( points, uncompressedSizeBytes );
    }

private:
    struct Block
    {
        std::size_t dataBegin{ 0 };      /**< file offset of the block's payload */
        std::size_t dataSize{ 0 };
        bool storedUncompressed{ false };
        bool hasChecksum{ false };
        std::size_t maxDecompressedSize{ 0 };
    };

    struct Frame
    {
        std::size_t begin{ 0 };          /**< file offset of the magic */
        std::size_t end{ 0 };            /**< one past the frame's last byte */
        std::size_t firstBlock{ 0 };     /**< index range into m_blocks */
        std::size_t blockEnd{ 0 };
        bool independentBlocks{ false };
        bool hasContentChecksum{ false };
        std::uint32_t contentChecksum{ 0 };
        /** From the header when C.Size is set, else measured by a serial
         * sweep (0 until known for content-size-less frames). */
        std::size_t contentSize{ 0 };
        bool contentSizeKnown{ false };
    };

    [[nodiscard]] std::uint32_t
    readLE32At( std::size_t offset ) const
    {
        std::uint8_t bytes[4];
        preadExactly( *m_file, bytes, sizeof( bytes ), offset );
        return readLE32( bytes );
    }

    void
    parseFrames()
    {
        const auto fileSize = m_file->size();
        std::size_t offset = 0;
        while ( offset < fileSize ) {
            if ( offset + 4 > fileSize ) {
                throw RapidgzipError( "Truncated LZ4 stream (dangling bytes after last frame)" );
            }
            const auto magic = readLE32At( offset );
            if ( ( magic & ZSTD_SKIPPABLE_MAGIC_MASK ) == ZSTD_SKIPPABLE_MAGIC_BASE ) {
                if ( offset + 8 > fileSize ) {
                    throw RapidgzipError( "Truncated LZ4 skippable frame" );
                }
                const auto skipSize = readLE32At( offset + 4 );
                if ( offset + 8 + skipSize > fileSize ) {
                    throw RapidgzipError( "Truncated LZ4 skippable frame" );
                }
                offset += 8 + skipSize;
                continue;
            }
            if ( magic != LZ4_FRAME_MAGIC ) {
                throw RapidgzipError( "Not an LZ4 frame at offset " + std::to_string( offset ) );
            }
            offset = parseFrame( offset, fileSize );
        }
        /* Blockwise parallelism needs every frame independent AND sized:
         * the verifying sink walks frame boundaries by content size. Our
         * writer always produces this profile; foreign files without it
         * take the verified serial path. */
        m_allIndependent = !m_frames.empty();
        for ( const auto& frame : m_frames ) {
            m_allIndependent = m_allIndependent
                               && frame.independentBlocks && frame.contentSizeKnown;
        }
    }

    /** Parse one data frame starting at @p begin; returns the end offset. */
    std::size_t
    parseFrame( std::size_t begin, std::size_t fileSize )
    {
        Frame frame;
        frame.begin = begin;
        frame.firstBlock = m_blocks.size();

        if ( begin + 4 + 3 > fileSize ) {
            throw RapidgzipError( "Truncated LZ4 frame header" );
        }
        std::uint8_t flgBd[2];
        preadExactly( *m_file, flgBd, sizeof( flgBd ), begin + 4 );
        const auto flg = flgBd[0];
        const auto bd = flgBd[1];
        if ( ( flg >> 6U ) != 1 ) {
            throw RapidgzipError( "Unsupported LZ4 frame version" );
        }
        if ( ( flg & 0x01U ) != 0 ) {
            throw UnsupportedDataError( "LZ4 frames with dictionary IDs are not supported" );
        }
        frame.independentBlocks = ( flg & 0x20U ) != 0;
        const bool blockChecksums = ( flg & 0x10U ) != 0;
        const bool contentSizePresent = ( flg & 0x08U ) != 0;
        frame.hasContentChecksum = ( flg & 0x04U ) != 0;

        const auto blockMaxCode = ( bd >> 4U ) & 0x7U;
        if ( blockMaxCode < 4 ) {
            throw RapidgzipError( "Invalid LZ4 block max-size code" );
        }
        const auto blockMaxSize = Lz4Writer::blockMaxSizeBytes(
            static_cast<Lz4Writer::BlockMaxSize>( blockMaxCode ) );

        const auto descriptorSize = std::size_t( 2 ) + ( contentSizePresent ? 8 : 0 );
        if ( begin + 4 + descriptorSize + 1 > fileSize ) {
            throw RapidgzipError( "Truncated LZ4 frame header" );
        }
        std::vector<std::uint8_t> descriptor( descriptorSize + 1 );
        preadExactly( *m_file, descriptor.data(), descriptor.size(), begin + 4 );
        const auto expectedHC = descriptor.back();
        const auto actualHC = static_cast<std::uint8_t>(
            ( xxhash32( descriptor.data(), descriptorSize ) >> 8U ) & 0xFFU );
        if ( expectedHC != actualHC ) {
            throw ChecksumError( "LZ4 frame header checksum mismatch" );
        }
        if ( contentSizePresent ) {
            std::uint64_t contentSize = 0;
            for ( unsigned i = 0; i < 8; ++i ) {
                contentSize |= static_cast<std::uint64_t>( descriptor[2 + i] ) << ( 8U * i );
            }
            frame.contentSize = contentSize;
            frame.contentSizeKnown = true;
        }

        auto position = begin + 4 + descriptorSize + 1;
        while ( true ) {
            if ( position + 4 > fileSize ) {
                throw RapidgzipError( "Truncated LZ4 frame (missing EndMark)" );
            }
            const auto blockHeader = readLE32At( position );
            position += 4;
            if ( blockHeader == 0 ) {
                break;  /* EndMark */
            }
            Block block;
            block.storedUncompressed = ( blockHeader & 0x80000000U ) != 0;
            block.dataSize = blockHeader & 0x7FFFFFFFU;
            block.dataBegin = position;
            block.hasChecksum = blockChecksums;
            block.maxDecompressedSize = blockMaxSize;
            if ( block.dataSize > blockMaxSize ) {
                throw RapidgzipError( "LZ4 block exceeds the frame's max block size" );
            }
            position += block.dataSize + ( blockChecksums ? 4 : 0 );
            if ( position > fileSize ) {
                throw RapidgzipError( "Truncated LZ4 block" );
            }
            m_blocks.push_back( block );
        }
        if ( frame.hasContentChecksum ) {
            if ( position + 4 > fileSize ) {
                throw RapidgzipError( "Truncated LZ4 frame (missing content checksum)" );
            }
            frame.contentChecksum = readLE32At( position );
            position += 4;
        }
        frame.blockEnd = m_blocks.size();
        frame.end = position;
        m_frames.push_back( frame );
        return position;
    }

    void
    buildParallelReader()
    {
        std::vector<CompressedFrame> units;
        units.reserve( m_blocks.size() );
        for ( const auto& block : m_blocks ) {
            CompressedFrame unit;
            unit.compressedBeginBits = block.dataBegin * 8;
            unit.compressedEndBits = ( block.dataBegin + block.dataSize
                                       + ( block.hasChecksum ? 4 : 0 ) ) * 8;
            units.push_back( unit );
        }
        auto blocks = std::make_shared<const std::vector<Block> >( m_blocks );
        auto decoder = [blocks] ( const FileReader& file, const CompressedFrame& /* unit */,
                                  std::size_t index, std::vector<std::uint8_t>& out ) {
            decodeBlock( file, ( *blocks )[index], out );
        };
        m_parallel = std::make_unique<FrameParallelReader>(
            std::shared_ptr<const FileReader>( m_file->clone().release() ),
            std::move( units ), std::move( decoder ), m_configuration );
    }

    static void
    decodeBlock( const FileReader& file, const Block& block, std::vector<std::uint8_t>& out )
    {
        std::vector<std::uint8_t> compressed( block.dataSize );
        preadExactly( file, compressed.data(), compressed.size(), block.dataBegin );
        if ( block.hasChecksum ) {
            std::uint8_t checksumBytes[4];
            preadExactly( file, checksumBytes, sizeof( checksumBytes ),
                          block.dataBegin + block.dataSize );
            if ( readLE32( checksumBytes ) != xxhash32( compressed.data(), compressed.size() ) ) {
                throw ChecksumError( "LZ4 block checksum mismatch" );
            }
        }
        if ( block.storedUncompressed ) {
            out.insert( out.end(), compressed.begin(), compressed.end() );
            return;
        }
        lz4DecompressBlock( { compressed.data(), compressed.size() }, out,
                            /* history */ 0, block.maxDecompressedSize );
    }

    /** Serial path: frames in order; linked blocks decode with up to 64 KiB
     * of prior output as history. Flushes at frame ends so the sink's spans
     * respect frame boundaries (the checksum plan depends on that). */
    std::size_t
    serialDecompress( const Sink& sink )
    {
        std::size_t total = 0;
        for ( auto& frame : m_frames ) {
            std::vector<std::uint8_t> output;
            for ( auto i = frame.firstBlock; i < frame.blockEnd; ++i ) {
                const auto& block = m_blocks[i];
                std::vector<std::uint8_t> compressed( block.dataSize );
                preadExactly( *m_file, compressed.data(), compressed.size(), block.dataBegin );
                if ( block.hasChecksum ) {
                    std::uint8_t checksumBytes[4];
                    preadExactly( *m_file, checksumBytes, sizeof( checksumBytes ),
                                  block.dataBegin + block.dataSize );
                    if ( readLE32( checksumBytes )
                         != xxhash32( compressed.data(), compressed.size() ) ) {
                        throw ChecksumError( "LZ4 block checksum mismatch" );
                    }
                }
                if ( block.storedUncompressed ) {
                    output.insert( output.end(), compressed.begin(), compressed.end() );
                } else {
                    const auto history = frame.independentBlocks
                                         ? std::size_t( 0 )
                                         : std::min<std::size_t>( output.size(), 64 * KiB );
                    lz4DecompressBlock( { compressed.data(), compressed.size() }, output,
                                        history, block.maxDecompressedSize );
                }
            }
            if ( frame.contentSizeKnown && ( output.size() != frame.contentSize ) ) {
                throw RapidgzipError( "LZ4 frame content size mismatch" );
            }
            if ( frame.hasContentChecksum
                 && ( xxhash32( output.data(), output.size() ) != frame.contentChecksum ) ) {
                throw ChecksumError( "LZ4 content checksum mismatch" );
            }
            frame.contentSize = output.size();
            frame.contentSizeKnown = true;
            total += output.size();
            if ( sink ) {
                sink( { output.data(), output.size() } );
            }
        }
        return total;
    }

    void
    ensureSerialSizesKnown()
    {
        for ( const auto& frame : m_frames ) {
            if ( !frame.contentSizeKnown ) {
                (void)serialDecompress( {} );
                return;
            }
        }
    }

    std::unique_ptr<SharedFileReader> m_file;
    ChunkFetcherConfiguration m_configuration;

    std::vector<Frame> m_frames;
    std::vector<Block> m_blocks;
    bool m_allIndependent{ false };
    std::unique_ptr<FrameParallelReader> m_parallel;
};

}  // namespace rapidgzip::formats
