#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "../common/Util.hpp"
#include "../core/ChunkCache.hpp"
#include "Format.hpp"

namespace rapidgzip::formats {

/** A position decoding can resume from without any prior state: a frame,
 * block, or checkpoint start. Bit-granular (bzip2 blocks, gzip Deflate
 * boundaries); byte-aligned formats use multiples of 8. */
struct SeekPoint
{
    std::size_t compressedOffsetBits{ 0 };
    std::size_t uncompressedOffset{ 0 };
};

/**
 * The format-dispatch layer's one consumer-facing interface. Each backend
 * (gzip via ParallelGzipReader, zstd, lz4, bzip2) implements streaming
 * whole-file decompression plus random access; the chunked parallel path
 * is used wherever the container provides independently decodable units
 * (zstd seekable/sized frames, lz4 independent blocks, bzip2 blocks, gzip
 * chunks via the two-stage pipeline), with a verified serial fallback
 * otherwise. Obtain instances through makeDecompressor() (Formats.hpp),
 * which probes the magic bytes and routes.
 *
 * Thread model matches the rest of the core: ONE consumer thread drives a
 * Decompressor; the parallelism lives in the chunk decoding underneath.
 */
class Decompressor
{
public:
    /** Receives consecutive uncompressed spans in stream order. The view is
     * only valid during the call. */
    using Sink = std::function<void( BufferView )>;

    virtual ~Decompressor() = default;

    [[nodiscard]] virtual Format
    format() const noexcept = 0;

    /**
     * Decompress the whole stream through @p sink (which may be empty to
     * just verify/measure); returns the uncompressed size. Integrity is
     * checked with whatever the format provides (gzip CRC32 footers, lz4
     * block/content xxhash, bzip2 block + combined stream CRCs, zstd frame
     * checksums inside the vendor decoder); failures throw RapidgzipError.
     */
    virtual std::size_t
    decompress( const Sink& sink ) = 0;

    /** Total uncompressed size. May cost a measuring sweep for containers
     * that do not record sizes (the sweep's chunks stay cached). */
    [[nodiscard]] virtual std::size_t
    size() = 0;

    /** Random access: read up to @p size bytes at @p uncompressedOffset.
     * Returns bytes read (short only at end of stream). */
    [[nodiscard]] virtual std::size_t
    readAt( std::size_t uncompressedOffset, std::uint8_t* buffer, std::size_t size ) = 0;

    /**
     * Zero-copy random access: append up to @p size bytes at
     * @p uncompressedOffset to @p spans as refcounted views. Backends with a
     * chunked parallel reader lend spans straight out of cached decoded
     * chunks (span.borrowed == true, no byte is copied; the span's owner
     * reference keeps the chunk alive past LRU eviction for as long as the
     * caller holds it). This default is the copying fallback: one readAt()
     * into a private buffer wrapped as a single owned span
     * (span.borrowed == false), so every backend supports the interface.
     * Returns bytes appended (short only at end of stream).
     */
    [[nodiscard]] virtual std::size_t
    readSpansAt( std::size_t uncompressedOffset,
                 std::size_t size,
                 std::vector<OwnedSpan>& spans )
    {
        auto buffer = std::make_shared<std::vector<std::uint8_t> >( size );
        const auto got = readAt( uncompressedOffset, buffer->data(), size );
        if ( got == 0 ) {
            return 0;
        }
        OwnedSpan span;
        span.data = buffer->data();
        span.size = got;
        span.borrowed = false;
        span.owner = std::move( buffer );
        spans.push_back( std::move( span ) );
        return got;
    }

    /** Positions decoding can resume from independently; empty when the
     * format exposes none (single-frame streams). */
    [[nodiscard]] virtual std::vector<SeekPoint>
    seekPoints()
    {
        return {};
    }

    /** True when decompress() decodes independent units on a thread pool
     * (as opposed to the verified serial fallback). */
    [[nodiscard]] virtual bool
    parallelizable() const noexcept
    {
        return false;
    }

    /**
     * Adopt seek points previously exported from the SAME archive (a fresh
     * RGZIDX02 sidecar) so size()/readAt() skip the measuring decode sweep
     * that backends without recorded sizes (lz4 blocks, bzip2 blocks)
     * otherwise pay on first access. Offsets are validated against the
     * freshly scanned container geometry; returns false — leaving the
     * reader untouched — when the backend cannot use them or the geometry
     * disagrees (stale index). Gzip resumption needs the checkpoint
     * WINDOWS too and therefore imports the full index via
     * ParallelGzipReader::importIndex instead of this entry point (see
     * Sidecar.hpp for the dispatch).
     */
    [[nodiscard]] virtual bool
    importSeekPoints( const std::vector<SeekPoint>& /* seekPoints */,
                      std::size_t /* uncompressedSizeBytes */ )
    {
        return false;
    }
};

namespace detail {

/** Control-flow token for readRangeViaStreaming's early termination; never
 * escapes the helper. */
struct StreamingReadComplete {};

}  // namespace detail

/**
 * Shared serial-fallback readAt: run @p decompress (any callable taking a
 * Sink) and copy the [offset, offset + size) window of its output stream
 * into @p buffer. Aborts the traversal as soon as the window is filled —
 * backends that stream in frame/chunk-sized pieces stop decoding there
 * instead of draining the whole file. Returns bytes copied (short at end
 * of stream).
 */
template<typename DecompressFn>
[[nodiscard]] inline std::size_t
readRangeViaStreaming( DecompressFn&& decompress,
                       std::size_t offset,
                       std::uint8_t* buffer,
                       std::size_t size )
{
    std::size_t produced = 0;
    std::size_t position = 0;
    try {
        decompress( [&] ( BufferView span ) {
            if ( ( produced < size ) && ( position + span.size() > offset ) ) {
                const auto skip = offset > position ? offset - position : 0;
                const auto take = std::min( size - produced, span.size() - skip );
                std::memcpy( buffer + produced, span.data() + skip, take );
                produced += take;
            }
            position += span.size();
            if ( produced >= size ) {
                throw detail::StreamingReadComplete{};
            }
        } );
    } catch ( const detail::StreamingReadComplete& ) {
        /* window filled before the stream ended */
    }
    return produced;
}

}  // namespace rapidgzip::formats
