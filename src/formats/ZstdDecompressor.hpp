#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../core/FrameParallelReader.hpp"
#include "../io/FileReader.hpp"
#include "../io/SharedFileReader.hpp"
#include "Decompressor.hpp"
#include "Format.hpp"
#include "VendorZstd.hpp"
#include "ZstdWriter.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )

namespace rapidgzip::formats {

/**
 * zstd reader: frame segmentation is done by THIS code — walking frame
 * headers and 3-byte block headers costs no decompression — and the
 * per-frame byte work is delegated to vendor libzstd (a from-scratch
 * FSE/Huffman zstd decoder is out of scope; the value reproduced here is
 * the paper's parallelization layer). Three sources of frame geometry, in
 * preference order:
 *
 *  1. a seekable-format seek table (skippable frame, 0x8F92EAB1 footer):
 *     compressed AND decompressed sizes for every frame, zero decoding;
 *  2. frame headers with a content-size field: sizes recovered per frame
 *     while walking (ZSTD_compress always writes it);
 *  3. neither → verified serial streaming via ZSTD_decompressStream.
 *
 * With sources 1 or 2 decompression fans frames out over the chunk
 * fetcher; integrity rides on zstd's own frame checksums (verified inside
 * the vendor decoder when present) plus the exact-content-size check every
 * frame decode enforces.
 */
class ZstdDecompressor final : public Decompressor
{
public:
    explicit ZstdDecompressor( std::unique_ptr<FileReader> file,
                               ChunkFetcherConfiguration configuration = {} ) :
        m_file( ensureSharedFileReader( std::move( file ) ) ),
        m_configuration( configuration )
    {
        parseFrames();
        if ( m_allSized ) {
            buildParallelReader();
        }
    }

    [[nodiscard]] Format
    format() const noexcept override
    {
        return Format::ZSTD;
    }

    [[nodiscard]] bool
    parallelizable() const noexcept override
    {
        return m_allSized;
    }

    std::size_t
    decompress( const Sink& sink ) override
    {
        if ( m_allSized ) {
            return m_parallel->decompress( sink ? sink : Sink{} );
        }
        /* Serial fallback: vendor streaming decode of the whole file. */
        std::vector<std::uint8_t> compressed( m_file->size() );
        preadExactly( *m_file, compressed.data(), compressed.size(), 0 );
        const auto output = vendorZstdDecompressAll( { compressed.data(), compressed.size() } );
        if ( sink ) {
            sink( { output.data(), output.size() } );
        }
        return output.size();
    }

    [[nodiscard]] std::size_t
    size() override
    {
        if ( m_allSized ) {
            return m_parallel->size();
        }
        if ( !m_serialSizeKnown ) {
            m_serialSize = decompress( {} );
            m_serialSizeKnown = true;
        }
        return m_serialSize;
    }

    [[nodiscard]] std::size_t
    readAt( std::size_t uncompressedOffset, std::uint8_t* buffer, std::size_t size ) override
    {
        if ( m_allSized ) {
            return m_parallel->readAt( uncompressedOffset, buffer, size );
        }
        return readRangeViaStreaming(
            [this] ( const Sink& sink ) { return decompress( sink ); },
            uncompressedOffset, buffer, size );
    }

    [[nodiscard]] std::size_t
    readSpansAt( std::size_t uncompressedOffset,
                 std::size_t size,
                 std::vector<OwnedSpan>& spans ) override
    {
        if ( m_allSized ) {
            return m_parallel->readSpansAt( uncompressedOffset, size, spans );
        }
        return Decompressor::readSpansAt( uncompressedOffset, size, spans );
    }

    [[nodiscard]] std::vector<SeekPoint>
    seekPoints() override
    {
        if ( !m_allSized ) {
            return {};
        }
        std::vector<SeekPoint> result;
        for ( const auto& [bits, offset] : m_parallel->chunkSeekPoints() ) {
            result.push_back( { bits, offset } );
        }
        return result;
    }

    [[nodiscard]] bool
    importSeekPoints( const std::vector<SeekPoint>& seekPoints,
                      std::size_t uncompressedSizeBytes ) override
    {
        /* Without per-frame sizes there is no parallel reader to hand the
         * offsets to (frame decodes need exact destination sizes). */
        if ( !m_allSized ) {
            return false;
        }
        std::vector<std::pair<std::size_t, std::size_t> > points;
        points.reserve( seekPoints.size() );
        for ( const auto& point : seekPoints ) {
            points.emplace_back( point.compressedOffsetBits, point.uncompressedOffset );
        }
        return m_parallel->adoptChunkOffsets( points, uncompressedSizeBytes );
    }

    /** True when a seekable-format seek table was found and adopted. */
    [[nodiscard]] bool
    hasSeekTable() const noexcept
    {
        return m_hasSeekTable;
    }

private:
    [[nodiscard]] std::uint32_t
    readLE32At( std::size_t offset ) const
    {
        std::uint8_t bytes[4];
        preadExactly( *m_file, bytes, sizeof( bytes ), offset );
        return readLE32( bytes );
    }

    /**
     * Byte length of the data frame starting at @p begin, from pure header
     * arithmetic: frame header size from the descriptor, then 3-byte block
     * headers until the last-block flag. Also recovers the content size
     * when the header records one.
     */
    [[nodiscard]] std::pair<std::size_t, std::size_t>  /* (frame end, content size|0) */
    walkDataFrame( std::size_t begin, std::size_t fileSize ) const
    {
        if ( begin + 4 + 1 > fileSize ) {
            throw RapidgzipError( "Truncated zstd frame header" );
        }
        std::uint8_t descriptor = 0;
        preadExactly( *m_file, &descriptor, 1, begin + 4 );
        const auto fcsFlag = descriptor >> 6U;
        const bool singleSegment = ( descriptor & 0x20U ) != 0;
        const bool hasChecksum = ( descriptor & 0x04U ) != 0;
        const auto dictIDFlag = descriptor & 0x03U;
        if ( ( descriptor & 0x08U ) != 0 ) {
            throw RapidgzipError( "Reserved bit set in zstd frame descriptor" );
        }

        static constexpr std::size_t DICT_ID_SIZES[4] = { 0, 1, 2, 4 };
        const auto windowSize = singleSegment ? std::size_t( 0 ) : std::size_t( 1 );
        std::size_t fcsSize = 0;
        switch ( fcsFlag ) {
        case 0: fcsSize = singleSegment ? 1 : 0; break;
        case 1: fcsSize = 2; break;
        case 2: fcsSize = 4; break;
        default: fcsSize = 8; break;
        }

        auto position = begin + 4 + 1 + windowSize + DICT_ID_SIZES[dictIDFlag];
        std::size_t contentSize = 0;
        if ( fcsSize > 0 ) {
            if ( position + fcsSize > fileSize ) {
                throw RapidgzipError( "Truncated zstd frame header" );
            }
            std::uint8_t bytes[8] = {};
            preadExactly( *m_file, bytes, fcsSize, position );
            std::uint64_t value = 0;
            for ( std::size_t i = 0; i < fcsSize; ++i ) {
                value |= static_cast<std::uint64_t>( bytes[i] ) << ( 8U * i );
            }
            if ( fcsSize == 2 ) {
                value += 256;  /* spec: 2-byte field stores size - 256 */
            }
            contentSize = static_cast<std::size_t>( value );
            position += fcsSize;
        }

        while ( true ) {
            if ( position + 3 > fileSize ) {
                throw RapidgzipError( "Truncated zstd frame (block header)" );
            }
            std::uint8_t headerBytes[3];
            preadExactly( *m_file, headerBytes, sizeof( headerBytes ), position );
            const auto header = static_cast<std::uint32_t>( headerBytes[0] )
                                | ( static_cast<std::uint32_t>( headerBytes[1] ) << 8U )
                                | ( static_cast<std::uint32_t>( headerBytes[2] ) << 16U );
            position += 3;
            const bool lastBlock = ( header & 1U ) != 0;
            const auto blockType = ( header >> 1U ) & 3U;
            const auto blockSize = header >> 3U;
            if ( blockType == 3 ) {
                throw RapidgzipError( "Reserved zstd block type" );
            }
            /* RLE blocks store ONE byte regardless of their decoded size. */
            position += blockType == 1 ? 1 : blockSize;
            if ( position > fileSize ) {
                throw RapidgzipError( "Truncated zstd block" );
            }
            if ( lastBlock ) {
                break;
            }
        }
        if ( hasChecksum ) {
            position += 4;
            if ( position > fileSize ) {
                throw RapidgzipError( "Truncated zstd frame (checksum)" );
            }
        }
        /* fcsSize == 0 means "unknown", and a genuinely empty frame also
         * reports 0 — the empty case is harmless to treat as unknown (its
         * serial fallback cost is nil). */
        return { position, contentSize };
    }

    void
    parseFrames()
    {
        const auto fileSize = m_file->size();
        struct RawFrame
        {
            std::size_t begin;
            std::size_t end;
            std::size_t contentSize;
            bool sized;
        };
        std::vector<RawFrame> rawFrames;
        std::vector<std::pair<std::size_t, std::size_t> > seekTable;  /* (cSize, dSize) */

        std::size_t offset = 0;
        while ( offset < fileSize ) {
            if ( offset + 4 > fileSize ) {
                throw RapidgzipError( "Truncated zstd stream (dangling bytes)" );
            }
            const auto magic = readLE32At( offset );
            if ( ( magic & ZSTD_SKIPPABLE_MAGIC_MASK ) == ZSTD_SKIPPABLE_MAGIC_BASE ) {
                if ( offset + 8 > fileSize ) {
                    throw RapidgzipError( "Truncated zstd skippable frame" );
                }
                const auto skipSize = readLE32At( offset + 4 );
                if ( offset + 8 + skipSize > fileSize ) {
                    throw RapidgzipError( "Truncated zstd skippable frame" );
                }
                /* The LAST skippable frame may be a seekable-format seek
                 * table: content ends with the 9-byte footer whose magic is
                 * 0x8F92EAB1. */
                if ( ( offset + 8 + skipSize == fileSize )
                     && ( skipSize >= ZSTD_SEEKABLE_FOOTER_SIZE )
                     && ( readLE32At( fileSize - 4 ) == ZSTD_SEEKABLE_FOOTER_MAGIC ) ) {
                    seekTable = parseSeekTable( offset + 8, skipSize );
                }
                offset += 8 + skipSize;
                continue;
            }
            if ( magic != ZSTD_FRAME_MAGIC ) {
                throw RapidgzipError( "Not a zstd frame at offset " + std::to_string( offset ) );
            }
            const auto [end, contentSize] = walkDataFrame( offset, fileSize );
            rawFrames.push_back( { offset, end, contentSize, contentSize > 0 } );
            offset = end;
        }

        /* A seek table must agree with the walked frame geometry to be
         * trusted (defense against a chance skippable frame carrying the
         * magic); on agreement it supplies any missing sizes. */
        if ( seekTable.size() == rawFrames.size() ) {
            bool consistent = true;
            for ( std::size_t i = 0; i < seekTable.size(); ++i ) {
                const auto compressedSize = rawFrames[i].end - rawFrames[i].begin;
                if ( ( seekTable[i].first != compressedSize )
                     || ( rawFrames[i].sized
                          && ( seekTable[i].second != rawFrames[i].contentSize ) ) ) {
                    consistent = false;
                    break;
                }
            }
            if ( consistent ) {
                m_hasSeekTable = true;
                for ( std::size_t i = 0; i < seekTable.size(); ++i ) {
                    rawFrames[i].contentSize = seekTable[i].second;
                    rawFrames[i].sized = true;
                }
            }
        }

        m_allSized = !rawFrames.empty();
        for ( const auto& frame : rawFrames ) {
            m_allSized = m_allSized && frame.sized;
        }

        m_frames.reserve( rawFrames.size() );
        for ( const auto& frame : rawFrames ) {
            CompressedFrame unit;
            unit.compressedBeginBits = frame.begin * 8;
            unit.compressedEndBits = frame.end * 8;
            unit.uncompressedSize = frame.contentSize;
            m_frames.push_back( unit );
        }
    }

    [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t> >
    parseSeekTable( std::size_t contentBegin, std::size_t contentSize ) const
    {
        const auto footerBegin = contentBegin + contentSize - ZSTD_SEEKABLE_FOOTER_SIZE;
        const auto frameCount = readLE32At( footerBegin );
        std::uint8_t descriptor = 0;
        preadExactly( *m_file, &descriptor, 1, footerBegin + 4 );
        const bool perFrameChecksums = ( descriptor & 0x80U ) != 0;
        const std::size_t entrySize = perFrameChecksums ? 12 : 8;
        if ( contentSize != entrySize * frameCount + ZSTD_SEEKABLE_FOOTER_SIZE ) {
            return {};  /* inconsistent — not a real seek table */
        }
        std::vector<std::pair<std::size_t, std::size_t> > result;
        result.reserve( frameCount );
        for ( std::size_t i = 0; i < frameCount; ++i ) {
            const auto entry = contentBegin + i * entrySize;
            result.emplace_back( readLE32At( entry ), readLE32At( entry + 4 ) );
        }
        return result;
    }

    void
    buildParallelReader()
    {
        auto decoder = [] ( const FileReader& file, const CompressedFrame& unit,
                            std::size_t /* index */, std::vector<std::uint8_t>& out ) {
            const auto begin = unit.compressedBeginBits / 8;
            const auto compressedSize = ( unit.compressedEndBits - unit.compressedBeginBits ) / 8;
            std::vector<std::uint8_t> compressed( compressedSize );
            preadExactly( file, compressed.data(), compressed.size(), begin );
            const auto previousSize = out.size();
            out.resize( previousSize + unit.uncompressedSize );
            const auto written = vendorZstdDecompressFrame(
                { compressed.data(), compressed.size() },
                out.data() + previousSize, unit.uncompressedSize );
            if ( written != unit.uncompressedSize ) {
                throw RapidgzipError( "zstd frame decoded to an unexpected size" );
            }
        };
        m_parallel = std::make_unique<FrameParallelReader>(
            std::shared_ptr<const FileReader>( m_file->clone().release() ),
            m_frames, std::move( decoder ), m_configuration );
    }

    std::unique_ptr<SharedFileReader> m_file;
    ChunkFetcherConfiguration m_configuration;

    std::vector<CompressedFrame> m_frames;
    bool m_allSized{ false };
    bool m_hasSeekTable{ false };
    std::unique_ptr<FrameParallelReader> m_parallel;

    std::size_t m_serialSize{ 0 };
    bool m_serialSizeKnown{ false };
};

}  // namespace rapidgzip::formats

#endif  /* RAPIDGZIP_HAVE_VENDOR_ZSTD */
