#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_LZ4 )

/*
 * Minimal stable-ABI declarations for liblz4's BLOCK API — the oracle the
 * differential tests decode against. Only the runtime liblz4.so.1 is
 * available (no lz4.h), so the two int-signature entry points are declared
 * here; the frame API (LZ4F_*) is deliberately NOT used because it trades
 * in library-version-sensitive structs. Framing is handled by this repo's
 * own parser on both sides (see Lz4Decompressor.hpp), which is exactly
 * what the differential test wants to exercise.
 */
extern "C" {

int LZ4_compress_default( const char* src, char* dst, int srcSize, int dstCapacity );
int LZ4_decompress_safe( const char* src, char* dst, int compressedSize, int dstCapacity );
int LZ4_compressBound( int inputSize );

}  /* extern "C" */

namespace rapidgzip::formats {

inline constexpr bool HAVE_VENDOR_LZ4 = true;

/** Vendor-compress one block (no framing); empty result means incompressible
 * at this size (the caller stores the block uncompressed). */
[[nodiscard]] inline std::vector<std::uint8_t>
vendorLz4CompressBlock( BufferView data )
{
    if ( data.size() > static_cast<std::size_t>( std::numeric_limits<int>::max() ) ) {
        throw RapidgzipError( "LZ4 block too large for the vendor compressor" );
    }
    std::vector<std::uint8_t> result(
        static_cast<std::size_t>( LZ4_compressBound( static_cast<int>( data.size() ) ) ) );
    const auto written = LZ4_compress_default(
        reinterpret_cast<const char*>( data.data() ),
        reinterpret_cast<char*>( result.data() ),
        static_cast<int>( data.size() ), static_cast<int>( result.size() ) );
    if ( written <= 0 ) {
        throw RapidgzipError( "LZ4_compress_default failed" );
    }
    result.resize( static_cast<std::size_t>( written ) );
    return result;
}

/** Vendor-decode one block into exactly @p dstCapacity bytes or less;
 * throws on malformed input. */
[[nodiscard]] inline std::size_t
vendorLz4DecompressBlock( BufferView block, std::uint8_t* dst, std::size_t dstCapacity )
{
    const auto written = LZ4_decompress_safe(
        reinterpret_cast<const char*>( block.data() ), reinterpret_cast<char*>( dst ),
        static_cast<int>( block.size() ), static_cast<int>( dstCapacity ) );
    if ( written < 0 ) {
        throw RapidgzipError( "LZ4_decompress_safe rejected the block" );
    }
    return static_cast<std::size_t>( written );
}

}  // namespace rapidgzip::formats

#else  /* !RAPIDGZIP_HAVE_VENDOR_LZ4 */

namespace rapidgzip::formats {

inline constexpr bool HAVE_VENDOR_LZ4 = false;

}  // namespace rapidgzip::formats

#endif
