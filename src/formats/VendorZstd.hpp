#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )

/*
 * Minimal stable-ABI declarations for libzstd. Container images commonly
 * ship only the runtime libzstd.so.1 (no zstd.h, no dev symlink), so the
 * build links the .so.1 directly and this header declares precisely the
 * documented stable C entry points it uses — simple pointer/size
 * signatures plus the two public streaming buffer structs, whose layout is
 * part of the stable API. Nothing from the experimental/static-only ABI is
 * touched.
 */
extern "C" {

size_t ZSTD_compress( void* dst, size_t dstCapacity,
                      const void* src, size_t srcSize, int compressionLevel );
size_t ZSTD_decompress( void* dst, size_t dstCapacity, const void* src, size_t srcSize );

typedef struct ZSTD_CCtx_s ZSTD_CCtx;
ZSTD_CCtx* ZSTD_createCCtx( void );
size_t ZSTD_freeCCtx( ZSTD_CCtx* cctx );
/* ZSTD_cParameter is an enum, passed as int here; the two values used are
 * frozen by the stable API. */
size_t ZSTD_CCtx_setParameter( ZSTD_CCtx* cctx, int param, int value );
size_t ZSTD_compress2( ZSTD_CCtx* cctx, void* dst, size_t dstCapacity,
                       const void* src, size_t srcSize );
size_t ZSTD_compressBound( size_t srcSize );
unsigned ZSTD_isError( size_t code );
const char* ZSTD_getErrorName( size_t code );
unsigned long long ZSTD_getFrameContentSize( const void* src, size_t srcSize );

typedef struct ZSTD_DCtx_s ZSTD_DCtx;
ZSTD_DCtx* ZSTD_createDCtx( void );
size_t ZSTD_freeDCtx( ZSTD_DCtx* dctx );

typedef struct { const void* src; size_t size; size_t pos; } ZSTD_inBuffer;
typedef struct { void* dst; size_t size; size_t pos; } ZSTD_outBuffer;
/** ZSTD_DStream is a typedef of ZSTD_DCtx in the stable API. */
size_t ZSTD_decompressStream( ZSTD_DCtx* zds, ZSTD_outBuffer* output, ZSTD_inBuffer* input );

}  /* extern "C" */

namespace rapidgzip::formats {

inline constexpr bool HAVE_VENDOR_ZSTD = true;

/** ZSTD_getFrameContentSize sentinels (stable API). */
inline constexpr unsigned long long ZSTD_SENTINEL_CONTENTSIZE_UNKNOWN =
    ~0ULL;          /* (unsigned long long)-1 */
inline constexpr unsigned long long ZSTD_SENTINEL_CONTENTSIZE_ERROR =
    ~0ULL - 1ULL;   /* (unsigned long long)-2 */

/** Stable-API parameter ids (frozen values from zstd.h). */
inline constexpr int ZSTD_PARAM_COMPRESSION_LEVEL = 100;  /* ZSTD_c_compressionLevel */
inline constexpr int ZSTD_PARAM_CHECKSUM_FLAG = 201;      /* ZSTD_c_checksumFlag */

/** One frame, WITH the XXH64 content checksum enabled so that corruption
 * of a frame is detected by the vendor decoder itself — the property the
 * negative tests pin down (plain ZSTD_compress writes no checksum). */
[[nodiscard]] inline std::vector<std::uint8_t>
vendorZstdCompress( BufferView data, int level = 3 )
{
    struct CCtxOwner
    {
        ZSTD_CCtx* context{ ZSTD_createCCtx() };
        ~CCtxOwner() { ZSTD_freeCCtx( context ); }
    } cctx;
    if ( cctx.context == nullptr ) {
        throw RapidgzipError( "ZSTD_createCCtx failed" );
    }
    if ( ( ZSTD_isError( ZSTD_CCtx_setParameter( cctx.context, ZSTD_PARAM_COMPRESSION_LEVEL,
                                                 level ) ) != 0 )
         || ( ZSTD_isError( ZSTD_CCtx_setParameter( cctx.context, ZSTD_PARAM_CHECKSUM_FLAG,
                                                    1 ) ) != 0 ) ) {
        throw RapidgzipError( "ZSTD_CCtx_setParameter failed" );
    }
    std::vector<std::uint8_t> result( ZSTD_compressBound( data.size() ) );
    const auto written = ZSTD_compress2( cctx.context, result.data(), result.size(),
                                         data.data(), data.size() );
    if ( ZSTD_isError( written ) != 0 ) {
        throw RapidgzipError( std::string( "ZSTD_compress2 failed: " )
                              + ZSTD_getErrorName( written ) );
    }
    result.resize( written );
    return result;
}

/** One-shot decompression of a single frame whose content size is known. */
[[nodiscard]] inline std::size_t
vendorZstdDecompressFrame( BufferView frame, std::uint8_t* dst, std::size_t dstCapacity )
{
    const auto written = ZSTD_decompress( dst, dstCapacity, frame.data(), frame.size() );
    if ( ZSTD_isError( written ) != 0 ) {
        throw RapidgzipError( std::string( "ZSTD_decompress failed: " )
                              + ZSTD_getErrorName( written ) );
    }
    return written;
}

/**
 * Streaming decompression of a whole buffer of concatenated (and/or
 * skippable) frames — the vendor ORACLE for the differential tests, and
 * the serial fallback for frames without a recorded content size.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
vendorZstdDecompressAll( BufferView compressed )
{
    struct DCtxOwner
    {
        ZSTD_DCtx* context{ ZSTD_createDCtx() };
        ~DCtxOwner() { ZSTD_freeDCtx( context ); }
    } dctx;
    if ( dctx.context == nullptr ) {
        throw RapidgzipError( "ZSTD_createDCtx failed" );
    }

    std::vector<std::uint8_t> result;
    std::vector<std::uint8_t> chunk( 1 * MiB );
    ZSTD_inBuffer input{ compressed.data(), compressed.size(), 0 };
    std::size_t lastCode = 0;
    while ( input.pos < input.size ) {
        const auto inputBefore = input.pos;
        ZSTD_outBuffer output{ chunk.data(), chunk.size(), 0 };
        lastCode = ZSTD_decompressStream( dctx.context, &output, &input );
        if ( ZSTD_isError( lastCode ) != 0 ) {
            throw RapidgzipError( std::string( "ZSTD_decompressStream failed: " )
                                  + ZSTD_getErrorName( lastCode ) );
        }
        result.insert( result.end(), chunk.begin(),
                       chunk.begin() + static_cast<std::ptrdiff_t>( output.pos ) );
        if ( ( output.pos == 0 ) && ( input.pos == inputBefore ) ) {
            throw RapidgzipError( "zstd stream makes no progress — corrupt input" );
        }
    }
    /* A nonzero return with the input exhausted means the final frame is
     * incomplete (lastCode hints at the bytes still expected). */
    if ( lastCode != 0 ) {
        throw RapidgzipError( "Truncated zstd stream" );
    }
    return result;
}

}  // namespace rapidgzip::formats

#else  /* !RAPIDGZIP_HAVE_VENDOR_ZSTD */

namespace rapidgzip::formats {

inline constexpr bool HAVE_VENDOR_ZSTD = false;

}  // namespace rapidgzip::formats

#endif
