#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../core/ParallelGzipReader.hpp"
#include "../io/FileReader.hpp"
#include "Bzip2Decompressor.hpp"
#include "Decompressor.hpp"
#include "Format.hpp"
#include "Lz4Decompressor.hpp"
#include "ZstdDecompressor.hpp"

namespace rapidgzip::formats {

/**
 * gzip backend of the dispatch layer: ParallelGzipReader (two-stage marker
 * pipeline, full-flush chunking, BGZF BC scan — whichever the stream
 * offers) behind the Decompressor interface. Seek points come from the
 * reader's index, which the first sweep leaves behind for arbitrary gzip.
 */
class GzipDecompressor final : public Decompressor
{
public:
    explicit GzipDecompressor( std::unique_ptr<FileReader> file,
                               ChunkFetcherConfiguration configuration = {} ) :
        m_reader( std::move( file ), configuration )
    {}

    [[nodiscard]] Format
    format() const noexcept override
    {
        return Format::GZIP;
    }

    [[nodiscard]] bool
    parallelizable() const noexcept override
    {
        return true;
    }

    std::size_t
    decompress( const Sink& sink ) override
    {
        /* The sink overload runs the footer-verified sweep BEFORE streaming
         * (and escalates to the serial zlib authority when the chunked
         * state cannot serve a stream verification proved decodable), so a
         * member whose Deflate stream decodes structurally but to wrong
         * bytes throws instead of streaming garbage. */
        return m_reader.decompressAll( sink );
    }

    [[nodiscard]] std::size_t
    size() override
    {
        return m_reader.size();
    }

    [[nodiscard]] std::size_t
    readAt( std::size_t uncompressedOffset, std::uint8_t* buffer, std::size_t size ) override
    {
        m_reader.seek( uncompressedOffset );
        return m_reader.read( buffer, size );
    }

    [[nodiscard]] std::size_t
    readSpansAt( std::size_t uncompressedOffset,
                 std::size_t size,
                 std::vector<OwnedSpan>& spans ) override
    {
        m_reader.seek( uncompressedOffset );
        return m_reader.readSpans( size, spans );
    }

    [[nodiscard]] std::vector<SeekPoint>
    seekPoints() override
    {
        const auto index = m_reader.exportIndex();
        std::vector<SeekPoint> result;
        result.reserve( index.checkpoints.size() );
        for ( const auto& checkpoint : index.checkpoints ) {
            result.push_back( { checkpoint.compressedOffsetBits,
                                checkpoint.uncompressedOffset } );
        }
        return result;
    }

    [[nodiscard]] ParallelGzipReader&
    reader() noexcept
    {
        return m_reader;
    }

private:
    ParallelGzipReader m_reader;
};

/**
 * Probe @p file's magic bytes and construct the matching backend. Backends
 * whose vendor library is missing from the build throw
 * UnsupportedDataError — callers distinguish "format recognized but not
 * built" from "format unknown" (RapidgzipError).
 */
[[nodiscard]] inline std::unique_ptr<Decompressor>
makeDecompressor( std::unique_ptr<FileReader> file,
                  ChunkFetcherConfiguration configuration = {} )
{
    const auto format = detectFormat( *file );
    switch ( format ) {
    case Format::GZIP:
        return std::make_unique<GzipDecompressor>( std::move( file ), configuration );

    case Format::ZSTD:
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
        return std::make_unique<ZstdDecompressor>( std::move( file ), configuration );
#else
        throw UnsupportedDataError( "zstd input detected but libzstd is not available" );
#endif

    case Format::LZ4:
        return std::make_unique<Lz4Decompressor>( std::move( file ), configuration );

    case Format::BZIP2:
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
        return std::make_unique<Bzip2Decompressor>( std::move( file ), configuration );
#else
        throw UnsupportedDataError( "bzip2 input detected but libbz2 is not available" );
#endif

    case Format::UNKNOWN:
        break;
    }
    throw RapidgzipError( "Unrecognized compression format (no known magic bytes)" );
}

}  // namespace rapidgzip::formats
