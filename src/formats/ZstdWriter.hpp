#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "Format.hpp"
#include "VendorZstd.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )

namespace rapidgzip::formats {

inline constexpr std::uint32_t ZSTD_SEEKABLE_FOOTER_MAGIC = 0x8F92EAB1U;
/** The seek table rides in a skippable frame with low nibble 0xE. */
inline constexpr std::uint32_t ZSTD_SEEKABLE_TABLE_MAGIC = ZSTD_SKIPPABLE_MAGIC_BASE | 0xEU;
inline constexpr std::size_t ZSTD_SEEKABLE_FOOTER_SIZE = 9;

/**
 * zstd SEEKABLE-format writer: the input is cut into independently
 * compressed frames of @p frameSize uncompressed bytes, followed by one
 * skippable frame carrying the seek table (per-frame compressed and
 * decompressed sizes + the 9-byte footer with the 0x8F92EAB1 magic) — the
 * layout pzstd/t2sz readers and the contrib seekable API consume. Every
 * data frame is a plain zstd frame, so non-seekable-aware decoders
 * (`zstd -d`, ZSTD_decompressStream) read the stream unchanged and skip
 * the table.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
writeZstdSeekable( BufferView data, int level = 3, std::size_t frameSize = 1 * MiB )
{
    if ( frameSize == 0 ) {
        throw RapidgzipError( "zstd seekable frame size must be nonzero" );
    }

    const auto appendLE32 = [] ( std::vector<std::uint8_t>& out, std::uint32_t value ) {
        for ( unsigned i = 0; i < 4; ++i ) {
            out.push_back( static_cast<std::uint8_t>( value >> ( 8U * i ) ) );
        }
    };

    std::vector<std::uint8_t> result;
    std::vector<std::pair<std::uint32_t, std::uint32_t> > table;  /* (cSize, dSize) */
    for ( std::size_t offset = 0; ( offset < data.size() ) || data.empty(); offset += frameSize ) {
        const auto slice = data.subView( offset, frameSize );
        const auto frame = vendorZstdCompress( slice, level );
        result.insert( result.end(), frame.begin(), frame.end() );
        table.emplace_back( static_cast<std::uint32_t>( frame.size() ),
                            static_cast<std::uint32_t>( slice.size() ) );
        if ( data.empty() ) {
            break;  /* one empty frame so the stream is well-formed */
        }
    }

    /* Seek table: skippable header, 8 bytes per frame (no checksums), then
     * footer = frame count, descriptor byte (bit 7 = checksum flag, clear),
     * seekable magic. */
    const auto tableContentSize = 8 * table.size() + ZSTD_SEEKABLE_FOOTER_SIZE;
    appendLE32( result, ZSTD_SEEKABLE_TABLE_MAGIC );
    appendLE32( result, static_cast<std::uint32_t>( tableContentSize ) );
    for ( const auto& [compressedSize, decompressedSize] : table ) {
        appendLE32( result, compressedSize );
        appendLE32( result, decompressedSize );
    }
    appendLE32( result, static_cast<std::uint32_t>( table.size() ) );
    result.push_back( 0 );  /* descriptor: no per-frame checksums */
    appendLE32( result, ZSTD_SEEKABLE_FOOTER_MAGIC );
    return result;
}

/** Plain (non-seekable) single- or multi-frame zstd: frames of @p frameSize
 * back to back with no seek table — exercises the frame-header-walking
 * fallback of ZstdDecompressor. */
[[nodiscard]] inline std::vector<std::uint8_t>
writeZstdFrames( BufferView data, int level = 3, std::size_t frameSize = 1 * MiB )
{
    std::vector<std::uint8_t> result;
    for ( std::size_t offset = 0; ( offset < data.size() ) || data.empty(); offset += frameSize ) {
        const auto slice = data.subView( offset, frameSize );
        const auto frame = vendorZstdCompress( slice, level );
        result.insert( result.end(), frame.begin(), frame.end() );
        if ( data.empty() ) {
            break;
        }
    }
    return result;
}

}  // namespace rapidgzip::formats

#endif  /* RAPIDGZIP_HAVE_VENDOR_ZSTD */
