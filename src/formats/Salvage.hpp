#pragma once

#include <zlib.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../io/FileReader.hpp"
#include "../io/MemoryFileReader.hpp"
#include "Bzip2Decompressor.hpp"
#include "Format.hpp"
#include "Lz4Codec.hpp"
#include "Lz4Writer.hpp"
#include "VendorBzip2.hpp"
#include "VendorZstd.hpp"
#include "XxHash32.hpp"

namespace rapidgzip::formats {

/**
 * Salvage decode: best-effort recovery from corrupted archives. Where the
 * normal decode path throws on the first damaged byte, salvage decodes
 * every VERIFIABLE unit it can find — gzip member, zstd frame, lz4 frame,
 * bzip2 block — and reports the byte ranges it had to skip as holes
 * instead of aborting the whole archive. A unit only counts as recovered
 * when its own integrity check passes (gzip CRC32+ISIZE, lz4 block/content
 * xxhash, bzip2 block CRC, zstd frame checksum inside the vendor decoder),
 * so emitted output is never unverified guesswork; the uncertainty lives
 * entirely in the holes.
 *
 * Salvage buffers one unit at a time in memory and only hands it to the
 * sink AFTER verification — a deliberately different trade-off from the
 * streaming fast path, where a checksum mismatch can surface after bytes
 * already left the process.
 */
struct SalvageHole
{
    std::size_t compressedBegin{ 0 };  /**< first byte NOT covered by a verified unit */
    std::size_t compressedEnd{ 0 };    /**< one past the last skipped byte */

    [[nodiscard]] std::size_t
    size() const noexcept
    {
        return compressedEnd - compressedBegin;
    }
};

struct SalvageReport
{
    Format format{ Format::UNKNOWN };
    std::vector<SalvageHole> holes;
    std::size_t recoveredUnits{ 0 };   /**< members / frames / blocks decoded and verified */
    std::size_t recoveredBytes{ 0 };   /**< decompressed bytes emitted */

    /** True when the whole input decoded without skips — salvage of an
     * intact archive must report clean() and match the normal decode. */
    [[nodiscard]] bool
    clean() const noexcept
    {
        return holes.empty();
    }

    [[nodiscard]] std::size_t
    missingCompressedBytes() const noexcept
    {
        std::size_t total = 0;
        for ( const auto& hole : holes ) {
            total += hole.size();
        }
        return total;
    }
};

/** Receives each verified unit's decompressed bytes, in compressed-offset
 * order. The view is only valid during the call. */
using SalvageSink = std::function<void( BufferView )>;

namespace salvage_detail {

inline constexpr std::size_t NOT_FOUND = static_cast<std::size_t>( -1 );

/**
 * Tracks the high-water mark of verified coverage and turns gaps into
 * holes. Units are visited in ascending compressed order, so a unit
 * beginning past the water mark proves the bytes in between belong to no
 * verifiable unit.
 */
class HoleTracker
{
public:
    explicit HoleTracker( SalvageReport& report ) :
        m_report( report )
    {}

    void
    markGood( std::size_t begin, std::size_t end )
    {
        if ( begin > m_lastGoodEnd ) {
            m_report.holes.push_back( { m_lastGoodEnd, begin } );
        }
        m_lastGoodEnd = std::max( m_lastGoodEnd, end );
    }

    void
    finish( std::size_t fileSize )
    {
        if ( m_lastGoodEnd < fileSize ) {
            m_report.holes.push_back( { m_lastGoodEnd, fileSize } );
        }
    }

    [[nodiscard]] std::size_t
    lastGoodEnd() const noexcept
    {
        return m_lastGoodEnd;
    }

private:
    SalvageReport& m_report;
    std::size_t m_lastGoodEnd{ 0 };
};

inline void
emitUnit( const SalvageSink& sink,
          SalvageReport& report,
          const std::vector<std::uint8_t>& unit )
{
    report.recoveredUnits += 1;
    report.recoveredBytes += unit.size();
    if ( sink ) {
        sink( { unit.data(), unit.size() } );
    }
}

/* --------------------------------- gzip --------------------------------- */

/** Next plausible member start: 1F 8B (magic) 08 (deflate method). */
[[nodiscard]] inline std::size_t
findGzipCandidate( BufferView data, std::size_t from )
{
    for ( auto pos = from; pos + 3 <= data.size(); ++pos ) {
        if ( ( data[pos] == 0x1FU ) && ( data[pos + 1] == 0x8BU ) && ( data[pos + 2] == 0x08U ) ) {
            return pos;
        }
    }
    return NOT_FOUND;
}

/**
 * Decode exactly ONE gzip member starting at @p begin, appending its
 * output to @p out. zlib verifies the CRC32 + ISIZE footer before
 * reporting Z_STREAM_END, so success implies a verified unit. Returns the
 * compressed bytes consumed. Throws on any malformed or truncated input.
 */
[[nodiscard]] inline std::size_t
decodeOneGzipMember( BufferView data,
                     std::size_t begin,
                     std::vector<std::uint8_t>& out )
{
    z_stream stream{};
    if ( inflateInit2( &stream, 15 + 16 /* gzip wrapper only */ ) != Z_OK ) {
        throw RapidgzipError( "inflateInit2 failed" );
    }
    struct StreamGuard
    {
        z_stream* stream;
        ~StreamGuard() { inflateEnd( stream ); }
    } guard{ &stream };

    const std::uint8_t* input = data.data() + begin;
    std::size_t remaining = data.size() - begin;
    std::size_t fed = 0;
    std::vector<std::uint8_t> buffer( 256 * KiB );

    while ( true ) {
        if ( ( stream.avail_in == 0 ) && ( remaining > 0 ) ) {
            /* avail_in is 32-bit; feed bounded slices so >4 GiB inputs work. */
            const auto feed = std::min<std::size_t>( remaining, 64 * MiB );
            stream.next_in = const_cast<Bytef*>( input );
            stream.avail_in = static_cast<uInt>( feed );
            input += feed;
            remaining -= feed;
            fed += feed;
        }
        stream.next_out = buffer.data();
        stream.avail_out = static_cast<uInt>( buffer.size() );
        const auto result = ::inflate( &stream, Z_NO_FLUSH );
        out.insert( out.end(), buffer.data(), buffer.data() + ( buffer.size() - stream.avail_out ) );
        if ( result == Z_STREAM_END ) {
            return fed - stream.avail_in;
        }
        if ( ( result != Z_OK ) && ( result != Z_BUF_ERROR ) ) {
            throw InvalidGzipStreamError( "damaged gzip member" );
        }
        if ( ( stream.avail_in == 0 ) && ( remaining == 0 ) ) {
            throw InvalidGzipStreamError( "truncated gzip member" );
        }
    }
}

[[nodiscard]] inline SalvageReport
salvageGzip( BufferView data, const SalvageSink& sink )
{
    SalvageReport report;
    report.format = Format::GZIP;
    HoleTracker tracker( report );
    std::vector<std::uint8_t> unit;

    std::size_t pos = 0;
    while ( true ) {
        const auto candidate = findGzipCandidate( data, pos );
        if ( candidate == NOT_FOUND ) {
            break;
        }
        unit.clear();
        try {
            const auto consumed = decodeOneGzipMember( data, candidate, unit );
            tracker.markGood( candidate, candidate + consumed );
            emitUnit( sink, report, unit );
            pos = candidate + consumed;
        } catch ( const RapidgzipError& ) {
            pos = candidate + 1;
        }
    }
    tracker.finish( data.size() );
    return report;
}

/* --------------------------------- zstd --------------------------------- */

[[nodiscard]] inline std::size_t
findZstdCandidate( BufferView data, std::size_t from )
{
    for ( auto pos = from; pos + 4 <= data.size(); ++pos ) {
        const auto magic = readLE32( data.data() + pos );
        if ( ( magic == ZSTD_FRAME_MAGIC )
             || ( ( magic & ZSTD_SKIPPABLE_MAGIC_MASK ) == ZSTD_SKIPPABLE_MAGIC_BASE ) ) {
            return pos;
        }
    }
    return NOT_FOUND;
}

/**
 * Frame end from pure header arithmetic (buffer twin of
 * ZstdDecompressor::walkDataFrame): frame header size from the descriptor,
 * then 3-byte block headers until the last-block flag, plus the optional
 * 4-byte checksum. Throws on truncation or reserved fields.
 */
[[nodiscard]] inline std::size_t
walkZstdDataFrame( BufferView data, std::size_t begin )
{
    const auto fileSize = data.size();
    if ( begin + 4 + 1 > fileSize ) {
        throw RapidgzipError( "Truncated zstd frame header" );
    }
    const auto descriptor = data[begin + 4];
    const auto fcsFlag = descriptor >> 6U;
    const bool singleSegment = ( descriptor & 0x20U ) != 0;
    const bool hasChecksum = ( descriptor & 0x04U ) != 0;
    const auto dictIDFlag = descriptor & 0x03U;
    if ( ( descriptor & 0x08U ) != 0 ) {
        throw RapidgzipError( "Reserved bit set in zstd frame descriptor" );
    }

    static constexpr std::size_t DICT_ID_SIZES[4] = { 0, 1, 2, 4 };
    const auto windowSize = singleSegment ? std::size_t( 0 ) : std::size_t( 1 );
    std::size_t fcsSize = 0;
    switch ( fcsFlag ) {
    case 0: fcsSize = singleSegment ? 1 : 0; break;
    case 1: fcsSize = 2; break;
    case 2: fcsSize = 4; break;
    default: fcsSize = 8; break;
    }

    auto position = begin + 4 + 1 + windowSize + DICT_ID_SIZES[dictIDFlag] + fcsSize;
    if ( position > fileSize ) {
        throw RapidgzipError( "Truncated zstd frame header" );
    }

    while ( true ) {
        if ( position + 3 > fileSize ) {
            throw RapidgzipError( "Truncated zstd frame (block header)" );
        }
        const auto header = static_cast<std::uint32_t>( data[position] )
                            | ( static_cast<std::uint32_t>( data[position + 1] ) << 8U )
                            | ( static_cast<std::uint32_t>( data[position + 2] ) << 16U );
        position += 3;
        const bool lastBlock = ( header & 1U ) != 0;
        const auto blockType = ( header >> 1U ) & 3U;
        const auto blockSize = header >> 3U;
        if ( blockType == 3 ) {
            throw RapidgzipError( "Reserved zstd block type" );
        }
        /* RLE blocks store ONE byte regardless of their decoded size. */
        position += blockType == 1 ? 1 : blockSize;
        if ( position > fileSize ) {
            throw RapidgzipError( "Truncated zstd block" );
        }
        if ( lastBlock ) {
            break;
        }
    }
    if ( hasChecksum ) {
        position += 4;
        if ( position > fileSize ) {
            throw RapidgzipError( "Truncated zstd frame (checksum)" );
        }
    }
    return position;
}

[[nodiscard]] inline SalvageReport
salvageZstd( BufferView data, const SalvageSink& sink )
{
#if defined( RAPIDGZIP_HAVE_VENDOR_ZSTD )
    SalvageReport report;
    report.format = Format::ZSTD;
    HoleTracker tracker( report );

    std::size_t pos = 0;
    while ( true ) {
        const auto candidate = findZstdCandidate( data, pos );
        if ( candidate == NOT_FOUND ) {
            break;
        }
        const auto magic = readLE32( data.data() + candidate );
        if ( ( magic & ZSTD_SKIPPABLE_MAGIC_MASK ) == ZSTD_SKIPPABLE_MAGIC_BASE ) {
            /* Skippable frames carry no content: consume them (they extend
             * verified coverage when intact) but count no unit. */
            if ( candidate + 8 > data.size() ) {
                pos = candidate + 1;
                continue;
            }
            const auto payload = readLE32( data.data() + candidate + 4 );
            const auto end = candidate + 8 + payload;
            if ( ( end < candidate ) || ( end > data.size() ) ) {
                pos = candidate + 1;
                continue;
            }
            tracker.markGood( candidate, end );
            pos = end;
            continue;
        }
        try {
            const auto end = walkZstdDataFrame( data, candidate );
            /* The vendor decoder re-verifies everything including the frame
             * checksum when present. */
            const auto unit = vendorZstdDecompressAll( { data.data() + candidate,
                                                         end - candidate } );
            tracker.markGood( candidate, end );
            emitUnit( sink, report, unit );
            pos = end;
        } catch ( const std::exception& ) {
            pos = candidate + 1;
        }
    }
    tracker.finish( data.size() );
    return report;
#else
    (void)data;
    (void)sink;
    throw UnsupportedDataError( "zstd salvage requires the zstd backend (libzstd not found at build time)" );
#endif
}

/* ---------------------------------- lz4 ---------------------------------- */

[[nodiscard]] inline std::size_t
findLz4Candidate( BufferView data, std::size_t from )
{
    for ( auto pos = from; pos + 4 <= data.size(); ++pos ) {
        if ( readLE32( data.data() + pos ) == LZ4_FRAME_MAGIC ) {
            return pos;
        }
    }
    return NOT_FOUND;
}

/**
 * Decode and verify ONE lz4 frame at @p begin, appending its output to
 * @p out. All integrity material the frame carries is checked: the header
 * checksum byte, per-block xxhash32 when present, and the whole-content
 * xxhash32 when present. Returns the compressed bytes consumed.
 */
[[nodiscard]] inline std::size_t
decodeOneLz4Frame( BufferView data,
                   std::size_t begin,
                   std::vector<std::uint8_t>& out )
{
    const auto fileSize = data.size();
    if ( begin + 4 + 3 > fileSize ) {
        throw RapidgzipError( "Truncated LZ4 frame header" );
    }
    const auto flg = data[begin + 4];
    const auto bd = data[begin + 5];
    if ( ( flg >> 6U ) != 1 ) {
        throw RapidgzipError( "Unsupported LZ4 frame version" );
    }
    if ( ( flg & 0x01U ) != 0 ) {
        throw UnsupportedDataError( "LZ4 frames with dictionary IDs are not supported" );
    }
    const bool independentBlocks = ( flg & 0x20U ) != 0;
    const bool blockChecksums = ( flg & 0x10U ) != 0;
    const bool contentSizePresent = ( flg & 0x08U ) != 0;
    const bool hasContentChecksum = ( flg & 0x04U ) != 0;

    const auto blockMaxCode = ( bd >> 4U ) & 0x7U;
    if ( blockMaxCode < 4 ) {
        throw RapidgzipError( "Invalid LZ4 block max-size code" );
    }
    const auto blockMaxSize = Lz4Writer::blockMaxSizeBytes(
        static_cast<Lz4Writer::BlockMaxSize>( blockMaxCode ) );

    const auto descriptorSize = std::size_t( 2 ) + ( contentSizePresent ? 8 : 0 );
    if ( begin + 4 + descriptorSize + 1 > fileSize ) {
        throw RapidgzipError( "Truncated LZ4 frame header" );
    }
    const auto* descriptor = data.data() + begin + 4;
    const auto expectedHC = descriptor[descriptorSize];
    const auto actualHC = static_cast<std::uint8_t>(
        ( xxhash32( descriptor, descriptorSize ) >> 8U ) & 0xFFU );
    if ( expectedHC != actualHC ) {
        throw ChecksumError( "LZ4 frame header checksum mismatch" );
    }
    std::uint64_t contentSize = 0;
    if ( contentSizePresent ) {
        for ( unsigned i = 0; i < 8; ++i ) {
            contentSize |= static_cast<std::uint64_t>( descriptor[2 + i] ) << ( 8U * i );
        }
    }

    const auto outBase = out.size();
    auto position = begin + 4 + descriptorSize + 1;
    while ( true ) {
        if ( position + 4 > fileSize ) {
            throw RapidgzipError( "Truncated LZ4 frame (missing EndMark)" );
        }
        const auto blockHeader = readLE32( data.data() + position );
        position += 4;
        if ( blockHeader == 0 ) {
            break;  /* EndMark */
        }
        const bool storedUncompressed = ( blockHeader & 0x80000000U ) != 0;
        const std::size_t dataSize = blockHeader & 0x7FFFFFFFU;
        if ( dataSize > blockMaxSize ) {
            throw RapidgzipError( "LZ4 block exceeds the frame's max block size" );
        }
        if ( position + dataSize + ( blockChecksums ? 4 : 0 ) > fileSize ) {
            throw RapidgzipError( "Truncated LZ4 block" );
        }
        const auto* blockData = data.data() + position;
        if ( blockChecksums
             && ( xxhash32( blockData, dataSize ) != readLE32( blockData + dataSize ) ) ) {
            throw ChecksumError( "LZ4 block checksum mismatch" );
        }
        if ( storedUncompressed ) {
            out.insert( out.end(), blockData, blockData + dataSize );
        } else {
            const auto history = independentBlocks
                                 ? std::size_t( 0 )
                                 : std::min<std::size_t>( out.size() - outBase, 64 * KiB );
            lz4DecompressBlock( { blockData, dataSize }, out, history, blockMaxSize );
        }
        position += dataSize + ( blockChecksums ? 4 : 0 );
    }
    if ( contentSizePresent && ( out.size() - outBase != contentSize ) ) {
        throw RapidgzipError( "LZ4 frame decoded to a different size than its header records" );
    }
    if ( hasContentChecksum ) {
        if ( position + 4 > fileSize ) {
            throw RapidgzipError( "Truncated LZ4 frame (missing content checksum)" );
        }
        if ( xxhash32( out.data() + outBase, out.size() - outBase )
             != readLE32( data.data() + position ) ) {
            throw ChecksumError( "LZ4 content checksum mismatch" );
        }
        position += 4;
    }
    return position - begin;
}

[[nodiscard]] inline SalvageReport
salvageLz4( BufferView data, const SalvageSink& sink )
{
    SalvageReport report;
    report.format = Format::LZ4;
    HoleTracker tracker( report );
    std::vector<std::uint8_t> unit;

    std::size_t pos = 0;
    while ( true ) {
        const auto candidate = findLz4Candidate( data, pos );
        if ( candidate == NOT_FOUND ) {
            break;
        }
        unit.clear();
        try {
            const auto consumed = decodeOneLz4Frame( data, candidate, unit );
            tracker.markGood( candidate, candidate + consumed );
            emitUnit( sink, report, unit );
            pos = candidate + consumed;
        } catch ( const RapidgzipError& ) {
            pos = candidate + 1;
        }
    }
    tracker.finish( data.size() );
    return report;
}

/* --------------------------------- bzip2 --------------------------------- */

#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
/**
 * Bzip2 salvage works at BIT granularity: a sliding 48-bit window scan
 * finds every block and end-of-stream magic (the same technique the
 * parallel reader's scanBlocks uses), then each candidate block is lifted
 * into a synthetic single-block stream ("BZh9" + block bits + EOS + the
 * block's own CRC) and decoded by the vendor library, which verifies the
 * CRC. Holes are reported rounded to bytes.
 */
[[nodiscard]] inline SalvageReport
salvageBzip2Impl( BufferView data, const SalvageSink& sink )
{
    SalvageReport report;
    report.format = Format::BZIP2;
    HoleTracker tracker( report );

    /* (beginBit, isEos) of every 48-bit magic in the stream. */
    std::vector<std::pair<std::size_t, bool> > magics;
    {
        std::uint64_t reg = 0;
        std::size_t absoluteBit = 0;
        for ( std::size_t i = 0; i < data.size(); ++i ) {
            const auto byte = data[i];
            for ( int bit = 7; bit >= 0; --bit ) {
                reg = ( reg << 1U ) | ( ( byte >> bit ) & 1U );
                ++absoluteBit;
                if ( absoluteBit < 48 ) {
                    continue;
                }
                const auto window = reg & Bzip2Decompressor::MAGIC_MASK;
                if ( window == Bzip2Decompressor::BLOCK_MAGIC ) {
                    magics.emplace_back( absoluteBit - 48, false );
                } else if ( window == Bzip2Decompressor::EOS_MAGIC ) {
                    magics.emplace_back( absoluteBit - 48, true );
                }
            }
        }
    }

    /* A valid stream header directly in front of the first verified block
     * belongs to the good region; same for each follow-up stream of a
     * concatenated (pbzip2-style) file. */
    const auto headerBefore = [&data] ( std::size_t blockBeginBits ) -> std::size_t {
        if ( ( blockBeginBits % 8 == 0 ) && ( blockBeginBits >= 32 ) ) {
            const auto headerByte = blockBeginBits / 8 - 4;
            if ( ( data[headerByte] == 'B' ) && ( data[headerByte + 1] == 'Z' )
                 && ( data[headerByte + 2] == 'h' )
                 && ( data[headerByte + 3] >= '1' ) && ( data[headerByte + 3] <= '9' ) ) {
                return headerByte;
            }
        }
        return NOT_FOUND;
    };

    const MemoryFileReader file{ data };
    std::size_t lastGoodBitEnd = NOT_FOUND;  /* exact bit end of the last verified block */
    for ( std::size_t i = 0; i < magics.size(); ++i ) {
        const auto [ bit, isEos ] = magics[i];
        if ( isEos ) {
            /* An EOS directly after a verified block closes its stream: the
             * 48-bit magic, 32-bit combined CRC, and padding to the byte
             * boundary are all accounted for. An orphaned EOS (no verified
             * block ends exactly here) stays inside a hole. */
            if ( ( lastGoodBitEnd != NOT_FOUND ) && ( bit == lastGoodBitEnd ) ) {
                tracker.markGood( bit / 8, std::min( ceilDiv<std::size_t>( bit + 48 + 32, 8 ),
                                                     data.size() ) );
            }
            lastGoodBitEnd = NOT_FOUND;
            continue;
        }
        const auto endBits = i + 1 < magics.size() ? magics[i + 1].first : data.size() * 8;
        if ( endBits <= bit + 48 + 32 ) {
            continue;
        }
        try {
            const auto synthetic = Bzip2Decompressor::buildSingleBlockStream( file, bit, endBits );
            const auto unit = vendorBzip2DecompressAll( { synthetic.data(), synthetic.size() } );
            auto goodBegin = bit / 8;
            const auto header = headerBefore( bit );
            if ( header != NOT_FOUND ) {
                goodBegin = header;
            }
            tracker.markGood( goodBegin, ceilDiv<std::size_t>( endBits, 8 ) );
            emitUnit( sink, report, unit );
            lastGoodBitEnd = endBits;
        } catch ( const std::exception& ) {
            lastGoodBitEnd = NOT_FOUND;
        }
    }
    tracker.finish( data.size() );
    return report;
}
#endif  /* RAPIDGZIP_HAVE_VENDOR_BZIP2 */

[[nodiscard]] inline SalvageReport
salvageBzip2( BufferView data, const SalvageSink& sink )
{
#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )
    return salvageBzip2Impl( data, sink );
#else
    (void)data;
    (void)sink;
    throw UnsupportedDataError( "bzip2 salvage requires the bzip2 backend (libbz2 not found at build time)" );
#endif
}

/**
 * Format detection for salvage: the normal magic probe first, then — the
 * head may be exactly what is corrupted — the EARLIEST occurrence of any
 * known unit magic anywhere in the buffer.
 */
[[nodiscard]] inline Format
detectFormatForSalvage( BufferView data )
{
    const auto direct = detectFormat( data );
    if ( direct != Format::UNKNOWN ) {
        return direct;
    }
    auto best = Format::UNKNOWN;
    auto bestPos = NOT_FOUND;
    const auto consider = [&best, &bestPos] ( std::size_t pos, Format format ) {
        if ( pos < bestPos ) {
            bestPos = pos;
            best = format;
        }
    };
    consider( findGzipCandidate( data, 0 ), Format::GZIP );
    consider( findZstdCandidate( data, 0 ), Format::ZSTD );
    consider( findLz4Candidate( data, 0 ), Format::LZ4 );
    /* bzip2: byte-aligned "BZh1".."BZh9" stream header anywhere. The block
     * magic itself is rarely byte-aligned; the bit-level scan inside
     * salvageBzip2 handles that, but FINDING bzip2 data in an unknown
     * buffer keys off the header. */
    for ( std::size_t pos = 0; pos + 4 <= data.size() && pos < bestPos; ++pos ) {
        if ( ( data[pos] == 'B' ) && ( data[pos + 1] == 'Z' ) && ( data[pos + 2] == 'h' )
             && ( data[pos + 3] >= '1' ) && ( data[pos + 3] <= '9' ) ) {
            consider( pos, Format::BZIP2 );
            break;
        }
    }
    return best;
}

}  // namespace salvage_detail

/**
 * Salvage-decode @p data as @p format, streaming each verified unit's
 * output through @p sink and reporting skipped byte ranges as holes. An
 * intact archive yields a clean() report whose output matches the normal
 * decode byte for byte.
 */
[[nodiscard]] inline SalvageReport
salvageDecompress( BufferView data,
                   Format format,
                   const SalvageSink& sink = {} )
{
    switch ( format ) {
    case Format::GZIP:
        return salvage_detail::salvageGzip( data, sink );
    case Format::ZSTD:
        return salvage_detail::salvageZstd( data, sink );
    case Format::LZ4:
        return salvage_detail::salvageLz4( data, sink );
    case Format::BZIP2:
        return salvage_detail::salvageBzip2( data, sink );
    case Format::UNKNOWN:
        break;
    }
    /* Nothing recognizable anywhere: one hole covering the whole input. */
    SalvageReport report;
    if ( !data.empty() ) {
        report.holes.push_back( { 0, data.size() } );
    }
    return report;
}

/** Format-probing overload: dispatches on the magic bytes, falling back to
 * an anywhere-in-the-buffer magic scan when the head itself is damaged. */
[[nodiscard]] inline SalvageReport
salvageDecompress( BufferView data, const SalvageSink& sink = {} )
{
    return salvageDecompress( data, salvage_detail::detectFormatForSalvage( data ), sink );
}

/** FileReader convenience: salvage runs over an in-memory image of the
 * file (recovery is an offline operation; simplicity and verified-before-
 * emit semantics beat streaming here). */
[[nodiscard]] inline SalvageReport
salvageDecompress( const FileReader& file, const SalvageSink& sink = {} )
{
    std::vector<std::uint8_t> data( file.size() );
    preadExactly( file, data.data(), data.size(), 0 );
    return salvageDecompress( BufferView{ data.data(), data.size() }, sink );
}

}  // namespace rapidgzip::formats
