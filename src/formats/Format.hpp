#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "../common/Util.hpp"
#include "../io/FileReader.hpp"

namespace rapidgzip::formats {

/**
 * Compression formats the dispatch layer can probe and route. Detection is
 * by magic bytes only — cheap, no decoding — so a detected format is a
 * ROUTING decision, not a validity promise: the chosen backend still
 * verifies the stream (and rejects e.g. a gzip file whose first member is
 * fine but whose tail is garbage).
 */
enum class Format : std::uint8_t
{
    UNKNOWN = 0,
    GZIP = 1,   /**< RFC 1952, including BGZF and pigz output */
    ZSTD = 2,   /**< RFC 8878 frames, including the seekable format */
    LZ4 = 3,    /**< LZ4 frame format (magic 0x184D2204) */
    BZIP2 = 4,  /**< "BZh1".."BZh9" streams */
};

[[nodiscard]] inline const char*
toString( Format format ) noexcept
{
    switch ( format ) {
    case Format::UNKNOWN: return "unknown";
    case Format::GZIP:    return "gzip";
    case Format::ZSTD:    return "zstd";
    case Format::LZ4:     return "lz4";
    case Format::BZIP2:   return "bzip2";
    }
    return "unknown";
}

inline constexpr std::uint32_t ZSTD_FRAME_MAGIC = 0xFD2FB528U;
/** Skippable frames: 0x184D2A50 .. 0x184D2A5F (low nibble free). */
inline constexpr std::uint32_t ZSTD_SKIPPABLE_MAGIC_BASE = 0x184D2A50U;
inline constexpr std::uint32_t ZSTD_SKIPPABLE_MAGIC_MASK = 0xFFFFFFF0U;
inline constexpr std::uint32_t LZ4_FRAME_MAGIC = 0x184D2204U;

[[nodiscard]] inline std::uint32_t
readLE32( const std::uint8_t* bytes ) noexcept
{
    return static_cast<std::uint32_t>( bytes[0] )
           | ( static_cast<std::uint32_t>( bytes[1] ) << 8U )
           | ( static_cast<std::uint32_t>( bytes[2] ) << 16U )
           | ( static_cast<std::uint32_t>( bytes[3] ) << 24U );
}

/**
 * Probe @p header (the first bytes of a stream) for a known magic. Four
 * bytes decide every supported format; shorter inputs return UNKNOWN.
 * A zstd SKIPPABLE frame also routes to ZSTD: a seekable-format stream may
 * legally begin with one.
 */
[[nodiscard]] inline Format
detectFormat( BufferView header ) noexcept
{
    if ( header.size() >= 4 ) {
        const auto magic = readLE32( header.data() );
        if ( magic == ZSTD_FRAME_MAGIC ) {
            return Format::ZSTD;
        }
        if ( ( magic & ZSTD_SKIPPABLE_MAGIC_MASK ) == ZSTD_SKIPPABLE_MAGIC_BASE ) {
            return Format::ZSTD;
        }
        if ( magic == LZ4_FRAME_MAGIC ) {
            return Format::LZ4;
        }
        if ( ( header[0] == 'B' ) && ( header[1] == 'Z' ) && ( header[2] == 'h' )
             && ( header[3] >= '1' ) && ( header[3] <= '9' ) ) {
            return Format::BZIP2;
        }
    }
    if ( ( header.size() >= 2 ) && ( header[0] == 0x1FU ) && ( header[1] == 0x8BU ) ) {
        return Format::GZIP;
    }
    return Format::UNKNOWN;
}

/**
 * File probing additionally resolves the skippable-magic ambiguity: the
 * 0x184D2A5x skippable-frame range is shared by the zstd AND lz4 frame
 * formats, so a file may legally open with skippable metadata ahead of
 * either. Walk past leading skippable frames (bounded, header arithmetic
 * only) and let the first DATA frame's magic decide; a file of nothing
 * but skippable frames routes to ZSTD, which handles that degenerate
 * layout.
 */
[[nodiscard]] inline Format
detectFormat( const FileReader& file )
{
    std::array<std::uint8_t, 8> header{};
    std::size_t offset = 0;
    /* Bounded: a hostile chain of empty skippable frames must not turn
     * detection into a file-length walk. */
    for ( int skipped = 0; skipped < 1000; ++skipped ) {
        const auto got = file.pread( header.data(), header.size(), offset );
        const auto format = detectFormat( { header.data(), got } );
        if ( format != Format::ZSTD ) {
            /* Nothing after the skippable prefix (or a truncated tail) can
             * only mean a zstd-family skippable stream. */
            return ( ( format == Format::UNKNOWN ) && ( skipped > 0 ) ) ? Format::ZSTD : format;
        }
        if ( got < 8 ) {
            return Format::ZSTD;
        }
        const auto magic = readLE32( header.data() );
        if ( ( magic & ZSTD_SKIPPABLE_MAGIC_MASK ) != ZSTD_SKIPPABLE_MAGIC_BASE ) {
            return format;  /* a real zstd data frame */
        }
        offset += 8 + readLE32( header.data() + 4 );
    }
    return Format::ZSTD;
}

}  // namespace rapidgzip::formats
