#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "Format.hpp"
#include "Lz4Codec.hpp"
#include "XxHash32.hpp"

namespace rapidgzip::formats {

/**
 * LZ4 FRAME writer producing the parallel-friendly profile: INDEPENDENT
 * blocks (B.Indep set — every block decodes standalone, which is what lets
 * Lz4Decompressor fan blocks out over the chunk fetcher), block checksums
 * (workers verify their own blocks), content size, and content checksum.
 * Block data is compressed with the from-scratch lz4CompressBlock;
 * incompressible slices are stored uncompressed (high bit of the block
 * size), as the spec prescribes.
 */
class Lz4Writer
{
public:
    /** Frame block max-size codes (BD byte). */
    enum class BlockMaxSize : std::uint8_t
    {
        KIB64 = 4,
        KIB256 = 5,
        MIB1 = 6,
        MIB4 = 7,
    };

    [[nodiscard]] static constexpr std::size_t
    blockMaxSizeBytes( BlockMaxSize code ) noexcept
    {
        switch ( code ) {
        case BlockMaxSize::KIB64:  return 64 * KiB;
        case BlockMaxSize::KIB256: return 256 * KiB;
        case BlockMaxSize::MIB1:   return 1 * MiB;
        case BlockMaxSize::MIB4:   return 4 * MiB;
        }
        return 64 * KiB;
    }

    /** Write @p data as one LZ4 frame appended to @p out. */
    static void
    writeFrame( std::vector<std::uint8_t>& out,
                BufferView data,
                BlockMaxSize blockMaxSize = BlockMaxSize::KIB256 )
    {
        appendLE32( out, LZ4_FRAME_MAGIC );

        /* FLG: version 01, B.Indep, B.Checksum, C.Size, C.Checksum. */
        const std::uint8_t flg = ( 1U << 6U )   /* version */
                                 | ( 1U << 5U ) /* independent blocks */
                                 | ( 1U << 4U ) /* block checksums */
                                 | ( 1U << 3U ) /* content size present */
                                 | ( 1U << 2U ); /* content checksum */
        const auto bd = static_cast<std::uint8_t>( static_cast<unsigned>( blockMaxSize ) << 4U );
        const auto descriptorStart = out.size();
        out.push_back( flg );
        out.push_back( bd );
        appendLE64( out, data.size() );
        /* HC: second byte of XXH32 over the descriptor (FLG..content size). */
        const auto headerChecksum = xxhash32( out.data() + descriptorStart,
                                              out.size() - descriptorStart );
        out.push_back( static_cast<std::uint8_t>( ( headerChecksum >> 8U ) & 0xFFU ) );

        const auto sliceSize = blockMaxSizeBytes( blockMaxSize );
        for ( std::size_t offset = 0; offset < data.size(); offset += sliceSize ) {
            const auto slice = data.subView( offset, sliceSize );
            auto compressed = lz4CompressBlock( slice );
            if ( compressed.size() < slice.size() ) {
                appendLE32( out, static_cast<std::uint32_t>( compressed.size() ) );
                out.insert( out.end(), compressed.begin(), compressed.end() );
                appendLE32( out, xxhash32( compressed.data(), compressed.size() ) );
            } else {
                /* Uncompressed block: high bit set; checksum covers the
                 * stored bytes. */
                appendLE32( out, static_cast<std::uint32_t>( slice.size() ) | 0x80000000U );
                out.insert( out.end(), slice.begin(), slice.end() );
                appendLE32( out, xxhash32( slice.data(), slice.size() ) );
            }
        }

        appendLE32( out, 0 );  /* EndMark */
        appendLE32( out, xxhash32( data.data(), data.size() ) );  /* content checksum */
    }

    /** Write a skippable frame (user metadata the decoder must ignore). */
    static void
    writeSkippableFrame( std::vector<std::uint8_t>& out, BufferView payload,
                         std::uint8_t magicNibble = 0 )
    {
        appendLE32( out, ZSTD_SKIPPABLE_MAGIC_BASE | ( magicNibble & 0x0FU ) );
        appendLE32( out, static_cast<std::uint32_t>( payload.size() ) );
        out.insert( out.end(), payload.begin(), payload.end() );
    }

    static void
    appendLE32( std::vector<std::uint8_t>& out, std::uint32_t value )
    {
        for ( unsigned i = 0; i < 4; ++i ) {
            out.push_back( static_cast<std::uint8_t>( value >> ( 8U * i ) ) );
        }
    }

    static void
    appendLE64( std::vector<std::uint8_t>& out, std::uint64_t value )
    {
        for ( unsigned i = 0; i < 8; ++i ) {
            out.push_back( static_cast<std::uint8_t>( value >> ( 8U * i ) ) );
        }
    }
};

/** Convenience: @p data as a single standalone LZ4 frame. */
[[nodiscard]] inline std::vector<std::uint8_t>
writeLz4( BufferView data,
          Lz4Writer::BlockMaxSize blockMaxSize = Lz4Writer::BlockMaxSize::KIB256 )
{
    std::vector<std::uint8_t> result;
    Lz4Writer::writeFrame( result, data, blockMaxSize );
    return result;
}

}  // namespace rapidgzip::formats
