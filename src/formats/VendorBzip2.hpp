#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )

#include <bzlib.h>

namespace rapidgzip::formats {

inline constexpr bool HAVE_VENDOR_BZIP2 = true;

/** RAII wrapper for a decompression bz_stream. */
class Bzip2DecompressStream
{
public:
    Bzip2DecompressStream()
    {
        if ( BZ2_bzDecompressInit( &m_stream, /* verbosity */ 0, /* small */ 0 ) != BZ_OK ) {
            throw RapidgzipError( "BZ2_bzDecompressInit failed" );
        }
    }

    ~Bzip2DecompressStream()
    {
        BZ2_bzDecompressEnd( &m_stream );
    }

    Bzip2DecompressStream( const Bzip2DecompressStream& ) = delete;
    Bzip2DecompressStream& operator=( const Bzip2DecompressStream& ) = delete;

    [[nodiscard]] bz_stream& get() noexcept { return m_stream; }

private:
    bz_stream m_stream{};
};

/** Compress @p data as one bzip2 stream; @p blockSize100k in [1, 9] sets the
 * block size (1 → many independent 100 kB blocks, 9 → few 900 kB blocks). */
[[nodiscard]] inline std::vector<std::uint8_t>
vendorBzip2Compress( BufferView data, int blockSize100k = 9 )
{
    if ( ( blockSize100k < 1 ) || ( blockSize100k > 9 ) ) {
        throw RapidgzipError( "bzip2 block size must be in [1, 9]" );
    }
    /* bzlib's documented worst case: input + 1% + 600 bytes. */
    std::vector<std::uint8_t> result( data.size() + data.size() / 100 + 600 );
    unsigned destLength = static_cast<unsigned>( result.size() );
    const auto code = BZ2_bzBuffToBuffCompress(
        reinterpret_cast<char*>( result.data() ), &destLength,
        const_cast<char*>( reinterpret_cast<const char*>( data.data() ) ),
        static_cast<unsigned>( data.size() ),
        blockSize100k, /* verbosity */ 0, /* workFactor */ 0 );
    if ( code != BZ_OK ) {
        throw RapidgzipError( "BZ2_bzBuffToBuffCompress failed with code "
                              + std::to_string( code ) );
    }
    result.resize( destLength );
    return result;
}

/**
 * Streaming decompression of a whole buffer, following CONCATENATED bzip2
 * streams like `bzip2 -d` does — the vendor ORACLE for the differential
 * tests and the Bzip2Decompressor's serial fallback.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
vendorBzip2DecompressAll( BufferView compressed )
{
    std::vector<std::uint8_t> result;
    std::vector<std::uint8_t> chunk( 1 * MiB );

    std::size_t consumed = 0;
    while ( consumed < compressed.size() ) {
        Bzip2DecompressStream stream;
        auto& bz = stream.get();
        bz.next_in = const_cast<char*>(
            reinterpret_cast<const char*>( compressed.data() + consumed ) );
        bz.avail_in = static_cast<unsigned>(
            std::min<std::size_t>( compressed.size() - consumed,
                                   std::numeric_limits<unsigned>::max() ) );
        const auto availableBefore = bz.avail_in;

        while ( true ) {
            bz.next_out = reinterpret_cast<char*>( chunk.data() );
            bz.avail_out = static_cast<unsigned>( chunk.size() );
            const auto code = BZ2_bzDecompress( &bz );
            result.insert( result.end(), chunk.begin(),
                           chunk.begin() + ( chunk.size() - bz.avail_out ) );
            if ( code == BZ_STREAM_END ) {
                break;
            }
            if ( code != BZ_OK ) {
                throw RapidgzipError( "BZ2_bzDecompress failed with code "
                                      + std::to_string( code ) );
            }
            if ( ( bz.avail_in == 0 ) && ( bz.avail_out == static_cast<unsigned>( chunk.size() ) ) ) {
                throw RapidgzipError( "Truncated bzip2 stream" );
            }
        }
        consumed += availableBefore - bz.avail_in;
    }
    return result;
}

}  // namespace rapidgzip::formats

#else  /* !RAPIDGZIP_HAVE_VENDOR_BZIP2 */

namespace rapidgzip::formats {

inline constexpr bool HAVE_VENDOR_BZIP2 = false;

}  // namespace rapidgzip::formats

#endif
