#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"

namespace rapidgzip::formats {

/**
 * From-scratch LZ4 BLOCK codec (the sequence format inside LZ4 frames):
 * token byte = (literalLength << 4) | (matchLength - 4), both nibbles
 * extended by 255-saturated continuation bytes, then literals, then a
 * little-endian 16-bit offset. The final sequence is literals-only. The
 * decoder is the one "our reader" uses; the differential suite pins it
 * byte-exact against liblz4 (vendorLz4DecompressBlock) in both directions —
 * our compressor's output through the vendor decoder and vendor output
 * through ours.
 */

inline constexpr std::size_t LZ4_MIN_MATCH = 4;
/** Spec: a match must not start within the last 12 bytes of the block, and
 * the last 5 bytes are always literals. */
inline constexpr std::size_t LZ4_MATCH_SAFETY_MARGIN = 12;
inline constexpr std::size_t LZ4_LAST_LITERALS = 5;
inline constexpr std::size_t LZ4_MAX_OFFSET = 65535;

/**
 * Decode one LZ4 block into @p destination (appending). @p history is the
 * number of bytes ALREADY in @p destination that matches may reach back
 * into — 0 for independent blocks, up to 64 KiB of prior output for
 * dependent (linked) blocks. @p maxOutput bounds this block's output.
 * Throws RapidgzipError on any malformed input; never reads or writes out
 * of bounds.
 */
inline void
lz4DecompressBlock( BufferView block,
                    std::vector<std::uint8_t>& destination,
                    std::size_t history = 0,
                    std::size_t maxOutput = 512 * MiB )
{
    const auto* input = block.data();
    const auto* const inputEnd = input + block.size();
    const auto base = destination.size();
    if ( history > base ) {
        throw RapidgzipError( "LZ4 history exceeds the decoded prefix" );
    }

    const auto readExtension = [&input, inputEnd] ( std::size_t value ) {
        if ( value != 15 ) {
            return value;
        }
        while ( true ) {
            if ( input >= inputEnd ) {
                throw RapidgzipError( "Truncated LZ4 block (length extension)" );
            }
            const auto byte = *input++;
            value += byte;
            if ( byte != 255 ) {
                return value;
            }
        }
    };

    if ( block.empty() ) {
        throw RapidgzipError( "Empty LZ4 block" );
    }

    while ( true ) {
        if ( input >= inputEnd ) {
            /* The last sequence must end the block via its literals; a block
             * exhausted right after a match is malformed. */
            throw RapidgzipError( "Truncated LZ4 block (missing final literals)" );
        }
        const auto token = *input++;

        auto literalLength = readExtension( token >> 4U );
        if ( literalLength > static_cast<std::size_t>( inputEnd - input ) ) {
            throw RapidgzipError( "Truncated LZ4 block (literals)" );
        }
        if ( destination.size() - base + literalLength > maxOutput ) {
            throw RapidgzipError( "LZ4 block exceeds its output bound" );
        }
        destination.insert( destination.end(), input, input + literalLength );
        input += literalLength;

        if ( input == inputEnd ) {
            /* Last sequence: literals only, no offset. A block that ends
             * with a match-carrying token instead is malformed. */
            return;
        }

        if ( inputEnd - input < 2 ) {
            throw RapidgzipError( "Truncated LZ4 block (offset)" );
        }
        const std::size_t offset = static_cast<std::size_t>( input[0] )
                                   | ( static_cast<std::size_t>( input[1] ) << 8U );
        input += 2;
        if ( offset == 0 ) {
            throw RapidgzipError( "Invalid zero offset in LZ4 block" );
        }
        if ( offset > destination.size() - base + history ) {
            throw RapidgzipError( "LZ4 match reaches before the available history" );
        }

        const auto matchLength = readExtension( token & 0xFU ) + LZ4_MIN_MATCH;
        if ( destination.size() - base + matchLength > maxOutput ) {
            throw RapidgzipError( "LZ4 block exceeds its output bound" );
        }
        /* Overlapping matches (offset < length) are the RLE idiom — copy
         * byte-wise. The vector grows first so the source stays valid. */
        auto source = destination.size() - offset;
        destination.resize( destination.size() + matchLength );
        auto target = destination.size() - matchLength;
        for ( std::size_t i = 0; i < matchLength; ++i ) {
            destination[target + i] = destination[source + i];
        }
    }
}

/**
 * Greedy hash-table LZ4 block compressor. Emits vendor-decodable blocks:
 * matches ≥ 4 bytes within a 64 KiB window, last-5-literals and
 * no-match-in-last-12 end conditions respected. Returns the compressed
 * block; callers store the input verbatim instead when the result is not
 * smaller (the frame format's uncompressed-block flag).
 */
[[nodiscard]] inline std::vector<std::uint8_t>
lz4CompressBlock( BufferView data )
{
    std::vector<std::uint8_t> result;
    result.reserve( data.size() / 2 + 64 );

    const auto emitLength = [&result] ( std::size_t value ) {
        while ( value >= 255 ) {
            result.push_back( 255 );
            value -= 255;
        }
        result.push_back( static_cast<std::uint8_t>( value ) );
    };
    const auto emitSequence = [&] ( std::size_t literalBegin, std::size_t literalEnd,
                                    std::size_t offset, std::size_t matchLength ) {
        const auto literalLength = literalEnd - literalBegin;
        const auto litNibble = std::min<std::size_t>( literalLength, 15 );
        std::size_t matchNibble = 0;
        if ( matchLength > 0 ) {
            matchNibble = std::min<std::size_t>( matchLength - LZ4_MIN_MATCH, 15 );
        }
        result.push_back( static_cast<std::uint8_t>( ( litNibble << 4U ) | matchNibble ) );
        if ( litNibble == 15 ) {
            emitLength( literalLength - 15 );
        }
        result.insert( result.end(), data.data() + literalBegin, data.data() + literalEnd );
        if ( matchLength > 0 ) {
            result.push_back( static_cast<std::uint8_t>( offset & 0xFFU ) );
            result.push_back( static_cast<std::uint8_t>( offset >> 8U ) );
            if ( matchNibble == 15 ) {
                emitLength( matchLength - LZ4_MIN_MATCH - 15 );
            }
        }
    };

    /* Blocks shorter than the safety margin cannot contain a match. */
    if ( data.size() < LZ4_MATCH_SAFETY_MARGIN + 1 ) {
        emitSequence( 0, data.size(), 0, 0 );
        return result;
    }

    constexpr std::size_t HASH_BITS = 14;
    std::vector<std::uint32_t> hashTable( std::size_t( 1 ) << HASH_BITS, 0 );  /* position + 1 */
    const auto read32 = [&data] ( std::size_t position ) {
        std::uint32_t value;
        std::memcpy( &value, data.data() + position, sizeof( value ) );
        return value;
    };
    const auto hash = [] ( std::uint32_t value ) {
        return ( value * 2654435761U ) >> ( 32U - HASH_BITS );
    };

    const auto matchLimit = data.size() - LZ4_LAST_LITERALS;
    const auto lastMatchStart = data.size() - LZ4_MATCH_SAFETY_MARGIN;
    std::size_t anchor = 0;
    std::size_t position = 0;
    while ( position < lastMatchStart ) {
        const auto sequence = read32( position );
        const auto slot = hash( sequence );
        const auto candidate = hashTable[slot];
        hashTable[slot] = static_cast<std::uint32_t>( position + 1 );

        if ( ( candidate != 0 )
             && ( position + 1 - candidate <= LZ4_MAX_OFFSET )
             && ( read32( candidate - 1 ) == sequence ) ) {
            const auto matchStart = static_cast<std::size_t>( candidate - 1 );
            auto length = LZ4_MIN_MATCH;
            while ( ( position + length < matchLimit )
                    && ( data[matchStart + length] == data[position + length] ) ) {
                ++length;
            }
            emitSequence( anchor, position, position - matchStart, length );
            position += length;
            anchor = position;
        } else {
            ++position;
        }
    }
    emitSequence( anchor, data.size(), 0, 0 );
    return result;
}

}  // namespace rapidgzip::formats
