#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../core/FrameParallelReader.hpp"
#include "../io/FileReader.hpp"
#include "../io/SharedFileReader.hpp"
#include "Decompressor.hpp"
#include "Format.hpp"
#include "VendorBzip2.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )

namespace rapidgzip::formats {

/**
 * bzip2 parallel reader. The format's gift to parallel decompression is
 * that every block is a self-contained BWT unit (no LZ window crosses
 * blocks) introduced by a 48-bit magic, 0x314159265359, at an ARBITRARY
 * bit offset; the stream footer magic is 0x177245385090. So the pipeline
 * is: one bit-granular scan for both magics (pure pattern matching, no
 * decoding — the bzip2 analogue of the paper's gzip block finder, but
 * exact instead of probabilistic), then every block decodes independently
 * on the chunk fetcher, wrapped as a synthetic single-block stream
 * ("BZh9" + the block's bits + footer + that block's own CRC read from
 * its header) so vendor libbz2 does the byte work and verifies the block
 * CRC as it would in a real stream.
 *
 * A chance 48-bit magic inside compressed data (~2^-48 per bit) would make
 * a synthetic block undecodable; any scan-path failure falls back to the
 * serial whole-stream vendor decode, which is authoritative. Each stream's
 * combined CRC (rotate-xor over its blocks' CRCs) is additionally checked
 * against the footer on every full decompress().
 */
class Bzip2Decompressor final : public Decompressor
{
public:
    static constexpr std::uint64_t BLOCK_MAGIC = 0x314159265359ULL;
    static constexpr std::uint64_t EOS_MAGIC = 0x177245385090ULL;
    static constexpr std::uint64_t MAGIC_MASK = 0xFFFFFFFFFFFFULL;  /* 48 bits */

    explicit Bzip2Decompressor( std::unique_ptr<FileReader> file,
                                ChunkFetcherConfiguration configuration = {} ) :
        m_file( ensureSharedFileReader( std::move( file ) ) ),
        m_configuration( configuration )
    {
        try {
            scanBlocks();
            buildParallelReader();
            m_parallelUsable = true;
        } catch ( const RapidgzipError& ) {
            /* Scan failure (exotic/corrupt layout): the serial path still
             * answers, and decompress() reports ITS verdict on the data. */
            m_parallelUsable = false;
        }
    }

    [[nodiscard]] Format
    format() const noexcept override
    {
        return Format::BZIP2;
    }

    [[nodiscard]] bool
    parallelizable() const noexcept override
    {
        return m_parallelUsable;
    }

    std::size_t
    decompress( const Sink& sink ) override
    {
        if ( m_parallelUsable ) {
            try {
                return m_parallel->decompress( sink ? sink : Sink{} );
            } catch ( const RapidgzipError& ) {
                /* False magic or damaged block: the serial decode decides
                 * whether the file itself is bad. */
                m_parallelUsable = false;
            }
        }
        return serialDecompress( sink );
    }

    [[nodiscard]] std::size_t
    size() override
    {
        if ( m_parallelUsable ) {
            try {
                return m_parallel->size();
            } catch ( const RapidgzipError& ) {
                m_parallelUsable = false;
            }
        }
        if ( !m_serialSizeKnown ) {
            m_serialSize = serialDecompress( {} );
            m_serialSizeKnown = true;
        }
        return m_serialSize;
    }

    [[nodiscard]] std::size_t
    readAt( std::size_t uncompressedOffset, std::uint8_t* buffer, std::size_t size ) override
    {
        if ( m_parallelUsable ) {
            try {
                return m_parallel->readAt( uncompressedOffset, buffer, size );
            } catch ( const RapidgzipError& ) {
                m_parallelUsable = false;
            }
        }
        return readRangeViaStreaming(
            [this] ( const Sink& sink ) { return serialDecompress( sink ); },
            uncompressedOffset, buffer, size );
    }

    [[nodiscard]] std::size_t
    readSpansAt( std::size_t uncompressedOffset,
                 std::size_t size,
                 std::vector<OwnedSpan>& spans ) override
    {
        const auto priorSpans = spans.size();
        if ( m_parallelUsable ) {
            try {
                return m_parallel->readSpansAt( uncompressedOffset, size, spans );
            } catch ( const RapidgzipError& ) {
                m_parallelUsable = false;
                spans.resize( priorSpans );  /* drop partial zero-copy progress */
            }
        }
        return Decompressor::readSpansAt( uncompressedOffset, size, spans );
    }

    [[nodiscard]] std::vector<SeekPoint>
    seekPoints() override
    {
        if ( !m_parallelUsable ) {
            return {};
        }
        std::vector<SeekPoint> result;
        for ( const auto& [bits, offset] : m_parallel->chunkSeekPoints() ) {
            result.push_back( { bits, offset } );
        }
        return result;
    }

    [[nodiscard]] bool
    importSeekPoints( const std::vector<SeekPoint>& seekPoints,
                      std::size_t uncompressedSizeBytes ) override
    {
        if ( !m_parallelUsable ) {
            return false;
        }
        std::vector<std::pair<std::size_t, std::size_t> > points;
        points.reserve( seekPoints.size() );
        for ( const auto& point : seekPoints ) {
            points.emplace_back( point.compressedOffsetBits, point.uncompressedOffset );
        }
        return m_parallel->adoptChunkOffsets( points, uncompressedSizeBytes );
    }

    [[nodiscard]] std::size_t
    blockCount() const noexcept
    {
        return m_blocks.size();
    }

    /**
     * Build the synthetic single-block stream for a block's bit range:
     * "BZh9" (level 9 accepts any block size), the block's bits shifted to
     * start right after the 32-bit header, the 48-bit end-of-stream magic,
     * and the stream CRC — which for a single-block stream equals the
     * block CRC, read from the 32 bits after the block magic. Exposed for
     * the differential tests.
     */
    [[nodiscard]] static std::vector<std::uint8_t>
    buildSingleBlockStream( const FileReader& file,
                            std::size_t blockBeginBits,
                            std::size_t blockEndBits )
    {
        if ( blockEndBits <= blockBeginBits + 48 + 32 ) {
            throw RapidgzipError( "bzip2 block bit range too small" );
        }
        const auto beginByte = blockBeginBits / 8;
        const auto endByte = ceilDiv<std::size_t>( blockEndBits, 8 );
        std::vector<std::uint8_t> raw( endByte - beginByte );
        preadExactly( file, raw.data(), raw.size(), beginByte );

        MsbBitReader reader( raw, blockBeginBits - beginByte * 8 );
        const auto totalBits = blockEndBits - blockBeginBits;

        const auto magic = reader.peek48();
        if ( magic != BLOCK_MAGIC ) {
            throw RapidgzipError( "bzip2 block does not start with the block magic" );
        }
        /* The 32 bits after the magic are the block's own CRC — for a
         * single-block stream the combined stream CRC equals it. */
        MsbBitReader crcReader( raw, blockBeginBits - beginByte * 8 + 48 );
        const auto blockCrc = static_cast<std::uint32_t>( crcReader.read( 32 ) );

        MsbBitWriter writer;
        writer.bytes().reserve( raw.size() + 16 );
        writer.bytes() = { 'B', 'Z', 'h', '9' };

        auto remaining = totalBits;
        while ( remaining > 0 ) {
            const auto take = std::min<std::size_t>( remaining, 32 );
            writer.put( reader.read( take ), take );
            remaining -= take;
        }

        writer.put( EOS_MAGIC, 48 );
        writer.put( blockCrc, 32 );
        writer.flush();
        return std::move( writer.bytes() );
    }

private:
    /** MSB-first bit reader over a byte buffer (bzip2's bit order). */
    class MsbBitReader
    {
    public:
        MsbBitReader( const std::vector<std::uint8_t>& data, std::size_t startBit ) :
            m_data( data ),
            m_position( startBit )
        {}

        [[nodiscard]] std::uint64_t
        read( std::size_t count )
        {
            std::uint64_t result = 0;
            for ( std::size_t i = 0; i < count; ++i ) {
                const auto byte = m_position / 8;
                const auto bit = 7 - ( m_position % 8 );
                const auto value = byte < m_data.size()
                                   ? ( m_data[byte] >> bit ) & 1U
                                   : 0U;  /* zero-padded tail */
                result = ( result << 1U ) | value;
                ++m_position;
            }
            return result;
        }

        [[nodiscard]] std::uint64_t
        peek48()
        {
            const auto saved = m_position;
            const auto result = read( 48 );
            m_position = saved;
            return result;
        }

    private:
        const std::vector<std::uint8_t>& m_data;
        std::size_t m_position;
    };

    /** MSB-first bit writer (bzip2's bit order), zero-padding the tail. */
    class MsbBitWriter
    {
    public:
        void
        put( std::uint64_t value, std::size_t count )
        {
            for ( std::size_t i = count; i > 0; --i ) {
                const auto bit = ( value >> ( i - 1 ) ) & 1U;
                if ( m_fill == 0 ) {
                    m_bytes.push_back( 0 );
                    m_fill = 8;
                }
                --m_fill;
                m_bytes.back() = static_cast<std::uint8_t>(
                    m_bytes.back() | ( bit << m_fill ) );
            }
        }

        void
        flush() noexcept
        {
            m_fill = 0;
        }

        [[nodiscard]] std::vector<std::uint8_t>&
        bytes() noexcept
        {
            return m_bytes;
        }

    private:
        std::vector<std::uint8_t> m_bytes;
        std::size_t m_fill{ 0 };
    };

    struct Block
    {
        std::size_t beginBits{ 0 };  /**< absolute bit offset of the block magic */
        std::size_t endBits{ 0 };    /**< next block/EOS magic */
        std::uint32_t crc{ 0 };      /**< from the 32 bits after the magic */
    };

    /**
     * One linear pass over the file sliding a 64-bit register across every
     * bit position, recording block and end-of-stream magic offsets. Also
     * verifies stream structure: every EOS is followed by its 32-bit
     * combined CRC, then either EOF or a new "BZh" stream header
     * (byte-aligned, possibly after padding bits of the previous stream).
     */
    void
    scanBlocks()
    {
        const auto fileSize = m_file->size();
        if ( fileSize < 4 + 6 + 4 ) {
            throw RapidgzipError( "bzip2 file too small" );
        }
        std::uint8_t header[4];
        preadExactly( *m_file, header, sizeof( header ), 0 );
        if ( ( header[0] != 'B' ) || ( header[1] != 'Z' ) || ( header[2] != 'h' )
             || ( header[3] < '1' ) || ( header[3] > '9' ) ) {
            throw RapidgzipError( "Not a bzip2 stream" );
        }

        /* Buffered scan: 4 MiB windows with a 64-bit carry register. */
        constexpr std::size_t WINDOW = 4 * MiB;
        std::vector<std::uint8_t> buffer( std::min( WINDOW, fileSize ) );
        std::uint64_t reg = 0;
        std::vector<std::pair<std::size_t, bool> > magics;  /* (beginBit, isEos) */

        std::size_t absoluteBit = 0;
        for ( std::size_t offset = 0; offset < fileSize; offset += buffer.size() ) {
            const auto toRead = std::min( buffer.size(), fileSize - offset );
            preadExactly( *m_file, buffer.data(), toRead, offset );
            for ( std::size_t i = 0; i < toRead; ++i ) {
                const auto byte = buffer[i];
                for ( int bit = 7; bit >= 0; --bit ) {
                    reg = ( reg << 1U ) | ( ( byte >> bit ) & 1U );
                    ++absoluteBit;
                    if ( absoluteBit < 48 ) {
                        continue;
                    }
                    const auto window = reg & MAGIC_MASK;
                    if ( window == BLOCK_MAGIC ) {
                        magics.emplace_back( absoluteBit - 48, false );
                    } else if ( window == EOS_MAGIC ) {
                        magics.emplace_back( absoluteBit - 48, true );
                    }
                }
            }
        }

        /* Segment into blocks; each block ends where the next magic (block
         * or EOS) begins. Streams contribute their EOS CRC and footer
         * geometry for the combined-CRC check. */
        m_blocks.clear();
        m_streams.clear();
        StreamInfo current;
        current.firstBlock = 0;
        bool inStream = true;
        for ( std::size_t i = 0; i < magics.size(); ++i ) {
            const auto [bit, isEos] = magics[i];
            if ( !inStream ) {
                /* First block magic of a follow-up concatenated stream. */
                current = StreamInfo{};
                current.firstBlock = m_blocks.size();
                inStream = true;
            }
            if ( isEos ) {
                current.blockEnd = m_blocks.size();
                current.eosBits = bit;
                const auto window = readBitsWindow( bit + 48, 32 );
                MsbBitReader crcReader( window, ( bit + 48 ) % 8 );
                current.streamCrc = static_cast<std::uint32_t>( crcReader.read( 32 ) );
                m_streams.push_back( current );
                inStream = false;
                continue;
            }
            Block block;
            block.beginBits = bit;
            block.endBits = i + 1 < magics.size() ? magics[i + 1].first : 0;
            const auto window = readBitsWindow( bit + 48, 32 );
            MsbBitReader crcReader( window, ( bit + 48 ) % 8 );
            block.crc = static_cast<std::uint32_t>( crcReader.read( 32 ) );
            m_blocks.push_back( block );
        }
        if ( inStream || m_blocks.empty() ) {
            throw RapidgzipError( "bzip2 scan found no complete stream" );
        }
        for ( const auto& block : m_blocks ) {
            if ( block.endBits <= block.beginBits ) {
                throw RapidgzipError( "bzip2 scan produced inconsistent block ranges" );
            }
        }

        /* Combined-CRC cross check, from header data alone: each stream's
         * footer CRC must equal rotate-left-xor over its blocks' CRCs. A
         * chance false block magic inserts a bogus CRC and fails this, so
         * the scan is validated BEFORE any parallel decode is attempted. */
        for ( const auto& stream : m_streams ) {
            std::uint32_t combined = 0;
            for ( auto i = stream.firstBlock; i < stream.blockEnd; ++i ) {
                combined = ( ( combined << 1U ) | ( combined >> 31U ) ) ^ m_blocks[i].crc;
            }
            if ( combined != stream.streamCrc ) {
                throw RapidgzipError( "bzip2 combined stream CRC does not match its blocks — "
                                      "false magic or damaged stream" );
            }
        }
    }

    /** Bytes covering [startBit, startBit + count) for a bit reader whose
     * start offset is startBit % 8. */
    [[nodiscard]] std::vector<std::uint8_t>
    readBitsWindow( std::size_t startBit, std::size_t count ) const
    {
        const auto beginByte = startBit / 8;
        const auto endByte = std::min( ceilDiv<std::size_t>( startBit + count, 8 ),
                                       m_file->size() );
        std::vector<std::uint8_t> result( endByte - beginByte );
        preadExactly( *m_file, result.data(), result.size(), beginByte );
        return result;
    }

    void
    buildParallelReader()
    {
        std::vector<CompressedFrame> units;
        units.reserve( m_blocks.size() );
        for ( const auto& block : m_blocks ) {
            CompressedFrame unit;
            unit.compressedBeginBits = block.beginBits;
            unit.compressedEndBits = block.endBits;
            units.push_back( unit );
        }
        auto decoder = [] ( const FileReader& file, const CompressedFrame& unit,
                            std::size_t /* index */, std::vector<std::uint8_t>& out ) {
            const auto synthetic = buildSingleBlockStream(
                file, unit.compressedBeginBits, unit.compressedEndBits );
            const auto decoded = vendorBzip2DecompressAll(
                { synthetic.data(), synthetic.size() } );
            out.insert( out.end(), decoded.begin(), decoded.end() );
        };
        m_parallel = std::make_unique<FrameParallelReader>(
            std::shared_ptr<const FileReader>( m_file->clone().release() ),
            std::move( units ), std::move( decoder ), m_configuration );
    }

    std::size_t
    serialDecompress( const Sink& sink )
    {
        std::vector<std::uint8_t> compressed( m_file->size() );
        preadExactly( *m_file, compressed.data(), compressed.size(), 0 );
        const auto output = vendorBzip2DecompressAll( { compressed.data(), compressed.size() } );
        if ( sink ) {
            sink( { output.data(), output.size() } );
        }
        return output.size();
    }

    struct StreamInfo
    {
        std::size_t firstBlock{ 0 };
        std::size_t blockEnd{ 0 };
        std::size_t eosBits{ 0 };
        std::uint32_t streamCrc{ 0 };
    };

    std::unique_ptr<SharedFileReader> m_file;
    ChunkFetcherConfiguration m_configuration;

    std::vector<Block> m_blocks;
    std::vector<StreamInfo> m_streams;
    bool m_parallelUsable{ false };
    std::unique_ptr<FrameParallelReader> m_parallel;

    std::size_t m_serialSize{ 0 };
    bool m_serialSizeKnown{ false };
};

}  // namespace rapidgzip::formats

#endif  /* RAPIDGZIP_HAVE_VENDOR_BZIP2 */
