#pragma once

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../index/IndexSerializer.hpp"
#include "../io/StandardFileReader.hpp"
#include "Decompressor.hpp"
#include "Formats.hpp"

namespace rapidgzip::formats {

/**
 * Sidecar index convention: `<archive>.rgzidx` next to the archive holds
 * the RGZIDX02 index a previous open left behind, so repeat opens adopt
 * it instead of re-running discovery — the two-stage sweep for arbitrary
 * gzip, the measuring decode sweep for unsized lz4/bzip2. Freshness is
 * judged by mtime (sidecar no older than the archive) plus the index's
 * own recorded compressed size and format tag; anything stale, corrupt,
 * or mismatched silently falls back to normal discovery — a sidecar can
 * make an open faster, never wrong.
 */

[[nodiscard]] inline std::string
sidecarPathFor( const std::string& archivePath )
{
    return archivePath + ".rgzidx";
}

/**
 * Build the exportable index for any backend. Gzip exports its own full
 * index (bit-granular checkpoints WITH compressed windows); frame-based
 * backends record their chunk seek points, which is all their resumption
 * needs (frames are self-contained — no windows). May cost the backend's
 * discovery sweep if it has not run yet.
 */
[[nodiscard]] inline GzipIndex
buildArchiveIndex( Decompressor& decompressor, std::size_t compressedSizeBytes )
{
    if ( auto* gzip = dynamic_cast<GzipDecompressor*>( &decompressor ) ) {
        auto index = gzip->reader().exportIndex();
        index.uncompressedSizeBytes = gzip->size();
        return index;
    }
    GzipIndex index;
    index.formatTag = static_cast<std::uint8_t>( decompressor.format() );
    index.compressedSizeBytes = compressedSizeBytes;
    index.uncompressedSizeBytes = decompressor.size();
    for ( const auto& point : decompressor.seekPoints() ) {
        index.checkpoints.push_back( { point.compressedOffsetBits, point.uncompressedOffset } );
    }
    return index;
}

/** Serialize @p decompressor's index next to the archive. Throws on I/O
 * failure; the write goes through a temp file + rename so a crashed writer
 * never leaves a torn sidecar for the freshness check to trust. */
inline void
writeSidecarIndex( Decompressor& decompressor, const std::string& archivePath )
{
    struct stat archiveStat{};
    const auto compressedSize = ::stat( archivePath.c_str(), &archiveStat ) == 0
                                ? static_cast<std::size_t>( archiveStat.st_size )
                                : std::size_t( 0 );
    const auto data = index::serializeIndex( buildArchiveIndex( decompressor, compressedSize ) );

    const auto finalPath = sidecarPathFor( archivePath );
    const auto tempPath = finalPath + ".tmp";
    std::FILE* file = std::fopen( tempPath.c_str(), "wb" );
    if ( file == nullptr ) {
        throw FileIoError( "Failed to open '" + tempPath + "' for writing" );
    }
    const auto written = std::fwrite( data.data(), 1, data.size(), file );
    const auto closeFailed = std::fclose( file ) != 0;
    if ( ( written != data.size() ) || closeFailed ) {
        std::remove( tempPath.c_str() );
        throw FileIoError( "Failed to write sidecar index '" + tempPath + "'" );
    }
    if ( std::rename( tempPath.c_str(), finalPath.c_str() ) != 0 ) {
        std::remove( tempPath.c_str() );
        throw FileIoError( "Failed to move sidecar index into place at '" + finalPath + "'" );
    }
}

/**
 * Adopt `<archive>.rgzidx` into @p decompressor when present and fresh:
 * sidecar mtime >= archive mtime, recorded compressed size matches the
 * file, format tag matches the detected backend. Returns true on adoption;
 * every failure mode returns false and leaves the reader untouched.
 */
[[nodiscard]] inline bool
trySidecarAdoption( Decompressor& decompressor, const std::string& archivePath )
{
    struct stat archiveStat{};
    struct stat sidecarStat{};
    const auto sidecarPath = sidecarPathFor( archivePath );
    if ( ( ::stat( archivePath.c_str(), &archiveStat ) != 0 )
         || ( ::stat( sidecarPath.c_str(), &sidecarStat ) != 0 )
         || ( sidecarStat.st_mtime < archiveStat.st_mtime ) ) {
        return false;
    }

    GzipIndex index;
    try {
        StandardFileReader file( sidecarPath );
        index = index::deserializeIndex( file );
    } catch ( const RapidgzipError& ) {
        return false;  /* corrupt/foreign sidecar: discovery still answers */
    }

    if ( ( index.formatTag != static_cast<std::uint8_t>( decompressor.format() ) )
         || ( index.compressedSizeBytes != static_cast<std::size_t>( archiveStat.st_size ) ) ) {
        return false;
    }

    if ( auto* gzip = dynamic_cast<GzipDecompressor*>( &decompressor ) ) {
        try {
            gzip->reader().importIndex( index );
        } catch ( const RapidgzipError& ) {
            return false;
        }
        return true;
    }

    std::vector<SeekPoint> points;
    points.reserve( index.checkpoints.size() );
    for ( const auto& checkpoint : index.checkpoints ) {
        points.push_back( { checkpoint.compressedOffsetBits, checkpoint.uncompressedOffset } );
    }
    return decompressor.importSeekPoints( points, index.uncompressedSizeBytes );
}

/**
 * Path-based open: detect the format, construct the backend, and adopt a
 * fresh sidecar index when one exists. The one entry point the serve
 * daemon (and any repeat-open caller) should use.
 */
[[nodiscard]] inline std::unique_ptr<Decompressor>
openArchive( const std::string& archivePath,
             const ChunkFetcherConfiguration& configuration = {},
             bool adoptSidecar = true )
{
    auto decompressor = makeDecompressor( std::make_unique<StandardFileReader>( archivePath ),
                                          configuration );
    if ( adoptSidecar ) {
        (void)trySidecarAdoption( *decompressor, archivePath );
    }
    return decompressor;
}

}  // namespace rapidgzip::formats
