#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "../common/Util.hpp"
#include "VendorBzip2.hpp"

#if defined( RAPIDGZIP_HAVE_VENDOR_BZIP2 )

namespace rapidgzip::formats {

/**
 * bzip2 writer for benches and tests, wrapping vendor libbz2. The knob
 * that matters for the parallel reader is @p blockSize100k: level 1 cuts
 * the input into ~100 kB blocks (many independent units to fan out),
 * level 9 into ~900 kB blocks. Multi-STREAM files (bzip2 -c a b >> both)
 * are produced by concatenating writeBzip2 outputs — the reader's block
 * scan handles them transparently.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
writeBzip2( BufferView data, int blockSize100k = 9 )
{
    return vendorBzip2Compress( data, blockSize100k );
}

}  // namespace rapidgzip::formats

#endif  /* RAPIDGZIP_HAVE_VENDOR_BZIP2 */
