#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rapidgzip::formats {

/**
 * XXH32 (Yann Collet's xxHash, 32-bit variant), implemented from the public
 * specification. The LZ4 frame format depends on it twice — the frame
 * descriptor's header checksum byte and the optional block/content
 * checksums — and the container images only ship liblz4's runtime .so,
 * which does not export its embedded xxhash symbols. Verified against the
 * specification's test vectors in testFormats.
 *
 * Streaming is not needed here: every hashed object (descriptor, block,
 * whole content) is in memory, so a one-shot function keeps it simple.
 */
[[nodiscard]] inline std::uint32_t
xxhash32( const void* input, std::size_t length, std::uint32_t seed = 0 ) noexcept
{
    constexpr std::uint32_t PRIME1 = 2654435761U;
    constexpr std::uint32_t PRIME2 = 2246822519U;
    constexpr std::uint32_t PRIME3 = 3266489917U;
    constexpr std::uint32_t PRIME4 = 668265263U;
    constexpr std::uint32_t PRIME5 = 374761393U;

    const auto rotl = [] ( std::uint32_t value, unsigned count ) {
        return ( value << count ) | ( value >> ( 32U - count ) );
    };
    const auto readLE32 = [] ( const std::uint8_t* p ) {
        std::uint32_t value;
        std::memcpy( &value, p, sizeof( value ) );
#if defined( __BYTE_ORDER__ ) && ( __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__ )
        value = __builtin_bswap32( value );
#endif
        return value;
    };

    const auto* p = static_cast<const std::uint8_t*>( input );
    const auto* const end = p + length;
    std::uint32_t hash;

    if ( length >= 16 ) {
        std::uint32_t acc1 = seed + PRIME1 + PRIME2;
        std::uint32_t acc2 = seed + PRIME2;
        std::uint32_t acc3 = seed;
        std::uint32_t acc4 = seed - PRIME1;
        const auto round = [&rotl] ( std::uint32_t acc, std::uint32_t lane ) {
            return rotl( acc + lane * PRIME2, 13U ) * PRIME1;
        };
        do {
            acc1 = round( acc1, readLE32( p ) );
            acc2 = round( acc2, readLE32( p + 4 ) );
            acc3 = round( acc3, readLE32( p + 8 ) );
            acc4 = round( acc4, readLE32( p + 12 ) );
            p += 16;
        } while ( p + 16 <= end );
        hash = rotl( acc1, 1U ) + rotl( acc2, 7U ) + rotl( acc3, 12U ) + rotl( acc4, 18U );
    } else {
        hash = seed + PRIME5;
    }

    hash += static_cast<std::uint32_t>( length );
    while ( p + 4 <= end ) {
        hash = rotl( hash + readLE32( p ) * PRIME3, 17U ) * PRIME4;
        p += 4;
    }
    while ( p < end ) {
        hash = rotl( hash + *p * PRIME5, 11U ) * PRIME1;
        ++p;
    }

    hash ^= hash >> 15U;
    hash *= PRIME2;
    hash ^= hash >> 13U;
    hash *= PRIME3;
    hash ^= hash >> 16U;
    return hash;
}

/**
 * Streaming XXH32 for data that arrives span-by-span (the LZ4 content
 * checksum is over the WHOLE decompressed stream, which flows through the
 * sink in chunk-sized pieces). Produces bit-identical digests to the
 * one-shot xxhash32() — asserted in testFormats.
 */
class Xxh32Streamer
{
public:
    explicit Xxh32Streamer( std::uint32_t seed = 0 ) noexcept :
        m_seed( seed ),
        m_acc1( seed + PRIME1 + PRIME2 ),
        m_acc2( seed + PRIME2 ),
        m_acc3( seed ),
        m_acc4( seed - PRIME1 )
    {}

    void
    update( const void* input, std::size_t length ) noexcept
    {
        const auto* p = static_cast<const std::uint8_t*>( input );
        m_totalLength += length;

        if ( m_buffered + length < STRIPE ) {
            std::memcpy( m_buffer + m_buffered, p, length );
            m_buffered += length;
            return;
        }
        if ( m_buffered > 0 ) {
            const auto take = STRIPE - m_buffered;
            std::memcpy( m_buffer + m_buffered, p, take );
            consumeStripe( m_buffer );
            p += take;
            length -= take;
            m_buffered = 0;
        }
        while ( length >= STRIPE ) {
            consumeStripe( p );
            p += STRIPE;
            length -= STRIPE;
        }
        std::memcpy( m_buffer, p, length );
        m_buffered = length;
    }

    [[nodiscard]] std::uint32_t
    digest() const noexcept
    {
        const auto rotl = [] ( std::uint32_t value, unsigned count ) {
            return ( value << count ) | ( value >> ( 32U - count ) );
        };
        std::uint32_t hash;
        if ( m_totalLength >= STRIPE ) {
            hash = rotl( m_acc1, 1U ) + rotl( m_acc2, 7U )
                   + rotl( m_acc3, 12U ) + rotl( m_acc4, 18U );
        } else {
            hash = m_seed + PRIME5;
        }
        hash += static_cast<std::uint32_t>( m_totalLength );

        const auto* p = m_buffer;
        const auto* const end = m_buffer + m_buffered;
        while ( p + 4 <= end ) {
            hash = rotl( hash + readLane( p ) * PRIME3, 17U ) * PRIME4;
            p += 4;
        }
        while ( p < end ) {
            hash = rotl( hash + *p * PRIME5, 11U ) * PRIME1;
            ++p;
        }
        hash ^= hash >> 15U;
        hash *= PRIME2;
        hash ^= hash >> 13U;
        hash *= PRIME3;
        hash ^= hash >> 16U;
        return hash;
    }

private:
    static constexpr std::size_t STRIPE = 16;
    static constexpr std::uint32_t PRIME1 = 2654435761U;
    static constexpr std::uint32_t PRIME2 = 2246822519U;
    static constexpr std::uint32_t PRIME3 = 3266489917U;
    static constexpr std::uint32_t PRIME4 = 668265263U;
    static constexpr std::uint32_t PRIME5 = 374761393U;

    [[nodiscard]] static std::uint32_t
    readLane( const std::uint8_t* p ) noexcept
    {
        std::uint32_t value;
        std::memcpy( &value, p, sizeof( value ) );
#if defined( __BYTE_ORDER__ ) && ( __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__ )
        value = __builtin_bswap32( value );
#endif
        return value;
    }

    void
    consumeStripe( const std::uint8_t* stripe ) noexcept
    {
        const auto rotl = [] ( std::uint32_t value, unsigned count ) {
            return ( value << count ) | ( value >> ( 32U - count ) );
        };
        const auto round = [&rotl] ( std::uint32_t acc, std::uint32_t lane ) {
            return rotl( acc + lane * PRIME2, 13U ) * PRIME1;
        };
        m_acc1 = round( m_acc1, readLane( stripe ) );
        m_acc2 = round( m_acc2, readLane( stripe + 4 ) );
        m_acc3 = round( m_acc3, readLane( stripe + 8 ) );
        m_acc4 = round( m_acc4, readLane( stripe + 12 ) );
    }

    std::uint32_t m_seed;
    std::uint32_t m_acc1, m_acc2, m_acc3, m_acc4;
    std::uint64_t m_totalLength{ 0 };
    std::uint8_t m_buffer[STRIPE]{};
    std::size_t m_buffered{ 0 };
};

}  // namespace rapidgzip::formats
