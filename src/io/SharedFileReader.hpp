#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "FileReader.hpp"

namespace rapidgzip {

/**
 * Thread-safe shared view over a single underlying FileReader — the
 * abstraction benchmarked in paper Fig. 8. Many clones can pread() the same
 * file concurrently:
 *
 *  - If the underlying reader supports parallel pread (memory buffers,
 *    POSIX file descriptors), calls go straight through with zero locking.
 *  - Otherwise a shared mutex serializes a seek+read emulation, so even
 *    purely sequential sources (pipes wrapped in a buffer, archives) can
 *    be shared correctly, merely without the scaling.
 *
 * Each instance/clone keeps its own cursor; the underlying reader's cursor
 * is only ever touched under the lock in the emulation path.
 */
class SharedFileReader final : public FileReader
{
public:
    explicit SharedFileReader( std::unique_ptr<FileReader> reader ) :
        m_shared( std::make_shared<Shared>( std::move( reader ) ) )
    {
        if ( !m_shared->reader ) {
            throw FileIoError( "SharedFileReader requires a non-null underlying reader" );
        }
    }

    [[nodiscard]] std::size_t
    read( void* buffer, std::size_t size ) override
    {
        const auto result = pread( buffer, size, m_offset );
        m_offset += result;
        return result;
    }

    [[nodiscard]] std::size_t
    pread( void* buffer, std::size_t size, std::size_t offset ) const override
    {
        if ( m_shared->parallelPread ) {
            return m_shared->reader->pread( buffer, size, offset );
        }
        const std::lock_guard<std::mutex> lock( m_shared->mutex );
        m_shared->reader->seek( offset );
        return m_shared->reader->read( buffer, size );
    }

    void
    seek( std::size_t offset ) override
    {
        m_offset = std::min( offset, size() );
    }

    [[nodiscard]] std::size_t
    tell() const override
    {
        return m_offset;
    }

    [[nodiscard]] std::size_t
    size() const override
    {
        return m_shared->size;
    }

    [[nodiscard]] bool
    supportsParallelPread() const noexcept override
    {
        return true;
    }

    /** New view with its own cursor at 0; shares the underlying reader. */
    [[nodiscard]] std::unique_ptr<FileReader>
    clone() const override
    {
        return std::unique_ptr<FileReader>( new SharedFileReader( m_shared ) );
    }

private:
    struct Shared
    {
        explicit Shared( std::unique_ptr<FileReader> readerIn ) :
            reader( std::move( readerIn ) ),
            parallelPread( reader && reader->supportsParallelPread() ),
            size( reader ? reader->size() : 0 )
        {}

        mutable std::mutex mutex;
        std::unique_ptr<FileReader> reader;
        bool parallelPread{ false };
        std::size_t size{ 0 };
    };

    explicit SharedFileReader( std::shared_ptr<Shared> shared ) :
        m_shared( std::move( shared ) )
    {}

    std::shared_ptr<Shared> m_shared;
    std::size_t m_offset{ 0 };
};

/** Wrap @p reader in a SharedFileReader unless it already is one. */
[[nodiscard]] inline std::unique_ptr<SharedFileReader>
ensureSharedFileReader( std::unique_ptr<FileReader> reader )
{
    if ( auto* shared = dynamic_cast<SharedFileReader*>( reader.get() ); shared != nullptr ) {
        auto clone = shared->clone();
        return std::unique_ptr<SharedFileReader>( static_cast<SharedFileReader*>( clone.release() ) );
    }
    return std::make_unique<SharedFileReader>( std::move( reader ) );
}

}  // namespace rapidgzip
