#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "../common/Util.hpp"
#include "FileReader.hpp"

namespace rapidgzip {

/**
 * FileReader over an in-memory byte buffer. The buffer is held through a
 * shared_ptr so clone() is O(1) and all clones stay valid for as long as
 * any of them lives — the property SharedFileReader and the parallel chunk
 * fetcher rely on.
 */
class MemoryFileReader final : public FileReader
{
public:
    explicit MemoryFileReader( std::vector<std::uint8_t> data ) :
        m_data( std::make_shared<const std::vector<std::uint8_t> >( std::move( data ) ) )
    {}

    explicit MemoryFileReader( BufferView data ) :
        m_data( std::make_shared<const std::vector<std::uint8_t> >( data.begin(), data.end() ) )
    {}

    explicit MemoryFileReader( std::shared_ptr<const std::vector<std::uint8_t> > data ) :
        m_data( std::move( data ) )
    {
        if ( !m_data ) {
            throw FileIoError( "MemoryFileReader requires a non-null buffer" );
        }
    }

    [[nodiscard]] std::size_t
    read( void* buffer, std::size_t size ) override
    {
        const auto copied = pread( buffer, size, m_offset );
        m_offset += copied;
        return copied;
    }

    [[nodiscard]] std::size_t
    pread( void* buffer, std::size_t size, std::size_t offset ) const override
    {
        if ( offset >= m_data->size() ) {
            return 0;
        }
        const auto copied = std::min( size, m_data->size() - offset );
        if ( copied > 0 ) {
            std::memcpy( buffer, m_data->data() + offset, copied );
        }
        return copied;
    }

    void
    seek( std::size_t offset ) override
    {
        m_offset = std::min( offset, m_data->size() );
    }

    [[nodiscard]] std::size_t
    tell() const override
    {
        return m_offset;
    }

    [[nodiscard]] std::size_t
    size() const override
    {
        return m_data->size();
    }

    [[nodiscard]] bool
    supportsParallelPread() const noexcept override
    {
        return true;
    }

    [[nodiscard]] std::unique_ptr<FileReader>
    clone() const override
    {
        return std::make_unique<MemoryFileReader>( m_data );
    }

    /** Zero-copy access for callers that know they hold a memory reader. */
    [[nodiscard]] BufferView
    view() const noexcept
    {
        return BufferView( m_data->data(), m_data->size() );
    }

private:
    std::shared_ptr<const std::vector<std::uint8_t> > m_data;
    std::size_t m_offset{ 0 };
};

}  // namespace rapidgzip
