#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "FileReader.hpp"

namespace rapidgzip {

/**
 * Deterministic fault-injecting decorator over any FileReader.
 *
 * Where the failsafe probes (src/failsafe/) inject faults probabilistically
 * at fixed library sites, this decorator injects them at the FileReader
 * seam on an exact schedule — "every 3rd pread fails", "every 5th pread is
 * short" — which is what unit tests need to pin down retry and isolation
 * behavior without randomness. Clones share the schedule counters, so a
 * parallel reader pulling through many clones sees one global fault
 * schedule, the same shape a flaky device presents.
 */
class FaultyFileReader final : public FileReader
{
public:
    struct Behavior
    {
        /** Every Nth pread() call throws FileIoError (0 = never). */
        std::size_t failEveryN{ 0 };
        /** Every Nth pread() call returns at most half the requested bytes (0 = never). */
        std::size_t shortReadEveryN{ 0 };
        /** Stop injecting after this many faults — models a device that heals. */
        std::size_t maxFaults{ static_cast<std::size_t>( -1 ) };
    };

    FaultyFileReader( std::unique_ptr<FileReader> inner, Behavior behavior ) :
        m_inner( std::move( inner ) ),
        m_state( std::make_shared<State>() )
    {
        m_state->behavior = behavior;
    }

    [[nodiscard]] std::size_t
    read( void* buffer, std::size_t size ) override
    {
        const auto result = pread( buffer, size, m_offset );
        m_offset += result;
        return result;
    }

    [[nodiscard]] std::size_t
    pread( void* buffer, std::size_t size, std::size_t offset ) const override
    {
        const auto call = m_state->calls.fetch_add( 1, std::memory_order_relaxed ) + 1;
        const auto& behavior = m_state->behavior;
        if ( ( behavior.failEveryN > 0 ) && ( call % behavior.failEveryN == 0 )
             && takeFaultBudget() ) {
            throw FileIoError( "FaultyFileReader: scheduled failure on pread #"
                               + std::to_string( call ) );
        }
        if ( ( behavior.shortReadEveryN > 0 ) && ( call % behavior.shortReadEveryN == 0 )
             && ( size > 1 ) && takeFaultBudget() ) {
            return m_inner->pread( buffer, size / 2, offset );
        }
        return m_inner->pread( buffer, size, offset );
    }

    void
    seek( std::size_t offset ) override
    {
        m_offset = std::min( offset, m_inner->size() );
    }

    [[nodiscard]] std::size_t
    tell() const override
    {
        return m_offset;
    }

    [[nodiscard]] std::size_t
    size() const override
    {
        return m_inner->size();
    }

    [[nodiscard]] bool
    supportsParallelPread() const noexcept override
    {
        return m_inner->supportsParallelPread();
    }

    [[nodiscard]] std::unique_ptr<FileReader>
    clone() const override
    {
        return std::unique_ptr<FileReader>(
            new FaultyFileReader( m_inner->clone(), m_state ) );
    }

    /** Total pread() calls observed across this reader and all clones. */
    [[nodiscard]] std::size_t
    callCount() const noexcept
    {
        return m_state->calls.load( std::memory_order_relaxed );
    }

    /** Faults actually injected across this reader and all clones. */
    [[nodiscard]] std::size_t
    faultCount() const noexcept
    {
        return m_state->faults.load( std::memory_order_relaxed );
    }

private:
    struct State
    {
        Behavior behavior;
        std::atomic<std::size_t> calls{ 0 };
        std::atomic<std::size_t> faults{ 0 };
    };

    FaultyFileReader( std::unique_ptr<FileReader> inner, std::shared_ptr<State> state ) :
        m_inner( std::move( inner ) ),
        m_state( std::move( state ) )
    {}

    /** Claim one fault from the shared budget; false once maxFaults is spent. */
    [[nodiscard]] bool
    takeFaultBudget() const noexcept
    {
        auto current = m_state->faults.load( std::memory_order_relaxed );
        while ( current < m_state->behavior.maxFaults ) {
            if ( m_state->faults.compare_exchange_weak( current, current + 1,
                                                        std::memory_order_relaxed ) ) {
                return true;
            }
        }
        return false;
    }

    std::unique_ptr<FileReader> m_inner;
    std::shared_ptr<State> m_state;
    std::size_t m_offset{ 0 };
};

}  // namespace rapidgzip
