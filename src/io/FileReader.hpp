#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "../common/Error.hpp"

namespace rapidgzip {

namespace io {

/** Retry budget for transient I/O failures (EAGAIN, EIO, short reads).
 * With exponential backoff from 50 µs the whole budget costs ~6 ms — cheap
 * on the failure path, free on success. */
inline constexpr unsigned MAX_TRANSIENT_RETRIES = 6;

/** Exponential backoff before transient-retry @p attempt (0-based). */
inline void
transientBackoff( unsigned attempt )
{
    const auto exponent = attempt < 6U ? attempt : 6U;
    std::this_thread::sleep_for( std::chrono::microseconds( 50ULL << exponent ) );
}

}  // namespace io

/**
 * Abstract seekable byte source — the bottom of the rapidgzip I/O stack.
 *
 * Contract:
 *  - read/seek/tell operate on a per-instance cursor.
 *  - pread() is const and MUST NOT touch the cursor. Implementations that
 *    return true from supportsParallelPread() additionally guarantee that
 *    concurrent pread() calls on the same instance (or on clones sharing
 *    the underlying source) are thread-safe.
 *  - clone() returns an independent view of the same underlying data with
 *    its own cursor positioned at 0. The underlying storage is shared, so
 *    clones are cheap and the source outlives every clone.
 */
class FileReader
{
public:
    virtual ~FileReader() = default;

    /** Read up to @p size bytes at the cursor, advancing it. Returns bytes read (0 at EOF). */
    [[nodiscard]] virtual std::size_t
    read( void* buffer, std::size_t size ) = 0;

    /** Positioned read that does not move the cursor. Returns bytes read. */
    [[nodiscard]] virtual std::size_t
    pread( void* buffer, std::size_t size, std::size_t offset ) const = 0;

    /** Move the cursor to the absolute byte @p offset (clamped to size()). */
    virtual void
    seek( std::size_t offset ) = 0;

    [[nodiscard]] virtual std::size_t
    tell() const = 0;

    [[nodiscard]] virtual std::size_t
    size() const = 0;

    [[nodiscard]] virtual bool
    eof() const
    {
        return tell() >= size();
    }

    [[nodiscard]] virtual bool
    supportsParallelPread() const noexcept
    {
        return false;
    }

    [[nodiscard]] virtual std::unique_ptr<FileReader>
    clone() const = 0;
};

/** Positioned read of exactly @p size bytes; throws FileIoError on a short
 * read. The contract every fixed-layout parser (gzip headers, index files)
 * wants, without each call site re-checking the returned count. A short
 * read is retried with bounded backoff before throwing — only the missing
 * tail is re-read, so flaky sources (network mounts, fault-injecting test
 * readers) heal transparently while a genuinely truncated file still fails
 * after the bounded budget. */
inline void
preadExactly( const FileReader& file, void* buffer, std::size_t size, std::size_t offset )
{
    auto* out = static_cast<char*>( buffer );
    auto total = file.pread( out, size, offset );
    for ( unsigned attempt = 0; ( total < size ) && ( attempt < io::MAX_TRANSIENT_RETRIES );
          ++attempt ) {
        io::transientBackoff( attempt );
        total += file.pread( out + total, size - total, offset + total );
    }
    if ( total != size ) {
        throw FileIoError( "Short read of " + std::to_string( size ) + " bytes at offset "
                           + std::to_string( offset ) );
    }
}

}  // namespace rapidgzip
