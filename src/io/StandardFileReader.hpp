#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "../failsafe/FaultInjection.hpp"
#include "FileReader.hpp"

namespace rapidgzip {

/**
 * FileReader over a file descriptor. All reads go through ::pread so the
 * kernel file offset is never shared state — clones share one descriptor
 * (via a reference-counted holder) but keep independent cursors, which
 * makes concurrent pread() from many threads safe per POSIX.
 */
class StandardFileReader final : public FileReader
{
public:
    explicit StandardFileReader( const std::string& filePath )
    {
        const int fd = ::open( filePath.c_str(), O_RDONLY );
        if ( fd < 0 ) {
            throw FileIoError( "Failed to open '" + filePath + "': " + std::strerror( errno ) );
        }
        m_fd = std::shared_ptr<const int>( new int( fd ), [] ( const int* p ) {
            ::close( *p );
            delete p;
        } );

        struct stat fileStat{};
        if ( ::fstat( fd, &fileStat ) != 0 ) {
            throw FileIoError( "Failed to stat '" + filePath + "': " + std::strerror( errno ) );
        }
        m_size = static_cast<std::size_t>( fileStat.st_size );
    }

    [[nodiscard]] std::size_t
    read( void* buffer, std::size_t size ) override
    {
        const auto result = pread( buffer, size, m_offset );
        m_offset += result;
        return result;
    }

    [[nodiscard]] std::size_t
    pread( void* buffer, std::size_t size, std::size_t offset ) const override
    {
        std::size_t total = 0;
        auto* out = static_cast<char*>( buffer );
        unsigned transientRetries = 0;
        while ( total < size ) {
            ssize_t n = 0;
            int error = 0;
            /* The io.read fault probe replays syscall outcomes so the retry
             * machinery below is exercised exactly as a flaky disk would:
             * EINTR/EAGAIN/EIO as-if ::pread returned -1, or a short read. */
            if ( failsafe::shouldInject( failsafe::FaultPoint::IO_READ ) ) {
                switch ( failsafe::drawBelow( failsafe::FaultPoint::IO_READ, 4 ) ) {
                case 0: n = -1; error = EINTR; break;
                case 1: n = -1; error = EAGAIN; break;
                case 2: n = -1; error = EIO; break;
                default: {
                    const auto want = std::max<std::size_t>( 1, ( size - total ) / 2 );
                    n = ::pread( *m_fd, out + total, want, static_cast<off_t>( offset + total ) );
                    error = errno;
                    break;
                }
                }
            } else {
                n = ::pread( *m_fd, out + total, size - total,
                             static_cast<off_t>( offset + total ) );
                error = errno;
            }
            if ( n < 0 ) {
                if ( error == EINTR ) {
                    continue;  /* progress-neutral; retry immediately */
                }
                if ( ( ( error == EAGAIN ) || ( error == EWOULDBLOCK ) || ( error == EIO ) )
                     && ( transientRetries < io::MAX_TRANSIENT_RETRIES ) ) {
                    io::transientBackoff( transientRetries++ );
                    continue;
                }
                throw FileIoError( std::string( "pread failed: " ) + std::strerror( error ) );
            }
            if ( n == 0 ) {
                break;  /* EOF */
            }
            total += static_cast<std::size_t>( n );
        }
        return total;
    }

    void
    seek( std::size_t offset ) override
    {
        m_offset = std::min( offset, m_size );
    }

    [[nodiscard]] std::size_t
    tell() const override
    {
        return m_offset;
    }

    [[nodiscard]] std::size_t
    size() const override
    {
        return m_size;
    }

    [[nodiscard]] bool
    supportsParallelPread() const noexcept override
    {
        return true;
    }

    [[nodiscard]] std::unique_ptr<FileReader>
    clone() const override
    {
        return std::unique_ptr<FileReader>( new StandardFileReader( m_fd, m_size ) );
    }

private:
    StandardFileReader( std::shared_ptr<const int> fd, std::size_t size ) :
        m_fd( std::move( fd ) ),
        m_size( size )
    {}

    std::shared_ptr<const int> m_fd;
    std::size_t m_size{ 0 };
    std::size_t m_offset{ 0 };
};

}  // namespace rapidgzip
