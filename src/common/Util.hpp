#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "Error.hpp"

namespace rapidgzip {

inline constexpr std::size_t KiB = std::size_t( 1 ) << 10U;
inline constexpr std::size_t MiB = std::size_t( 1 ) << 20U;
inline constexpr std::size_t GiB = std::size_t( 1 ) << 30U;

template<typename T>
[[nodiscard]] constexpr T
ceilDiv( T dividend, T divisor ) noexcept
{
    return ( dividend + divisor - 1 ) / divisor;
}

/** Monotonic wall-clock stopwatch. elapsed() returns seconds as double. */
class Stopwatch
{
public:
    Stopwatch() noexcept :
        m_start( std::chrono::steady_clock::now() )
    {}

    void
    reset() noexcept
    {
        m_start = std::chrono::steady_clock::now();
    }

    [[nodiscard]] double
    elapsed() const noexcept
    {
        return durationSeconds( m_start, std::chrono::steady_clock::now() );
    }

    [[nodiscard]] static double
    durationSeconds( std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to ) noexcept
    {
        return std::chrono::duration<double>( to - from ).count();
    }

private:
    std::chrono::steady_clock::time_point m_start;
};

[[nodiscard]] inline std::string
formatBytes( std::size_t bytes )
{
    const char* const units[] = { "B", "KiB", "MiB", "GiB", "TiB" };
    double value = static_cast<double>( bytes );
    std::size_t unit = 0;
    while ( ( value >= 1024.0 ) && ( unit + 1 < sizeof( units ) / sizeof( units[0] ) ) ) {
        value /= 1024.0;
        ++unit;
    }
    char buffer[64];
    if ( unit == 0 ) {
        std::snprintf( buffer, sizeof( buffer ), "%zu B", bytes );
    } else {
        std::snprintf( buffer, sizeof( buffer ), "%.1f %s", value, units[unit] );
    }
    return std::string( buffer );
}

/**
 * Small, fast, seedable PRNG (xorshift64*). Deterministic across platforms,
 * which matters because the synthetic workloads must be reproducible for the
 * paper-figure comparisons.
 */
class Xorshift64
{
public:
    explicit constexpr Xorshift64( std::uint64_t seed ) noexcept :
        /* Never allow the all-zero state, which is a fixed point. */
        m_state( seed == 0 ? 0x9E3779B97F4A7C15ULL : seed )
    {}

    constexpr std::uint64_t
    operator()() noexcept
    {
        m_state ^= m_state >> 12U;
        m_state ^= m_state << 25U;
        m_state ^= m_state >> 27U;
        return m_state * 0x2545F4914F6CDD1DULL;
    }

    /** Uniformly distributed value in [0, bound). @p bound must be > 0. */
    constexpr std::size_t
    below( std::size_t bound ) noexcept
    {
        return static_cast<std::size_t>( operator()() % bound );
    }

private:
    std::uint64_t m_state;
};

/**
 * Non-owning contiguous read-only view, the C++17 stand-in for
 * std::span<const T>. Brace-constructible from { pointer, size } and
 * implicitly convertible from any contiguous container with data()/size()
 * (std::vector, std::array, std::string, and std::span once available).
 */
template<typename T>
class VectorView
{
public:
    constexpr VectorView() noexcept = default;

    constexpr VectorView( const T* data, std::size_t size ) noexcept :
        m_data( data ),
        m_size( size )
    {}

    template<typename Container,
             typename = std::enable_if_t<
                 std::is_convertible_v<decltype( std::declval<const Container&>().data() ), const T*> > >
    constexpr VectorView( const Container& container ) noexcept :
        m_data( container.data() ),
        m_size( container.size() )
    {}

    [[nodiscard]] constexpr const T* data() const noexcept { return m_data; }
    [[nodiscard]] constexpr std::size_t size() const noexcept { return m_size; }
    [[nodiscard]] constexpr bool empty() const noexcept { return m_size == 0; }
    [[nodiscard]] constexpr const T* begin() const noexcept { return m_data; }
    [[nodiscard]] constexpr const T* end() const noexcept { return m_data + m_size; }
    [[nodiscard]] constexpr const T& operator[]( std::size_t i ) const noexcept { return m_data[i]; }

    [[nodiscard]] constexpr VectorView
    subView( std::size_t offset, std::size_t count ) const noexcept
    {
        offset = offset > m_size ? m_size : offset;
        count = count > m_size - offset ? m_size - offset : count;
        return VectorView( m_data + offset, count );
    }

private:
    const T* m_data{ nullptr };
    std::size_t m_size{ 0 };
};

using BufferView = VectorView<std::uint8_t>;

/**
 * Allocator adaptor that DEFAULT-initializes on construct() — for trivial
 * element types that makes vector::resize() pure bookkeeping instead of a
 * memset over the new region. The decode hot paths size their output
 * buffers ahead of raw-cursor writes every block; with value-initialization
 * that zeroing would rival the decoding itself (the bytes are overwritten
 * immediately anyway). Only used via FastVector for buffers whose every
 * live byte is written before being read.
 */
template<typename T, typename Allocator = std::allocator<T>>
class DefaultInitAllocator : public Allocator
{
public:
    template<typename U>
    struct rebind
    {
        using other = DefaultInitAllocator<
            U, typename std::allocator_traits<Allocator>::template rebind_alloc<U> >;
    };

    using Allocator::Allocator;

    template<typename U>
    void
    construct( U* pointer ) noexcept( std::is_nothrow_default_constructible_v<U> )
    {
        ::new ( static_cast<void*>( pointer ) ) U;
    }

    template<typename U, typename... Args>
    void
    construct( U* pointer, Args&&... args )
    {
        std::allocator_traits<Allocator>::construct(
            static_cast<Allocator&>( *this ), pointer, std::forward<Args>( args )... );
    }
};

template<typename T>
using FastVector = std::vector<T, DefaultInitAllocator<T> >;

}  // namespace rapidgzip
