#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "../failsafe/FaultInjection.hpp"
#include "../telemetry/Registry.hpp"
#include "../telemetry/Trace.hpp"

namespace rapidgzip {

/**
 * Fixed-size thread pool with a FIFO task queue. Tasks return futures.
 * Kept deliberately simple: the chunk fetcher bounds its own queue depth
 * through the prefetch strategy, so no backpressure is needed here.
 *
 * Telemetry: queue depth gauge plus task wait/run latency histograms and
 * "pool.task" run spans, all gated so a disabled process pays one relaxed
 * load per submit and a null timestamp check per dequeue.
 */
class ThreadPool
{
public:
    explicit ThreadPool( std::size_t threadCount )
    {
        if ( threadCount == 0 ) {
            threadCount = 1;
        }
        m_threads.reserve( threadCount );
        for ( std::size_t i = 0; i < threadCount; ++i ) {
            m_threads.emplace_back( [this] () { workerLoop(); } );
        }
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock( m_mutex );
            m_shuttingDown = true;
            /* Discard unstarted tasks: their futures (if still referenced)
             * report broken_promise instead of blocking shutdown on work
             * nobody will consume. Running tasks complete via join(). */
            if ( !m_tasks.empty() && telemetry::metricsEnabled() ) {
                queueDepthGauge().add( -static_cast<std::int64_t>( m_tasks.size() ) );
            }
            m_tasks.clear();
        }
        m_workAvailable.notify_all();
        for ( auto& thread : m_threads ) {
            thread.join();
        }
    }

    ThreadPool( const ThreadPool& ) = delete;
    ThreadPool& operator=( const ThreadPool& ) = delete;

    template<typename Functor>
    [[nodiscard]] std::future<std::invoke_result_t<Functor> >
    submit( Functor&& functor )
    {
        using Result = std::invoke_result_t<Functor>;
        auto task = std::make_shared<std::packaged_task<Result()> >( std::forward<Functor>( functor ) );
        auto future = task->get_future();
        const auto instrumented = telemetry::metricsEnabled() || telemetry::traceEnabled();
        const auto enqueueNs = instrumented ? telemetry::nowNs() : std::uint64_t( 0 );
        {
            std::lock_guard<std::mutex> lock( m_mutex );
            m_tasks.push_back( { [task = std::move( task )] () { ( *task )(); }, enqueueNs } );
            if ( instrumented && telemetry::metricsEnabled() ) {
                queueDepthGauge().add( 1 );
            }
        }
        m_workAvailable.notify_one();
        return future;
    }

    [[nodiscard]] std::size_t
    threadCount() const noexcept
    {
        return m_threads.size();
    }

private:
    struct QueuedTask
    {
        std::function<void()> run;
        std::uint64_t enqueueNs{ 0 };  /**< 0 when telemetry was off at submit time */
    };

    /** Process-wide (all pools share it): outstanding tasks not yet started. */
    [[nodiscard]] static telemetry::Gauge&
    queueDepthGauge()
    {
        static auto& gauge = telemetry::Registry::instance().gauge(
            "rapidgzip_pool_queue_depth", "Tasks enqueued to thread pools but not yet started." );
        return gauge;
    }

    void
    workerLoop()
    {
        while ( true ) {
            QueuedTask task;
            {
                std::unique_lock<std::mutex> lock( m_mutex );
                m_workAvailable.wait( lock, [this] () { return m_shuttingDown || !m_tasks.empty(); } );
                if ( m_tasks.empty() ) {
                    return;  /* shutting down and drained */
                }
                task = std::move( m_tasks.front() );
                m_tasks.pop_front();
            }
            /* pool.task probe: a firing draw sleeps the configured latency,
             * jittering task start order to shake out scheduling and
             * timeout assumptions. Latency is its only effect — a throw
             * here would escape the packaged_task and kill the worker. */
            (void)failsafe::shouldInject( failsafe::FaultPoint::POOL_TASK );
            if ( task.enqueueNs != 0 ) {
                if ( telemetry::metricsEnabled() ) {
                    queueDepthGauge().add( -1 );
                    static auto& waitHistogram = telemetry::Registry::instance().histogram(
                        "rapidgzip_pool_task_wait_seconds",
                        "Time tasks spent queued before a worker picked them up." );
                    waitHistogram.recordUnchecked( telemetry::nowNs() - task.enqueueNs );
                }
                const auto runBeginNs = telemetry::nowNs();
                {
                    telemetry::Span runSpan{ "pool", "pool.task" };
                    task.run();
                }
                if ( telemetry::metricsEnabled() ) {
                    static auto& runHistogram = telemetry::Registry::instance().histogram(
                        "rapidgzip_pool_task_run_seconds", "Wall time tasks spent executing on a worker." );
                    runHistogram.recordUnchecked( telemetry::nowNs() - runBeginNs );
                }
            } else {
                task.run();
            }
        }
    }

    std::mutex m_mutex;
    std::condition_variable m_workAvailable;
    std::deque<QueuedTask> m_tasks;
    std::vector<std::thread> m_threads;
    bool m_shuttingDown{ false };
};

}  // namespace rapidgzip
