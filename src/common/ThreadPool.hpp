#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rapidgzip {

/**
 * Fixed-size thread pool with a FIFO task queue. Tasks return futures.
 * Kept deliberately simple: the chunk fetcher bounds its own queue depth
 * through the prefetch strategy, so no backpressure is needed here.
 */
class ThreadPool
{
public:
    explicit ThreadPool( std::size_t threadCount )
    {
        if ( threadCount == 0 ) {
            threadCount = 1;
        }
        m_threads.reserve( threadCount );
        for ( std::size_t i = 0; i < threadCount; ++i ) {
            m_threads.emplace_back( [this] () { workerLoop(); } );
        }
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock( m_mutex );
            m_shuttingDown = true;
            /* Discard unstarted tasks: their futures (if still referenced)
             * report broken_promise instead of blocking shutdown on work
             * nobody will consume. Running tasks complete via join(). */
            m_tasks.clear();
        }
        m_workAvailable.notify_all();
        for ( auto& thread : m_threads ) {
            thread.join();
        }
    }

    ThreadPool( const ThreadPool& ) = delete;
    ThreadPool& operator=( const ThreadPool& ) = delete;

    template<typename Functor>
    [[nodiscard]] std::future<std::invoke_result_t<Functor> >
    submit( Functor&& functor )
    {
        using Result = std::invoke_result_t<Functor>;
        auto task = std::make_shared<std::packaged_task<Result()> >( std::forward<Functor>( functor ) );
        auto future = task->get_future();
        {
            std::lock_guard<std::mutex> lock( m_mutex );
            m_tasks.emplace_back( [task = std::move( task )] () { ( *task )(); } );
        }
        m_workAvailable.notify_one();
        return future;
    }

    [[nodiscard]] std::size_t
    threadCount() const noexcept
    {
        return m_threads.size();
    }

private:
    void
    workerLoop()
    {
        while ( true ) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock( m_mutex );
                m_workAvailable.wait( lock, [this] () { return m_shuttingDown || !m_tasks.empty(); } );
                if ( m_tasks.empty() ) {
                    return;  /* shutting down and drained */
                }
                task = std::move( m_tasks.front() );
                m_tasks.pop_front();
            }
            task();
        }
    }

    std::mutex m_mutex;
    std::condition_variable m_workAvailable;
    std::deque<std::function<void()> > m_tasks;
    std::vector<std::thread> m_threads;
    bool m_shuttingDown{ false };
};

}  // namespace rapidgzip
