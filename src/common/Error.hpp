#pragma once

#include <stdexcept>
#include <string>

namespace rapidgzip {

/**
 * Base class for all exceptions thrown by the rapidgzip core library.
 * Benchmarks and callers catch this one type; more specific subclasses
 * exist so tests can assert on the failing layer.
 */
class RapidgzipError : public std::runtime_error
{
public:
    explicit RapidgzipError(const std::string& message) :
        std::runtime_error(message)
    {}
};

/** Input does not look like (or stopped being) a valid gzip stream. */
class InvalidGzipStreamError : public RapidgzipError
{
public:
    explicit InvalidGzipStreamError(const std::string& message) :
        RapidgzipError(message)
    {}
};

/** The decompressed data failed CRC32 / ISIZE verification. */
class ChecksumError : public RapidgzipError
{
public:
    explicit ChecksumError(const std::string& message) :
        RapidgzipError(message)
    {}
};

/** Decompressed data violates a decoder restriction, e.g. pugz's ASCII range. */
class UnsupportedDataError : public RapidgzipError
{
public:
    explicit UnsupportedDataError(const std::string& message) :
        RapidgzipError(message)
    {}
};

/** I/O layer failure (open, read, seek). */
class FileIoError : public RapidgzipError
{
public:
    explicit FileIoError(const std::string& message) :
        RapidgzipError(message)
    {}
};

}  // namespace rapidgzip
