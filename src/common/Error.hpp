#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rapidgzip {

/**
 * Non-throwing error codes for the hot decode paths (deflate decoder, block
 * finders, chunk fetcher). Block finding probes millions of candidate
 * offsets, almost all of which "fail" — exceptions there would dominate the
 * runtime, so those layers return Error and only the outermost orchestration
 * (ParallelGzipReader) converts persistent failures into the exception
 * hierarchy below.
 */
enum class Error : std::uint8_t
{
    NONE = 0,
    /** The input ended mid-block (or mid-header). */
    TRUNCATED_STREAM,
    /** No decodable Deflate block found in the searched range. */
    BLOCK_NOT_FOUND,
    /** Reserved block type 0b11. */
    INVALID_BLOCK_TYPE,
    /** BFINAL set — finders reject final blocks as chunk-start candidates. */
    INVALID_FINAL_BLOCK,
    /** Stored block whose NLEN is not the complement of LEN. */
    INVALID_STORED_LENGTH,
    /** HLIT > 29 or HDIST > 29 in a Dynamic block header. */
    INVALID_CODE_COUNTS,
    /** Over-subscribed (or empty) precode. */
    INVALID_PRECODE,
    /** Incomplete precode — spec-legal encoders never emit one (zlib rejects it too). */
    NON_OPTIMAL_PRECODE,
    /** The precode-encoded code-length data is malformed (bad repeat, overflow). */
    INVALID_CODE_LENGTHS,
    /** Over-subscribed distance code. */
    INVALID_DISTANCE_CODING,
    /** Incomplete distance code with more than one symbol (single-code incompleteness is legal). */
    NON_OPTIMAL_DISTANCE_CODING,
    /** Over-subscribed literal/length code. */
    INVALID_LITERAL_CODING,
    /** Incomplete literal/length code. */
    NON_OPTIMAL_LITERAL_CODING,
    /** Literal/length symbol 286/287 or an unmapped bit pattern. */
    INVALID_SYMBOL,
    /** Distance symbol 30/31, unmapped pattern, or a match with no distance code defined. */
    INVALID_DISTANCE,
    /** Back-reference reaching beyond the available window/history. */
    EXCEEDED_WINDOW,
    /** Decoding stopped because the output limit was reached mid-block. */
    EXCEEDED_OUTPUT_LIMIT,
};

[[nodiscard]] inline const char*
toString( Error error ) noexcept
{
    switch ( error ) {
    case Error::NONE:                        return "no error";
    case Error::TRUNCATED_STREAM:            return "truncated stream";
    case Error::BLOCK_NOT_FOUND:             return "no deflate block found";
    case Error::INVALID_BLOCK_TYPE:          return "invalid block type";
    case Error::INVALID_FINAL_BLOCK:         return "final block rejected";
    case Error::INVALID_STORED_LENGTH:       return "invalid stored block length";
    case Error::INVALID_CODE_COUNTS:         return "invalid HLIT/HDIST counts";
    case Error::INVALID_PRECODE:             return "invalid precode";
    case Error::NON_OPTIMAL_PRECODE:         return "non-optimal precode";
    case Error::INVALID_CODE_LENGTHS:        return "invalid precode-encoded data";
    case Error::INVALID_DISTANCE_CODING:     return "invalid distance code";
    case Error::NON_OPTIMAL_DISTANCE_CODING: return "non-optimal distance code";
    case Error::INVALID_LITERAL_CODING:      return "invalid literal code";
    case Error::NON_OPTIMAL_LITERAL_CODING:  return "non-optimal literal code";
    case Error::INVALID_SYMBOL:              return "invalid literal/length symbol";
    case Error::INVALID_DISTANCE:            return "invalid distance";
    case Error::EXCEEDED_WINDOW:             return "reference beyond available window";
    case Error::EXCEEDED_OUTPUT_LIMIT:       return "output limit exceeded";
    }
    return "unknown error";
}

/**
 * Base class for all exceptions thrown by the rapidgzip core library.
 * Benchmarks and callers catch this one type; more specific subclasses
 * exist so tests can assert on the failing layer.
 */
class RapidgzipError : public std::runtime_error
{
public:
    explicit RapidgzipError(const std::string& message) :
        std::runtime_error(message)
    {}
};

/** Input does not look like (or stopped being) a valid gzip stream. */
class InvalidGzipStreamError : public RapidgzipError
{
public:
    explicit InvalidGzipStreamError(const std::string& message) :
        RapidgzipError(message)
    {}
};

/** The decompressed data failed CRC32 / ISIZE verification. */
class ChecksumError : public RapidgzipError
{
public:
    explicit ChecksumError(const std::string& message) :
        RapidgzipError(message)
    {}
};

/** Decompressed data violates a decoder restriction, e.g. pugz's ASCII range. */
class UnsupportedDataError : public RapidgzipError
{
public:
    explicit UnsupportedDataError(const std::string& message) :
        RapidgzipError(message)
    {}
};

/** I/O layer failure (open, read, seek). */
class FileIoError : public RapidgzipError
{
public:
    explicit FileIoError(const std::string& message) :
        RapidgzipError(message)
    {}
};

}  // namespace rapidgzip
