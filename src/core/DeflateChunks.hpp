#pragma once

#include <zlib.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../gzip/GzipHeader.hpp"
#include "../gzip/ZlibHelpers.hpp"
#include "../io/FileReader.hpp"
#include "../simd/Crc32.hpp"
#include "../telemetry/Trace.hpp"

namespace rapidgzip {

/**
 * Shared machinery for chunked parallel gzip decompression: locating
 * full-flush restart points (the pigz/Z_FULL_FLUSH `00 00 FF FF` sync
 * marker), partitioning the stream into chunks, and raw-Deflate-decoding a
 * chunk that starts at such a restart point. Used by ParallelGzipReader and
 * the pugz-like baseline.
 *
 * A full flush both byte-aligns the stream (empty stored block) and resets
 * the LZ77 window, so a chunk starting right after the marker decodes
 * standalone with an empty window. Chunks that need window propagation
 * (arbitrary block offsets) arrive with the two-stage decoder in a later
 * PR.
 */

inline constexpr std::size_t FULL_FLUSH_MARKER_SIZE = 4;

/** Marker *end* offsets (chunk start candidates) in [searchBegin, searchEnd). */
[[nodiscard]] inline std::vector<std::size_t>
findFullFlushMarkers( const FileReader& file, std::size_t searchBegin, std::size_t searchEnd )
{
    static constexpr std::uint8_t MARKER[FULL_FLUSH_MARKER_SIZE] = { 0x00, 0x00, 0xFF, 0xFF };
    constexpr std::size_t BLOCK = 4 * MiB;

    telemetry::Span findSpan{ "pipeline", "chunk.find" };

    std::vector<std::size_t> result;
    searchEnd = std::min( searchEnd, file.size() );
    if ( ( searchBegin >= searchEnd ) || ( searchEnd - searchBegin < FULL_FLUSH_MARKER_SIZE ) ) {
        return result;
    }

    std::vector<std::uint8_t> buffer( BLOCK + FULL_FLUSH_MARKER_SIZE - 1 );
    for ( std::size_t offset = searchBegin; offset < searchEnd; offset += BLOCK ) {
        /* Overlap blocks by marker-size - 1 bytes so straddling matches are found. */
        const auto toRead = std::min( buffer.size(), searchEnd - offset );
        const auto got = file.pread( buffer.data(), toRead, offset );
        if ( got < FULL_FLUSH_MARKER_SIZE ) {
            break;
        }
        const auto* const begin = buffer.data();
        const auto* const end = begin + got;
        for ( const auto* p = begin; ( p = std::search( p, end, MARKER, MARKER + FULL_FLUSH_MARKER_SIZE ) ) != end; ++p ) {
            result.push_back( offset + static_cast<std::size_t>( p - begin ) + FULL_FLUSH_MARKER_SIZE );
        }
    }

    /* The overlap can report a marker twice; offsets are sorted per block. */
    std::sort( result.begin(), result.end() );
    result.erase( std::unique( result.begin(), result.end() ), result.end() );
    return result;
}

struct ChunkBoundary
{
    std::size_t compressedBegin{ 0 };  /**< first byte of the chunk's Deflate data */
    std::size_t compressedEnd{ 0 };    /**< one past the last byte this chunk may consume */
};

/**
 * Cheap validation that @p offset really is a Deflate restart point: raw
 * inflate a small probe window and check zlib does not reject it. False
 * sync-marker matches inside compressed data (probability ~2^-32 per byte)
 * virtually never survive this; the ones that would are caught later by the
 * checksum verification and its serial fallback.
 */
[[nodiscard]] inline bool
probeRawDeflatePoint( const FileReader& file, std::size_t offset )
{
    constexpr std::size_t PROBE_INPUT = 16 * KiB;
    constexpr std::size_t PROBE_OUTPUT = 8 * KiB;

    std::vector<std::uint8_t> input( std::min( PROBE_INPUT, file.size() - std::min( offset, file.size() ) ) );
    const auto got = file.pread( input.data(), input.size(), offset );
    if ( got == 0 ) {
        return false;
    }

    z_stream stream{};
    if ( inflateInit2( &stream, RAW_DEFLATE_WINDOW_BITS ) != Z_OK ) {
        throw RapidgzipError( "inflateInit2 failed" );
    }
    stream.next_in = input.data();
    stream.avail_in = static_cast<uInt>( got );
    std::uint8_t output[PROBE_OUTPUT];
    stream.next_out = output;
    stream.avail_out = sizeof( output );
    const auto code = inflate( &stream, Z_NO_FLUSH );
    inflateEnd( &stream );
    return ( code == Z_OK ) || ( code == Z_STREAM_END ) || ( code == Z_BUF_ERROR );
}

/**
 * Partition [firstDeflateByte, compressedEnd) into chunks of at least
 * @p chunkSizeBytes compressed bytes, cutting only at validated restart
 * candidates. Candidates are marker-end offsets from findFullFlushMarkers().
 */
[[nodiscard]] inline std::vector<ChunkBoundary>
buildChunkTable( const FileReader& file,
                 const std::vector<std::size_t>& restartCandidates,
                 std::size_t firstDeflateByte,
                 std::size_t compressedEnd,
                 std::size_t chunkSizeBytes )
{
    std::vector<ChunkBoundary> chunks;
    std::size_t currentBegin = firstDeflateByte;
    for ( const auto candidate : restartCandidates ) {
        if ( ( candidate <= currentBegin ) || ( candidate >= compressedEnd ) ) {
            continue;
        }
        if ( candidate - currentBegin < std::max<std::size_t>( chunkSizeBytes, 1 ) ) {
            continue;  /* merge flush intervals until the chunk is big enough */
        }
        if ( !probeRawDeflatePoint( file, candidate ) ) {
            continue;  /* false marker match — keep the bytes in the current chunk */
        }
        chunks.push_back( { currentBegin, candidate } );
        currentBegin = candidate;
    }
    if ( currentBegin < compressedEnd || chunks.empty() ) {
        chunks.push_back( { currentBegin, compressedEnd } );
    }
    return chunks;
}

struct DecodedChunk
{
    /**
     * A gzip member that ENDS inside this chunk, with everything a
     * sequential consumer needs to verify it against its footer: the CRC32
     * of the member's bytes WITHIN this chunk (the member may have started
     * in an earlier chunk; the consumer crc32_combine()s across chunks),
     * where those bytes end in `data`, and where the footer sits in the
     * file. This is what makes per-member footer verification possible for
     * concatenated members on every chunked path.
     */
    struct MemberEnd
    {
        std::size_t dataEndOffset{ 0 };    /**< end of the member's bytes in `data` */
        std::uint32_t segmentCrc32{ 0 };   /**< CRC32 of data[previous end .. dataEndOffset) */
        std::size_t footerStartByte{ 0 };  /**< absolute file offset of the member's footer */
    };

    std::vector<std::uint8_t> data;
    std::uint32_t crc32{ 0 };          /**< CRC32 of data (zlib polynomial) */
    std::size_t memberRestarts{ 0 };   /**< gzip member transitions crossed inside the chunk */
    bool reachedStreamEnd{ false };
    /** Absolute file offset just past the final Deflate byte when
     * reachedStreamEnd — where the gzip footer begins. Trailing bytes
     * beyond footer + padding are ignored, mirroring `gzip -d`. */
    std::size_t deflateEndOffset{ 0 };

    /** Members ending inside this chunk, in stream order. */
    std::vector<MemberEnd> memberEnds;
    /** CRC32 of the bytes after the last member end (the whole chunk when
     * no member ends inside it) — the carry into the next chunk. */
    std::uint32_t trailingCrc32{ 0 };
};

namespace detail {

/** Owns a raw-inflate z_stream; inflateEnd runs on every exit path. */
class RawInflateStream
{
public:
    RawInflateStream()
    {
        if ( inflateInit2( &m_stream, RAW_DEFLATE_WINDOW_BITS ) != Z_OK ) {
            throw RapidgzipError( "inflateInit2 failed" );
        }
    }

    ~RawInflateStream()
    {
        inflateEnd( &m_stream );
    }

    RawInflateStream( const RawInflateStream& ) = delete;
    RawInflateStream& operator=( const RawInflateStream& ) = delete;

    [[nodiscard]] z_stream& get() noexcept { return m_stream; }

private:
    z_stream m_stream{};
};

}  // namespace detail

/**
 * Raw-Deflate-decode the chunk [begin, end). @p begin must be a restart
 * point (empty window). Handles gzip member transitions that fall inside
 * the chunk (trailer + next member's header + fresh Deflate stream).
 * Throws InvalidGzipStreamError if zlib rejects the data.
 */
/**
 * Derive the whole-chunk CRC32 from the per-member segment CRCs via
 * simd::crc32Combine — O(log n) per segment instead of a second hashing
 * pass, with no z_off_t length ceiling (the zlib-era re-hash fallback for
 * oversized segments is gone).
 */
[[nodiscard]] inline std::uint32_t
combineSegmentCrcs( const DecodedChunk& chunk )
{
    std::uint32_t combined = 0;
    std::size_t begin = 0;
    for ( const auto& memberEnd : chunk.memberEnds ) {
        combined = simd::crc32Combine( combined, memberEnd.segmentCrc32,
                                       memberEnd.dataEndOffset - begin );
        begin = memberEnd.dataEndOffset;
    }
    const auto trailing = chunk.data.size() - begin;
    if ( trailing > 0 ) {
        combined = simd::crc32Combine( combined, chunk.trailingCrc32, trailing );
    }
    return combined;
}

[[nodiscard]] inline DecodedChunk
decodeRawDeflateChunk( const FileReader& file, std::size_t begin, std::size_t end )
{
    telemetry::Span decodeSpan{ "pipeline", "chunk.decode" };
    end = std::min( end, file.size() );
    DecodedChunk result;
    if ( begin >= end ) {
        return result;
    }

    std::vector<std::uint8_t> input( end - begin );
    if ( file.pread( input.data(), input.size(), begin ) != input.size() ) {
        throw FileIoError( "Short read of compressed chunk" );
    }

    detail::RawInflateStream inflater;
    auto& stream = inflater.get();
    detail::ZlibInputFeeder feeder( input.data(), input.size() );

    /* One running CRC per member SEGMENT (reset at member boundaries); the
     * whole-chunk crc32 is combined from the segments afterwards, so
     * per-member footer verification costs no second hashing pass. */
    std::uint32_t segmentCrc = 0;
    std::vector<std::uint8_t> buffer( 256 * 1024 );
    while ( true ) {
        feeder.feed( stream );
        stream.next_out = buffer.data();
        stream.avail_out = static_cast<uInt>( buffer.size() );
        const auto code = inflate( &stream, Z_NO_FLUSH );
        const auto produced = buffer.size() - stream.avail_out;
        if ( produced > 0 ) {
            segmentCrc = simd::crc32( segmentCrc, buffer.data(), produced );
            result.data.insert( result.data.end(), buffer.data(), buffer.data() + produced );
        }

        if ( code == Z_STREAM_END ) {
            result.reachedStreamEnd = true;
            const auto consumed = feeder.consumed( stream );
            result.deflateEndOffset = begin + consumed;
            result.memberEnds.push_back( { result.data.size(), segmentCrc,
                                           begin + consumed } );
            segmentCrc = 0;
            /* A further gzip member may start inside this chunk. */
            const auto remaining = input.size() - consumed;
            if ( remaining > GZIP_FOOTER_SIZE + 2 ) {
                const BufferView rest( input.data() + consumed + GZIP_FOOTER_SIZE,
                                       remaining - GZIP_FOOTER_SIZE );
                if ( ( rest[0] == GZIP_MAGIC_1 ) && ( rest[1] == GZIP_MAGIC_2 ) ) {
                    /* parseGzipHeader throws on a header truncated by the
                     * chunk end; propagate — the caller's merge/serial
                     * fallback handles it, and RAII frees the stream. */
                    const auto deflateStart = parseGzipHeader( rest );
                    if ( inflateReset( &stream ) != Z_OK ) {
                        throw InvalidGzipStreamError( "inflateReset failed between members" );
                    }
                    feeder.seekTo( stream, consumed + GZIP_FOOTER_SIZE + deflateStart );
                    ++result.memberRestarts;
                    result.reachedStreamEnd = false;
                    continue;
                }
            }
            break;
        }
        if ( ( code != Z_OK ) && ( code != Z_BUF_ERROR ) ) {
            throw InvalidGzipStreamError( "Chunk at offset " + std::to_string( begin )
                                          + " failed to decode (zlib code "
                                          + std::to_string( code ) + ")" );
        }
        if ( feeder.exhausted( stream ) ) {
            break;  /* chunk exhausted; the next chunk continues the stream */
        }
        if ( ( code == Z_BUF_ERROR ) && ( stream.avail_out != 0 ) && ( stream.avail_in != 0 ) ) {
            break;  /* no forward progress possible (trailing partial marker bytes) */
        }
    }
    result.trailingCrc32 = segmentCrc;
    result.crc32 = combineSegmentCrcs( result );
    return result;
}

/**
 * One-stop chunk discovery for a gzip stream: parse the leading member
 * header, locate full-flush restart candidates, and partition the stream.
 * Shared by ParallelGzipReader and the pugz-like baseline so the measured
 * implementation and its baseline can never diverge on chunking.
 */
[[nodiscard]] inline std::vector<ChunkBoundary>
discoverChunks( const FileReader& file, std::size_t chunkSizeBytes )
{
    const auto fileSize = file.size();
    std::vector<std::uint8_t> headerBytes( std::min<std::size_t>( fileSize, 64 * KiB ) );
    if ( file.pread( headerBytes.data(), headerBytes.size(), 0 ) != headerBytes.size() ) {
        throw FileIoError( "Short read of gzip header" );
    }
    const auto firstDeflateByte = parseGzipHeader( { headerBytes.data(), headerBytes.size() } );

    const auto candidates = findFullFlushMarkers( file, firstDeflateByte, fileSize );
    return buildChunkTable( file, candidates, firstDeflateByte, fileSize, chunkSizeBytes );
}

}  // namespace rapidgzip
