#pragma once

#include <zlib.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../gzip/GzipHeader.hpp"
#include "../gzip/GzipReader.hpp"
#include "../index/BgzfIndex.hpp"
#include "../index/GzipIndex.hpp"
#include "../index/IndexBuilder.hpp"
#include "../io/SharedFileReader.hpp"
#include "ChunkFetcher.hpp"
#include "DeflateChunks.hpp"
#include "GzipChunkFetcher.hpp"

namespace rapidgzip {

/**
 * Parallel gzip decompressor over chunked streams (pigz-style full-flush
 * members, concatenated members, BGZF once its writer lands). Architecture
 * per the paper: a SharedFileReader feeds per-chunk raw-Deflate decodes on
 * a thread pool; a strategy-driven prefetcher keeps the pool busy ahead of
 * the consumer; decoded chunks land in a bounded cache serving random
 * access reads.
 *
 * Correctness is layered: chunk boundaries are validated restart points; a
 * full decompressAll() cross-checks the combined CRC32 and ISIZE against
 * the gzip footer (setVerifyChecksums(false) disables this); any failure in
 * the parallel path falls back to a serial zlib decode, which is the
 * authority.
 *
 * Thread model: one consumer thread drives this object; the parallelism
 * lives in the chunk decoding underneath.
 */
class ParallelGzipReader
{
public:
    explicit ParallelGzipReader( std::unique_ptr<FileReader> fileReader,
                                 ChunkFetcherConfiguration configuration = {} ) :
        m_file( ensureSharedFileReader( std::move( fileReader ) ) ),
        m_configuration( configuration )
    {}

    /* --- whole-stream interface ------------------------------------- */

    /**
     * Decompress the whole stream in parallel, returning the number of
     * uncompressed bytes. Output is verified (unless disabled) and then
     * discarded; use read() to obtain the bytes.
     *
     * A chunk that fails to decode had a false restart boundary: it is
     * merged away and the sweep restarted, still parallel. Only silent
     * corruption (checksum mismatch) or a completely undecodable stream
     * escalates to the serial zlib decode, which is the authority and
     * throws if the file itself is broken.
     */
    [[nodiscard]] std::size_t
    decompressAll()
    {
        if ( m_parallelResultUntrusted ) {
            return serialDecompressCount();
        }

        /* Streams WITHOUT full-flush restart points (plain `gzip` output)
         * used to degrade to one serial chunk. The two-stage pipeline
         * decodes them in parallel from guessed bit offsets instead — and,
         * as a byproduct, builds the bit-granular seek index that makes
         * every subsequent seek()/read() constant-time. The full-flush path
         * remains the fast path when restart points or an imported index
         * make block finding unnecessary. Any two-stage failure falls
         * through to the flush-point path, whose own fallback is the
         * authoritative serial zlib decode. */
        ensureChunkTable();
        if ( !m_indexed && ( m_chunks.size() <= 1 ) ) {
            try {
                return decompressAllTwoStage();
            } catch ( const RapidgzipError& ) {
                /* fall through */
            }
        }

        ensureFetcher();
        while ( true ) {
            std::size_t total = 0;
            bool lastChunkEndedStream = false;
            std::vector<std::size_t> sizes( m_fetcher->chunkCount() );
            std::size_t failedChunk = SIZE_MAX;
            /* Per-MEMBER verification state: every concatenated member's
             * CRC32 and ISIZE are checked against ITS footer, combined
             * across chunk boundaries from the chunks' member segments. */
            MemberVerifier verifier( *m_file );
            bool checksumMismatch = false;

            for ( std::size_t i = 0; i < m_fetcher->chunkCount(); ++i ) {
                ChunkFetcher::ChunkDataPtr chunk;
                try {
                    chunk = m_fetcher->get( i );
                } catch ( const RapidgzipError& ) {
                    failedChunk = i;
                    break;
                }
                sizes[i] = chunk->data.size();
                total += chunk->data.size();
                lastChunkEndedStream = chunk->reachedStreamEnd;
                if ( m_verifyChecksums && !verifier.consume( *chunk ) ) {
                    checksumMismatch = true;
                    break;
                }
            }

            if ( checksumMismatch ) {
                /* The parallel chunking produced wrong bytes (e.g. a false
                 * restart point that decoded "cleanly"): poison the chunked
                 * state so read()/seek() cannot serve the corrupt data, and
                 * let the serial decode answer. */
                m_parallelResultUntrusted = true;
                m_offsetsKnown = false;
                m_chunkTableKnown = false;
                m_indexed = false;
                m_index.reset();
                m_fetcher.reset();
                return serialDecompressCount();
            }
            if ( failedChunk != SIZE_MAX ) {
                if ( !mergeFalseBoundary( failedChunk ) ) {
                    return serialDecompressCount();
                }
                continue;
            }

            if ( !lastChunkEndedStream ) {
                throw InvalidGzipStreamError(
                    "Gzip stream ended before the final Deflate block — truncated file" );
            }

            recordChunkSizes( sizes );
            return total;
        }
    }

    /**
     * Verified streaming decompression: run the footer-verified sweep
     * first (throwing on real corruption exactly like the sink-less
     * overload), THEN stream the bytes through @p sink. The sweep's chunks
     * stay in the fetcher cache, so the streaming pass mostly re-reads
     * instead of re-decoding. When the chunked state cannot serve the
     * stream the verification sweep just proved decodable (footer mismatch
     * poisoned it, or a false restart boundary could not be merged away),
     * the serial zlib authority streams it instead — the consumer never
     * sees unverified bytes and never loses a stream the serial decoder
     * can handle.
     */
    [[nodiscard]] std::size_t
    decompressAll( const std::function<void( BufferView )>& sink )
    {
        if ( !sink ) {
            return decompressAll();
        }

        static_cast<void>( decompressAll() );  /* throws on real corruption */

        std::size_t emitted = 0;
        if ( !m_parallelResultUntrusted ) {
            try {
                seek( 0 );
                std::vector<std::uint8_t> buffer( 4 * MiB );
                while ( true ) {
                    const auto got = read( buffer.data(), buffer.size() );
                    if ( got == 0 ) {
                        break;
                    }
                    sink( { buffer.data(), got } );
                    emitted += got;
                }
                return emitted;
            } catch ( const RapidgzipError& ) {
                /* The chunked state cannot replay what the verification
                 * sweep answered serially; fall through to the authority.
                 * Bytes already emitted came from footer-verified chunks,
                 * so the serial stream below resumes AFTER them — decoding
                 * is deterministic and both paths verified the same file. */
            }
        }

        GzipReader serial( m_file->clone() );
        std::vector<std::uint8_t> buffer( 1 * MiB );
        std::size_t position = 0;
        while ( true ) {
            const auto got = serial.read( buffer.data(), buffer.size() );
            if ( got == 0 ) {
                break;
            }
            if ( position + got > emitted ) {
                const auto skip = position < emitted ? emitted - position : 0;
                sink( { buffer.data() + skip, got - skip } );
            }
            position += got;
        }
        return std::max( position, emitted );
    }

    /* --- random access interface ------------------------------------ */

    /** Total uncompressed size (triggers chunk size discovery if unknown). */
    [[nodiscard]] std::size_t
    size()
    {
        ensureOffsetsKnown();
        return m_uncompressedOffsets.back();
    }

    void
    seek( std::size_t uncompressedOffset )
    {
        m_position = uncompressedOffset;
    }

    [[nodiscard]] std::size_t
    tell() const noexcept
    {
        return m_position;
    }

    /** Read up to @p size bytes at the current position. Returns bytes read. */
    [[nodiscard]] std::size_t
    read( std::uint8_t* buffer, std::size_t size )
    {
        ensureOffsetsKnown();
        const auto totalSize = m_uncompressedOffsets.back();

        std::size_t produced = 0;
        while ( ( produced < size ) && ( m_position < totalSize ) ) {
            const auto next = std::upper_bound( m_uncompressedOffsets.begin(),
                                                m_uncompressedOffsets.end(), m_position );
            const auto chunkIndex = static_cast<std::size_t>(
                std::distance( m_uncompressedOffsets.begin(), next ) ) - 1U;
            const auto chunk = m_fetcher->get( chunkIndex );
            const auto claimedSpan = m_uncompressedOffsets[chunkIndex + 1]
                                     - m_uncompressedOffsets[chunkIndex];
            if ( chunk->data.size() != claimedSpan ) {
                /* Only possible when an imported index misstates a chunk's
                 * uncompressed span — never with discovered offsets. Both
                 * directions are corruption: overstated spans would read
                 * out of bounds, understated ones would return bytes from
                 * the wrong stream position. */
                throw RapidgzipError( "Chunk size disagrees with the gzip index — "
                                      "stale or corrupt index" );
            }
            const auto offsetInChunk = m_position - m_uncompressedOffsets[chunkIndex];
            const auto toCopy = std::min( size - produced, chunk->data.size() - offsetInChunk );
            std::memcpy( buffer + produced, chunk->data.data() + offsetInChunk, toCopy );
            produced += toCopy;
            m_position += toCopy;
        }
        return produced;
    }

    /** Zero-copy variant of read(): lends refcounted spans straight out of
     * the decoded chunks instead of copying into a caller buffer. Each span
     * keeps its whole chunk alive, so the window stays valid past cache
     * eviction for as long as the caller holds the span. Returns bytes
     * appended (short at EOF). */
    [[nodiscard]] std::size_t
    readSpans( std::size_t size, std::vector<OwnedSpan>& spans )
    {
        ensureOffsetsKnown();
        const auto totalSize = m_uncompressedOffsets.back();

        std::size_t produced = 0;
        while ( ( produced < size ) && ( m_position < totalSize ) ) {
            const auto next = std::upper_bound( m_uncompressedOffsets.begin(),
                                                m_uncompressedOffsets.end(), m_position );
            const auto chunkIndex = static_cast<std::size_t>(
                std::distance( m_uncompressedOffsets.begin(), next ) ) - 1U;
            const auto chunk = m_fetcher->get( chunkIndex );
            const auto claimedSpan = m_uncompressedOffsets[chunkIndex + 1]
                                     - m_uncompressedOffsets[chunkIndex];
            if ( chunk->data.size() != claimedSpan ) {
                throw RapidgzipError( "Chunk size disagrees with the gzip index — "
                                      "stale or corrupt index" );
            }
            const auto offsetInChunk = m_position - m_uncompressedOffsets[chunkIndex];
            const auto take = std::min( size - produced, chunk->data.size() - offsetInChunk );
            spans.push_back( lendChunkSpan( chunk, offsetInChunk, take ) );
            produced += take;
            m_position += take;
        }
        return produced;
    }

    /* --- index interface --------------------------------------------- */

    /**
     * The seek index for this stream. When none exists yet it is built
     * first: from BGZF BC fields or full-flush chunk boundaries when the
     * stream has restart points (byte-aligned checkpoints, no windows), or
     * by the two-stage sweep for arbitrary gzip (bit-granular checkpoints
     * with compressed windows). Serialize with index::serializeIndex() /
     * index::exportGztoolIndex().
     */
    [[nodiscard]] GzipIndex
    exportIndex()
    {
        ensureOffsetsKnown();
        if ( m_indexed ) {
            return *m_index;
        }
        /* Full-flush chunking: every chunk start is a byte-aligned restart
         * point with an empty window. */
        GzipIndex index;
        index.compressedSizeBytes = m_file->size();
        index.uncompressedSizeBytes = m_uncompressedOffsets.back();
        index.checkpoints.reserve( m_chunks.size() );
        for ( std::size_t i = 0; i < m_chunks.size(); ++i ) {
            index.checkpoints.push_back( { m_chunks[i].compressedBegin * 8,
                                           m_uncompressedOffsets[i] } );
        }
        return index;
    }

    /** Adopt checkpoints, windows, and offsets from @p index, skipping
     * discovery: seek()/read() decode from the nearest checkpoint. */
    void
    importIndex( const GzipIndex& index )
    {
        if ( index.empty() ) {
            throw RapidgzipError( "Cannot import an empty gzip index" );
        }
        /* gztool-format imports do not record the compressed size (0 =
         * unknown); the per-chunk decode still catches a wrong file. */
        if ( ( index.compressedSizeBytes != 0 )
             && ( index.compressedSizeBytes != m_file->size() ) ) {
            throw RapidgzipError( "Gzip index does not match this file's size" );
        }
        if ( index.checkpoints.front().uncompressedOffset != 0 ) {
            throw RapidgzipError( "Gzip index must start at uncompressed offset 0" );
        }
        const auto fileBits = m_file->size() * 8;
        for ( std::size_t i = 0; i < index.checkpoints.size(); ++i ) {
            const auto& checkpoint = index.checkpoints[i];
            if ( ( checkpoint.compressedOffsetBits >= fileBits )
                 || ( ( i > 0 )
                      && ( ( checkpoint.compressedOffsetBits
                             <= index.checkpoints[i - 1].compressedOffsetBits )
                           || ( checkpoint.uncompressedOffset
                                < index.checkpoints[i - 1].uncompressedOffset ) ) )
                 || ( checkpoint.uncompressedOffset > index.uncompressedSizeBytes ) ) {
                throw RapidgzipError( "Gzip index checkpoints are inconsistent" );
            }
            /* Mid-stream checkpoints need their 32 KiB history. Byte-aligned
             * ones may be restart points (empty window); a bit-granular one
             * can never be, so a missing window there is corruption. */
            if ( ( checkpoint.compressedOffsetBits % 8 != 0 )
                 && ( checkpoint.uncompressedOffset > 0 )
                 && !index.windows.contains( checkpoint.compressedOffsetBits ) ) {
                throw RapidgzipError( "Gzip index is missing the window for a "
                                      "bit-granular checkpoint" );
            }
        }

        auto adopted = std::make_shared<GzipIndex>( index );
        adopted->compressedSizeBytes = m_file->size();
        adoptIndex( std::move( adopted ) );
    }

    /* --- configuration / introspection -------------------------------- */

    void
    setVerifyChecksums( bool verify ) noexcept
    {
        m_verifyChecksums = verify;
    }

    [[nodiscard]] const FetcherStatistics&
    fetcherStatistics() const noexcept
    {
        static const FetcherStatistics empty{};
        return m_fetcher ? m_fetcher->statistics() : empty;
    }

    [[nodiscard]] std::size_t
    chunkCount()
    {
        ensureChunkTable();
        return m_indexed ? m_index->checkpoints.size() : m_chunks.size();
    }

    /** True when seek()/read() dispatch from index checkpoints (imported,
     * BGZF-scanned, or harvested by the two-stage sweep). Triggers format
     * detection, which for BGZF adopts the BC-field index. */
    [[nodiscard]] bool
    usesIndex()
    {
        ensureChunkTable();
        return m_indexed;
    }

private:
    /**
     * Whole-stream decompression via the two-stage pipeline: per member,
     * parallel chunk decodes from guessed bit offsets (GzipChunkFetcher),
     * sequential marker resolution with window propagation, and MANDATORY
     * footer verification — with guessed offsets the CRC32 check is the
     * correctness authority, so setVerifyChecksums() does not disable it
     * here. Throws on any failure; the caller falls back.
     */
    [[nodiscard]] std::size_t
    decompressAllTwoStage()
    {
        const auto fileSize = m_file->size();
        index::IndexBuilder builder( m_configuration.checkpointSpacingBytes );
        std::size_t memberStart = 0;
        std::size_t total = 0;
        while ( true ) {
            std::vector<std::uint8_t> headerBytes(
                std::min<std::size_t>( fileSize - memberStart, 64 * KiB ) );
            if ( m_file->pread( headerBytes.data(), headerBytes.size(), memberStart )
                 != headerBytes.size() ) {
                throw FileIoError( "Short read of gzip header" );
            }
            const auto deflateStart = parseGzipHeader( { headerBytes.data(), headerBytes.size() } );

            const auto member = GzipChunkFetcher::decompressMember(
                *m_file, memberStart + deflateStart, m_configuration.parallelism,
                m_configuration.chunkSizeBytes, nullptr, &builder );

            std::uint8_t footerBytes[GZIP_FOOTER_SIZE];
            if ( ( member.footerStartByte + GZIP_FOOTER_SIZE > fileSize )
                 || ( m_file->pread( footerBytes, GZIP_FOOTER_SIZE, member.footerStartByte )
                      != GZIP_FOOTER_SIZE ) ) {
                throw InvalidGzipStreamError( "Cannot read gzip footer" );
            }
            const auto footer = parseGzipFooter( { footerBytes, GZIP_FOOTER_SIZE },
                                                 GZIP_FOOTER_SIZE );
            if ( ( member.crc32 != footer.crc32 )
                 || ( static_cast<std::uint32_t>( member.uncompressedSize )
                      != footer.uncompressedSizeModulo32 ) ) {
                throw ChecksumError( "Two-stage parallel decode does not match the gzip footer" );
            }
            total += member.uncompressedSize;
            builder.finishMember( member.uncompressedSize );

            /* Another member may follow; anything else is trailing padding,
             * ignored like `gzip -d`. */
            const auto next = member.footerStartByte + GZIP_FOOTER_SIZE;
            std::uint8_t magic[2];
            if ( ( next + 2 <= fileSize ) && ( m_file->pread( magic, 2, next ) == 2 )
                 && ( magic[0] == GZIP_MAGIC_1 ) && ( magic[1] == GZIP_MAGIC_2 ) ) {
                memberStart = next;
                continue;
            }
            /* Every member verified against its footer: the harvested index
             * is trustworthy. Adopt it so seek()/read() resume from
             * checkpoints instead of re-running (or serializing) the sweep. */
            adoptIndex( std::make_shared<const GzipIndex>( builder.build( fileSize ) ) );
            return total;
        }
    }

    /** Switch to index-driven chunking: offsets come from the checkpoints,
     * chunk decodes from decodeChunkFromCheckpoint with seeded windows. */
    void
    adoptIndex( std::shared_ptr<const GzipIndex> index )
    {
        m_index = std::move( index );
        m_indexed = true;
        m_chunks.clear();
        m_chunkTableKnown = true;
        m_uncompressedOffsets.clear();
        m_uncompressedOffsets.reserve( m_index->checkpoints.size() + 1 );
        for ( const auto& checkpoint : m_index->checkpoints ) {
            m_uncompressedOffsets.push_back( checkpoint.uncompressedOffset );
        }
        m_uncompressedOffsets.push_back( m_index->uncompressedSizeBytes );
        m_offsetsKnown = true;
        /* A trustworthy index supersedes whatever chunking failed before. */
        m_parallelResultUntrusted = false;
        m_fetcher.reset();  /* rebuild lazily on the indexed decoder */
    }

    void
    ensureChunkTable()
    {
        if ( m_chunkTableKnown ) {
            return;
        }
        /* BGZF is an index special case: the BC extra fields describe every
         * block, so the full random-access index is a header scan away — no
         * marker search, no flush markers, no decoding. */
        if ( auto bgzfIndex = index::tryBuildBgzfIndex( *m_file,
                                                        m_configuration.chunkSizeBytes ) ) {
            adoptIndex( std::make_shared<const GzipIndex>( std::move( *bgzfIndex ) ) );
            return;
        }
        m_chunks = discoverChunks( *m_file, m_configuration.chunkSizeBytes );
        m_chunkTableKnown = true;
    }

    void
    ensureFetcher()
    {
        ensureChunkTable();
        if ( m_fetcher ) {
            return;
        }
        auto file = std::shared_ptr<const FileReader>( m_file->clone().release() );
        if ( m_indexed ) {
            /* The decoder callback runs on pool workers: it captures the
             * immutable index by shared_ptr and only uses const accessors. */
            auto decoder = [index = m_index] ( const FileReader& reader, std::size_t i ) {
                const auto& checkpoints = index->checkpoints;
                const auto startBits = checkpoints[i].compressedOffsetBits;
                const auto untilBits = i + 1 < checkpoints.size()
                                       ? checkpoints[i + 1].compressedOffsetBits
                                       : std::numeric_limits<std::size_t>::max();
                const auto window = index->windows.get( startBits );
                return GzipChunkFetcher::decodeChunkFromCheckpoint(
                    reader, startBits, untilBits, { window.data(), window.size() } );
            };
            m_fetcher = std::make_unique<ChunkFetcher>(
                std::move( file ), m_index->checkpoints.size(), std::move( decoder ),
                m_configuration );
        } else {
            m_fetcher = std::make_unique<ChunkFetcher>( std::move( file ), m_chunks,
                                                        m_configuration );
        }
    }

    /**
     * Discover every chunk's uncompressed size with one parallel sweep.
     * Decodes go through the fetcher's cache (without touching the prefetch
     * statistics), so the tail of the sweep stays resident for subsequent
     * reads; batching bounds memory to ~2 cache capacities. A chunk that
     * fails to decode had a false boundary: merge it away and retry —
     * into its predecessor (bad start) or, when chunk 0 fails, into its
     * successor (boundary truncating a member header near the chunk end).
     */
    void
    ensureOffsetsKnown()
    {
        if ( m_parallelResultUntrusted ) {
            throw ChecksumError( "Parallel chunking failed footer verification for this "
                                 "stream; use the serial GzipReader for it" );
        }
        if ( m_offsetsKnown ) {
            ensureFetcher();
            return;
        }
        ensureChunkTable();
        /* A stream without restart points would degrade to ONE serial chunk
         * for every read. Run the two-stage sweep once instead: it verifies
         * against the footer and leaves behind the bit-granular index, after
         * which random access decodes single inter-checkpoint spans in
         * parallel. Failure (exotic streams the sweep cannot chunk) falls
         * back to the serial single-chunk path below. */
        if ( !m_indexed && ( m_chunks.size() <= 1 ) ) {
            try {
                (void)decompressAllTwoStage();  /* adopts the index on success */
                ensureFetcher();
                return;
            } catch ( const RapidgzipError& ) {
                /* fall through to the single-chunk path */
            }
        }
        ensureFetcher();

        while ( true ) {
            std::vector<std::size_t> sizes( m_chunks.size() );
            std::size_t failedChunk = SIZE_MAX;
            bool lastChunkEndedStream = false;
            const auto batchSize = std::max<std::size_t>( 2 * m_configuration.parallelism, 8 );
            for ( std::size_t batch = 0; batch < m_chunks.size() && failedChunk == SIZE_MAX;
                  batch += batchSize ) {
                const auto batchEnd = std::min( batch + batchSize, m_chunks.size() );
                std::vector<std::shared_future<ChunkFetcher::ChunkDataPtr> > futures;
                for ( std::size_t i = batch; i < batchEnd; ++i ) {
                    futures.push_back( m_fetcher->fetchQuietly( i ) );
                }
                for ( std::size_t i = batch; i < batchEnd; ++i ) {
                    try {
                        const auto chunk = futures[i - batch].get();
                        sizes[i] = chunk->data.size();
                        lastChunkEndedStream = chunk->reachedStreamEnd;
                    } catch ( const RapidgzipError& ) {
                        failedChunk = i;
                        break;
                    }
                }
            }

            if ( failedChunk == SIZE_MAX ) {
                if ( !lastChunkEndedStream ) {
                    throw InvalidGzipStreamError(
                        "Gzip stream ended before the final Deflate block — truncated file" );
                }
                recordChunkSizes( sizes );
                return;
            }
            if ( !mergeFalseBoundary( failedChunk ) ) {
                throw InvalidGzipStreamError( "The gzip stream is undecodable" );
            }
        }
    }

    /**
     * Remove the chunk boundary exposed as false by @p failedChunk failing
     * to decode: merge into the predecessor (bad chunk start) or, for chunk
     * 0, into the successor (boundary truncating a member header near the
     * chunk end). Rebuilds the fetcher on the new table. Returns false when
     * a single full-stream chunk remains — nothing left to merge.
     */
    [[nodiscard]] bool
    mergeFalseBoundary( std::size_t failedChunk )
    {
        if ( m_chunks.size() <= 1 ) {
            return false;
        }
        const auto mergeInto = failedChunk == 0 ? std::size_t( 0 ) : failedChunk - 1;
        const auto mergeFrom = failedChunk == 0 ? std::size_t( 1 ) : failedChunk;
        m_chunks[mergeInto].compressedEnd = m_chunks[mergeFrom].compressedEnd;
        m_chunks.erase( m_chunks.begin() + static_cast<std::ptrdiff_t>( mergeFrom ) );
        m_offsetsKnown = false;
        m_fetcher = std::make_unique<ChunkFetcher>(
            std::shared_ptr<const FileReader>( m_file->clone().release() ),
            m_chunks, m_configuration );
        return true;
    }

    void
    recordChunkSizes( const std::vector<std::size_t>& sizes )
    {
        m_uncompressedOffsets.assign( 1, 0 );
        m_uncompressedOffsets.reserve( sizes.size() + 1 );
        for ( const auto size : sizes ) {
            m_uncompressedOffsets.push_back( m_uncompressedOffsets.back() + size );
        }
        m_offsetsKnown = true;
    }

    /**
     * Walks the chunks' member segments in stream order and checks every
     * member — including each member of a concatenated stream — against ITS
     * OWN footer: CRC32 (simd::crc32Combine'd across the chunks a member
     * spans; the combine has no z_off_t ceiling, so CRC verification never
     * degrades to size-only) and ISIZE. consume() returns false on any
     * mismatch or unreadable footer; the caller falls back to the
     * authoritative serial decode.
     */
    class MemberVerifier
    {
    public:
        explicit MemberVerifier( const FileReader& file ) noexcept :
            m_file( file )
        {}

        [[nodiscard]] bool
        consume( const DecodedChunk& chunk )
        {
            std::size_t segmentBegin = 0;
            for ( const auto& memberEnd : chunk.memberEnds ) {
                append( memberEnd.segmentCrc32, memberEnd.dataEndOffset - segmentBegin );
                if ( !verifyFooter( memberEnd.footerStartByte ) ) {
                    return false;
                }
                m_memberCrc = 0;
                m_memberSize = 0;
                segmentBegin = memberEnd.dataEndOffset;
            }
            append( chunk.trailingCrc32, chunk.data.size() - segmentBegin );
            return true;
        }

    private:
        void
        append( std::uint32_t segmentCrc, std::size_t length )
        {
            if ( length == 0 ) {
                return;
            }
            m_memberCrc = simd::crc32Combine( m_memberCrc, segmentCrc, length );
            m_memberSize += length;
        }

        [[nodiscard]] bool
        verifyFooter( std::size_t footerOffset ) const
        {
            /* The footer sits right after the member's final Deflate byte —
             * NOT at the end of the file, which may carry padding or
             * further members. */
            std::uint8_t footerBytes[GZIP_FOOTER_SIZE];
            if ( ( footerOffset + GZIP_FOOTER_SIZE > m_file.size() )
                 || ( m_file.pread( footerBytes, GZIP_FOOTER_SIZE, footerOffset )
                      != GZIP_FOOTER_SIZE ) ) {
                return false;
            }
            const auto footer = parseGzipFooter( { footerBytes, GZIP_FOOTER_SIZE },
                                                 GZIP_FOOTER_SIZE );
            return ( m_memberCrc == footer.crc32 )
                   && ( static_cast<std::uint32_t>( m_memberSize )
                        == footer.uncompressedSizeModulo32 );
        }

        const FileReader& m_file;
        std::uint32_t m_memberCrc{ 0 };
        std::size_t m_memberSize{ 0 };
    };

    [[nodiscard]] std::size_t
    serialDecompressCount()
    {
        GzipReader reader( m_file->clone() );
        return reader.decompressAll();
    }

    std::unique_ptr<SharedFileReader> m_file;
    ChunkFetcherConfiguration m_configuration;

    std::vector<ChunkBoundary> m_chunks;             /**< full-flush mode only */
    std::vector<std::size_t> m_uncompressedOffsets;  /**< size chunks+1 once known */
    bool m_chunkTableKnown{ false };
    bool m_offsetsKnown{ false };

    /** Set when chunking is index-driven (imported, BGZF-scanned, or
     * harvested by the two-stage sweep); m_index then owns the chunk
     * geometry and the windows. Shared with the fetcher's worker threads —
     * immutable once adopted. */
    bool m_indexed{ false };
    std::shared_ptr<const GzipIndex> m_index;

    std::unique_ptr<ChunkFetcher> m_fetcher;
    std::size_t m_position{ 0 };
    bool m_verifyChecksums{ true };
    /** Set when the parallel result failed footer verification: the chunked
     * state is poisoned and only the serial path may answer. */
    bool m_parallelResultUntrusted{ false };
};

}  // namespace rapidgzip
