#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../io/FileReader.hpp"
#include "ChunkFetcher.hpp"
#include "DeflateChunks.hpp"

namespace rapidgzip {

/**
 * A compressed unit that decodes INDEPENDENTLY of everything around it:
 * a zstd frame, an lz4 independent block, a bzip2 block, a BGZF member.
 * Offsets are bit-granular because bzip2 blocks start at arbitrary bit
 * positions; byte-aligned formats use multiples of 8.
 */
struct CompressedFrame
{
    std::size_t compressedBeginBits{ 0 };
    std::size_t compressedEndBits{ 0 };
    /** Uncompressed size when the container records it (zstd seek table /
     * frame headers); 0 = unknown until decoded. */
    std::size_t uncompressedSize{ 0 };
};

/**
 * Format-agnostic chunked parallel decompression over a table of
 * independent frames — the piece that makes ChunkFetcher's cache/prefetch
 * machinery serve EVERY backend, not just gzip. The gzip-specific
 * ParallelGzipReader keeps its own pipeline (block finding, marker decode,
 * window stitching: gzip frames are NOT independent); backends whose
 * container gives real independence (zstd seekable frames, lz4 independent
 * blocks, bzip2 blocks) hand this class their frame table plus a per-frame
 * decoder, and get the same strategy-driven prefetching, bounded cache,
 * and O(1)-per-chunk random access the paper builds for gzip.
 *
 * Frames are grouped into chunks of up to the configured chunk size (a
 * single larger frame becomes its own chunk) so per-task overhead stays
 * amortized for small-frame formats (a bzip2 -1 block is ~100 KiB
 * compressed). Thread model matches ChunkFetcher: one consumer thread;
 * decoding parallelizes underneath.
 */
class FrameParallelReader
{
public:
    /** Decode ONE frame, appending its uncompressed bytes to @p output.
     * @p frameIndex is the frame's position in the table, which is how
     * backends look up per-frame metadata beyond the generic offsets
     * (lz4 uncompressed-block flags, bzip2 block CRCs). Runs concurrently
     * on pool workers — must be const-thread-safe. */
    using FrameDecoder =
        std::function<void( const FileReader&, const CompressedFrame&, std::size_t frameIndex,
                            std::vector<std::uint8_t>& output )>;

    FrameParallelReader( std::shared_ptr<const FileReader> file,
                         std::vector<CompressedFrame> frames,
                         FrameDecoder frameDecoder,
                         const ChunkFetcherConfiguration& configuration ) :
        m_frames( std::make_shared<const std::vector<CompressedFrame> >( std::move( frames ) ) ),
        m_chunkToFrames( groupFramesIntoChunks( *m_frames, configuration.chunkSizeBytes ) ),
        m_configuration( configuration )
    {
        auto decoder = [frames = m_frames, chunks = m_chunkToFrames,
                        decodeFrame = std::move( frameDecoder )]
                       ( const FileReader& reader, std::size_t chunkIndex ) -> DecodedChunk {
            DecodedChunk chunk;
            const auto [firstFrame, frameEnd] = chunks[chunkIndex];
            {
                telemetry::Span decodeSpan{ "pipeline", "frame.decode" };
                for ( auto i = firstFrame; i < frameEnd; ++i ) {
                    decodeFrame( reader, ( *frames )[i], i, chunk.data );
                }
                RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_frames_decoded_total",
                                           "Compressed frames decoded by frame-parallel readers.",
                                           frameEnd - firstFrame );
            }
            chunk.reachedStreamEnd = frameEnd == frames->size();
            return chunk;
        };
        m_fetcher = std::make_unique<ChunkFetcher>(
            std::move( file ), m_chunkToFrames.size(), std::move( decoder ), configuration );
    }

    [[nodiscard]] std::size_t
    frameCount() const noexcept
    {
        return m_frames->size();
    }

    [[nodiscard]] const std::vector<CompressedFrame>&
    frames() const noexcept
    {
        return *m_frames;
    }

    /**
     * Decompress everything in order, streaming each chunk through @p sink.
     * Returns the total uncompressed size. The traversal populates the
     * chunk offset table as a byproduct, so later readAt() calls are
     * chunk-granular random access.
     */
    [[nodiscard]] std::size_t
    decompress( const std::function<void( BufferView )>& sink )
    {
        std::vector<std::size_t> sizes( m_chunkToFrames.size() );
        std::size_t total = 0;
        for ( std::size_t i = 0; i < m_chunkToFrames.size(); ++i ) {
            const auto chunk = m_fetcher->get( i );
            sizes[i] = chunk->data.size();
            total += chunk->data.size();
            if ( sink ) {
                sink( { chunk->data.data(), chunk->data.size() } );
            }
        }
        recordChunkSizes( sizes );
        return total;
    }

    /** Total uncompressed size; uses recorded frame sizes when the whole
     * table has them, otherwise decodes once (cached) to measure. */
    [[nodiscard]] std::size_t
    size()
    {
        ensureOffsetsKnown();
        return m_uncompressedOffsets.back();
    }

    /** Random access read of up to @p size bytes at @p offset; decodes only
     * the chunks the range touches. Returns bytes read (short at EOF). */
    [[nodiscard]] std::size_t
    readAt( std::size_t offset, std::uint8_t* buffer, std::size_t size )
    {
        ensureOffsetsKnown();
        const auto totalSize = m_uncompressedOffsets.back();
        std::size_t produced = 0;
        while ( ( produced < size ) && ( offset < totalSize ) ) {
            const auto next = std::upper_bound( m_uncompressedOffsets.begin(),
                                                m_uncompressedOffsets.end(), offset );
            const auto chunkIndex = static_cast<std::size_t>(
                std::distance( m_uncompressedOffsets.begin(), next ) ) - 1U;
            const auto chunk = m_fetcher->get( chunkIndex );
            const auto offsetInChunk = offset - m_uncompressedOffsets[chunkIndex];
            if ( offsetInChunk >= chunk->data.size() ) {
                throw RapidgzipError( "Chunk size disagrees with the frame table — "
                                      "corrupt stream or stale offsets" );
            }
            const auto toCopy = std::min( size - produced, chunk->data.size() - offsetInChunk );
            std::memcpy( buffer + produced, chunk->data.data() + offsetInChunk, toCopy );
            produced += toCopy;
            offset += toCopy;
        }
        return produced;
    }

    /** Zero-copy variant of readAt: lends refcounted spans straight out of
     * the decoded chunks instead of copying. Each span holds a reference to
     * its whole chunk, so the bytes outlive any cache eviction for as long
     * as the caller keeps the span. Returns bytes appended (short at EOF). */
    [[nodiscard]] std::size_t
    readSpansAt( std::size_t offset, std::size_t size, std::vector<OwnedSpan>& spans )
    {
        ensureOffsetsKnown();
        const auto totalSize = m_uncompressedOffsets.back();
        std::size_t produced = 0;
        while ( ( produced < size ) && ( offset < totalSize ) ) {
            const auto next = std::upper_bound( m_uncompressedOffsets.begin(),
                                                m_uncompressedOffsets.end(), offset );
            const auto chunkIndex = static_cast<std::size_t>(
                std::distance( m_uncompressedOffsets.begin(), next ) ) - 1U;
            const auto chunk = m_fetcher->get( chunkIndex );
            const auto offsetInChunk = offset - m_uncompressedOffsets[chunkIndex];
            if ( offsetInChunk >= chunk->data.size() ) {
                throw RapidgzipError( "Chunk size disagrees with the frame table — "
                                      "corrupt stream or stale offsets" );
            }
            const auto take = std::min( size - produced, chunk->data.size() - offsetInChunk );
            spans.push_back( lendChunkSpan( chunk, offsetInChunk, take ) );
            produced += take;
            offset += take;
        }
        return produced;
    }

    /** Chunk-granular seek points: (compressed bit offset, uncompressed
     * offset) of every chunk start. */
    [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t> >
    chunkSeekPoints()
    {
        ensureOffsetsKnown();
        std::vector<std::pair<std::size_t, std::size_t> > result;
        result.reserve( m_chunkToFrames.size() );
        for ( std::size_t i = 0; i < m_chunkToFrames.size(); ++i ) {
            const auto firstFrame = m_chunkToFrames[i].first;
            result.emplace_back( ( *m_frames )[firstFrame].compressedBeginBits,
                                 m_uncompressedOffsets[i] );
        }
        return result;
    }

    [[nodiscard]] const FetcherStatistics&
    statistics() const noexcept
    {
        return m_fetcher->statistics();
    }

    /**
     * Adopt chunk offsets from a previously exported index (the sidecar
     * fast path): @p seekPoints must be exactly what chunkSeekPoints()
     * returned when the index was built — one (compressed bit offset,
     * uncompressed offset) per chunk. Every compressed offset is validated
     * against the freshly scanned frame table (the geometry scan is pure
     * header arithmetic and always runs; what adoption skips is the
     * MEASURING decode sweep unsized formats pay in ensureOffsetsKnown).
     * Returns false — leaving the reader untouched — when the geometry
     * disagrees: stale sidecar, different chunking configuration.
     */
    [[nodiscard]] bool
    adoptChunkOffsets( const std::vector<std::pair<std::size_t, std::size_t> >& seekPoints,
                       std::size_t uncompressedSize )
    {
        if ( m_offsetsKnown ) {
            return true;  /* nothing left to save */
        }
        if ( seekPoints.size() != m_chunkToFrames.size() ) {
            return false;
        }
        for ( std::size_t i = 0; i < seekPoints.size(); ++i ) {
            const auto firstFrame = m_chunkToFrames[i].first;
            if ( seekPoints[i].first != ( *m_frames )[firstFrame].compressedBeginBits ) {
                return false;
            }
            if ( ( i > 0 ) && ( seekPoints[i].second < seekPoints[i - 1].second ) ) {
                return false;
            }
        }
        if ( !seekPoints.empty() && ( uncompressedSize < seekPoints.back().second ) ) {
            return false;
        }
        std::vector<std::size_t> sizes( seekPoints.size() );
        for ( std::size_t i = 0; i < seekPoints.size(); ++i ) {
            const auto next = i + 1 < seekPoints.size() ? seekPoints[i + 1].second
                                                        : uncompressedSize;
            sizes[i] = next - seekPoints[i].second;
        }
        recordChunkSizes( sizes );
        return true;
    }

private:
    /** [first, end) frame range per chunk. Greedy: frames are admitted
     * while the chunk stays within chunkSizeBytes, so chunks span at MOST
     * that much compressed input — except a single frame larger than the
     * budget, which becomes its own chunk. */
    [[nodiscard]] static std::vector<std::pair<std::size_t, std::size_t> >
    groupFramesIntoChunks( const std::vector<CompressedFrame>& frames,
                           std::size_t chunkSizeBytes )
    {
        std::vector<std::pair<std::size_t, std::size_t> > result;
        const auto chunkBits = std::max<std::size_t>( chunkSizeBytes, 64 * KiB ) * 8;
        std::size_t begin = 0;
        while ( begin < frames.size() ) {
            auto end = begin;
            const auto chunkStartBits = frames[begin].compressedBeginBits;
            while ( ( end < frames.size() )
                    && ( ( end == begin )
                         || ( frames[end].compressedEndBits - chunkStartBits <= chunkBits ) ) ) {
                ++end;
            }
            result.emplace_back( begin, end );
            begin = end;
        }
        return result;
    }

    void
    ensureOffsetsKnown()
    {
        if ( m_offsetsKnown ) {
            return;
        }
        /* A fully-sized frame table (zstd seek table / frame headers) gives
         * the offsets for free — no decoding for pure random access. */
        const bool allSized = !m_frames->empty()
                              && std::all_of( m_frames->begin(), m_frames->end(),
                                              [] ( const CompressedFrame& frame ) {
                                                  return frame.uncompressedSize > 0;
                                              } );
        if ( allSized ) {
            std::vector<std::size_t> sizes( m_chunkToFrames.size(), 0 );
            for ( std::size_t i = 0; i < m_chunkToFrames.size(); ++i ) {
                for ( auto f = m_chunkToFrames[i].first; f < m_chunkToFrames[i].second; ++f ) {
                    sizes[i] += ( *m_frames )[f].uncompressedSize;
                }
            }
            recordChunkSizes( sizes );
            return;
        }
        /* Unknown sizes (lz4 blocks, bzip2 blocks): one measuring sweep.
         * Decodes go through the fetcher's cache, so the work feeds any
         * subsequent reads instead of being thrown away. */
        (void)decompress( {} );
    }

    void
    recordChunkSizes( const std::vector<std::size_t>& sizes )
    {
        m_uncompressedOffsets.assign( 1, 0 );
        m_uncompressedOffsets.reserve( sizes.size() + 1 );
        for ( const auto size : sizes ) {
            m_uncompressedOffsets.push_back( m_uncompressedOffsets.back() + size );
        }
        m_offsetsKnown = true;
    }

    std::shared_ptr<const std::vector<CompressedFrame> > m_frames;
    std::vector<std::pair<std::size_t, std::size_t> > m_chunkToFrames;
    ChunkFetcherConfiguration m_configuration;
    std::unique_ptr<ChunkFetcher> m_fetcher;

    std::vector<std::size_t> m_uncompressedOffsets;  /**< chunks + 1 once known */
    bool m_offsetsKnown{ false };
};

}  // namespace rapidgzip
