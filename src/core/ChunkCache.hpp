#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "DeflateChunks.hpp"

namespace rapidgzip {

/**
 * Identifies one decoded chunk across EVERY reader in the process. The
 * token folds together the archive identity (path + size + mtime hash, see
 * serve/ArchiveRegistry.hpp) and the reader's chunk-table geometry
 * (ChunkFetcher mixes in chunk count, chunk size, and chunking mode), so a
 * re-chunked reader — after a false-boundary merge or an index adoption —
 * can never hit entries from the stale table, and two readers share entries
 * exactly when their decodes are byte-identical.
 */
struct ChunkCacheKey
{
    std::uint64_t token{ 0 };
    std::size_t chunkIndex{ 0 };

    [[nodiscard]] bool
    operator==( const ChunkCacheKey& other ) const noexcept
    {
        return ( token == other.token ) && ( chunkIndex == other.chunkIndex );
    }

    [[nodiscard]] bool
    operator<( const ChunkCacheKey& other ) const noexcept
    {
        return token != other.token ? token < other.token : chunkIndex < other.chunkIndex;
    }
};

/** splitmix64 finalizer — the standard cheap 64-bit bit mixer. */
[[nodiscard]] constexpr std::uint64_t
mixHash( std::uint64_t value ) noexcept
{
    value += 0x9E3779B97F4A7C15ULL;
    value = ( value ^ ( value >> 30U ) ) * 0xBF58476D1CE4E5B9ULL;
    value = ( value ^ ( value >> 27U ) ) * 0x94D049BB133111EBULL;
    return value ^ ( value >> 31U );
}

struct ChunkCacheStatistics
{
    std::size_t hits{ 0 };
    std::size_t misses{ 0 };
    std::size_t insertions{ 0 };
    std::size_t evictions{ 0 };
    /** Inserts skipped because one chunk alone exceeds the byte budget. */
    std::size_t oversizedRejections{ 0 };
    std::size_t currentBytes{ 0 };
    std::size_t capacityBytes{ 0 };

    [[nodiscard]] double
    hitRate() const noexcept
    {
        const auto total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>( hits ) / static_cast<double>( total );
    }
};

/**
 * A borrowed view into decoded bytes whose lifetime is pinned by @p owner —
 * the vocabulary type of the zero-copy response path. Spans lent out of
 * cached chunks stay valid across LRU eviction: eviction only drops the
 * CACHE's shared_ptr to the DecodedChunk, while every outstanding span
 * holds its own owner reference, so the bytes are freed exactly when the
 * last in-flight consumer (e.g. a socket write) releases them.
 */
struct OwnedSpan
{
    std::shared_ptr<const void> owner;
    const std::uint8_t* data{ nullptr };
    std::size_t size{ 0 };
    /** True when @p data points into memory owned elsewhere (a cached
     * chunk) rather than a private copy made for this span — the
     * zero-copy/range-copy accounting bit. */
    bool borrowed{ false };
};

/** Lend [offsetInChunk, offsetInChunk + size) of @p chunk as a borrowed
 * span. The span shares ownership of the whole chunk (aliasing-style), so
 * the window stays valid for the span's lifetime regardless of cache
 * eviction. */
[[nodiscard]] inline OwnedSpan
lendChunkSpan( std::shared_ptr<const DecodedChunk> chunk,
               std::size_t offsetInChunk,
               std::size_t size )
{
    OwnedSpan span;
    span.data = chunk->data.data() + offsetInChunk;
    span.size = size;
    span.borrowed = true;
    span.owner = std::move( chunk );
    return span;
}

/**
 * Storage interface for decoded chunks, shared by the per-reader tier and
 * the process-wide tier (serve daemon): ChunkFetcher talks only to this.
 * Implementations must be safe to call from many threads — the fetcher
 * consults the cache from pool workers.
 */
class ChunkCache
{
public:
    using ChunkDataPtr = std::shared_ptr<const DecodedChunk>;
    using Decode = std::function<ChunkDataPtr()>;

    virtual ~ChunkCache() = default;

    /** nullptr on miss. A hit refreshes the entry's recency. */
    [[nodiscard]] virtual ChunkDataPtr
    get( const ChunkCacheKey& key ) = 0;

    virtual void
    insert( const ChunkCacheKey& key, ChunkDataPtr chunk ) = 0;

    [[nodiscard]] virtual ChunkCacheStatistics
    statistics() const = 0;

    /**
     * Cache-through decode. The default is get-else-decode-and-insert;
     * implementations with single-flight dedup (LruChunkCache) override it
     * so concurrent callers of the same cold key decode exactly once.
     * @p decode may throw; the error propagates to every waiting caller.
     */
    [[nodiscard]] virtual ChunkDataPtr
    getOrDecode( const ChunkCacheKey& key, const Decode& decode )
    {
        if ( auto chunk = get( key ) ) {
            return chunk;
        }
        auto chunk = decode();
        insert( key, chunk );
        return chunk;
    }
};

/**
 * Thread-safe byte-bounded LRU over decoded chunks with single-flight
 * decode dedup — the process-wide cache tier of the serve daemon, and the
 * reference ChunkCache for standalone readers. Eviction is strictly
 * least-recently-used and never lets the resident total exceed the byte
 * budget; a chunk larger than the whole budget is returned to the caller
 * but not retained (caching it would evict everything for one entry).
 */
class LruChunkCache final : public ChunkCache
{
public:
    /** Rough per-entry bookkeeping cost charged on top of the chunk data. */
    static constexpr std::size_t PER_ENTRY_OVERHEAD = 256;

    explicit LruChunkCache( std::size_t capacityBytes ) :
        m_capacityBytes( capacityBytes )
    {}

    [[nodiscard]] ChunkDataPtr
    get( const ChunkCacheKey& key ) override
    {
        const std::lock_guard<std::mutex> lock( m_mutex );
        return lockedGet( key );
    }

    void
    insert( const ChunkCacheKey& key, ChunkDataPtr chunk ) override
    {
        const std::lock_guard<std::mutex> lock( m_mutex );
        lockedInsert( key, std::move( chunk ) );
    }

    [[nodiscard]] ChunkCacheStatistics
    statistics() const override
    {
        const std::lock_guard<std::mutex> lock( m_mutex );
        auto result = m_statistics;
        result.currentBytes = m_currentBytes;
        result.capacityBytes = m_capacityBytes;
        return result;
    }

    [[nodiscard]] ChunkDataPtr
    getOrDecode( const ChunkCacheKey& key, const Decode& decode ) override
    {
        auto promise = std::make_shared<std::promise<ChunkDataPtr> >();
        std::shared_future<ChunkDataPtr> pending;
        {
            const std::lock_guard<std::mutex> lock( m_mutex );
            if ( auto chunk = lockedGet( key ) ) {
                return chunk;
            }
            if ( const auto match = m_inFlight.find( key ); match != m_inFlight.end() ) {
                /* Another thread is decoding this key right now: wait for
                 * ITS result instead of decoding again. Counted as a hit —
                 * no second decode happens. */
                ++m_statistics.hits;
                pending = match->second;
            } else {
                m_inFlight.emplace( key, promise->get_future().share() );
            }
        }
        if ( pending.valid() ) {
            return pending.get();
        }

        /* This thread won the single-flight race: decode OUTSIDE the lock. */
        ChunkDataPtr chunk;
        try {
            chunk = decode();
        } catch ( ... ) {
            promise->set_exception( std::current_exception() );
            const std::lock_guard<std::mutex> lock( m_mutex );
            m_inFlight.erase( key );
            throw;
        }
        {
            const std::lock_guard<std::mutex> lock( m_mutex );
            lockedInsert( key, chunk );
            m_inFlight.erase( key );
        }
        promise->set_value( chunk );
        return chunk;
    }

private:
    [[nodiscard]] static std::size_t
    chargedBytes( const ChunkDataPtr& chunk ) noexcept
    {
        return ( chunk ? chunk->data.size() : 0 ) + PER_ENTRY_OVERHEAD;
    }

    /** Caller must hold m_mutex. */
    [[nodiscard]] ChunkDataPtr
    lockedGet( const ChunkCacheKey& key )
    {
        const auto match = m_index.find( key );
        if ( match == m_index.end() ) {
            ++m_statistics.misses;
            return nullptr;
        }
        ++m_statistics.hits;
        m_lru.splice( m_lru.begin(), m_lru, match->second );
        return match->second->second;
    }

    /** Caller must hold m_mutex. */
    void
    lockedInsert( const ChunkCacheKey& key, ChunkDataPtr chunk )
    {
        if ( const auto existing = m_index.find( key ); existing != m_index.end() ) {
            /* Refresh in place; sizes are identical for identical keys. */
            m_lru.splice( m_lru.begin(), m_lru, existing->second );
            return;
        }
        const auto bytes = chargedBytes( chunk );
        if ( bytes > m_capacityBytes ) {
            ++m_statistics.oversizedRejections;
            return;
        }
        while ( m_currentBytes + bytes > m_capacityBytes ) {
            const auto& victim = m_lru.back();
            m_currentBytes -= chargedBytes( victim.second );
            m_index.erase( victim.first );
            m_lru.pop_back();
            ++m_statistics.evictions;
        }
        m_lru.emplace_front( key, std::move( chunk ) );
        m_index.emplace( key, m_lru.begin() );
        m_currentBytes += bytes;
        ++m_statistics.insertions;
    }

    using LruList = std::list<std::pair<ChunkCacheKey, ChunkDataPtr> >;

    mutable std::mutex m_mutex;
    LruList m_lru;  /**< most recent first */
    std::map<ChunkCacheKey, LruList::iterator> m_index;
    std::map<ChunkCacheKey, std::shared_future<ChunkDataPtr> > m_inFlight;
    std::size_t m_currentBytes{ 0 };
    std::size_t m_capacityBytes;
    ChunkCacheStatistics m_statistics;
};

}  // namespace rapidgzip
