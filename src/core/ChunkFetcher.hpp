#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "../common/ThreadPool.hpp"
#include "../common/Util.hpp"
#include "../failsafe/FaultInjection.hpp"
#include "../io/FileReader.hpp"
#include "../telemetry/Registry.hpp"
#include "../telemetry/Trace.hpp"
#include "ChunkCache.hpp"
#include "DeflateChunks.hpp"

namespace rapidgzip {

/**
 * Configuration for the parallel chunk fetcher (paper §3.2). The prefetch
 * strategy decides which chunks to decode speculatively after each access:
 *
 *  - FIXED:        always prefetch the next `parallelism` chunks.
 *  - ADAPTIVE:     start shallow and double the prefetch depth for every
 *                  consecutive sequential access (the paper's default) —
 *                  cheap for random access, full depth for linear scans.
 *  - MULTI_STREAM: track up to four interleaved sequential access streams
 *                  (the ratarmount FUSE pattern) and prefetch ahead of each.
 */
struct ChunkFetcherConfiguration
{
    enum class Strategy
    {
        FIXED,
        ADAPTIVE,
        MULTI_STREAM,
    };

    std::size_t parallelism{ std::max<std::size_t>( 1, std::thread::hardware_concurrency() ) };
    std::size_t chunkSizeBytes{ 4 * MiB };
    Strategy strategy{ Strategy::ADAPTIVE };
    /** Decoded chunks kept in the cache; 0 = derive from parallelism. */
    std::size_t cacheChunkCount{ 0 };
    /**
     * Minimum uncompressed distance between checkpoints the two-stage sweep
     * harvests into the seek index (member starts are always kept); 0 keeps
     * every chunk boundary. Larger spacings shrink the serialized index
     * (fewer 32 KiB windows) at the price of longer decode spans per seek —
     * bench/table4_formats.cpp reports the trade-off.
     */
    std::size_t checkpointSpacingBytes{ 0 };
    /**
     * Optional process-wide cache tier (serve daemon). When set, decodes
     * run through ChunkCache::getOrDecode — concurrent requests for the
     * same cold chunk decode once — and the per-reader map only bridges a
     * decode to its first consumption: repeat accesses are served by the
     * shared tier so chunk residency is accounted, bounded, and evicted in
     * one place. When unset (the default), behavior is exactly the classic
     * per-reader cache.
     */
    std::shared_ptr<ChunkCache> sharedCache{};
    /**
     * Folded into every shared-cache key; must uniquely identify the
     * compressed archive (e.g. hash of path + size + mtime). Readers of the
     * same archive with the same chunking share entries; anything else can
     * never collide. Ignored without @ref sharedCache.
     */
    std::uint64_t cacheIdentity{ 0 };
    /**
     * Transient-failure retries per chunk decode (beyond the first attempt)
     * before the failure propagates to consumers. Covers FileIoError,
     * bad_alloc, and injected faults; each retry backs off exponentially.
     * A failure that survives the budget is permanent for that get() — the
     * poisoned future is evicted so a later access re-decodes from scratch.
     */
    unsigned decodeRetryCount{ 2 };
};

struct FetcherStatistics
{
    std::size_t prefetchDispatched{ 0 };  /**< speculative chunk decodes submitted */
    std::size_t prefetchHits{ 0 };        /**< accesses served by a speculative decode */
    std::size_t onDemandDecodes{ 0 };     /**< accesses that had to decode synchronously */
    std::size_t cacheHits{ 0 };           /**< repeat accesses served from a cache tier */
    std::size_t evictions{ 0 };           /**< ready chunks dropped by the per-reader LRU */
    std::size_t prefetchWasted{ 0 };      /**< speculative decodes evicted before any consumer */
};

/**
 * Decodes chunks of a chunked Deflate stream on a thread pool, caches the
 * results, and prefetches according to the configured strategy. All public
 * methods are thread-compatible with the single-owner usage pattern of
 * ParallelGzipReader (one consumer thread; decoding is what parallelizes).
 */
class ChunkFetcher
{
public:
    using ChunkDataPtr = std::shared_ptr<const DecodedChunk>;
    /** Decodes chunk @p index of the stream; must be const-thread-safe (it
     * runs concurrently on the pool workers). */
    using ChunkDecoder = std::function<DecodedChunk( const FileReader&, std::size_t index )>;

    /** Full-flush chunking: byte ranges, each raw-inflated with zlib. */
    ChunkFetcher( std::shared_ptr<const FileReader> file,
                  std::vector<ChunkBoundary> chunks,
                  const ChunkFetcherConfiguration& configuration ) :
        m_file( std::move( file ) ),
        m_chunks( std::move( chunks ) ),
        m_chunkCount( m_chunks.size() ),
        m_configuration( configuration ),
        m_cacheCapacity( configuration.cacheChunkCount > 0
                         ? configuration.cacheChunkCount
                         : std::max<std::size_t>( 2 * configuration.parallelism + 4, 8 ) ),
        m_cacheToken( makeCacheToken( configuration, m_chunkCount, /* boundary mode */ 1 ) ),
        m_threadPool( std::max<std::size_t>( 1, configuration.parallelism ) )
    {}

    /** Index-driven chunking: @p decoder owns the mapping from chunk index
     * to checkpoint span; the prefetch/cache machinery is shared verbatim
     * with the full-flush path. */
    ChunkFetcher( std::shared_ptr<const FileReader> file,
                  std::size_t chunkCount,
                  ChunkDecoder decoder,
                  const ChunkFetcherConfiguration& configuration ) :
        m_file( std::move( file ) ),
        m_chunkCount( chunkCount ),
        m_decoder( std::move( decoder ) ),
        m_configuration( configuration ),
        m_cacheCapacity( configuration.cacheChunkCount > 0
                         ? configuration.cacheChunkCount
                         : std::max<std::size_t>( 2 * configuration.parallelism + 4, 8 ) ),
        m_cacheToken( makeCacheToken( configuration, m_chunkCount, /* index mode */ 2 ) ),
        m_threadPool( std::max<std::size_t>( 1, configuration.parallelism ) )
    {}

    [[nodiscard]] std::size_t
    chunkCount() const noexcept
    {
        return m_chunkCount;
    }

    [[nodiscard]] const FetcherStatistics&
    statistics() const noexcept
    {
        return m_statistics;
    }

    /** Blocking chunk access; dispatches strategy-driven prefetches. */
    [[nodiscard]] ChunkDataPtr
    get( std::size_t index )
    {
        std::shared_future<ChunkDataPtr> future;
        {
            const std::lock_guard<std::mutex> lock( m_mutex );
            ++m_accessClock;

            if ( const auto match = m_cache.find( index ); match != m_cache.end() ) {
                match->second.lastUse = m_accessClock;
                if ( match->second.prefetched && !match->second.counted ) {
                    ++m_statistics.prefetchHits;
                    match->second.counted = true;
                    RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_prefetch_consumed_total",
                                               "Chunk accesses served by a speculative decode.", 1 );
                } else {
                    ++m_statistics.cacheHits;
                    RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_chunk_cache_hits_total",
                                               "Repeat chunk accesses served from a cache tier.", 1 );
                }
                future = match->second.future;
                if ( m_configuration.sharedCache
                     && ( future.wait_for( std::chrono::seconds( 0 ) )
                          == std::future_status::ready ) ) {
                    /* Shared-tier mode: the per-reader map only bridges a
                     * decode to its first consumption — drop the ready
                     * entry so repeats are served (and accounted) by the
                     * shared tier, where residency is byte-bounded. */
                    m_cache.erase( match );
                }
            } else {
                ChunkDataPtr sharedChunk;
                if ( m_configuration.sharedCache ) {
                    sharedChunk = m_configuration.sharedCache->get(
                        ChunkCacheKey{ m_cacheToken, index } );
                }
                if ( sharedChunk ) {
                    ++m_statistics.cacheHits;
                    RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_chunk_cache_hits_total",
                                               "Repeat chunk accesses served from a cache tier.", 1 );
                    dispatchPrefetches( index );
                    evictStaleEntries( index );
                    return sharedChunk;
                }
                ++m_statistics.onDemandDecodes;
                RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_chunk_on_demand_decodes_total",
                                           "Chunk accesses that had to decode synchronously.", 1 );
                future = insertDecodeTask( index, /* prefetched */ false );
            }

            dispatchPrefetches( index );
            evictStaleEntries( index );
        }
        telemetry::Span waitSpan{ "pipeline", "chunk.wait" };
        try {
            return future.get();
        } catch ( ... ) {
            /* Evict the poisoned future so a later access re-decodes
             * instead of replaying the cached failure forever. The entry
             * may already be gone (shared-tier drop, eviction); erasing a
             * ready entry that was concurrently re-decoded only drops a
             * per-reader bridge entry, never shared-tier residency. */
            const std::lock_guard<std::mutex> lock( m_mutex );
            if ( const auto match = m_cache.find( index );
                 ( match != m_cache.end() )
                 && ( match->second.future.wait_for( std::chrono::seconds( 0 ) )
                      == std::future_status::ready ) ) {
                m_cache.erase( match );
            }
            throw;
        }
    }

    /**
     * Span-lending accessor: fetch chunk @p index (same cache/prefetch path
     * as get()) and lend [offsetInChunk, offsetInChunk + size) of it as a
     * refcounted borrowed span. The span pins the whole chunk, so the bytes
     * survive both per-reader bridge-drop and shared-tier LRU eviction for
     * as long as the caller holds the span — the primitive under the serve
     * daemon's zero-copy response path. Throws when @p offsetInChunk lies
     * beyond the decoded chunk; @p size is clamped to the chunk end.
     */
    [[nodiscard]] OwnedSpan
    lendSpan( std::size_t index, std::size_t offsetInChunk, std::size_t size )
    {
        auto chunk = get( index );
        if ( offsetInChunk >= chunk->data.size() ) {
            throw RapidgzipError( "Span offset lies beyond the decoded chunk" );
        }
        const auto take = std::min( size, chunk->data.size() - offsetInChunk );
        return lendChunkSpan( std::move( chunk ), offsetInChunk, take );
    }

    /**
     * Cache-populating decode that bypasses the prefetch strategy and the
     * statistics — used by the offset-discovery sweep so its work is not
     * thrown away and does not skew the strategy ablations. Errors surface
     * on future.get().
     */
    [[nodiscard]] std::shared_future<ChunkDataPtr>
    fetchQuietly( std::size_t index )
    {
        const std::lock_guard<std::mutex> lock( m_mutex );
        ++m_accessClock;
        if ( const auto match = m_cache.find( index ); match != m_cache.end() ) {
            match->second.lastUse = m_accessClock;
            return match->second.future;
        }
        auto future = insertDecodeTask( index, /* prefetched */ false );
        evictStaleEntries( index );
        return future;
    }

private:
    struct CacheEntry
    {
        std::shared_future<ChunkDataPtr> future;
        std::uint64_t lastUse{ 0 };
        bool prefetched{ false };
        bool counted{ false };
    };

    [[nodiscard]] static std::uint64_t
    makeCacheToken( const ChunkFetcherConfiguration& configuration,
                    std::size_t chunkCount,
                    std::uint64_t modeTag )
    {
        /* Chunk-table geometry is folded in so a re-chunked reader — e.g.
         * after a false-boundary merge rebuilt the fetcher — can never hit
         * entries keyed under the stale table. */
        return mixHash( configuration.cacheIdentity )
               ^ mixHash( ( static_cast<std::uint64_t>( chunkCount ) << 8U ) | modeTag )
               ^ mixHash( configuration.chunkSizeBytes + 3 * configuration.checkpointSpacingBytes );
    }

    static void
    countDecodeFailure()
    {
        RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_chunk_decode_failures_total",
                                   "Chunk decodes that failed permanently (post-retry).", 1 );
    }

    /** Caller must hold m_mutex. */
    std::shared_future<ChunkDataPtr>
    insertDecodeTask( std::size_t index, bool prefetched )
    {
        std::function<ChunkDataPtr()> decode;
        if ( m_decoder ) {
            decode = [file = m_file, decoder = m_decoder, index] () -> ChunkDataPtr {
                return std::make_shared<const DecodedChunk>( decoder( *file, index ) );
            };
        } else {
            const auto boundary = m_chunks[index];
            decode = [file = m_file, boundary] () -> ChunkDataPtr {
                return std::make_shared<const DecodedChunk>(
                    decodeRawDeflateChunk( *file, boundary.compressedBegin,
                                           boundary.compressedEnd ) );
            };
        }
        /* Bounded transient-retry around the decode itself (inside the
         * shared-cache single-flight wrapper below, so waiters of one
         * in-flight decode benefit from its retries too). Transient =
         * I/O errors, allocation failure, injected faults; genuine data
         * corruption fails identically every time, so it propagates on
         * the first attempt instead of burning two more decodes. */
        decode = [inner = std::move( decode ),
                  retries = m_configuration.decodeRetryCount] () -> ChunkDataPtr {
            for ( unsigned attempt = 0; ; ++attempt ) {
                try {
                    failsafe::maybeFailAllocation();
                    if ( failsafe::shouldInject( failsafe::FaultPoint::CHUNK_DECODE ) ) {
                        throw failsafe::FaultInjectedError( "chunk decode" );
                    }
                    return inner();
                } catch ( const failsafe::FaultInjectedError& ) {
                    if ( attempt >= retries ) { countDecodeFailure(); throw; }
                } catch ( const FileIoError& ) {
                    if ( attempt >= retries ) { countDecodeFailure(); throw; }
                } catch ( const std::bad_alloc& ) {
                    if ( attempt >= retries ) { countDecodeFailure(); throw; }
                } catch ( ... ) {
                    countDecodeFailure();
                    throw;  /* deterministic (corruption etc.) — retries cannot help */
                }
                RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_chunk_decode_retries_total",
                                           "Transient chunk-decode failures retried in place.", 1 );
                io::transientBackoff( attempt );
            }
        };
        if ( m_configuration.sharedCache ) {
            decode = [cache = m_configuration.sharedCache,
                      key = ChunkCacheKey{ m_cacheToken, index },
                      inner = std::move( decode )] () -> ChunkDataPtr {
                return cache->getOrDecode( key, inner );
            };
        }
        auto future = m_threadPool.submit( std::move( decode ) ).share();
        CacheEntry entry;
        entry.future = future;
        entry.lastUse = m_accessClock;
        entry.prefetched = prefetched;
        m_cache.emplace( index, std::move( entry ) );
        return future;
    }

    /** Caller must hold m_mutex. */
    void
    prefetch( std::size_t index )
    {
        if ( ( index >= m_chunkCount ) || ( m_cache.find( index ) != m_cache.end() ) ) {
            return;
        }
        ++m_statistics.prefetchDispatched;
        RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_prefetch_issued_total",
                                   "Speculative chunk decodes submitted to the pool.", 1 );
        (void)insertDecodeTask( index, /* prefetched */ true );
    }

    /** Caller must hold m_mutex. */
    void
    dispatchPrefetches( std::size_t accessedIndex )
    {
        const auto parallelism = std::max<std::size_t>( 1, m_configuration.parallelism );
        switch ( m_configuration.strategy ) {
        case ChunkFetcherConfiguration::Strategy::FIXED:
            for ( std::size_t i = 1; i <= parallelism; ++i ) {
                prefetch( accessedIndex + i );
            }
            break;

        case ChunkFetcherConfiguration::Strategy::ADAPTIVE:
        {
            /* Repeated accesses to the same chunk (byte-wise read() loops)
             * neither grow nor reset the sequential streak. */
            if ( ( m_lastAccess != SIZE_MAX ) && ( accessedIndex == m_lastAccess + 1 ) ) {
                ++m_sequentialStreak;
            } else if ( accessedIndex != m_lastAccess ) {
                m_sequentialStreak = 0;
            }
            m_lastAccess = accessedIndex;
            const auto depth = std::min<std::size_t>(
                parallelism,
                std::size_t( 1 ) << std::min<std::size_t>( m_sequentialStreak, 16 ) );
            for ( std::size_t i = 1; i <= depth; ++i ) {
                prefetch( accessedIndex + i );
            }
            break;
        }

        case ChunkFetcherConfiguration::Strategy::MULTI_STREAM:
        {
            constexpr std::size_t MAX_STREAMS = 4;
            auto stream = std::find_if( m_streams.begin(), m_streams.end(),
                                        [accessedIndex] ( const AccessStream& s ) {
                                            return s.nextExpected == accessedIndex
                                                   || s.nextExpected == accessedIndex + 1;
                                        } );
            if ( stream == m_streams.end() ) {
                if ( m_streams.size() >= MAX_STREAMS ) {
                    stream = std::min_element( m_streams.begin(), m_streams.end(),
                                               [] ( const AccessStream& a, const AccessStream& b ) {
                                                   return a.lastUse < b.lastUse;
                                               } );
                } else {
                    m_streams.push_back( {} );
                    stream = std::prev( m_streams.end() );
                }
                stream->streak = 0;
            } else if ( stream->nextExpected == accessedIndex ) {
                /* True sequential advance; repeated accesses to the same
                 * chunk (byte-wise read() loops) leave the streak alone. */
                ++stream->streak;
            }
            stream->nextExpected = accessedIndex + 1;
            stream->lastUse = m_accessClock;

            /* Budget splits across streams; each ramps up with its streak
             * like ADAPTIVE so a stray one-off access stays cheap. */
            const auto perStreamBudget =
                std::max<std::size_t>( 1, parallelism / std::max<std::size_t>( 1, m_streams.size() ) );
            for ( const auto& s : m_streams ) {
                const auto depth = std::min( perStreamBudget, s.streak + 1 );
                for ( std::size_t i = 0; i < depth; ++i ) {
                    prefetch( s.nextExpected + i );
                }
            }
            break;
        }
        }
    }

    /** Caller must hold m_mutex. Never evicts in-flight decodes or @p keepIndex. */
    void
    evictStaleEntries( std::size_t keepIndex )
    {
        while ( m_cache.size() > m_cacheCapacity ) {
            auto victim = m_cache.end();
            for ( auto it = m_cache.begin(); it != m_cache.end(); ++it ) {
                if ( it->first == keepIndex ) {
                    continue;
                }
                if ( it->second.future.wait_for( std::chrono::seconds( 0 ) )
                     != std::future_status::ready ) {
                    continue;
                }
                if ( ( victim == m_cache.end() ) || ( it->second.lastUse < victim->second.lastUse ) ) {
                    victim = it;
                }
            }
            if ( victim == m_cache.end() ) {
                break;  /* everything else is still decoding */
            }
            if ( victim->second.prefetched && !victim->second.counted ) {
                ++m_statistics.prefetchWasted;
                RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_prefetch_wasted_total",
                                           "Speculative decodes evicted before any consumer used them.", 1 );
            }
            m_cache.erase( victim );
            ++m_statistics.evictions;
        }
    }

    struct AccessStream
    {
        std::size_t nextExpected{ 0 };
        std::size_t streak{ 0 };
        std::uint64_t lastUse{ 0 };
    };

    std::shared_ptr<const FileReader> m_file;
    std::vector<ChunkBoundary> m_chunks;  /**< full-flush mode only */
    std::size_t m_chunkCount{ 0 };
    ChunkDecoder m_decoder;               /**< index mode only */
    ChunkFetcherConfiguration m_configuration;
    std::size_t m_cacheCapacity;
    std::uint64_t m_cacheToken;

    std::mutex m_mutex;
    std::map<std::size_t, CacheEntry> m_cache;
    FetcherStatistics m_statistics;
    std::uint64_t m_accessClock{ 0 };

    std::size_t m_lastAccess{ SIZE_MAX };
    std::size_t m_sequentialStreak{ 0 };
    std::vector<AccessStream> m_streams;

    /* Pool last: its destructor runs first, joining workers that capture m_file. */
    ThreadPool m_threadPool;
};

}  // namespace rapidgzip
