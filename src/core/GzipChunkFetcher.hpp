#pragma once

#include <zlib.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <future>
#include <utility>
#include <vector>

#include "../bits/BitReader.hpp"
#include "../blockfinder/BlockFinder.hpp"
#include "../blockfinder/DynamicBlockFinderRapid.hpp"
#include "../blockfinder/NonCompressedBlockFinder.hpp"
#include "../common/Error.hpp"
#include "../common/ThreadPool.hpp"
#include "../common/Util.hpp"
#include "../deflate/DecodedData.hpp"
#include "../deflate/DeflateDecoder.hpp"
#include "../gzip/GzipHeader.hpp"
#include "../index/IndexBuilder.hpp"
#include "../io/FileReader.hpp"
#include "../telemetry/Registry.hpp"
#include "../telemetry/Trace.hpp"
#include "DeflateChunks.hpp"

namespace rapidgzip {

/**
 * Flush one chunk's cascade rejection tallies (paper table1) into the
 * process-wide registry — the per-stage FilterStatistics the finder already
 * collects, made live instead of bench-only. One gate check covers all
 * twelve counters; handles resolve once per process.
 */
inline void
tallyFilterStatistics( const blockfinder::FilterStatistics& statistics )
{
    if ( !telemetry::metricsEnabled() ) {
        return;
    }
    static const auto handles = [] () {
        auto& registry = telemetry::Registry::instance();
        const auto help = "Cascaded block-finder stage tallies (paper table1), summed over all chunks.";
        return std::array<telemetry::Counter*, 12>{
            &registry.counter( "rapidgzip_blockfinder_positions_tested_total", help ),
            &registry.counter( "rapidgzip_blockfinder_invalid_final_block_total", help ),
            &registry.counter( "rapidgzip_blockfinder_invalid_compression_type_total", help ),
            &registry.counter( "rapidgzip_blockfinder_invalid_precode_size_total", help ),
            &registry.counter( "rapidgzip_blockfinder_invalid_precode_code_total", help ),
            &registry.counter( "rapidgzip_blockfinder_non_optimal_precode_code_total", help ),
            &registry.counter( "rapidgzip_blockfinder_invalid_precode_encoded_data_total", help ),
            &registry.counter( "rapidgzip_blockfinder_invalid_distance_code_total", help ),
            &registry.counter( "rapidgzip_blockfinder_non_optimal_distance_code_total", help ),
            &registry.counter( "rapidgzip_blockfinder_invalid_literal_code_total", help ),
            &registry.counter( "rapidgzip_blockfinder_non_optimal_literal_code_total", help ),
            &registry.counter( "rapidgzip_blockfinder_valid_headers_total", help ),
        };
    }();
    const std::array<std::uint64_t, 12> values{
        statistics.positionsTested, statistics.invalidFinalBlock, statistics.invalidCompressionType,
        statistics.invalidPrecodeSize, statistics.invalidPrecodeCode, statistics.nonOptimalPrecodeCode,
        statistics.invalidPrecodeEncodedData, statistics.invalidDistanceCode,
        statistics.nonOptimalDistanceCode, statistics.invalidLiteralCode,
        statistics.nonOptimalLiteralCode, statistics.validHeaders };
    for ( std::size_t i = 0; i < values.size(); ++i ) {
        if ( values[i] != 0 ) {
            handles[i]->addUnchecked( values[i] );
        }
    }
}

/**
 * The paper's central pipeline (§3.2/§3.3): decode gzip chunks from GUESSED
 * bit offsets. Stage one runs in parallel per chunk — block-find from the
 * guess with the cascaded rapid finder (plus the non-compressed finder for
 * stored blocks), then two-stage-decode into marker/plain data until the
 * first block boundary at or past the chunk's end guess. Stage two is the
 * cheap sequential stitch: verify each chunk starts exactly where its
 * predecessor stopped (re-decoding from the known offset when the finder
 * was fooled or skipped an unfindable Fixed block), substitute markers with
 * the propagated window, and slide the window forward.
 *
 * Correctness does not rest on the finders: a surviving false positive
 * produces wrong bytes whose CRC32 cannot match the gzip footer, which the
 * caller verifies — the same layering DeflateChunks.hpp documents for the
 * full-flush fast path.
 */
class GzipChunkFetcher
{
public:
    struct ChunkResult
    {
        Error error{ Error::NONE };
        deflate::DecodedData data;
        /** Absolute bit offset of the block the decode actually started at. */
        std::size_t decodedStartBit{ 0 };
        /** Absolute bit offset of the first unconsumed block boundary. */
        std::size_t decodedEndBit{ 0 };
        bool reachedStreamEnd{ false };
        std::size_t blockCount{ 0 };
        bool startedAtStoredBlock{ false };
    };

    struct MemberResult
    {
        std::size_t uncompressedSize{ 0 };
        std::uint32_t crc32{ 0 };
        /** Byte offset of the member's footer (just past the final Deflate byte). */
        std::size_t footerStartByte{ 0 };
        /** Chunks actually consumed for this member (not the guess grid,
         * which spans to the file end for concatenated members). */
        std::size_t chunkCount{ 0 };
        /** Chunks whose speculative decode was discarded for a sequential
         * re-decode (finder miss, mis-stitch, or decode failure). */
        std::size_t redecodedChunks{ 0 };
    };

    /**
     * Stage one for one chunk: find the first decodable block at or after
     * @p startBitGuess (before @p endBitGuess) and decode — windowless, with
     * 16-bit markers — until the first block boundary at or past
     * @p endBitGuess, the final block, or @p maxBytes outputs.
     *
     * Seeded-window fast path: when @p seededWindow is non-null the start is
     * not a guess but an exact checkpoint (index hit), so stage one is
     * skipped entirely — no block finding, no markers, conventional 8-bit
     * decoding from the seeded window. An empty window is a valid seed
     * (restart point).
     */
    [[nodiscard]] static ChunkResult
    decodeChunkFromGuess( const FileReader& file,
                          std::size_t startBitGuess,
                          std::size_t endBitGuess,
                          std::size_t maxBytes,
                          const BufferView* seededWindow = nullptr )
    {
        if ( seededWindow != nullptr ) {
            return decodeChunkAtOffset( file, startBitGuess, endBitGuess, maxBytes,
                                        *seededWindow );
        }
        const auto fileSize = file.size();
        const auto fileBits = fileSize * 8;
        endBitGuess = std::min( endBitGuess, fileBits );

        ChunkResult result;
        if ( ( startBitGuess >= fileBits ) || ( endBitGuess <= startBitGuess ) ) {
            result.error = Error::BLOCK_NOT_FOUND;
            return result;
        }

        /* Zero-churn buffers: the compressed span lives in a per-thread
         * buffer reused across chunks; the DecodedData comes from the shared
         * pool, is pre-sized to the chunk's expected yield, and is reused
         * across failed candidates — steady-state decoding allocates
         * nothing. */
        static thread_local std::vector<std::uint8_t> buffer;
        auto data = deflate::DecodedDataPool::acquire();
        const auto expectedYield =
            std::min( { maxBytes, ( endBitGuess - startBitGuess ) / 8 * EXPECTED_RATIO + 64 * KiB,
                        PRESIZE_CAP } );

        auto margin = INITIAL_DECODE_OVERSHOOT;
        while ( true ) {
            const auto startByte = startBitGuess / 8;
            const auto bufferEnd = std::min( fileSize, ceilDiv<std::size_t>( endBitGuess, 8 ) + margin );
            buffer.resize( bufferEnd - startByte );
            if ( file.pread( buffer.data(), buffer.size(), startByte ) != buffer.size() ) {
                result.error = Error::TRUNCATED_STREAM;
                deflate::DecodedDataPool::release( std::move( data ) );
                return result;
            }
            const BufferView view( buffer.data(), buffer.size() );
            const auto baseBit = startByte * 8;
            const auto searchEndLocal = endBitGuess - baseBit;

            blockfinder::DynamicBlockFinderRapid dynamicFinder;
            const blockfinder::NonCompressedBlockFinder storedFinder;
            /* Tally table1 cascade rejections whatever exit path the chunk takes. */
            struct StatisticsFlusher
            {
                const blockfinder::DynamicBlockFinderRapid& finder;
                ~StatisticsFlusher() { tallyFilterStatistics( finder.statistics() ); }
            } statisticsFlusher{ dynamicFinder };

            std::size_t nextDynamic{ blockfinder::NOT_FOUND };
            std::size_t nextStored{ blockfinder::NOT_FOUND };
            {
                telemetry::Span findSpan{ "pipeline", "chunk.find" };
                nextDynamic = dynamicFinder.find( view, startBitGuess - baseBit );
                nextStored = storedFinder.find( view, startBitGuess - baseBit );
            }

            bool truncatedAttempt = false;
            while ( true ) {
                const auto candidate = std::min( nextDynamic, nextStored );
                if ( ( candidate == blockfinder::NOT_FOUND ) || ( candidate >= searchEndLocal ) ) {
                    break;
                }
                /* Both finders can report the same offset; try the dynamic
                 * interpretation first, then the stored one — neither may
                 * shadow the other. */
                for ( const bool stored : { false, true } ) {
                    if ( stored ? ( candidate != nextStored ) : ( candidate != nextDynamic ) ) {
                        continue;
                    }
                    BitReader reader( view.data(), view.size() );
                    reader.seek( candidate );
                    deflate::Decoder decoder;
                    decoder.setStartAtStoredData( stored );
                    data.reset();
                    data.marked.reserve( expectedYield );
                    const auto decoded = [&] () {
                        telemetry::Span decodeSpan{ "pipeline", "chunk.decode" };
                        return decoder.decode( reader, data, searchEndLocal, maxBytes );
                    }();
                    if ( decoded.error == Error::NONE ) {
                        result.data = std::move( data );
                        result.decodedStartBit = baseBit + candidate;
                        result.decodedEndBit = baseBit + decoded.endBitOffset;
                        result.reachedStreamEnd = decoded.reachedFinalBlock;
                        result.blockCount = decoded.blockCount;
                        result.startedAtStoredBlock = stored;
                        return result;
                    }
                    if ( decoded.error == Error::EXCEEDED_OUTPUT_LIMIT ) {
                        /* The output budget is per chunk, not per candidate:
                         * retrying further candidates would multiply the
                         * wasted decode work. Report terminally; the caller
                         * re-decodes sequentially without a limit. */
                        result.error = Error::EXCEEDED_OUTPUT_LIMIT;
                        deflate::DecodedDataPool::release( std::move( data ) );
                        return result;
                    }
                    if ( ( decoded.error == Error::TRUNCATED_STREAM ) && ( bufferEnd < fileSize ) ) {
                        truncatedAttempt = true;
                    }
                }
                {
                    telemetry::Span findSpan{ "pipeline", "chunk.find" };
                    if ( candidate == nextDynamic ) {
                        nextDynamic = dynamicFinder.find( view, candidate + 1 );
                    }
                    if ( candidate == nextStored ) {
                        nextStored = storedFinder.find( view, candidate + 1 );
                    }
                }
            }

            if ( truncatedAttempt && ( bufferEnd < fileSize ) ) {
                margin *= 4;  /* a candidate outran the buffer — widen and retry */
                continue;
            }
            result.error = Error::BLOCK_NOT_FOUND;
            deflate::DecodedDataPool::release( std::move( data ) );
            return result;
        }
    }

    /**
     * Sequential-path decode from an exactly known block boundary with a
     * known window (conventional 8-bit decoding throughout). Used for the
     * first chunk of a member and whenever a speculative chunk has to be
     * re-decoded.
     */
    [[nodiscard]] static ChunkResult
    decodeChunkAtOffset( const FileReader& file,
                         std::size_t startBit,
                         std::size_t untilBit,
                         std::size_t maxBytes,
                         BufferView window,
                         bool startAtStoredData = false )
    {
        const auto fileSize = file.size();
        const auto fileBits = fileSize * 8;
        untilBit = std::min( untilBit, fileBits );
        /* A previous chunk's boundary block may have overshot PAST this
         * chunk's whole range: untilBit <= startBit then means "decode zero
         * blocks" (the loop below breaks immediately), and the buffer
         * arithmetic must not underflow. */
        untilBit = std::max( untilBit, startBit );

        ChunkResult result;
        if ( startBit >= fileBits ) {
            result.error = Error::TRUNCATED_STREAM;
            return result;
        }

        static thread_local std::vector<std::uint8_t> buffer;
        auto data = deflate::DecodedDataPool::acquire();
        const auto expectedYield =
            std::min( { maxBytes,
                        ( std::max( untilBit, startBit + 8 ) - startBit ) / 8 * EXPECTED_RATIO
                        + 64 * KiB,
                        PRESIZE_CAP } );

        auto margin = INITIAL_DECODE_OVERSHOOT;
        while ( true ) {
            const auto startByte = startBit / 8;
            const auto bufferEnd = std::min( fileSize, ceilDiv<std::size_t>( untilBit, 8 ) + margin );
            buffer.resize( bufferEnd - startByte );
            if ( file.pread( buffer.data(), buffer.size(), startByte ) != buffer.size() ) {
                result.error = Error::TRUNCATED_STREAM;
                deflate::DecodedDataPool::release( std::move( data ) );
                return result;
            }
            const auto baseBit = startByte * 8;

            BitReader reader( buffer.data(), buffer.size() );
            reader.seek( startBit - baseBit );
            deflate::Decoder decoder;
            decoder.setInitialWindow( window );
            decoder.setStartAtStoredData( startAtStoredData );
            data.reset();
            if ( data.plain.empty() ) {
                data.plain.emplace_back();
            }
            data.plain.front().data.reserve( expectedYield );
            const auto decoded = [&] () {
                telemetry::Span decodeSpan{ "pipeline", "chunk.decode" };
                return decoder.decode( reader, data, untilBit - baseBit, maxBytes );
            }();
            if ( ( decoded.error == Error::TRUNCATED_STREAM ) && ( bufferEnd < fileSize ) ) {
                margin *= 4;
                continue;
            }
            result.error = decoded.error;
            result.data = std::move( data );
            result.decodedStartBit = startBit;
            result.decodedEndBit = baseBit + decoded.endBitOffset;
            result.reachedStreamEnd = decoded.reachedFinalBlock;
            result.blockCount = decoded.blockCount;
            result.startedAtStoredBlock = startAtStoredData;
            return result;
        }
    }

    /**
     * Index-driven chunk decode: resume at the checkpoint bit offset
     * @p startBits with the checkpoint's @p window and decode until the
     * block boundary at @p untilBits (the next checkpoint) or the end of the
     * stream. Handles gzip member transitions that fall inside the chunk
     * (footer + next member's header + fresh Deflate stream with an empty
     * window), so BGZF and concatenated members ride the same path. This is
     * what makes seek()/read() O(1) in decoded work: exactly one
     * inter-checkpoint span is decoded, never the prefix of the file.
     *
     * Throws InvalidGzipStreamError when the data under the checkpoint does
     * not decode — a stale or corrupt index.
     */
    [[nodiscard]] static DecodedChunk
    decodeChunkFromCheckpoint( const FileReader& file,
                               std::size_t startBits,
                               std::size_t untilBits,
                               BufferView window )
    {
        const auto fileSize = file.size();

        /* Restart-point chunks (byte-aligned, empty window, byte-aligned
         * end) — BGZF blocks, full-flush points, member starts — take the
         * zlib path: it reads the chunk's byte span ONCE and follows member
         * transitions within it, where the generic loop below would re-read
         * the remaining span per member (ruinous for BGZF's ~64 KiB
         * members). A bit-granular end boundary disqualifies: zlib would
         * decode the trailing partial block past the next checkpoint. */
        constexpr auto NO_LIMIT = std::numeric_limits<std::size_t>::max();
        if ( ( startBits % 8 == 0 ) && window.empty()
             && ( ( untilBits == NO_LIMIT ) || ( untilBits % 8 == 0 ) ) ) {
            return decodeRawDeflateChunk( file, startBits / 8,
                                          untilBits == NO_LIMIT ? fileSize : untilBits / 8 );
        }

        DecodedChunk result;

        /* One running CRC per member SEGMENT within this chunk (reset at
         * member boundaries), recorded in memberEnds so a sequential
         * consumer can verify every concatenated member's footer; the
         * whole-chunk crc32 is combined from the segments at the end. */
        std::uint32_t segmentCrc = 0;

        std::vector<std::uint8_t> memberWindow( window.begin(), window.end() );
        auto bit = startBits;
        while ( true ) {
            const BufferView windowView{ memberWindow.data(), memberWindow.size() };
            auto chunk = decodeChunkFromGuess( file, bit, untilBits,
                                               std::numeric_limits<std::size_t>::max(),
                                               &windowView );
            if ( chunk.error != Error::NONE ) {
                throw InvalidGzipStreamError(
                    "Cannot decode the gzip stream at indexed bit offset "
                    + std::to_string( bit ) + ": " + std::string( toString( chunk.error ) )
                    + " — stale or corrupt index" );
            }

            const auto before = result.data.size();
            {
                telemetry::Span stitchSpan{ "pipeline", "chunk.stitch" };
                deflate::resolveInto( chunk.data, windowView, result.data );
            }
            deflate::DecodedDataPool::release( std::move( chunk.data ) );
            segmentCrc = simd::crc32( segmentCrc, result.data.data() + before,
                                      result.data.size() - before );

            if ( !chunk.reachedStreamEnd ) {
                break;  /* stopped exactly at the next checkpoint's boundary */
            }

            /* The member ended inside this chunk: footer, then possibly
             * another member whose Deflate data still belongs to this chunk. */
            const auto footerByte = ceilDiv<std::size_t>( chunk.decodedEndBit, 8 );
            result.deflateEndOffset = footerByte;
            result.memberEnds.push_back( { result.data.size(), segmentCrc, footerByte } );
            segmentCrc = 0;
            const auto nextMember = footerByte + GZIP_FOOTER_SIZE;
            std::uint8_t magic[2];
            if ( ( nextMember + 2 > fileSize )
                 || ( file.pread( magic, 2, nextMember ) != 2 )
                 || ( magic[0] != GZIP_MAGIC_1 ) || ( magic[1] != GZIP_MAGIC_2 ) ) {
                /* No further member; trailing bytes are padding (gzip -d
                 * semantics). */
                result.reachedStreamEnd = true;
                break;
            }
            std::vector<std::uint8_t> headerBytes(
                std::min<std::size_t>( fileSize - nextMember, 64 * KiB ) );
            preadExactly( file, headerBytes.data(), headerBytes.size(), nextMember );
            const auto deflateStart =
                parseGzipHeader( { headerBytes.data(), headerBytes.size() } );
            const auto newBit = ( nextMember + deflateStart ) * 8;
            if ( newBit >= untilBits ) {
                break;  /* the next checkpoint owns the next member */
            }
            ++result.memberRestarts;
            memberWindow.clear();  /* a fresh member starts with an empty window */
            bit = newBit;
        }
        result.trailingCrc32 = segmentCrc;
        result.crc32 = combineSegmentCrcs( result );
        return result;
    }

    /**
     * Decompress one gzip member's Deflate stream in parallel from guessed
     * chunk offsets, stitching sequentially. Returns size, CRC32, and the
     * footer position; throws InvalidGzipStreamError when the stream is
     * undecodable. The caller verifies the returned CRC against the footer —
     * that verification, not the block finding, is the correctness
     * authority.
     *
     * When @p collectOutput is non-null the decompressed bytes are appended
     * to it; otherwise they are discarded after CRC/window accounting
     * (decompressAll semantics), keeping memory bounded by the in-flight
     * chunk batch.
     *
     * When @p indexBuilder is non-null, every consumed chunk boundary is
     * recorded as a checkpoint with the propagated window — index
     * construction as a byproduct of the sweep (member-relative uncompressed
     * offsets; the caller advances the member base).
     */
    [[nodiscard]] static MemberResult
    decompressMember( const FileReader& file,
                      std::size_t firstDeflateByte,
                      std::size_t parallelism,
                      std::size_t chunkSizeBytes,
                      std::vector<std::uint8_t>* collectOutput = nullptr,
                      index::IndexBuilder* indexBuilder = nullptr )
    {
        const auto fileSize = file.size();
        const auto fileBits = fileSize * 8;
        const auto startBit = firstDeflateByte * 8;
        if ( startBit >= fileBits ) {
            throw InvalidGzipStreamError( "Gzip member has no Deflate data" );
        }

        const auto chunkBytes = std::max<std::size_t>( chunkSizeBytes, 128 * KiB );
        const auto chunkBits = chunkBytes * 8;
        /* The guess grid spans to the FILE end because a member's end is
         * only known after decoding it; for concatenated members the (at
         * most one batch of) speculative decodes past the footer are
         * discarded at reachedStreamEnd. */
        const auto chunkCount = ceilDiv( fileBits - startBit, chunkBits );
        /* Speculative output budget per chunk. Deflate can expand up to
         * ~1032x, but budgeting for that would let a batch of in-flight
         * 16-bit chunk buffers occupy hundreds of chunk sizes of memory;
         * ratios beyond this cap (sparse files and the like) fall back to
         * the sequential re-decode, whose single uncapped chunk matches the
         * serial path's memory profile. */
        const auto chunkOutputCap = chunkBytes * 64 + 16 * MiB;

        const auto guessBegin = [startBit, chunkBits] ( std::size_t index ) {
            return startBit + index * chunkBits;
        };
        /* The pool is declared AFTER everything its tasks reference, so its
         * joining destructor runs first; the tasks themselves capture plain
         * values (plus the caller-owned file) — never locals of this frame
         * that unwinding could destroy while workers still run. */
        ThreadPool pool( std::max<std::size_t>( 1, parallelism ) );
        const auto dispatch = [&pool, &file, startBit, chunkBits, chunkOutputCap] ( std::size_t index ) {
            return pool.submit( [&file, startBit, chunkBits, index, chunkOutputCap] () {
                return decodeChunkFromGuess( file, startBit + index * chunkBits,
                                             startBit + ( index + 1 ) * chunkBits,
                                             chunkOutputCap );
            } );
        };

        /* Bounded look-ahead: chunks are consumed strictly in order, so only
         * the in-flight batch is resident at once. */
        const auto batchLimit = std::max<std::size_t>( 2 * std::max<std::size_t>( 1, parallelism ), 4 );
        std::vector<std::future<ChunkResult> > inFlight;
        std::size_t nextToDispatch = 1;  /* chunk 0 decodes on this thread, exactly */
        const auto topUp = [&] () {
            while ( ( nextToDispatch < chunkCount ) && ( inFlight.size() < batchLimit ) ) {
                inFlight.push_back( dispatch( nextToDispatch++ ) );
            }
        };
        topUp();

        MemberResult member;
        std::uint32_t crc = 0;
        std::vector<std::uint8_t> window;
        std::vector<std::uint8_t> resolved;
        std::size_t expectedBit = startBit;
        bool reachedStreamEnd = false;

        for ( std::size_t index = 0; index < chunkCount; ++index ) {
            ++member.chunkCount;  /* chunks actually consumed, not the guess grid */
            ChunkResult chunk;
            bool speculativeAccepted = false;
            if ( index == 0 ) {
                chunk = decodeChunkAtOffset( file, startBit, guessBegin( 1 ), chunkOutputCap,
                                             { window.data(), window.size() } );
                if ( ( chunk.error == Error::EXCEEDED_OUTPUT_LIMIT ) ) {
                    chunk = decodeChunkAtOffset( file, startBit, guessBegin( 1 ),
                                                 std::numeric_limits<std::size_t>::max(),
                                                 { window.data(), window.size() } );
                }
                if ( chunk.error != Error::NONE ) {
                    throw InvalidGzipStreamError(
                        "Cannot decode the gzip stream from its start: "
                        + std::string( toString( chunk.error ) ) );
                }
            } else {
                chunk = inFlight.front().get();
                inFlight.erase( inFlight.begin() );
                topUp();
                /* A stored-block start is reported at its byte-aligned LEN
                 * field; the equivalent boundary for a header at expectedBit
                 * is 3 header bits plus padding later. (The unread padding
                 * carries no data; a wrong BFINAL assumption decodes wrong
                 * bytes that the caller's CRC verification rejects.) */
                const auto storedDataBit = ceilDiv<std::size_t>( expectedBit + 3, 8 ) * 8;
                const bool stitchMatches =
                    ( chunk.decodedStartBit == expectedBit )
                    || ( chunk.startedAtStoredBlock && ( chunk.decodedStartBit == storedDataBit ) );
                speculativeAccepted = ( chunk.error == Error::NONE ) && stitchMatches;
                if ( ( chunk.error != Error::NONE ) || !stitchMatches ) {
                    /* The finder was fooled, skipped an unfindable block, or
                     * the guess landed beyond the member: re-decode from the
                     * authoritative boundary with the propagated window. */
                    ++member.redecodedChunks;
                    RAPIDGZIP_TELEMETRY_COUNT( "rapidgzip_chunk_redecodes_total",
                                               "Speculative chunk decodes discarded for a sequential "
                                               "re-decode (finder miss, mis-stitch, or decode failure).", 1 );
                    chunk = decodeChunkAtOffset( file, expectedBit, guessBegin( index + 1 ),
                                                 std::numeric_limits<std::size_t>::max(),
                                                 { window.data(), window.size() } );
                    if ( chunk.error != Error::NONE ) {
                        throw InvalidGzipStreamError(
                            "Cannot decode the gzip stream at bit offset "
                            + std::to_string( expectedBit ) + ": "
                            + std::string( toString( chunk.error ) ) );
                    }
                }
            }

            /* Harvest the checkpoint before the window slides: `expectedBit`
             * is the authoritative boundary this chunk starts at (for an
             * accepted stored-block candidate the real block header at
             * expectedBit decodes identically — the unread padding carries
             * no data), and `window` is exactly the history a decode
             * resuming there needs. The chunk's surviving markers enable a
             * sparse window (see IndexBuilder). */
            if ( indexBuilder != nullptr ) {
                indexBuilder->addCheckpoint( expectedBit, member.uncompressedSize,
                                             { window.data(), window.size() },
                                             speculativeAccepted ? &chunk.data : nullptr );
            }

            /* Stage two: resolve markers against the propagated window. */
            {
                telemetry::Span stitchSpan{ "pipeline", "chunk.stitch" };
                resolved.clear();
                deflate::resolveInto( chunk.data, { window.data(), window.size() }, resolved );

                if ( !resolved.empty() ) {
                    crc = simd::crc32( crc, resolved.data(), resolved.size() );
                    member.uncompressedSize += resolved.size();
                    if ( collectOutput != nullptr ) {
                        collectOutput->insert( collectOutput->end(), resolved.begin(), resolved.end() );
                    }
                    /* Slide the window: last WINDOW_SIZE bytes of (window ++ resolved). */
                    if ( resolved.size() >= deflate::WINDOW_SIZE ) {
                        window.assign( resolved.end() - deflate::WINDOW_SIZE, resolved.end() );
                    } else {
                        const auto keep = std::min( window.size(),
                                                    deflate::WINDOW_SIZE - resolved.size() );
                        window.erase( window.begin(),
                                      window.end() - static_cast<std::ptrdiff_t>( keep ) );
                        window.insert( window.end(), resolved.begin(), resolved.end() );
                    }
                }
            }

            expectedBit = chunk.decodedEndBit;
            const auto endedStream = chunk.reachedStreamEnd;
            /* The chunk's buffers are fully consumed (markers resolved,
             * checkpoint harvested): recycle them for the next decode. */
            deflate::DecodedDataPool::release( std::move( chunk.data ) );
            if ( endedStream ) {
                reachedStreamEnd = true;
                break;
            }
        }

        if ( !reachedStreamEnd ) {
            throw InvalidGzipStreamError(
                "Gzip stream ended before the final Deflate block — truncated file" );
        }
        member.crc32 = crc;
        member.footerStartByte = ceilDiv<std::size_t>( expectedBit, 8 );
        return member;
    }

private:
    /* Covers the boundary block overshooting the end guess in one read for
     * typical block sizes; the TRUNCATED retry loop (margin *= 4) widens it
     * for the rare longer block, so a small start avoids per-chunk read
     * amplification. */
    static constexpr std::size_t INITIAL_DECODE_OVERSHOOT = 256 * KiB;

    /* Pre-size heuristic for the decode buffers: gzip on text compresses
     * ~3-4x, so reserving 4x the compressed span usually avoids every
     * mid-decode reallocation; the cap bounds the speculative memory of a
     * pathological ratio chunk (the buffer still grows on demand past it). */
    static constexpr std::size_t EXPECTED_RATIO = 4;
    static constexpr std::size_t PRESIZE_CAP = 32 * MiB;
};

}  // namespace rapidgzip
