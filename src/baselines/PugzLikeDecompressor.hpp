#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../core/DeflateChunks.hpp"
#include "../gzip/GzipHeader.hpp"
#include "../io/SharedFileReader.hpp"

namespace rapidgzip {

/**
 * Emulation of pugz's synchronous parallel decompression pipeline, the
 * baseline in paper Figs. 9/11/12:
 *
 *  - chunks are decoded by worker threads, but the output stage is strictly
 *    serial and in-order — workers hand over to a synchronous validator, so
 *    the pipeline stalls on the slowest chunk (the paper's explanation for
 *    pugz saturating around 1.2-1.4 GB/s);
 *  - like pugz, only printable-ASCII text (bytes 9..126) is supported; any
 *    other byte aborts decompression (UnsupportedDataError), which is why
 *    this tool has no Fig. 10 (Silesia) row in the paper.
 */
class PugzLikeDecompressor
{
public:
    struct Options
    {
        std::size_t threadCount{ 1 };
        bool enforceAsciiRange{ true };
        std::size_t chunkSizeBytes{ 4 * MiB };
    };

    static constexpr std::uint8_t SUPPORTED_BYTE_MIN = 9;    /* '\t' */
    static constexpr std::uint8_t SUPPORTED_BYTE_MAX = 126;  /* '~' */

    explicit PugzLikeDecompressor( std::unique_ptr<FileReader> fileReader ) :
        PugzLikeDecompressor( std::move( fileReader ), Options() )
    {}

    PugzLikeDecompressor( std::unique_ptr<FileReader> fileReader,
                          Options options ) :
        m_file( ensureSharedFileReader( std::move( fileReader ) ) ),
        m_options( options )
    {
        if ( m_options.threadCount == 0 ) {
            m_options.threadCount = 1;
        }
    }

    /** Decompress the whole stream; returns the uncompressed byte count. */
    [[nodiscard]] std::size_t
    decompressAllSize()
    {
        const auto chunks = discoverChunks( *m_file, m_options.chunkSizeBytes );

        /* Sliding window of at most threadCount in-flight decodes; results
         * are consumed strictly in order through the serial output stage. */
        const std::shared_ptr<const FileReader> file( m_file->clone().release() );
        std::deque<std::future<DecodedChunk> > inFlight;
        std::size_t nextToDispatch = 0;
        std::size_t total = 0;

        const auto dispatch = [&] () {
            while ( ( nextToDispatch < chunks.size() )
                    && ( inFlight.size() < m_options.threadCount ) ) {
                const auto boundary = chunks[nextToDispatch++];
                inFlight.push_back( std::async( std::launch::async, [file, boundary] () {
                    return decodeRawDeflateChunk( *file, boundary.compressedBegin,
                                                  boundary.compressedEnd );
                } ) );
            }
        };

        dispatch();
        bool lastChunkEndedStream = false;
        while ( !inFlight.empty() ) {
            const auto chunk = inFlight.front().get();
            inFlight.pop_front();
            dispatch();

            /* The synchronous output stage: in-order validation. */
            if ( m_options.enforceAsciiRange ) {
                validateAsciiRange( chunk.data, total );
            }
            total += chunk.data.size();
            lastChunkEndedStream = chunk.reachedStreamEnd;
        }
        if ( !lastChunkEndedStream ) {
            throw InvalidGzipStreamError(
                "Gzip stream ended before the final Deflate block — truncated file" );
        }
        return total;
    }

private:
    static void
    validateAsciiRange( const std::vector<std::uint8_t>& data, std::size_t streamOffset )
    {
        for ( std::size_t i = 0; i < data.size(); ++i ) {
            const auto byte = data[i];
            if ( ( byte < SUPPORTED_BYTE_MIN ) || ( byte > SUPPORTED_BYTE_MAX ) ) {
                throw UnsupportedDataError(
                    "pugz-like decoder supports only ASCII bytes in [9, 126]; got byte "
                    + std::to_string( static_cast<unsigned>( byte ) ) + " at offset "
                    + std::to_string( streamOffset + i ) );
            }
        }
    }

    std::unique_ptr<SharedFileReader> m_file;
    Options m_options;
};

}  // namespace rapidgzip
