#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "Dispatch.hpp"

#if defined( RAPIDGZIP_SIMD_HAVE_X86_KERNELS )
    #include <immintrin.h>
#elif defined( RAPIDGZIP_SIMD_HAVE_NEON_KERNELS )
    #pragma GCC push_options
    #pragma GCC target ( "arch=armv8-a+crc" )
    #include <arm_acle.h>
    #pragma GCC pop_options
#endif

namespace rapidgzip::simd {

/**
 * The one CRC-32 implementation on every hot path: the gzip/zlib checksum
 * (polynomial 0xEDB88320, reflected, init/final XOR 0xFFFFFFFF), dispatched
 * at runtime. NOTE the x86 `crc32` INSTRUCTION does not apply — it hardwires
 * the Castagnoli polynomial 0x82F63B78 (CRC-32C, iSCSI), a different code
 * than gzip's IEEE 802.3 polynomial. The x86 fast path therefore uses
 * PCLMULQDQ carry-less-multiply folding (the Gopal/Ozturk Intel technique,
 * four 128-bit accumulators folding 64 input bytes per iteration, then a
 * Barrett reduction); AArch64 gets the dedicated ARMv8 CRC32 extension,
 * which DOES implement the IEEE polynomial (CRC32B/H/W/X, as opposed to its
 * CRC32CB/… siblings). The always-built scalar reference is slice-by-16
 * with compile-time-generated tables.
 *
 * crc32() below is call-compatible with zlib's ::crc32 (running,
 * non-inverted value in and out, 0 to start); crc32Combine() replaces
 * ::crc32_combine without the z_off_t length limit, using the GF(2)
 * x^(8*len) multiply-mod technique of modern zlib.
 */

namespace crc32detail {

inline constexpr std::uint32_t POLY = 0xEDB88320U;

struct Tables
{
    std::uint32_t t[16][256];
};

[[nodiscard]] constexpr Tables
generateTables() noexcept
{
    Tables tables{};
    for ( std::uint32_t i = 0; i < 256; ++i ) {
        auto value = i;
        for ( int bit = 0; bit < 8; ++bit ) {
            value = ( value & 1U ) != 0 ? ( value >> 1U ) ^ POLY : value >> 1U;
        }
        tables.t[0][i] = value;
    }
    for ( std::size_t slice = 1; slice < 16; ++slice ) {
        for ( std::uint32_t i = 0; i < 256; ++i ) {
            const auto previous = tables.t[slice - 1][i];
            tables.t[slice][i] = ( previous >> 8U ) ^ tables.t[0][previous & 0xFFU];
        }
    }
    return tables;
}

inline constexpr Tables TABLES = generateTables();

/** Little-endian 32-bit load (compilers fuse this into one load on LE). */
[[nodiscard]] inline std::uint32_t
loadLe32( const std::uint8_t* data ) noexcept
{
    return std::uint32_t( data[0] )
           | ( std::uint32_t( data[1] ) << 8U )
           | ( std::uint32_t( data[2] ) << 16U )
           | ( std::uint32_t( data[3] ) << 24U );
}

/** Slice-by-16 over the INTERNAL (pre-inverted) state. */
[[nodiscard]] inline std::uint32_t
updateSliceBy16( std::uint32_t state, const std::uint8_t* data, std::size_t size ) noexcept
{
    const auto& t = TABLES.t;
    while ( size >= 16 ) {
        const auto a = loadLe32( data ) ^ state;
        const auto b = loadLe32( data + 4 );
        const auto c = loadLe32( data + 8 );
        const auto d = loadLe32( data + 12 );
        state = t[15][a & 0xFFU] ^ t[14][( a >> 8U ) & 0xFFU]
                ^ t[13][( a >> 16U ) & 0xFFU] ^ t[12][a >> 24U]
                ^ t[11][b & 0xFFU] ^ t[10][( b >> 8U ) & 0xFFU]
                ^ t[9][( b >> 16U ) & 0xFFU] ^ t[8][b >> 24U]
                ^ t[7][c & 0xFFU] ^ t[6][( c >> 8U ) & 0xFFU]
                ^ t[5][( c >> 16U ) & 0xFFU] ^ t[4][c >> 24U]
                ^ t[3][d & 0xFFU] ^ t[2][( d >> 8U ) & 0xFFU]
                ^ t[1][( d >> 16U ) & 0xFFU] ^ t[0][d >> 24U];
        data += 16;
        size -= 16;
    }
    for ( ; size > 0; ++data, --size ) {
        state = ( state >> 8U ) ^ t[0][( state ^ *data ) & 0xFFU];
    }
    return state;
}

#if defined( RAPIDGZIP_SIMD_HAVE_X86_KERNELS )

/**
 * PCLMULQDQ folding over the internal state. Preconditions enforced by the
 * dispatcher: @p size >= 64 and @p size % 16 == 0. Folding constants are
 * the published reflected-domain values for the gzip polynomial
 * (k1 = x^(4*128+32), k2 = x^(4*128-32), k3 = x^(128+32), k4 = x^(128-32),
 * k5 = x^64, each mod P, bit-reflected; mu/P' for the Barrett step) —
 * verified in-tree against zlib by testSimd and the bench equivalence
 * checks.
 */
RAPIDGZIP_SIMD_TARGET( "pclmul,sse4.1" )
[[nodiscard]] inline std::uint32_t
updatePclmul( std::uint32_t state, const std::uint8_t* data, std::size_t size ) noexcept
{
    auto x1 = _mm_loadu_si128( reinterpret_cast<const __m128i*>( data ) );
    auto x2 = _mm_loadu_si128( reinterpret_cast<const __m128i*>( data + 0x10 ) );
    auto x3 = _mm_loadu_si128( reinterpret_cast<const __m128i*>( data + 0x20 ) );
    auto x4 = _mm_loadu_si128( reinterpret_cast<const __m128i*>( data + 0x30 ) );
    x1 = _mm_xor_si128( x1, _mm_cvtsi32_si128( static_cast<int>( state ) ) );
    data += 0x40;
    size -= 0x40;

    /* Fold 64 bytes per iteration across four independent accumulators. */
    auto k = _mm_set_epi64x( 0x00000001C6E41596LL, 0x0000000154442BD4LL );  /* k2 : k1 */
    while ( size >= 0x40 ) {
        const auto f1 = _mm_clmulepi64_si128( x1, k, 0x00 );
        const auto f2 = _mm_clmulepi64_si128( x2, k, 0x00 );
        const auto f3 = _mm_clmulepi64_si128( x3, k, 0x00 );
        const auto f4 = _mm_clmulepi64_si128( x4, k, 0x00 );
        x1 = _mm_clmulepi64_si128( x1, k, 0x11 );
        x2 = _mm_clmulepi64_si128( x2, k, 0x11 );
        x3 = _mm_clmulepi64_si128( x3, k, 0x11 );
        x4 = _mm_clmulepi64_si128( x4, k, 0x11 );
        x1 = _mm_xor_si128( _mm_xor_si128( x1, f1 ),
                            _mm_loadu_si128( reinterpret_cast<const __m128i*>( data ) ) );
        x2 = _mm_xor_si128( _mm_xor_si128( x2, f2 ),
                            _mm_loadu_si128( reinterpret_cast<const __m128i*>( data + 0x10 ) ) );
        x3 = _mm_xor_si128( _mm_xor_si128( x3, f3 ),
                            _mm_loadu_si128( reinterpret_cast<const __m128i*>( data + 0x20 ) ) );
        x4 = _mm_xor_si128( _mm_xor_si128( x4, f4 ),
                            _mm_loadu_si128( reinterpret_cast<const __m128i*>( data + 0x30 ) ) );
        data += 0x40;
        size -= 0x40;
    }

    /* Fold the four accumulators into one, then remaining 16-byte blocks. */
    k = _mm_set_epi64x( 0x00000000CCAA009ELL, 0x00000001751997D0LL );  /* k4 : k3 */
    auto fold = _mm_clmulepi64_si128( x1, k, 0x00 );
    x1 = _mm_clmulepi64_si128( x1, k, 0x11 );
    x1 = _mm_xor_si128( _mm_xor_si128( x1, fold ), x2 );
    fold = _mm_clmulepi64_si128( x1, k, 0x00 );
    x1 = _mm_clmulepi64_si128( x1, k, 0x11 );
    x1 = _mm_xor_si128( _mm_xor_si128( x1, fold ), x3 );
    fold = _mm_clmulepi64_si128( x1, k, 0x00 );
    x1 = _mm_clmulepi64_si128( x1, k, 0x11 );
    x1 = _mm_xor_si128( _mm_xor_si128( x1, fold ), x4 );
    while ( size >= 0x10 ) {
        fold = _mm_clmulepi64_si128( x1, k, 0x00 );
        x1 = _mm_clmulepi64_si128( x1, k, 0x11 );
        x1 = _mm_xor_si128( _mm_xor_si128( x1, fold ),
                            _mm_loadu_si128( reinterpret_cast<const __m128i*>( data ) ) );
        data += 0x10;
        size -= 0x10;
    }

    /* 128 -> 64 -> 32 reduction, then Barrett. */
    const auto low32 = _mm_setr_epi32( ~0, 0, ~0, 0 );
    auto r = _mm_clmulepi64_si128( x1, k, 0x10 );                      /* lo(x1) * k4 */
    x1 = _mm_xor_si128( _mm_srli_si128( x1, 8 ), r );
    k = _mm_set_epi64x( 0, 0x0000000163CD6124LL );                     /* k5 */
    r = _mm_srli_si128( x1, 4 );
    x1 = _mm_and_si128( x1, low32 );
    x1 = _mm_xor_si128( _mm_clmulepi64_si128( x1, k, 0x00 ), r );
    k = _mm_set_epi64x( 0x00000001F7011641LL, 0x00000001DB710641LL );  /* mu : P' */
    r = _mm_and_si128( x1, low32 );
    r = _mm_clmulepi64_si128( r, k, 0x10 );
    r = _mm_and_si128( r, low32 );
    r = _mm_clmulepi64_si128( r, k, 0x00 );
    x1 = _mm_xor_si128( x1, r );
    return static_cast<std::uint32_t>( _mm_extract_epi32( x1, 1 ) );
}

#endif  /* RAPIDGZIP_SIMD_HAVE_X86_KERNELS */

#if defined( RAPIDGZIP_SIMD_HAVE_NEON_KERNELS )

RAPIDGZIP_SIMD_TARGET( "arch=armv8-a+crc" )
[[nodiscard]] inline std::uint32_t
updateArmCrc( std::uint32_t state, const std::uint8_t* data, std::size_t size ) noexcept
{
    while ( size >= 8 ) {
        std::uint64_t word = std::uint64_t( data[0] )
                             | ( std::uint64_t( data[1] ) << 8U )
                             | ( std::uint64_t( data[2] ) << 16U )
                             | ( std::uint64_t( data[3] ) << 24U )
                             | ( std::uint64_t( data[4] ) << 32U )
                             | ( std::uint64_t( data[5] ) << 40U )
                             | ( std::uint64_t( data[6] ) << 48U )
                             | ( std::uint64_t( data[7] ) << 56U );
        state = __crc32d( state, word );
        data += 8;
        size -= 8;
    }
    for ( ; size > 0; ++data, --size ) {
        state = __crc32b( state, *data );
    }
    return state;
}

#endif  /* RAPIDGZIP_SIMD_HAVE_NEON_KERNELS */

/** Internal-state update dispatched by an explicit level. */
[[nodiscard]] inline std::uint32_t
updateAt( Level level, std::uint32_t state, const std::uint8_t* data, std::size_t size ) noexcept
{
#if defined( RAPIDGZIP_SIMD_HAVE_X86_KERNELS )
    if ( ( level >= Level::SSE41 ) && ( size >= 64 ) ) {
        const auto folded = size & ~std::size_t( 15 );
        state = updatePclmul( state, data, folded );
        data += folded;
        size -= folded;
    }
#elif defined( RAPIDGZIP_SIMD_HAVE_NEON_KERNELS )
    if ( ( level >= Level::NEON ) && hasArmCrc() ) {
        return updateArmCrc( state, data, size );
    }
#endif
    (void)level;
    return updateSliceBy16( state, data, size );
}

}  // namespace crc32detail

/** zlib-::crc32-compatible running update: pass 0 (or a previous return
 * value) as @p crc; size_t length, no uInt slicing needed. */
[[nodiscard]] inline std::uint32_t
crc32( std::uint32_t crc, const void* data, std::size_t size ) noexcept
{
    return ~crc32detail::updateAt( activeLevel(), ~crc,
                                   static_cast<const std::uint8_t*>( data ), size );
}

/** crc32() pinned to an explicit dispatch level (tests and benchmarks). */
[[nodiscard]] inline std::uint32_t
crc32At( Level level, std::uint32_t crc, const void* data, std::size_t size ) noexcept
{
    return ~crc32detail::updateAt( level, ~crc,
                                   static_cast<const std::uint8_t*>( data ), size );
}

namespace crc32detail {

/** GF(2) polynomial multiply modulo P, reflected representation
 * (bit 31 = x^0) — the machinery behind length-parameterized CRC
 * concatenation, as in modern zlib's crc32_combine. */
[[nodiscard]] constexpr std::uint32_t
multModP( std::uint32_t a, std::uint32_t b ) noexcept
{
    std::uint32_t product = 0;
    for ( std::uint32_t m = 1U << 31U; m != 0; m >>= 1U ) {
        if ( ( a & m ) != 0 ) {
            product ^= b;
        }
        b = ( b & 1U ) != 0 ? ( b >> 1U ) ^ POLY : b >> 1U;
    }
    return product;
}

/** X2N[k] = x^(2^k) mod P, by repeated squaring from x^1. */
[[nodiscard]] constexpr std::array<std::uint32_t, 32>
generateX2n() noexcept
{
    std::array<std::uint32_t, 32> table{};
    table[0] = 0x40000000U;  /* x^1 (reflected: bit 31 is x^0) */
    for ( std::size_t k = 1; k < table.size(); ++k ) {
        table[k] = multModP( table[k - 1], table[k - 1] );
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 32> X2N = generateX2n();

/** x^(n * 2^k) mod P. */
[[nodiscard]] constexpr std::uint32_t
x2nModP( std::uint64_t n, unsigned k ) noexcept
{
    std::uint32_t power = 1U << 31U;  /* x^0 */
    for ( ; n != 0; n >>= 1U, ++k ) {
        if ( ( n & 1U ) != 0 ) {
            power = multModP( X2N[k & 31U], power );
        }
    }
    return power;
}

}  // namespace crc32detail

/**
 * CRC of the concatenation A ++ B from crc(A), crc(B), and |B| — O(log |B|),
 * no 2 GiB z_off_t ceiling, valid for the full 64-bit length range.
 */
[[nodiscard]] constexpr std::uint32_t
crc32Combine( std::uint32_t crcA, std::uint32_t crcB, std::uint64_t lengthB ) noexcept
{
    return crc32detail::multModP( crc32detail::x2nModP( lengthB, 3 ), crcA ) ^ crcB;
}

}  // namespace rapidgzip::simd
