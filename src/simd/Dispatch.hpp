#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined( __x86_64__ ) || defined( __i386__ )
    #if defined( __GNUC__ ) || defined( __clang__ )
        #include <cpuid.h>
        #define RAPIDGZIP_SIMD_X86 1
    #endif
#elif defined( __aarch64__ )
    #if defined( __linux__ )
        #include <sys/auxv.h>
        #define RAPIDGZIP_SIMD_AARCH64 1
    #endif
#endif

/**
 * GCC/Clang can compile intrinsics inside individual functions carrying a
 * target attribute even when the translation unit is built without -mavx2
 * etc. — which is the only per-function mechanism available to a header-only
 * library (an INTERFACE CMake target has no translation units to give their
 * own -m flags). Everything vectorized in src/simd/ is gated on this.
 */
#if ( defined( __GNUC__ ) || defined( __clang__ ) ) \
    && ( defined( __x86_64__ ) || defined( __i386__ ) )
    #define RAPIDGZIP_SIMD_TARGET( features ) __attribute__(( target( features ) ))
    #define RAPIDGZIP_SIMD_HAVE_X86_KERNELS 1
#elif ( defined( __GNUC__ ) || defined( __clang__ ) ) && defined( __aarch64__ )
    #define RAPIDGZIP_SIMD_TARGET( features ) __attribute__(( target( features ) ))
    #define RAPIDGZIP_SIMD_HAVE_NEON_KERNELS 1
#else
    #define RAPIDGZIP_SIMD_TARGET( features )
#endif

namespace rapidgzip::simd {

/**
 * Runtime dispatch ladder. Levels are strictly ordered: a kernel compiled
 * for level L may be selected whenever the ACTIVE level is >= L. On x86 the
 * SSE41 rung additionally implies PCLMULQDQ (they co-appear since Westmere
 * and the CRC folding kernel needs both; a CPU with SSE4.1 but no PCLMULQDQ
 * reports SSE2). NEON is the aarch64 rung — x86 and ARM rungs never coexist
 * on one build, so one linear ladder covers both architectures.
 */
enum class Level : std::uint8_t
{
    SCALAR = 0,
    SSE2   = 1,
    SSE41  = 2,
    AVX2   = 3,
    NEON   = 4,
};

[[nodiscard]] inline const char*
toString( Level level ) noexcept
{
    switch ( level ) {
    case Level::SCALAR: return "scalar";
    case Level::SSE2:   return "sse2";
    case Level::SSE41:  return "sse41";
    case Level::AVX2:   return "avx2";
    case Level::NEON:   return "neon";
    }
    return "unknown";
}

/** Parse a RAPIDGZIP_SIMD value. Returns false for unknown spellings. */
[[nodiscard]] inline bool
parseLevel( const char* text, Level* result ) noexcept
{
    if ( ( text == nullptr ) || ( result == nullptr ) ) {
        return false;
    }
    const auto matches = [text] ( const char* name ) {
        return std::strcmp( text, name ) == 0;
    };
    if ( matches( "scalar" ) || matches( "0" ) ) {
        *result = Level::SCALAR;
    } else if ( matches( "sse2" ) ) {
        *result = Level::SSE2;
    } else if ( matches( "sse41" ) || matches( "sse4.1" ) ) {
        *result = Level::SSE41;
    } else if ( matches( "avx2" ) ) {
        *result = Level::AVX2;
    } else if ( matches( "neon" ) ) {
        *result = Level::NEON;
    } else {
        return false;
    }
    return true;
}

namespace detail {

#if defined( RAPIDGZIP_SIMD_X86 )

[[nodiscard]] inline std::uint64_t
readXcr0() noexcept
{
    std::uint32_t eax = 0;
    std::uint32_t edx = 0;
    __asm__ __volatile__ ( "xgetbv" : "=a" ( eax ), "=d" ( edx ) : "c" ( 0U ) );
    return ( std::uint64_t( edx ) << 32U ) | eax;
}

[[nodiscard]] inline Level
detectLevelUncached() noexcept
{
    std::uint32_t eax = 0;
    std::uint32_t ebx = 0;
    std::uint32_t ecx = 0;
    std::uint32_t edx = 0;
    if ( __get_cpuid( 1, &eax, &ebx, &ecx, &edx ) == 0 ) {
        return Level::SCALAR;
    }
    const bool sse2 = ( edx & ( 1U << 26U ) ) != 0;
    const bool sse41 = ( ecx & ( 1U << 19U ) ) != 0;
    const bool pclmul = ( ecx & ( 1U << 1U ) ) != 0;
    const bool osxsave = ( ecx & ( 1U << 27U ) ) != 0;
    const bool avx = ( ecx & ( 1U << 28U ) ) != 0;
    if ( !sse2 ) {
        return Level::SCALAR;
    }
    if ( !sse41 || !pclmul ) {
        return Level::SSE2;
    }
    /* AVX2: the CPUID bit alone is not enough — the OS must have enabled
     * YMM state saving (XCR0 bits 1 and 2), else executing a VEX.256
     * instruction faults. */
    bool avx2 = false;
    if ( avx && osxsave && ( ( readXcr0() & 0x6U ) == 0x6U ) ) {
        std::uint32_t eax7 = 0;
        std::uint32_t ebx7 = 0;
        std::uint32_t ecx7 = 0;
        std::uint32_t edx7 = 0;
        if ( __get_cpuid_count( 7, 0, &eax7, &ebx7, &ecx7, &edx7 ) != 0 ) {
            avx2 = ( ebx7 & ( 1U << 5U ) ) != 0;
        }
    }
    return avx2 ? Level::AVX2 : Level::SSE41;
}

/** ARM-only feature on this build. */
[[nodiscard]] inline bool
hasArmCrcUncached() noexcept
{
    return false;
}

#elif defined( RAPIDGZIP_SIMD_AARCH64 )

[[nodiscard]] inline Level
detectLevelUncached() noexcept
{
    return Level::NEON;  /* Advanced SIMD is architecturally baseline on AArch64. */
}

[[nodiscard]] inline bool
hasArmCrcUncached() noexcept
{
    #if defined( HWCAP_CRC32 )
    return ( ::getauxval( AT_HWCAP ) & HWCAP_CRC32 ) != 0;
    #else
    return false;
    #endif
}

#else

[[nodiscard]] inline Level
detectLevelUncached() noexcept
{
    return Level::SCALAR;
}

[[nodiscard]] inline bool
hasArmCrcUncached() noexcept
{
    return false;
}

#endif

[[nodiscard]] inline std::atomic<Level>&
activeLevelState() noexcept
{
    static std::atomic<Level> state{ Level( 0xFF ) };  /* 0xFF = uninitialized */
    return state;
}

}  // namespace detail

/** The highest level the running CPU supports (cached after first call). */
[[nodiscard]] inline Level
detectedLevel() noexcept
{
    static const Level level = detail::detectLevelUncached();
    return level;
}

/** ARMv8 CRC32 extension (orthogonal to the NEON rung; CRC-kernel only). */
[[nodiscard]] inline bool
hasArmCrc() noexcept
{
    static const bool value = detail::hasArmCrcUncached();
    return value;
}

/**
 * Force the active dispatch level for this process (testing / pinning).
 * Requests above what the CPU supports are clamped; returns the level that
 * is now active. Thread-safe but not atomic with in-flight kernel calls —
 * callers flip it between operations, not during.
 */
inline Level
forceLevel( Level requested ) noexcept
{
    const auto applied = requested <= detectedLevel() ? requested : detectedLevel();
    detail::activeLevelState().store( applied, std::memory_order_relaxed );
    return applied;
}

/**
 * The level every dispatched kernel selects by: the detected maximum,
 * clamped by a RAPIDGZIP_SIMD environment override (unknown spellings are
 * ignored — a typo must not silently drop to scalar), overridable at run
 * time via forceLevel().
 */
[[nodiscard]] inline Level
activeLevel() noexcept
{
    auto& state = detail::activeLevelState();
    auto level = state.load( std::memory_order_relaxed );
    if ( level != Level( 0xFF ) ) {
        return level;
    }
    level = detectedLevel();
    Level requested{};
    if ( parseLevel( std::getenv( "RAPIDGZIP_SIMD" ), &requested )
         && ( requested < level ) ) {
        level = requested;
    }
    state.store( level, std::memory_order_relaxed );
    return level;
}

/**
 * The dispatch levels this binary both compiled kernels for and can execute
 * on this CPU — what testSimd iterates to prove lockstep equivalence.
 * SCALAR is always first.
 */
[[nodiscard]] inline std::vector<Level>
supportedLevels()
{
    std::vector<Level> levels{ Level::SCALAR };
    const auto detected = detectedLevel();
#if defined( RAPIDGZIP_SIMD_HAVE_X86_KERNELS )
    for ( const auto level : { Level::SSE2, Level::SSE41, Level::AVX2 } ) {
        if ( level <= detected ) {
            levels.push_back( level );
        }
    }
#elif defined( RAPIDGZIP_SIMD_HAVE_NEON_KERNELS )
    if ( Level::NEON <= detected ) {
        levels.push_back( Level::NEON );
    }
#endif
    return levels;
}

}  // namespace rapidgzip::simd
