#pragma once

#include <cstddef>
#include <cstdint>

#include "Dispatch.hpp"

#if defined( RAPIDGZIP_SIMD_HAVE_X86_KERNELS )
    #include <immintrin.h>
#elif defined( RAPIDGZIP_SIMD_HAVE_NEON_KERNELS )
    #include <arm_neon.h>
#endif

namespace rapidgzip::simd {

/**
 * Stage two of the paper's two-stage decoder, as a dispatchable kernel:
 * narrow 16-bit symbols to bytes, replacing marker symbols (high bit set,
 * i.e. >= deflate::MARKER_BASE = 0x8000) with the referenced byte of the
 * 32 KiB pre-chunk window. Exact contract, for EVERY possible 16-bit input
 * (the lockstep tests feed arbitrary symbols, not just decoder-reachable
 * ones):
 *
 *   output[i] = symbols[i] < 0x8000 ? uint8_t( symbols[i] )          (low byte)
 *                                   : recent[symbols[i] & 0x7FFF]
 *
 * @p recent must point at the last 32768 bytes of history (the full-window
 * hot path; the short-window cold path stays scalar in DecodedData.hpp).
 *
 * Vectorization: MARKER_BASE == 0x8000 makes the int16 SIGN BIT the marker
 * flag, so marker detection is one arithmetic shift + movemask, and the
 * narrowing store is a mask + pack. Marker-free vectors — the overwhelming
 * majority beyond the first 32 KiB of a chunk — finish with zero scalar
 * work (the "memcpy sweep": a straight pack-and-store pass); vectors with
 * markers patch only the flagged lanes, walking the set bits of the mask.
 */

inline void
replaceMarkersScalar( const std::uint16_t* symbols,
                      std::size_t size,
                      const std::uint8_t* recent,
                      std::uint8_t* output ) noexcept
{
    for ( std::size_t i = 0; i < size; ++i ) {
        const auto symbol = symbols[i];
        output[i] = symbol < 0x8000U
                    ? static_cast<std::uint8_t>( symbol )
                    : recent[symbol & 0x7FFFU];
    }
}

namespace detail {

[[nodiscard]] inline unsigned
countTrailingZeros( std::uint32_t value ) noexcept
{
#if defined( __GNUC__ ) || defined( __clang__ )
    return static_cast<unsigned>( __builtin_ctz( value ) );
#else
    unsigned count = 0;
    while ( ( value & 1U ) == 0 ) {
        value >>= 1U;
        ++count;
    }
    return count;
#endif
}

}  // namespace detail

#if defined( RAPIDGZIP_SIMD_HAVE_X86_KERNELS )

RAPIDGZIP_SIMD_TARGET( "sse2" )
inline void
replaceMarkersSse2( const std::uint16_t* symbols,
                    std::size_t size,
                    const std::uint8_t* recent,
                    std::uint8_t* output ) noexcept
{
    const auto lowBytes = _mm_set1_epi16( 0x00FF );
    std::size_t i = 0;
    for ( ; i + 16 <= size; i += 16 ) {
        const auto a = _mm_loadu_si128( reinterpret_cast<const __m128i*>( symbols + i ) );
        const auto b = _mm_loadu_si128( reinterpret_cast<const __m128i*>( symbols + i + 8 ) );
        /* Masking to the low byte BEFORE the unsigned-saturating pack keeps
         * the exact low-byte truncation of the scalar contract (packus alone
         * would saturate 256..32767 to 255); marker lanes pack to garbage
         * and are overwritten below. */
        const auto packed = _mm_packus_epi16( _mm_and_si128( a, lowBytes ),
                                              _mm_and_si128( b, lowBytes ) );
        _mm_storeu_si128( reinterpret_cast<__m128i*>( output + i ), packed );

        /* Sign bit = marker flag; signed-saturating pack keeps 0/-1 words as
         * 0/-1 bytes, so movemask yields one bit per SYMBOL in order. */
        auto markers = static_cast<std::uint32_t>( _mm_movemask_epi8(
            _mm_packs_epi16( _mm_srai_epi16( a, 15 ), _mm_srai_epi16( b, 15 ) ) ) );
        while ( markers != 0 ) {
            const auto lane = detail::countTrailingZeros( markers );
            output[i + lane] = recent[symbols[i + lane] & 0x7FFFU];
            markers &= markers - 1U;
        }
    }
    replaceMarkersScalar( symbols + i, size - i, recent, output + i );
}

RAPIDGZIP_SIMD_TARGET( "avx2" )
inline void
replaceMarkersAvx2( const std::uint16_t* symbols,
                    std::size_t size,
                    const std::uint8_t* recent,
                    std::uint8_t* output ) noexcept
{
    const auto lowBytes = _mm256_set1_epi16( 0x00FF );
    std::size_t i = 0;
    for ( ; i + 32 <= size; i += 32 ) {
        const auto a = _mm256_loadu_si256( reinterpret_cast<const __m256i*>( symbols + i ) );
        const auto b = _mm256_loadu_si256( reinterpret_cast<const __m256i*>( symbols + i + 16 ) );
        /* AVX2 packs operate per 128-bit lane ([a0,b0,a1,b1]); the 64-bit
         * permute restores symbol order for both the store and the mask. */
        auto packed = _mm256_packus_epi16( _mm256_and_si256( a, lowBytes ),
                                           _mm256_and_si256( b, lowBytes ) );
        packed = _mm256_permute4x64_epi64( packed, 0xD8 );
        _mm256_storeu_si256( reinterpret_cast<__m256i*>( output + i ), packed );

        auto signs = _mm256_packs_epi16( _mm256_srai_epi16( a, 15 ),
                                         _mm256_srai_epi16( b, 15 ) );
        signs = _mm256_permute4x64_epi64( signs, 0xD8 );
        auto markers = static_cast<std::uint32_t>( _mm256_movemask_epi8( signs ) );
        while ( markers != 0 ) {
            const auto lane = detail::countTrailingZeros( markers );
            output[i + lane] = recent[symbols[i + lane] & 0x7FFFU];
            markers &= markers - 1U;
        }
    }
    replaceMarkersScalar( symbols + i, size - i, recent, output + i );
}

#endif  /* RAPIDGZIP_SIMD_HAVE_X86_KERNELS */

#if defined( RAPIDGZIP_SIMD_HAVE_NEON_KERNELS )

inline void
replaceMarkersNeon( const std::uint16_t* symbols,
                    std::size_t size,
                    const std::uint8_t* recent,
                    std::uint8_t* output ) noexcept
{
    const auto markerBase = vdupq_n_u16( 0x8000U );
    std::size_t i = 0;
    for ( ; i + 16 <= size; i += 16 ) {
        const auto a = vld1q_u16( symbols + i );
        const auto b = vld1q_u16( symbols + i + 8 );
        /* vmovn keeps the low byte — exactly the scalar truncation. */
        const auto packed = vcombine_u8( vmovn_u16( a ), vmovn_u16( b ) );
        vst1q_u8( output + i, packed );

        const auto markerBytes = vcombine_u8( vmovn_u16( vcgeq_u16( a, markerBase ) ),
                                              vmovn_u16( vcgeq_u16( b, markerBase ) ) );
        auto low = vgetq_lane_u64( vreinterpretq_u64_u8( markerBytes ), 0 );
        auto high = vgetq_lane_u64( vreinterpretq_u64_u8( markerBytes ), 1 );
        for ( unsigned lane = 0; low != 0; low >>= 8U, ++lane ) {
            if ( ( low & 0xFFU ) != 0 ) {
                output[i + lane] = recent[symbols[i + lane] & 0x7FFFU];
            }
        }
        for ( unsigned lane = 8; high != 0; high >>= 8U, ++lane ) {
            if ( ( high & 0xFFU ) != 0 ) {
                output[i + lane] = recent[symbols[i + lane] & 0x7FFFU];
            }
        }
    }
    replaceMarkersScalar( symbols + i, size - i, recent, output + i );
}

#endif  /* RAPIDGZIP_SIMD_HAVE_NEON_KERNELS */

/** Kernel for an EXPLICIT level (tests and benchmarks iterate levels this
 * way); levels without a dedicated kernel fall back to the next lower one. */
inline void
replaceMarkersAt( Level level,
                  const std::uint16_t* symbols,
                  std::size_t size,
                  const std::uint8_t* recent,
                  std::uint8_t* output ) noexcept
{
#if defined( RAPIDGZIP_SIMD_HAVE_X86_KERNELS )
    if ( level >= Level::AVX2 ) {
        replaceMarkersAvx2( symbols, size, recent, output );
        return;
    }
    if ( level >= Level::SSE2 ) {  /* SSE41 has no wider pack — reuse SSE2. */
        replaceMarkersSse2( symbols, size, recent, output );
        return;
    }
#elif defined( RAPIDGZIP_SIMD_HAVE_NEON_KERNELS )
    if ( level >= Level::NEON ) {
        replaceMarkersNeon( symbols, size, recent, output );
        return;
    }
#endif
    (void)level;
    replaceMarkersScalar( symbols, size, recent, output );
}

/** The dispatched hot-path entry point. */
inline void
replaceMarkers( const std::uint16_t* symbols,
                std::size_t size,
                const std::uint8_t* recent,
                std::uint8_t* output ) noexcept
{
    replaceMarkersAt( activeLevel(), symbols, size, recent, output );
}

}  // namespace rapidgzip::simd
