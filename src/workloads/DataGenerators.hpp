#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "../common/Util.hpp"

namespace rapidgzip::workloads {

/**
 * Deterministic synthetic workloads for the paper-figure reproductions.
 * All generators are pure functions of (size, seed) so every benchmark and
 * test sees bit-identical data across runs and machines.
 */

/** Incompressible data spanning the full byte range. */
[[nodiscard]] inline std::vector<std::uint8_t>
randomData( std::size_t size, std::uint64_t seed )
{
    std::vector<std::uint8_t> result( size );
    Xorshift64 random( seed );
    std::size_t i = 0;
    for ( ; i + sizeof( std::uint64_t ) <= size; i += sizeof( std::uint64_t ) ) {
        const auto value = random();
        std::memcpy( result.data() + i, &value, sizeof( value ) );
    }
    for ( auto value = random(); i < size; ++i, value >>= 8U ) {
        result[i] = static_cast<std::uint8_t>( value & 0xFFU );
    }
    return result;
}

/**
 * Base64-encoded random data with 76-character lines, mimicking the paper's
 * Fig. 9 workload: pure printable ASCII, compresses to mostly Huffman-coded
 * literals whose backward pointers die out quickly.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
base64Data( std::size_t size, std::uint64_t seed )
{
    static constexpr char ALPHABET[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    constexpr std::size_t LINE_LENGTH = 76;

    std::vector<std::uint8_t> result( size );
    Xorshift64 random( seed );
    std::size_t column = 0;
    for ( std::size_t i = 0; i < size; ++i ) {
        if ( column == LINE_LENGTH ) {
            result[i] = '\n';
            column = 0;
        } else {
            result[i] = static_cast<std::uint8_t>( ALPHABET[random.below( 64 )] );
            ++column;
        }
    }
    return result;
}

/**
 * Synthetic FASTQ records (4 lines: @id, bases, +, qualities), the Fig. 11
 * workload: ASCII-only, highly repetitive headers, low-entropy base lines.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
fastqData( std::size_t size, std::uint64_t seed )
{
    static constexpr char BASES[] = "ACGT";

    std::vector<std::uint8_t> result;
    result.reserve( size + 512 );
    Xorshift64 random( seed );

    std::uint64_t readId = 0;
    while ( result.size() < size ) {
        char header[96];
        const int headerLength = std::snprintf(
            header, sizeof( header ), "@SIM:1:FCX:1:15:%llu:%llu 1:N:0:2\n",
            static_cast<unsigned long long>( 1000 + readId % 9000 ),
            static_cast<unsigned long long>( readId ) );
        result.insert( result.end(), header, header + headerLength );
        ++readId;

        const std::size_t readLength = 90 + random.below( 21 );
        for ( std::size_t i = 0; i < readLength; ++i ) {
            result.push_back( static_cast<std::uint8_t>( BASES[random.below( 4 )] ) );
        }
        result.push_back( '\n' );
        result.push_back( '+' );
        result.push_back( '\n' );
        for ( std::size_t i = 0; i < readLength; ++i ) {
            /* Phred+33 qualities clustered at the high end like real reads. */
            result.push_back( static_cast<std::uint8_t>( 'I' - random.below( 9 ) ) );
        }
        result.push_back( '\n' );
    }
    result.resize( size );
    return result;
}

/**
 * Long byte runs with geometrically distributed lengths — the RLE-heavy
 * extreme every entropy coder special-cases (bzip2's RLE1 stage, LZ4's
 * overlapping offset-1 matches, Deflate's length-258 chains). Exercises
 * exactly the code paths a uniform random corpus never touches: maximal
 * match lengths, overlap copies, and bzip2's run-length escape at 251+
 * repeats.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
runsData( std::size_t size, std::uint64_t seed )
{
    std::vector<std::uint8_t> result;
    result.reserve( size );
    Xorshift64 random( seed );
    while ( result.size() < size ) {
        const auto value = static_cast<std::uint8_t>( random.below( 8 ) * 31 );
        /* Geometric-ish: mostly short runs, occasionally thousands long. */
        auto length = 1 + random.below( 16 );
        if ( random.below( 8 ) == 0 ) {
            length = 64 + random.below( 4096 );
        }
        length = std::min( length, size - result.size() );
        result.insert( result.end(), length, value );
    }
    return result;
}

/**
 * Boundary-heavy LZ windows: repeated phrases whose lengths hover around
 * the writers' block/frame boundaries (64 KiB, 256 KiB) so back-references
 * constantly WANT to cross chunk borders. For formats cut into independent
 * blocks this is the adversarial input — the compressor must cut matches
 * at each boundary and the reader must not let state leak across — and for
 * the gzip two-stage decoder it maximizes surviving markers. Phrase
 * distances are drawn near 1, 2^15 (the Deflate window), and 2^16 (the LZ4
 * offset limit) to sit on every off-by-one edge.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
lzBoundaryData( std::size_t size, std::uint64_t seed )
{
    std::vector<std::uint8_t> result;
    result.reserve( size );
    Xorshift64 random( seed );

    static constexpr std::size_t EDGES[] = { 1, 2, 7, 8,
                                             32 * KiB - 1, 32 * KiB, 32 * KiB + 1,
                                             64 * KiB - 1, 64 * KiB };
    while ( result.size() < size ) {
        if ( ( result.size() < 64 ) || ( random.below( 4 ) == 0 ) ) {
            /* Fresh literal material. */
            const auto length = std::min<std::size_t>( 16 + random.below( 64 ),
                                                       size - result.size() );
            for ( std::size_t i = 0; i < length; ++i ) {
                result.push_back( static_cast<std::uint8_t>( random.below( 256 ) ) );
            }
            continue;
        }
        /* Copy from an edge-case distance back; lengths may exceed the
         * distance, producing overlapping (RLE-like) matches. */
        auto distance = EDGES[random.below( sizeof( EDGES ) / sizeof( EDGES[0] ) )];
        distance = std::min( distance, result.size() );
        const auto length = std::min<std::size_t>( 4 + random.below( 512 ),
                                                   size - result.size() );
        for ( std::size_t i = 0; i < length; ++i ) {
            result.push_back( result[result.size() - distance] );
        }
    }
    return result;
}

/**
 * Mixed text/binary corpus standing in for Silesia (Fig. 10; see DESIGN.md):
 * alternating 64 KiB segments of English-like text, binary records with
 * non-ASCII bytes, LZ-friendly near-repeats of earlier content, and random
 * data. Backward pointers stay alive across large distances, and the binary
 * segments put it outside pugz's supported byte range — both properties the
 * paper's Silesia results hinge on. The first segment is always binary so
 * byte-range-restricted decompressors fail fast, as pugz does in Fig. 10.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
silesiaLikeData( std::size_t size, std::uint64_t seed )
{
    static constexpr const char* WORDS[] = {
        "the", "of", "compression", "corpus", "model", "data", "window",
        "pointer", "block", "stream", "entropy", "symbol", "archive",
        "medical", "image", "database", "protein", "sequence", "xml",
    };
    constexpr std::size_t SEGMENT = 64 * KiB;

    std::vector<std::uint8_t> result;
    result.reserve( size );
    Xorshift64 random( seed );

    std::size_t segmentIndex = 0;
    while ( result.size() < size ) {
        const auto segmentEnd = std::min( result.size() + SEGMENT, size );
        const auto mode = segmentIndex == 0 ? 1U : static_cast<unsigned>( random.below( 4 ) );
        switch ( mode ) {
        case 0:  /* English-like text */
            while ( result.size() < segmentEnd ) {
                const char* word = WORDS[random.below( sizeof( WORDS ) / sizeof( WORDS[0] ) )];
                result.insert( result.end(), word, word + std::strlen( word ) );
                result.push_back( random.below( 12 ) == 0 ? '\n' : ' ' );
            }
            break;
        case 1:  /* binary records: small integers => many 0x00/0xFF/high bytes */
            while ( result.size() < segmentEnd ) {
                const auto value = static_cast<std::uint32_t>(
                    random.below( 4096 ) * ( random.below( 2 ) == 0 ? 1U : 0x00FFFFFFU ) );
                const std::uint8_t record[8] = {
                    static_cast<std::uint8_t>( value & 0xFFU ),
                    static_cast<std::uint8_t>( ( value >> 8U ) & 0xFFU ),
                    static_cast<std::uint8_t>( ( value >> 16U ) & 0xFFU ),
                    static_cast<std::uint8_t>( ( value >> 24U ) & 0xFFU ),
                    0x00U, 0xC3U, 0x80U,
                    static_cast<std::uint8_t>( random.below( 256 ) ),
                };
                result.insert( result.end(), record, record + sizeof( record ) );
            }
            break;
        case 2:  /* near-repeat of earlier content => long-range backward pointers */
            if ( result.empty() ) {
                result.push_back( 0 );
            }
            while ( result.size() < segmentEnd ) {
                const auto copyLength = std::min<std::size_t>( 256 + random.below( 1024 ),
                                                               result.size() );
                const auto copyStart = random.below( result.size() - copyLength + 1 );
                const auto previousSize = result.size();
                result.resize( previousSize + copyLength );
                std::memcpy( result.data() + previousSize, result.data() + copyStart, copyLength );
                if ( random.below( 4 ) == 0 ) {
                    result.back() = static_cast<std::uint8_t>( random.below( 256 ) );
                }
            }
            break;
        default:  /* incompressible stretch */
            while ( result.size() < segmentEnd ) {
                result.push_back( static_cast<std::uint8_t>( random.below( 256 ) ) );
            }
            break;
        }
        ++segmentIndex;
    }
    result.resize( size );
    return result;
}

}  // namespace rapidgzip::workloads
