#pragma once

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "../common/Error.hpp"
#include "../core/ChunkCache.hpp"
#include "../formats/Sidecar.hpp"

namespace rapidgzip::serve {

/** Thrown when a request names something outside the served tree or not
 * present on disk — the server maps it to 404. */
class ArchiveNotFoundError : public RapidgzipError
{
public:
    using RapidgzipError::RapidgzipError;
};

/** Thrown when an archive's admission semaphore is full — the server maps
 * it to 503 + Retry-After so one cold sweep cannot starve the pool. */
class ArchiveBusyError : public RapidgzipError
{
public:
    using RapidgzipError::RapidgzipError;
};

/** Limits governing the registry's failure behavior. */
struct RegistryLimits
{
    /** Concurrent consumers (holding or waiting on a lease) per archive;
     * 0 = unlimited. The excess consumer is refused, not queued. */
    std::size_t maxConsumersPerArchive{ 0 };
    /** Initial negative-cache hold after a failed open; doubles per repeat
     * failure (capped at 64×). 0 disables negative caching. */
    std::uint32_t failedOpenBackoffMs{ 1000 };
};

/**
 * What makes an archive THE archive: its resolved path plus the size and
 * mtime observed at open. The token feeds ChunkFetcher's shared-cache
 * keys, so replacing a file on disk (same path, new content ⇒ new
 * size/mtime) changes the identity and strands the stale cache entries
 * instead of serving them.
 */
struct ArchiveIdentity
{
    std::string path;
    std::size_t sizeBytes{ 0 };
    std::int64_t mtime{ 0 };

    [[nodiscard]] std::uint64_t
    token() const noexcept
    {
        /* FNV-1a over the path, then splitmix the stat fields in. */
        std::uint64_t hash = 0xCBF29CE484222325ULL;
        for ( const auto character : path ) {
            hash = ( hash ^ static_cast<std::uint8_t>( character ) ) * 0x100000001B3ULL;
        }
        return mixHash( hash )
               ^ mixHash( sizeBytes )
               ^ mixHash( static_cast<std::uint64_t>( mtime ) );
    }

    [[nodiscard]] bool
    operator==( const ArchiveIdentity& other ) const noexcept
    {
        return ( path == other.path ) && ( sizeBytes == other.sizeBytes )
               && ( mtime == other.mtime );
    }
};

/**
 * The daemon's table of open archives: URL path → lazily opened
 * Decompressor, bounded by an LRU over open readers. Every open flows
 * through formats::openArchive, so format detection and sidecar-index
 * adoption apply uniformly, and every reader is wired to the process-wide
 * chunk cache with its identity token.
 *
 * Decompressors are single-consumer objects (one consumer thread; the
 * parallelism is the chunk decoding underneath), so a Lease holds the
 * entry's mutex for the duration of a request — concurrent requests to
 * the SAME archive serialize at the reader while different archives
 * proceed in parallel, and cross-request reuse of decoded chunks happens
 * in the shared cache tier below.
 */
class ArchiveRegistry
{
public:
    ArchiveRegistry( std::string rootDirectory,
                     std::size_t maxArchives,
                     std::shared_ptr<ChunkCache> sharedCache,
                     ChunkFetcherConfiguration readerConfiguration,
                     RegistryLimits limits = {} ) :
        m_rootDirectory( std::move( rootDirectory ) ),
        m_maxArchives( std::max<std::size_t>( 1, maxArchives ) ),
        m_sharedCache( std::move( sharedCache ) ),
        m_readerConfiguration( std::move( readerConfiguration ) ),
        m_limits( limits )
    {}

    struct Entry
    {
        ArchiveIdentity identity;
        std::unique_ptr<formats::Decompressor> decompressor;
        std::mutex consumerMutex;  /**< serializes the single-consumer reader */
        std::uint64_t lastUse{ 0 };
        /** Consumers holding or waiting on a lease — the admission
         * semaphore's count. Incremented before blocking on consumerMutex
         * so queued waiters count against the archive's budget too. */
        std::atomic<std::size_t> pendingConsumers{ 0 };
    };

    class Lease
    {
    public:
        Lease( std::shared_ptr<Entry> entry, std::unique_lock<std::mutex> lock ) :
            m_entry( std::move( entry ) ),
            m_lock( std::move( lock ) )
        {}

        Lease( Lease&& ) = default;
        Lease( const Lease& ) = delete;
        Lease& operator=( Lease&& ) = delete;
        Lease& operator=( const Lease& ) = delete;

        ~Lease()
        {
            if ( m_entry ) {
                m_entry->pendingConsumers.fetch_sub( 1, std::memory_order_relaxed );
            }
        }

        [[nodiscard]] formats::Decompressor&
        decompressor() const noexcept
        {
            return *m_entry->decompressor;
        }

    private:
        std::shared_ptr<Entry> m_entry;
        std::unique_lock<std::mutex> m_lock;
    };

    /**
     * Open (or reuse) the archive behind @p urlPath — "/name.gz" relative
     * to the served root. Throws ArchiveNotFoundError for traversal
     * attempts and missing files; format errors (unknown magic, vendor
     * library absent) propagate as their own types.
     */
    [[nodiscard]] Lease
    open( const std::string& urlPath )
    {
        const auto filePath = resolve( urlPath );
        const auto identity = identify( filePath );

        std::shared_ptr<Entry> entry;
        {
            const std::lock_guard<std::mutex> lock( m_mutex );
            ++m_useClock;
            checkNegativeCache( filePath, identity );
            const auto match = m_entries.find( filePath );
            if ( ( match != m_entries.end() ) && ( match->second->identity == identity ) ) {
                match->second->lastUse = m_useClock;
                entry = match->second;
            } else {
                if ( match != m_entries.end() ) {
                    m_entries.erase( match );  /* file changed on disk: reopen */
                }
                entry = std::make_shared<Entry>();
                entry->identity = identity;
                entry->lastUse = m_useClock;
                m_entries.emplace( filePath, entry );
                evictOverflow();
            }
        }

        /* Admission: count this consumer in BEFORE blocking on the
         * consumer mutex — the semaphore bounds waiters, which is exactly
         * how one cold 100 GB sweep would otherwise absorb every worker. */
        const auto pending = entry->pendingConsumers.fetch_add( 1, std::memory_order_relaxed ) + 1;
        if ( ( m_limits.maxConsumersPerArchive > 0 )
             && ( pending > m_limits.maxConsumersPerArchive ) ) {
            entry->pendingConsumers.fetch_sub( 1, std::memory_order_relaxed );
            throw ArchiveBusyError( "Archive '" + urlPath + "' is at its concurrency limit ("
                                    + std::to_string( m_limits.maxConsumersPerArchive ) + ")" );
        }

        /* The open itself (possibly a discovery sweep) runs outside the
         * registry lock, under the entry's consumer mutex, so opening one
         * slow archive never blocks requests for others. */
        std::unique_lock<std::mutex> consumerLock( entry->consumerMutex );
        if ( !entry->decompressor ) {
            auto configuration = m_readerConfiguration;
            configuration.sharedCache = m_sharedCache;
            configuration.cacheIdentity = identity.token();
            try {
                entry->decompressor = formats::openArchive( filePath, configuration );
            } catch ( const std::exception& exception ) {
                entry->pendingConsumers.fetch_sub( 1, std::memory_order_relaxed );
                recordFailedOpen( filePath, identity, exception.what() );
                throw;
            }
            clearFailedOpen( filePath );
        }
        return Lease( std::move( entry ), std::move( consumerLock ) );
    }

    [[nodiscard]] std::size_t
    openCount() const
    {
        const std::lock_guard<std::mutex> lock( m_mutex );
        return m_entries.size();
    }

private:
    /** Reject traversal; map "/name" under the served root. */
    [[nodiscard]] std::string
    resolve( const std::string& urlPath ) const
    {
        if ( urlPath.empty() || ( urlPath.front() != '/' )
             || ( urlPath.find( '\0' ) != std::string::npos ) ) {
            throw ArchiveNotFoundError( "Malformed request path" );
        }
        /* Component-wise ".." check — catches "/../x", "/a/../../x", … */
        std::size_t begin = 1;
        while ( begin <= urlPath.size() ) {
            auto end = urlPath.find( '/', begin );
            if ( end == std::string::npos ) {
                end = urlPath.size();
            }
            if ( urlPath.compare( begin, end - begin, ".." ) == 0 ) {
                throw ArchiveNotFoundError( "Path traversal rejected" );
            }
            begin = end + 1;
        }
        return m_rootDirectory + urlPath;
    }

    [[nodiscard]] static ArchiveIdentity
    identify( const std::string& filePath )
    {
        struct stat fileStat{};
        if ( ( ::stat( filePath.c_str(), &fileStat ) != 0 ) || !S_ISREG( fileStat.st_mode ) ) {
            throw ArchiveNotFoundError( "No such archive: " + filePath );
        }
        ArchiveIdentity identity;
        identity.path = filePath;
        identity.sizeBytes = static_cast<std::size_t>( fileStat.st_size );
        identity.mtime = static_cast<std::int64_t>( fileStat.st_mtime );
        return identity;
    }

    [[nodiscard]] static std::uint64_t
    nowMilliseconds() noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch() ).count() );
    }

    /** Caller must hold m_mutex. Throws the cached failure while the
     * backoff window holds; a changed identity (file replaced on disk)
     * clears the grudge immediately. */
    void
    checkNegativeCache( const std::string& filePath, const ArchiveIdentity& identity )
    {
        const auto match = m_failedOpens.find( filePath );
        if ( match == m_failedOpens.end() ) {
            return;
        }
        if ( !( match->second.identity == identity ) ) {
            m_failedOpens.erase( match );
            return;
        }
        if ( nowMilliseconds() < match->second.retryAtMs ) {
            throw RapidgzipError( match->second.message + " (cached failure; open backoff active)" );
        }
        /* Window expired: let this caller retry; the entry stays so a
         * repeat failure doubles the backoff instead of restarting it. */
    }

    void
    recordFailedOpen( const std::string& filePath,
                      const ArchiveIdentity& identity,
                      const std::string& message )
    {
        if ( m_limits.failedOpenBackoffMs == 0 ) {
            return;
        }
        const std::lock_guard<std::mutex> lock( m_mutex );
        auto& failure = m_failedOpens[filePath];
        failure.identity = identity;
        failure.message = message;
        failure.consecutiveFailures = std::min<std::uint32_t>( failure.consecutiveFailures + 1, 7 );
        const auto backoff = static_cast<std::uint64_t>( m_limits.failedOpenBackoffMs )
                             << ( failure.consecutiveFailures - 1 );
        failure.retryAtMs = nowMilliseconds() + backoff;
    }

    void
    clearFailedOpen( const std::string& filePath )
    {
        const std::lock_guard<std::mutex> lock( m_mutex );
        m_failedOpens.erase( filePath );
    }

    /** Caller must hold m_mutex. Evicts least-recently-used entries that
     * are not currently leased (shared_ptr keeps leased ones alive either
     * way; skipping them keeps the table honest about what is open). */
    void
    evictOverflow()
    {
        while ( m_entries.size() > m_maxArchives ) {
            auto victim = m_entries.end();
            for ( auto it = m_entries.begin(); it != m_entries.end(); ++it ) {
                if ( it->second.use_count() > 1 ) {
                    continue;  /* leased right now */
                }
                if ( ( victim == m_entries.end() )
                     || ( it->second->lastUse < victim->second->lastUse ) ) {
                    victim = it;
                }
            }
            if ( victim == m_entries.end() ) {
                break;  /* everything is leased; stay oversized briefly */
            }
            m_entries.erase( victim );
        }
    }

    struct FailedOpen
    {
        ArchiveIdentity identity;
        std::string message;
        std::uint32_t consecutiveFailures{ 0 };
        std::uint64_t retryAtMs{ 0 };
    };

    std::string m_rootDirectory;
    std::size_t m_maxArchives;
    std::shared_ptr<ChunkCache> m_sharedCache;
    ChunkFetcherConfiguration m_readerConfiguration;
    RegistryLimits m_limits;

    mutable std::mutex m_mutex;
    std::map<std::string, std::shared_ptr<Entry> > m_entries;
    std::map<std::string, FailedOpen> m_failedOpens;
    std::uint64_t m_useClock{ 0 };
};

}  // namespace rapidgzip::serve
