#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/ThreadPool.hpp"
#include "../common/Util.hpp"
#include "../failsafe/FaultInjection.hpp"
#include "../telemetry/Telemetry.hpp"
#include "../telemetry/Trace.hpp"
#include "ArchiveRegistry.hpp"
#include "Http.hpp"
#include "Metrics.hpp"

namespace rapidgzip::serve {

struct ServerConfiguration
{
    std::string bindAddress{ "127.0.0.1" };
    std::uint16_t port{ 0 };  /**< 0 = let the kernel pick an ephemeral port */
    std::string rootDirectory{ "." };
    std::size_t workerCount{ 4 };
    std::size_t cacheBytes{ 256 * MiB };
    std::size_t maxArchives{ 64 };
    /** Event-loop shards (--threads). 0 = one per hardware thread. Each
     * shard runs its own poll() loop with its own connection table; they
     * share the registry, chunk cache, worker pool, and metrics. */
    std::size_t shardCount{ 1 };
    /** Per-archive reader knobs. Keep parallelism modest: the daemon's
     * concurrency comes from many archives × many requests; each reader's
     * pool only bounds one chunk decode burst. */
    ChunkFetcherConfiguration readerConfiguration{};

    /* --- robustness limits (0 disables the corresponding guard) -------- */

    /** Accept gate: above this many live connections ACROSS ALL SHARDS,
     * new ones get an immediate 503 + Retry-After and are closed. */
    std::size_t maxConnections{ 1024 };
    /** A connection with a partial request buffered must complete the
     * header block within this window or it is answered 408 and closed —
     * the slow-loris guard. */
    std::uint32_t headerReadTimeoutMs{ 10'000 };
    /** Keep-alive connections with no buffered bytes are silently closed
     * after this much inactivity. */
    std::uint32_t idleTimeoutMs{ 60'000 };
    /** A queued response that makes no write progress for this long means
     * the peer stopped reading — the connection is dropped. */
    std::uint32_t writeTimeoutMs{ 30'000 };
    /** Graceful drain: after beginDrain(), in-flight work gets this long
     * to finish before remaining connections are dropped. */
    std::uint32_t drainTimeoutMs{ 10'000 };
    /** Per-archive admission semaphore (see RegistryLimits). */
    std::size_t maxConsumersPerArchive{ 0 };
    /** Failed-open negative-cache base backoff (see RegistryLimits). */
    std::uint32_t failedOpenBackoffMs{ 1000 };
};

/**
 * The rapidgzip-serve daemon core: N event-loop shards, each a thread
 * multiplexing non-blocking sockets with poll(), HTTP parsing and socket
 * I/O on the shard's loop, decode work on one shared ThreadPool. Layering
 * (see DESIGN.md "Serve"):
 *
 *   shard loops ─ per-connection HTTP/1.1 state machines (keep-alive,
 *   pipelining-safe: surplus bytes stay buffered until the in-flight
 *   response is sent, so requests are answered strictly in order)
 *        │ submit(shard, connection id, request)
 *   worker pool ─ ArchiveRegistry lease → Decompressor::readSpansAt
 *        │ per-shard completion queue + self-pipe wakeup
 *   shard loops ─ writev responses, resume parsing
 *
 * Incoming connections are distributed by SO_REUSEPORT: every shard binds
 * its own listener to the same address and the kernel spreads accepts by
 * 4-tuple hash. Where SO_REUSEPORT is unavailable the server falls back to
 * accepting on shard 0 only and handing accepted fds round-robin to the
 * other shards' inboxes (self-pipe wakeup, same as completions).
 *
 * Responses are ZERO-COPY: a response is a small header string plus a body
 * of refcounted spans lent straight out of cached decoded chunks, flushed
 * with scatter-gather sendmsg(). Each span shares ownership of its chunk,
 * so LRU eviction can never free bytes an in-flight write still points at —
 * the bytes die exactly when the last span drops, at flush or close.
 *
 * Connections are addressed by monotonic process-wide ids, never raw fds —
 * a worker completion for a connection that died meanwhile must not reach
 * whoever inherited the fd number.
 *
 * Thread model: construct + start() + run() from one thread; stop(),
 * beginDrain(), and port() are safe from any thread. The shared state the
 * shards touch concurrently — registry, chunk cache, telemetry registry,
 * worker pool, and the stop/drain/admission atomics — is thread-safe by
 * construction; everything per-connection is confined to its shard.
 */
class Server
{
public:
    explicit Server( ServerConfiguration configuration ) :
        m_configuration( std::move( configuration ) ),
        m_sharedCache( std::make_shared<LruChunkCache>( m_configuration.cacheBytes ) ),
        m_registry( m_configuration.rootDirectory, m_configuration.maxArchives,
                    m_sharedCache, m_configuration.readerConfiguration,
                    RegistryLimits{ m_configuration.maxConsumersPerArchive,
                                    m_configuration.failedOpenBackoffMs } ),
        m_workers( std::max<std::size_t>( 1, m_configuration.workerCount ) )
    {
        /* A daemon wants its pipeline counters live in /metrics; the
         * library-internal hooks are the useful part of that endpoint. */
        telemetry::setMetricsEnabled( true );
    }

    ~Server() = default;

    Server( const Server& ) = delete;
    Server& operator=( const Server& ) = delete;

    /** Bind + listen on every shard; after this, port() reports the actual
     * port. */
    void
    start()
    {
        const auto shardCount = m_configuration.shardCount == 0
                                ? std::max<std::size_t>( 1, std::thread::hardware_concurrency() )
                                : m_configuration.shardCount;
        for ( std::size_t i = 0; i < shardCount; ++i ) {
            m_shards.push_back( std::make_unique<Shard>( this, i ) );
        }

        /* Shard 0 binds first (possibly to an ephemeral port) with
         * SO_REUSEPORT already set when more shards will join — the option
         * must be on EVERY socket in the group, including the first, before
         * bind. setsockopt failure just means single-listener fallback. */
        bool reusePort = shardCount > 1;
        m_shards[0]->listenFd = openListener( m_configuration.port, reusePort );

        sockaddr_in bound{};
        socklen_t boundSize = sizeof( bound );
        if ( ::getsockname( m_shards[0]->listenFd,
                            reinterpret_cast<sockaddr*>( &bound ), &boundSize ) == 0 ) {
            m_port.store( ntohs( bound.sin_port ) );
        }

        for ( std::size_t i = 1; reusePort && ( i < m_shards.size() ); ++i ) {
            bool shardReuse = true;
            int fd = -1;
            try {
                fd = openListener( m_port.load(), shardReuse );
            } catch ( const FileIoError& ) {
                fd = -1;
            }
            if ( ( fd < 0 ) || !shardReuse ) {
                /* SO_REUSEPORT did not take (old kernel, exotic platform):
                 * close any extra listeners and fall back to accept-on-
                 * shard-0 with fd handoff. */
                closeFd( fd );
                for ( std::size_t j = 1; j < i; ++j ) {
                    closeFd( m_shards[j]->listenFd );
                }
                reusePort = false;
                break;
            }
            m_shards[i]->listenFd = fd;
        }
        m_fdHandoff = !reusePort && ( m_shards.size() > 1 );
    }

    [[nodiscard]] std::uint16_t
    port() const noexcept
    {
        return m_port.load();
    }

    /** Event-loop shards actually running (after start()). */
    [[nodiscard]] std::size_t
    shardCount() const noexcept
    {
        return m_shards.size();
    }

    /** True when accepts funnel through shard 0 (no SO_REUSEPORT). */
    [[nodiscard]] bool
    usesFdHandoff() const noexcept
    {
        return m_fdHandoff;
    }

    /** Safe from any thread (and from within run()'s workers). */
    void
    stop()
    {
        m_stopRequested.store( true );
        wakeAllShards();
    }

    /**
     * Graceful drain, safe from any thread and from signal handlers
     * (atomic store + self-pipe writes): every shard stops accepting,
     * /readyz flips to 503 process-wide, in-flight requests finish within
     * drainTimeoutMs, then run() returns. A subsequent stop() still
     * hard-stops.
     */
    void
    beginDrain()
    {
        m_drainRequested.store( true );
        wakeAllShards();
    }

    [[nodiscard]] bool
    draining() const noexcept
    {
        return m_drainRequested.load();
    }

    [[nodiscard]] const ServeMetrics&
    metrics() const noexcept
    {
        return m_metrics;
    }

    [[nodiscard]] const ChunkCache&
    sharedCache() const noexcept
    {
        return *m_sharedCache;
    }

    /** Blocking: runs shard 0's loop on the calling thread and one thread
     * per further shard; returns after stop() or a completed drain. */
    void
    run()
    {
        std::vector<std::thread> shardThreads;
        shardThreads.reserve( m_shards.size() > 0 ? m_shards.size() - 1 : 0 );
        for ( std::size_t i = 1; i < m_shards.size(); ++i ) {
            shardThreads.emplace_back( [shard = m_shards[i].get()] () { shard->loop(); } );
        }
        if ( !m_shards.empty() ) {
            m_shards[0]->loop();
        }
        /* Shard 0 finishing (stop or drained) must release the others even
         * if their own wakeups raced: stop-vs-drain semantics are shared
         * atomics, so one more wake round is enough. */
        wakeAllShards();
        for ( auto& thread : shardThreads ) {
            thread.join();
        }
    }

private:
    struct Connection
    {
        int fd{ -1 };
        std::uint64_t id{ 0 };
        RequestParser parser;
        bool awaitingResponse{ false };
        bool peerClosed{ false };
        bool closeAfterFlush{ false };
        /** Outbox = header bytes + refcounted body spans, flushed with
         * scatter-gather sendmsg. The spans hold their chunks alive until
         * the flush completes (or the connection dies). */
        std::string outboxHead;
        std::vector<OwnedSpan> outboxBody;
        std::size_t outboxSent{ 0 };
        std::size_t outboxTotal{ 0 };
        /** Last observed progress (accept, read bytes, wrote bytes,
         * response queued) — the reference point for every deadline. */
        std::uint64_t lastActivityMs{ 0 };

        [[nodiscard]] bool
        hasOutbox() const noexcept
        {
            return outboxTotal > 0;
        }
    };

    /** A finished response: small head string (status line + headers, plus
     * the whole body for error/endpoint responses) and zero-copy spans for
     * archive bodies. */
    struct Response
    {
        std::string head;
        std::vector<OwnedSpan> body;
        bool keepAlive{ true };
    };

    struct Completion
    {
        std::uint64_t connectionId{ 0 };
        Response response;
    };

    [[nodiscard]] static std::uint64_t
    nowMs() noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch() ).count() );
    }

    static void
    setNonBlocking( int fd )
    {
        const auto flags = ::fcntl( fd, F_GETFL, 0 );
        ::fcntl( fd, F_SETFL, flags | O_NONBLOCK );
    }

    static void
    closeFd( int& fd )
    {
        if ( fd >= 0 ) {
            ::close( fd );
            fd = -1;
        }
    }

    /** Create + bind + listen a non-blocking listener. @p reusePort is
     * in-out: requests SO_REUSEPORT, cleared when the option did not take
     * (caller decides on the fd-handoff fallback). Throws on bind/listen
     * failure. */
    [[nodiscard]] int
    openListener( std::uint16_t port, bool& reusePort ) const
    {
        int fd = ::socket( AF_INET, SOCK_STREAM, 0 );
        if ( fd < 0 ) {
            throw FileIoError( "socket() failed: " + std::string( std::strerror( errno ) ) );
        }
        const int enable = 1;
        ::setsockopt( fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof( enable ) );
        if ( reusePort ) {
#if defined( SO_REUSEPORT )
            if ( ::setsockopt( fd, SOL_SOCKET, SO_REUSEPORT, &enable, sizeof( enable ) ) != 0 ) {
                reusePort = false;
            }
#else
            reusePort = false;
#endif
        }

        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons( port );
        if ( ::inet_pton( AF_INET, m_configuration.bindAddress.c_str(), &address.sin_addr ) != 1 ) {
            ::close( fd );
            throw FileIoError( "Invalid bind address: " + m_configuration.bindAddress );
        }
        if ( ::bind( fd, reinterpret_cast<sockaddr*>( &address ), sizeof( address ) ) != 0 ) {
            const auto message = std::string( std::strerror( errno ) );
            ::close( fd );
            throw FileIoError( "bind() failed: " + message );
        }
        if ( ::listen( fd, 256 ) != 0 ) {
            const auto message = std::string( std::strerror( errno ) );
            ::close( fd );
            throw FileIoError( "listen() failed: " + message );
        }
        setNonBlocking( fd );
        return fd;
    }

    void
    wakeAllShards()
    {
        for ( auto& shard : m_shards ) {
            shard->wake();
        }
    }

    /* --- one event-loop shard ------------------------------------------ */

    struct Shard
    {
        Shard( Server* owner, std::size_t shardIndex ) :
            server( owner ),
            index( shardIndex )
        {
            int pipeFds[2];
            if ( ::pipe( pipeFds ) != 0 ) {
                throw FileIoError( "pipe() failed: " + std::string( std::strerror( errno ) ) );
            }
            wakeRead = pipeFds[0];
            wakeWrite = pipeFds[1];
            setNonBlocking( wakeRead );
            setNonBlocking( wakeWrite );
        }

        ~Shard()
        {
            for ( auto& [id, connection] : connections ) {
                closeFd( connection.fd );
                server->m_liveConnections.fetch_sub( 1 );
            }
            connections.clear();
            for ( auto fd : inbox ) {
                ::close( fd );
                server->m_liveConnections.fetch_sub( 1 );
            }
            inbox.clear();
            closeFd( listenFd );
            closeFd( wakeRead );
            closeFd( wakeWrite );
        }

        Shard( const Shard& ) = delete;
        Shard& operator=( const Shard& ) = delete;

        void
        wake()
        {
            const char byte = 1;
            (void)!::write( wakeWrite, &byte, 1 );
        }

        /** This shard's poll loop; returns on stop() or completed drain. */
        void
        loop()
        {
            std::vector<pollfd> pollFds;
            std::vector<std::uint64_t> pollIds;  /* connection id per slot, 0 = special */

            while ( !server->m_stopRequested.load() ) {
                drainInbox();
                drainCompletions();

                /* Drain transitions happen here, on the shard's own thread:
                 * every shard observes the shared flag, closes ITS listener,
                 * stamps ITS deadline, and winds down its own connections —
                 * the sweep covers all shards, not just the one whose thread
                 * handled the signal. /readyz flipped to 503 process-wide
                 * the moment the flag was set. */
                if ( server->m_drainRequested.load() && !drainActive ) {
                    drainActive = true;
                    drainDeadlineMs = nowMs() + server->m_configuration.drainTimeoutMs;
                    closeFd( listenFd );
                }
                if ( drainActive ) {
                    drainInbox();
                    closeIdleForDrain();
                    if ( connections.empty() || ( nowMs() >= drainDeadlineMs ) ) {
                        break;
                    }
                }

                pollFds.clear();
                pollIds.clear();
                pollFds.push_back( { wakeRead, POLLIN, 0 } );
                pollIds.push_back( 0 );
                const bool hasListen = listenFd >= 0;
                if ( hasListen ) {
                    pollFds.push_back( { listenFd, POLLIN, 0 } );
                    pollIds.push_back( 0 );
                }
                for ( auto& [id, connection] : connections ) {
                    short events = 0;
                    /* Backpressure: while a response is being computed or
                     * written, stop reading — pipelined bytes already
                     * received stay in the parser buffer. */
                    if ( !connection.awaitingResponse && !connection.hasOutbox()
                         && !connection.peerClosed ) {
                        events |= POLLIN;
                    }
                    if ( connection.hasOutbox() ) {
                        events |= POLLOUT;
                    }
                    pollFds.push_back( { connection.fd, events, 0 } );
                    pollIds.push_back( id );
                }

                if ( ::poll( pollFds.data(), pollFds.size(), pollTimeoutMs() ) < 0 ) {
                    if ( errno == EINTR ) {
                        continue;
                    }
                    break;
                }

                if ( ( pollFds[0].revents & POLLIN ) != 0 ) {
                    char sink[256];
                    while ( ::read( wakeRead, sink, sizeof( sink ) ) > 0 ) {}
                }
                drainInbox();
                drainCompletions();

                std::size_t firstConnectionSlot = 1;
                if ( hasListen ) {
                    if ( ( pollFds[1].revents & POLLIN ) != 0 ) {
                        acceptNewConnections();
                    }
                    firstConnectionSlot = 2;
                }

                for ( std::size_t i = firstConnectionSlot; i < pollFds.size(); ++i ) {
                    const auto id = pollIds[i];
                    const auto match = connections.find( id );
                    if ( match == connections.end() ) {
                        continue;  /* closed by an earlier event this round */
                    }
                    auto& connection = match->second;
                    const auto revents = pollFds[i].revents;
                    if ( ( revents & ( POLLERR | POLLNVAL ) ) != 0 ) {
                        closeConnection( id );
                        continue;
                    }
                    if ( ( revents & ( POLLIN | POLLHUP ) ) != 0 ) {
                        if ( !handleReadable( connection ) ) {
                            closeConnection( id );
                            continue;
                        }
                    }
                    if ( ( revents & POLLOUT ) != 0 ) {
                        if ( !handleWritable( connection ) ) {
                            closeConnection( id );
                            continue;
                        }
                    }
                }

                enforceDeadlines();
            }

            /* Shutdown: drop connections; in-flight worker tasks complete
             * into the queue and are discarded with it. */
            for ( auto& [id, connection] : connections ) {
                closeFd( connection.fd );
                server->m_liveConnections.fetch_sub( 1 );
            }
            connections.clear();
        }

        /** Absolute deadline for @p connection, 0 when none applies. While
         * a worker computes the response no socket deadline runs — the
         * decode layer bounds that work with its own retry budget. */
        [[nodiscard]] std::uint64_t
        connectionDeadlineMs( const Connection& connection ) const
        {
            const auto& configuration = server->m_configuration;
            const auto after = [&] ( std::uint32_t timeoutMs ) -> std::uint64_t {
                return timeoutMs == 0 ? 0 : connection.lastActivityMs + timeoutMs;
            };
            if ( connection.awaitingResponse ) {
                return 0;
            }
            if ( connection.hasOutbox() ) {
                return after( configuration.writeTimeoutMs );
            }
            if ( connection.parser.bufferedBytes() > 0 ) {
                return after( configuration.headerReadTimeoutMs );
            }
            return after( configuration.idleTimeoutMs );
        }

        /** Poll timeout from the nearest connection (or drain) deadline,
         * capped at the historic 1 s heartbeat. */
        [[nodiscard]] int
        pollTimeoutMs() const
        {
            std::uint64_t nearest = UINT64_MAX;
            for ( const auto& [id, connection] : connections ) {
                if ( const auto deadline = connectionDeadlineMs( connection ); deadline != 0 ) {
                    nearest = std::min( nearest, deadline );
                }
            }
            if ( drainActive ) {
                nearest = std::min( nearest, drainDeadlineMs );
            }
            if ( nearest == UINT64_MAX ) {
                return 1000;
            }
            const auto now = nowMs();
            const auto wait = nearest > now ? nearest - now : 0;
            return static_cast<int>( std::min<std::uint64_t>( wait, 1000 ) );
        }

        /** Close (or 408) every connection whose deadline has passed. */
        void
        enforceDeadlines()
        {
            const auto now = nowMs();
            std::vector<std::uint64_t> expired;
            for ( const auto& [id, connection] : connections ) {
                const auto deadline = connectionDeadlineMs( connection );
                if ( ( deadline != 0 ) && ( now >= deadline ) ) {
                    expired.push_back( id );
                }
            }
            for ( const auto id : expired ) {
                const auto match = connections.find( id );
                if ( match == connections.end() ) {
                    continue;
                }
                auto& connection = match->second;
                if ( !connection.hasOutbox() && ( connection.parser.bufferedBytes() > 0 ) ) {
                    /* Slow loris: a partial request that never completed.
                     * Tell the peer (best effort — it may not be reading)
                     * and close once flushed; the write deadline bounds the
                     * flush. */
                    server->m_metrics.timeoutsTotal.addUnchecked( 1 );
                    server->m_metrics.countStatus( 408 );
                    queueHeadOnly( connection,
                                   buildResponse( 408, {}, reasonPhrase( 408 ),
                                                  /* keepAlive */ false ) );
                    connection.closeAfterFlush = true;
                    connection.lastActivityMs = now;
                    if ( !handleWritable( connection ) ) {
                        closeConnection( id );
                    }
                } else if ( connection.hasOutbox() ) {
                    server->m_metrics.timeoutsTotal.addUnchecked( 1 );  /* stalled write */
                    closeConnection( id );
                } else {
                    closeConnection( id );  /* idle keep-alive: silent close */
                }
            }
        }

        /** During drain, a connection with no request in flight has nothing
         * left to contribute — close it so the loop can wind down. */
        void
        closeIdleForDrain()
        {
            std::vector<std::uint64_t> idle;
            for ( const auto& [id, connection] : connections ) {
                if ( !connection.awaitingResponse && !connection.hasOutbox() ) {
                    idle.push_back( id );
                }
            }
            for ( const auto id : idle ) {
                closeConnection( id );
            }
        }

        /** Register an already-accepted, already-counted fd with this
         * shard's connection table. */
        void
        adoptConnection( int fd )
        {
            setNonBlocking( fd );
            const int enable = 1;
            ::setsockopt( fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof( enable ) );
            Connection connection;
            connection.fd = fd;
            connection.id = server->m_nextConnectionId.fetch_add( 1 ) + 1;
            connection.lastActivityMs = nowMs();
            server->m_metrics.connectionsAccepted.addUnchecked( 1 );
            connections.emplace( connection.id, std::move( connection ) );
        }

        void
        acceptNewConnections()
        {
            while ( true ) {
                const int fd = ::accept( listenFd, nullptr, nullptr );
                if ( fd < 0 ) {
                    if ( errno == EINTR ) {
                        continue;
                    }
                    break;  /* EAGAIN or transient error: poll again */
                }
                const auto limit = server->m_configuration.maxConnections;
                /* The admission count spans all shards (and fds parked in
                 * handoff inboxes), so the global gate holds no matter
                 * which listener the kernel picked. */
                const auto live = server->m_liveConnections.fetch_add( 1 ) + 1;
                if ( ( limit > 0 ) && ( live > limit ) ) {
                    server->m_liveConnections.fetch_sub( 1 );
                    rejectConnection( fd );
                    continue;
                }
                if ( server->m_fdHandoff && ( server->m_shards.size() > 1 ) ) {
                    /* No SO_REUSEPORT: shard 0 owns the only listener and
                     * deals accepted fds round-robin across all shards. */
                    const auto target = handoffCursor++ % server->m_shards.size();
                    if ( target != index ) {
                        auto& peer = *server->m_shards[target];
                        {
                            const std::lock_guard<std::mutex> lock( peer.inboxMutex );
                            peer.inbox.push_back( fd );
                        }
                        peer.wake();
                        continue;
                    }
                }
                adoptConnection( fd );
            }
        }

        /** Adopt fds handed off by the accepting shard. */
        void
        drainInbox()
        {
            std::vector<int> handed;
            {
                const std::lock_guard<std::mutex> lock( inboxMutex );
                handed.swap( inbox );
            }
            for ( const auto fd : handed ) {
                adoptConnection( fd );
            }
        }

        /** Admission refusal: one best-effort 503 (the socket buffer of a
         * fresh connection always takes it) and an immediate close. The
         * send result is deliberately not classified — 0, -1, or short,
         * the very next call closes the socket, so no errno (stale or
         * otherwise) can change the outcome. */
        void
        rejectConnection( int fd )
        {
            server->m_metrics.countRejected( "max_connections" );
            server->m_metrics.countStatus( 503 );
            const auto response = buildResponse( 503, "Retry-After: 1\r\n",
                                                 "server connection limit reached\n",
                                                 /* keepAlive */ false );
            const auto sent = ::send( fd, response.data(), response.size(), MSG_NOSIGNAL );
            (void)sent;
            ::close( fd );
        }

        void
        closeConnection( std::uint64_t id )
        {
            const auto match = connections.find( id );
            if ( match != connections.end() ) {
                closeFd( match->second.fd );
                connections.erase( match );
                server->m_liveConnections.fetch_sub( 1 );
            }
        }

        /** Queue a fully serialized response (error/endpoint payloads). */
        static void
        queueHeadOnly( Connection& connection, std::string serialized )
        {
            connection.outboxHead = std::move( serialized );
            connection.outboxBody.clear();
            connection.outboxSent = 0;
            connection.outboxTotal = connection.outboxHead.size();
        }

        static void
        queueResponse( Connection& connection, Response&& response )
        {
            connection.outboxHead = std::move( response.head );
            connection.outboxBody = std::move( response.body );
            connection.outboxSent = 0;
            connection.outboxTotal = connection.outboxHead.size();
            for ( const auto& span : connection.outboxBody ) {
                connection.outboxTotal += span.size;
            }
        }

        /** Returns false when the connection should be closed. */
        [[nodiscard]] bool
        handleReadable( Connection& connection )
        {
            char buffer[16 * 1024];
            while ( true ) {
                const auto got = ::recv( connection.fd, buffer, sizeof( buffer ), 0 );
                if ( got > 0 ) {
                    connection.parser.feed( buffer, static_cast<std::size_t>( got ) );
                    connection.lastActivityMs = nowMs();
                    continue;
                }
                if ( got == 0 ) {
                    connection.peerClosed = true;
                    break;
                }
                if ( errno == EINTR ) {
                    continue;  /* interrupted, not an error */
                }
                if ( ( errno == EAGAIN ) || ( errno == EWOULDBLOCK ) ) {
                    break;
                }
                return false;  /* hard error */
            }
            if ( !tryDispatch( connection ) ) {
                return false;
            }
            /* Peer is gone and nothing is pending: nothing left to do. */
            return !( connection.peerClosed && !connection.awaitingResponse
                      && !connection.hasOutbox() );
        }

        /** Parse and dispatch the next buffered request, if any. Returns
         * false when the connection should be closed immediately. */
        [[nodiscard]] bool
        tryDispatch( Connection& connection )
        {
            if ( connection.awaitingResponse || connection.hasOutbox() ) {
                return true;  /* strictly one response in flight per connection */
            }
            HttpRequest request;
            if ( connection.parser.next( request ) ) {
                connection.awaitingResponse = true;
                server->m_metrics.requestsTotal.addUnchecked( 1 );
                const auto id = connection.id;
                (void)server->m_workers.submit(
                    [owner = server, shard = this, id, request = std::move( request )] () {
                        Completion completion;
                        completion.connectionId = id;
                        const auto beginNs = telemetry::nowNs();
                        {
                            telemetry::Span requestSpan{ "serve", "serve.request" };
                            completion.response =
                                owner->handleRequest( request, request.keepAlive() );
                        }
                        owner->m_metrics.requestLatency.recordUnchecked(
                            telemetry::nowNs() - beginNs );
                        {
                            const std::lock_guard<std::mutex> lock( shard->completionMutex );
                            shard->completions.push_back( std::move( completion ) );
                        }
                        shard->wake();
                    } );
                return true;
            }
            if ( connection.parser.failed() ) {
                const auto status = connection.parser.failureStatus();
                server->m_metrics.requestsTotal.addUnchecked( 1 );
                server->m_metrics.countStatus( status );
                queueHeadOnly( connection,
                               buildResponse( status, {}, reasonPhrase( status ),
                                              /* keepAlive */ false ) );
                connection.closeAfterFlush = true;
            }
            return true;
        }

        /** Scatter-gather flush of the outbox: header bytes plus borrowed
         * chunk spans in one sendmsg() per syscall, no intermediate copy.
         * Returns false when the connection should be closed. */
        [[nodiscard]] bool
        handleWritable( Connection& connection )
        {
            static constexpr std::size_t MAX_IOVECS = 64;
            while ( connection.outboxSent < connection.outboxTotal ) {
                /* serve.write probe: simulate a full socket (wait for
                 * POLLOUT) or a trickling one (truncated send) — never
                 * corrupt bytes. */
                std::size_t byteCap = std::numeric_limits<std::size_t>::max();
                if ( failsafe::shouldInject( failsafe::FaultPoint::SERVE_WRITE ) ) {
                    if ( failsafe::drawBelow( failsafe::FaultPoint::SERVE_WRITE, 2 ) == 0 ) {
                        return true;  /* as-if EAGAIN: POLLOUT will fire again */
                    }
                    byteCap = 1024;
                }

                iovec vectors[MAX_IOVECS];
                std::size_t vectorCount = 0;
                std::size_t gathered = 0;
                auto skip = connection.outboxSent;
                const auto append = [&] ( const std::uint8_t* data, std::size_t size ) {
                    if ( ( vectorCount == MAX_IOVECS ) || ( gathered >= byteCap ) ) {
                        return;
                    }
                    const auto take = std::min( size, byteCap - gathered );
                    vectors[vectorCount].iov_base =
                        const_cast<void*>( static_cast<const void*>( data ) );
                    vectors[vectorCount].iov_len = take;
                    ++vectorCount;
                    gathered += take;
                };
                if ( skip < connection.outboxHead.size() ) {
                    append( reinterpret_cast<const std::uint8_t*>( connection.outboxHead.data() )
                            + skip,
                            connection.outboxHead.size() - skip );
                    skip = 0;
                } else {
                    skip -= connection.outboxHead.size();
                }
                for ( const auto& span : connection.outboxBody ) {
                    if ( ( vectorCount == MAX_IOVECS ) || ( gathered >= byteCap ) ) {
                        break;
                    }
                    if ( skip >= span.size ) {
                        skip -= span.size;
                        continue;
                    }
                    append( span.data + skip, span.size - skip );
                    skip = 0;
                }

                msghdr message{};
                message.msg_iov = vectors;
                message.msg_iovlen = vectorCount;
                const auto sent = ::sendmsg( connection.fd, &message, MSG_NOSIGNAL );
                if ( sent > 0 ) {
                    connection.outboxSent += static_cast<std::size_t>( sent );
                    connection.lastActivityMs = nowMs();
                    continue;
                }
                if ( sent == 0 ) {
                    /* No bytes moved and no error reported: the socket can
                     * make no progress (peer gone mid-write). errno is
                     * STALE here — classifying it would mistake this for
                     * EAGAIN and strand the connection until the idle
                     * deadline. Close explicitly. */
                    return false;
                }
                if ( errno == EINTR ) {
                    continue;  /* interrupted, not an error */
                }
                if ( ( errno == EAGAIN ) || ( errno == EWOULDBLOCK ) ) {
                    return true;  /* socket full: POLLOUT will fire again */
                }
                return false;
            }
            /* Flushed: release the span refs — from here on the cache alone
             * decides how long the chunks stay resident. */
            connection.outboxHead.clear();
            connection.outboxBody.clear();
            connection.outboxSent = 0;
            connection.outboxTotal = 0;
            if ( connection.closeAfterFlush ) {
                return false;
            }
            /* Response sent: a pipelined follow-up may already be buffered. */
            if ( !tryDispatch( connection ) ) {
                return false;
            }
            return !( connection.peerClosed && !connection.awaitingResponse
                      && !connection.hasOutbox() );
        }

        void
        drainCompletions()
        {
            std::vector<Completion> finished;
            {
                const std::lock_guard<std::mutex> lock( completionMutex );
                finished.swap( completions );
            }
            for ( auto& completion : finished ) {
                const auto match = connections.find( completion.connectionId );
                if ( match == connections.end() ) {
                    continue;  /* connection died while the worker was busy */
                }
                auto& connection = match->second;
                connection.awaitingResponse = false;
                const auto keepAlive = completion.response.keepAlive;
                queueResponse( connection, std::move( completion.response ) );
                /* During drain every flushed response ends its connection,
                 * so keep-alive clients wind down instead of holding the
                 * drain. */
                connection.closeAfterFlush = !keepAlive || drainActive;
                connection.lastActivityMs = nowMs();
                /* Try to flush immediately — most responses fit the socket
                 * buffer, saving a poll round trip. */
                if ( !handleWritable( connection ) ) {
                    closeConnection( completion.connectionId );
                }
            }
        }

        Server* server;
        std::size_t index{ 0 };
        int listenFd{ -1 };
        int wakeRead{ -1 };
        int wakeWrite{ -1 };
        std::map<std::uint64_t, Connection> connections;
        bool drainActive{ false };          /**< shard-thread mirror of the request */
        std::uint64_t drainDeadlineMs{ 0 };
        std::size_t handoffCursor{ 0 };     /**< round-robin dealer (shard 0 only) */

        std::mutex completionMutex;
        std::vector<Completion> completions;

        /** fds accepted by shard 0 awaiting adoption (handoff mode). */
        std::mutex inboxMutex;
        std::vector<int> inbox;
    };

    /* --- request handling (worker threads) ----------------------------- */

    [[nodiscard]] Response
    handleRequest( const HttpRequest& request, bool keepAlive )
    {
        try {
            return handleRequestChecked( request, keepAlive );
        } catch ( const ArchiveNotFoundError& exception ) {
            return errorResponse( 404, exception.what(), keepAlive );
        } catch ( const ArchiveBusyError& exception ) {
            m_metrics.countRejected( "archive_busy" );
            m_metrics.countStatus( 503 );
            return stringResponse(
                buildResponse( 503, "Content-Type: text/plain\r\nRetry-After: 1\r\n",
                               std::string( exception.what() ) + "\n", keepAlive ),
                keepAlive );
        } catch ( const std::exception& exception ) {
            /* Unknown format, vendor library missing, corrupt archive, … —
             * the archive's problem, not the server's, but 500 is the
             * honest summary either way. */
            return errorResponse( 500, exception.what(), keepAlive );
        }
    }

    [[nodiscard]] static Response
    stringResponse( std::string serialized, bool keepAlive )
    {
        Response response;
        response.head = std::move( serialized );
        response.keepAlive = keepAlive;
        return response;
    }

    [[nodiscard]] Response
    errorResponse( int status, const std::string& message, bool keepAlive )
    {
        m_metrics.countStatus( status );
        return stringResponse( buildResponse( status, "Content-Type: text/plain\r\n",
                                              message + "\n", keepAlive ),
                               keepAlive );
    }

    [[nodiscard]] Response
    handleRequestChecked( const HttpRequest& request, bool keepAlive )
    {
        const bool isHead = request.method == "HEAD";
        if ( ( request.method != "GET" ) && !isHead ) {
            return errorResponse( 405, "Only GET and HEAD are supported", keepAlive );
        }

        auto target = request.target;
        if ( const auto query = target.find( '?' ); query != std::string::npos ) {
            target.erase( query );
        }

        if ( target == "/healthz" ) {
            /* Liveness: the loops and workers are turning over. */
            m_metrics.countStatus( 200 );
            return stringResponse(
                isHead ? buildResponseHead( 200, 3, "Content-Type: text/plain\r\n", keepAlive )
                       : buildResponse( 200, "Content-Type: text/plain\r\n", "ok\n", keepAlive ),
                keepAlive );
        }
        if ( target == "/readyz" ) {
            /* Readiness: flips to 503 PROCESS-WIDE the moment a drain is
             * requested — the flag is one shared atomic read by every
             * shard — so load balancers stop routing before any listener
             * closes. */
            const auto ready = !draining();
            const auto status = ready ? 200 : 503;
            const std::string body = ready ? "ready\n" : "draining\n";
            m_metrics.countStatus( status );
            return stringResponse(
                isHead ? buildResponseHead( status, body.size(),
                                            "Content-Type: text/plain\r\n", keepAlive )
                       : buildResponse( status, "Content-Type: text/plain\r\n", body, keepAlive ),
                keepAlive );
        }
        if ( target == "/metrics" ) {
            const auto body = renderMetrics( m_metrics, m_sharedCache->statistics(),
                                             m_registry.openCount() );
            m_metrics.countStatus( 200 );
            return stringResponse(
                isHead ? buildResponseHead( 200, body.size(),
                                            "Content-Type: text/plain\r\n", keepAlive )
                       : buildResponse( 200, "Content-Type: text/plain\r\n", body, keepAlive ),
                keepAlive );
        }

        auto lease = m_registry.open( target );
        m_metrics.countArchiveRequest( target );
        auto& decompressor = lease.decompressor();
        const auto totalSize = decompressor.size();

        if ( isHead ) {
            m_metrics.countStatus( 200 );
            return stringResponse( buildResponseHead( 200, totalSize, {}, keepAlive ),
                                   keepAlive );
        }

        const auto range = resolveRange( request.header( "range" ), totalSize );
        if ( range.outcome == RangeOutcome::UNSATISFIABLE ) {
            m_metrics.countStatus( 416 );
            return stringResponse(
                buildResponse( 416,
                               "Content-Range: bytes */" + std::to_string( totalSize ) + "\r\n",
                               {}, keepAlive ),
                keepAlive );
        }

        const auto first = range.outcome == RangeOutcome::RANGE ? range.first : 0;
        const auto length = range.outcome == RangeOutcome::RANGE ? range.length : totalSize;

        /* Zero-copy body: refcounted spans lent straight out of cached
         * decoded chunks. No byte of the range is copied on this path; the
         * spans keep their chunks alive until the socket flush drops them,
         * so LRU eviction during the write is harmless. */
        Response response;
        response.keepAlive = keepAlive;
        const auto got = decompressor.readSpansAt( first, length, response.body );
        if ( got != length ) {
            return errorResponse( 500, "Decoded range came up short", keepAlive );
        }
        for ( const auto& span : response.body ) {
            if ( span.borrowed ) {
                m_metrics.zeroCopyBytes.addUnchecked( span.size );
                m_metrics.zeroCopySpans.addUnchecked( 1 );
            } else {
                m_metrics.rangeCopyBytes.addUnchecked( span.size );
            }
        }

        m_metrics.bytesServed.addUnchecked( length );
        if ( range.outcome == RangeOutcome::RANGE ) {
            m_metrics.countStatus( 206 );
            const auto contentRange = "Content-Range: bytes " + std::to_string( first ) + "-"
                                      + std::to_string( first + length - 1 ) + "/"
                                      + std::to_string( totalSize ) + "\r\n";
            response.head = buildResponseHead( 206, length, contentRange, keepAlive );
            return response;
        }
        m_metrics.countStatus( 200 );
        response.head = buildResponseHead( 200, length, {}, keepAlive );
        return response;
    }

    ServerConfiguration m_configuration;
    std::shared_ptr<ChunkCache> m_sharedCache;
    ArchiveRegistry m_registry;
    ServeMetrics m_metrics;

    std::vector<std::unique_ptr<Shard> > m_shards;
    bool m_fdHandoff{ false };
    std::atomic<std::uint16_t> m_port{ 0 };
    std::atomic<bool> m_stopRequested{ false };
    std::atomic<bool> m_drainRequested{ false };
    std::atomic<std::uint64_t> m_nextConnectionId{ 0 };
    std::atomic<std::size_t> m_liveConnections{ 0 };

    /* Pool last: its destructor runs first, joining workers that use the
     * registry, cache, metrics, and per-shard completion queues above. */
    ThreadPool m_workers;
};

}  // namespace rapidgzip::serve
