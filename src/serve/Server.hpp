#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/ThreadPool.hpp"
#include "../common/Util.hpp"
#include "../failsafe/FaultInjection.hpp"
#include "../telemetry/Telemetry.hpp"
#include "../telemetry/Trace.hpp"
#include "ArchiveRegistry.hpp"
#include "Http.hpp"
#include "Metrics.hpp"

namespace rapidgzip::serve {

struct ServerConfiguration
{
    std::string bindAddress{ "127.0.0.1" };
    std::uint16_t port{ 0 };  /**< 0 = let the kernel pick an ephemeral port */
    std::string rootDirectory{ "." };
    std::size_t workerCount{ 4 };
    std::size_t cacheBytes{ 256 * MiB };
    std::size_t maxArchives{ 64 };
    /** Per-archive reader knobs. Keep parallelism modest: the daemon's
     * concurrency comes from many archives × many requests; each reader's
     * pool only bounds one chunk decode burst. */
    ChunkFetcherConfiguration readerConfiguration{};

    /* --- robustness limits (0 disables the corresponding guard) -------- */

    /** Accept gate: above this many live connections, new ones get an
     * immediate 503 + Retry-After and are closed. */
    std::size_t maxConnections{ 1024 };
    /** A connection with a partial request buffered must complete the
     * header block within this window or it is answered 408 and closed —
     * the slow-loris guard. */
    std::uint32_t headerReadTimeoutMs{ 10'000 };
    /** Keep-alive connections with no buffered bytes are silently closed
     * after this much inactivity. */
    std::uint32_t idleTimeoutMs{ 60'000 };
    /** A queued response that makes no write progress for this long means
     * the peer stopped reading — the connection is dropped. */
    std::uint32_t writeTimeoutMs{ 30'000 };
    /** Graceful drain: after beginDrain(), in-flight work gets this long
     * to finish before remaining connections are dropped. */
    std::uint32_t drainTimeoutMs{ 10'000 };
    /** Per-archive admission semaphore (see RegistryLimits). */
    std::size_t maxConsumersPerArchive{ 0 };
    /** Failed-open negative-cache base backoff (see RegistryLimits). */
    std::uint32_t failedOpenBackoffMs{ 1000 };
};

/**
 * The rapidgzip-serve daemon core: one event-loop thread multiplexing
 * non-blocking sockets with poll(), HTTP parsing and socket I/O on the
 * loop, decode work on a ThreadPool. Layering (see DESIGN.md "Serve"):
 *
 *   event loop ─ per-connection HTTP/1.1 state machines (keep-alive,
 *   pipelining-safe: surplus bytes stay buffered until the in-flight
 *   response is sent, so requests are answered strictly in order)
 *        │ submit(connection id, request)
 *   worker pool ─ ArchiveRegistry lease → Decompressor::readAt
 *        │ completion queue + self-pipe wakeup
 *   event loop ─ write responses, resume parsing
 *
 * Connections are addressed by monotonic ids, never raw fds — a worker
 * completion for a connection that died meanwhile must not reach whoever
 * inherited the fd number.
 *
 * Thread model: construct + start() + run() from one thread; stop() and
 * port() are safe from any thread.
 */
class Server
{
public:
    explicit Server( ServerConfiguration configuration ) :
        m_configuration( std::move( configuration ) ),
        m_sharedCache( std::make_shared<LruChunkCache>( m_configuration.cacheBytes ) ),
        m_registry( m_configuration.rootDirectory, m_configuration.maxArchives,
                    m_sharedCache, m_configuration.readerConfiguration,
                    RegistryLimits{ m_configuration.maxConsumersPerArchive,
                                    m_configuration.failedOpenBackoffMs } ),
        m_workers( std::max<std::size_t>( 1, m_configuration.workerCount ) )
    {
        /* A daemon wants its pipeline counters live in /metrics; the
         * library-internal hooks are the useful part of that endpoint. */
        telemetry::setMetricsEnabled( true );
    }

    ~Server()
    {
        closeFd( m_listenFd );
        closeFd( m_wakeRead );
        closeFd( m_wakeWrite );
    }

    Server( const Server& ) = delete;
    Server& operator=( const Server& ) = delete;

    /** Bind + listen; after this, port() reports the actual port. */
    void
    start()
    {
        int pipeFds[2];
        if ( ::pipe( pipeFds ) != 0 ) {
            throw FileIoError( "pipe() failed: " + std::string( std::strerror( errno ) ) );
        }
        m_wakeRead = pipeFds[0];
        m_wakeWrite = pipeFds[1];
        setNonBlocking( m_wakeRead );
        setNonBlocking( m_wakeWrite );

        m_listenFd = ::socket( AF_INET, SOCK_STREAM, 0 );
        if ( m_listenFd < 0 ) {
            throw FileIoError( "socket() failed: " + std::string( std::strerror( errno ) ) );
        }
        const int enable = 1;
        ::setsockopt( m_listenFd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof( enable ) );

        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons( m_configuration.port );
        if ( ::inet_pton( AF_INET, m_configuration.bindAddress.c_str(), &address.sin_addr ) != 1 ) {
            throw FileIoError( "Invalid bind address: " + m_configuration.bindAddress );
        }
        if ( ::bind( m_listenFd, reinterpret_cast<sockaddr*>( &address ), sizeof( address ) ) != 0 ) {
            throw FileIoError( "bind() failed: " + std::string( std::strerror( errno ) ) );
        }
        if ( ::listen( m_listenFd, 256 ) != 0 ) {
            throw FileIoError( "listen() failed: " + std::string( std::strerror( errno ) ) );
        }
        setNonBlocking( m_listenFd );

        sockaddr_in bound{};
        socklen_t boundSize = sizeof( bound );
        if ( ::getsockname( m_listenFd, reinterpret_cast<sockaddr*>( &bound ), &boundSize ) == 0 ) {
            m_port.store( ntohs( bound.sin_port ) );
        }
    }

    [[nodiscard]] std::uint16_t
    port() const noexcept
    {
        return m_port.load();
    }

    /** Safe from any thread (and from within run()'s workers). */
    void
    stop()
    {
        m_stopRequested.store( true );
        wake();
    }

    /**
     * Graceful drain, safe from any thread and from signal handlers
     * (atomic store + self-pipe write): stop accepting, flip /readyz to
     * 503, let in-flight requests finish within drainTimeoutMs, then
     * return from run(). A subsequent stop() still hard-stops.
     */
    void
    beginDrain()
    {
        m_drainRequested.store( true );
        wake();
    }

    [[nodiscard]] bool
    draining() const noexcept
    {
        return m_drainRequested.load();
    }

    [[nodiscard]] const ServeMetrics&
    metrics() const noexcept
    {
        return m_metrics;
    }

    [[nodiscard]] const ChunkCache&
    sharedCache() const noexcept
    {
        return *m_sharedCache;
    }

    /** Blocking event loop; returns after stop() or a completed drain. */
    void
    run()
    {
        std::vector<pollfd> pollFds;
        std::vector<std::uint64_t> pollIds;  /* connection id per pollFds slot, 0 = special */

        while ( !m_stopRequested.load() ) {
            drainCompletions();

            /* Drain transitions happen here, on the loop thread: stop
             * accepting (close the listen socket), stamp the deadline,
             * then below close everything idle and wait out in-flight
             * work. /readyz flipped to 503 the moment the flag was set. */
            if ( m_drainRequested.load() && !m_drainActive ) {
                m_drainActive = true;
                m_drainDeadlineMs = nowMs() + m_configuration.drainTimeoutMs;
                closeFd( m_listenFd );
            }
            if ( m_drainActive ) {
                closeIdleForDrain();
                if ( m_connections.empty() || ( nowMs() >= m_drainDeadlineMs ) ) {
                    break;
                }
            }

            pollFds.clear();
            pollIds.clear();
            pollFds.push_back( { m_wakeRead, POLLIN, 0 } );
            pollIds.push_back( 0 );
            const bool hasListen = m_listenFd >= 0;
            if ( hasListen ) {
                pollFds.push_back( { m_listenFd, POLLIN, 0 } );
                pollIds.push_back( 0 );
            }
            for ( auto& [id, connection] : m_connections ) {
                short events = 0;
                /* Backpressure: while a response is being computed or
                 * written, stop reading — pipelined bytes already received
                 * stay in the parser buffer. */
                if ( !connection.awaitingResponse && connection.outbox.empty()
                     && !connection.peerClosed ) {
                    events |= POLLIN;
                }
                if ( !connection.outbox.empty() ) {
                    events |= POLLOUT;
                }
                pollFds.push_back( { connection.fd, events, 0 } );
                pollIds.push_back( id );
            }

            if ( ::poll( pollFds.data(), pollFds.size(), pollTimeoutMs() ) < 0 ) {
                if ( errno == EINTR ) {
                    continue;
                }
                break;
            }

            if ( ( pollFds[0].revents & POLLIN ) != 0 ) {
                char sink[256];
                while ( ::read( m_wakeRead, sink, sizeof( sink ) ) > 0 ) {}
            }
            drainCompletions();

            std::size_t firstConnectionSlot = 1;
            if ( hasListen ) {
                if ( ( pollFds[1].revents & POLLIN ) != 0 ) {
                    acceptNewConnections();
                }
                firstConnectionSlot = 2;
            }

            for ( std::size_t i = firstConnectionSlot; i < pollFds.size(); ++i ) {
                const auto id = pollIds[i];
                const auto match = m_connections.find( id );
                if ( match == m_connections.end() ) {
                    continue;  /* closed by an earlier event this round */
                }
                auto& connection = match->second;
                const auto revents = pollFds[i].revents;
                if ( ( revents & ( POLLERR | POLLNVAL ) ) != 0 ) {
                    closeConnection( id );
                    continue;
                }
                if ( ( revents & ( POLLIN | POLLHUP ) ) != 0 ) {
                    if ( !handleReadable( connection ) ) {
                        closeConnection( id );
                        continue;
                    }
                }
                if ( ( revents & POLLOUT ) != 0 ) {
                    if ( !handleWritable( connection ) ) {
                        closeConnection( id );
                        continue;
                    }
                }
            }

            enforceDeadlines();
        }

        /* Shutdown: drop connections; in-flight worker tasks complete into
         * the queue and are discarded with it. */
        for ( auto& [id, connection] : m_connections ) {
            closeFd( connection.fd );
        }
        m_connections.clear();
    }

private:
    struct Connection
    {
        int fd{ -1 };
        std::uint64_t id{ 0 };
        RequestParser parser;
        bool awaitingResponse{ false };
        bool peerClosed{ false };
        bool closeAfterFlush{ false };
        std::string outbox;
        std::size_t outboxSent{ 0 };
        /** Last observed progress (accept, read bytes, wrote bytes,
         * response queued) — the reference point for every deadline. */
        std::uint64_t lastActivityMs{ 0 };
    };

    struct Completion
    {
        std::uint64_t connectionId{ 0 };
        std::string response;
        bool keepAlive{ true };
    };

    [[nodiscard]] static std::uint64_t
    nowMs() noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch() ).count() );
    }

    /** Absolute deadline for @p connection, 0 when none applies. While a
     * worker computes the response no socket deadline runs — the decode
     * layer bounds that work with its own retry budget. */
    [[nodiscard]] std::uint64_t
    connectionDeadlineMs( const Connection& connection ) const
    {
        const auto after = [&] ( std::uint32_t timeoutMs ) -> std::uint64_t {
            return timeoutMs == 0 ? 0 : connection.lastActivityMs + timeoutMs;
        };
        if ( connection.awaitingResponse ) {
            return 0;
        }
        if ( !connection.outbox.empty() ) {
            return after( m_configuration.writeTimeoutMs );
        }
        if ( connection.parser.bufferedBytes() > 0 ) {
            return after( m_configuration.headerReadTimeoutMs );
        }
        return after( m_configuration.idleTimeoutMs );
    }

    /** Poll timeout from the nearest connection (or drain) deadline, capped
     * at the historic 1 s heartbeat. */
    [[nodiscard]] int
    pollTimeoutMs() const
    {
        std::uint64_t nearest = UINT64_MAX;
        for ( const auto& [id, connection] : m_connections ) {
            if ( const auto deadline = connectionDeadlineMs( connection ); deadline != 0 ) {
                nearest = std::min( nearest, deadline );
            }
        }
        if ( m_drainActive ) {
            nearest = std::min( nearest, m_drainDeadlineMs );
        }
        if ( nearest == UINT64_MAX ) {
            return 1000;
        }
        const auto now = nowMs();
        const auto wait = nearest > now ? nearest - now : 0;
        return static_cast<int>( std::min<std::uint64_t>( wait, 1000 ) );
    }

    /** Close (or 408) every connection whose deadline has passed. */
    void
    enforceDeadlines()
    {
        const auto now = nowMs();
        std::vector<std::uint64_t> expired;
        for ( const auto& [id, connection] : m_connections ) {
            const auto deadline = connectionDeadlineMs( connection );
            if ( ( deadline != 0 ) && ( now >= deadline ) ) {
                expired.push_back( id );
            }
        }
        for ( const auto id : expired ) {
            const auto match = m_connections.find( id );
            if ( match == m_connections.end() ) {
                continue;
            }
            auto& connection = match->second;
            if ( connection.outbox.empty() && ( connection.parser.bufferedBytes() > 0 ) ) {
                /* Slow loris: a partial request that never completed. Tell
                 * the peer (best effort — it may not be reading) and close
                 * once flushed; the write deadline bounds the flush. */
                m_metrics.timeoutsTotal.addUnchecked( 1 );
                m_metrics.countStatus( 408 );
                connection.outbox = buildResponse( 408, {}, reasonPhrase( 408 ),
                                                   /* keepAlive */ false );
                connection.outboxSent = 0;
                connection.closeAfterFlush = true;
                connection.lastActivityMs = now;
                if ( !handleWritable( connection ) ) {
                    closeConnection( id );
                }
            } else if ( !connection.outbox.empty() ) {
                m_metrics.timeoutsTotal.addUnchecked( 1 );  /* stalled write */
                closeConnection( id );
            } else {
                closeConnection( id );  /* idle keep-alive: silent close */
            }
        }
    }

    /** During drain, a connection with no request in flight has nothing
     * left to contribute — close it so the loop can wind down. */
    void
    closeIdleForDrain()
    {
        std::vector<std::uint64_t> idle;
        for ( const auto& [id, connection] : m_connections ) {
            if ( !connection.awaitingResponse && connection.outbox.empty() ) {
                idle.push_back( id );
            }
        }
        for ( const auto id : idle ) {
            closeConnection( id );
        }
    }

    static void
    setNonBlocking( int fd )
    {
        const auto flags = ::fcntl( fd, F_GETFL, 0 );
        ::fcntl( fd, F_SETFL, flags | O_NONBLOCK );
    }

    static void
    closeFd( int& fd )
    {
        if ( fd >= 0 ) {
            ::close( fd );
            fd = -1;
        }
    }

    void
    wake()
    {
        const char byte = 1;
        (void)!::write( m_wakeWrite, &byte, 1 );
    }

    void
    acceptNewConnections()
    {
        while ( true ) {
            const int fd = ::accept( m_listenFd, nullptr, nullptr );
            if ( fd < 0 ) {
                if ( errno == EINTR ) {
                    continue;
                }
                break;  /* EAGAIN or transient error: poll again */
            }
            if ( ( m_configuration.maxConnections > 0 )
                 && ( m_connections.size() >= m_configuration.maxConnections ) ) {
                rejectConnection( fd );
                continue;
            }
            setNonBlocking( fd );
            const int enable = 1;
            ::setsockopt( fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof( enable ) );
            Connection connection;
            connection.fd = fd;
            connection.id = ++m_nextConnectionId;
            connection.lastActivityMs = nowMs();
            m_metrics.connectionsAccepted.addUnchecked( 1 );
            m_connections.emplace( connection.id, std::move( connection ) );
        }
    }

    /** Admission refusal: one best-effort 503 (the socket buffer of a
     * fresh connection always takes it) and an immediate close. */
    void
    rejectConnection( int fd )
    {
        m_metrics.countRejected( "max_connections" );
        m_metrics.countStatus( 503 );
        const auto response = buildResponse( 503, "Retry-After: 1\r\n",
                                             "server connection limit reached\n",
                                             /* keepAlive */ false );
        (void)!::send( fd, response.data(), response.size(), MSG_NOSIGNAL );
        ::close( fd );
    }

    void
    closeConnection( std::uint64_t id )
    {
        const auto match = m_connections.find( id );
        if ( match != m_connections.end() ) {
            closeFd( match->second.fd );
            m_connections.erase( match );
        }
    }

    /** Returns false when the connection should be closed. */
    [[nodiscard]] bool
    handleReadable( Connection& connection )
    {
        char buffer[16 * 1024];
        while ( true ) {
            const auto got = ::recv( connection.fd, buffer, sizeof( buffer ), 0 );
            if ( got > 0 ) {
                connection.parser.feed( buffer, static_cast<std::size_t>( got ) );
                connection.lastActivityMs = nowMs();
                continue;
            }
            if ( got == 0 ) {
                connection.peerClosed = true;
                break;
            }
            if ( errno == EINTR ) {
                continue;  /* interrupted, not an error */
            }
            if ( ( errno == EAGAIN ) || ( errno == EWOULDBLOCK ) ) {
                break;
            }
            return false;  /* hard error */
        }
        if ( !tryDispatch( connection ) ) {
            return false;
        }
        /* Peer is gone and nothing is pending: nothing left to do. */
        return !( connection.peerClosed && !connection.awaitingResponse
                  && connection.outbox.empty() );
    }

    /** Parse and dispatch the next buffered request, if any. Returns false
     * when the connection should be closed immediately. */
    [[nodiscard]] bool
    tryDispatch( Connection& connection )
    {
        if ( connection.awaitingResponse || !connection.outbox.empty() ) {
            return true;  /* strictly one response in flight per connection */
        }
        HttpRequest request;
        if ( connection.parser.next( request ) ) {
            connection.awaitingResponse = true;
            m_metrics.requestsTotal.addUnchecked( 1 );
            const auto id = connection.id;
            (void)m_workers.submit( [this, id, request = std::move( request )] () {
                Completion completion;
                completion.connectionId = id;
                completion.keepAlive = request.keepAlive();
                const auto beginNs = telemetry::nowNs();
                {
                    telemetry::Span requestSpan{ "serve", "serve.request" };
                    completion.response = handleRequest( request, completion.keepAlive );
                }
                m_metrics.requestLatency.recordUnchecked( telemetry::nowNs() - beginNs );
                {
                    const std::lock_guard<std::mutex> lock( m_completionMutex );
                    m_completions.push_back( std::move( completion ) );
                }
                wake();
            } );
            return true;
        }
        if ( connection.parser.failed() ) {
            const auto status = connection.parser.failureStatus();
            m_metrics.requestsTotal.addUnchecked( 1 );
            m_metrics.countStatus( status );
            connection.outbox = buildResponse( status, {}, reasonPhrase( status ),
                                               /* keepAlive */ false );
            connection.outboxSent = 0;
            connection.closeAfterFlush = true;
        }
        return true;
    }

    [[nodiscard]] bool
    handleWritable( Connection& connection )
    {
        while ( connection.outboxSent < connection.outbox.size() ) {
            auto remaining = connection.outbox.size() - connection.outboxSent;
            /* serve.write probe: simulate a full socket (wait for POLLOUT)
             * or a trickling one (truncated send) — never corrupt bytes. */
            if ( failsafe::shouldInject( failsafe::FaultPoint::SERVE_WRITE ) ) {
                if ( failsafe::drawBelow( failsafe::FaultPoint::SERVE_WRITE, 2 ) == 0 ) {
                    return true;  /* as-if EAGAIN: POLLOUT will fire again */
                }
                remaining = std::min<std::size_t>( remaining, 1024 );
            }
            const auto sent = ::send( connection.fd,
                                      connection.outbox.data() + connection.outboxSent,
                                      remaining,
                                      MSG_NOSIGNAL );
            if ( sent > 0 ) {
                connection.outboxSent += static_cast<std::size_t>( sent );
                connection.lastActivityMs = nowMs();
                continue;
            }
            if ( errno == EINTR ) {
                continue;  /* interrupted, not an error */
            }
            if ( ( errno == EAGAIN ) || ( errno == EWOULDBLOCK ) ) {
                return true;  /* socket full: POLLOUT will fire again */
            }
            return false;
        }
        connection.outbox.clear();
        connection.outboxSent = 0;
        if ( connection.closeAfterFlush ) {
            return false;
        }
        /* Response sent: a pipelined follow-up may already be buffered. */
        if ( !tryDispatch( connection ) ) {
            return false;
        }
        return !( connection.peerClosed && !connection.awaitingResponse
                  && connection.outbox.empty() );
    }

    void
    drainCompletions()
    {
        std::vector<Completion> completions;
        {
            const std::lock_guard<std::mutex> lock( m_completionMutex );
            completions.swap( m_completions );
        }
        for ( auto& completion : completions ) {
            const auto match = m_connections.find( completion.connectionId );
            if ( match == m_connections.end() ) {
                continue;  /* connection died while the worker was busy */
            }
            auto& connection = match->second;
            connection.awaitingResponse = false;
            connection.outbox = std::move( completion.response );
            connection.outboxSent = 0;
            /* During drain every flushed response ends its connection, so
             * keep-alive clients wind down instead of holding the drain. */
            connection.closeAfterFlush = !completion.keepAlive || m_drainActive;
            connection.lastActivityMs = nowMs();
            /* Try to flush immediately — most responses fit the socket
             * buffer, saving a poll round trip. */
            if ( !handleWritable( connection ) ) {
                closeConnection( completion.connectionId );
            }
        }
    }

    /* --- request handling (worker threads) ----------------------------- */

    [[nodiscard]] std::string
    handleRequest( const HttpRequest& request, bool keepAlive )
    {
        try {
            return handleRequestChecked( request, keepAlive );
        } catch ( const ArchiveNotFoundError& exception ) {
            return errorResponse( 404, exception.what(), keepAlive );
        } catch ( const ArchiveBusyError& exception ) {
            m_metrics.countRejected( "archive_busy" );
            m_metrics.countStatus( 503 );
            return buildResponse( 503, "Content-Type: text/plain\r\nRetry-After: 1\r\n",
                                  std::string( exception.what() ) + "\n", keepAlive );
        } catch ( const std::exception& exception ) {
            /* Unknown format, vendor library missing, corrupt archive, … —
             * the archive's problem, not the server's, but 500 is the
             * honest summary either way. */
            return errorResponse( 500, exception.what(), keepAlive );
        }
    }

    [[nodiscard]] std::string
    errorResponse( int status, const std::string& message, bool keepAlive )
    {
        m_metrics.countStatus( status );
        return buildResponse( status, "Content-Type: text/plain\r\n",
                              message + "\n", keepAlive );
    }

    [[nodiscard]] std::string
    handleRequestChecked( const HttpRequest& request, bool keepAlive )
    {
        const bool isHead = request.method == "HEAD";
        if ( ( request.method != "GET" ) && !isHead ) {
            return errorResponse( 405, "Only GET and HEAD are supported", keepAlive );
        }

        auto target = request.target;
        if ( const auto query = target.find( '?' ); query != std::string::npos ) {
            target.erase( query );
        }

        if ( target == "/healthz" ) {
            /* Liveness: the loop and workers are turning over. */
            m_metrics.countStatus( 200 );
            return isHead ? buildResponseHead( 200, 3, "Content-Type: text/plain\r\n", keepAlive )
                          : buildResponse( 200, "Content-Type: text/plain\r\n", "ok\n", keepAlive );
        }
        if ( target == "/readyz" ) {
            /* Readiness: flips to 503 the moment a drain is requested so
             * load balancers stop routing before the listener closes. */
            const auto ready = !draining();
            const auto status = ready ? 200 : 503;
            const std::string body = ready ? "ready\n" : "draining\n";
            m_metrics.countStatus( status );
            return isHead ? buildResponseHead( status, body.size(),
                                               "Content-Type: text/plain\r\n", keepAlive )
                          : buildResponse( status, "Content-Type: text/plain\r\n", body, keepAlive );
        }
        if ( target == "/metrics" ) {
            const auto body = renderMetrics( m_metrics, m_sharedCache->statistics(),
                                             m_registry.openCount() );
            m_metrics.countStatus( 200 );
            if ( isHead ) {
                return buildResponseHead( 200, body.size(),
                                          "Content-Type: text/plain\r\n", keepAlive );
            }
            return buildResponse( 200, "Content-Type: text/plain\r\n", body, keepAlive );
        }

        auto lease = m_registry.open( target );
        m_metrics.countArchiveRequest( target );
        auto& decompressor = lease.decompressor();
        const auto totalSize = decompressor.size();

        if ( isHead ) {
            m_metrics.countStatus( 200 );
            return buildResponseHead( 200, totalSize, {}, keepAlive );
        }

        const auto range = resolveRange( request.header( "range" ), totalSize );
        if ( range.outcome == RangeOutcome::UNSATISFIABLE ) {
            m_metrics.countStatus( 416 );
            return buildResponse( 416,
                                  "Content-Range: bytes */" + std::to_string( totalSize ) + "\r\n",
                                  {}, keepAlive );
        }

        const auto first = range.outcome == RangeOutcome::RANGE ? range.first : 0;
        const auto length = range.outcome == RangeOutcome::RANGE ? range.length : totalSize;
        std::string body( length, '\0' );
        const auto got = decompressor.readAt(
            first, reinterpret_cast<std::uint8_t*>( body.data() ), length );
        if ( got != length ) {
            return errorResponse( 500, "Decoded range came up short", keepAlive );
        }

        m_metrics.bytesServed.addUnchecked( length );
        if ( range.outcome == RangeOutcome::RANGE ) {
            m_metrics.countStatus( 206 );
            const auto contentRange = "Content-Range: bytes " + std::to_string( first ) + "-"
                                      + std::to_string( first + length - 1 ) + "/"
                                      + std::to_string( totalSize ) + "\r\n";
            return buildResponse( 206, contentRange, body, keepAlive );
        }
        m_metrics.countStatus( 200 );
        return buildResponse( 200, {}, body, keepAlive );
    }

    ServerConfiguration m_configuration;
    std::shared_ptr<ChunkCache> m_sharedCache;
    ArchiveRegistry m_registry;
    ServeMetrics m_metrics;

    int m_listenFd{ -1 };
    int m_wakeRead{ -1 };
    int m_wakeWrite{ -1 };
    std::atomic<std::uint16_t> m_port{ 0 };
    std::atomic<bool> m_stopRequested{ false };
    std::atomic<bool> m_drainRequested{ false };
    bool m_drainActive{ false };              /**< loop-thread mirror of the request */
    std::uint64_t m_drainDeadlineMs{ 0 };

    std::uint64_t m_nextConnectionId{ 0 };
    std::map<std::uint64_t, Connection> m_connections;

    std::mutex m_completionMutex;
    std::vector<Completion> m_completions;

    /* Pool last: its destructor runs first, joining workers that use the
     * registry, cache, metrics, and completion queue above. */
    ThreadPool m_workers;
};

}  // namespace rapidgzip::serve
