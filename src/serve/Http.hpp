#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "../common/Util.hpp"

namespace rapidgzip::serve {

/**
 * Minimal HTTP/1.1 request side for the serve daemon: an incremental
 * parser (bytes arrive in arbitrary splits on non-blocking sockets, and
 * pipelined requests arrive concatenated) plus the Range-header algebra
 * of RFC 9110 §14. Deliberately supports exactly what a range-request
 * front end needs — GET/HEAD, keep-alive, single byte ranges — and maps
 * everything else to the RFC-sanctioned fallbacks rather than erroring:
 * multi-range and syntactically invalid Range headers are IGNORED (the
 * full representation is served with 200), only a syntactically valid but
 * unsatisfiable range earns a 416.
 */

struct HttpRequest
{
    std::string method;
    std::string target;
    int versionMinor{ 1 };  /**< 0 for HTTP/1.0, 1 for HTTP/1.1 */
    /** (lowercased-name, value) in arrival order. */
    std::vector<std::pair<std::string, std::string> > headers;

    /** First value of @p name (lowercase), or "" when absent. */
    [[nodiscard]] std::string
    header( const std::string& name ) const
    {
        for ( const auto& [key, value] : headers ) {
            if ( key == name ) {
                return value;
            }
        }
        return {};
    }

    /** Keep-alive by version default (1.1: yes, 1.0: no), overridden by an
     * explicit Connection header either way. */
    [[nodiscard]] bool
    keepAlive() const
    {
        auto connection = header( "connection" );
        std::transform( connection.begin(), connection.end(), connection.begin(),
                        [] ( unsigned char c ) { return std::tolower( c ); } );
        if ( connection.find( "close" ) != std::string::npos ) {
            return false;
        }
        if ( connection.find( "keep-alive" ) != std::string::npos ) {
            return true;
        }
        return versionMinor >= 1;
    }
};

/**
 * Incremental request parser. feed() buffers bytes; next() extracts one
 * complete request at a time, leaving any pipelined surplus buffered for
 * the following call. Malformed input is sticky: once failed() reports
 * true the connection should answer with failureStatus() and close.
 */
class RequestParser
{
public:
    /** Request line + headers cap — oversized header blocks earn a 431. */
    static constexpr std::size_t MAX_HEADER_BYTES = 16 * KiB;

    void
    feed( const char* data, std::size_t size )
    {
        m_buffer.append( data, size );
    }

    /** True when a full request was parsed into @p request. */
    [[nodiscard]] bool
    next( HttpRequest& request )
    {
        if ( m_failed ) {
            return false;
        }
        const auto headerEnd = findHeaderEnd();
        if ( headerEnd == std::string::npos ) {
            if ( m_buffer.size() > MAX_HEADER_BYTES ) {
                fail( 431 );  /* Request Header Fields Too Large */
            }
            return false;
        }
        if ( headerEnd > MAX_HEADER_BYTES ) {
            fail( 431 );
            return false;
        }
        const auto parsed = parse( m_buffer.substr( 0, headerEnd ), request );
        m_buffer.erase( 0, headerEnd + m_terminatorSize );
        if ( !parsed ) {
            fail( 400 );
            return false;
        }
        return true;
    }

    [[nodiscard]] bool
    failed() const noexcept
    {
        return m_failed;
    }

    [[nodiscard]] int
    failureStatus() const noexcept
    {
        return m_failureStatus;
    }

    [[nodiscard]] std::size_t
    bufferedBytes() const noexcept
    {
        return m_buffer.size();
    }

private:
    void
    fail( int status )
    {
        m_failed = true;
        m_failureStatus = status;
        m_buffer.clear();
    }

    /** Offset of the header-block terminator; CRLFCRLF per the RFC, with
     * bare-LF tolerance for hand-typed clients. */
    [[nodiscard]] std::size_t
    findHeaderEnd()
    {
        const auto crlf = m_buffer.find( "\r\n\r\n" );
        const auto lf = m_buffer.find( "\n\n" );
        if ( ( crlf != std::string::npos ) && ( ( lf == std::string::npos ) || ( crlf < lf ) ) ) {
            m_terminatorSize = 4;
            return crlf;
        }
        if ( lf != std::string::npos ) {
            m_terminatorSize = 2;
            return lf;
        }
        return std::string::npos;
    }

    [[nodiscard]] static bool
    parse( const std::string& block, HttpRequest& request )
    {
        request = HttpRequest{};
        std::size_t lineBegin = 0;
        bool firstLine = true;
        while ( lineBegin <= block.size() ) {
            auto lineEnd = block.find( '\n', lineBegin );
            if ( lineEnd == std::string::npos ) {
                lineEnd = block.size();
            }
            auto line = block.substr( lineBegin, lineEnd - lineBegin );
            lineBegin = lineEnd + 1;
            if ( !line.empty() && ( line.back() == '\r' ) ) {
                line.pop_back();
            }
            if ( line.empty() ) {
                if ( firstLine ) {
                    continue;  /* RFC 9112 §2.2: robustness CRLF before the request line */
                }
                break;
            }
            if ( firstLine ) {
                if ( !parseRequestLine( line, request ) ) {
                    return false;
                }
                firstLine = false;
                continue;
            }
            const auto colon = line.find( ':' );
            if ( ( colon == std::string::npos ) || ( colon == 0 ) ) {
                return false;
            }
            auto name = line.substr( 0, colon );
            if ( name.find( ' ' ) != std::string::npos ) {
                return false;  /* whitespace before the colon is forbidden */
            }
            std::transform( name.begin(), name.end(), name.begin(),
                            [] ( unsigned char c ) { return std::tolower( c ); } );
            auto value = line.substr( colon + 1 );
            const auto valueBegin = value.find_first_not_of( " \t" );
            const auto valueEnd = value.find_last_not_of( " \t" );
            value = valueBegin == std::string::npos
                    ? std::string{}
                    : value.substr( valueBegin, valueEnd - valueBegin + 1 );
            request.headers.emplace_back( std::move( name ), std::move( value ) );
        }
        return !firstLine;
    }

    [[nodiscard]] static bool
    parseRequestLine( const std::string& line, HttpRequest& request )
    {
        const auto firstSpace = line.find( ' ' );
        const auto lastSpace = line.rfind( ' ' );
        if ( ( firstSpace == std::string::npos ) || ( firstSpace == lastSpace )
             || ( firstSpace == 0 ) ) {
            return false;
        }
        request.method = line.substr( 0, firstSpace );
        request.target = line.substr( firstSpace + 1, lastSpace - firstSpace - 1 );
        const auto version = line.substr( lastSpace + 1 );
        if ( request.target.empty()
             || ( request.target.find( ' ' ) != std::string::npos ) ) {
            return false;
        }
        if ( version == "HTTP/1.1" ) {
            request.versionMinor = 1;
        } else if ( version == "HTTP/1.0" ) {
            request.versionMinor = 0;
        } else {
            return false;
        }
        return true;
    }

    std::string m_buffer;
    std::size_t m_terminatorSize{ 4 };
    bool m_failed{ false };
    int m_failureStatus{ 400 };
};

/* --- Range header ------------------------------------------------------ */

enum class RangeOutcome
{
    NO_RANGE,       /**< absent, invalid, or multi-range: serve 200 full */
    RANGE,          /**< valid single range: serve 206 */
    UNSATISFIABLE,  /**< valid syntax, nothing to serve: 416 */
};

struct ResolvedRange
{
    RangeOutcome outcome{ RangeOutcome::NO_RANGE };
    std::size_t first{ 0 };
    std::size_t length{ 0 };
};

namespace detail {

/** Strict non-negative decimal; false on empty/overflow/non-digits. The
 * accumulate is overflow-checked at every step — a digit-count cap alone is
 * NOT enough because 19-digit values can still exceed SIZE_MAX, and an
 * unchecked wrap would turn e.g. "18446744073709551617" into 1 and resolve
 * a Range header into a wrong-but-satisfiable range (RFC 9110 wants such
 * values ignored, never served as different bytes). */
[[nodiscard]] inline bool
parseSize( const std::string& text, std::size_t& result )
{
    if ( text.empty() || ( text.size() > 20 ) ) {
        return false;  /* SIZE_MAX has 20 digits; longer cannot fit */
    }
    std::size_t value = 0;
    for ( const auto character : text ) {
        if ( ( character < '0' ) || ( character > '9' ) ) {
            return false;
        }
        const auto digit = static_cast<std::size_t>( character - '0' );
        if ( value > ( std::numeric_limits<std::size_t>::max() - digit ) / 10 ) {
            return false;  /* value * 10 + digit would exceed SIZE_MAX */
        }
        value = value * 10 + digit;
    }
    result = value;
    return true;
}

}  // namespace detail

/**
 * Resolve a Range header value against the representation size per
 * RFC 9110 §14.1.2/§14.2. "bytes=a-b" (inclusive, b clamped), "bytes=a-"
 * (to end), "bytes=-n" (last n bytes; n > size means the whole file).
 * Multi-range ("a-b,c-d") and anything syntactically off are treated as
 * if no Range header were present — the RFC explicitly permits ignoring
 * the header — so only genuinely unsatisfiable requests 416.
 */
[[nodiscard]] inline ResolvedRange
resolveRange( const std::string& headerValue, std::size_t totalSize )
{
    ResolvedRange result;
    if ( headerValue.empty() ) {
        return result;
    }
    const std::string prefix = "bytes=";
    if ( headerValue.compare( 0, prefix.size(), prefix ) != 0 ) {
        return result;  /* unknown unit: ignore */
    }
    const auto spec = headerValue.substr( prefix.size() );
    if ( ( spec.find( ',' ) != std::string::npos )
         || ( spec.find_first_of( " \t" ) != std::string::npos ) ) {
        return result;  /* multi-range (or junk): serve the full file */
    }
    const auto dash = spec.find( '-' );
    if ( dash == std::string::npos ) {
        return result;
    }
    const auto firstText = spec.substr( 0, dash );
    const auto lastText = spec.substr( dash + 1 );

    if ( firstText.empty() ) {
        /* Suffix form "-n": the final n bytes. */
        std::size_t suffixLength = 0;
        if ( !detail::parseSize( lastText, suffixLength ) ) {
            return result;
        }
        if ( ( suffixLength == 0 ) || ( totalSize == 0 ) ) {
            result.outcome = RangeOutcome::UNSATISFIABLE;
            return result;
        }
        suffixLength = std::min( suffixLength, totalSize );
        result.outcome = RangeOutcome::RANGE;
        result.first = totalSize - suffixLength;
        result.length = suffixLength;
        return result;
    }

    std::size_t first = 0;
    if ( !detail::parseSize( firstText, first ) ) {
        return result;
    }
    std::size_t last = totalSize == 0 ? 0 : totalSize - 1;
    if ( !lastText.empty() ) {
        if ( !detail::parseSize( lastText, last ) || ( last < first ) ) {
            return result;  /* inverted range is invalid syntax: ignore */
        }
    }
    if ( first >= totalSize ) {
        result.outcome = RangeOutcome::UNSATISFIABLE;
        return result;
    }
    last = std::min( last, totalSize - 1 );
    result.outcome = RangeOutcome::RANGE;
    result.first = first;
    result.length = last - first + 1;
    return result;
}

/* --- response building ------------------------------------------------- */

[[nodiscard]] inline const char*
reasonPhrase( int status ) noexcept
{
    switch ( status ) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 416: return "Range Not Satisfiable";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
    }
}

/**
 * Status line + headers + blank line, with an explicit Content-Length —
 * usable standalone for HEAD responses (announce the size, send no body).
 * @p extraHeaders are preformatted "Name: value\r\n" lines (Content-Range
 * and friends).
 */
[[nodiscard]] inline std::string
buildResponseHead( int status,
                   std::size_t contentLength,
                   const std::string& extraHeaders,
                   bool keepAlive )
{
    std::string response;
    response.reserve( 128 + extraHeaders.size() );
    response += "HTTP/1.1 ";
    response += std::to_string( status );
    response += ' ';
    response += reasonPhrase( status );
    response += "\r\nContent-Length: ";
    response += std::to_string( contentLength );
    response += "\r\nAccept-Ranges: bytes\r\nConnection: ";
    response += keepAlive ? "keep-alive" : "close";
    response += "\r\n";
    response += extraHeaders;
    response += "\r\n";
    return response;
}

/** Serialize a complete response (head + body). */
[[nodiscard]] inline std::string
buildResponse( int status,
               const std::string& extraHeaders,
               const std::string& body,
               bool keepAlive )
{
    auto response = buildResponseHead( status, body.size(), extraHeaders, keepAlive );
    response += body;
    return response;
}

}  // namespace rapidgzip::serve
