#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "../core/ChunkCache.hpp"

namespace rapidgzip::serve {

/**
 * Process-wide serve counters. Workers bump these concurrently while the
 * /metrics handler snapshots them, so every field is a relaxed atomic —
 * the numbers are monitoring data, not synchronization.
 */
struct ServeMetrics
{
    std::atomic<std::size_t> requestsTotal{ 0 };
    std::atomic<std::size_t> responses2xx{ 0 };
    std::atomic<std::size_t> responses4xx{ 0 };
    std::atomic<std::size_t> responses5xx{ 0 };
    std::atomic<std::size_t> bytesServed{ 0 };
    std::atomic<std::size_t> connectionsAccepted{ 0 };

    void
    countStatus( int status )
    {
        if ( ( status >= 200 ) && ( status < 300 ) ) {
            responses2xx.fetch_add( 1, std::memory_order_relaxed );
        } else if ( ( status >= 400 ) && ( status < 500 ) ) {
            responses4xx.fetch_add( 1, std::memory_order_relaxed );
        } else if ( status >= 500 ) {
            responses5xx.fetch_add( 1, std::memory_order_relaxed );
        }
    }
};

/** Plain-text exposition (Prometheus-style `name value` lines). */
[[nodiscard]] inline std::string
renderMetrics( const ServeMetrics& metrics,
               const ChunkCacheStatistics& cache,
               std::size_t openArchives )
{
    std::string out;
    const auto line = [&out] ( const char* name, std::size_t value ) {
        out += name;
        out += ' ';
        out += std::to_string( value );
        out += '\n';
    };
    line( "rapidgzip_serve_requests_total", metrics.requestsTotal.load( std::memory_order_relaxed ) );
    line( "rapidgzip_serve_responses_2xx", metrics.responses2xx.load( std::memory_order_relaxed ) );
    line( "rapidgzip_serve_responses_4xx", metrics.responses4xx.load( std::memory_order_relaxed ) );
    line( "rapidgzip_serve_responses_5xx", metrics.responses5xx.load( std::memory_order_relaxed ) );
    line( "rapidgzip_serve_bytes_served", metrics.bytesServed.load( std::memory_order_relaxed ) );
    line( "rapidgzip_serve_connections_accepted",
          metrics.connectionsAccepted.load( std::memory_order_relaxed ) );
    line( "rapidgzip_serve_open_archives", openArchives );
    line( "rapidgzip_serve_cache_hits", cache.hits );
    line( "rapidgzip_serve_cache_misses", cache.misses );
    line( "rapidgzip_serve_cache_insertions", cache.insertions );
    line( "rapidgzip_serve_cache_evictions", cache.evictions );
    line( "rapidgzip_serve_cache_bytes", cache.currentBytes );
    line( "rapidgzip_serve_cache_capacity_bytes", cache.capacityBytes );
    out += "rapidgzip_serve_cache_hit_rate ";
    out += std::to_string( cache.hitRate() );
    out += '\n';
    return out;
}

}  // namespace rapidgzip::serve
