#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "../core/ChunkCache.hpp"
#include "../telemetry/Registry.hpp"

namespace rapidgzip::serve {

/**
 * Serve counters, now thin handles into the process-wide telemetry registry
 * (PR 8 absorbed the old standalone atomics). Workers bump them while the
 * /metrics handler scrapes, same as before — the registry's sharded relaxed
 * atomics ARE the storage. Serve counters count unconditionally (they are
 * the daemon's primary operational numbers, as the standalone struct was);
 * the metricsEnabled() gate only governs the library-internal pipeline
 * hooks.
 */
struct ServeMetrics
{
    telemetry::Counter& requestsTotal;
    telemetry::Counter& responses2xx;
    telemetry::Counter& responses4xx;
    telemetry::Counter& responses5xx;
    telemetry::Counter& bytesServed;
    /** Body bytes lent straight out of cached decoded chunks (borrowed
     * spans, no copy) vs. bytes that went through a private range copy
     * (the serial-fallback path). A healthy 200/206 hot path over chunked
     * archives keeps rangeCopyBytes at 0 — serve_load asserts exactly
     * that, and /metrics exposes both so the claim is checkable live. */
    telemetry::Counter& zeroCopyBytes;
    telemetry::Counter& rangeCopyBytes;
    telemetry::Counter& zeroCopySpans;
    telemetry::Counter& connectionsAccepted;
    telemetry::Counter& timeoutsTotal;
    telemetry::Histogram& requestLatency;

    ServeMetrics() :
        requestsTotal( telemetry::Registry::instance().counter(
            "rapidgzip_serve_requests_total", "HTTP requests parsed from client connections." ) ),
        responses2xx( telemetry::Registry::instance().counter(
            "rapidgzip_serve_responses_2xx_total", "Responses sent with a 2xx status." ) ),
        responses4xx( telemetry::Registry::instance().counter(
            "rapidgzip_serve_responses_4xx_total", "Responses sent with a 4xx status." ) ),
        responses5xx( telemetry::Registry::instance().counter(
            "rapidgzip_serve_responses_5xx_total", "Responses sent with a 5xx status." ) ),
        bytesServed( telemetry::Registry::instance().counter(
            "rapidgzip_serve_bytes_served_total", "Response body bytes served from archives." ) ),
        zeroCopyBytes( telemetry::Registry::instance().counter(
            "rapidgzip_serve_zero_copy_bytes_total",
            "Body bytes lent as refcounted spans of cached chunks (never copied)." ) ),
        rangeCopyBytes( telemetry::Registry::instance().counter(
            "rapidgzip_serve_range_copy_bytes_total",
            "Body bytes copied into a private buffer (serial-fallback reads only)." ) ),
        zeroCopySpans( telemetry::Registry::instance().counter(
            "rapidgzip_serve_zero_copy_spans_total",
            "Refcounted chunk spans lent into responses." ) ),
        connectionsAccepted( telemetry::Registry::instance().counter(
            "rapidgzip_serve_connections_accepted_total", "Client connections accepted." ) ),
        timeoutsTotal( telemetry::Registry::instance().counter(
            "rapidgzip_serve_timeouts_total",
            "Connections closed by a deadline: slow header read, idle keep-alive, stalled write." ) ),
        requestLatency( telemetry::Registry::instance().histogram(
            "rapidgzip_serve_request_seconds",
            "Request handling latency from parse completion to response ready." ) )
    {}

    void
    countStatus( int status )
    {
        if ( ( status >= 200 ) && ( status < 300 ) ) {
            responses2xx.addUnchecked( 1 );
        } else if ( ( status >= 400 ) && ( status < 500 ) ) {
            responses4xx.addUnchecked( 1 );
        } else if ( status >= 500 ) {
            responses5xx.addUnchecked( 1 );
        }
        /* Per-status series ("rapidgzip_serve_responses_total{status="206"}").
         * HTTP status codes bound the cardinality; handles are cached so the
         * registry mutex is only taken on each status's first occurrence. */
        static constexpr const char* HELP = "Responses by exact HTTP status code.";
        thread_local std::map<int, telemetry::Counter*> handles;
        auto& handle = handles[status];
        if ( handle == nullptr ) {
            handle = &telemetry::Registry::instance().counter(
                "rapidgzip_serve_responses_total", HELP,
                "status=\"" + std::to_string( status ) + "\"" );
        }
        handle->addUnchecked( 1 );
    }

    /** Admission-control refusals by reason — "max_connections" (accept
     * gate) or "archive_busy" (per-archive semaphore). The reason set is a
     * small fixed vocabulary, so handles are cached like countStatus. */
    void
    countRejected( const char* reason )
    {
        static constexpr const char* HELP = "Requests or connections refused by admission control.";
        thread_local std::map<std::string, telemetry::Counter*> handles;
        auto& handle = handles[reason];
        if ( handle == nullptr ) {
            handle = &telemetry::Registry::instance().counter(
                "rapidgzip_serve_rejected_total", HELP,
                "reason=\"" + std::string( reason ) + "\"" );
        }
        handle->addUnchecked( 1 );
    }

    /** Per-archive request series; call after a successful registry open so
     * the label set is bounded by real archives, not attacker-chosen URLs. */
    void
    countArchiveRequest( const std::string& target )
    {
        static constexpr const char* HELP = "Requests per archive path (successfully opened targets only).";
        auto& counter = telemetry::Registry::instance().counter(
            "rapidgzip_serve_archive_requests_total", HELP,
            "archive=\"" + telemetry::escapeLabelValue( target ) + "\"" );
        counter.addUnchecked( 1 );
    }
};

/**
 * Prometheus exposition: the full telemetry registry (serve counters,
 * request latency summary with p50/p90/p99, and — when the pipeline gate is
 * on — per-stage pipeline counters), plus the shared chunk cache and
 * archive registry gauges scraped at render time. All # HELP/# TYPE
 * annotated; doubles render with fixed precision (std::to_string is
 * locale-dependent).
 */
[[nodiscard]] inline std::string
renderMetrics( const ServeMetrics& /* metrics — live in the registry */,
               const ChunkCacheStatistics& cache,
               std::size_t openArchives )
{
    std::string out = telemetry::Registry::instance().renderPrometheus();

    const auto gauge = [&out] ( const char* name, const char* help, std::size_t value ) {
        out += "# HELP " + std::string( name ) + " " + help + "\n";
        out += "# TYPE " + std::string( name ) + " gauge\n";
        out += std::string( name ) + " " + std::to_string( value ) + "\n";
    };
    const auto counter = [&out] ( const char* name, const char* help, std::size_t value ) {
        out += "# HELP " + std::string( name ) + " " + help + "\n";
        out += "# TYPE " + std::string( name ) + " counter\n";
        out += std::string( name ) + " " + std::to_string( value ) + "\n";
    };

    gauge( "rapidgzip_serve_open_archives", "Archives currently open in the bounded registry.",
           openArchives );
    counter( "rapidgzip_serve_cache_hits_total", "Shared chunk cache hits.", cache.hits );
    counter( "rapidgzip_serve_cache_misses_total", "Shared chunk cache misses.", cache.misses );
    counter( "rapidgzip_serve_cache_insertions_total", "Chunks inserted into the shared cache.",
             cache.insertions );
    counter( "rapidgzip_serve_cache_evictions_total", "Chunks evicted from the shared cache.",
             cache.evictions );
    gauge( "rapidgzip_serve_cache_bytes", "Decoded bytes resident in the shared cache.",
           cache.currentBytes );
    gauge( "rapidgzip_serve_cache_capacity_bytes", "Shared cache byte capacity.",
           cache.capacityBytes );
    out += "# HELP rapidgzip_serve_cache_hit_rate Shared cache hit fraction in [0, 1].\n";
    out += "# TYPE rapidgzip_serve_cache_hit_rate gauge\n";
    out += "rapidgzip_serve_cache_hit_rate " + telemetry::formatDouble( cache.hitRate() ) + "\n";
    return out;
}

}  // namespace rapidgzip::serve
