#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "../common/Util.hpp"
#include "../simd/ReplaceMarkers.hpp"
#include "definitions.hpp"

namespace rapidgzip::deflate {

/**
 * Two-stage decoding intermediate format (paper §3.3). A chunk decoded from
 * an arbitrary bit offset does not know the 32 KiB window preceding it, so
 * back-references into that window cannot be resolved during decoding.
 * Instead the first stage emits 16-bit symbols:
 *
 *   value < 256            : a resolved literal byte
 *   value >= MARKER_BASE   : a marker — (value - MARKER_BASE) indexes the
 *                            unknown window, 0 = oldest byte (WINDOW_SIZE
 *                            bytes before the chunk start), WINDOW_SIZE-1 =
 *                            the byte immediately preceding the chunk
 *
 * Markers propagate through LZ77 copies, so they persist for as long as the
 * data keeps referencing the pre-chunk history. The second stage replaces
 * them via replaceMarkers() once the previous chunk's window is available.
 */
inline constexpr std::uint16_t MARKER_BASE = 32768;

/** One stretch of conventionally (8-bit) decoded output. FastVector: the
 * decoder's sinks size the buffer ahead of raw-cursor writes, so resize()
 * must not value-initialize. */
struct Segment
{
    FastVector<std::uint8_t> data;

    [[nodiscard]] std::size_t
    decodedSize() const noexcept
    {
        return data.size();
    }
};

/**
 * A decoded chunk: the 16-bit "marked" prefix (possibly empty when the
 * window was known from the start), followed by 8-bit "plain" segments
 * produced after the decoder's fallback to conventional decoding — triggered
 * once the trailing WINDOW_SIZE outputs contain no markers, at which point
 * every future back-reference is guaranteed to resolve inside the chunk.
 */
struct DecodedData
{
    FastVector<std::uint16_t> marked;
    std::vector<Segment> plain;

    [[nodiscard]] std::size_t
    totalSize() const noexcept
    {
        auto size = marked.size();
        for ( const auto& segment : plain ) {
            size += segment.decodedSize();
        }
        return size;
    }

    /** Clear contents but KEEP the allocations (the first plain segment's
     * buffer and the marked buffer) — the reuse primitive the buffer pool
     * is built on. */
    void
    reset()
    {
        marked.clear();
        if ( plain.size() > 1 ) {
            plain.resize( 1 );
        }
        if ( !plain.empty() ) {
            plain.front().data.clear();
        }
    }
};

/**
 * Freelist of DecodedData buffers so steady-state chunk decoding does zero
 * heap allocation: a worker acquires a buffer whose vectors already hold
 * their steady-state capacity, decodes into it, and the consumer releases it
 * back after marker resolution. Producers and consumers are different
 * threads (pool workers decode, the stitch thread consumes), hence one
 * shared mutex-guarded freelist rather than thread-local caches; the lock is
 * taken twice per multi-megabyte chunk, which is noise.
 *
 * Buffers that never come back (error paths, tests, benches) are simply
 * destroyed by their owner — the pool holds only what was released, capped
 * at MAX_POOLED entries, itself bounded in practice by the in-flight batch.
 */
class DecodedDataPool
{
public:
    [[nodiscard]] static DecodedData
    acquire()
    {
        auto& pool = instance();
        const std::lock_guard<std::mutex> lock( pool.m_mutex );
        if ( pool.m_free.empty() ) {
            return {};
        }
        auto data = std::move( pool.m_free.back() );
        pool.m_free.pop_back();
        return data;
    }

    static void
    release( DecodedData&& data )
    {
        /* Outliers (a pathological-ratio chunk's buffers) are destroyed
         * instead of retained: the pool bounds its steady-state footprint
         * to MAX_POOLED * MAX_POOLED_CAPACITY_BYTES worst case. */
        const auto retainedBytes =
            data.marked.capacity() * sizeof( std::uint16_t )
            + ( data.plain.empty() ? 0 : data.plain.front().data.capacity() );
        if ( retainedBytes > MAX_POOLED_CAPACITY_BYTES ) {
            return;
        }
        data.reset();
        auto& pool = instance();
        const std::lock_guard<std::mutex> lock( pool.m_mutex );
        if ( pool.m_free.size() < MAX_POOLED ) {
            pool.m_free.push_back( std::move( data ) );
        }
    }

    /** Drop every retained buffer — for callers that know the heavy
     * decoding phase is over and want the memory back before process end. */
    static void
    clear()
    {
        auto& pool = instance();
        const std::lock_guard<std::mutex> lock( pool.m_mutex );
        pool.m_free.clear();
        pool.m_free.shrink_to_fit();
    }

private:
    static constexpr std::size_t MAX_POOLED = 64;
    static constexpr std::size_t MAX_POOLED_CAPACITY_BYTES = std::size_t( 128 ) << 20U;

    [[nodiscard]] static DecodedDataPool&
    instance()
    {
        static DecodedDataPool pool;
        return pool;
    }

    std::mutex m_mutex;
    std::vector<DecodedData> m_free;
};

/**
 * Stage two: substitute every marker in @p symbols with the corresponding
 * byte of @p window and narrow the rest to bytes, writing totalSize bytes to
 * @p output. @p window holds the last window.size() bytes of output
 * preceding the chunk; the full-window case (WINDOW_SIZE bytes) is the hot
 * path the paper benchmarks at 1254 MB/s in Table 2.
 *
 * Markers reaching in front of a short window decode to 0 — a valid stream
 * never produces them (a back-reference cannot outreach the real history),
 * so they only appear for false block-finder positives, which the chunk
 * fetcher's checksum verification rejects wholesale.
 */
inline void
replaceMarkers( VectorView<std::uint16_t> symbols,
                VectorView<std::uint8_t> window,
                std::uint8_t* output ) noexcept
{
    /* The SIMD kernel hardwires the marker encoding; keep it impossible to
     * drift from these constants silently. */
    static_assert( MARKER_BASE == 0x8000U, "simd::replaceMarkers assumes the int16 sign bit" );
    static_assert( WINDOW_SIZE == 0x8000U, "simd::replaceMarkers masks offsets with 0x7FFF" );

    const auto* const windowData = window.data();
    if ( window.size() >= WINDOW_SIZE ) {
        /* Hot path: any marker offset is addressable — runtime-dispatched
         * (SSE2/AVX2/NEON) compare-and-patch narrowing. */
        const auto* const recent = windowData + ( window.size() - WINDOW_SIZE );
        simd::replaceMarkers( symbols.data(), symbols.size(), recent, output );
        return;
    }

    const auto missing = WINDOW_SIZE - window.size();
    for ( std::size_t i = 0; i < symbols.size(); ++i ) {
        const auto symbol = symbols[i];
        if ( symbol < MARKER_BASE ) {
            output[i] = static_cast<std::uint8_t>( symbol );
        } else {
            const std::size_t offset = symbol - MARKER_BASE;
            output[i] = offset >= missing ? windowData[offset - missing] : std::uint8_t( 0 );
        }
    }
}

/** Convenience overload appending the resolved bytes to @p output. */
inline void
resolveInto( const DecodedData& data,
             VectorView<std::uint8_t> window,
             std::vector<std::uint8_t>& output )
{
    if ( !data.marked.empty() ) {
        const auto offset = output.size();
        output.resize( offset + data.marked.size() );
        replaceMarkers( { data.marked.data(), data.marked.size() }, window, output.data() + offset );
    }
    for ( const auto& segment : data.plain ) {
        output.insert( output.end(), segment.data.begin(), segment.data.end() );
    }
}

}  // namespace rapidgzip::deflate
