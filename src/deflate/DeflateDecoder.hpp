#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "../bits/BitReader.hpp"
#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "DecodedData.hpp"
#include "DynamicHeader.hpp"
#include "definitions.hpp"

namespace rapidgzip::deflate {

namespace detail {

/** The fixed (BTYPE 01) codings, built once per process (magic static). */
struct FixedCodings
{
    FixedCodings()
    {
        std::array<std::uint8_t, 288> literalLengths{};
        for ( std::size_t i = 0; i < 144; ++i ) {
            literalLengths[i] = 8;
        }
        for ( std::size_t i = 144; i < 256; ++i ) {
            literalLengths[i] = 9;
        }
        for ( std::size_t i = 256; i < 280; ++i ) {
            literalLengths[i] = 7;
        }
        for ( std::size_t i = 280; i < 288; ++i ) {
            literalLengths[i] = 8;
        }
        std::array<std::uint8_t, 32> distanceLengths{};
        distanceLengths.fill( 5 );
        /* Both are complete by construction; failure is impossible. */
        (void)codings.literal.initializeFromLengths( { literalLengths.data(),
                                                       literalLengths.size() } );
        (void)codings.distance.initializeFromLengths( { distanceLengths.data(),
                                                        distanceLengths.size() } );
        codings.distanceUsable = true;
    }

    DynamicHuffmanCodings codings;
};

[[nodiscard]] inline const DynamicHuffmanCodings&
fixedCodings()
{
    static const FixedCodings instance;
    return instance.codings;
}

}  // namespace detail

/**
 * From-scratch raw-Deflate decoder that can start at ANY bit offset — the
 * first stage of the paper's two-stage scheme (§3.3). Two operating modes:
 *
 *  - window known (setInitialWindow): conventional 8-bit decoding into
 *    DecodedData::plain — used for the first chunk of a stream and for
 *    sequential re-decodes where the window has already been propagated;
 *  - window unknown (default): 16-bit marker decoding into
 *    DecodedData::marked, falling back to conventional decoding once the
 *    trailing WINDOW_SIZE outputs are marker-free (every later
 *    back-reference then provably resolves inside the chunk).
 *
 * decode() consumes whole blocks and stops at a block boundary: before a
 * block whose header would start at or after @p untilBitOffset, after the
 * final block (BFINAL), once @p maxBytes have been produced, or on error.
 * The bit offset of the stopping boundary is reported so chunks can be
 * stitched exactly.
 */
class Decoder
{
public:
    struct Result
    {
        Error error{ Error::NONE };
        bool reachedFinalBlock{ false };
        /** Bit offset of the first unconsumed block boundary: where the next
         * block (or the gzip footer, after BFINAL) begins. On error: the
         * boundary before the failed block. */
        std::size_t endBitOffset{ 0 };
        std::size_t blockCount{ 0 };
    };

    /** Provide the up-to-WINDOW_SIZE bytes preceding the stream position;
     * switches the decoder to conventional 8-bit decoding from the start.
     * An empty view is a valid window (start of a gzip member). */
    void
    setInitialWindow( BufferView window )
    {
        const auto size = std::min( window.size(), WINDOW_SIZE );
        m_windowSize = size;
        for ( std::size_t i = 0; i < size; ++i ) {
            m_window[i] = window[window.size() - size + i];
        }
        m_plainMode = true;
    }

    /** The next input is the LEN/NLEN field of a stored block whose 3
     * header bits lie unreadably before the discovered offset (the
     * NonCompressedBlockFinder reports the byte-aligned LEN position).
     * BFINAL is assumed 0; a wrong assumption surfaces as a decode error in
     * a later block and is handled by the chunk fetcher's re-decode path. */
    void
    setStartAtStoredData( bool startAtStoredData ) noexcept
    {
        m_startAtStoredData = startAtStoredData;
    }

    /** Decode Huffman blocks symbol-by-symbol through the two-level LUT with
     * checked reads — the pre-optimization hot path, kept as the bit-exact
     * reference for the equivalence tests and the before/after benchmark
     * (bench/components_hotpath.cpp). */
    void
    setReferenceHuffmanDecoding( bool reference ) noexcept
    {
        m_referenceDecoding = reference;
    }

    /** Process-global default adopted by newly constructed Decoders — the
     * benchmark hook for A/B-ing code that builds its Decoders internally
     * (the chunk fetcher pipeline). Not for production use. */
    [[nodiscard]] static std::atomic<bool>&
    globalReferenceHuffmanDecoding() noexcept
    {
        static std::atomic<bool> flag{ false };
        return flag;
    }

    [[nodiscard]] Result
    decode( BitReader& reader,
            DecodedData& data,
            std::size_t untilBitOffset = std::numeric_limits<std::size_t>::max(),
            std::size_t maxBytes = std::numeric_limits<std::size_t>::max() )
    {
        if ( m_plainMode && data.plain.empty() ) {
            data.plain.emplace_back();
        }
        /* Mid-block overrun allowance (saturating): blocks normally end well
         * before this; only a runaway block from a false block-finder
         * positive trips the in-block limit. */
        constexpr auto LIMIT = std::numeric_limits<std::size_t>::max();
        m_hardByteLimit = maxBytes > LIMIT - 2 * MAX_MATCH_LENGTH
                          ? LIMIT
                          : maxBytes + 2 * MAX_MATCH_LENGTH;

        Result result;
        result.endBitOffset = reader.tell();
        bool pendingStoredData = m_startAtStoredData;
        while ( true ) {
            if ( ( reader.tell() >= untilBitOffset ) || ( m_totalDecoded >= maxBytes ) ) {
                break;
            }

            std::uint64_t isFinal = 0;
            std::uint64_t type = BLOCK_TYPE_STORED;
            if ( pendingStoredData ) {
                pendingStoredData = false;
            } else {
                if ( reader.bitsLeft() < 3 ) {
                    result.error = Error::TRUNCATED_STREAM;
                    break;
                }
                isFinal = reader.read( 1 );
                type = reader.read( 2 );
            }

            switch ( type ) {
            case BLOCK_TYPE_STORED:
                result.error = decodeStoredBlock( reader, data );
                break;
            case BLOCK_TYPE_FIXED:
                result.error = decodeHuffmanBlock( reader, data, detail::fixedCodings() );
                break;
            case BLOCK_TYPE_DYNAMIC:
                /* The reference path builds only the two-level tables — the
                 * exact pre-optimization construction cost — so before/after
                 * benchmarks compare true end-to-end costs. */
                result.error = readDynamicCodings( reader, m_codings, !m_referenceDecoding );
                if ( result.error == Error::NONE ) {
                    result.error = decodeHuffmanBlock( reader, data, m_codings );
                }
                break;
            default:
                result.error = Error::INVALID_BLOCK_TYPE;
                break;
            }
            if ( result.error != Error::NONE ) {
                break;
            }

            ++result.blockCount;
            result.endBitOffset = reader.tell();
            maybeFallBackToPlain( data );
            if ( isFinal != 0 ) {
                result.reachedFinalBlock = true;
                break;
            }
        }
        return result;
    }

    [[nodiscard]] std::size_t
    totalDecoded() const noexcept
    {
        return m_totalDecoded;
    }

    /** True once the decoder switched (or started) in conventional 8-bit mode. */
    [[nodiscard]] bool
    inPlainMode() const noexcept
    {
        return m_plainMode;
    }

private:
    static constexpr std::size_t NO_MARKER = std::numeric_limits<std::size_t>::max();

    [[nodiscard]] Error
    decodeStoredBlock( BitReader& reader, DecodedData& data )
    {
        reader.alignToByte();
        if ( reader.bitsLeft() < 32 ) {
            return Error::TRUNCATED_STREAM;
        }
        const auto length = reader.read( 16 );
        const auto complement = reader.read( 16 );
        if ( ( length ^ complement ) != 0xFFFFU ) {
            return Error::INVALID_STORED_LENGTH;
        }
        if ( reader.bitsLeft() < length * 8 ) {
            return Error::TRUNCATED_STREAM;
        }
        for ( std::uint64_t i = 0; i < length; ++i ) {
            emitLiteral( data, static_cast<std::uint8_t>( reader.read( 8 ) ) );
            if ( m_totalDecoded >= m_hardByteLimit ) {
                return Error::EXCEEDED_OUTPUT_LIMIT;
            }
        }
        return Error::NONE;
    }

    /**
     * The literal/length + distance symbol loop — where paper Table 2 puts
     * most of the decode time. The fast path amortizes BitReader refills
     * (one ensureBits() per iteration covers a worst-case 48-bit
     * literal/length + distance group) and emits through the multi-symbol
     * cached LUT with unchecked buffer appends; near the end of input it
     * hands off to the checked reference loop, which owns the EOF
     * semantics, so behavior at stream boundaries is identical by
     * construction.
     */
    [[nodiscard]] Error
    decodeHuffmanBlock( BitReader& reader,
                        DecodedData& data,
                        const DynamicHuffmanCodings& codings )
    {
        if ( m_referenceDecoding ) {
            return decodeHuffmanBlockReference( reader, data, codings );
        }
        if ( m_plainMode ) {
            return decodeHuffmanBlockFast<PlainFastSink>( reader, data, codings );
        }
        return decodeHuffmanBlockFast<MarkedFastSink>( reader, data, codings );
    }

    [[nodiscard]] Error
    decodeHuffmanBlockReference( BitReader& reader,
                                 DecodedData& data,
                                 const DynamicHuffmanCodings& codings )
    {
        while ( true ) {
            const auto symbol = codings.literal.decode( reader );
            if ( symbol < 0 ) {
                return symbol == HuffmanCodingDoubleLUT::DECODE_EOF ? Error::TRUNCATED_STREAM
                                                                    : Error::INVALID_SYMBOL;
            }
            if ( symbol < static_cast<int>( END_OF_BLOCK ) ) {
                emitLiteral( data, static_cast<std::uint8_t>( symbol ) );
            } else if ( symbol == static_cast<int>( END_OF_BLOCK ) ) {
                return Error::NONE;
            } else {
                if ( symbol > 285 ) {
                    return Error::INVALID_SYMBOL;
                }
                const auto lengthIndex = static_cast<std::size_t>( symbol - 257 );
                const auto lengthExtra = LENGTH_EXTRA_BITS[lengthIndex];
                if ( reader.bitsLeft() < lengthExtra ) {
                    return Error::TRUNCATED_STREAM;
                }
                const std::size_t length = LENGTH_BASE[lengthIndex]
                                           + ( lengthExtra > 0 ? reader.read( lengthExtra ) : 0 );

                if ( !codings.distanceUsable ) {
                    return Error::INVALID_DISTANCE;
                }
                const auto distanceSymbol = codings.distance.decode( reader );
                if ( distanceSymbol < 0 ) {
                    return distanceSymbol == HuffmanCodingDoubleLUT::DECODE_EOF
                           ? Error::TRUNCATED_STREAM
                           : Error::INVALID_DISTANCE;
                }
                if ( distanceSymbol > 29 ) {
                    return Error::INVALID_DISTANCE;
                }
                const auto distanceExtra = DISTANCE_EXTRA_BITS[distanceSymbol];
                if ( reader.bitsLeft() < distanceExtra ) {
                    return Error::TRUNCATED_STREAM;
                }
                const std::size_t distance =
                    DISTANCE_BASE[distanceSymbol]
                    + ( distanceExtra > 0 ? reader.read( distanceExtra ) : 0 );

                const auto error = emitMatch( data, length, distance );
                if ( error != Error::NONE ) {
                    return error;
                }
            }
            if ( m_totalDecoded >= m_hardByteLimit ) {
                return Error::EXCEEDED_OUTPUT_LIMIT;
            }
        }
    }

    /**
     * Append sink over a plain (8-bit) segment: the vector is grown in
     * geometric slabs and writes go through a raw cursor — no per-byte
     * size/capacity check — with the logical size restored on every exit
     * path by the destructor. LZ77 copies take the seeded window first,
     * then a contiguous memcpy when source and destination cannot overlap
     * (distance >= remaining length), else byte-wise replication.
     */
    class PlainFastSink
    {
    public:
        PlainFastSink( Decoder& decoder, DecodedData& data ) :
            m_decoder( decoder ),
            m_out( data.plain.back().data ),
            m_cursor( m_out.size() )
        {
            /* Jump straight to the existing capacity — pure bookkeeping
             * thanks to FastVector's default-init resize — so ensure()
             * almost never resizes mid-decode; the raw data pointer is
             * cached so emission never re-reads the vector object. */
            if ( m_out.capacity() > m_out.size() ) {
                m_out.resize( m_out.capacity() );
            }
            m_data = m_out.data();
        }

        ~PlainFastSink()
        {
            m_out.resize( m_cursor );
        }

        PlainFastSink( const PlainFastSink& ) = delete;
        PlainFastSink& operator=( const PlainFastSink& ) = delete;

        void
        ensure( std::size_t need )
        {
            if ( m_cursor + need > m_out.size() ) {
                m_out.resize( std::max( m_out.size() + m_out.size() / 2,
                                        m_cursor + need + GROWTH_SLACK ) );
                m_data = m_out.data();
            }
        }

        /** Branchless 1-or-2-literal emit: both payload bytes are written
         * unconditionally (space is ensured), the cursor advances by
         * @p count — no single-vs-double branch on the hottest path. */
        void
        pushPair( std::uint16_t payload, unsigned count ) noexcept
        {
    #if defined( __BYTE_ORDER__ ) && ( __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__ )
            /* One 2-byte store covers both literals; cursor advances by the
             * real count (the second byte is garbage for count 1 and gets
             * overwritten). */
            std::memcpy( m_data + m_cursor, &payload, sizeof( payload ) );
    #else
            m_data[m_cursor] = static_cast<std::uint8_t>( payload );
            m_data[m_cursor + 1] = static_cast<std::uint8_t>( payload >> 8U );
    #endif
            m_cursor += count;
        }

        [[nodiscard]] Error
        copyMatch( std::size_t length, std::size_t distance ) noexcept
        {
            const auto start = m_cursor;
            if ( distance > start + m_decoder.m_windowSize ) {
                return Error::EXCEEDED_WINDOW;
            }
            auto* const out = m_data;
            std::size_t remaining = length;
            if ( distance > start ) {
                const auto fromWindow = std::min( length, distance - start );
                const auto* const source = m_decoder.m_window.data()
                                           + m_decoder.m_windowSize - ( distance - start );
                std::memcpy( out + m_cursor, source, fromWindow );
                m_cursor += fromWindow;
                remaining -= fromWindow;
            }
            if ( remaining > 0 ) {
                auto* const destination = out + m_cursor;
                const auto* const source = destination - distance;
                if ( distance >= WILDCOPY_CHUNK ) {
                    /* Chunked wildcopy: each 8-byte block reads bytes
                     * finalized by earlier blocks (distance >= chunk), so
                     * any overlap replicates correctly; it may write up to
                     * 7 bytes past the match end, headroom that
                     * FAST_LOOP_EMIT_SLACK reserves. Turns the dominant
                     * short-match copy into 1-2 load/store pairs instead of
                     * a variable-length memcpy call. */
                    std::size_t copied = 0;
                    do {
                        std::memcpy( destination + copied, source + copied, WILDCOPY_CHUNK );
                        copied += WILDCOPY_CHUNK;
                    } while ( copied < remaining );
                    m_cursor += remaining;
                } else {
                    for ( ; remaining > 0; --remaining, ++m_cursor ) {
                        out[m_cursor] = out[m_cursor - distance];
                    }
                }
            }
            return Error::NONE;
        }

    private:
        Decoder& m_decoder;
        FastVector<std::uint8_t>& m_out;
        std::uint8_t* m_data{ nullptr };
        std::size_t m_cursor;
    };

    /**
     * Append sink over the 16-bit marker buffer. The bulk fast path applies
     * when the copy source provably contains no marker (the last marker lies
     * before the source range): the copied symbols are then plain bytes, the
     * marker clock needs no update, and non-overlapping runs become one
     * memcpy. Matches that reach into the unknown window or over markers
     * keep the exact per-symbol semantics of the reference path.
     */
    class MarkedFastSink
    {
    public:
        MarkedFastSink( Decoder& decoder, DecodedData& data ) :
            m_decoder( decoder ),
            m_out( data.marked ),
            m_cursor( m_out.size() ),
            /* Mirrored locally for the same aliasing reason as the cursor:
             * copyMatch consults it per match and byte stores would force a
             * reload through the decoder reference every time. */
            m_lastMarker( decoder.m_lastMarkerPosition )
        {
            if ( m_out.capacity() > m_out.size() ) {
                m_out.resize( m_out.capacity() );
            }
            m_data = m_out.data();
        }

        ~MarkedFastSink()
        {
            m_out.resize( m_cursor );
            m_decoder.m_lastMarkerPosition = m_lastMarker;
        }

        MarkedFastSink( const MarkedFastSink& ) = delete;
        MarkedFastSink& operator=( const MarkedFastSink& ) = delete;

        void
        ensure( std::size_t need )
        {
            if ( m_cursor + need > m_out.size() ) {
                m_out.resize( std::max( m_out.size() + m_out.size() / 2,
                                        m_cursor + need + GROWTH_SLACK ) );
                m_data = m_out.data();
            }
        }

        void
        pushPair( std::uint16_t payload, unsigned count ) noexcept
        {
            auto* const out = m_data + m_cursor;
            out[0] = static_cast<std::uint16_t>( payload & 0xFFU );
            out[1] = static_cast<std::uint16_t>( payload >> 8U );
            m_cursor += count;
        }

        [[nodiscard]] Error
        copyMatch( std::size_t length, std::size_t distance ) noexcept
        {
            auto* const out = m_data;
            const auto start = m_cursor;
            if ( distance <= start ) {
                const auto sourceBegin = start - distance;
                if ( ( m_lastMarker == NO_MARKER ) || ( m_lastMarker < sourceBegin ) ) {
                    if ( distance >= WILDCOPY_CHUNK ) {
                        /* Same chunked wildcopy as the plain sink, in
                         * 8-symbol blocks; overlap-safe for distance >=
                         * chunk, overshoot covered by the emit slack. */
                        auto* const destination = out + m_cursor;
                        const auto* const source = out + sourceBegin;
                        std::size_t copied = 0;
                        do {
                            std::memcpy( destination + copied, source + copied,
                                         WILDCOPY_CHUNK * sizeof( std::uint16_t ) );
                            copied += WILDCOPY_CHUNK;
                        } while ( copied < length );
                        m_cursor += length;
                    } else {
                        for ( std::size_t i = 0; i < length; ++i, ++m_cursor ) {
                            out[m_cursor] = out[m_cursor - distance];
                        }
                    }
                    return Error::NONE;
                }
            }
            /* distance <= 32768 and position >= 0 bound the marker offset. */
            for ( std::size_t i = 0; i < length; ++i ) {
                const auto position = m_cursor;
                std::uint16_t symbol;
                if ( distance <= position ) {
                    symbol = out[position - distance];
                } else {
                    symbol = static_cast<std::uint16_t>(
                        MARKER_BASE + ( WINDOW_SIZE - ( distance - position ) ) );
                }
                if ( symbol >= MARKER_BASE ) {
                    m_lastMarker = position;
                }
                out[m_cursor++] = symbol;
            }
            return Error::NONE;
        }

    private:
        Decoder& m_decoder;
        FastVector<std::uint16_t>& m_out;
        std::uint16_t* m_data{ nullptr };
        std::size_t m_cursor;
        std::size_t m_lastMarker;
    };

    /** Slab growth floor for the fast sinks; pooled buffers reach their
     * steady-state capacity after the first chunk, making this moot. */
    static constexpr std::size_t GROWTH_SLACK = 64 * 1024;

    /** Worst-case stream bits one fast-loop iteration may consume: a 15-bit
     * literal/length code + 5 extra bits + a 15-bit distance code + 13
     * extra bits. One ensureBits() per iteration covers the whole group. */
    static constexpr unsigned FAST_LOOP_GUARANTEED_BITS = 48;

    /** 8-element blocks for the overlap-safe chunked match copy. */
    static constexpr std::size_t WILDCOPY_CHUNK = 8;

    /** Worst-case elements emitted between two sink.ensure() calls: the
     * inner literal chew emits at most 2 bytes per >= 1 consumed bit of the
     * 48-bit guarantee, plus one maximum-length match including the
     * wildcopy overshoot. */
    static constexpr std::size_t FAST_LOOP_EMIT_SLACK =
        MAX_MATCH_LENGTH + WILDCOPY_CHUNK + 2 * FAST_LOOP_GUARANTEED_BITS;

    template<typename Sink>
    [[nodiscard]] Error
    decodeHuffmanBlockFast( BitReader& reader,
                            DecodedData& data,
                            const DynamicHuffmanCodings& codings )
    {
        static_assert( FAST_LOOP_GUARANTEED_BITS <= BitReader::MAX_ENSURE_BITS );
        const auto& literal = codings.literal;
        /* Hoist every loop invariant into locals: output stores are byte
         * stores that alias all class members, so anything not local would
         * be reloaded from memory on every iteration. The RegisterCursor
         * does the same for the BitReader's state and syncs back on scope
         * exit; m_totalDecoded is mirrored in `produced`. */
        constexpr auto cacheBits = HuffmanCodingMultiCached::CACHE_BITS;
        constexpr auto cacheMask = ( std::uint64_t( 1 ) << cacheBits ) - 1U;
        const auto* const multiTable = literal.tableData();
        constexpr auto distanceMask =
            ( std::uint64_t( 1 ) << HuffmanCodingDistanceCached::CACHE_BITS ) - 1U;
        const auto* const distanceTable = codings.distance.tableData();
        const auto hardByteLimit = m_hardByteLimit;
        auto produced = m_totalDecoded;
        auto result = Error::NONE;
        bool blockDone = false;
        {
            Sink sink( *this, data );
            BitReader::RegisterCursor cursor( reader );
            while ( true ) {
                if ( !cursor.ensureBits( FAST_LOOP_GUARANTEED_BITS ) ) {
                    break;  /* near EOF: the checked reference loop finishes the block */
                }
                if ( produced >= hardByteLimit ) {
                    result = Error::EXCEEDED_OUTPUT_LIMIT;
                    blockDone = true;
                    break;
                }
                sink.ensure( FAST_LOOP_EMIT_SLACK );

                /* Chew literal entries straight from the refill buffer: each
                 * costs one peek + one table hit + two stores, deferring the
                 * refill until the buffered bits run short of one more
                 * lookup. A non-literal entry is handled below under the
                 * full 48-bit guarantee — when the buffer no longer
                 * guarantees that, fall back to the outer loop WITHOUT
                 * consuming; the same entry is re-peeked after the refill. */
                const HuffmanCodingMultiCached::Entry* entry = nullptr;
                while ( true ) {
                    const auto& candidate = multiTable[cursor.peekBufferUnsafe() & cacheMask];
                    if ( candidate.kind() == HuffmanCodingMultiCached::LITERALS ) {
                        cursor.consumeUnsafe( candidate.bitsConsumed );
                        const auto count = candidate.count();
                        sink.pushPair( candidate.payload, count );
                        produced += count;
                        if ( cursor.bufferedBits() >= cacheBits ) {
                            continue;
                        }
                        break;  /* refill, limit-check, and come back */
                    }
                    if ( cursor.bufferedBits() >= FAST_LOOP_GUARANTEED_BITS ) {
                        entry = &candidate;
                    }
                    break;
                }
                if ( entry == nullptr ) {
                    continue;
                }

                cursor.consumeUnsafe( entry->bitsConsumed );  /* 0 for FALLBACK */
                std::size_t length = 0;
                const auto kind = entry->kind();
                if ( kind == HuffmanCodingMultiCached::LENGTH ) {
                    length = entry->payload + cursor.readUnsafe( entry->extraBits() );
                } else if ( kind == HuffmanCodingMultiCached::END_OF_BLOCK ) {
                    blockDone = true;
                    break;
                } else {
                    /* FALLBACK: code longer than the cache window (or the
                     * invalid symbols 286/287) — the two-level LUT resolves
                     * it under the >= 48-bit guarantee. */
                    const auto symbol = literal.fallback().decodeUnsafe( cursor );
                    if ( symbol < 0 ) {
                        result = Error::INVALID_SYMBOL;
                        blockDone = true;
                        break;
                    }
                    if ( symbol < static_cast<int>( END_OF_BLOCK ) ) {
                        sink.pushPair( static_cast<std::uint16_t>( symbol ), 1 );
                        ++produced;
                        continue;
                    }
                    if ( symbol == static_cast<int>( END_OF_BLOCK ) ) {
                        blockDone = true;
                        break;
                    }
                    if ( symbol > 285 ) {
                        result = Error::INVALID_SYMBOL;
                        blockDone = true;
                        break;
                    }
                    const auto lengthIndex = static_cast<std::size_t>( symbol - 257 );
                    length = LENGTH_BASE[lengthIndex]
                             + cursor.readUnsafe( LENGTH_EXTRA_BITS[lengthIndex] );
                }

                if ( !codings.distanceUsable ) {
                    result = Error::INVALID_DISTANCE;
                    blockDone = true;
                    break;
                }
                /* One table hit resolves code AND (usually) the extra bits;
                 * extraBits() is 0 when folded, so the hot path is
                 * branch-free between the folded and unfolded cases. */
                std::size_t distance = 0;
                const auto& distanceEntry =
                    distanceTable[cursor.peekBufferUnsafe() & distanceMask];
                if ( distanceEntry.bitsConsumed != 0 ) {
                    cursor.consumeUnsafe( distanceEntry.bitsConsumed );
                    distance = distanceEntry.payload
                               + cursor.readUnsafe( distanceEntry.extraBits() );
                } else {
                    const auto distanceSymbol = codings.distance.fallback().decodeUnsafe( cursor );
                    if ( ( distanceSymbol < 0 ) || ( distanceSymbol > 29 ) ) {
                        result = Error::INVALID_DISTANCE;
                        blockDone = true;
                        break;
                    }
                    distance = DISTANCE_BASE[distanceSymbol]
                               + cursor.readUnsafe( DISTANCE_EXTRA_BITS[distanceSymbol] );
                }

                const auto error = sink.copyMatch( length, distance );
                if ( error != Error::NONE ) {
                    result = error;
                    blockDone = true;
                    break;
                }
                produced += length;
            }
        }
        m_totalDecoded = produced;
        if ( blockDone ) {
            return result;
        }
        return decodeHuffmanBlockReference( reader, data, codings );
    }

    void
    emitLiteral( DecodedData& data, std::uint8_t byte )
    {
        if ( m_plainMode ) {
            data.plain.back().data.push_back( byte );
        } else {
            data.marked.push_back( byte );
        }
        ++m_totalDecoded;
    }

    /**
     * LZ77 copy. Byte-wise on purpose: overlapping copies (distance <
     * length) replicate, and in 16-bit mode copied symbols may themselves be
     * markers, which must propagate verbatim and keep the marker clock
     * (m_lastMarkerPosition) honest.
     */
    [[nodiscard]] Error
    emitMatch( DecodedData& data, std::size_t length, std::size_t distance )
    {
        if ( m_plainMode ) {
            auto& out = data.plain.back().data;
            const auto start = out.size();
            if ( distance > start + m_windowSize ) {
                return Error::EXCEEDED_WINDOW;
            }
            /* Seeded-window fast path: a back-reference reaching behind the
             * chunk start takes a contiguous run from the seeded window (the
             * window and the output never interleave within one match — once
             * the copy position enters the output it stays there), then the
             * remainder replicates byte-wise in-buffer, which handles the
             * overlapping (distance < length) case. */
            std::size_t copied = 0;
            if ( distance > start ) {
                const auto fromWindow = std::min( length, distance - start );
                const auto* const source = m_window.data() + m_windowSize - ( distance - start );
                out.insert( out.end(), source, source + fromWindow );
                copied = fromWindow;
            }
            for ( ; copied < length; ++copied ) {
                out.push_back( out[out.size() - distance] );
            }
        } else {
            auto& out = data.marked;
            /* distance <= 32768 and position >= 0 bound the marker offset. */
            for ( std::size_t i = 0; i < length; ++i ) {
                const auto position = out.size();
                std::uint16_t symbol;
                if ( distance <= position ) {
                    symbol = out[position - distance];
                } else {
                    symbol = static_cast<std::uint16_t>(
                        MARKER_BASE + ( WINDOW_SIZE - ( distance - position ) ) );
                }
                if ( symbol >= MARKER_BASE ) {
                    m_lastMarkerPosition = position;
                }
                out.push_back( symbol );
            }
        }
        m_totalDecoded += length;
        return Error::NONE;
    }

    /**
     * The paper's §3.3 fallback, checked at block granularity: once the
     * trailing WINDOW_SIZE outputs contain no marker, materialize them as a
     * real window and continue with plain 8-bit decoding — halving memory
     * traffic and skipping stage two for the rest of the chunk.
     */
    void
    maybeFallBackToPlain( DecodedData& data )
    {
        if ( m_plainMode ) {
            return;
        }
        const auto size = data.marked.size();
        if ( size < WINDOW_SIZE ) {
            return;
        }
        if ( ( m_lastMarkerPosition != NO_MARKER )
             && ( m_lastMarkerPosition + WINDOW_SIZE >= size ) ) {
            return;  /* a marker is still inside the trailing window */
        }
        m_windowSize = WINDOW_SIZE;
        for ( std::size_t i = 0; i < WINDOW_SIZE; ++i ) {
            m_window[i] = static_cast<std::uint8_t>( data.marked[size - WINDOW_SIZE + i] );
        }
        data.plain.emplace_back();
        m_plainMode = true;
    }

    DynamicHuffmanCodings m_codings;  /* reused across Dynamic blocks */

    std::array<std::uint8_t, WINDOW_SIZE> m_window{};
    std::size_t m_windowSize{ 0 };
    bool m_plainMode{ false };
    bool m_startAtStoredData{ false };
    bool m_referenceDecoding{ globalReferenceHuffmanDecoding().load( std::memory_order_relaxed ) };
    std::size_t m_lastMarkerPosition{ NO_MARKER };
    std::size_t m_totalDecoded{ 0 };
    std::size_t m_hardByteLimit{ std::numeric_limits<std::size_t>::max() };
};

}  // namespace rapidgzip::deflate
