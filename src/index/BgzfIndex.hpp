#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "../common/Util.hpp"
#include "../gzip/GzipHeader.hpp"
#include "../io/FileReader.hpp"
#include "GzipIndex.hpp"

namespace rapidgzip::index {

/**
 * BGZF (bgzip/htslib) support as a special case of the general index: every
 * BGZF block is a complete gzip member whose FEXTRA "BC" subfield states the
 * total block size, and whose ISIZE footer states its uncompressed size —
 * so a full random-access index can be built by scanning ~30 bytes per
 * 64 KiB block, with NO Deflate decoding at all. Checkpoints are
 * byte-aligned member starts with empty windows; member starts are grouped
 * so each chunk spans at least @p chunkSizeBytes of compressed data (one
 * checkpoint per tiny block would make chunks too small to amortize
 * dispatch).
 *
 * Returns std::nullopt when the file is not BGZF: the scan requires every
 * member to carry a well-formed BC field and the member chain to end
 * exactly at the file end. A chance FEXTRA in ordinary gzip fails that
 * full-file validation, so false positives cannot reroute a normal stream.
 */
[[nodiscard]] inline std::optional<GzipIndex>
tryBuildBgzfIndex( const FileReader& file, std::size_t chunkSizeBytes )
{
    const auto fileSize = file.size();
    /* Smallest BGZF member: 18-byte header + 2-byte empty stored block +
     * 8-byte footer (the EOF block). */
    constexpr std::size_t MIN_BLOCK_SIZE = 28;
    constexpr std::size_t HEADER_PROBE = 18;
    if ( fileSize < MIN_BLOCK_SIZE ) {
        return std::nullopt;
    }

    GzipIndex index;
    index.compressedSizeBytes = fileSize;
    std::size_t offset = 0;
    std::size_t uncompressedOffset = 0;
    std::size_t lastCheckpointOffset = 0;
    bool first = true;

    while ( offset < fileSize ) {
        std::uint8_t header[HEADER_PROBE];
        if ( ( fileSize - offset < MIN_BLOCK_SIZE )
             || ( file.pread( header, sizeof( header ), offset ) != sizeof( header ) ) ) {
            return std::nullopt;
        }
        /* Fixed BGZF header prefix: gzip magic, Deflate, FLG == FEXTRA. */
        if ( ( header[0] != GZIP_MAGIC_1 ) || ( header[1] != GZIP_MAGIC_2 )
             || ( header[2] != GZIP_CM_DEFLATE ) || ( header[3] != gzipflag::FEXTRA ) ) {
            return std::nullopt;
        }
        const auto xlen = static_cast<std::size_t>( header[10] )
                          | ( static_cast<std::size_t>( header[11] ) << 8U );
        /* Walk the extra subfields for "BC" (length 2). bgzip writes exactly
         * one subfield, but the spec allows more. */
        std::vector<std::uint8_t> extra( xlen );
        if ( file.pread( extra.data(), extra.size(), offset + 12 ) != extra.size() ) {
            return std::nullopt;
        }
        std::size_t blockSize = 0;
        for ( std::size_t i = 0; i + 4 <= extra.size(); ) {
            const auto subfieldLength = static_cast<std::size_t>( extra[i + 2] )
                                        | ( static_cast<std::size_t>( extra[i + 3] ) << 8U );
            if ( ( extra[i] == 'B' ) && ( extra[i + 1] == 'C' ) && ( subfieldLength == 2 )
                 && ( i + 6 <= extra.size() ) ) {
                blockSize = ( static_cast<std::size_t>( extra[i + 4] )
                              | ( static_cast<std::size_t>( extra[i + 5] ) << 8U ) ) + 1;
                break;
            }
            i += 4 + subfieldLength;
        }
        if ( ( blockSize < MIN_BLOCK_SIZE ) || ( offset + blockSize > fileSize ) ) {
            return std::nullopt;
        }

        /* The member's Deflate data starts right after the extra field; its
         * ISIZE footer field closes the block. */
        const auto deflateStart = offset + 12 + xlen;
        std::uint8_t isizeBytes[4];
        if ( file.pread( isizeBytes, sizeof( isizeBytes ), offset + blockSize - 4 )
             != sizeof( isizeBytes ) ) {
            return std::nullopt;
        }
        const auto isize = static_cast<std::size_t>( isizeBytes[0] )
                           | ( static_cast<std::size_t>( isizeBytes[1] ) << 8U )
                           | ( static_cast<std::size_t>( isizeBytes[2] ) << 16U )
                           | ( static_cast<std::size_t>( isizeBytes[3] ) << 24U );

        if ( first || ( offset - lastCheckpointOffset >= chunkSizeBytes ) ) {
            index.checkpoints.push_back( { deflateStart * 8, uncompressedOffset } );
            lastCheckpointOffset = offset;
            first = false;
        }
        uncompressedOffset += isize;
        offset += blockSize;
    }

    index.uncompressedSizeBytes = uncompressedOffset;
    return index;
}

}  // namespace rapidgzip::index
