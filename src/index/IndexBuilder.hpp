#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "../common/Util.hpp"
#include "../deflate/DecodedData.hpp"
#include "../deflate/definitions.hpp"
#include "GzipIndex.hpp"

namespace rapidgzip::index {

/**
 * Harvests checkpoints and windows from the two-stage chunk sweep
 * (GzipChunkFetcher::decompressMember): the sweep already visits every chunk
 * boundary with the exact bit offset and the propagated 32 KiB window in
 * hand, so index construction is a byproduct of the first decompression
 * rather than a second pass — the property the paper's "first read builds
 * the index" workflow depends on.
 *
 * Offsets: bit offsets are absolute in the compressed file (the sweep works
 * in absolute bits). Uncompressed offsets arrive member-relative from the
 * sweep; the caller advances the member base between members via
 * finishMember().
 *
 * Sparse windows: when the accepted chunk decode was the speculative marker
 * decode AND the chunk produced at least a full window of output, the
 * chunk's surviving markers name exactly the window bytes any decode
 * starting at this checkpoint can ever reference (same bits, same
 * back-references; past 32 KiB of output the window is out of reach). Only
 * then is the window stored sparsely — a re-decoded (plain) chunk leaves no
 * marker trace, and a short chunk lets later input reach this window, so
 * both keep the full window.
 */
class IndexBuilder
{
public:
    /** @p checkpointSpacingBytes: minimum uncompressed distance between kept
     * checkpoints; 0 keeps every chunk boundary the sweep visits. Member
     * starts are always kept (they are the only restart points an empty
     * window can resume at). */
    explicit IndexBuilder( std::size_t checkpointSpacingBytes = 0 ) :
        m_spacing( checkpointSpacingBytes )
    {}

    /**
     * Record the chunk boundary at absolute @p compressedOffsetBits whose
     * decode starts at member-relative uncompressed offset
     * @p uncompressedOffsetInMember with @p window as preceding history.
     * @p markedData is the chunk's stage-one output when the speculative
     * decode was accepted (for sparse windows), nullptr otherwise.
     */
    void
    addCheckpoint( std::size_t compressedOffsetBits,
                   std::size_t uncompressedOffsetInMember,
                   BufferView window,
                   const deflate::DecodedData* markedData = nullptr )
    {
        const auto uncompressedOffset = m_uncompressedBase + uncompressedOffsetInMember;
        if ( !m_index.checkpoints.empty() ) {
            const auto& last = m_index.checkpoints.back();
            if ( compressedOffsetBits <= last.compressedOffsetBits ) {
                return;  /* zero-block chunk: boundary did not advance */
            }
            /* Spacing applies to window-carrying checkpoints only; member
             * starts (empty window) are always kept. */
            if ( !window.empty() && ( m_spacing > 0 )
                 && ( uncompressedOffset < last.uncompressedOffset + m_spacing ) ) {
                return;
            }
        }

        m_index.checkpoints.push_back( { compressedOffsetBits, uncompressedOffset } );
        if ( window.empty() ) {
            return;
        }
        if ( ( markedData != nullptr ) && !markedData->marked.empty()
             && ( markedData->totalSize() >= deflate::WINDOW_SIZE ) ) {
            m_index.windows.insertSparse( compressedOffsetBits, window,
                                          referencedWindowOffsets( *markedData ) );
        } else {
            m_index.windows.insert( compressedOffsetBits, window );
        }
    }

    /** A member of @p uncompressedSize bytes is complete; later checkpoints
     * belong to the next member. */
    void
    finishMember( std::size_t uncompressedSize )
    {
        m_uncompressedBase += uncompressedSize;
    }

    [[nodiscard]] std::size_t
    checkpointCount() const noexcept
    {
        return m_index.checkpoints.size();
    }

    /** Finalize: stamp the stream sizes and move the index out. */
    [[nodiscard]] GzipIndex
    build( std::size_t compressedSizeBytes )
    {
        m_index.compressedSizeBytes = compressedSizeBytes;
        m_index.uncompressedSizeBytes = m_uncompressedBase;
        return std::move( m_index );
    }

    /** Which full-window offsets (0 = oldest byte) @p data's markers reference. */
    [[nodiscard]] static std::vector<bool>
    referencedWindowOffsets( const deflate::DecodedData& data )
    {
        std::vector<bool> referenced( deflate::WINDOW_SIZE, false );
        for ( const auto symbol : data.marked ) {
            if ( symbol >= deflate::MARKER_BASE ) {
                referenced[symbol - deflate::MARKER_BASE] = true;
            }
        }
        return referenced;
    }

private:
    GzipIndex m_index;
    std::size_t m_spacing;
    std::size_t m_uncompressedBase{ 0 };
};

}  // namespace rapidgzip::index
