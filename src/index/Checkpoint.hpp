#pragma once

#include <cstddef>

namespace rapidgzip::index {

/**
 * One seek point of a gzip index (paper §3.5 "reusing the index"): a
 * BIT-granular position in the compressed stream at which raw Deflate
 * decoding can resume, paired with the uncompressed byte offset produced up
 * to that position. Bit granularity is what makes indexes work on ARBITRARY
 * gzip files — Deflate block boundaries almost never fall on byte borders,
 * so the old byte-offset checkpoint could only express full-flush or BGZF
 * restart points.
 *
 * Resuming at a checkpoint additionally needs the last 32 KiB of
 * uncompressed output preceding it (back-references reach that far). The
 * window is NOT stored here — windows dominate index size and are kept
 * zlib-compressed in the WindowMap, keyed by compressedOffsetBits. A
 * checkpoint without a window entry is a restart point (full-flush point,
 * BGZF block start, or gzip member start), where the window is empty by
 * construction; such checkpoints are always byte-aligned in practice.
 */
struct Checkpoint
{
    /** Absolute bit offset of the block boundary in the compressed stream. */
    std::size_t compressedOffsetBits{ 0 };
    /** Byte offset of the first output byte produced at/after this point. */
    std::size_t uncompressedOffset{ 0 };

    [[nodiscard]] friend bool
    operator==( const Checkpoint& a, const Checkpoint& b ) noexcept
    {
        return ( a.compressedOffsetBits == b.compressedOffsetBits )
               && ( a.uncompressedOffset == b.uncompressedOffset );
    }
};

}  // namespace rapidgzip::index
