#pragma once

#include <zlib.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../deflate/definitions.hpp"

namespace rapidgzip::index {

/**
 * The windows of a gzip index, stored zlib-compressed. Windows dominate
 * index size — a full 32 KiB per checkpoint versus 16-ish bytes of offsets —
 * so they are compressed on insert and decompressed on access. Keys are the
 * checkpoints' bit offsets; an absent key means an EMPTY window (restart
 * point), which is a valid resume state, not an error.
 *
 * Sparse windows: a checkpoint's window only needs the bytes that decoding
 * from the checkpoint actually back-references. The stage-one marker decode
 * knows exactly which ones those are — every surviving 16-bit marker names
 * one window offset — so insertSparse() zeroes the never-referenced bytes
 * before compressing, which typically shrinks the stored window by an order
 * of magnitude on text-like data. Zeroing is transparent to consumers: the
 * zeroed bytes are by construction never read when decoding resumes at the
 * owning checkpoint.
 *
 * All accessors are const-thread-safe once the map is built (get() works on
 * immutable compressed buffers), which is what lets the parallel chunk
 * fetcher's worker threads pull windows concurrently.
 */
class WindowMap
{
public:
    struct CompressedWindow
    {
        std::vector<std::uint8_t> zlibData;     /**< zlib-format (RFC 1950) stream */
        std::uint32_t decompressedSize{ 0 };

        [[nodiscard]] friend bool
        operator==( const CompressedWindow& a, const CompressedWindow& b ) noexcept
        {
            return ( a.decompressedSize == b.decompressedSize ) && ( a.zlibData == b.zlibData );
        }
    };

    /** Compress and store the up-to-32 KiB @p window for the checkpoint at
     * @p compressedOffsetBits. Empty windows are not stored (absence means
     * empty). Re-inserting overwrites. */
    void
    insert( std::size_t compressedOffsetBits, BufferView window )
    {
        if ( window.empty() ) {
            m_windows.erase( compressedOffsetBits );
            return;
        }
        m_windows[compressedOffsetBits] = compress( window );
    }

    /**
     * Sparse insert: store @p window with every byte whose window offset is
     * not flagged in @p referenced replaced by zero. @p referenced indexes
     * the FULL 32 KiB window coordinate space (0 = oldest byte, as markers
     * do); when @p window is shorter than 32 KiB its first byte corresponds
     * to offset 32 KiB - window.size().
     */
    void
    insertSparse( std::size_t compressedOffsetBits,
                  BufferView window,
                  const std::vector<bool>& referenced )
    {
        if ( window.empty() ) {
            m_windows.erase( compressedOffsetBits );
            return;
        }
        std::vector<std::uint8_t> sparse( window.size() );
        const auto missing = deflate::WINDOW_SIZE - std::min( window.size(),
                                                              deflate::WINDOW_SIZE );
        for ( std::size_t i = 0; i < window.size(); ++i ) {
            const auto markerOffset = missing + i;
            sparse[i] = ( ( markerOffset < referenced.size() ) && referenced[markerOffset] )
                        ? window[i]
                        : std::uint8_t( 0 );
        }
        m_windows[compressedOffsetBits] = compress( { sparse.data(), sparse.size() } );
    }

    /** Adopt an already-compressed window (deserialization path). */
    void
    insertCompressed( std::size_t compressedOffsetBits, CompressedWindow window )
    {
        if ( window.decompressedSize == 0 ) {
            m_windows.erase( compressedOffsetBits );
            return;
        }
        m_windows[compressedOffsetBits] = std::move( window );
    }

    /** Decompress and return the window for @p compressedOffsetBits; an
     * empty vector when none is stored (restart point). */
    [[nodiscard]] std::vector<std::uint8_t>
    get( std::size_t compressedOffsetBits ) const
    {
        const auto match = m_windows.find( compressedOffsetBits );
        if ( match == m_windows.end() ) {
            return {};
        }
        return decompress( match->second );
    }

    [[nodiscard]] bool
    contains( std::size_t compressedOffsetBits ) const
    {
        return m_windows.find( compressedOffsetBits ) != m_windows.end();
    }

    [[nodiscard]] std::size_t
    size() const noexcept
    {
        return m_windows.size();
    }

    /** Total bytes of compressed window storage (index size accounting). */
    [[nodiscard]] std::size_t
    compressedBytes() const noexcept
    {
        std::size_t total = 0;
        for ( const auto& [offset, window] : m_windows ) {
            total += window.zlibData.size();
        }
        return total;
    }

    /** Serialization access: offset → compressed window, ordered by offset. */
    [[nodiscard]] const std::map<std::size_t, CompressedWindow>&
    compressedWindows() const noexcept
    {
        return m_windows;
    }

    [[nodiscard]] friend bool
    operator==( const WindowMap& a, const WindowMap& b ) noexcept
    {
        return a.m_windows == b.m_windows;
    }

    [[nodiscard]] static CompressedWindow
    compress( BufferView window )
    {
        CompressedWindow result;
        result.decompressedSize = static_cast<std::uint32_t>( window.size() );
        uLongf bound = compressBound( static_cast<uLong>( window.size() ) );
        result.zlibData.resize( bound );
        if ( compress2( result.zlibData.data(), &bound, window.data(),
                        static_cast<uLong>( window.size() ), Z_BEST_COMPRESSION ) != Z_OK ) {
            throw RapidgzipError( "Failed to compress an index window" );
        }
        result.zlibData.resize( bound );
        return result;
    }

    [[nodiscard]] static std::vector<std::uint8_t>
    decompress( const CompressedWindow& window )
    {
        std::vector<std::uint8_t> result( window.decompressedSize );
        uLongf size = window.decompressedSize;
        if ( ( uncompress( result.data(), &size, window.zlibData.data(),
                           static_cast<uLong>( window.zlibData.size() ) ) != Z_OK )
             || ( size != window.decompressedSize ) ) {
            throw RapidgzipError( "Corrupt compressed window in gzip index" );
        }
        return result;
    }

private:
    std::map<std::size_t, CompressedWindow> m_windows;
};

}  // namespace rapidgzip::index
