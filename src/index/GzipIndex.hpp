#pragma once

#include <cstddef>
#include <vector>

#include "Checkpoint.hpp"
#include "WindowMap.hpp"

namespace rapidgzip {

/**
 * Seek index for a gzip stream: bit-granular checkpoints plus the compressed
 * 32 KiB windows needed to resume decoding at them. This single type covers
 * the whole format spectrum:
 *
 *  - arbitrary gzip (no flush points): checkpoints at Deflate block
 *    boundaries discovered by the two-stage sweep, each with a window;
 *  - pigz-style full-flush streams: byte-aligned checkpoints at sync
 *    markers, no windows (a full flush empties the window by construction);
 *  - BGZF: byte-aligned checkpoints at member starts harvested from the BC
 *    extra fields, no windows and no decoding needed at all.
 *
 * The former byte-offset GzipIndexCheckpoint was folded into
 * index::Checkpoint (bit offsets); a byte checkpoint is simply one whose
 * compressedOffsetBits is a multiple of 8 with no window entry.
 *
 * On-disk formats (native and gztool-compatible) live in
 * index/IndexSerializer.hpp.
 */
struct GzipIndex
{
    std::vector<index::Checkpoint> checkpoints;
    index::WindowMap windows;
    /** Size of the compressed file this index describes; 0 = unknown
     * (gztool-format imports do not record it). */
    std::size_t compressedSizeBytes{ 0 };
    std::size_t uncompressedSizeBytes{ 0 };
    /**
     * Which container the checkpoints index, using formats::Format values
     * (1 = gzip, kept as a plain byte so the index layer does not depend
     * on the dispatch layer). Serialized by the native RGZIDX02 format so
     * an index built for one backend is never replayed against another;
     * legacy RGZIDX01 files load as gzip.
     */
    std::uint8_t formatTag{ 1 /* formats::Format::GZIP */ };

    [[nodiscard]] bool
    empty() const noexcept
    {
        return checkpoints.empty();
    }

    [[nodiscard]] friend bool
    operator==( const GzipIndex& a, const GzipIndex& b ) noexcept
    {
        return ( a.checkpoints == b.checkpoints )
               && ( a.windows == b.windows )
               && ( a.compressedSizeBytes == b.compressedSizeBytes )
               && ( a.uncompressedSizeBytes == b.uncompressedSizeBytes )
               && ( a.formatTag == b.formatTag );
    }
};

}  // namespace rapidgzip
