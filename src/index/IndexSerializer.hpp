#pragma once

#include <zlib.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../deflate/definitions.hpp"
#include "../io/FileReader.hpp"
#include "../simd/Crc32.hpp"
#include "GzipIndex.hpp"

namespace rapidgzip::index {

/**
 * On-disk index formats.
 *
 * NATIVE ("RGZIDX02", little-endian): records everything the in-memory
 * index holds — a format tag naming the container the checkpoints index
 * (gzip/zstd/lz4/bzip2, so an index is never replayed against the wrong
 * backend), both stream sizes, bit-granular checkpoints, and the
 * zlib-compressed windows verbatim (compressed AND decompressed sizes, so
 * loading never has to guess buffer sizes). The whole file is covered by
 * a trailing CRC32, so ANY flipped byte is rejected at load time — the
 * property the index property tests pin down. Versioned via the magic's
 * trailing digits; version-01 files (no tag, no CRC) still import, as
 * gzip.
 *
 * GZTOOL ("gzipindx", big-endian): import/export of the index format used
 * by gztool (and readable by indexed_gzip), so indexes interoperate with
 * existing tooling. Layout per gztool's serialize_index_to_file():
 *
 *   u64  0 (distinguishes the file from bgzip's .gzi, which starts with a
 *        nonzero entry count)
 *   char[8] "gzipindx"
 *   u64  number of points, twice (gztool writes `have` and `size`; equal
 *        for complete indexes)
 *   per point: u64 out (uncompressed offset), u64 in (compressed BYTE
 *        offset), u32 bits, u32 window_size, window bytes
 *        (zlib-compressed); zran.c semantics: when bits != 0 decoding
 *        resumes `bits` bits before byte `in`, i.e. at bit in*8 - bits
 *   u64  total uncompressed size
 *
 * gztool does not record the compressed file size, so imported indexes
 * carry compressedSizeBytes = 0 (unknown) and the reader skips that check.
 */

inline constexpr std::array<std::uint8_t, 8> NATIVE_INDEX_MAGIC =
    { 'R', 'G', 'Z', 'I', 'D', 'X', '0', '2' };
inline constexpr std::array<std::uint8_t, 8> NATIVE_INDEX_MAGIC_V1 =
    { 'R', 'G', 'Z', 'I', 'D', 'X', '0', '1' };
inline constexpr std::array<std::uint8_t, 8> GZTOOL_INDEX_MAGIC =
    { 'g', 'z', 'i', 'p', 'i', 'n', 'd', 'x' };

/** Format-tag byte values for the native header (formats::Format, kept as
 * literals so the index layer stays independent of the dispatch layer). */
inline constexpr std::uint8_t FORMAT_TAG_GZIP = 1;
inline constexpr std::uint8_t FORMAT_TAG_ZSTD = 2;
inline constexpr std::uint8_t FORMAT_TAG_LZ4 = 3;
inline constexpr std::uint8_t FORMAT_TAG_BZIP2 = 4;

namespace detail {

template<typename T>
inline void
appendLE( std::vector<std::uint8_t>& out, T value )
{
    for ( std::size_t i = 0; i < sizeof( T ); ++i ) {
        out.push_back( static_cast<std::uint8_t>( value >> ( 8U * i ) ) );
    }
}

template<typename T>
inline void
appendBE( std::vector<std::uint8_t>& out, T value )
{
    for ( std::size_t i = sizeof( T ); i > 0; --i ) {
        out.push_back( static_cast<std::uint8_t>( value >> ( 8U * ( i - 1 ) ) ) );
    }
}

/** Bounds-checked sequential reader over an index byte buffer. */
class FieldReader
{
public:
    explicit FieldReader( BufferView data ) :
        m_data( data )
    {}

    template<typename T>
    [[nodiscard]] T
    readLE()
    {
        const auto* bytes = take( sizeof( T ) );
        T value = 0;
        for ( std::size_t i = sizeof( T ); i > 0; --i ) {
            value = static_cast<T>( ( value << 8U ) | bytes[i - 1] );
        }
        return value;
    }

    template<typename T>
    [[nodiscard]] T
    readBE()
    {
        const auto* bytes = take( sizeof( T ) );
        T value = 0;
        for ( std::size_t i = 0; i < sizeof( T ); ++i ) {
            value = static_cast<T>( ( value << 8U ) | bytes[i] );
        }
        return value;
    }

    [[nodiscard]] std::vector<std::uint8_t>
    readBytes( std::size_t count )
    {
        const auto* bytes = take( count );
        return { bytes, bytes + count };
    }

    [[nodiscard]] bool
    exhausted() const noexcept
    {
        return m_offset >= m_data.size();
    }

private:
    [[nodiscard]] const std::uint8_t*
    take( std::size_t count )
    {
        if ( m_data.size() - m_offset < count ) {
            throw RapidgzipError( "Truncated gzip index file" );
        }
        const auto* result = m_data.data() + m_offset;
        m_offset += count;
        return result;
    }

    BufferView m_data;
    std::size_t m_offset{ 0 };
};

}  // namespace detail

/* --- native format --------------------------------------------------- */

[[nodiscard]] inline std::vector<std::uint8_t>
serializeIndex( const GzipIndex& index )
{
    std::vector<std::uint8_t> out;
    out.insert( out.end(), NATIVE_INDEX_MAGIC.begin(), NATIVE_INDEX_MAGIC.end() );
    out.push_back( index.formatTag );
    out.push_back( 0 );  /* reserved */
    out.push_back( 0 );
    out.push_back( 0 );
    detail::appendLE<std::uint64_t>( out, index.compressedSizeBytes );
    detail::appendLE<std::uint64_t>( out, index.uncompressedSizeBytes );
    detail::appendLE<std::uint64_t>( out, index.checkpoints.size() );

    static const WindowMap::CompressedWindow noWindow{};
    const auto& windows = index.windows.compressedWindows();
    for ( const auto& checkpoint : index.checkpoints ) {
        const auto match = windows.find( checkpoint.compressedOffsetBits );
        const auto& window = match == windows.end() ? noWindow : match->second;
        detail::appendLE<std::uint64_t>( out, checkpoint.compressedOffsetBits );
        detail::appendLE<std::uint64_t>( out, checkpoint.uncompressedOffset );
        detail::appendLE<std::uint32_t>( out, window.decompressedSize );
        detail::appendLE<std::uint32_t>( out, static_cast<std::uint32_t>( window.zlibData.size() ) );
        out.insert( out.end(), window.zlibData.begin(), window.zlibData.end() );
    }
    /* Whole-file CRC32 (zlib polynomial) so any on-disk corruption —
     * including flips in offset fields no structural check could catch —
     * is rejected at load time. */
    const auto crc = simd::crc32( 0, out.data(), out.size() );
    detail::appendLE<std::uint32_t>( out, crc );
    return out;
}

[[nodiscard]] inline GzipIndex
deserializeIndex( BufferView data )
{
    detail::FieldReader reader( data );
    const auto magic = reader.readBytes( NATIVE_INDEX_MAGIC.size() );
    const bool legacy = std::equal( magic.begin(), magic.end(), NATIVE_INDEX_MAGIC_V1.begin() );
    if ( !legacy && !std::equal( magic.begin(), magic.end(), NATIVE_INDEX_MAGIC.begin() ) ) {
        throw RapidgzipError( "Not a rapidgzip index file (bad magic)" );
    }

    GzipIndex index;
    if ( !legacy ) {
        /* Verify the trailing CRC over everything before it FIRST: all
         * further parsing then works on authenticated bytes. */
        if ( data.size() < NATIVE_INDEX_MAGIC.size() + 4 + 3 * 8 + 4 ) {
            throw RapidgzipError( "Truncated gzip index file" );
        }
        const auto payloadSize = data.size() - 4;
        const auto expected = static_cast<std::uint32_t>(
            data[payloadSize]
            | ( static_cast<std::uint32_t>( data[payloadSize + 1] ) << 8U )
            | ( static_cast<std::uint32_t>( data[payloadSize + 2] ) << 16U )
            | ( static_cast<std::uint32_t>( data[payloadSize + 3] ) << 24U ) );
        const auto actual = simd::crc32( 0, data.data(), payloadSize );
        if ( actual != expected ) {
            throw RapidgzipError( "Gzip index file failed its CRC32 — corrupt or truncated" );
        }
        index.formatTag = reader.readLE<std::uint8_t>();
        (void)reader.readBytes( 3 );  /* reserved */
        if ( ( index.formatTag < FORMAT_TAG_GZIP ) || ( index.formatTag > FORMAT_TAG_BZIP2 ) ) {
            throw RapidgzipError( "Gzip index file names an unknown format tag" );
        }
    } else {
        index.formatTag = FORMAT_TAG_GZIP;
    }
    index.compressedSizeBytes = reader.readLE<std::uint64_t>();
    index.uncompressedSizeBytes = reader.readLE<std::uint64_t>();
    const auto checkpointCount = reader.readLE<std::uint64_t>();
    /* The count is unvalidated on-disk data: clamp the reserve hint to what
     * the file could possibly hold (>= 24 bytes per checkpoint), so a
     * corrupt count surfaces as the truncation error below, not bad_alloc. */
    index.checkpoints.reserve( std::min<std::uint64_t>( checkpointCount, data.size() / 24 ) );
    for ( std::uint64_t i = 0; i < checkpointCount; ++i ) {
        Checkpoint checkpoint;
        checkpoint.compressedOffsetBits = reader.readLE<std::uint64_t>();
        checkpoint.uncompressedOffset = reader.readLE<std::uint64_t>();
        WindowMap::CompressedWindow window;
        window.decompressedSize = reader.readLE<std::uint32_t>();
        const auto compressedSize = reader.readLE<std::uint32_t>();
        window.zlibData = reader.readBytes( compressedSize );
        if ( window.decompressedSize > deflate::WINDOW_SIZE ) {
            throw RapidgzipError( "Gzip index window exceeds the 32 KiB Deflate window" );
        }
        if ( ( window.decompressedSize == 0 ) != window.zlibData.empty() ) {
            throw RapidgzipError( "Gzip index window size fields are inconsistent" );
        }
        if ( window.decompressedSize > 0 ) {
            /* Validate eagerly: a corrupt window must fail at load time, not
             * inside a worker thread mid-read. */
            (void)WindowMap::decompress( window );
            index.windows.insertCompressed( checkpoint.compressedOffsetBits,
                                            std::move( window ) );
        }
        index.checkpoints.push_back( checkpoint );
    }
    return index;
}

/** Load a native-format index straight from a file. */
[[nodiscard]] inline GzipIndex
deserializeIndex( const FileReader& file )
{
    std::vector<std::uint8_t> data( file.size() );
    preadExactly( file, data.data(), data.size(), 0 );
    return deserializeIndex( { data.data(), data.size() } );
}

/* --- gztool format --------------------------------------------------- */

/** bit offset → (in, bits) per zran.c: resume at bit in*8 - bits. */
[[nodiscard]] inline std::pair<std::uint64_t, std::uint32_t>
toGztoolOffset( std::size_t compressedOffsetBits )
{
    const auto bits = static_cast<std::uint32_t>( ( 8 - ( compressedOffsetBits % 8 ) ) % 8 );
    return { ( compressedOffsetBits + bits ) / 8, bits };
}

[[nodiscard]] inline std::vector<std::uint8_t>
exportGztoolIndex( const GzipIndex& index )
{
    std::vector<std::uint8_t> out;
    detail::appendBE<std::uint64_t>( out, 0 );
    out.insert( out.end(), GZTOOL_INDEX_MAGIC.begin(), GZTOOL_INDEX_MAGIC.end() );
    detail::appendBE<std::uint64_t>( out, index.checkpoints.size() );
    detail::appendBE<std::uint64_t>( out, index.checkpoints.size() );

    static const WindowMap::CompressedWindow noWindow{};
    const auto& windows = index.windows.compressedWindows();
    for ( const auto& checkpoint : index.checkpoints ) {
        const auto match = windows.find( checkpoint.compressedOffsetBits );
        /* Windows are stored zlib-compressed on both sides — pass through. */
        const auto& window = match == windows.end() ? noWindow : match->second;
        const auto [in, bits] = toGztoolOffset( checkpoint.compressedOffsetBits );
        detail::appendBE<std::uint64_t>( out, checkpoint.uncompressedOffset );
        detail::appendBE<std::uint64_t>( out, in );
        detail::appendBE<std::uint32_t>( out, bits );
        detail::appendBE<std::uint32_t>( out, static_cast<std::uint32_t>( window.zlibData.size() ) );
        out.insert( out.end(), window.zlibData.begin(), window.zlibData.end() );
    }
    detail::appendBE<std::uint64_t>( out, index.uncompressedSizeBytes );
    return out;
}

[[nodiscard]] inline GzipIndex
importGztoolIndex( BufferView data )
{
    detail::FieldReader reader( data );
    if ( reader.readBE<std::uint64_t>() != 0 ) {
        throw RapidgzipError( "Not a gztool index file (expected leading zero block)" );
    }
    const auto magic = reader.readBytes( GZTOOL_INDEX_MAGIC.size() );
    if ( !std::equal( magic.begin(), magic.end(), GZTOOL_INDEX_MAGIC.begin() ) ) {
        throw RapidgzipError( "Not a gztool index file (bad magic)" );
    }
    const auto have = reader.readBE<std::uint64_t>();
    const auto size = reader.readBE<std::uint64_t>();
    if ( have > size ) {
        throw RapidgzipError( "Inconsistent gztool index point counts" );
    }

    GzipIndex index;
    /* `have` is unvalidated on-disk data; >= 24 bytes per point. */
    index.checkpoints.reserve( std::min<std::uint64_t>( have, data.size() / 24 ) );
    for ( std::uint64_t i = 0; i < have; ++i ) {
        const auto out = reader.readBE<std::uint64_t>();
        const auto in = reader.readBE<std::uint64_t>();
        const auto bits = reader.readBE<std::uint32_t>();
        const auto windowSize = reader.readBE<std::uint32_t>();
        if ( ( bits > 7 ) || ( ( bits > 0 ) && ( in == 0 ) ) ) {
            throw RapidgzipError( "Invalid bit offset in gztool index" );
        }
        Checkpoint checkpoint;
        checkpoint.compressedOffsetBits = in * 8 - bits;
        checkpoint.uncompressedOffset = out;
        if ( windowSize > 0 ) {
            WindowMap::CompressedWindow window;
            window.zlibData = reader.readBytes( windowSize );
            /* gztool does not record the decompressed size; recover it by
             * decompressing into a full-window buffer. */
            std::vector<std::uint8_t> decompressed( deflate::WINDOW_SIZE );
            uLongf actual = deflate::WINDOW_SIZE;
            if ( uncompress( decompressed.data(), &actual, window.zlibData.data(),
                             static_cast<uLong>( window.zlibData.size() ) ) != Z_OK ) {
                throw RapidgzipError( "Corrupt window in gztool index" );
            }
            window.decompressedSize = static_cast<std::uint32_t>( actual );
            index.windows.insertCompressed( checkpoint.compressedOffsetBits,
                                            std::move( window ) );
        }
        index.checkpoints.push_back( checkpoint );
    }
    index.uncompressedSizeBytes = reader.readBE<std::uint64_t>();
    index.compressedSizeBytes = 0;  /* gztool indexes do not record it */
    return index;
}

[[nodiscard]] inline GzipIndex
importGztoolIndex( const FileReader& file )
{
    std::vector<std::uint8_t> data( file.size() );
    preadExactly( file, data.data(), data.size(), 0 );
    return importGztoolIndex( { data.data(), data.size() } );
}

}  // namespace rapidgzip::index
