#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "../common/Error.hpp"

/**
 * Checked invariant in debug builds, optimizer ASSUMPTION in release
 * builds: benchmarking showed the unsafe-path value-range invariants
 * (bitCount <= bufferedBits) are worth tens of percent when the optimizer
 * can rely on them — with plain assert() they vanish under NDEBUG and the
 * codegen regresses.
 */
#if defined( NDEBUG ) && ( defined( __GNUC__ ) || defined( __clang__ ) )
    #define RAPIDGZIP_ASSUME( cond ) do { if ( !( cond ) ) { __builtin_unreachable(); } } while ( 0 )
#else
    #define RAPIDGZIP_ASSUME( cond ) assert( cond )
#endif

namespace rapidgzip {

/**
 * LSB-first (Deflate bit order) bit reader over an in-memory buffer with a
 * 64-bit refill buffer — the design measured in paper Fig. 7: because the
 * refill amortizes over up to 64 buffered bits, the per-call cost is almost
 * independent of the requested bit count, so bandwidth grows nearly linearly
 * with bits per call.
 *
 * Semantics:
 *  - read()/peek() support 1..32 bits per call.
 *  - peek() zero-pads past the end of the data; it never fails.
 *  - read()/skip() past the end consume virtual zero bits; eof() becomes
 *    true once the cursor passed the last real bit. This matches what a
 *    Huffman decoder needs to cleanly detect end-of-input.
 *  - seek()/tell() address absolute BIT offsets.
 *
 * Guaranteed-bits contract (the hot-loop interface): ensureBits( n ) refills
 * at most once and returns true iff at least n bits (n <= MAX_ENSURE_BITS)
 * are now buffered. While that guarantee holds, peekUnsafe()/consumeUnsafe()
 * touch ONLY the refill buffer — no bounds check, no refill, no memory
 * access — so an inner loop can pay for one refill and then decode several
 * Huffman symbols plus their extra bits from registers. Consuming more bits
 * than guaranteed is undefined behavior; the Deflate decoder enforces the
 * budget by entering its fast loop only while a whole worst-case
 * literal/length + distance group (48 bits) is guaranteed.
 */
class BitReader
{
public:
    static constexpr unsigned MAX_BIT_COUNT = 32;
    /** refill() tops the buffer up to >= 57 bits whenever input remains, so
     * this is the largest guarantee ensureBits()/peek64() can promise. */
    static constexpr unsigned MAX_ENSURE_BITS = 57;

    BitReader( const std::uint8_t* data, std::size_t sizeInBytes ) noexcept :
        m_data( data ),
        m_sizeInBytes( sizeInBytes )
    {}

    /** Owning overload, e.g. for reading a whole compressed stream. */
    explicit BitReader( std::vector<std::uint8_t> buffer ) :
        m_ownedBuffer( std::move( buffer ) ),
        m_data( m_ownedBuffer.data() ),
        m_sizeInBytes( m_ownedBuffer.size() )
    {}

    BitReader( const BitReader& other ) :
        m_ownedBuffer( other.m_ownedBuffer ),
        m_data( m_ownedBuffer.empty() ? other.m_data : m_ownedBuffer.data() ),
        m_sizeInBytes( other.m_sizeInBytes )
    {
        seek( other.tell() );
    }

    BitReader& operator=( const BitReader& ) = delete;
    BitReader( BitReader&& ) = default;

    /** Read @p bitCount (1..32) bits; the first bit read is the result's LSB. */
    [[nodiscard]] std::uint64_t
    read( unsigned bitCount )
    {
        assert( ( bitCount >= 1 ) && ( bitCount <= MAX_BIT_COUNT ) );
        if ( m_bufferBits < bitCount ) {
            refill();
            if ( m_bufferBits < bitCount ) {
                return readPastEnd( bitCount );
            }
        }
        const auto result = m_buffer & maskLowBits( bitCount );
        m_buffer >>= bitCount;
        m_bufferBits -= bitCount;
        return result;
    }

    /** Like read() but without consuming; zero-padded past the end. */
    [[nodiscard]] std::uint64_t
    peek( unsigned bitCount )
    {
        assert( ( bitCount >= 1 ) && ( bitCount <= MAX_BIT_COUNT ) );
        if ( m_bufferBits < bitCount ) {
            refill();
        }
        return m_buffer & maskLowBits( bitCount );
    }

    /**
     * Wide peek for bulk filters (up to MAX_ENSURE_BITS = 57 bits): the
     * packed-precode check reads all 19 * 3 = 57 code-length bits in one
     * call. Zero-padded past the end like peek().
     */
    [[nodiscard]] std::uint64_t
    peek64( unsigned bitCount )
    {
        RAPIDGZIP_ASSUME( ( bitCount >= 1 ) && ( bitCount <= MAX_ENSURE_BITS ) );
        if ( m_bufferBits < bitCount ) {
            refill();
        }
        return m_buffer & maskLowBits( bitCount );
    }

    /**
     * Positionless wide peek at an ABSOLUTE bit offset, straight from the
     * underlying memory — no cursor movement, no refill-buffer interaction.
     * For probe cascades that need a few bits beyond what the refill buffer
     * can hold (the precode filter's tail lengths sit up to 74 bits past
     * the candidate position). Zero-padded past the end; @p bitCount <= 56
     * so the sub-byte shift never overflows the 64-bit load.
     */
    [[nodiscard]] std::uint64_t
    peekAt( std::size_t bitOffset, unsigned bitCount ) const noexcept
    {
        return peekAt( m_data, m_sizeInBytes, bitOffset, bitCount );
    }

    /** Static form of peekAt() for positionless probe cascades that hold
     * only a raw (data, size) span — one shared implementation of the
     * endian-aware zero-padded direct load. */
    [[nodiscard]] static std::uint64_t
    peekAt( const std::uint8_t* data, std::size_t sizeInBytes,
            std::size_t bitOffset, unsigned bitCount ) noexcept
    {
        assert( ( bitCount >= 1 ) && ( bitCount <= 56 ) );
        const auto byteOffset = bitOffset / 8U;
        const auto subBit = static_cast<unsigned>( bitOffset % 8U );
        std::uint64_t word = 0;
        if ( byteOffset + sizeof( std::uint64_t ) <= sizeInBytes ) {
    #if defined( __BYTE_ORDER__ ) && ( __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__ )
            std::memcpy( &word, data + byteOffset, sizeof( std::uint64_t ) );
    #else
            for ( unsigned i = 0; i < sizeof( std::uint64_t ); ++i ) {
                word |= std::uint64_t( data[byteOffset + i] ) << ( 8U * i );
            }
    #endif
        } else {
            for ( std::size_t i = 0; byteOffset + i < sizeInBytes; ++i ) {
                word |= std::uint64_t( data[byteOffset + i] ) << ( 8U * i );
            }
        }
        return ( word >> subBit ) & maskLowBits( bitCount );
    }

    /**
     * Guaranteed-bits contract: refill at most once; afterwards
     * peekUnsafe()/consumeUnsafe() may take up to @p bitCount bits without
     * further checks. Returns false near the end of input when the guarantee
     * cannot be met — the caller then falls back to the checked read()/peek()
     * path, which handles EOF zero-padding.
     */
    [[nodiscard]] bool
    ensureBits( unsigned bitCount )
    {
        assert( bitCount <= MAX_ENSURE_BITS );
        if ( m_bufferBits < bitCount ) {
            refill();
        }
        return m_bufferBits >= bitCount;
    }

    /** Bits currently buffered — the amount peekUnsafe()/consumeUnsafe()
     * may legally take. */
    [[nodiscard]] unsigned
    bufferedBits() const noexcept
    {
        return m_bufferBits;
    }

    /** peek() without the refill check. Caller must hold a guarantee from
     * ensureBits() covering @p bitCount. */
    [[nodiscard]] std::uint64_t
    peekUnsafe( unsigned bitCount ) const noexcept
    {
        RAPIDGZIP_ASSUME( bitCount <= m_bufferBits );
        return m_buffer & maskLowBits( bitCount );
    }

    /** skip() without the refill check. Caller must hold a guarantee from
     * ensureBits() covering @p bitCount. @p bitCount must stay < 64. */
    void
    consumeUnsafe( unsigned bitCount ) noexcept
    {
        RAPIDGZIP_ASSUME( bitCount <= m_bufferBits );
        m_buffer >>= bitCount;
        m_bufferBits -= bitCount;
    }

    /** read() without the refill check. Caller must hold a guarantee from
     * ensureBits() covering @p bitCount. */
    [[nodiscard]] std::uint64_t
    readUnsafe( unsigned bitCount ) noexcept
    {
        const auto result = peekUnsafe( bitCount );
        consumeUnsafe( bitCount );
        return result;
    }

    void
    skip( unsigned bitCount )
    {
        assert( bitCount <= MAX_BIT_COUNT );
        if ( m_bufferBits < bitCount ) {
            refill();
            if ( m_bufferBits < bitCount ) {
                (void)readPastEnd( bitCount );
                return;
            }
        }
        m_buffer >>= bitCount;
        m_bufferBits -= bitCount;
    }

    /** Absolute bit offset of the next bit to be returned. */
    [[nodiscard]] std::size_t
    tell() const noexcept
    {
        return m_byteOffset * 8U - m_bufferBits + m_overrunBits;
    }

    void
    seek( std::size_t bitOffset )
    {
        const auto sizeBits = sizeInBits();
        if ( bitOffset > sizeBits ) {
            bitOffset = sizeBits;
        }
        m_byteOffset = bitOffset / 8U;
        m_buffer = 0;
        m_bufferBits = 0;
        m_overrunBits = 0;
        const auto subBit = static_cast<unsigned>( bitOffset % 8U );
        if ( subBit > 0 ) {
            refill();
            m_buffer >>= subBit;
            m_bufferBits -= subBit;
        }
    }

    /**
     * Cheap re-seek for probe loops (block finders test millions of candidate
     * bit offsets with peek()): when @p bitOffset lies at or ahead of the
     * cursor but still inside the refill buffer, reposition by shifting the
     * buffer instead of reloading from memory — no committed read, no byte
     * refetch. Falls back to a full seek() otherwise, so it is always safe to
     * call with any target offset.
     */
    void
    seekAfterPeek( std::size_t bitOffset )
    {
        const auto current = tell();
        if ( ( bitOffset >= current ) && ( bitOffset - current <= m_bufferBits ) ) {
            const auto delta = static_cast<unsigned>( bitOffset - current );
            if ( delta >= 64U ) {
                /* Shifting a uint64_t by 64 is undefined behavior; a full
                 * 64-bit refill buffer can make delta exactly 64. */
                m_buffer = 0;
                m_bufferBits = 0;
            } else {
                m_buffer >>= delta;
                m_bufferBits -= delta;
            }
            return;
        }
        seek( bitOffset );
    }

    /**
     * Value-semantics mirror of the reader's hot state for inner decode
     * loops. Writes into output buffers are byte stores that legally alias
     * EVERYTHING — including this reader's members — so a loop operating on
     * the BitReader directly reloads buffer/bufferBits/byteOffset from
     * memory around every store. The cursor copies that state into locals
     * whose address never escapes (the compiler keeps them in registers)
     * and syncs back on destruction or sync(). Exactly one cursor may be
     * live per reader, and the reader must not be used directly while one
     * is.
     */
    class RegisterCursor
    {
    public:
        explicit RegisterCursor( BitReader& reader ) noexcept :
            m_reader( reader ),
            m_data( reader.m_data ),
            m_sizeInBytes( reader.m_sizeInBytes ),
            m_byteOffset( reader.m_byteOffset ),
            m_buffer( reader.m_buffer ),
            m_bufferBits( reader.m_bufferBits )
        {}

        ~RegisterCursor()
        {
            sync();
        }

        RegisterCursor( const RegisterCursor& ) = delete;
        RegisterCursor& operator=( const RegisterCursor& ) = delete;

        void
        sync() noexcept
        {
            m_reader.m_byteOffset = m_byteOffset;
            m_reader.m_buffer = m_buffer;
            m_reader.m_bufferBits = m_bufferBits;
        }

        [[nodiscard]] bool
        ensureBits( unsigned bitCount ) noexcept
        {
            if ( m_bufferBits < bitCount ) {
                refill();
            }
            return m_bufferBits >= bitCount;
        }

        [[nodiscard]] unsigned
        bufferedBits() const noexcept
        {
            return m_bufferBits;
        }

        [[nodiscard]] std::uint64_t
        peekUnsafe( unsigned bitCount ) const noexcept
        {
            RAPIDGZIP_ASSUME( bitCount <= m_bufferBits );
            return m_buffer & maskLowBits( bitCount );
        }

        /** The whole refill buffer — for callers that mask with their own
         * precomputed constant instead of paying a runtime mask build. Bits
         * above bufferedBits() may be unaccounted stream bits; mask them. */
        [[nodiscard]] std::uint64_t
        peekBufferUnsafe() const noexcept
        {
            return m_buffer;
        }

        void
        consumeUnsafe( unsigned bitCount ) noexcept
        {
            RAPIDGZIP_ASSUME( bitCount <= m_bufferBits );
            m_buffer >>= bitCount;
            m_bufferBits -= bitCount;
        }

        [[nodiscard]] std::uint64_t
        readUnsafe( unsigned bitCount ) noexcept
        {
            const auto result = peekUnsafe( bitCount );
            consumeUnsafe( bitCount );
            return result;
        }

    private:
        void
        refill() noexcept
        {
        #if defined( __BYTE_ORDER__ ) && ( __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__ )
            if ( m_byteOffset + sizeof( std::uint64_t ) <= m_sizeInBytes ) {
                std::uint64_t word;
                std::memcpy( &word, m_data + m_byteOffset, sizeof( std::uint64_t ) );
                m_buffer |= word << m_bufferBits;
                const auto absorbed = ( 64U - m_bufferBits ) / 8U;
                m_byteOffset += absorbed;
                m_bufferBits += absorbed * 8U;
                return;
            }
        #endif
            while ( ( m_bufferBits <= 56U ) && ( m_byteOffset < m_sizeInBytes ) ) {
                m_buffer |= std::uint64_t( m_data[m_byteOffset++] ) << m_bufferBits;
                m_bufferBits += 8U;
            }
        }

        BitReader& m_reader;
        const std::uint8_t* const m_data;
        const std::size_t m_sizeInBytes;
        std::size_t m_byteOffset;
        std::uint64_t m_buffer;
        unsigned m_bufferBits;
    };

    /** Advance to the next byte boundary (gzip stored blocks, headers). */
    void
    alignToByte()
    {
        const auto position = tell();
        const auto remainder = position % 8U;
        if ( remainder != 0 ) {
            seek( position + 8U - remainder );
        }
    }

    [[nodiscard]] bool
    eof() const noexcept
    {
        return tell() >= sizeInBits();
    }

    [[nodiscard]] std::size_t
    sizeInBits() const noexcept
    {
        return m_sizeInBytes * 8U;
    }

    /** The underlying memory — for positionless probing (peekAt-style
     * readers that never move this reader's cursor). */
    [[nodiscard]] const std::uint8_t*
    data() const noexcept
    {
        return m_data;
    }

    [[nodiscard]] std::size_t
    sizeInBytes() const noexcept
    {
        return m_sizeInBytes;
    }

    [[nodiscard]] std::size_t
    bitsLeft() const noexcept
    {
        const auto position = tell();
        const auto sizeBits = sizeInBits();
        return position >= sizeBits ? 0 : sizeBits - position;
    }

private:
    [[nodiscard]] static constexpr std::uint64_t
    maskLowBits( unsigned bitCount ) noexcept
    {
        return ( std::uint64_t( 1 ) << bitCount ) - 1U;
    }

    void
    refill() noexcept
    {
    #if defined( __BYTE_ORDER__ ) && ( __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__ )
        /* Fast path: top up with ONE unaligned 8-byte load regardless of the
         * current fill level — on a little-endian host the in-memory byte
         * order already matches the LSB-first bit order Deflate requires.
         * Only whole absorbed bytes are accounted; the partial byte's bits
         * beyond the accounting are real stream bits at their correct
         * positions, and the next refill ORs the same byte over them with
         * identical values, so they are harmless and readPastEnd()'s
         * zero-above-accounting invariant is restored by the byte-wise tail
         * loop before the end of input can be reached. This word-wise
         * topping is what makes the amortized ensureBits() discipline pay:
         * the Fig. 7 refill cost is one load + shift instead of a
         * byte-at-a-time loop. */
        if ( m_byteOffset + sizeof( std::uint64_t ) <= m_sizeInBytes ) {
            RAPIDGZIP_ASSUME( m_bufferBits < 64U );
            std::uint64_t word;
            std::memcpy( &word, m_data + m_byteOffset, sizeof( std::uint64_t ) );
            m_buffer |= word << m_bufferBits;
            const auto absorbed = ( 64U - m_bufferBits ) / 8U;
            m_byteOffset += absorbed;
            m_bufferBits += absorbed * 8U;
            return;
        }
    #endif
        while ( ( m_bufferBits <= 56U ) && ( m_byteOffset < m_sizeInBytes ) ) {
            m_buffer |= std::uint64_t( m_data[m_byteOffset++] ) << m_bufferBits;
            m_bufferBits += 8U;
        }
    }

    /** Cold path: consume the remaining real bits plus virtual zero padding. */
    std::uint64_t
    readPastEnd( unsigned bitCount ) noexcept
    {
        /* Mask explicitly: word-wise refills may leave real (correct but
         * unaccounted) bits above m_bufferBits, and the zero-padding
         * contract must not leak them. */
        const auto result = m_bufferBits == 0 ? 0 : m_buffer & maskLowBits( m_bufferBits );
        m_overrunBits += bitCount - m_bufferBits;
        m_buffer = 0;
        m_bufferBits = 0;
        return result;
    }

    std::vector<std::uint8_t> m_ownedBuffer;
    const std::uint8_t* m_data{ nullptr };
    std::size_t m_sizeInBytes{ 0 };

    std::size_t m_byteOffset{ 0 };   /**< next byte to load into the buffer */
    std::uint64_t m_buffer{ 0 };
    unsigned m_bufferBits{ 0 };
    std::size_t m_overrunBits{ 0 };  /**< virtual zero bits consumed past EOF */
};

}  // namespace rapidgzip
