#pragma once

#include <zlib.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "../common/Util.hpp"
#include "../simd/Crc32.hpp"
#include "GzipHeader.hpp"

namespace rapidgzip {

namespace deflatewriter {

/** LSB-first Deflate bit packer (RFC 1951 bit order). */
class LsbBitWriter
{
public:
    explicit LsbBitWriter( std::vector<std::uint8_t>& output ) :
        m_output( output )
    {}

    /** Append the low @p count bits of @p value, LSB first. */
    void
    writeBits( std::uint32_t value, unsigned count )
    {
        m_buffer |= static_cast<std::uint64_t>( value ) << m_bufferedBits;
        m_bufferedBits += count;
        while ( m_bufferedBits >= 8 ) {
            m_output.push_back( static_cast<std::uint8_t>( m_buffer & 0xFFU ) );
            m_buffer >>= 8U;
            m_bufferedBits -= 8;
        }
    }

    /** Append a Huffman code: Deflate writes codes MSB-first into the
     * LSB-first stream. */
    void
    writeCode( std::uint32_t code, unsigned length )
    {
        for ( unsigned i = length; i > 0; --i ) {
            writeBits( ( code >> ( i - 1 ) ) & 1U, 1 );
        }
    }

    void
    alignToByte()
    {
        if ( m_bufferedBits > 0 ) {
            m_output.push_back( static_cast<std::uint8_t>( m_buffer & 0xFFU ) );
            m_buffer = 0;
            m_bufferedBits = 0;
        }
    }

private:
    std::vector<std::uint8_t>& m_output;
    std::uint64_t m_buffer{ 0 };
    unsigned m_bufferedBits{ 0 };
};

}  // namespace deflatewriter

/**
 * Emulates `igzip -0`'s pathological case for parallel decompression: the
 * WHOLE input as ONE Deflate block, so there is not a single internal block
 * boundary for the block finders to discover and chunked decoding collapses
 * to a serial decode (paper Table 3's 0.16 GB/s row). The block is
 * fixed-Huffman with literals only (igzip emits one dynamic block; for the
 * collapse property only the absence of block boundaries matters, and a
 * literal-only fixed block reproduces the also-relevant ~1x compression
 * ratio).
 */
[[nodiscard]] inline std::vector<std::uint8_t>
writeSingleBlockGzip( BufferView data )
{
    std::vector<std::uint8_t> result;
    result.reserve( data.size() + data.size() / 8 + 64 );
    const std::uint8_t header[10] = {
        GZIP_MAGIC_1, GZIP_MAGIC_2, GZIP_CM_DEFLATE, 0x00,
        0x00, 0x00, 0x00, 0x00,  /* MTIME */
        0x00,                    /* XFL */
        0xFF,                    /* OS: unknown */
    };
    result.insert( result.end(), header, header + sizeof( header ) );

    deflatewriter::LsbBitWriter writer( result );
    writer.writeBits( 1, 1 );  /* BFINAL */
    writer.writeBits( 1, 2 );  /* BTYPE 01: fixed Huffman */
    for ( const auto byte : data ) {
        /* RFC 1951 fixed literal code: 0..143 -> 8 bits from 0x30,
         * 144..255 -> 9 bits from 0x190. */
        if ( byte < 144 ) {
            writer.writeCode( 0x30U + byte, 8 );
        } else {
            writer.writeCode( 0x190U + ( byte - 144U ), 9 );
        }
    }
    writer.writeCode( 0, 7 );  /* end-of-block (symbol 256) */
    writer.alignToByte();

    const auto crc = simd::crc32( 0, data.data(), data.size() );
    for ( const auto value : { crc, static_cast<std::uint32_t>( data.size() ) } ) {
        for ( int i = 0; i < 4; ++i ) {
            result.push_back( static_cast<std::uint8_t>( ( value >> ( 8 * i ) ) & 0xFFU ) );
        }
    }
    return result;
}

}  // namespace rapidgzip
