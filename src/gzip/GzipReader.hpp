#pragma once

#include <zlib.h>

#include <algorithm>
#include <climits>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "../common/Error.hpp"
#include "../io/FileReader.hpp"
#include "GzipHeader.hpp"

namespace rapidgzip {

/**
 * Serial streaming gzip decompressor over a FileReader — the single-threaded
 * baseline in the scaling figures and the reference implementation the
 * parallel reader's results are validated against in the tests. Handles
 * multi-member files (pigz, bgzip, concatenated .gz).
 */
class GzipReader
{
public:
    explicit GzipReader( std::unique_ptr<FileReader> fileReader ) :
        m_file( std::move( fileReader ) )
    {
        if ( !m_file ) {
            throw RapidgzipError( "GzipReader requires a non-null file reader" );
        }
        m_stream.zalloc = Z_NULL;
        m_stream.zfree = Z_NULL;
        m_stream.opaque = Z_NULL;
        if ( inflateInit2( &m_stream, AUTO_FORMAT_WINDOW_BITS ) != Z_OK ) {
            throw RapidgzipError( "inflateInit2 failed" );
        }
        m_inputBuffer.resize( 256 * 1024 );
    }

    ~GzipReader()
    {
        inflateEnd( &m_stream );
    }

    GzipReader( const GzipReader& ) = delete;
    GzipReader& operator=( const GzipReader& ) = delete;

    /**
     * Decompress up to @p size bytes into @p buffer. Returns the number of
     * bytes produced; 0 means the end of the (last) gzip member.
     */
    [[nodiscard]] std::size_t
    read( std::uint8_t* buffer, std::size_t size )
    {
        std::size_t produced = 0;
        while ( produced < size && !m_endOfStream ) {
            if ( m_stream.avail_in == 0 ) {
                const auto refilled = m_file->read( m_inputBuffer.data(), m_inputBuffer.size() );
                m_stream.next_in = m_inputBuffer.data();
                m_stream.avail_in = static_cast<uInt>( refilled );
            }

            /* zlib's avail_out is 32-bit: clamp, loop refills the rest. */
            const auto request = std::min<std::size_t>( size - produced, UINT_MAX / 2 );
            m_stream.next_out = buffer + produced;
            m_stream.avail_out = static_cast<uInt>( request );
            const auto code = inflate( &m_stream, Z_NO_FLUSH );
            produced += request - m_stream.avail_out;

            if ( code == Z_STREAM_END ) {
                /* Another member may follow (pigz -R, bgzip, cat a.gz b.gz).
                 * Anything that does not start with the gzip magic is
                 * trailing padding/garbage, which `gzip -d` and the
                 * parallel reader both ignore. */
                std::memmove( m_inputBuffer.data(), m_stream.next_in, m_stream.avail_in );
                std::size_t lookahead = m_stream.avail_in;
                if ( ( lookahead < 2 ) && !m_file->eof() ) {
                    lookahead += m_file->read( m_inputBuffer.data() + lookahead,
                                               m_inputBuffer.size() - lookahead );
                }
                m_stream.next_in = m_inputBuffer.data();
                m_stream.avail_in = static_cast<uInt>( lookahead );
                if ( ( lookahead >= 2 )
                     && ( m_inputBuffer[0] == GZIP_MAGIC_1 )
                     && ( m_inputBuffer[1] == GZIP_MAGIC_2 ) ) {
                    if ( inflateReset( &m_stream ) != Z_OK ) {
                        throw InvalidGzipStreamError( "inflateReset failed between gzip members" );
                    }
                } else {
                    m_endOfStream = true;
                }
                continue;
            }
            if ( ( code != Z_OK ) && ( code != Z_BUF_ERROR ) ) {
                throw InvalidGzipStreamError( "inflate failed with code " + std::to_string( code ) );
            }
            if ( ( code == Z_BUF_ERROR ) && ( m_stream.avail_in == 0 ) && m_file->eof() ) {
                throw InvalidGzipStreamError( "Truncated gzip stream" );
            }
        }
        m_position += produced;
        return produced;
    }

    /** Decompress to the end, discarding output. Returns total bytes produced. */
    [[nodiscard]] std::size_t
    decompressAll()
    {
        std::vector<std::uint8_t> sink( 1 * 1024 * 1024 );
        std::size_t total = 0;
        while ( true ) {
            const auto produced = read( sink.data(), sink.size() );
            if ( produced == 0 ) {
                break;
            }
            total += produced;
        }
        return total;
    }

    /** Decompress everything that remains into one buffer. */
    [[nodiscard]] std::vector<std::uint8_t>
    decompressToVector()
    {
        std::vector<std::uint8_t> result;
        std::vector<std::uint8_t> buffer( 1 * 1024 * 1024 );
        while ( true ) {
            const auto produced = read( buffer.data(), buffer.size() );
            if ( produced == 0 ) {
                break;
            }
            result.insert( result.end(), buffer.data(), buffer.data() + produced );
        }
        return result;
    }

    /** Uncompressed bytes produced so far. */
    [[nodiscard]] std::size_t
    tell() const noexcept
    {
        return m_position;
    }

    [[nodiscard]] bool
    eof() const noexcept
    {
        return m_endOfStream;
    }

private:
    std::unique_ptr<FileReader> m_file;
    std::vector<std::uint8_t> m_inputBuffer;
    z_stream m_stream{};
    std::size_t m_position{ 0 };
    bool m_endOfStream{ false };
};

}  // namespace rapidgzip
