#pragma once

#include <cstddef>
#include <cstdint>

#include "../common/Error.hpp"
#include "../common/Util.hpp"

namespace rapidgzip {

inline constexpr int GZIP_WINDOW_BITS = 15 + 16;        /* zlib: 15-bit window, gzip wrapper */
inline constexpr int RAW_DEFLATE_WINDOW_BITS = -15;     /* zlib: raw Deflate, no wrapper */
inline constexpr int AUTO_FORMAT_WINDOW_BITS = 15 + 32; /* zlib: auto-detect zlib/gzip */

inline constexpr std::uint8_t GZIP_MAGIC_1 = 0x1FU;
inline constexpr std::uint8_t GZIP_MAGIC_2 = 0x8BU;
inline constexpr std::uint8_t GZIP_CM_DEFLATE = 8U;
inline constexpr std::size_t GZIP_FOOTER_SIZE = 8;

namespace gzipflag {
inline constexpr std::uint8_t FTEXT = 1U << 0U;
inline constexpr std::uint8_t FHCRC = 1U << 1U;
inline constexpr std::uint8_t FEXTRA = 1U << 2U;
inline constexpr std::uint8_t FNAME = 1U << 3U;
inline constexpr std::uint8_t FCOMMENT = 1U << 4U;
}  // namespace gzipflag

/**
 * Parse a gzip member header starting at @p offset and return the byte
 * offset of the first Deflate bit. Throws InvalidGzipStreamError on
 * malformed input. Only the header is validated — the Deflate stream and
 * footer are the decoder's business.
 */
[[nodiscard]] inline std::size_t
parseGzipHeader( BufferView data, std::size_t offset = 0 )
{
    const auto require = [&] ( std::size_t needed ) {
        if ( ( offset > data.size() ) || ( data.size() - offset < needed ) ) {
            throw InvalidGzipStreamError( "Truncated gzip header" );
        }
    };

    require( 10 );
    if ( ( data[offset] != GZIP_MAGIC_1 ) || ( data[offset + 1] != GZIP_MAGIC_2 ) ) {
        throw InvalidGzipStreamError( "Missing gzip magic bytes" );
    }
    if ( data[offset + 2] != GZIP_CM_DEFLATE ) {
        throw InvalidGzipStreamError( "Unsupported gzip compression method" );
    }
    const auto flags = data[offset + 3];
    offset += 10;  /* magic(2) CM(1) FLG(1) MTIME(4) XFL(1) OS(1) */

    if ( ( flags & gzipflag::FEXTRA ) != 0 ) {
        require( 2 );
        const auto extraLength = static_cast<std::size_t>( data[offset] )
                                 | ( static_cast<std::size_t>( data[offset + 1] ) << 8U );
        offset += 2;
        require( extraLength );
        offset += extraLength;
    }
    for ( const auto flag : { gzipflag::FNAME, gzipflag::FCOMMENT } ) {
        if ( ( flags & flag ) == 0 ) {
            continue;
        }
        while ( true ) {
            require( 1 );
            if ( data[offset++] == 0 ) {
                break;
            }
        }
    }
    if ( ( flags & gzipflag::FHCRC ) != 0 ) {
        require( 2 );
        offset += 2;
    }
    return offset;
}

struct GzipFooter
{
    std::uint32_t crc32{ 0 };
    std::uint32_t uncompressedSizeModulo32{ 0 };
};

/** Read the 8-byte footer (CRC32 + ISIZE) ending at @p endOffset. */
[[nodiscard]] inline GzipFooter
parseGzipFooter( BufferView data, std::size_t endOffset )
{
    if ( ( endOffset > data.size() ) || ( endOffset < GZIP_FOOTER_SIZE ) ) {
        throw InvalidGzipStreamError( "Truncated gzip footer" );
    }
    const auto* bytes = data.data() + endOffset - GZIP_FOOTER_SIZE;
    const auto readLE32 = [] ( const std::uint8_t* p ) {
        return static_cast<std::uint32_t>( p[0] )
               | ( static_cast<std::uint32_t>( p[1] ) << 8U )
               | ( static_cast<std::uint32_t>( p[2] ) << 16U )
               | ( static_cast<std::uint32_t>( p[3] ) << 24U );
    };
    return { readLE32( bytes ), readLE32( bytes + 4 ) };
}

}  // namespace rapidgzip
