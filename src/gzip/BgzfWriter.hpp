#pragma once

#include <zlib.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "../simd/Crc32.hpp"
#include "GzipHeader.hpp"
#include "ZlibCompressor.hpp"

namespace rapidgzip {

/**
 * BGZF (bgzip/htslib) writer: a sequence of complete gzip members of at
 * most 64 KiB whose FEXTRA "BC" subfield records the total block size, so
 * readers can hop block to block without decoding — the property that makes
 * BGZF the fastest format in the paper's Table 3 and the trivial case of
 * the seek-index subsystem (index::tryBuildBgzfIndex). Each block carries
 * an independently raw-Deflate-compressed slice of at most 65280 input
 * bytes (bgzip's margin: even incompressible data then fits the 16-bit
 * BSIZE field), its own CRC32, and its own ISIZE; the stream ends with the
 * canonical 28-byte empty EOF block.
 *
 * Level 0 produces stored Deflate blocks (zlib semantics), emulating
 * `bgzip -l 0`.
 */
class BgzfWriter
{
public:
    /** Maximum input bytes per block, as chosen by bgzip. */
    static constexpr std::size_t MAX_BLOCK_DATA = 65280;
    /** header(18) + empty fixed final block "03 00"(2) + footer(8). */
    static constexpr std::size_t EOF_BLOCK_SIZE = 28;

    explicit BgzfWriter( std::vector<std::uint8_t>& output, int level = 6 ) :
        m_output( output ),
        m_level( level )
    {}

    ~BgzfWriter()
    {
        if ( !m_finished ) {
            try {
                finish();
            } catch ( ... ) {
                /* Swallow: throwing from a destructor terminates. Callers who
                 * care about completeness call finish() explicitly. */
            }
        }
    }

    BgzfWriter( const BgzfWriter& ) = delete;
    BgzfWriter& operator=( const BgzfWriter& ) = delete;

    void
    write( BufferView data )
    {
        if ( m_finished ) {
            throw RapidgzipError( "BgzfWriter already finished" );
        }
        std::size_t offset = 0;
        while ( offset < data.size() ) {
            const auto take = std::min( MAX_BLOCK_DATA - m_pending.size(),
                                        data.size() - offset );
            m_pending.insert( m_pending.end(), data.begin() + offset,
                              data.begin() + offset + take );
            offset += take;
            if ( m_pending.size() == MAX_BLOCK_DATA ) {
                emitBlock();
            }
        }
    }

    void
    write( const std::uint8_t* data, std::size_t size )
    {
        write( BufferView( data, size ) );
    }

    /** Write any buffered data and the EOF block. Idempotent. */
    void
    finish()
    {
        if ( m_finished ) {
            return;
        }
        if ( !m_pending.empty() ) {
            emitBlock();
        }
        emitEofBlock();
        m_finished = true;
    }

private:
    void
    emitBlock()
    {
        /* Independent raw-Deflate stream per block: a fresh compressor gives
         * every block an empty window, which is what lets each block decode
         * standalone. */
        std::vector<std::uint8_t> compressed;
        compressed.reserve( m_pending.size() / 2 + 64 );
        {
            detail::ZlibDeflateStream stream( m_level, RAW_DEFLATE_WINDOW_BITS );
            stream.compress( { m_pending.data(), m_pending.size() }, Z_FINISH, compressed );
        }

        const auto blockSize = HEADER_SIZE + compressed.size() + GZIP_FOOTER_SIZE;
        if ( blockSize - 1 > 0xFFFFU ) {
            /* Unreachable for MAX_BLOCK_DATA input (worst-case Deflate
             * expansion stays under the margin), but guard the invariant. */
            throw RapidgzipError( "BGZF block overflows the 16-bit BSIZE field" );
        }

        appendHeader( blockSize );
        m_output.insert( m_output.end(), compressed.begin(), compressed.end() );
        const auto crc = simd::crc32( 0, m_pending.data(), m_pending.size() );
        appendLE32( crc );
        appendLE32( static_cast<std::uint32_t>( m_pending.size() ) );
        m_pending.clear();
    }

    void
    emitEofBlock()
    {
        /* The canonical fixed EOF marker (an empty Deflate stream), byte for
         * byte as the SAM/BAM specification prints it. */
        static constexpr std::uint8_t EOF_BLOCK[EOF_BLOCK_SIZE] = {
            0x1F, 0x8B, 0x08, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0xFF,
            0x06, 0x00, 0x42, 0x43, 0x02, 0x00, 0x1B, 0x00, 0x03, 0x00,
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        };
        m_output.insert( m_output.end(), EOF_BLOCK, EOF_BLOCK + sizeof( EOF_BLOCK ) );
    }

    void
    appendHeader( std::size_t blockSize )
    {
        const std::uint8_t header[HEADER_SIZE] = {
            GZIP_MAGIC_1, GZIP_MAGIC_2, GZIP_CM_DEFLATE, gzipflag::FEXTRA,
            0x00, 0x00, 0x00, 0x00,  /* MTIME */
            0x00,                    /* XFL */
            0xFF,                    /* OS: unknown */
            0x06, 0x00,              /* XLEN = 6 */
            'B', 'C', 0x02, 0x00,    /* BC subfield, length 2 */
            static_cast<std::uint8_t>( ( blockSize - 1 ) & 0xFFU ),
            static_cast<std::uint8_t>( ( ( blockSize - 1 ) >> 8U ) & 0xFFU ),
        };
        m_output.insert( m_output.end(), header, header + sizeof( header ) );
    }

    void
    appendLE32( std::uint32_t value )
    {
        for ( int i = 0; i < 4; ++i ) {
            m_output.push_back( static_cast<std::uint8_t>( ( value >> ( 8 * i ) ) & 0xFFU ) );
        }
    }

    static constexpr std::size_t HEADER_SIZE = 18;

    std::vector<std::uint8_t>& m_output;
    int m_level;
    std::vector<std::uint8_t> m_pending;
    bool m_finished{ false };
};

/** One-shot convenience: BGZF-compress @p data at @p level. */
[[nodiscard]] inline std::vector<std::uint8_t>
writeBgzf( BufferView data, int level = 6 )
{
    std::vector<std::uint8_t> result;
    result.reserve( data.size() / 2 + 256 );
    BgzfWriter writer( result, level );
    writer.write( data );
    writer.finish();
    return result;
}

}  // namespace rapidgzip
