#pragma once

#include <zlib.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace rapidgzip::detail {

/**
 * Feeds a large input buffer to a z_stream in bounded slices — zlib's
 * avail_in is 32-bit, so inputs of 4 GiB and beyond must be handed over
 * piecewise. Tracks how much of the buffer zlib has consumed so decoders
 * can do absolute-offset bookkeeping (member boundaries, footers).
 */
class ZlibInputFeeder
{
public:
    static constexpr std::size_t MAX_SLICE = std::size_t( 1 ) << 30U;

    ZlibInputFeeder( const std::uint8_t* data, std::size_t size ) noexcept :
        m_data( data ),
        m_size( size )
    {}

    /** Hand zlib the next slice if it has exhausted the previous one. */
    void
    feed( z_stream& stream ) noexcept
    {
        if ( ( stream.avail_in == 0 ) && ( m_nextInput < m_size ) ) {
            const auto slice = std::min( MAX_SLICE, m_size - m_nextInput );
            stream.next_in = const_cast<Bytef*>( m_data + m_nextInput );
            stream.avail_in = static_cast<uInt>( slice );
            m_nextInput += slice;
        }
    }

    /** Bytes of the buffer zlib has fully consumed. */
    [[nodiscard]] std::size_t
    consumed( const z_stream& stream ) const noexcept
    {
        return m_nextInput - stream.avail_in;
    }

    /** True once every byte has been handed over AND consumed. */
    [[nodiscard]] bool
    exhausted( const z_stream& stream ) const noexcept
    {
        return ( stream.avail_in == 0 ) && ( m_nextInput >= m_size );
    }

    /** Restart feeding from an absolute buffer offset (gzip member restart). */
    void
    seekTo( z_stream& stream, std::size_t offset ) noexcept
    {
        m_nextInput = std::min( offset, m_size );
        stream.avail_in = 0;
    }

private:
    const std::uint8_t* m_data;
    std::size_t m_size;
    std::size_t m_nextInput{ 0 };
};

}  // namespace rapidgzip::detail
