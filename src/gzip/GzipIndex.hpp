#pragma once

/* The index grew into its own subsystem (bit-granular checkpoints with
 * compressed windows); this forwarding header keeps the historical include
 * path working for gzip-layer consumers. */
#include "../index/GzipIndex.hpp"
