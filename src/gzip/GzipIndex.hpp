#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapidgzip {

/**
 * Seek index for a gzip stream: a list of restart points at which raw
 * Deflate decoding can begin with an empty window (full-flush points, BGZF
 * block starts, or — in later PRs — arbitrary block offsets paired with a
 * stored window). Offsets are in bytes; bit-granular checkpoints extend
 * this struct once the custom Deflate decoder lands.
 */
struct GzipIndexCheckpoint
{
    /** Byte offset of the first Deflate bit of this chunk in the compressed stream. */
    std::size_t compressedOffset{ 0 };
    /** Byte offset of this chunk's first output byte in the decompressed stream. */
    std::size_t uncompressedOffset{ 0 };
};

struct GzipIndex
{
    std::vector<GzipIndexCheckpoint> checkpoints;
    std::size_t compressedSizeBytes{ 0 };
    std::size_t uncompressedSizeBytes{ 0 };

    [[nodiscard]] bool
    empty() const noexcept
    {
        return checkpoints.empty();
    }
};

}  // namespace rapidgzip
