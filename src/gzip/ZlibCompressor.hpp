#pragma once

#include <zlib.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "GzipHeader.hpp"
#include "ZlibHelpers.hpp"

namespace rapidgzip {

namespace detail {

class ZlibDeflateStream
{
public:
    ZlibDeflateStream( int level, int windowBits )
    {
        m_stream.zalloc = Z_NULL;
        m_stream.zfree = Z_NULL;
        m_stream.opaque = Z_NULL;
        if ( deflateInit2( &m_stream, level, Z_DEFLATED, windowBits, /* memLevel */ 8,
                           Z_DEFAULT_STRATEGY ) != Z_OK ) {
            throw RapidgzipError( "deflateInit2 failed" );
        }
    }

    ~ZlibDeflateStream()
    {
        deflateEnd( &m_stream );
    }

    ZlibDeflateStream( const ZlibDeflateStream& ) = delete;
    ZlibDeflateStream& operator=( const ZlibDeflateStream& ) = delete;

    /** Compress @p input with the given zlib @p flush mode, appending to @p output. */
    void
    compress( BufferView input, int flush, std::vector<std::uint8_t>& output )
    {
        /* zlib's avail_in is 32-bit: feed large inputs in bounded slices,
         * flushing only with the final slice. */
        constexpr std::size_t MAX_SLICE = std::size_t( 1 ) << 30U;
        std::size_t offset = 0;
        do {
            const auto slice = std::min( MAX_SLICE, input.size() - offset );
            const bool lastSlice = offset + slice >= input.size();
            m_stream.next_in = const_cast<Bytef*>( input.data() + offset );
            m_stream.avail_in = static_cast<uInt>( slice );
            offset += slice;
            const auto sliceFlush = lastSlice ? flush : Z_NO_FLUSH;
            do {
                std::uint8_t buffer[64 * 1024];
                m_stream.next_out = buffer;
                m_stream.avail_out = sizeof( buffer );
                /* Globally qualified: rapidgzip::deflate is a namespace. */
                const auto result = ::deflate( &m_stream, sliceFlush );
                if ( ( result != Z_OK ) && ( result != Z_STREAM_END ) && ( result != Z_BUF_ERROR ) ) {
                    throw RapidgzipError( "deflate failed with code " + std::to_string( result ) );
                }
                output.insert( output.end(), buffer, buffer + sizeof( buffer ) - m_stream.avail_out );
                if ( result == Z_STREAM_END ) {
                    return;
                }
            } while ( ( m_stream.avail_in > 0 ) || ( m_stream.avail_out == 0 ) );
        } while ( offset < input.size() );
    }

private:
    z_stream m_stream{};
};

}  // namespace detail

/**
 * Plain single-stream gzip compression, emulating `gzip -<level>`: one
 * member, no flush points, so parallel decompression must discover block
 * boundaries itself.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
compressGzipLike( BufferView data, int level = 6 )
{
    detail::ZlibDeflateStream stream( level, GZIP_WINDOW_BITS );
    std::vector<std::uint8_t> result;
    result.reserve( data.size() / 3 + 256 );
    stream.compress( data, Z_FINISH, result );
    return result;
}

/**
 * pigz-style gzip compression: a single member with a Z_FULL_FLUSH every
 * @p flushInterval input bytes. Each full flush byte-aligns the stream with
 * an empty stored block (the 00 00 FF FF sync marker) AND resets the LZ77
 * window, so decompression can restart at any flush point — the property
 * the parallel chunk fetcher exploits.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
compressPigzLike( BufferView data, int level = 6, std::size_t flushInterval = 512 * KiB )
{
    if ( flushInterval == 0 ) {
        throw RapidgzipError( "flushInterval must be positive" );
    }
    detail::ZlibDeflateStream stream( level, GZIP_WINDOW_BITS );
    std::vector<std::uint8_t> result;
    result.reserve( data.size() / 3 + 256 );
    std::size_t offset = 0;
    while ( offset < data.size() ) {
        const auto chunk = std::min( flushInterval, data.size() - offset );
        const bool last = offset + chunk >= data.size();
        stream.compress( data.subView( offset, chunk ), last ? Z_FINISH : Z_FULL_FLUSH, result );
        offset += chunk;
    }
    if ( data.empty() ) {
        stream.compress( data, Z_FINISH, result );
    }
    return result;
}

/**
 * Single-threaded zlib decompression of a gzip (or zlib) stream, including
 * multi-member gzip files. The baseline the paper's speedups are measured
 * against.
 */
[[nodiscard]] inline std::vector<std::uint8_t>
decompressWithZlib( BufferView compressed )
{
    z_stream stream{};
    if ( inflateInit2( &stream, AUTO_FORMAT_WINDOW_BITS ) != Z_OK ) {
        throw RapidgzipError( "inflateInit2 failed" );
    }
    std::vector<std::uint8_t> result;
    result.reserve( compressed.size() * 3 );

    detail::ZlibInputFeeder feeder( compressed.data(), compressed.size() );
    std::uint8_t buffer[128 * 1024];
    while ( true ) {
        feeder.feed( stream );
        stream.next_out = buffer;
        stream.avail_out = sizeof( buffer );
        const auto code = inflate( &stream, Z_NO_FLUSH );
        result.insert( result.end(), buffer, buffer + sizeof( buffer ) - stream.avail_out );
        const bool inputExhausted = feeder.exhausted( stream );
        if ( code == Z_STREAM_END ) {
            /* Another member may follow; anything else is trailing
             * padding/garbage, ignored like `gzip -d` and GzipReader. */
            const auto consumed = feeder.consumed( stream );
            if ( inputExhausted
                 || ( consumed + 2 > compressed.size() )
                 || ( compressed[consumed] != GZIP_MAGIC_1 )
                 || ( compressed[consumed + 1] != GZIP_MAGIC_2 ) ) {
                break;
            }
            if ( inflateReset( &stream ) != Z_OK ) {  /* next gzip member */
                inflateEnd( &stream );
                throw InvalidGzipStreamError( "inflateReset failed between gzip members" );
            }
            continue;
        }
        if ( ( code != Z_OK ) && ( code != Z_BUF_ERROR ) ) {
            inflateEnd( &stream );
            throw InvalidGzipStreamError( "inflate failed with code " + std::to_string( code ) );
        }
        if ( inputExhausted && ( stream.avail_out != 0 ) ) {
            inflateEnd( &stream );
            throw InvalidGzipStreamError( "Truncated gzip stream" );
        }
    }
    inflateEnd( &stream );
    return result;
}

}  // namespace rapidgzip
