#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "../common/Error.hpp"
#include "../common/Util.hpp"
#include "ZlibCompressor.hpp"

namespace rapidgzip {

/**
 * Streaming gzip writer appending to a caller-owned byte vector. Pairs with
 * GzipReader for the round-trip tests and emulates `gzip`-style output (one
 * member, no flush points). flush() emits a pigz-style full-flush restart
 * point, so callers can also produce parallel-decompression-friendly
 * streams incrementally. A thin lifecycle wrapper over the same
 * detail::ZlibDeflateStream the one-shot compressors use.
 */
class GzipWriter
{
public:
    explicit GzipWriter( std::vector<std::uint8_t>& output, int level = 6 ) :
        m_output( output ),
        m_stream( level, GZIP_WINDOW_BITS )
    {}

    ~GzipWriter()
    {
        if ( !m_finished ) {
            try {
                finish();
            } catch ( ... ) {
                /* Swallow: throwing from a destructor terminates. Callers who
                 * care about completeness call finish() explicitly. */
            }
        }
    }

    GzipWriter( const GzipWriter& ) = delete;
    GzipWriter& operator=( const GzipWriter& ) = delete;

    void
    write( const std::uint8_t* data, std::size_t size )
    {
        run( BufferView( data, size ), Z_NO_FLUSH );
    }

    void
    write( BufferView data )
    {
        run( data, Z_NO_FLUSH );
    }

    /** Byte-align and reset the LZ77 window (pigz-style restart point). */
    void
    flush()
    {
        run( BufferView(), Z_FULL_FLUSH );
    }

    /** Write the final block and the gzip footer. Idempotent. */
    void
    finish()
    {
        if ( m_finished ) {
            return;
        }
        run( BufferView(), Z_FINISH );
        m_finished = true;
    }

private:
    void
    run( BufferView data, int flushMode )
    {
        if ( m_finished ) {
            throw RapidgzipError( "GzipWriter already finished" );
        }
        m_stream.compress( data, flushMode, m_output );
    }

    std::vector<std::uint8_t>& m_output;
    detail::ZlibDeflateStream m_stream;
    bool m_finished{ false };
};

}  // namespace rapidgzip
